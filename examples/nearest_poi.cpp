// The paper's motivating scenario (Section 2): "a user has a list of her
// favorite Italian restaurants, and she wants to identify the restaurant
// that is closest to her working place q ... she may issue a distance
// query from q to each of the restaurants."
//
// Distance-query-heavy workloads over far-apart endpoints are exactly
// where TNR shines, so this example runs the scenario on plain CH and on
// TNR-over-CH and reports both answers (they must agree) with timings.

#include <cstdio>
#include <vector>

#include "ch/ch_index.h"
#include "graph/generator.h"
#include "routing/knn.h"
#include "tnr/tnr_index.h"
#include "util/rng.h"
#include "util/timer.h"

int main() {
  using namespace roadnet;

  GeneratorConfig config;
  config.target_vertices = 20000;
  config.seed = 11;
  Graph g = GenerateRoadNetwork(config);
  std::printf("city network: %u vertices, %zu edges\n", g.NumVertices(),
              g.NumEdges());

  ChIndex ch(g);
  TnrConfig tnr_config;
  tnr_config.grid_resolution = DefaultGridResolution(g.NumVertices());
  TnrIndex tnr(g, &ch, tnr_config);
  std::printf("indexes ready (CH + TNR on a %ux%u grid, %zu access nodes)\n",
              tnr_config.grid_resolution, tnr_config.grid_resolution,
              tnr.NumAccessNodes());

  // The workplace and 40 scattered restaurants.
  Rng rng(5);
  const VertexId workplace = static_cast<VertexId>(
      rng.NextBelow(g.NumVertices()));
  std::vector<VertexId> restaurants;
  for (int i = 0; i < 40; ++i) {
    restaurants.push_back(
        static_cast<VertexId>(rng.NextBelow(g.NumVertices())));
  }

  auto nearest_with = [&](PathIndex* index, double* micros) {
    Timer timer;
    VertexId best = kInvalidVertex;
    Distance best_dist = kInfDistance;
    for (VertexId r : restaurants) {
      const Distance d = index->DistanceQuery(workplace, r);
      if (d < best_dist) {
        best_dist = d;
        best = r;
      }
    }
    *micros = timer.ElapsedMicros();
    return std::make_pair(best, best_dist);
  };

  double ch_us = 0, tnr_us = 0;
  const auto [ch_best, ch_dist] = nearest_with(&ch, &ch_us);
  const auto [tnr_best, tnr_dist] = nearest_with(&tnr, &tnr_us);

  std::printf("nearest restaurant from vertex %u:\n", workplace);
  std::printf("  CH : vertex %u at travel time %llu  (40 queries in %.1f us)\n",
              ch_best, static_cast<unsigned long long>(ch_dist), ch_us);
  std::printf("  TNR: vertex %u at travel time %llu  (40 queries in %.1f us)\n",
              tnr_best, static_cast<unsigned long long>(tnr_dist), tnr_us);
  if (ch_dist != tnr_dist) {
    std::printf("ERROR: the indexes disagree!\n");
    return 1;
  }
  std::printf("agreement: yes; TNR speedup on this batch: %.1fx\n",
              ch_us / tnr_us);

  // The same question through the kNN utilities, k = 3, both strategies.
  Timer knn_timer;
  const auto by_scan = KnnByIndexScan(&tnr, restaurants, workplace, 3);
  const double scan_us = knn_timer.ElapsedMicros();
  knn_timer.Reset();
  const auto by_search = KnnByDijkstra(g, restaurants, workplace, 3);
  const double search_us = knn_timer.ElapsedMicros();
  std::printf("top-3 (TNR scan, %.1f us):", scan_us);
  for (const auto& r : by_scan) {
    std::printf(" v%u@%llu", r.poi, static_cast<unsigned long long>(r.dist));
  }
  std::printf("\ntop-3 (expanding Dijkstra, %.1f us):", search_us);
  for (const auto& r : by_search) {
    std::printf(" v%u@%llu", r.poi, static_cast<unsigned long long>(r.dist));
  }
  std::printf("\n");

  // Show the route to the winner.
  Path route = ch.PathQuery(workplace, ch_best);
  std::printf("route (%zu vertices): ", route.size());
  for (size_t i = 0; i < route.size() && i < 10; ++i) {
    std::printf("%u ", route[i]);
  }
  if (route.size() > 10) std::printf("...");
  std::printf("\n");
  return 0;
}
