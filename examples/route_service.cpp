// A miniature routing service: load a road network (DIMACS 9th-challenge
// .gr/.co files, or a synthetic network when no files are given), build
// CH, and serve "s t" queries from stdin, printing travel time and route.
//
//   ./route_service graph.gr graph.co   < queries.txt
//   ./route_service                     # synthetic 50k-vertex network
//
// Query input: one "s t" pair per line (0-based vertex ids); "random N"
// generates and answers N random queries instead.

#include <cstdio>
#include <cstring>
#include <string>

#include "ch/ch_index.h"
#include "graph/dimacs.h"
#include "graph/generator.h"
#include "util/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace roadnet;

  Graph g;
  if (argc >= 3) {
    std::string error;
    auto loaded = ReadDimacsFiles(argv[1], argv[2], &error);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "failed to load %s / %s: %s\n", argv[1], argv[2],
                   error.c_str());
      return 1;
    }
    g = std::move(*loaded);
  } else {
    GeneratorConfig config;
    config.target_vertices = 50000;
    config.seed = 3;
    g = GenerateRoadNetwork(config);
  }
  std::fprintf(stderr, "network: %u vertices, %zu edges\n", g.NumVertices(),
               g.NumEdges());

  Timer build_timer;
  ChIndex ch(g);
  std::fprintf(stderr, "CH ready in %.2f s (%.1f MiB)\n",
               build_timer.ElapsedSeconds(),
               ch.IndexBytes() / (1024.0 * 1024.0));

  char line[256];
  while (std::fgets(line, sizeof(line), stdin) != nullptr) {
    unsigned long n = 0;
    if (std::sscanf(line, "random %lu", &n) == 1) {
      Rng rng(42);
      Timer timer;
      unsigned long long checksum = 0;
      for (unsigned long i = 0; i < n; ++i) {
        const VertexId s =
            static_cast<VertexId>(rng.NextBelow(g.NumVertices()));
        const VertexId t =
            static_cast<VertexId>(rng.NextBelow(g.NumVertices()));
        checksum += ch.DistanceQuery(s, t);
      }
      std::printf("%lu random queries in %.1f us total (checksum %llu)\n", n,
                  timer.ElapsedMicros(), checksum);
      continue;
    }
    unsigned long s = 0, t = 0;
    if (std::sscanf(line, "%lu %lu", &s, &t) != 2 || s >= g.NumVertices() ||
        t >= g.NumVertices()) {
      std::printf("usage: \"<s> <t>\" with ids < %u, or \"random <N>\"\n",
                  g.NumVertices());
      continue;
    }
    Timer timer;
    const Path path = ch.PathQuery(static_cast<VertexId>(s),
                                   static_cast<VertexId>(t));
    const double micros = timer.ElapsedMicros();
    if (path.empty()) {
      std::printf("%lu -> %lu: unreachable\n", s, t);
      continue;
    }
    const Distance d = PathWeight(g, path);
    std::printf("%lu -> %lu: travel time %llu, %zu vertices, %.1f us\n  via:",
                s, t, static_cast<unsigned long long>(d), path.size(),
                micros);
    for (size_t i = 0; i < path.size() && i < 12; ++i) {
      std::printf(" %u", path[i]);
    }
    if (path.size() > 12) std::printf(" ...");
    std::printf("\n");
  }
  return 0;
}
