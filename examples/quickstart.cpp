// Quickstart: generate a road network, build the recommended index (CH),
// and answer one distance query and one shortest path query.
//
//   ./quickstart [num_vertices]

#include <cstdio>
#include <cstdlib>

#include "ch/ch_index.h"
#include "graph/generator.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace roadnet;

  // 1. A road network: synthetic here; see route_service.cpp for loading
  //    DIMACS .gr/.co files instead.
  GeneratorConfig config;
  config.target_vertices = argc > 1 ? std::atoi(argv[1]) : 10000;
  config.seed = 7;
  Graph g = GenerateRoadNetwork(config);
  std::printf("network: %u vertices, %zu edges\n", g.NumVertices(),
              g.NumEdges());

  // 2. Preprocess with Contraction Hierarchies — the paper's recommended
  //    default (smallest index, near-best queries of both kinds).
  Timer timer;
  ChIndex ch(g);
  std::printf("CH preprocessing: %.2f s, %zu shortcuts, %.1f MiB index\n",
              timer.ElapsedSeconds(), ch.NumShortcuts(),
              ch.IndexBytes() / (1024.0 * 1024.0));

  // 3. Queries. Pick two far-apart vertices.
  const VertexId s = 0;
  const VertexId t = g.NumVertices() - 1;

  timer.Reset();
  const Distance d = ch.DistanceQuery(s, t);
  std::printf("distance %u -> %u: %llu  (%.1f us)\n", s, t,
              static_cast<unsigned long long>(d), timer.ElapsedMicros());

  timer.Reset();
  const Path path = ch.PathQuery(s, t);
  std::printf("shortest path: %zu vertices (%.1f us): ", path.size(),
              timer.ElapsedMicros());
  for (size_t i = 0; i < path.size() && i < 8; ++i) {
    std::printf("%u ", path[i]);
  }
  if (path.size() > 8) std::printf("... %u", path.back());
  std::printf("\n");
  return 0;
}
