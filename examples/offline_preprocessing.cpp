// Deployment workflow: preprocess once, persist the index, and bring a
// "query server" up from the serialized artifacts without redoing any
// preprocessing — the regime the paper's 30-minute US-scale CH
// preprocessing implies for production map services.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "ch/ch_index.h"
#include "graph/generator.h"
#include "io/serialize.h"
#include "util/rng.h"
#include "util/timer.h"

int main() {
  using namespace roadnet;

  // --- "Preprocessing host": build everything from scratch. ---
  GeneratorConfig config;
  config.target_vertices = 30000;
  config.seed = 21;
  Graph g = GenerateRoadNetwork(config);
  Timer timer;
  ChIndex ch(g);
  const double preprocess_s = timer.ElapsedSeconds();
  std::printf("preprocessing host: %u vertices, CH built in %.2f s\n",
              g.NumVertices(), preprocess_s);

  // Persist both artifacts (in-memory streams here; roadnet_cli does the
  // same against files).
  std::stringstream graph_blob, index_blob;
  WriteGraph(g, graph_blob);
  ch.Serialize(index_blob);
  std::printf("artifacts: graph %.1f MiB, index %.1f MiB\n",
              graph_blob.str().size() / (1024.0 * 1024.0),
              index_blob.str().size() / (1024.0 * 1024.0));

  // --- "Query server": load artifacts, no preprocessing. ---
  timer.Reset();
  std::string error;
  auto loaded_graph = ReadGraph(graph_blob, &error);
  if (!loaded_graph.has_value()) {
    std::fprintf(stderr, "graph load failed: %s\n", error.c_str());
    return 1;
  }
  auto loaded_ch = ChIndex::Deserialize(*loaded_graph, index_blob, &error);
  if (loaded_ch == nullptr) {
    std::fprintf(stderr, "index load failed: %s\n", error.c_str());
    return 1;
  }
  const double load_s = timer.ElapsedSeconds();
  std::printf("query server up in %.3f s (%.0fx faster than preprocessing)\n",
              load_s, preprocess_s / load_s);

  // Serve a query burst and cross-check against the original index.
  Rng rng(3);
  timer.Reset();
  size_t mismatches = 0;
  const int kQueries = 2000;
  for (int i = 0; i < kQueries; ++i) {
    const VertexId s = static_cast<VertexId>(
        rng.NextBelow(loaded_graph->NumVertices()));
    const VertexId t = static_cast<VertexId>(
        rng.NextBelow(loaded_graph->NumVertices()));
    if (loaded_ch->DistanceQuery(s, t) != ch.DistanceQuery(s, t)) {
      ++mismatches;
    }
  }
  std::printf("%d distance queries in %.1f ms, %zu mismatches vs the "
              "original index (must be 0)\n",
              kQueries, timer.ElapsedMicros() / 1000.0 / 2, mismatches);
  return mismatches == 0 ? 0 : 1;
}
