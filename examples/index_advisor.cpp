// Executable form of the paper's selection guidelines (Sections 4.7, 5):
// describe a workload, get a technique recommendation, and optionally
// validate it empirically by building the candidates on a synthetic
// network and measuring them on a matching workload.
//
//   ./index_advisor [--vertices N] [--paths F] [--long-range F]
//                   [--no-space-constraint] [--validate]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "ch/ch_index.h"
#include "core/experiment.h"
#include "core/guidelines.h"
#include "graph/generator.h"
#include "silc/silc_index.h"
#include "tnr/tnr_index.h"
#include "workload/query_gen.h"

int main(int argc, char** argv) {
  using namespace roadnet;

  WorkloadProfile profile;
  profile.num_vertices = 100000;
  profile.path_query_fraction = 0.5;
  profile.long_range_fraction = 0.5;
  profile.space_constrained = true;
  bool validate = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--vertices") && i + 1 < argc) {
      profile.num_vertices = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--paths") && i + 1 < argc) {
      profile.path_query_fraction = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--long-range") && i + 1 < argc) {
      profile.long_range_fraction = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--no-space-constraint")) {
      profile.space_constrained = false;
    } else if (!std::strcmp(argv[i], "--validate")) {
      validate = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--vertices N] [--paths F] [--long-range F] "
                   "[--no-space-constraint] [--validate]\n",
                   argv[0]);
      return 1;
    }
  }

  const Recommendation rec = RecommendMethod(profile);
  std::printf("workload: n=%u, %.0f%% path queries, %.0f%% long-range, "
              "space %s\n",
              profile.num_vertices, 100 * profile.path_query_fraction,
              100 * profile.long_range_fraction,
              profile.space_constrained ? "constrained" : "unconstrained");
  std::printf("recommendation: %s\n  %s\n", rec.method.c_str(),
              rec.rationale.c_str());
  if (!validate) return 0;

  // Empirical check on a scaled synthetic network (capped for wall clock).
  GeneratorConfig config;
  config.target_vertices = std::min(profile.num_vertices, 20000u);
  config.seed = 77;
  Graph g = GenerateRoadNetwork(config);
  const auto sets = GenerateLInfQuerySets(g, 200, 13);
  QuerySet workload;
  workload.name = "profile";
  // Approximate the profile: near sets for short-range, far for long.
  for (const auto& set : sets) {
    const bool long_range = set.name >= "Q7" || set.name == "Q10";
    const double want =
        long_range ? profile.long_range_fraction : 1 - profile.long_range_fraction;
    const size_t take = static_cast<size_t>(want * set.pairs.size() / 5);
    workload.pairs.insert(workload.pairs.end(), set.pairs.begin(),
                          set.pairs.begin() +
                              std::min(take, set.pairs.size()));
  }
  std::printf("\nvalidation on n=%u (%zu mixed queries):\n", g.NumVertices(),
              workload.pairs.size());

  ChIndex ch(g);
  TnrConfig tnr_config;
  tnr_config.grid_resolution = DefaultGridResolution(g.NumVertices());
  TnrIndex tnr(g, &ch, tnr_config);
  std::unique_ptr<SilcIndex> silc;
  if (g.NumVertices() <= 5000) silc = std::make_unique<SilcIndex>(g);

  auto report = [&](PathIndex* index) {
    const double dist_us = Experiment::MeasureDistanceQueries(index, workload);
    const double path_us = Experiment::MeasurePathQueries(index, workload);
    std::printf("  %-6s %8.1f MiB   dist %8.2f us   path %8.2f us\n",
                index->Name().c_str(),
                index->IndexBytes() / (1024.0 * 1024.0), dist_us, path_us);
  };
  report(&ch);
  report(&tnr);
  if (silc) report(silc.get());
  return 0;
}
