#include "io/serialize.h"

#include <fstream>
#include <sstream>

#include "io/binary.h"
#include "io/crc32.h"

namespace roadnet {

namespace {

constexpr char kGraphMagic[8] = {'R', 'N', 'E', 'T', 'G', 'R', 'P', 'H'};
// Version 2 wraps the payload in a length + CRC32 trailer (io/crc32.h)
// so truncated or bit-flipped files fail at load time.
constexpr uint32_t kGraphVersion = 2;

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

void WriteGraph(const Graph& g, std::ostream& out) {
  WriteMagic(out, kGraphMagic);
  WriteScalar<uint32_t>(out, kGraphVersion);
  std::ostringstream payload;
  WriteScalar<uint32_t>(payload, g.NumVertices());
  // Coordinates.
  WriteVector(payload, g.Coords());
  // Edges, one record per undirected edge.
  struct EdgeRecord {
    VertexId u;
    VertexId v;
    Weight w;
  };
  std::vector<EdgeRecord> edges;
  edges.reserve(g.NumEdges());
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (const Arc& a : g.Neighbors(u)) {
      if (u < a.to) edges.push_back(EdgeRecord{u, a.to, a.weight});
    }
  }
  WriteVector(payload, edges);
  WriteChecksummedPayload(out, payload.view());
}

std::optional<Graph> ReadGraph(std::istream& in, std::string* error) {
  if (!CheckMagic(in, kGraphMagic)) {
    SetError(error, "graph: bad magic");
    return std::nullopt;
  }
  uint32_t version = 0;
  if (!ReadScalar(in, &version) || version != kGraphVersion) {
    SetError(error,
             "graph: unsupported version (re-run generate/convert with this "
             "build)");
    return std::nullopt;
  }
  std::string buffer;
  if (!ReadChecksummedPayload(in, &buffer, "graph", error)) {
    return std::nullopt;
  }
  std::istringstream payload(buffer);
  std::istream& body = payload;
  uint32_t n = 0;
  if (!ReadScalar(body, &n)) {
    SetError(error, "graph: truncated header");
    return std::nullopt;
  }
  std::vector<Point> coords;
  if (!ReadVector(body, &coords) || coords.size() != n) {
    SetError(error, "graph: bad coordinate block");
    return std::nullopt;
  }
  struct EdgeRecord {
    VertexId u;
    VertexId v;
    Weight w;
  };
  std::vector<EdgeRecord> edges;
  if (!ReadVector(body, &edges)) {
    SetError(error, "graph: bad edge block");
    return std::nullopt;
  }
  GraphBuilder builder(n);
  for (VertexId v = 0; v < n; ++v) builder.SetCoord(v, coords[v]);
  for (const EdgeRecord& e : edges) {
    if (e.u >= n || e.v >= n || e.w == 0) {
      SetError(error, "graph: invalid edge record");
      return std::nullopt;
    }
    builder.AddEdge(e.u, e.v, e.w);
  }
  return std::move(builder).Build();
}

bool WriteGraphFile(const Graph& g, const std::string& path,
                    std::string* error) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    SetError(error, "cannot open " + path + " for writing");
    return false;
  }
  WriteGraph(g, out);
  return static_cast<bool>(out);
}

std::optional<Graph> ReadGraphFile(const std::string& path,
                                   std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    SetError(error, "cannot open " + path);
    return std::nullopt;
  }
  return ReadGraph(in, error);
}

}  // namespace roadnet
