#ifndef ROADNET_IO_CRC32_H_
#define ROADNET_IO_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>

#include "io/binary.h"

namespace roadnet {

// CRC-32 (ISO-HDLC polynomial, the zlib/PNG variant) over arbitrary
// bytes. An index file travels from the preprocessing host to query
// servers; a truncated copy or a flipped bit must fail loudly at load
// time, not surface later as a wrong distance. Table-driven, one shift
// per byte — file loading is I/O bound, not CRC bound.
namespace crc32_internal {

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace crc32_internal

// CRC of `data`; chain calls by passing the previous result as `seed`.
inline uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = crc32_internal::kTable[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

inline uint32_t Crc32(std::string_view data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

// Checksummed payload block: u64 length, the payload bytes, then the
// u32 CRC of those bytes. Writers serialize the payload into a buffer
// first; readers verify the trailer before any parsing, so corrupt input
// is rejected before it can construct a broken index.
inline void WriteChecksummedPayload(std::ostream& out,
                                    std::string_view payload) {
  WriteScalar<uint64_t>(out, payload.size());
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  WriteScalar<uint32_t>(out, Crc32(payload));
}

// Reads a checksummed payload block into *payload. On failure returns
// false and describes the problem ("truncated", "checksum mismatch") in
// *error with `what` as a prefix. `max_bytes` guards against a corrupt
// length triggering a giant allocation.
inline bool ReadChecksummedPayload(std::istream& in, std::string* payload,
                                   const std::string& what,
                                   std::string* error,
                                   uint64_t max_bytes = uint64_t{1} << 34) {
  auto fail = [&](const char* why) {
    if (error != nullptr) *error = what + ": " + why;
    return false;
  };
  uint64_t size = 0;
  if (!ReadScalar(in, &size)) return fail("truncated header");
  if (size > max_bytes) return fail("implausible payload length (corrupt?)");
  payload->resize(size);
  in.read(payload->data(), static_cast<std::streamsize>(size));
  if (!in) return fail("truncated payload");
  uint32_t stored = 0;
  if (!ReadScalar(in, &stored)) return fail("missing checksum trailer");
  if (stored != Crc32(*payload)) {
    return fail("checksum mismatch (truncated or bit-flipped file)");
  }
  return true;
}

}  // namespace roadnet

#endif  // ROADNET_IO_CRC32_H_
