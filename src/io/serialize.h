#ifndef ROADNET_IO_SERIALIZE_H_
#define ROADNET_IO_SERIALIZE_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "graph/graph.h"

namespace roadnet {

// Versioned binary serialization for graphs and preprocessed indexes, so
// a deployment can run preprocessing once (CH on the full USA graph takes
// the paper 30 minutes) and ship the index to query servers.
//
// Format: 8-byte magic ("RNETxxxx" per payload kind), u32 version, then
// a checksummed payload block (u64 length, payload bytes, u32 CRC32 of
// the payload — io/crc32.h). All integers little-endian, lengths
// prefixed. Readers verify the checksum before parsing, so truncated or
// bit-flipped files are rejected with a descriptive *error instead of
// constructing a corrupt graph or index.

// --- Graph ---
void WriteGraph(const Graph& g, std::ostream& out);
std::optional<Graph> ReadGraph(std::istream& in, std::string* error);

bool WriteGraphFile(const Graph& g, const std::string& path,
                    std::string* error);
std::optional<Graph> ReadGraphFile(const std::string& path,
                                   std::string* error);

}  // namespace roadnet

#endif  // ROADNET_IO_SERIALIZE_H_
