#ifndef ROADNET_IO_SERIALIZE_H_
#define ROADNET_IO_SERIALIZE_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "graph/graph.h"

namespace roadnet {

// Versioned binary serialization for graphs and preprocessed indexes, so
// a deployment can run preprocessing once (CH on the full USA graph takes
// the paper 30 minutes) and ship the index to query servers.
//
// Format: 8-byte magic ("RNETxxxx" per payload kind), u32 version, then
// payload. All integers little-endian, lengths prefixed. Readers return
// nullopt on malformed input and describe the problem in *error.

// --- Graph ---
void WriteGraph(const Graph& g, std::ostream& out);
std::optional<Graph> ReadGraph(std::istream& in, std::string* error);

bool WriteGraphFile(const Graph& g, const std::string& path,
                    std::string* error);
std::optional<Graph> ReadGraphFile(const std::string& path,
                                   std::string* error);

}  // namespace roadnet

#endif  // ROADNET_IO_SERIALIZE_H_
