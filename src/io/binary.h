#ifndef ROADNET_IO_BINARY_H_
#define ROADNET_IO_BINARY_H_

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <type_traits>
#include <vector>

namespace roadnet {

// Minimal little-endian binary primitives shared by every serializer.
// The repository only targets little-endian platforms (as the CMake
// toolchain asserts nothing else), so raw writes are byte-exact.

template <typename T>
void WriteScalar(std::ostream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadScalar(std::istream& in, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

// Length-prefixed vector of trivially copyable elements.
template <typename T>
void WriteVector(std::ostream& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  WriteScalar<uint64_t>(out, v.size());
  if (!v.empty()) {
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(T)));
  }
}

// Reads a length-prefixed vector; rejects sizes above `max_elements`
// (corruption guard so a bad length cannot trigger a giant allocation).
template <typename T>
bool ReadVector(std::istream& in, std::vector<T>* v,
                uint64_t max_elements = uint64_t{1} << 32) {
  static_assert(std::is_trivially_copyable_v<T>);
  uint64_t size = 0;
  if (!ReadScalar(in, &size) || size > max_elements) return false;
  v->resize(size);
  if (size > 0) {
    in.read(reinterpret_cast<char*>(v->data()),
            static_cast<std::streamsize>(size * sizeof(T)));
  }
  return static_cast<bool>(in);
}

// 8-byte magic tag check.
inline void WriteMagic(std::ostream& out, const char magic[8]) {
  out.write(magic, 8);
}
inline bool CheckMagic(std::istream& in, const char magic[8]) {
  char buf[8] = {};
  in.read(buf, 8);
  return in && std::memcmp(buf, magic, 8) == 0;
}

}  // namespace roadnet

#endif  // ROADNET_IO_BINARY_H_
