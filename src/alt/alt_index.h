#ifndef ROADNET_ALT_ALT_INDEX_H_
#define ROADNET_ALT_ALT_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "pq/indexed_heap.h"
#include "routing/path_index.h"

namespace roadnet {

// Tuning knobs of ALT.
struct AltConfig {
  // Landmarks to select (the classic studies use 8-16 on road networks).
  uint32_t num_landmarks = 12;

  // Seed for the initial farthest-point selection pick.
  uint64_t seed = 1;
};

// ALT (Goldberg & Harrelson 2005) — the representative of the paper's
// Appendix A "additional related work": A* search with lower bounds from
// landmark distances and the triangle inequality.
//
// Preprocessing selects k landmarks by farthest-point traversal and
// stores dist(L, v) for every landmark L and vertex v (O(k*n) space,
// k full Dijkstras). A query runs A* with the admissible, consistent
// potential
//   pi_t(v) = max over L of |dist(L, t) - dist(L, v)|,
// which steers the search toward t. The paper excludes ALT from its main
// comparison because prior work showed it inferior to CH in both space
// and query time; bench_appa_alt reproduces that dominance on the
// synthetic datasets.
class AltIndex : public PathIndex {
 public:
  AltIndex(const Graph& g, const AltConfig& config);
  explicit AltIndex(const Graph& g) : AltIndex(g, AltConfig{}) {}

  std::string Name() const override { return "ALT"; }
  std::unique_ptr<QueryContext> NewContext() const override;
  Distance DistanceQuery(QueryContext* ctx, VertexId s,
                         VertexId t) const override;
  Path PathQuery(QueryContext* ctx, VertexId s, VertexId t) const override;
  using PathIndex::DistanceQuery;
  using PathIndex::PathQuery;
  size_t IndexBytes() const override;

  const std::vector<VertexId>& Landmarks() const { return landmarks_; }

  // The A* potential: a lower bound on dist(v, t). Exposed for the
  // admissibility property tests.
  Distance LowerBound(VertexId v, VertexId t) const;

  // Vertices settled by the most recent default-context query
  // (goal-direction metric; A* should settle far fewer than plain
  // Dijkstra on directed queries).
  size_t SettledCount() const { return ContextCounters().vertices_settled; }

 private:
  // Query scratch (generation-stamped).
  struct Context : QueryContext {
    explicit Context(uint32_t n)
        : heap(n), dist(n, 0), parent(n, kInvalidVertex), reached(n, 0),
          settled(n, 0) {}

    IndexedHeap<Distance> heap;
    std::vector<Distance> dist;
    std::vector<VertexId> parent;
    std::vector<uint32_t> reached;
    std::vector<uint32_t> settled;
    uint32_t generation = 0;
  };

  // dist(landmarks_[i], v) at landmark_dist_[i * n + v].
  Distance LandmarkDistance(uint32_t i, VertexId v) const {
    return landmark_dist_[static_cast<size_t>(i) * graph_.NumVertices() + v];
  }

  // Runs the A* search; returns dist (kInfDistance if unreachable) and
  // leaves the parent tree in the context for path extraction.
  Distance Search(Context* ctx, VertexId s, VertexId t) const;

  const Graph& graph_;
  std::vector<VertexId> landmarks_;
  std::vector<Distance> landmark_dist_;  // k x n row-major
};

}  // namespace roadnet

#endif  // ROADNET_ALT_ALT_INDEX_H_
