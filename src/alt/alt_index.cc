#include "alt/alt_index.h"

#include <algorithm>

#include "dijkstra/dijkstra.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace roadnet {

AltIndex::AltIndex(const Graph& g, const AltConfig& config)
    : graph_(g),
      heap_(g.NumVertices()),
      dist_(g.NumVertices(), 0),
      parent_(g.NumVertices(), kInvalidVertex),
      reached_(g.NumVertices(), 0),
      settled_(g.NumVertices(), 0) {
  const uint32_t n = g.NumVertices();
  const uint32_t k = std::max(1u, std::min(config.num_landmarks, n));
  landmark_dist_.reserve(static_cast<size_t>(k) * n);

  // Farthest-point landmark selection: each new landmark maximizes its
  // distance to the closest already-chosen one, spreading landmarks along
  // the network periphery where their bounds are tight.
  Dijkstra dijkstra(g);
  Rng rng(config.seed);
  std::vector<Distance> min_dist(n, kInfDistance);
  VertexId next = static_cast<VertexId>(rng.NextBelow(n));
  for (uint32_t i = 0; i < k; ++i) {
    landmarks_.push_back(next);
    dijkstra.RunAll(next);
    VertexId farthest = next;
    Distance farthest_dist = 0;
    for (VertexId v = 0; v < n; ++v) {
      const Distance d = dijkstra.DistanceTo(v);
      landmark_dist_.push_back(d);
      if (d != kInfDistance) {
        min_dist[v] = std::min(min_dist[v], d);
        if (min_dist[v] > farthest_dist) {
          farthest_dist = min_dist[v];
          farthest = v;
        }
      }
    }
    next = farthest;
  }
}

Distance AltIndex::LowerBound(VertexId v, VertexId t) const {
  // Triangle inequality, both directions (the graph is undirected):
  // dist(v, t) >= |dist(L, t) - dist(L, v)| for every landmark L.
  Distance bound = 0;
  for (uint32_t i = 0; i < landmarks_.size(); ++i) {
    const Distance dv = LandmarkDistance(i, v);
    const Distance dt = LandmarkDistance(i, t);
    if (dv == kInfDistance || dt == kInfDistance) continue;
    const Distance diff = dv > dt ? dv - dt : dt - dv;
    bound = std::max(bound, diff);
  }
  return bound;
}

Distance AltIndex::Search(VertexId s, VertexId t) {
  ++generation_;
  heap_.Clear();
  settled_count_ = 0;
  dist_[s] = 0;
  parent_[s] = kInvalidVertex;
  reached_[s] = generation_;
  heap_.Push(s, LowerBound(s, t));

  while (!heap_.Empty()) {
    const VertexId u = heap_.PopMin();
    settled_[u] = generation_;
    ++settled_count_;
    if (u == t) return dist_[t];
    const Distance du = dist_[u];
    for (const Arc& a : graph_.Neighbors(u)) {
      if (settled_[a.to] == generation_) continue;
      const Distance cand = du + a.weight;
      if (reached_[a.to] != generation_) {
        reached_[a.to] = generation_;
        dist_[a.to] = cand;
        parent_[a.to] = u;
        heap_.Push(a.to, cand + LowerBound(a.to, t));
      } else if (cand < dist_[a.to]) {
        // The potential is consistent, so keys only ever decrease with
        // the tentative distance.
        const Distance key = cand + LowerBound(a.to, t);
        dist_[a.to] = cand;
        parent_[a.to] = u;
        heap_.DecreaseKey(a.to, key);
      }
    }
  }
  return kInfDistance;
}

Distance AltIndex::DistanceQuery(VertexId s, VertexId t) {
  if (s == t) return 0;
  return Search(s, t);
}

Path AltIndex::PathQuery(VertexId s, VertexId t) {
  if (s == t) return {s};
  if (Search(s, t) == kInfDistance) return {};
  Path path;
  for (VertexId cur = t; cur != kInvalidVertex; cur = parent_[cur]) {
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

size_t AltIndex::IndexBytes() const {
  return VectorBytes(landmarks_) + VectorBytes(landmark_dist_);
}

}  // namespace roadnet
