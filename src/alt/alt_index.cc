#include "alt/alt_index.h"

#include <algorithm>

#include "dijkstra/dijkstra.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace roadnet {

AltIndex::AltIndex(const Graph& g, const AltConfig& config) : graph_(g) {
  const uint32_t n = g.NumVertices();
  const uint32_t k = std::max(1u, std::min(config.num_landmarks, n));
  landmark_dist_.reserve(static_cast<size_t>(k) * n);

  // Farthest-point landmark selection: each new landmark maximizes its
  // distance to the closest already-chosen one, spreading landmarks along
  // the network periphery where their bounds are tight.
  Dijkstra dijkstra(g);
  Rng rng(config.seed);
  std::vector<Distance> min_dist(n, kInfDistance);
  VertexId next = static_cast<VertexId>(rng.NextBelow(n));
  for (uint32_t i = 0; i < k; ++i) {
    landmarks_.push_back(next);
    dijkstra.RunAll(next);
    VertexId farthest = next;
    Distance farthest_dist = 0;
    for (VertexId v = 0; v < n; ++v) {
      const Distance d = dijkstra.DistanceTo(v);
      landmark_dist_.push_back(d);
      if (d != kInfDistance) {
        min_dist[v] = std::min(min_dist[v], d);
        if (min_dist[v] > farthest_dist) {
          farthest_dist = min_dist[v];
          farthest = v;
        }
      }
    }
    next = farthest;
  }
}

Distance AltIndex::LowerBound(VertexId v, VertexId t) const {
  // Triangle inequality, both directions (the graph is undirected):
  // dist(v, t) >= |dist(L, t) - dist(L, v)| for every landmark L.
  Distance bound = 0;
  for (uint32_t i = 0; i < landmarks_.size(); ++i) {
    const Distance dv = LandmarkDistance(i, v);
    const Distance dt = LandmarkDistance(i, t);
    if (dv == kInfDistance || dt == kInfDistance) continue;
    const Distance diff = dv > dt ? dv - dt : dt - dv;
    bound = std::max(bound, diff);
  }
  return bound;
}

std::unique_ptr<QueryContext> AltIndex::NewContext() const {
  return std::make_unique<Context>(graph_.NumVertices());
}

Distance AltIndex::Search(Context* ctx, VertexId s, VertexId t) const {
  ++ctx->generation;
  ctx->heap.Clear();
  ctx->dist[s] = 0;
  ctx->parent[s] = kInvalidVertex;
  ctx->reached[s] = ctx->generation;
  ctx->heap.Push(s, LowerBound(s, t));
  ctx->counters.HeapPush();
  ctx->counters.TableLookup(landmarks_.size());

  while (!ctx->heap.Empty()) {
    const VertexId u = ctx->heap.PopMin();
    ctx->counters.HeapPop();
    ctx->settled[u] = ctx->generation;
    ctx->counters.Settle();
    if (u == t) return ctx->dist[t];
    const Distance du = ctx->dist[u];
    for (const Arc& a : graph_.Neighbors(u)) {
      if (ctx->settled[a.to] == ctx->generation) continue;
      ctx->counters.RelaxEdge();
      const Distance cand = du + a.weight;
      if (ctx->reached[a.to] != ctx->generation) {
        ctx->reached[a.to] = ctx->generation;
        ctx->dist[a.to] = cand;
        ctx->parent[a.to] = u;
        ctx->heap.Push(a.to, cand + LowerBound(a.to, t));
        ctx->counters.HeapPush();
        ctx->counters.TableLookup(landmarks_.size());
      } else if (cand < ctx->dist[a.to]) {
        // The potential is consistent, so keys only ever decrease with
        // the tentative distance.
        const Distance key = cand + LowerBound(a.to, t);
        ctx->dist[a.to] = cand;
        ctx->parent[a.to] = u;
        ctx->heap.DecreaseKey(a.to, key);
        ctx->counters.HeapPush();
        ctx->counters.TableLookup(landmarks_.size());
      }
    }
  }
  return kInfDistance;
}

Distance AltIndex::DistanceQuery(QueryContext* ctx, VertexId s,
                                 VertexId t) const {
  ctx->counters.Reset();
  if (s == t) return 0;
  return Search(static_cast<Context*>(ctx), s, t);
}

Path AltIndex::PathQuery(QueryContext* raw_ctx, VertexId s,
                         VertexId t) const {
  Context* ctx = static_cast<Context*>(raw_ctx);
  ctx->counters.Reset();
  if (s == t) return {s};
  if (Search(ctx, s, t) == kInfDistance) return {};
  Path path;
  for (VertexId cur = t; cur != kInvalidVertex; cur = ctx->parent[cur]) {
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

size_t AltIndex::IndexBytes() const {
  return VectorBytes(landmarks_) + VectorBytes(landmark_dist_);
}

}  // namespace roadnet
