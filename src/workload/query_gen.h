#ifndef ROADNET_WORKLOAD_QUERY_GEN_H_
#define ROADNET_WORKLOAD_QUERY_GEN_H_

#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace roadnet {

// One query workload: a named list of (source, target) pairs.
struct QuerySet {
  std::string name;
  std::vector<std::pair<VertexId, VertexId>> pairs;
};

// The paper's query sets Q1..Q10 (Section 4.2): impose a 1024x1024 grid on
// the network, let l be the cell side, and fill Qi with random vertex
// pairs whose L-infinity distance lies in [2^(i-1) * l, 2^i * l).
// Buckets that the network cannot populate (e.g. the graph's diameter is
// too small) come back smaller than `per_set`; they are never padded with
// out-of-range pairs.
std::vector<QuerySet> GenerateLInfQuerySets(const Graph& g, size_t per_set,
                                            uint64_t seed);

// The alternative sets R1..R10 (Appendix E.2): ld is a rough estimate of
// the maximum network distance, and Ri holds pairs with
// dist(u, v) in [2^(i-11) * ld, 2^(i-10) * ld).
std::vector<QuerySet> GenerateNetworkDistanceQuerySets(const Graph& g,
                                                       size_t per_set,
                                                       uint64_t seed);

}  // namespace roadnet

#endif  // ROADNET_WORKLOAD_QUERY_GEN_H_
