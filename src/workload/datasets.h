#ifndef ROADNET_WORKLOAD_DATASETS_H_
#define ROADNET_WORKLOAD_DATASETS_H_

#include <string>
#include <vector>

#include "graph/generator.h"
#include "graph/graph.h"

namespace roadnet {

// One synthetic stand-in for a Table 1 dataset. Sizes mirror the paper's
// ten DIMACS road networks at roughly 1:100 scale (see DESIGN.md for the
// substitution rationale); names carry a prime to signal the analogue.
struct DatasetSpec {
  std::string name;         // e.g. "DE'"
  std::string paper_name;   // e.g. "DE (Delaware)"
  uint32_t target_vertices;
  uint64_t seed;
};

// The ten dataset analogues, smallest to largest (DE' .. US').
const std::vector<DatasetSpec>& PaperDatasets();

// The four smallest datasets — the only ones SILC/PCPD can index, exactly
// as in the paper (Section 4.3 reports SILC/PCPD on DE, NH, ME, CO only).
std::vector<DatasetSpec> SmallDatasets();

// Builds the synthetic road network for a spec (deterministic).
Graph BuildDataset(const DatasetSpec& spec);

}  // namespace roadnet

#endif  // ROADNET_WORKLOAD_DATASETS_H_
