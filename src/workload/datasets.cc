#include "workload/datasets.h"

namespace roadnet {

const std::vector<DatasetSpec>& PaperDatasets() {
  // Vertex counts are Table 1 divided by ~100. The seed varies per dataset
  // so the networks are not nested copies of one another.
  static const std::vector<DatasetSpec>* const kDatasets =
      new std::vector<DatasetSpec>{
          {"DE'", "DE (Delaware)", 500, 101},
          {"NH'", "NH (New Hampshire)", 1150, 102},
          {"ME'", "ME (Maine)", 1900, 103},
          {"CO'", "CO (Colorado)", 4400, 104},
          {"FL'", "FL (Florida)", 10700, 105},
          {"CA'", "CA (California and Nevada)", 18900, 106},
          {"E-US'", "E-US (Eastern US)", 36000, 107},
          {"W-US'", "W-US (Western US)", 62600, 108},
          {"C-US'", "C-US (Central US)", 140800, 109},
          {"US'", "US (United States)", 239500, 110},
      };
  return *kDatasets;
}

std::vector<DatasetSpec> SmallDatasets() {
  const auto& all = PaperDatasets();
  return {all.begin(), all.begin() + 4};
}

Graph BuildDataset(const DatasetSpec& spec) {
  GeneratorConfig config;
  config.target_vertices = spec.target_vertices;
  config.seed = spec.seed;
  return GenerateRoadNetwork(config);
}

}  // namespace roadnet
