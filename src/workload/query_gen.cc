#include "workload/query_gen.h"

#include <algorithm>

#include "dijkstra/dijkstra.h"
#include "tnr/cell_grid.h"
#include "util/rng.h"

namespace roadnet {

namespace {

constexpr int kNumSets = 10;

// Uniform random vertex.
VertexId RandomVertex(const Graph& g, Rng* rng) {
  return static_cast<VertexId>(rng->NextBelow(g.NumVertices()));
}

}  // namespace

std::vector<QuerySet> GenerateLInfQuerySets(const Graph& g, size_t per_set,
                                            uint64_t seed) {
  Rng rng(seed);
  // l = cell side of the paper's 1024x1024 grid.
  const Rect& b = g.Bounds();
  const int64_t span = std::max<int64_t>(
      std::max(static_cast<int64_t>(b.max_x) - b.min_x,
               static_cast<int64_t>(b.max_y) - b.min_y),
      1024);
  const int64_t l = (span + 1023) / 1024;

  // Secondary coarse grid for targeted sampling of near buckets, where
  // rejection sampling would practically never hit.
  const CellGrid grid(g, 256);
  const int64_t cell_side = (span + 255) / 256;

  std::vector<QuerySet> sets(kNumSets);
  for (int i = 0; i < kNumSets; ++i) {
    sets[i].name = "Q" + std::to_string(i + 1);
    const int64_t lo = l << i;        // 2^(i-1) * l with i one-based
    const int64_t hi = l << (i + 1);  // 2^i * l

    auto in_range = [&](VertexId s, VertexId t) {
      const int64_t d = LInfDistance(g.Coord(s), g.Coord(t));
      return s != t && d >= lo && d < hi;
    };

    size_t stale = 0;  // consecutive failures; bail out on hopeless buckets
    while (sets[i].pairs.size() < per_set && stale < per_set * 4 + 400) {
      // Cheap first: plain rejection sampling (wins for far buckets).
      bool found = false;
      for (int attempt = 0; attempt < 8 && !found; ++attempt) {
        const VertexId s = RandomVertex(g, &rng);
        const VertexId t = RandomVertex(g, &rng);
        if (in_range(s, t)) {
          sets[i].pairs.emplace_back(s, t);
          found = true;
        }
      }
      if (found) {
        stale = 0;
        continue;
      }
      // Targeted: scan the coarse-grid ring around a random source.
      const VertexId s = RandomVertex(g, &rng);
      const CellCoord cs = grid.CellOf(s);
      const int32_t r_lo = std::max<int64_t>(0, lo / cell_side - 1);
      const int32_t r_hi =
          static_cast<int32_t>(std::min<int64_t>(255, hi / cell_side + 1));
      std::vector<VertexId> candidates;
      for (int32_t y = std::max(0, cs.y - r_hi);
           y <= std::min(255, cs.y + r_hi); ++y) {
        for (int32_t x = std::max(0, cs.x - r_hi);
             x <= std::min(255, cs.x + r_hi); ++x) {
          if (CellChebyshev(cs, CellCoord{x, y}) < r_lo) continue;
          for (VertexId t : grid.VerticesIn(grid.CellIndex(CellCoord{x, y}))) {
            if (in_range(s, t)) candidates.push_back(t);
          }
        }
      }
      if (candidates.empty()) {
        ++stale;
        continue;
      }
      stale = 0;
      sets[i].pairs.emplace_back(
          s, candidates[rng.NextBelow(candidates.size())]);
    }
  }
  return sets;
}

std::vector<QuerySet> GenerateNetworkDistanceQuerySets(const Graph& g,
                                                       size_t per_set,
                                                       uint64_t seed) {
  Rng rng(seed);
  Dijkstra dijkstra(g);

  // Rough maximum network distance: the eccentricity of a corner vertex
  // (the paper likewise uses "a rough estimation").
  VertexId corner = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (static_cast<int64_t>(g.Coord(v).x) + g.Coord(v).y <
        static_cast<int64_t>(g.Coord(corner).x) + g.Coord(corner).y) {
      corner = v;
    }
  }
  dijkstra.RunAll(corner);
  Distance ld = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const Distance d = dijkstra.DistanceTo(v);
    if (d != kInfDistance) ld = std::max(ld, d);
  }

  std::vector<QuerySet> sets(kNumSets);
  std::vector<std::pair<Distance, Distance>> bounds(kNumSets);
  for (int i = 0; i < kNumSets; ++i) {
    sets[i].name = "R" + std::to_string(i + 1);
    // [2^(i-11) ld, 2^(i-10) ld) with i one-based: R10 = [ld/2, ld).
    bounds[i] = {ld >> (10 - i), ld >> (9 - i)};
  }

  // One SSSP feeds every bucket: from a random source, sample a few
  // targets inside each still-unfilled distance band.
  size_t stale = 0;
  std::vector<std::vector<VertexId>> candidates(kNumSets);
  auto all_full = [&] {
    for (const auto& s : sets) {
      if (s.pairs.size() < per_set) return false;
    }
    return true;
  };
  const size_t per_source = 25;
  while (!all_full() && stale < 200) {
    const VertexId s = RandomVertex(g, &rng);
    dijkstra.RunAll(s);
    for (auto& c : candidates) c.clear();
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      const Distance d = dijkstra.DistanceTo(t);
      if (t == s || d == kInfDistance) continue;
      for (int i = 0; i < kNumSets; ++i) {
        if (sets[i].pairs.size() < per_set && d >= bounds[i].first &&
            d < bounds[i].second) {
          candidates[i].push_back(t);
          break;
        }
      }
    }
    bool progressed = false;
    for (int i = 0; i < kNumSets; ++i) {
      auto& c = candidates[i];
      for (size_t k = 0; k < per_source && !c.empty() &&
                         sets[i].pairs.size() < per_set;
           ++k) {
        const size_t pick = rng.NextBelow(c.size());
        sets[i].pairs.emplace_back(s, c[pick]);
        c[pick] = c.back();
        c.pop_back();
        progressed = true;
      }
    }
    stale = progressed ? 0 : stale + 1;
  }
  return sets;
}

}  // namespace roadnet
