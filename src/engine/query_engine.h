#ifndef ROADNET_ENGINE_QUERY_ENGINE_H_
#define ROADNET_ENGINE_QUERY_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "graph/types.h"
#include "obs/histogram.h"
#include "obs/query_counters.h"
#include "routing/path.h"
#include "routing/path_index.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace roadnet {

// Per-batch execution metrics: the throughput view of the paper's
// per-query latency numbers (queries/sec is what a production service
// provisions by; the percentiles are what its SLOs are written against).
struct BatchStats {
  size_t num_queries = 0;
  size_t num_threads = 0;
  size_t chunk_size = 0;
  // Chunks a worker claimed from another worker's segment — nonzero when
  // the static split was unbalanced and stealing actually engaged.
  size_t stolen_chunks = 0;
  double wall_seconds = 0;
  double queries_per_second = 0;
  // Per-query latency percentiles in microseconds, derived from the
  // merged per-worker histograms (<= 1.6% bucket error; min/max exact).
  // Zero unless BatchOptions::record_latencies.
  double p50_micros = 0;
  double p90_micros = 0;
  double p99_micros = 0;
  double p999_micros = 0;
  double max_micros = 0;
  // Operation counts summed over every query of the batch (all workers).
  // Zero unless BatchOptions::record_counters.
  QueryCounters counters;
};

struct BatchOptions {
  // Also materialize every shortest path (PathQuery) instead of distances
  // only (DistanceQuery).
  bool collect_paths = false;
  // Time every query individually for the latency percentiles. Costs two
  // clock reads plus one histogram add per query; disable for
  // pure-throughput runs.
  bool record_latencies = true;
  // Aggregate the per-query operation counters into BatchStats::counters.
  // One 7-field add per query on the worker's own context — cheap, but
  // disable it to measure the raw query path alone.
  bool record_counters = true;
  // Queries per stealable chunk; 0 picks a size from the batch and worker
  // counts. Small chunks balance better, large chunks amortize the atomic
  // claim.
  size_t chunk_size = 0;
  // Per-query tracing (obs/trace.h execute spans): stamp every query's
  // start/end as steady_clock nanoseconds relative to `trace_epoch` and
  // snapshot its counters into the per-query BatchResult vectors. The
  // server enables this only when its Tracer is live; workers write
  // disjoint indices, so no synchronization beyond the batch join.
  bool record_per_query = false;
  std::chrono::steady_clock::time_point trace_epoch{};
};

// Type-erased per-item task for query families that are not
// (source, target) pairs — kNN, one-to-many. Invoked once for every
// index in [0, count) on some worker thread; `worker_id` selects the
// caller's per-worker scratch (contexts indexed [0, NumThreads())), and
// the task reports its operation counts through *counters (pre-reset).
using QueryTask =
    std::function<void(size_t worker_id, size_t index, QueryCounters*)>;

struct BatchResult {
  // distances[i] answers queries[i] (kInfDistance if unreachable).
  std::vector<Distance> distances;
  // paths[i] answers queries[i]; empty unless BatchOptions::collect_paths.
  std::vector<Path> paths;
  // Merged per-worker latency histogram in nanoseconds; empty unless
  // BatchOptions::record_latencies. stats' percentiles derive from it,
  // and histograms from successive batches can be merged further.
  Histogram latency;
  // Per-query execute windows (nanoseconds since BatchOptions::trace_epoch)
  // and counters snapshots, indexed like `queries`; empty unless
  // BatchOptions::record_per_query.
  std::vector<uint64_t> query_start_ns;
  std::vector<uint64_t> query_end_ns;
  std::vector<QueryCounters> query_counters;
  BatchStats stats;
};

// Concurrent batch query executor over any PathIndex.
//
// A fixed pool of workers is spawned once per engine, each owning one
// QueryContext of the target index; batches are executed by splitting the
// query list into per-worker segments of cache-friendly contiguous
// chunks. Workers drain their own segment first and then steal chunks
// from the remaining segments of other workers, so a straggler (one
// worker hitting the batch's hardest queries) cannot idle the rest of the
// pool. Claiming is one fetch_add on the segment owner's cursor, making
// every chunk executed exactly once.
//
// Run() is synchronous and must not be called from two threads at once:
// the engine asserts on concurrent entry (builds with asserts enabled,
// which includes this repository's default Release flags, abort with a
// diagnostic; NDEBUG builds remain undefined behavior). The engine itself
// may be long-lived and reused across many batches.
class QueryEngine {
 public:
  // Spawns `num_threads` workers (>= 1; 0 is clamped to 1) with one fresh
  // context each. The index must outlive the engine and stay immutable
  // while batches run.
  QueryEngine(const PathIndex& index, size_t num_threads);
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  // Executes the batch and blocks until every query is answered.
  BatchResult Run(std::span<const std::pair<VertexId, VertexId>> queries,
                  const BatchOptions& options = {});

  // Executes `count` generic tasks on the worker pool with the same
  // chunking, stealing, latency/counter recording, and per-query trace
  // stamping as Run(). BatchResult::distances/paths stay empty — the
  // task writes its own outputs (workers touch disjoint indices, so no
  // synchronization is needed beyond the join). collect_paths is
  // ignored. Same no-concurrent-entry contract as Run().
  BatchResult RunTasks(size_t count, const QueryTask& task,
                       const BatchOptions& options = {});

  size_t NumThreads() const { return workers_.size(); }

 private:
  // One worker's claimable segment of the current batch. The cursor is
  // bumped by the owner and by thieves alike; claims past `end` are
  // harmless no-ops.
  struct alignas(64) Segment {
    std::atomic<size_t> cursor{0};
    size_t end = 0;
  };

  // The batch being executed, shared by all workers.
  struct Batch {
    std::span<const std::pair<VertexId, VertexId>> queries;
    // Non-null for RunTasks() batches; `queries` is empty then and the
    // item count lives in the segment table.
    const QueryTask* task = nullptr;
    BatchOptions options;
    size_t chunk_size = 1;
    std::vector<Segment> segments;
    std::atomic<size_t> stolen_chunks{0};
    // Output slots; indexed by query position, so workers never write the
    // same element and no synchronization is needed beyond the join.
    std::vector<Distance>* distances = nullptr;
    std::vector<Path>* paths = nullptr;
    // Per-query trace outputs; non-null only with record_per_query.
    std::vector<uint64_t>* query_start_ns = nullptr;
    std::vector<uint64_t>* query_end_ns = nullptr;
    std::vector<QueryCounters>* query_counters = nullptr;
  };

  struct Worker {
    std::thread thread;
    std::unique_ptr<QueryContext> context;
    // Per-worker observability sinks: only this worker writes them while
    // a batch runs (lock-free by construction); Run() resets them at
    // batch start and merges them after the join.
    Histogram histogram;
    QueryCounters counters;
  };

  // Worker main loop: wait for a batch epoch, drain it, report done.
  void WorkerLoop(size_t worker_id);

  // Executes chunks of `batch`, own segment first, then stealing.
  void DrainBatch(size_t worker_id, Batch* batch);

  // Runs queries [begin, end) of the batch on this worker's context.
  void RunChunk(size_t worker_id, Batch* batch, size_t begin, size_t end);

  // Shared implementation of Run() and RunTasks(): `count` items, pair
  // queries when `task` is null.
  BatchResult RunInternal(
      std::span<const std::pair<VertexId, VertexId>> queries, size_t count,
      const QueryTask* task, const BatchOptions& options);

  const PathIndex& index_;
  std::vector<Worker> workers_;

  Mutex mu_;
  CondVar work_cv_;   // signals a new batch epoch or stop
  CondVar done_cv_;   // signals workers finishing a batch
  uint64_t epoch_ ROADNET_GUARDED_BY(mu_) = 0;  // bumped once per Run()
  // Workers still draining the batch.
  size_t active_workers_ ROADNET_GUARDED_BY(mu_) = 0;
  Batch* batch_ ROADNET_GUARDED_BY(mu_) = nullptr;
  bool stop_ ROADNET_GUARDED_BY(mu_) = false;
  // Reentrancy guard for Run(); see the class comment.
  std::atomic<bool> run_active_{false};
};

}  // namespace roadnet

#endif  // ROADNET_ENGINE_QUERY_ENGINE_H_
