#include "engine/query_engine.h"

#include <algorithm>
#include <cassert>

#include "util/timer.h"

namespace roadnet {

QueryEngine::QueryEngine(const PathIndex& index, size_t num_threads)
    : index_(index) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.push_back(
        Worker{std::thread(), index_.NewContext(), Histogram(), QueryCounters()});
  }
  // Threads start only after every context exists, so WorkerLoop never
  // observes a partially built pool.
  for (size_t i = 0; i < n; ++i) {
    workers_[i].thread = std::thread([this, i] { WorkerLoop(i); });
  }
}

QueryEngine::~QueryEngine() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (Worker& w : workers_) w.thread.join();
}

void QueryEngine::WorkerLoop(size_t worker_id) {
  uint64_t seen_epoch = 0;
  while (true) {
    Batch* batch = nullptr;
    {
      MutexLock lock(mu_);
      while (!stop_ && epoch_ == seen_epoch) work_cv_.Wait(lock);
      if (stop_) return;
      seen_epoch = epoch_;
      batch = batch_;
    }
    DrainBatch(worker_id, batch);
    {
      MutexLock lock(mu_);
      if (--active_workers_ == 0) done_cv_.NotifyAll();
    }
  }
}

void QueryEngine::RunChunk(size_t worker_id, Batch* batch, size_t begin,
                           size_t end) {
  Worker& worker = workers_[worker_id];
  QueryContext* ctx = worker.context.get();
  const bool timed = batch->options.record_latencies;
  const bool counted = batch->options.record_counters;
  const bool traced = batch->query_start_ns != nullptr;
  const auto trace_epoch = batch->options.trace_epoch;
  for (size_t i = begin; i < end; ++i) {
    if (traced) {
      (*batch->query_start_ns)[i] = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - trace_epoch)
              .count());
    }
    Timer timer;
    if (batch->task != nullptr) {
      QueryCounters task_counters;
      (*batch->task)(worker_id, i, &task_counters);
      if (counted) worker.counters += task_counters;
      if (traced) (*batch->query_counters)[i] = task_counters;
    } else {
      const auto [s, t] = batch->queries[i];
      (*batch->distances)[i] = index_.DistanceQuery(ctx, s, t);
      if (counted) worker.counters += ctx->counters;
      if (traced) (*batch->query_counters)[i] = ctx->counters;
      if (batch->paths != nullptr) {
        // A path batch answers both query types (Section 2's two
        // queries); the reported latency covers the pair.
        (*batch->paths)[i] = index_.PathQuery(ctx, s, t);
        if (counted) worker.counters += ctx->counters;
        if (traced) (*batch->query_counters)[i] += ctx->counters;
      }
    }
    if (timed) worker.histogram.Record(timer.ElapsedNanos());
    if (traced) {
      (*batch->query_end_ns)[i] = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - trace_epoch)
              .count());
    }
  }
}

void QueryEngine::DrainBatch(size_t worker_id, Batch* batch) {
  const size_t chunk = batch->chunk_size;
  const size_t num_segments = batch->segments.size();
  // Own segment first (cache-friendly contiguous claims), then sweep the
  // other segments for leftover chunks.
  for (size_t offset = 0; offset < num_segments; ++offset) {
    const size_t victim = (worker_id + offset) % num_segments;
    Segment& seg = batch->segments[victim];
    while (true) {
      const size_t begin = seg.cursor.fetch_add(chunk);
      if (begin >= seg.end) break;
      const size_t end = std::min(begin + chunk, seg.end);
      if (offset != 0) {
        batch->stolen_chunks.fetch_add(1, std::memory_order_relaxed);
      }
      RunChunk(worker_id, batch, begin, end);
    }
  }
}

BatchResult QueryEngine::Run(
    std::span<const std::pair<VertexId, VertexId>> queries,
    const BatchOptions& options) {
  return RunInternal(queries, queries.size(), nullptr, options);
}

BatchResult QueryEngine::RunTasks(size_t count, const QueryTask& task,
                                  const BatchOptions& options) {
  return RunInternal({}, count, &task, options);
}

BatchResult QueryEngine::RunInternal(
    std::span<const std::pair<VertexId, VertexId>> queries, size_t count,
    const QueryTask* task, const BatchOptions& options) {
  // Loud failure on the classic misuse: Run() from two threads at once
  // would hand the same worker contexts to overlapping batches.
  const bool already_running = run_active_.exchange(true);
  assert(!already_running &&
         "QueryEngine::Run() entered concurrently from two threads");
  (void)already_running;

  BatchResult result;
  if (task == nullptr) {
    result.distances.assign(count, kInfDistance);
    if (options.collect_paths) result.paths.resize(count);
  }
  if (options.record_per_query) {
    result.query_start_ns.assign(count, 0);
    result.query_end_ns.assign(count, 0);
    result.query_counters.assign(count, QueryCounters{});
  }

  // Reset the per-worker sinks before workers see the new epoch.
  for (Worker& w : workers_) {
    w.histogram.Reset();
    w.counters.Reset();
  }

  Batch batch;
  batch.queries = queries;
  batch.task = task;
  batch.options = options;
  batch.distances = &result.distances;
  batch.paths =
      (task == nullptr && options.collect_paths) ? &result.paths : nullptr;
  if (options.record_per_query) {
    batch.query_start_ns = &result.query_start_ns;
    batch.query_end_ns = &result.query_end_ns;
    batch.query_counters = &result.query_counters;
  }

  // Chunk size: aim for several claims per worker so stealing has
  // something to steal, without making the atomic traffic measurable.
  const size_t num_workers = workers_.size();
  batch.chunk_size =
      options.chunk_size > 0
          ? options.chunk_size
          : std::clamp<size_t>(count / (num_workers * 8), 1, 64);

  // Static split into equal contiguous segments, one per worker.
  batch.segments = std::vector<Segment>(num_workers);
  const size_t per_worker = count / num_workers;
  const size_t remainder = count % num_workers;
  size_t pos = 0;
  for (size_t i = 0; i < num_workers; ++i) {
    const size_t len = per_worker + (i < remainder ? 1 : 0);
    batch.segments[i].cursor.store(pos, std::memory_order_relaxed);
    batch.segments[i].end = pos + len;
    pos += len;
  }

  Timer wall;
  {
    MutexLock lock(mu_);
    batch_ = &batch;
    active_workers_ = num_workers;
    ++epoch_;
  }
  work_cv_.NotifyAll();
  {
    MutexLock lock(mu_);
    while (active_workers_ != 0) done_cv_.Wait(lock);
    batch_ = nullptr;
  }

  BatchStats& stats = result.stats;
  stats.num_queries = count;
  stats.num_threads = num_workers;
  stats.chunk_size = batch.chunk_size;
  stats.stolen_chunks = batch.stolen_chunks.load();
  stats.wall_seconds = wall.ElapsedSeconds();
  stats.queries_per_second =
      stats.wall_seconds > 0 ? count / stats.wall_seconds : 0;

  // Merge the per-worker sinks: histograms add element-wise, so the
  // result is identical to one thread having recorded every query.
  for (const Worker& w : workers_) {
    if (options.record_latencies) result.latency.Merge(w.histogram);
    if (options.record_counters) stats.counters += w.counters;
  }
  if (options.record_latencies && result.latency.Count() > 0) {
    constexpr double kNanosToMicros = 1e-3;
    stats.p50_micros = result.latency.ValueAtQuantile(0.50) * kNanosToMicros;
    stats.p90_micros = result.latency.ValueAtQuantile(0.90) * kNanosToMicros;
    stats.p99_micros = result.latency.ValueAtQuantile(0.99) * kNanosToMicros;
    stats.p999_micros =
        result.latency.ValueAtQuantile(0.999) * kNanosToMicros;
    stats.max_micros = result.latency.Max() * kNanosToMicros;
  }
  run_active_.store(false);
  return result;
}

}  // namespace roadnet
