#ifndef ROADNET_OBS_HISTOGRAM_H_
#define ROADNET_OBS_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace roadnet {

// Mergeable log-bucketed latency histogram (HDR-histogram style).
//
// Values are non-negative integers in an arbitrary unit (QueryEngine
// records nanoseconds). Buckets are exact below 2^kPrecisionBits and
// otherwise split each power-of-two octave into 2^kPrecisionBits linear
// sub-buckets, so every recorded value lands in a bucket whose width is
// at most value / 2^kPrecisionBits — a guaranteed relative error of
// <= 1/2^kPrecisionBits (~1.6% at the default 6 bits). Exact min, max,
// sum, and count are tracked alongside, so Min()/Max()/Mean() are exact
// and only interior quantiles carry bucket error.
//
// A Histogram is a fixed-size array of uint64 counts: recording is a
// single add with no allocation, and two histograms recorded by
// different threads merge by element-wise addition (Merge), which is how
// QueryEngine combines per-worker histograms into batch percentiles
// without any locking on the query path.
class Histogram {
 public:
  // Sub-bucket resolution: 64 linear sub-buckets per octave.
  static constexpr int kPrecisionBits = 6;
  static constexpr uint64_t kSubBuckets = 1ull << kPrecisionBits;
  // Bucket count covering the full uint64 range: octaves 0..63 above the
  // exact range, 64 sub-buckets each, plus the exact range itself.
  static constexpr size_t kNumBuckets = (64 - kPrecisionBits + 1) * kSubBuckets;

  Histogram();

  // Adds one observation. O(1), no allocation, not thread-safe (use one
  // Histogram per thread and Merge()).
  void Record(uint64_t value);

  // Element-wise addition of another histogram's counts (and min/max/sum
  // tracking). The result is identical to having recorded both value
  // streams into a single histogram.
  void Merge(const Histogram& other);

  void Reset();

  uint64_t Count() const { return count_; }
  uint64_t Min() const;  // 0 when empty
  uint64_t Max() const { return count_ == 0 ? 0 : max_; }
  double Sum() const { return sum_; }
  double Mean() const;  // 0 when empty

  // Value at quantile q in [0,1]: the representative (midpoint) of the
  // bucket containing the ceil(q * Count())-th smallest observation.
  // q <= 0 returns the exact Min, q >= 1 the exact Max; 0 when empty.
  uint64_t ValueAtQuantile(double q) const;

  // --- Bucket geometry, exposed for tests ---

  // Index of the bucket containing `value`.
  static size_t BucketIndex(uint64_t value);
  // Lowest value mapping to bucket i.
  static uint64_t BucketLow(size_t index);
  // Representative (midpoint) reported for bucket i.
  static uint64_t BucketMid(size_t index);

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
  double sum_ = 0;
};

}  // namespace roadnet

#endif  // ROADNET_OBS_HISTOGRAM_H_
