#ifndef ROADNET_OBS_QUERY_COUNTERS_H_
#define ROADNET_OBS_QUERY_COUNTERS_H_

#include <cstdint>

namespace roadnet {

// Per-query operation counts: the paper's internal-work explanation for
// its latency figures (Section 4 discusses search-space size; CH beats
// bidirectional Dijkstra because it settles orders of magnitude fewer
// vertices, and TNR's table lookups beat graph searches entirely).
//
// A QueryCounters instance lives inside every technique's QueryContext,
// so incrementing is a plain add on memory the query already touches —
// no allocation, no atomics, no indirection. Each DistanceQuery /
// PathQuery resets the context's counters on entry, so after a query the
// counters describe exactly that query; callers that want batch totals
// accumulate with operator+= (QueryEngine does this per worker).
//
// Compiling with -DROADNET_DISABLE_COUNTERS turns every increment into a
// no-op so the instrumented hot paths cost nothing; the struct and its
// accessors remain so callers do not need their own #ifdefs.
struct QueryCounters {
  // Vertices removed from a priority queue and finalized by the main
  // (forward/backward/upward) searches. TNR in-table queries settle 0.
  uint64_t vertices_settled = 0;
  // Arc relaxation attempts that passed the technique's pruning filter
  // (arc flags, reach bounds, stall-on-demand, upward-only, ...). This is
  // the paper's "edges scanned" notion of search work.
  uint64_t edges_relaxed = 0;
  // All priority-queue inserts / decrease-keys, across every internal
  // search a query runs (including TNR fallback and HiTi restricted
  // searches).
  uint64_t heap_pushes = 0;
  // All priority-queue removals, including pops the technique discards
  // (stalled CH vertices, pruned reach vertices) without settling.
  uint64_t heap_pops = 0;
  // Shortcut arcs expanded during path unpacking (CH recursive unpack,
  // HiTi clique-arc expansion).
  uint64_t shortcuts_unpacked = 0;
  // Binary-search lookups of augmented-edge records during path
  // unpacking. The rank-space CH layout resolves every shortcut to its
  // child arc indices at build time and performs none; only legacy-layout
  // baselines (bench_ch_layout) count here, and tests pin the real index
  // to zero.
  uint64_t edge_searches = 0;
  // Probes of precomputed distance tables: TNR access-node table cells,
  // ALT landmark-distance rows.
  uint64_t table_lookups = 0;
  // Spatial-tree descents: SILC quadtree interval lookups (one per
  // NextHop call), PCPD synchronized quadtree-descent probes.
  uint64_t tree_lookups = 0;

#ifdef ROADNET_DISABLE_COUNTERS
  static constexpr bool kEnabled = false;
#else
  static constexpr bool kEnabled = true;
#endif

  void Reset() { *this = QueryCounters{}; }

  friend bool operator==(const QueryCounters&,
                         const QueryCounters&) = default;

  QueryCounters& operator+=(const QueryCounters& o) {
    vertices_settled += o.vertices_settled;
    edges_relaxed += o.edges_relaxed;
    heap_pushes += o.heap_pushes;
    heap_pops += o.heap_pops;
    shortcuts_unpacked += o.shortcuts_unpacked;
    edge_searches += o.edge_searches;
    table_lookups += o.table_lookups;
    tree_lookups += o.tree_lookups;
    return *this;
  }

  // Increment helpers. `n` defaults to 1; the `if constexpr` compiles the
  // add away entirely under ROADNET_DISABLE_COUNTERS.
  void Settle(uint64_t n = 1) {
    if constexpr (kEnabled) vertices_settled += n;
  }
  void RelaxEdge(uint64_t n = 1) {
    if constexpr (kEnabled) edges_relaxed += n;
  }
  void HeapPush(uint64_t n = 1) {
    if constexpr (kEnabled) heap_pushes += n;
  }
  void HeapPop(uint64_t n = 1) {
    if constexpr (kEnabled) heap_pops += n;
  }
  void ShortcutUnpacked(uint64_t n = 1) {
    if constexpr (kEnabled) shortcuts_unpacked += n;
  }
  void EdgeSearch(uint64_t n = 1) {
    if constexpr (kEnabled) edge_searches += n;
  }
  void TableLookup(uint64_t n = 1) {
    if constexpr (kEnabled) table_lookups += n;
  }
  void TreeLookup(uint64_t n = 1) {
    if constexpr (kEnabled) tree_lookups += n;
  }
};

}  // namespace roadnet

#endif  // ROADNET_OBS_QUERY_COUNTERS_H_
