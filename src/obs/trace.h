#ifndef ROADNET_OBS_TRACE_H_
#define ROADNET_OBS_TRACE_H_

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/query_counters.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace roadnet {

// Per-request lifecycle tracing (DESIGN.md "Request tracing").
//
// A request that flows through the query server crosses four threads:
// the accept loop, its connection handler, the dispatcher, and an engine
// worker. Endpoint percentiles (PR 2/3) say *that* a request was slow;
// this subsystem says *where* — every request carries a RequestTrace
// whose stages (accept -> frame_read -> enqueue -> queue_wait ->
// batch_assembly -> execute -> reply_write) are stamped with
// steady_clock nanoseconds relative to one Tracer epoch, so stage
// windows recorded on different threads line up on a single monotonic
// axis and never overlap.
//
// Capture policy is head + tail sampling: 1-in-N requests are chosen up
// front (deterministic in the request sequence number, ids seeded), and
// any request whose total latency reaches the slow threshold is captured
// regardless — the slow-query log never misses an outlier because the
// head sampler skipped it. Captured traces travel through lock-free
// SPSC ring buffers (one per connection shard; the handler is the only
// producer, the exporter thread the only consumer) and are written as
// JSONL. Per-stage latency histograms are maintained for every traced
// request, sampled or not, and feed the STATS v2 live-introspection
// reply.
//
// Compile-time kill switch: -DROADNET_DISABLE_TRACING turns every span
// and stamp into a no-op (bench_trace_overhead holds the remaining cost
// of the instrumented-but-disabled hot path to <= 2%). The API remains
// so callers need no #ifdefs, mirroring ROADNET_DISABLE_COUNTERS.

#ifdef ROADNET_DISABLE_TRACING
inline constexpr bool kTracingCompiledIn = false;
#else
inline constexpr bool kTracingCompiledIn = true;
#endif

// Lifecycle stages in pipeline order. Stage windows of one request are
// non-overlapping and monotonically ordered; gaps (scheduling delay
// between dispatcher hand-off and worker pickup) are allowed and are
// themselves diagnostic.
enum class TraceStage : uint8_t {
  kAccept = 0,         // accept(2) return -> handler thread first read
  kFrameRead = 1,      // waiting for + reading the request frame
  kEnqueue = 2,        // decode, validate, admission TryPush
  kQueueWait = 3,      // admitted -> dispatcher pops the batch
  kBatchAssembly = 4,  // batch pop -> engine Run() entry
  kExecute = 5,        // per-query execution inside an engine worker
  kReplyWrite = 6,     // handler wake -> response frame written
};
inline constexpr size_t kNumTraceStages = 7;

const char* TraceStageName(TraceStage stage);

// Sentinel for "tail capture disabled" (TracerOptions::slow_micros). A
// threshold of 0 is meaningful: it captures every request.
inline constexpr uint64_t kTraceSlowDisabled = ~0ull;

struct TraceStageRecord {
  uint64_t start_ns = 0;  // nanoseconds since the Tracer epoch
  uint64_t end_ns = 0;
  // A stage never recorded keeps end_ns == 0 (a real stage end can only
  // be 0 in the epoch instant itself, which no request can hit: the
  // epoch predates the listening socket).
  bool Present() const { return end_ns != 0; }
};

// One request's trace, embedded in the server's per-request state. Plain
// value type: the owning handler thread writes it (the dispatcher and
// engine write stage windows while the handler is blocked on the
// response, so writes never overlap), and Finish() copies it into the
// shard ring.
struct RequestTrace {
  uint64_t trace_id = 0;
  uint64_t seq = 0;           // tracer-wide request sequence number
  bool active = false;        // runtime capture decision for this request
  bool head_sampled = false;  // chosen by the 1-in-N head sampler
  bool slow = false;          // set by Finish() against the threshold
  uint8_t kind = 0;  // 0 dist, 1 path (wire::QueryKind), 2 knn, 3 one-to-many
  uint8_t status = 0;         // wire::Status value
  uint32_t source = 0;
  uint32_t target = 0;
  uint64_t total_ns = 0;      // first stage start -> last stage end
  QueryCounters counters;     // engine snapshot for the execute stage
  TraceStageRecord stages[kNumTraceStages];
  std::chrono::steady_clock::time_point epoch{};
  int open_spans = 0;  // RAII balance check; Finish() asserts it is 0

  // Nanoseconds since the tracer epoch; 0 when the trace is inactive so
  // an untraced request never reads the clock.
  uint64_t NowNs() const {
    if constexpr (!kTracingCompiledIn) return 0;
    if (!active) return 0;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
  }

  void RecordStage(TraceStage stage, uint64_t start_ns, uint64_t end_ns) {
    if constexpr (!kTracingCompiledIn) return;
    if (!active) return;
    TraceStageRecord& r = stages[static_cast<size_t>(stage)];
    r.start_ns = start_ns;
    r.end_ns = end_ns;
  }
};

// RAII span: stamps its stage's start on construction and the end on
// destruction (or an explicit early Close()). On an inactive trace the
// constructor is a branch and nothing else.
class TraceSpan {
 public:
  TraceSpan(RequestTrace* trace, TraceStage stage)
      : trace_(trace), stage_(stage) {
    if constexpr (kTracingCompiledIn) {
      if (trace_ != nullptr && trace_->active) {
        start_ns_ = trace_->NowNs();
        ++trace_->open_spans;
        armed_ = true;
      }
    }
  }
  ~TraceSpan() { Close(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Ends the span now; idempotent. Useful when the span must close
  // before a scope exit (e.g. before Finish() in the same block).
  void Close() {
    if constexpr (kTracingCompiledIn) {
      if (armed_) {
        trace_->RecordStage(stage_, start_ns_, trace_->NowNs());
        --trace_->open_spans;
        armed_ = false;
      }
    }
  }

 private:
  RequestTrace* trace_;
  TraceStage stage_;
  uint64_t start_ns_ = 0;
  bool armed_ = false;
};

// Lock-free single-producer single-consumer ring of completed traces.
// The producer is the shard-owning connection handler; the consumer is
// the exporter thread. A full ring drops the new trace (counted) rather
// than blocking the request path.
class TraceRing {
 public:
  // Capacity is rounded up to a power of two, minimum 2.
  explicit TraceRing(size_t capacity);

  // Producer side. False (and one dropped count) when full.
  bool TryPush(const RequestTrace& trace);

  // Consumer side: appends up to `max` traces to *out in FIFO order,
  // returns how many were taken.
  size_t Drain(std::vector<RequestTrace>* out, size_t max);

  uint64_t Dropped() const { return dropped_.load(std::memory_order_relaxed); }
  size_t Capacity() const { return slots_.size(); }

 private:
  std::vector<RequestTrace> slots_;
  size_t mask_ = 0;
  // head_ is written only by the producer, tail_ only by the consumer;
  // each side acquire-reads the other's cursor, which orders the slot
  // copy against the cursor publication (classic SPSC ring).
  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> tail_{0};
  std::atomic<uint64_t> dropped_{0};
};

struct TracerOptions {
  // Head sampling: capture every N-th request (0 disables). Sampling is
  // deterministic in the request sequence number, so a seeded run
  // captures the same requests every time.
  uint64_t sample_every = 0;
  // Tail capture: any request whose total latency is >= this many
  // microseconds is captured even when not head-sampled.
  // kTraceSlowDisabled turns tail capture off; 0 captures everything.
  uint64_t slow_micros = kTraceSlowDisabled;
  // Shard count (one per concurrent producer, e.g. max_connections).
  size_t shards = 8;
  // Per-shard ring capacity (rounded up to a power of two).
  size_t ring_capacity = 256;
  // Seed of the trace-id stream (SplitMix64 over the sequence number).
  uint64_t id_seed = 1;
  // Maps RequestTrace::status bytes to wire names for the JSONL export;
  // nullptr falls back to "status-<n>". Kept a function pointer so the
  // obs layer does not depend on server/wire.
  const char* (*status_name)(uint8_t) = nullptr;
};

// The per-process tracing hub: owns the shards (ring + per-stage
// histograms), the sampling decision, and the JSONL exporter thread.
// Thread-safety: StartRequest/Finish are called by shard owners (one
// thread per shard at a time); Configure, GetSnapshot, and the exporter
// may run concurrently with them.
class Tracer {
 public:
  explicit Tracer(const TracerOptions& options);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Runtime reconfiguration (the wire TRACE_CONFIG frame): a nullopt
  // leaves that knob unchanged. Takes effect for subsequent requests.
  void Configure(std::optional<uint64_t> sample_every,
                 std::optional<uint64_t> slow_micros);

  // True when any capture mechanism is on (cheap: two relaxed loads).
  bool RuntimeEnabled() const {
    if constexpr (!kTracingCompiledIn) return false;
    return sample_every_.load(std::memory_order_relaxed) > 0 ||
           slow_micros_.load(std::memory_order_relaxed) != kTraceSlowDisabled;
  }

  uint64_t SampleEvery() const {
    return sample_every_.load(std::memory_order_relaxed);
  }
  uint64_t SlowMicros() const {
    return slow_micros_.load(std::memory_order_relaxed);
  }

  // Shard ownership for producers. AcquireShard returns -1 when all
  // shards are taken (the caller then simply runs untraced); every
  // acquired shard must be released.
  int AcquireShard();
  void ReleaseShard(int shard);

  // Arms `trace` for this request: assigns seq + trace id, applies the
  // head sampler, and stamps the epoch. When tracing is off (compiled
  // out or runtime-disabled) it only clears `active` — the cost a
  // served request pays with tracing idle, gated by
  // bench_trace_overhead.
  void StartRequest(RequestTrace* trace);

  // Completes the trace: asserts span balance, computes the total, makes
  // the tail (slow) decision, records per-stage histograms, and pushes
  // head-sampled/slow traces into the shard's ring. Must be called by
  // the shard owner; no-op for inactive traces.
  void Finish(int shard, RequestTrace* trace);

  // Nanoseconds since the tracer epoch (unconditional clock read; for
  // cold-path stamps like connection accept).
  uint64_t NowNs() const {
    return ToNs(std::chrono::steady_clock::now());
  }
  uint64_t ToNs(std::chrono::steady_clock::time_point t) const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t - epoch_)
            .count());
  }
  std::chrono::steady_clock::time_point Epoch() const { return epoch_; }

  // JSONL export: spawns the exporter thread appending completed traces
  // to `path` (truncates an existing file). False + *error if the file
  // cannot be opened. StopExporter drains every ring one final time and
  // closes the file; idempotent, also run by the destructor.
  bool StartExporter(const std::string& path, std::string* error);
  void StopExporter();

  // True while the exporter thread is live. Lets owners assert the
  // exporter's lifecycle (e.g. that a failed server Start did not leak
  // the thread).
  bool ExporterRunning() const;

  // --- Live introspection (the STATS v2 payload) ---

  struct StageStat {
    TraceStage stage;
    uint64_t count = 0;
    uint64_t p50_ns = 0;
    uint64_t p99_ns = 0;
  };
  struct Snapshot {
    uint64_t finished = 0;      // active traces completed
    uint64_t captured = 0;      // pushed into a ring
    uint64_t dropped = 0;       // lost to a full ring
    uint64_t head_sampled = 0;
    uint64_t slow = 0;
    std::vector<StageStat> stages;  // stages with count > 0, pipeline order
  };
  Snapshot GetSnapshot() const;

  // Full per-stage histograms -> MetricsRegistry ("trace_stage_micros"
  // with a stage label, plus the capture counters).
  void ExportMetrics(
      MetricsRegistry* registry,
      std::vector<std::pair<std::string, std::string>> labels) const;

 private:
  struct Shard {
    explicit Shard(size_t ring_capacity) : ring(ring_capacity) {}
    // SPSC: the shard owner produces, the exporter consumes; the ring
    // synchronizes itself with its cursors, so it is not under `mu`.
    TraceRing ring;
    // Owner-written stats; the mutex is effectively uncontended (the
    // owner plus an occasional snapshot/export reader).
    mutable Mutex mu;
    Histogram stage_hist[kNumTraceStages] ROADNET_GUARDED_BY(mu);
    Histogram total_hist ROADNET_GUARDED_BY(mu);
    uint64_t finished ROADNET_GUARDED_BY(mu) = 0;
    uint64_t captured ROADNET_GUARDED_BY(mu) = 0;
    uint64_t head_sampled ROADNET_GUARDED_BY(mu) = 0;
    uint64_t slow ROADNET_GUARDED_BY(mu) = 0;
  };

  void ExporterLoop();
  // Drains every shard ring into the export file; returns traces written.
  size_t DrainAllToFile();

  const std::chrono::steady_clock::time_point epoch_;
  const uint64_t id_seed_;
  const char* (*const status_name_)(uint8_t);
  std::atomic<uint64_t> sample_every_;
  std::atomic<uint64_t> slow_micros_;
  std::atomic<uint64_t> seq_{0};

  std::vector<std::unique_ptr<Shard>> shards_;
  Mutex shard_free_mu_;
  std::vector<int> free_shards_ ROADNET_GUARDED_BY(shard_free_mu_);

  mutable Mutex exporter_mu_;
  CondVar exporter_cv_;
  // The thread handle is guarded too: StopExporter claims it (moves it
  // out) under the lock, which is what makes concurrent stops safe —
  // exactly one caller joins, the rest see exporter_running_ false.
  std::thread exporter_thread_ ROADNET_GUARDED_BY(exporter_mu_);
  std::string export_path_ ROADNET_GUARDED_BY(exporter_mu_);
  FILE* export_file_ ROADNET_GUARDED_BY(exporter_mu_) = nullptr;
  bool exporter_stop_ ROADNET_GUARDED_BY(exporter_mu_) = false;
  bool exporter_running_ ROADNET_GUARDED_BY(exporter_mu_) = false;
};

// Serializes one completed trace as a single JSONL line (no trailing
// newline) — the slow-query-log record format, also consumed by
// tools/roadnet_trace and validated by scripts/validate_metrics.py.
// `status_name` may be nullptr (falls back to "status-<n>").
void AppendTraceJson(const RequestTrace& trace,
                     const char* (*status_name)(uint8_t), std::string* out);

}  // namespace roadnet

#endif  // ROADNET_OBS_TRACE_H_
