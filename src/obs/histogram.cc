#include "obs/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace roadnet {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) return static_cast<size_t>(value);
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - kPrecisionBits;
  return static_cast<size_t>(shift + 1) * kSubBuckets +
         static_cast<size_t>((value >> shift) - kSubBuckets);
}

uint64_t Histogram::BucketLow(size_t index) {
  if (index < kSubBuckets) return index;
  const int shift = static_cast<int>(index / kSubBuckets) - 1;
  const uint64_t sub = index % kSubBuckets;
  return (kSubBuckets + sub) << shift;
}

uint64_t Histogram::BucketMid(size_t index) {
  if (index < kSubBuckets) return index;
  const int shift = static_cast<int>(index / kSubBuckets) - 1;
  const uint64_t width = 1ull << shift;
  return BucketLow(index) + (width >> 1);
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)]++;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_++;
  sum_ += static_cast<double>(value);
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0ull);
  count_ = 0;
  min_ = 0;
  max_ = 0;
  sum_ = 0;
}

uint64_t Histogram::Min() const { return count_ == 0 ? 0 : min_; }

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

uint64_t Histogram::ValueAtQuantile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  rank = std::clamp<uint64_t>(rank, 1, count_);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      // The bucket midpoint, clamped so no quantile falls outside the
      // exactly-tracked [min, max] envelope.
      return std::clamp(BucketMid(i), min_, max_);
    }
  }
  return max_;
}

}  // namespace roadnet
