#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace roadnet {

namespace {

// Shortest round-trippable decimal form, so 0.5 prints as "0.5" and not
// "0.500000", and integers print without a trailing ".000000".
std::string FormatDouble(double v) {
  char buf[32];
  // Exactly representable integers print in plain form ("70", not the
  // shorter-by-%g "7e+01"): counter values are integral and read often.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double parsed = std::strtod(buf, nullptr);
  if (parsed == v) {
    for (int prec = 1; prec < 17; ++prec) {
      char shorter[32];
      std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
      if (std::strtod(shorter, nullptr) == v) return shorter;
    }
  }
  return buf;
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string CsvEscape(const std::string& field) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void MetricsRegistry::Add(
    std::string name, double value,
    std::vector<std::pair<std::string, std::string>> labels) {
  points_.push_back({std::move(name), value, std::move(labels)});
}

void MetricsRegistry::AddCounters(
    const QueryCounters& c,
    std::vector<std::pair<std::string, std::string>> labels) {
  Add("vertices_settled", static_cast<double>(c.vertices_settled), labels);
  Add("edges_relaxed", static_cast<double>(c.edges_relaxed), labels);
  Add("heap_pushes", static_cast<double>(c.heap_pushes), labels);
  Add("heap_pops", static_cast<double>(c.heap_pops), labels);
  Add("shortcuts_unpacked", static_cast<double>(c.shortcuts_unpacked), labels);
  Add("edge_searches", static_cast<double>(c.edge_searches), labels);
  Add("table_lookups", static_cast<double>(c.table_lookups), labels);
  Add("tree_lookups", static_cast<double>(c.tree_lookups), std::move(labels));
}

void MetricsRegistry::AddHistogram(
    const std::string& prefix, const Histogram& h, double scale,
    std::vector<std::pair<std::string, std::string>> labels) {
  Add(prefix + "_count", static_cast<double>(h.Count()), labels);
  Add(prefix + "_min", static_cast<double>(h.Min()) * scale, labels);
  Add(prefix + "_mean", h.Mean() * scale, labels);
  Add(prefix + "_p50", static_cast<double>(h.ValueAtQuantile(0.50)) * scale,
      labels);
  Add(prefix + "_p90", static_cast<double>(h.ValueAtQuantile(0.90)) * scale,
      labels);
  Add(prefix + "_p99", static_cast<double>(h.ValueAtQuantile(0.99)) * scale,
      labels);
  Add(prefix + "_p999", static_cast<double>(h.ValueAtQuantile(0.999)) * scale,
      labels);
  Add(prefix + "_max", static_cast<double>(h.Max()) * scale,
      std::move(labels));
}

void MetricsRegistry::WriteJsonl(std::ostream& out) const {
  for (const MetricPoint& p : points_) {
    out << "{\"name\":\"" << JsonEscape(p.name) << "\",\"value\":";
    if (std::isfinite(p.value)) {
      out << FormatDouble(p.value);
    } else {
      out << "null";  // JSON has no NaN/Infinity literal
    }
    if (!p.labels.empty()) {
      out << ",\"labels\":{";
      bool first = true;
      for (const auto& [k, v] : p.labels) {
        if (!first) out << ',';
        first = false;
        out << '"' << JsonEscape(k) << "\":\"" << JsonEscape(v) << '"';
      }
      out << '}';
    }
    out << "}\n";
  }
}

void MetricsRegistry::WriteCsv(std::ostream& out) const {
  out << "name,value,labels\n";
  for (const MetricPoint& p : points_) {
    std::string value;
    if (std::isfinite(p.value)) {
      value = FormatDouble(p.value);
    } else if (std::isnan(p.value)) {
      value = "nan";
    } else {
      value = p.value > 0 ? "inf" : "-inf";
    }
    std::string labels;
    for (const auto& [k, v] : p.labels) {
      if (!labels.empty()) labels += ';';
      labels += k + "=" + v;
    }
    out << CsvEscape(p.name) << ',' << value << ',' << CsvEscape(labels)
        << '\n';
  }
}

bool MetricsRegistry::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0) {
    WriteCsv(out);
  } else {
    WriteJsonl(out);
  }
  return out.good();
}

}  // namespace roadnet
