#ifndef ROADNET_OBS_METRICS_H_
#define ROADNET_OBS_METRICS_H_

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"
#include "obs/query_counters.h"

namespace roadnet {

// One named measurement with optional key=value labels, e.g.
//   {name="query_p99_micros", value=41.2,
//    labels={{"method","CH"},{"dataset","CO'"}}}.
struct MetricPoint {
  std::string name;
  double value = 0;
  std::vector<std::pair<std::string, std::string>> labels;
};

// Accumulates MetricPoints and snapshots them to JSONL or CSV — the
// roadnet_cli --metrics-out backend. A registry is a plain container
// (no locking): build it after the measured work completes.
class MetricsRegistry {
 public:
  void Add(std::string name, double value,
           std::vector<std::pair<std::string, std::string>> labels = {});

  // Emits one point per counter field ("vertices_settled", ...), each
  // carrying the same label set.
  void AddCounters(const QueryCounters& counters,
                   std::vector<std::pair<std::string, std::string>> labels = {});

  // Emits count/min/mean/p50/p90/p99/p999/max points for a histogram.
  // `scale` converts the histogram's unit into the reported one (e.g.
  // 1e-3 for nanoseconds recorded, microseconds reported).
  void AddHistogram(const std::string& prefix, const Histogram& h,
                    double scale = 1.0,
                    std::vector<std::pair<std::string, std::string>> labels = {});

  const std::vector<MetricPoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  // One JSON object per line: {"name":...,"value":...,"labels":{...}}.
  // Non-finite values are emitted as null (JSON has no NaN/Inf).
  void WriteJsonl(std::ostream& out) const;

  // Header "name,value,labels"; labels flattened to "k=v;k=v" and
  // CSV-escaped. Non-finite values print as nan/inf/-inf.
  void WriteCsv(std::ostream& out) const;

  // Picks the format from the extension: ".csv" writes CSV, anything
  // else JSONL. Returns false (and writes nothing) if the file cannot
  // be opened.
  bool WriteFile(const std::string& path) const;

 private:
  std::vector<MetricPoint> points_;
};

// JSON string-literal escaping (quotes, backslashes, control chars);
// returns the escaped body without surrounding quotes.
std::string JsonEscape(const std::string& s);

// CSV field quoting (doubles embedded quotes, wraps when the field
// contains a comma, quote, or newline). Shared with core/report.
std::string CsvEscape(const std::string& field);

}  // namespace roadnet

#endif  // ROADNET_OBS_METRICS_H_
