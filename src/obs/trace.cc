#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstring>

#include "util/rng.h"

namespace roadnet {

namespace {

constexpr const char* kStageNames[kNumTraceStages] = {
    "accept",        "frame_read", "enqueue",     "queue_wait",
    "batch_assembly", "execute",    "reply_write",
};

size_t RoundUpPow2(size_t n) {
  size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

}  // namespace

const char* TraceStageName(TraceStage stage) {
  return kStageNames[static_cast<size_t>(stage)];
}

// ---------------------------------------------------------------------------
// TraceRing

TraceRing::TraceRing(size_t capacity) {
  slots_.resize(RoundUpPow2(std::max<size_t>(capacity, 2)));
  mask_ = slots_.size() - 1;
}

bool TraceRing::TryPush(const RequestTrace& trace) {
  const uint64_t h = head_.load(std::memory_order_relaxed);
  // Acquire on tail_ orders this producer's slot write after the
  // consumer's copy-out of the slot it just freed.
  if (h - tail_.load(std::memory_order_acquire) >= slots_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  slots_[h & mask_] = trace;
  head_.store(h + 1, std::memory_order_release);
  return true;
}

size_t TraceRing::Drain(std::vector<RequestTrace>* out, size_t max) {
  const uint64_t t = tail_.load(std::memory_order_relaxed);
  // Acquire on head_ makes the producer's slot writes visible.
  const uint64_t h = head_.load(std::memory_order_acquire);
  const size_t n = std::min<size_t>(h - t, max);
  for (size_t i = 0; i < n; ++i) out->push_back(slots_[(t + i) & mask_]);
  tail_.store(t + n, std::memory_order_release);
  return n;
}

// ---------------------------------------------------------------------------
// JSONL writer

void AppendTraceJson(const RequestTrace& trace,
                     const char* (*status_name)(uint8_t), std::string* out) {
  char hex[24];
  snprintf(hex, sizeof(hex), "%016" PRIx64, trace.trace_id);
  out->append("{\"trace_id\":\"");
  out->append(hex);
  out->append("\",\"seq\":");
  AppendU64(out, trace.seq);
  out->append(",\"kind\":\"");
  switch (trace.kind) {
    case 1: out->append("path"); break;
    case 2: out->append("knn"); break;
    case 3: out->append("one_to_many"); break;
    default: out->append("distance"); break;
  }
  out->append("\",\"source\":");
  AppendU64(out, trace.source);
  out->append(",\"target\":");
  AppendU64(out, trace.target);
  out->append(",\"status\":\"");
  if (status_name != nullptr) {
    out->append(JsonEscape(status_name(trace.status)));
  } else {
    out->append("status-");
    AppendU64(out, trace.status);
  }
  out->append("\",\"sampled\":\"");
  if (trace.head_sampled && trace.slow) {
    out->append("head+slow");
  } else if (trace.head_sampled) {
    out->append("head");
  } else {
    out->append("slow");
  }
  out->append("\",\"total_ns\":");
  AppendU64(out, trace.total_ns);
  out->append(",\"counters\":{\"vertices_settled\":");
  AppendU64(out, trace.counters.vertices_settled);
  out->append(",\"edges_relaxed\":");
  AppendU64(out, trace.counters.edges_relaxed);
  out->append(",\"heap_pushes\":");
  AppendU64(out, trace.counters.heap_pushes);
  out->append(",\"heap_pops\":");
  AppendU64(out, trace.counters.heap_pops);
  out->append(",\"shortcuts_unpacked\":");
  AppendU64(out, trace.counters.shortcuts_unpacked);
  out->append(",\"edge_searches\":");
  AppendU64(out, trace.counters.edge_searches);
  out->append(",\"table_lookups\":");
  AppendU64(out, trace.counters.table_lookups);
  out->append(",\"tree_lookups\":");
  AppendU64(out, trace.counters.tree_lookups);
  out->append("},\"stages\":[");
  bool first = true;
  for (size_t i = 0; i < kNumTraceStages; ++i) {
    const TraceStageRecord& r = trace.stages[i];
    if (!r.Present()) continue;
    if (!first) out->push_back(',');
    first = false;
    out->append("{\"stage\":\"");
    out->append(kStageNames[i]);
    out->append("\",\"start_ns\":");
    AppendU64(out, r.start_ns);
    out->append(",\"end_ns\":");
    AppendU64(out, r.end_ns);
    out->push_back('}');
  }
  out->append("]}");
}

// ---------------------------------------------------------------------------
// Tracer

Tracer::Tracer(const TracerOptions& options)
    : epoch_(std::chrono::steady_clock::now()),
      id_seed_(options.id_seed),
      status_name_(options.status_name),
      sample_every_(options.sample_every),
      slow_micros_(options.slow_micros) {
  const size_t n = std::max<size_t>(options.shards, 1);
  shards_.reserve(n);
  free_shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(options.ring_capacity));
  }
  // Hand out low shard indexes first.
  for (size_t i = n; i-- > 0;) free_shards_.push_back(static_cast<int>(i));
}

Tracer::~Tracer() { StopExporter(); }

void Tracer::Configure(std::optional<uint64_t> sample_every,
                       std::optional<uint64_t> slow_micros) {
  if (sample_every) {
    sample_every_.store(*sample_every, std::memory_order_relaxed);
  }
  if (slow_micros) {
    slow_micros_.store(*slow_micros, std::memory_order_relaxed);
  }
}

int Tracer::AcquireShard() {
  MutexLock lock(shard_free_mu_);
  if (free_shards_.empty()) return -1;
  const int shard = free_shards_.back();
  free_shards_.pop_back();
  return shard;
}

void Tracer::ReleaseShard(int shard) {
  if (shard < 0) return;
  MutexLock lock(shard_free_mu_);
  free_shards_.push_back(shard);
}

void Tracer::StartRequest(RequestTrace* trace) {
  if constexpr (!kTracingCompiledIn) {
    trace->active = false;
    return;
  }
  const uint64_t every = sample_every_.load(std::memory_order_relaxed);
  const uint64_t slow = slow_micros_.load(std::memory_order_relaxed);
  if (every == 0 && slow == kTraceSlowDisabled) {
    // The whole cost an untraced request pays: two relaxed loads and
    // this store (bench_trace_overhead gates it).
    trace->active = false;
    return;
  }
  *trace = RequestTrace{};
  trace->seq = seq_.fetch_add(1, std::memory_order_relaxed);
  trace->trace_id = Rng(id_seed_ + trace->seq).Next();
  trace->head_sampled = every > 0 && trace->seq % every == 0;
  trace->epoch = epoch_;
  trace->active = true;
}

void Tracer::Finish(int shard, RequestTrace* trace) {
  if constexpr (!kTracingCompiledIn) return;
  if (!trace->active) return;
  // RAII balance: a span left open means a lifecycle path forgot to
  // close its stage, and its window would be garbage.
  assert(trace->open_spans == 0);
  trace->active = false;

  uint64_t first_start = ~0ull;
  uint64_t last_end = 0;
  for (size_t i = 0; i < kNumTraceStages; ++i) {
    const TraceStageRecord& r = trace->stages[i];
    if (!r.Present()) continue;
    first_start = std::min(first_start, r.start_ns);
    last_end = std::max(last_end, r.end_ns);
  }
  trace->total_ns = last_end > first_start ? last_end - first_start : 0;

  const uint64_t slow_us = slow_micros_.load(std::memory_order_relaxed);
  trace->slow =
      slow_us != kTraceSlowDisabled && trace->total_ns >= slow_us * 1000;

  Shard& s = *shards_[static_cast<size_t>(shard)];
  {
    MutexLock lock(s.mu);
    ++s.finished;
    if (trace->head_sampled) ++s.head_sampled;
    if (trace->slow) ++s.slow;
    for (size_t i = 0; i < kNumTraceStages; ++i) {
      const TraceStageRecord& r = trace->stages[i];
      if (r.Present()) s.stage_hist[i].Record(r.end_ns - r.start_ns);
    }
    s.total_hist.Record(trace->total_ns);
    if ((trace->head_sampled || trace->slow) && s.ring.TryPush(*trace)) {
      ++s.captured;
    }
  }
  if (trace->head_sampled || trace->slow) {
    // Lock-free notify: the exporter waits with a 20ms timeout, so a
    // notify that races its drain window is only deferred, never lost.
    exporter_cv_.NotifyOne();
  }
}

bool Tracer::StartExporter(const std::string& path, std::string* error) {
  StopExporter();
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot open trace output file: " + path;
    }
    return false;
  }
  {
    MutexLock lock(exporter_mu_);
    export_path_ = path;
    export_file_ = f;
    exporter_stop_ = false;
    exporter_running_ = true;
    // Spawned while the lock is held, so a concurrent StopExporter
    // cannot observe exporter_running_ true with a stale (unjoinable)
    // thread handle: the new thread blocks on exporter_mu_ until the
    // handle is fully assigned.
    exporter_thread_ = std::thread([this] { ExporterLoop(); });
  }
  return true;
}

void Tracer::StopExporter() {
  std::thread to_join;
  {
    MutexLock lock(exporter_mu_);
    if (!exporter_running_) return;
    // Claim shutdown under the lock: exporter_running_ flips false and
    // the thread handle moves out *before* the join, so a concurrent
    // StopExporter (an explicit stop racing the destructor) returns
    // here instead of joining the same thread twice (which is
    // std::terminate).
    exporter_running_ = false;
    exporter_stop_ = true;
    to_join = std::move(exporter_thread_);
  }
  exporter_cv_.NotifyAll();
  to_join.join();
  // Final drain: everything Finish()ed before this call lands in the file.
  DrainAllToFile();
  {
    MutexLock lock(exporter_mu_);
    if (export_file_ != nullptr && !exporter_running_) {
      fclose(export_file_);
      export_file_ = nullptr;
    }
  }
}

bool Tracer::ExporterRunning() const {
  MutexLock lock(exporter_mu_);
  return exporter_running_;
}

void Tracer::ExporterLoop() {
  MutexLock lock(exporter_mu_);
  while (!exporter_stop_) {
    // Wake on capture or every 20ms; the timeout bounds how stale the
    // file can be when producers never notify (all slow, ring full).
    exporter_cv_.WaitFor(lock, std::chrono::milliseconds(20));
    lock.Unlock();
    DrainAllToFile();
    lock.Lock();
  }
}

size_t Tracer::DrainAllToFile() {
  std::vector<RequestTrace> batch;
  std::string line;
  size_t written = 0;
  for (auto& shard : shards_) {
    batch.clear();
    shard->ring.Drain(&batch, shard->ring.Capacity());
    for (const RequestTrace& t : batch) {
      line.clear();
      AppendTraceJson(t, status_name_, &line);
      line.push_back('\n');
      MutexLock lock(exporter_mu_);
      if (export_file_ == nullptr) return written;
      fwrite(line.data(), 1, line.size(), export_file_);
      ++written;
    }
  }
  if (written > 0) {
    MutexLock lock(exporter_mu_);
    if (export_file_ != nullptr) fflush(export_file_);
  }
  return written;
}

Tracer::Snapshot Tracer::GetSnapshot() const {
  Snapshot snap;
  Histogram merged[kNumTraceStages];
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    snap.finished += shard->finished;
    snap.captured += shard->captured;
    snap.head_sampled += shard->head_sampled;
    snap.slow += shard->slow;
    snap.dropped += shard->ring.Dropped();
    for (size_t i = 0; i < kNumTraceStages; ++i) {
      merged[i].Merge(shard->stage_hist[i]);
    }
  }
  for (size_t i = 0; i < kNumTraceStages; ++i) {
    if (merged[i].Count() == 0) continue;
    StageStat stat;
    stat.stage = static_cast<TraceStage>(i);
    stat.count = merged[i].Count();
    stat.p50_ns = merged[i].ValueAtQuantile(0.5);
    stat.p99_ns = merged[i].ValueAtQuantile(0.99);
    snap.stages.push_back(stat);
  }
  return snap;
}

void Tracer::ExportMetrics(
    MetricsRegistry* registry,
    std::vector<std::pair<std::string, std::string>> labels) const {
  Histogram merged[kNumTraceStages];
  Histogram total;
  uint64_t finished = 0, captured = 0, dropped = 0, head = 0, slow = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    finished += shard->finished;
    captured += shard->captured;
    head += shard->head_sampled;
    slow += shard->slow;
    dropped += shard->ring.Dropped();
    for (size_t i = 0; i < kNumTraceStages; ++i) {
      merged[i].Merge(shard->stage_hist[i]);
    }
    total.Merge(shard->total_hist);
  }
  registry->Add("traces_finished", static_cast<double>(finished), labels);
  registry->Add("traces_captured", static_cast<double>(captured), labels);
  registry->Add("traces_dropped", static_cast<double>(dropped), labels);
  registry->Add("traces_head_sampled", static_cast<double>(head), labels);
  registry->Add("traces_slow", static_cast<double>(slow), labels);
  for (size_t i = 0; i < kNumTraceStages; ++i) {
    if (merged[i].Count() == 0) continue;
    auto stage_labels = labels;
    stage_labels.emplace_back("stage", kStageNames[i]);
    registry->AddHistogram("trace_stage_micros", merged[i], 1e-3,
                           std::move(stage_labels));
  }
  if (total.Count() > 0) {
    registry->AddHistogram("trace_total_micros", total, 1e-3, labels);
  }
}

}  // namespace roadnet
