#ifndef ROADNET_CORE_GUIDELINES_H_
#define ROADNET_CORE_GUIDELINES_H_

#include <cstdint>
#include <string>

namespace roadnet {

// A workload sketch from which a technique is recommended.
struct WorkloadProfile {
  uint32_t num_vertices = 0;

  // Fraction of queries that need the edge sequence (vs distance only).
  double path_query_fraction = 0.5;

  // Fraction of queries whose endpoints are far apart (the regime where
  // TNR's tables engage, Q7..Q10 in the paper).
  double long_range_fraction = 0.5;

  // True if index space is a first-class constraint.
  bool space_constrained = true;

  // Largest input the all-pairs techniques (SILC/PCPD) can realistically
  // index; the paper observed ~1M vertices against a 24 GB budget.
  uint32_t all_pairs_feasible_vertices = 1000000;
};

// A technique recommendation with the paper-derived rationale.
struct Recommendation {
  std::string method;     // "CH", "TNR+CH", or "SILC"
  std::string rationale;  // one paragraph citing the findings
};

// Encodes the paper's selection guidelines (Sections 4.7 and 5) as an
// executable decision procedure:
//  * CH when space and time efficiency both matter (smallest index,
//    second-fastest queries of both kinds);
//  * TNR layered over CH for distance-dominated, long-range workloads
//    (order-of-magnitude wins on Q7..Q10 at a substantial space cost);
//  * SILC for path-dominated workloads on networks small enough to
//    preprocess all pairs, when space is not a concern;
//  * PCPD never (dominated by SILC in preprocessing, space, and query
//    time — the paper's fourth conclusion).
Recommendation RecommendMethod(const WorkloadProfile& profile);

}  // namespace roadnet

#endif  // ROADNET_CORE_GUIDELINES_H_
