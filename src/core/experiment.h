#ifndef ROADNET_CORE_EXPERIMENT_H_
#define ROADNET_CORE_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "routing/path_index.h"
#include "workload/query_gen.h"

namespace roadnet {

// Result of timing one index construction (Figure 6's two metrics).
struct BuildResult {
  std::string method;
  double preprocess_seconds = 0;
  size_t index_bytes = 0;
  // The constructed index, ready for queries.
  std::unique_ptr<PathIndex> index;
};

// Average per-query latencies of one (method, query set) combination —
// the paper reports microseconds per query throughout Figures 7-11.
struct QueryResult {
  std::string method;
  std::string query_set;
  size_t num_queries = 0;
  double avg_distance_micros = 0;
  double avg_path_micros = 0;
};

// The experiment framework of Section 4: builds indexes under a space
// cap (the paper's "indexing structures should be memory resident ...
// less than 24 GB" rule, scaled) and measures query latencies.
class Experiment {
 public:
  // Times `factory` and wraps the result. `factory` may return null to
  // signal "not applicable" (e.g. method cannot index this input).
  static BuildResult MeasureBuild(
      const std::string& method,
      const std::function<std::unique_ptr<PathIndex>()>& factory);

  // Average distance-query latency over the set (microseconds).
  static double MeasureDistanceQueries(PathIndex* index,
                                       const QuerySet& queries);

  // Average shortest-path-query latency over the set (microseconds).
  static double MeasurePathQueries(PathIndex* index, const QuerySet& queries);

  // Both metrics for one (index, set) pair.
  static QueryResult MeasureQueries(PathIndex* index, const QuerySet& queries);

  // Verifies that two indexes agree on distances over a query set;
  // returns the number of mismatches (0 = agreement). Benches use this to
  // guard measured numbers with correctness.
  static size_t CountDistanceMismatches(PathIndex* a, PathIndex* b,
                                        const QuerySet& queries);
};

}  // namespace roadnet

#endif  // ROADNET_CORE_EXPERIMENT_H_
