#include "core/guidelines.h"

namespace roadnet {

Recommendation RecommendMethod(const WorkloadProfile& profile) {
  const bool all_pairs_feasible =
      profile.num_vertices <= profile.all_pairs_feasible_vertices;

  // SILC: superior for shortest path queries, but only where the all-pairs
  // preprocessing fits and space is not a concern (conclusions, item 3).
  if (!profile.space_constrained && all_pairs_feasible &&
      profile.path_query_fraction >= 0.5) {
    return {"SILC",
            "Path-dominated workload on a network small enough for "
            "all-pairs preprocessing, with no space constraint: SILC "
            "answers shortest path queries fastest (Figures 7, 10, 11), "
            "at the cost of heavy preprocessing and an index that grows "
            "as n*sqrt(n) (Figure 6)."};
  }

  // TNR: an order of magnitude faster than CH on far distance queries,
  // but costly in space and no better than CH for paths (conclusions,
  // item 2).
  if (!profile.space_constrained &&
      profile.path_query_fraction < 0.5 &&
      profile.long_range_fraction >= 0.5) {
    return {"TNR+CH",
            "Distance-dominated, long-range workload: TNR over a "
            "128x128-style grid answers far queries from precomputed "
            "access-node tables an order of magnitude faster than CH "
            "(Figures 8, 9), falling back to CH for near pairs. The "
            "speedup costs considerable preprocessing and space "
            "(Figure 6), so it only pays off when space is secondary."};
  }

  // CH: the default — smallest index, fast preprocessing, second-best
  // queries of both kinds (conclusions, item 1).
  return {"CH",
          "CH is the most space-economic technique and still the "
          "second-fastest for both shortest path and distance queries "
          "(Figures 6-11): the preferable choice whenever both space "
          "and time efficiency matter."};
}

}  // namespace roadnet
