#ifndef ROADNET_CORE_REPORT_H_
#define ROADNET_CORE_REPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "obs/metrics.h"  // CsvEscape lives with the metrics writers

namespace roadnet {

// CSV emission for experiment results, so the bench tables can feed
// external plotting (the paper's figures are log-log line charts; the
// repository reports the same series as machine-readable rows).

// One row of a space/preprocessing table (Figure 6 style).
struct BuildRow {
  std::string dataset;
  uint32_t num_vertices = 0;
  std::string method;
  double preprocess_seconds = 0;
  size_t index_bytes = 0;
};

// One row of a query-latency table (Figures 7-11 style).
struct QueryRow {
  std::string dataset;
  uint32_t num_vertices = 0;
  std::string method;
  std::string query_set;
  size_t num_queries = 0;
  double avg_distance_micros = 0;
  double avg_path_micros = 0;
};

// Writes "dataset,n,method,preprocess_seconds,index_bytes" rows.
void WriteBuildCsv(const std::vector<BuildRow>& rows, std::ostream& out);

// Writes "dataset,n,method,query_set,queries,distance_us,path_us" rows.
void WriteQueryCsv(const std::vector<QueryRow>& rows, std::ostream& out);

}  // namespace roadnet

#endif  // ROADNET_CORE_REPORT_H_
