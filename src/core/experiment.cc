#include "core/experiment.h"

#include "util/timer.h"

namespace roadnet {

namespace {
// Discard target that the optimizer must assume is observed.
volatile uint64_t benchmark_sink_ = 0;
}  // namespace

BuildResult Experiment::MeasureBuild(
    const std::string& method,
    const std::function<std::unique_ptr<PathIndex>()>& factory) {
  BuildResult result;
  result.method = method;
  Timer timer;
  result.index = factory();
  result.preprocess_seconds = timer.ElapsedSeconds();
  if (result.index != nullptr) result.index_bytes = result.index->IndexBytes();
  return result;
}

double Experiment::MeasureDistanceQueries(PathIndex* index,
                                          const QuerySet& queries) {
  if (queries.pairs.empty()) return 0;
  // The sum sink keeps the optimizer from dropping query work.
  uint64_t sink = 0;
  Timer timer;
  for (const auto& [s, t] : queries.pairs) {
    sink += index->DistanceQuery(s, t);
  }
  benchmark_sink_ = sink;
  return timer.ElapsedMicros() / static_cast<double>(queries.pairs.size());
}

double Experiment::MeasurePathQueries(PathIndex* index,
                                      const QuerySet& queries) {
  if (queries.pairs.empty()) return 0;
  uint64_t sink = 0;
  Timer timer;
  for (const auto& [s, t] : queries.pairs) {
    sink += index->PathQuery(s, t).size();
  }
  benchmark_sink_ = sink;
  return timer.ElapsedMicros() / static_cast<double>(queries.pairs.size());
}

QueryResult Experiment::MeasureQueries(PathIndex* index,
                                       const QuerySet& queries) {
  QueryResult result;
  result.method = index->Name();
  result.query_set = queries.name;
  result.num_queries = queries.pairs.size();
  result.avg_distance_micros = MeasureDistanceQueries(index, queries);
  result.avg_path_micros = MeasurePathQueries(index, queries);
  return result;
}

size_t Experiment::CountDistanceMismatches(PathIndex* a, PathIndex* b,
                                           const QuerySet& queries) {
  size_t mismatches = 0;
  for (const auto& [s, t] : queries.pairs) {
    if (a->DistanceQuery(s, t) != b->DistanceQuery(s, t)) ++mismatches;
  }
  return mismatches;
}

}  // namespace roadnet
