#include "core/report.h"

#include <ostream>

namespace roadnet {

void WriteBuildCsv(const std::vector<BuildRow>& rows, std::ostream& out) {
  out << "dataset,n,method,preprocess_seconds,index_bytes\n";
  for (const BuildRow& r : rows) {
    out << CsvEscape(r.dataset) << ',' << r.num_vertices << ','
        << CsvEscape(r.method) << ',' << r.preprocess_seconds << ','
        << r.index_bytes << '\n';
  }
}

void WriteQueryCsv(const std::vector<QueryRow>& rows, std::ostream& out) {
  out << "dataset,n,method,query_set,queries,distance_us,path_us\n";
  for (const QueryRow& r : rows) {
    out << CsvEscape(r.dataset) << ',' << r.num_vertices << ','
        << CsvEscape(r.method) << ',' << CsvEscape(r.query_set) << ','
        << r.num_queries << ',' << r.avg_distance_micros << ','
        << r.avg_path_micros << '\n';
  }
}

}  // namespace roadnet
