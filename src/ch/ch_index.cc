#include "ch/ch_index.h"

#include <algorithm>
#include <sstream>

#include "io/binary.h"
#include "io/crc32.h"
#include "util/bytes.h"

namespace roadnet {

ChIndex::ChIndex(const Graph& g, const ChConfig& config) : graph_(g) {
  ContractionResult result = ContractGraph(g, config);
  rank_ = std::move(result.rank);
  num_shortcuts_ = result.num_shortcuts;

  // Build the upward adjacency: each augmented edge is stored once, at its
  // lower-ranked endpoint, pointing to the higher-ranked one. Both search
  // directions and the unpacking lookup share this structure.
  const uint32_t n = g.NumVertices();
  std::vector<uint32_t> degree(n, 0);
  for (const TaggedEdge& e : result.edges) {
    VertexId lo = rank_[e.u] < rank_[e.v] ? e.u : e.v;
    ++degree[lo];
  }
  up_offsets_.assign(n + 1, 0);
  for (uint32_t v = 0; v < n; ++v) {
    up_offsets_[v + 1] = up_offsets_[v] + degree[v];
  }
  up_arcs_.resize(up_offsets_[n]);
  std::vector<size_t> cursor(up_offsets_.begin(), up_offsets_.end() - 1);
  for (const TaggedEdge& e : result.edges) {
    VertexId lo = e.u, hi = e.v;
    if (rank_[lo] > rank_[hi]) std::swap(lo, hi);
    up_arcs_[cursor[lo]++] = UpArc{hi, e.weight, e.middle};
  }
  for (uint32_t v = 0; v < n; ++v) {
    std::sort(up_arcs_.begin() + up_offsets_[v],
              up_arcs_.begin() + up_offsets_[v + 1],
              [](const UpArc& a, const UpArc& b) { return a.to < b.to; });
  }
}

namespace {
constexpr char kChMagic[8] = {'R', 'N', 'E', 'T', 'C', 'H', 'I', 'X'};
// Version 2 wraps the payload in a length + CRC32 trailer (io/crc32.h);
// a corrupted index file is rejected at load instead of serving wrong
// distances.
constexpr uint32_t kChVersion = 2;
}  // namespace

ChIndex::ChIndex(const Graph& g, DeserializeTag) : graph_(g) {}

std::unique_ptr<QueryContext> ChIndex::NewContext() const {
  return std::make_unique<Context>(graph_.NumVertices());
}

void ChIndex::Serialize(std::ostream& out) const {
  WriteMagic(out, kChMagic);
  WriteScalar<uint32_t>(out, kChVersion);
  std::ostringstream payload;
  WriteScalar<uint32_t>(payload, graph_.NumVertices());
  WriteScalar<uint64_t>(payload, num_shortcuts_);
  WriteVector(payload, rank_);
  WriteVector(payload, up_offsets_);
  WriteVector(payload, up_arcs_);
  WriteChecksummedPayload(out, payload.view());
}

std::unique_ptr<ChIndex> ChIndex::Deserialize(const Graph& g,
                                              std::istream& in,
                                              std::string* error) {
  auto fail = [error](const char* message) {
    if (error != nullptr) *error = message;
    return nullptr;
  };
  if (!CheckMagic(in, kChMagic)) return fail("ch: bad magic");
  uint32_t version = 0;
  if (!ReadScalar(in, &version) || version != kChVersion) {
    return fail("ch: unsupported version (re-run preprocess with this build)");
  }
  std::string buffer;
  if (!ReadChecksummedPayload(in, &buffer, "ch", error)) return nullptr;
  std::istringstream body(buffer);
  uint32_t n = 0;
  if (!ReadScalar(body, &n) || n != g.NumVertices()) {
    return fail("ch: vertex count does not match the graph");
  }
  std::unique_ptr<ChIndex> index(new ChIndex(g, DeserializeTag{}));
  uint64_t shortcuts = 0;
  if (!ReadScalar(body, &shortcuts)) return fail("ch: truncated header");
  index->num_shortcuts_ = shortcuts;
  if (!ReadVector(body, &index->rank_) || index->rank_.size() != n) {
    return fail("ch: bad rank block");
  }
  if (!ReadVector(body, &index->up_offsets_) ||
      index->up_offsets_.size() != n + 1) {
    return fail("ch: bad offset block");
  }
  if (!ReadVector(body, &index->up_arcs_) ||
      index->up_arcs_.size() != index->up_offsets_[n]) {
    return fail("ch: bad arc block");
  }
  // Structural validation so corrupted input cannot cause out-of-range
  // indexing at query time.
  for (uint32_t v = 0; v < n; ++v) {
    if (index->up_offsets_[v] > index->up_offsets_[v + 1]) {
      return fail("ch: offsets not monotone");
    }
  }
  for (const UpArc& a : index->up_arcs_) {
    if (a.to >= n || (a.middle != kInvalidVertex && a.middle >= n)) {
      return fail("ch: arc target out of range");
    }
  }
  for (uint32_t r : index->rank_) {
    if (r >= n) return fail("ch: rank out of range");
  }
  return index;
}

size_t ChIndex::IndexBytes() const {
  return VectorBytes(rank_) + VectorBytes(up_offsets_) +
         VectorBytes(up_arcs_);
}

bool ChIndex::IsStalled(const SearchSide& side, uint32_t generation,
                        VertexId v, Distance dv) const {
  // v is stalled if a higher-ranked vertex u already offers a shorter way
  // into v; the true shortest path to v then descends from u, and v cannot
  // lie on a shortest up-down path, so its arcs need not be relaxed.
  for (const UpArc& a : UpArcs(v)) {
    if (side.reached[a.to] == generation &&
        side.dist[a.to] + a.weight < dv) {
      return true;
    }
  }
  return false;
}

VertexId ChIndex::Search(Context* ctx, VertexId s, VertexId t,
                         Distance* out_dist) const {
  ++ctx->generation;
  ctx->counters.Reset();
  SearchSide& forward = ctx->forward;
  SearchSide& backward = ctx->backward;
  forward.heap.Clear();
  backward.heap.Clear();

  forward.dist[s] = 0;
  forward.parent[s] = kInvalidVertex;
  forward.reached[s] = ctx->generation;
  forward.heap.Push(s, 0);

  backward.dist[t] = 0;
  backward.parent[t] = kInvalidVertex;
  backward.reached[t] = ctx->generation;
  backward.heap.Push(t, 0);
  ctx->counters.HeapPush(2);

  Distance best = (s == t) ? 0 : kInfDistance;
  VertexId meet = (s == t) ? s : kInvalidVertex;

  SearchSide* sides[2] = {&forward, &backward};
  while (true) {
    // A side stays active until its frontier minimum proves useless. Unlike
    // plain bidirectional Dijkstra, each side must run until its own
    // frontier exceeds the best tentative distance (Section 3.2: "the two
    // traversals may not stop immediately after they meet").
    SearchSide* side = nullptr;
    for (SearchSide* cand : sides) {
      if (cand->heap.Empty() || cand->heap.MinKey() >= best) continue;
      if (side == nullptr || cand->heap.MinKey() < side->heap.MinKey()) {
        side = cand;
      }
    }
    if (side == nullptr) break;
    SearchSide* other = (side == &forward) ? &backward : &forward;

    VertexId u = side->heap.PopMin();
    ctx->counters.HeapPop();
    ctx->counters.Settle();
    const Distance du = side->dist[u];
    if (stall_on_demand_ && IsStalled(*side, ctx->generation, u, du)) {
      continue;
    }

    for (const UpArc& a : UpArcs(u)) {
      ctx->counters.RelaxEdge();
      const Distance cand = du + a.weight;
      bool improved = false;
      if (side->reached[a.to] != ctx->generation) {
        side->reached[a.to] = ctx->generation;
        side->dist[a.to] = cand;
        side->parent[a.to] = u;
        side->heap.Push(a.to, cand);
        ctx->counters.HeapPush();
        improved = true;
      } else if (cand < side->dist[a.to]) {
        side->dist[a.to] = cand;
        side->parent[a.to] = u;
        if (side->heap.Contains(a.to)) {
          side->heap.DecreaseKey(a.to, cand);
        } else {
          // Re-open: cannot happen with non-negative weights, but keep the
          // invariant explicit.
          side->heap.Push(a.to, cand);
        }
        ctx->counters.HeapPush();
        improved = true;
      }
      if (improved && other->reached[a.to] == ctx->generation) {
        const Distance total = cand + other->dist[a.to];
        if (total < best) {
          best = total;
          meet = a.to;
        }
      }
    }
  }
  *out_dist = best;
  return meet;
}

Distance ChIndex::DistanceQuery(QueryContext* ctx, VertexId s,
                                VertexId t) const {
  Distance d = kInfDistance;
  Search(static_cast<Context*>(ctx), s, t, &d);
  return d;
}

const ChIndex::UpArc* ChIndex::FindEdge(VertexId a, VertexId b) const {
  VertexId lo = a, hi = b;
  if (rank_[lo] > rank_[hi]) std::swap(lo, hi);
  auto arcs = UpArcs(lo);
  auto it = std::lower_bound(
      arcs.begin(), arcs.end(), hi,
      [](const UpArc& arc, VertexId target) { return arc.to < target; });
  return (it != arcs.end() && it->to == hi) ? &*it : nullptr;
}

void ChIndex::UnpackEdge(VertexId a, VertexId b, Path* out,
                         QueryCounters* counters) const {
  const UpArc* e = FindEdge(a, b);
  // Every edge on an up-down path is an augmented edge by construction.
  if (e == nullptr || e->middle == kInvalidVertex) {
    out->push_back(b);
    return;
  }
  counters->ShortcutUnpacked();
  UnpackEdge(a, e->middle, out, counters);
  UnpackEdge(e->middle, b, out, counters);
}

Path ChIndex::PathQuery(QueryContext* raw_ctx, VertexId s,
                        VertexId t) const {
  Context* ctx = static_cast<Context*>(raw_ctx);
  Distance d = kInfDistance;
  VertexId meet = Search(ctx, s, t, &d);
  if (meet == kInvalidVertex) return {};
  if (s == t) return {s};

  // Augmented path: s .. meet (forward tree), then meet .. t (backward
  // tree), expressed as vertex ids in the augmented graph.
  std::vector<VertexId> up_path;
  for (VertexId cur = meet; cur != kInvalidVertex;
       cur = ctx->forward.parent[cur]) {
    up_path.push_back(cur);
  }
  std::reverse(up_path.begin(), up_path.end());
  for (VertexId cur = ctx->backward.parent[meet]; cur != kInvalidVertex;
       cur = ctx->backward.parent[cur]) {
    up_path.push_back(cur);
  }

  // Replace every shortcut with its two halves, recursively (Section 3.2's
  // tag-driven transformation back to a path in G).
  Path path;
  path.push_back(up_path.front());
  for (size_t i = 0; i + 1 < up_path.size(); ++i) {
    UnpackEdge(up_path[i], up_path[i + 1], &path, &ctx->counters);
  }
  return path;
}

std::vector<std::pair<VertexId, Distance>> ChIndex::UpwardSearchSpace(
    VertexId s) {
  // One-directional upward Dijkstra without stalling: every settled vertex
  // carries its exact upward distance, which the many-to-many bucket
  // algorithm requires. Reuses the default context's forward side so the
  // n calls TNR preprocessing makes stay allocation-free.
  Context* ctx = static_cast<Context*>(DefaultContext());
  ++ctx->generation;
  SearchSide& side = ctx->forward;
  side.heap.Clear();
  side.dist[s] = 0;
  side.reached[s] = ctx->generation;
  side.heap.Push(s, 0);

  std::vector<std::pair<VertexId, Distance>> space;
  while (!side.heap.Empty()) {
    VertexId u = side.heap.PopMin();
    space.emplace_back(u, side.dist[u]);
    const Distance du = side.dist[u];
    for (const UpArc& a : UpArcs(u)) {
      const Distance cand = du + a.weight;
      if (side.reached[a.to] != ctx->generation) {
        side.reached[a.to] = ctx->generation;
        side.dist[a.to] = cand;
        side.heap.Push(a.to, cand);
      } else if (side.heap.Contains(a.to) && cand < side.dist[a.to]) {
        side.dist[a.to] = cand;
        side.heap.DecreaseKey(a.to, cand);
      }
    }
  }
  return space;
}

}  // namespace roadnet
