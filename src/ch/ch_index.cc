#include "ch/ch_index.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "io/binary.h"
#include "io/crc32.h"
#include "util/bytes.h"

// The relaxation loop prefetches the next frontier vertex's arc block one
// pop ahead; a no-op on compilers without the intrinsic.
#if defined(__GNUC__) || defined(__clang__)
#define ROADNET_PREFETCH(addr) __builtin_prefetch(addr)
#else
#define ROADNET_PREFETCH(addr) ((void)0)
#endif

namespace roadnet {

ChIndex::ChIndex(const Graph& g, const ChConfig& config)
    : ChIndex(g, ContractGraph(g, config), config) {}

ChIndex::ChIndex(const Graph& g, ContractionResult result,
                 const ChConfig& config)
    : graph_(g), stall_on_demand_(config.stall_on_demand) {
  BuildFrom(std::move(result));
}

void ChIndex::BuildFrom(ContractionResult result) {
  const uint32_t n = graph_.NumVertices();
  rank_ = std::move(result.rank);
  num_shortcuts_ = result.num_shortcuts;
  order_.assign(n, kInvalidVertex);
  for (VertexId v = 0; v < n; ++v) order_[rank_[v]] = v;

  // Build the rank-space upward CSR: each augmented edge is stored once,
  // at its lower-ranked endpoint, pointing to the higher-ranked one. Both
  // search directions and path unpacking share this structure.
  std::vector<uint32_t> degree(n, 0);
  for (const TaggedEdge& e : result.edges) {
    ++degree[std::min(rank_[e.u], rank_[e.v])];
  }
  up_offsets_.assign(n + 1, 0);
  for (uint32_t r = 0; r < n; ++r) {
    up_offsets_[r + 1] = up_offsets_[r] + degree[r];
  }
  const uint32_t num_arcs = up_offsets_[n];
  arcs_.resize(num_arcs);
  // Middle tags in rank space, parallel to arcs_, consumed below when the
  // cold unpack records are resolved to arc indices.
  std::vector<uint32_t> middle(num_arcs);
  std::vector<uint32_t> cursor(up_offsets_.begin(), up_offsets_.end() - 1);
  for (const TaggedEdge& e : result.edges) {
    uint32_t lo = rank_[e.u], hi = rank_[e.v];
    if (lo > hi) std::swap(lo, hi);
    const uint32_t idx = cursor[lo]++;
    arcs_[idx] = HotArc{hi, e.weight};
    middle[idx] = e.middle == kInvalidVertex ? kInvalidVertex : rank_[e.middle];
  }
  // Sort each arc block by target rank: relaxations then touch the
  // per-vertex arrays in ascending address order, and the build-time arc
  // lookups below can binary search.
  for (uint32_t r = 0; r < n; ++r) {
    const uint32_t begin = up_offsets_[r], end = up_offsets_[r + 1];
    std::vector<std::pair<HotArc, uint32_t>> block;
    block.reserve(end - begin);
    for (uint32_t i = begin; i < end; ++i) {
      block.emplace_back(arcs_[i], middle[i]);
    }
    std::sort(block.begin(), block.end(),
              [](const auto& a, const auto& b) {
                return a.first.target < b.first.target;
              });
    for (uint32_t i = begin; i < end; ++i) {
      arcs_[i] = block[i - begin].first;
      middle[i] = block[i - begin].second;
    }
  }
  // Resolve every shortcut's middle tag into the arc indices of its two
  // halves once, here, so path unpacking never has to look an edge up. A
  // middle is contracted before either endpoint, so both halves live in
  // the middle's (strictly earlier) arc block — unpack recursion walks
  // strictly decreasing arc indices and always terminates.
  unpack_.resize(num_arcs);
  for (uint32_t r = 0; r < n; ++r) {
    for (uint32_t i = up_offsets_[r]; i < up_offsets_[r + 1]; ++i) {
      if (middle[i] == kInvalidVertex) {
        unpack_[i] = ArcUnpack{kOriginalArc, r};
        continue;
      }
      const uint32_t lo = FindArcIndex(middle[i], r);
      const uint32_t hi = FindArcIndex(middle[i], arcs_[i].target);
      assert(lo != kOriginalArc && hi != kOriginalArc);
      unpack_[i] = ArcUnpack{lo, hi};
    }
  }
}

uint32_t ChIndex::FindArcIndex(uint32_t src, uint32_t target) const {
  const auto first = arcs_.begin() + up_offsets_[src];
  const auto last = arcs_.begin() + up_offsets_[src + 1];
  const auto it = std::lower_bound(
      first, last, target,
      [](const HotArc& a, uint32_t t) { return a.target < t; });
  if (it == last || it->target != target) return kOriginalArc;
  return static_cast<uint32_t>(it - arcs_.begin());
}

namespace {
constexpr char kChMagic[8] = {'R', 'N', 'E', 'T', 'C', 'H', 'I', 'X'};
// Version 3 stores the rank-permuted SoA layout (rank permutation,
// rank-space hot arcs, cold unpack records) under the version-2 CRC32
// trailer; older files are rejected with a re-run hint since their
// original-order AoS payload no longer matches the query core.
constexpr uint32_t kChVersion = 3;
}  // namespace

ChIndex::ChIndex(const Graph& g, DeserializeTag) : graph_(g) {}

std::unique_ptr<QueryContext> ChIndex::NewContext() const {
  auto ctx = std::make_unique<Context>(graph_.NumVertices());
  // The settle loops append every freshly reached rank to `touched`.
  // Reserving past any road-network CH search-space size here means a
  // reused context's queries never grow the vectors mid-search (R11); a
  // pathological search still grows them, but only once per context.
  constexpr size_t kTouchedReserve = 4096;
  ctx->forward.touched.reserve(std::min<size_t>(kTouchedReserve,
                                                graph_.NumVertices()));
  ctx->backward.touched.reserve(std::min<size_t>(kTouchedReserve,
                                                 graph_.NumVertices()));
  return ctx;
}

void ChIndex::Serialize(std::ostream& out) const {
  WriteMagic(out, kChMagic);
  WriteScalar<uint32_t>(out, kChVersion);
  std::ostringstream payload;
  WriteScalar<uint32_t>(payload, graph_.NumVertices());
  WriteScalar<uint64_t>(payload, num_shortcuts_);
  WriteVector(payload, rank_);
  WriteVector(payload, up_offsets_);
  WriteVector(payload, arcs_);
  WriteVector(payload, unpack_);
  WriteChecksummedPayload(out, payload.view());
}

std::unique_ptr<ChIndex> ChIndex::Deserialize(const Graph& g,
                                              std::istream& in,
                                              std::string* error) {
  auto fail = [error](const char* message) {
    if (error != nullptr) *error = message;
    return nullptr;
  };
  if (!CheckMagic(in, kChMagic)) return fail("ch: bad magic");
  uint32_t version = 0;
  if (!ReadScalar(in, &version) || version != kChVersion) {
    return fail("ch: unsupported version (re-run preprocess with this build)");
  }
  std::string buffer;
  if (!ReadChecksummedPayload(in, &buffer, "ch", error)) return nullptr;
  std::istringstream body(buffer);
  uint32_t n = 0;
  if (!ReadScalar(body, &n) || n != g.NumVertices()) {
    return fail("ch: vertex count does not match the graph");
  }
  std::unique_ptr<ChIndex> index(new ChIndex(g, DeserializeTag{}));
  uint64_t shortcuts = 0;
  if (!ReadScalar(body, &shortcuts)) return fail("ch: truncated header");
  index->num_shortcuts_ = shortcuts;
  if (!ReadVector(body, &index->rank_) || index->rank_.size() != n) {
    return fail("ch: bad rank block");
  }
  if (!ReadVector(body, &index->up_offsets_) ||
      index->up_offsets_.size() != n + 1) {
    return fail("ch: bad offset block");
  }
  if (!ReadVector(body, &index->arcs_) ||
      index->arcs_.size() != index->up_offsets_[n]) {
    return fail("ch: bad arc block");
  }
  if (!ReadVector(body, &index->unpack_) ||
      index->unpack_.size() != index->arcs_.size()) {
    return fail("ch: bad unpack block");
  }
  // Structural validation so corrupted input cannot cause out-of-range
  // indexing or unbounded recursion at query time.
  index->order_.assign(n, kInvalidVertex);
  for (VertexId v = 0; v < n; ++v) {
    const uint32_t r = index->rank_[v];
    if (r >= n || index->order_[r] != kInvalidVertex) {
      return fail("ch: ranks are not a permutation");
    }
    index->order_[r] = v;
  }
  if (n > 0 && index->up_offsets_[0] != 0) {
    return fail("ch: offsets do not start at zero");
  }
  for (uint32_t r = 0; r < n; ++r) {
    if (index->up_offsets_[r] > index->up_offsets_[r + 1]) {
      return fail("ch: offsets not monotone");
    }
    for (uint32_t i = index->up_offsets_[r]; i < index->up_offsets_[r + 1];
         ++i) {
      const HotArc& a = index->arcs_[i];
      if (a.target >= n || a.target <= r) {
        return fail("ch: arc target not above its source rank");
      }
      const ArcUnpack& u = index->unpack_[i];
      if (u.lo == kOriginalArc) {
        if (u.hi != r) return fail("ch: original-edge source mismatch");
      } else if (u.lo >= index->up_offsets_[r] ||
                 u.hi >= index->up_offsets_[r] ||
                 index->arcs_[u.lo].target != r ||
                 index->arcs_[u.hi].target != a.target) {
        return fail("ch: shortcut unpack arcs do not match endpoints");
      }
    }
  }
  return index;
}

size_t ChIndex::IndexBytes() const {
  return VectorBytes(rank_) + VectorBytes(order_) + VectorBytes(up_offsets_) +
         VectorBytes(arcs_) + VectorBytes(unpack_);
}

uint32_t ChIndex::Search(Context* ctx, uint32_t s, uint32_t t,
                         Distance* out_dist) const {
  ctx->counters.Reset();
  SearchSide& forward = ctx->forward;
  SearchSide& backward = ctx->backward;
  // Reset at search start, not end: PathQuery reads the parent-arc chains
  // after Search returns, so the previous search's state must survive it.
  forward.Reset();
  backward.Reset();

  forward.dist[s] = 0;
  forward.aux[s].parent_arc = kOriginalArc;
  forward.touched.push_back(s);
  forward.HeapPush(s, 0);

  backward.dist[t] = 0;
  backward.aux[t].parent_arc = kOriginalArc;
  backward.touched.push_back(t);
  backward.HeapPush(t, 0);
  ctx->counters.HeapPush(2);

  Distance best = (s == t) ? 0 : kInfDistance;
  uint32_t meet = (s == t) ? s : kInvalidVertex;

  SearchSide* sides[2] = {&forward, &backward};
  while (true) {
    // A side stays active until its frontier minimum proves useless. Unlike
    // plain bidirectional Dijkstra, each side must run until its own
    // frontier exceeds the best tentative distance (Section 3.2: "the two
    // traversals may not stop immediately after they meet").
    SearchSide* side = nullptr;
    for (SearchSide* cand : sides) {
      if (cand->HeapEmpty() || cand->MinKey() >= best) continue;
      if (side == nullptr || cand->MinKey() < side->MinKey()) {
        side = cand;
      }
    }
    if (side == nullptr) break;
    SearchSide* other = (side == &forward) ? &backward : &forward;

    const HeapEntry top = side->HeapPopMin();
    const uint32_t u = top.rank;
    const Distance du = top.key;
    ctx->counters.HeapPop();
    ctx->counters.Settle();
    // Overlap the heap bookkeeping of this settle with the memory fetches
    // of the next frontier vertex: its arc block and its meet-check line
    // in the opposite search's state. Both addresses are known one pop
    // ahead, unlike the relax targets, so this hides most of the latency
    // of the settle loop's dependency chain.
    if (!side->HeapEmpty()) {
      const uint32_t next = side->MinRank();
      ROADNET_PREFETCH(arcs_.data() + up_offsets_[next]);
      ROADNET_PREFETCH(&other->dist[next]);
    }
    // Meet detection at settle time (not per relaxation): du is final, and
    // at whichever side settles the optimal apex second the opposite
    // tentative distance is final too, so the minimum over these sums is
    // exactly dist(s, t). Checked before stalling — a stalled settle is a
    // valid (if suboptimal) meeting candidate, and skipping it here would
    // cost correctness of the bound below.
    {
      const Distance od = other->dist[u];
      if (od != kInfDistance) {
        const Distance total = du + od;
        if (total < best) {
          best = total;
          meet = u;
        }
      }
    }
    const uint32_t arc_begin = up_offsets_[u];
    const uint32_t arc_end = up_offsets_[u + 1];
    Distance* const dist = side->dist.data();
    NodeAux* const aux = side->aux.data();
    uint32_t nbuf = 0;
    if (stall_on_demand_) {
      // Fused stall + relax scan. u is stalled if some target already
      // offers a shorter way into it (td + w < du): the true shortest
      // path to u then descends from that higher-ranked vertex, u cannot
      // lie on a shortest up-down path, and its arcs need not be relaxed
      // (stall-on-demand). One pass over the block reads each target's
      // distance once, checking stall evidence and buffering
      // improvements; nothing is committed until the vertex proves
      // non-stalled, so an abort wastes no heap work. The td < du
      // pre-test doubles as the reached check: unreached entries hold
      // kInfDistance, which wraps if the weight is added blindly.
      if (side->relax_buf.size() < arc_end - arc_begin) {
        side->relax_buf.resize(arc_end - arc_begin);
      }
      uint32_t* const buf = side->relax_buf.data();
      bool stalled = false;
      for (uint32_t arc = arc_begin; arc < arc_end; ++arc) {
        const HotArc a = arcs_[arc];
        const Distance td = dist[a.target];
        if (td < du && td + a.weight < du) {
          stalled = true;
          break;
        }
        const Distance cand = du + a.weight;
        if (cand < td && cand < best) buf[nbuf++] = arc;
      }
      if (stalled) continue;
    } else {
      if (side->relax_buf.size() < arc_end - arc_begin) {
        side->relax_buf.resize(arc_end - arc_begin);
      }
      uint32_t* const buf = side->relax_buf.data();
      for (uint32_t arc = arc_begin; arc < arc_end; ++arc) {
        const HotArc a = arcs_[arc];
        const Distance cand = du + a.weight;
        if (cand < dist[a.target] && cand < best) buf[nbuf++] = arc;
      }
    }
    ctx->counters.RelaxEdge(arc_end - arc_begin);
    for (uint32_t i = 0; i < nbuf; ++i) {
      const uint32_t arc = side->relax_buf[i];
      const HotArc a = arcs_[arc];
      const Distance cand = du + a.weight;
      Distance& d = dist[a.target];
      // Re-checked: parallel arcs to one target may buffer twice.
      if (cand < d) {
        const bool fresh = d == kInfDistance;
        d = cand;
        aux[a.target].parent_arc = arc;
        if (fresh) {
          side->touched.push_back(a.target);
          side->HeapPush(a.target, cand);
        } else {
          // Still queued: a settled distance is final with non-negative
          // weights, so an improvable vertex must be in the heap.
          side->HeapDecrease(a.target, cand);
        }
        ctx->counters.HeapPush();
      }
    }
  }
  *out_dist = best;
  return meet;
}

Distance ChIndex::DistanceQuery(QueryContext* ctx, VertexId s,
                                VertexId t) const {
  Distance d = kInfDistance;
  Search(static_cast<Context*>(ctx), rank_[s], rank_[t], &d);
  return d;
}

void ChIndex::EmitArc(uint32_t arc, bool down, Path* out,
                      QueryCounters* counters) const {
  const ArcUnpack u = unpack_[arc];
  if (u.lo == kOriginalArc) {
    // Original edge: emit the far endpoint (source when walking down,
    // target when walking up), translated to its external id.
    out->push_back(order_[down ? u.hi : arcs_[arc].target]);
    return;
  }
  counters->ShortcutUnpacked();
  // Walking up traverses source -> middle -> target: the source half
  // downward (it ends, and therefore emits, the middle), then the target
  // half upward. Walking down mirrors it.
  if (down) {
    EmitArc(u.hi, true, out, counters);
    EmitArc(u.lo, false, out, counters);
  } else {
    EmitArc(u.lo, true, out, counters);
    EmitArc(u.hi, false, out, counters);
  }
}

Path ChIndex::PathQuery(QueryContext* raw_ctx, VertexId s,
                        VertexId t) const {
  Context* ctx = static_cast<Context*>(raw_ctx);
  Distance d = kInfDistance;
  const uint32_t meet = Search(ctx, rank_[s], rank_[t], &d);
  if (meet == kInvalidVertex) return {};
  if (s == t) return {s};

  // The parent arcs give the augmented up-down path directly: the forward
  // tree's arcs are traversed upward (source -> target), the backward
  // tree's downward, and each hop's far vertex comes from ArcSource — no
  // parent-vertex array, no edge lookups anywhere on this path.
  std::vector<uint32_t> up_arcs;
  for (uint32_t arc = ctx->forward.aux[meet].parent_arc;
       arc != kOriginalArc;
       arc = ctx->forward.aux[ArcSource(arc)].parent_arc) {
    up_arcs.push_back(arc);
  }
  std::reverse(up_arcs.begin(), up_arcs.end());

  Path path;
  path.push_back(s);
  for (uint32_t arc : up_arcs) {
    EmitArc(arc, /*down=*/false, &path, &ctx->counters);
  }
  for (uint32_t arc = ctx->backward.aux[meet].parent_arc;
       arc != kOriginalArc;
       arc = ctx->backward.aux[ArcSource(arc)].parent_arc) {
    EmitArc(arc, /*down=*/true, &path, &ctx->counters);
  }
  return path;
}

void ChIndex::UpwardSearchSpace(
    QueryContext* raw_ctx, VertexId s,
    std::vector<std::pair<VertexId, Distance>>* out) const {
  // One-directional upward Dijkstra without stalling: every settled vertex
  // carries its exact upward distance, which the many-to-many bucket
  // algorithm requires. Runs in the caller's context so the n calls TNR
  // preprocessing makes stay allocation-free.
  Context* ctx = static_cast<Context*>(raw_ctx);
  SearchSide& side = ctx->forward;
  side.Reset();
  const uint32_t start = rank_[s];
  side.dist[start] = 0;
  side.touched.push_back(start);
  side.HeapPush(start, 0);

  out->clear();
  while (!side.HeapEmpty()) {
    const HeapEntry top = side.HeapPopMin();
    const uint32_t u = top.rank;
    const Distance du = top.key;
    // roadnet-lint: allow(R11 caller-owned output; its final size is the settled count, unknowable before the search — callers reuse the vector across calls so growth amortizes to zero)
    out->emplace_back(order_[u], du);
    for (const HotArc& a : Arcs(u)) {
      const Distance cand = du + a.weight;
      Distance& d = side.dist[a.target];
      if (cand < d) {
        const bool fresh = d == kInfDistance;
        // No parent recorded: search spaces only need (vertex, distance).
        d = cand;
        if (fresh) {
          side.touched.push_back(a.target);
          side.HeapPush(a.target, cand);
        } else {
          side.HeapDecrease(a.target, cand);
        }
      }
    }
  }
}

}  // namespace roadnet
