#ifndef ROADNET_CH_CONTRACTION_H_
#define ROADNET_CH_CONTRACTION_H_

#include <cstdint>
#include <vector>

#include "ch/node_order.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace roadnet {

// An edge of the augmented road network produced by CH preprocessing:
// either an original edge (middle == kInvalidVertex) or a shortcut tagged
// with the vertex whose contraction created it (Section 3.2: "the shortcut
// is tagged with v_i ... the tags are crucial for shortest path queries").
struct TaggedEdge {
  VertexId u;
  VertexId v;
  Weight weight;
  VertexId middle;
};

// Result of the CH preprocessing step: the total order on the vertices and
// the augmented edge set (original edges plus all shortcuts).
struct ContractionResult {
  // rank[v] = position of v in the total order (0 = contracted first =
  // least important).
  std::vector<uint32_t> rank;
  // Original edges and shortcuts, de-duplicated per vertex pair keeping
  // the minimum weight.
  std::vector<TaggedEdge> edges;
  // Number of shortcut edges among `edges` (reporting only).
  size_t num_shortcuts = 0;
};

// Runs the CH preprocessing step of Section 3.2: iteratively contracts the
// vertex with the smallest heuristic priority (with lazy priority
// re-evaluation), inserting a shortcut between neighbours u, w of the
// contracted vertex v whenever the witness search cannot certify a path
// from u to w avoiding v that is no longer than w(u,v) + w(v,w).
ContractionResult ContractGraph(const Graph& g, const ChConfig& config);

}  // namespace roadnet

#endif  // ROADNET_CH_CONTRACTION_H_
