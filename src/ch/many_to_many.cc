#include "ch/many_to_many.h"

#include <algorithm>
#include <utility>

namespace roadnet {

ManyToManyEngine::ManyToManyEngine(const ChIndex* ch,
                                   std::vector<VertexId> targets)
    : ch_(ch), targets_(std::move(targets)), ctx_(ch->NewContext()) {
  for (uint32_t j = 0; j < targets_.size(); ++j) {
    ch_->UpwardSearchSpace(ctx_.get(), targets_[j], &space_);
    for (const auto& [v, d] : space_) {
      if (v >= buckets_.size()) buckets_.resize(v + 1);
      buckets_[v].push_back(BucketEntry{j, d});
    }
  }
}

void ManyToManyEngine::ComputeRow(VertexId source,
                                  std::vector<Distance>* row) {
  row->assign(targets_.size(), kInfDistance);
  ch_->UpwardSearchSpace(ctx_.get(), source, &space_);
  for (const auto& [v, df] : space_) {
    if (v >= buckets_.size()) continue;
    for (const BucketEntry& e : buckets_[v]) {
      const Distance total = df + e.dist;
      if (total < (*row)[e.target_index]) (*row)[e.target_index] = total;
    }
  }
}

std::vector<Distance> ManyToManyDistances(
    const ChIndex* ch, const std::vector<VertexId>& sources,
    const std::vector<VertexId>& targets) {
  std::vector<Distance> table(sources.size() * targets.size(), kInfDistance);
  if (sources.empty() || targets.empty()) return table;

  ManyToManyEngine engine(ch, targets);
  std::vector<Distance> row;
  for (size_t i = 0; i < sources.size(); ++i) {
    engine.ComputeRow(sources[i], &row);
    std::copy(row.begin(), row.end(),
              table.begin() + i * targets.size());
  }
  return table;
}

}  // namespace roadnet
