#include "ch/node_order.h"

namespace roadnet {

int64_t CombinePriority(OrderingHeuristic heuristic,
                        const PriorityTerms& terms) {
  switch (heuristic) {
    case OrderingHeuristic::kEdgeDifferenceDeleted:
      return 2 * static_cast<int64_t>(terms.edge_difference) +
             terms.deleted_neighbours;
    case OrderingHeuristic::kEdgeDifference:
      return terms.edge_difference;
    case OrderingHeuristic::kDegree:
      return terms.degree;
    case OrderingHeuristic::kRandom:
      return 0;  // the contractor substitutes random priorities
  }
  return 0;
}

}  // namespace roadnet
