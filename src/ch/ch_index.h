#ifndef ROADNET_CH_CH_INDEX_H_
#define ROADNET_CH_CH_INDEX_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ch/contraction.h"
#include "ch/node_order.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "pq/indexed_heap.h"
#include "routing/path_index.h"

namespace roadnet {

// Contraction Hierarchies (Geisberger et al. 2008; paper Section 3.2).
//
// Preprocessing contracts all vertices in heuristic order, producing an
// augmented graph of original edges plus tagged shortcuts. A query runs a
// bidirectional Dijkstra that only relaxes edges leading to higher-ranked
// vertices; the two upward searches meet at the highest-ranked vertex of
// the shortest path. Shortest path queries additionally unpack shortcuts
// recursively through their middle-vertex tags.
//
// The hierarchy is immutable after preprocessing; all search scratch
// lives in the QueryContext, so one index serves any number of threads.
class ChIndex : public PathIndex {
 public:
  // Runs CH preprocessing on g. The graph must outlive the index.
  ChIndex(const Graph& g, const ChConfig& config);
  explicit ChIndex(const Graph& g) : ChIndex(g, ChConfig{}) {}

  // Writes the preprocessed hierarchy (ranks + augmented upward graph) so
  // query servers can skip preprocessing.
  void Serialize(std::ostream& out) const;

  // Restores a serialized hierarchy over the same graph it was built on
  // (vertex count is validated; the caller is responsible for the graphs
  // being identical). Returns nullptr on malformed input.
  static std::unique_ptr<ChIndex> Deserialize(const Graph& g,
                                              std::istream& in,
                                              std::string* error);

  std::string Name() const override { return "CH"; }
  std::unique_ptr<QueryContext> NewContext() const override;
  Distance DistanceQuery(QueryContext* ctx, VertexId s,
                         VertexId t) const override;
  Path PathQuery(QueryContext* ctx, VertexId s, VertexId t) const override;
  using PathIndex::DistanceQuery;
  using PathIndex::PathQuery;
  size_t IndexBytes() const override;

  // Enables/disables the stall-on-demand query optimization (ablation).
  // Not synchronized: flip only while no concurrent queries run.
  void SetStallOnDemand(bool enabled) { stall_on_demand_ = enabled; }

  uint32_t RankOf(VertexId v) const { return rank_[v]; }
  size_t NumShortcuts() const { return num_shortcuts_; }
  size_t SettledCount() const { return ContextCounters().vertices_settled; }

  // Forward upward search space of s: every vertex settled by the upward
  // Dijkstra, with its distance. The building block of the many-to-many
  // engine TNR preprocessing uses (Appendix B remedy: "we construct
  // contraction hierarchies in advance to reduce the computation cost of
  // deriving access nodes").
  std::vector<std::pair<VertexId, Distance>> UpwardSearchSpace(VertexId s);

 private:
  // Arc of the upward graph, from a vertex to a higher-ranked one.
  struct UpArc {
    VertexId to;
    Weight weight;
    VertexId middle;  // kInvalidVertex = original edge
  };

  // One direction of the bidirectional upward search.
  struct SearchSide {
    IndexedHeap<Distance> heap;
    std::vector<Distance> dist;
    std::vector<VertexId> parent;
    std::vector<uint32_t> reached;

    explicit SearchSide(uint32_t n)
        : heap(n), dist(n, 0), parent(n, kInvalidVertex), reached(n, 0) {}
  };

  struct Context : QueryContext {
    explicit Context(uint32_t n) : forward(n), backward(n) {}

    SearchSide forward;
    SearchSide backward;
    uint32_t generation = 0;
  };

  std::span<const UpArc> UpArcs(VertexId v) const {
    return {up_arcs_.data() + up_offsets_[v],
            up_offsets_[v + 1] - up_offsets_[v]};
  }

  // Runs the bidirectional upward search; returns the best meeting vertex
  // (kInvalidVertex if unreachable) and its distance in *out_dist.
  VertexId Search(Context* ctx, VertexId s, VertexId t,
                  Distance* out_dist) const;

  // True if v's tentative distance in `side` is provably not the true
  // distance from the side's source (stall-on-demand).
  bool IsStalled(const SearchSide& side, uint32_t generation, VertexId v,
                 Distance dv) const;

  // Deserialization constructor: arrays filled by the factory.
  struct DeserializeTag {};
  ChIndex(const Graph& g, DeserializeTag);

  // Looks up the (weight, middle) record of augmented edge (a, b).
  const UpArc* FindEdge(VertexId a, VertexId b) const;

  // Appends the original-graph expansion of augmented edge (a, b) to
  // *out, excluding vertex a itself. Counts each shortcut expansion into
  // *counters.
  void UnpackEdge(VertexId a, VertexId b, Path* out,
                  QueryCounters* counters) const;

  const Graph& graph_;
  std::vector<uint32_t> rank_;
  std::vector<size_t> up_offsets_;
  std::vector<UpArc> up_arcs_;
  size_t num_shortcuts_ = 0;
  bool stall_on_demand_ = true;
};

}  // namespace roadnet

#endif  // ROADNET_CH_CH_INDEX_H_
