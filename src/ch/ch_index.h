#ifndef ROADNET_CH_CH_INDEX_H_
#define ROADNET_CH_CH_INDEX_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "ch/contraction.h"
#include "ch/node_order.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "routing/path_index.h"

namespace roadnet {

// Contraction Hierarchies (Geisberger et al. 2008; paper Section 3.2).
//
// Preprocessing contracts all vertices in heuristic order, producing an
// augmented graph of original edges plus tagged shortcuts. A query runs a
// bidirectional Dijkstra that only relaxes edges leading to higher-ranked
// vertices; the two upward searches meet at the highest-ranked vertex of
// the shortest path. Shortest path queries additionally unpack shortcuts
// recursively through their middle-vertex tags.
//
// Memory layout (see DESIGN.md "CH memory layout"): internally every
// vertex is identified by its contraction rank, so the dense high-rank
// core both upward searches converge into occupies one contiguous stretch
// of every per-vertex array. The upward adjacency is split
// structure-of-arrays: an 8-byte (target, weight) record per arc on the
// hot search path, and a cold parallel unpack record (child arc indices)
// touched only by path queries. The search stores the index of the
// relaxed arc next to the parent vertex, so unpacking walks precomputed
// arc indices and never performs an edge lookup. External VertexIds are
// translated to rank space only at the API boundary.
//
// The hierarchy is immutable after preprocessing (stall-on-demand is a
// ChConfig build option, not a setter); all search scratch lives in the
// QueryContext, so one index serves any number of threads.
class ChIndex : public PathIndex {
 public:
  // Runs CH preprocessing on g. The graph must outlive the index.
  ChIndex(const Graph& g, const ChConfig& config);
  explicit ChIndex(const Graph& g) : ChIndex(g, ChConfig{}) {}

  // Adopts a precomputed contraction instead of running one. This is how
  // bench_ch_layout builds two query layouts over a single contraction so
  // the comparison isolates memory-layout effects.
  ChIndex(const Graph& g, ContractionResult result, const ChConfig& config);

  // Writes the preprocessed hierarchy (ranks + rank-space upward arrays)
  // so query servers can skip preprocessing.
  void Serialize(std::ostream& out) const;

  // Restores a serialized hierarchy over the same graph it was built on
  // (vertex count is validated; the caller is responsible for the graphs
  // being identical). Returns nullptr on malformed input.
  static std::unique_ptr<ChIndex> Deserialize(const Graph& g,
                                              std::istream& in,
                                              std::string* error);

  std::string Name() const override { return "CH"; }
  std::unique_ptr<QueryContext> NewContext() const override;
  Distance DistanceQuery(QueryContext* ctx, VertexId s,
                         VertexId t) const override;
  Path PathQuery(QueryContext* ctx, VertexId s, VertexId t) const override;
  using PathIndex::DistanceQuery;
  using PathIndex::PathQuery;
  size_t IndexBytes() const override;

  // Whether queries use the stall-on-demand pruning (ChConfig option).
  bool StallOnDemand() const { return stall_on_demand_; }

  uint32_t RankOf(VertexId v) const { return rank_[v]; }
  VertexId VertexAtRank(uint32_t r) const { return order_[r]; }
  size_t NumShortcuts() const { return num_shortcuts_; }
  size_t SettledCount() const { return ContextCounters().vertices_settled; }

  // Forward upward search space of s: every vertex settled by the upward
  // Dijkstra (external ids), with its distance, appended to *out (which
  // is cleared first). The building block of the many-to-many engine TNR
  // preprocessing uses (Appendix B remedy: "we construct contraction
  // hierarchies in advance to reduce the computation cost of deriving
  // access nodes"). Reuses ctx's scratch, so repeated calls with the same
  // context and out vector are allocation-free; thread-safe with one
  // context per thread like the query API.
  void UpwardSearchSpace(QueryContext* ctx, VertexId s,
                         std::vector<std::pair<VertexId, Distance>>* out)
      const;

  // Single-threaded convenience overload over the default context.
  // roadnet-lint: allow(R2 legacy single-threaded wrapper over the default context; index structure untouched)
  std::vector<std::pair<VertexId, Distance>> UpwardSearchSpace(VertexId s) {
    std::vector<std::pair<VertexId, Distance>> out;
    UpwardSearchSpace(DefaultContext(), s, &out);
    return out;
  }

 private:
  // Hot half of an upward arc, in rank space: both searches touch only
  // this 8-byte record per relaxation. `target` is the rank of the
  // higher-ranked endpoint; the source rank is implicit in the CSR
  // position.
  struct HotArc {
    uint32_t target;
    Weight weight;
  };

  // Cold half, touched only by path unpacking. A shortcut stores the arc
  // indices of its two halves (both arcs of the middle vertex, which is
  // ranked below either endpoint): `lo` leads from the middle to the
  // arc's source, `hi` from the middle to the arc's target. An original
  // edge stores {kOriginalArc, source rank} instead, giving the unpacker
  // O(1) access to the endpoint the hot record omits.
  struct ArcUnpack {
    uint32_t lo;
    uint32_t hi;
  };
  static constexpr uint32_t kOriginalArc = UINT32_MAX;

  // Write-mostly half of the per-vertex search state. `parent_arc`
  // replaces the parent vertex — the arc's source is recovered in O(1)
  // from the cold unpack record (see ArcSource), so no parent array
  // exists at all. `heap_pos` is the vertex's slot in the side's
  // frontier heap (the heap is intrusive; see SearchSide); it is only
  // meaningful while the vertex is queued, and is deliberately left
  // stale after the pop — a settled distance is final with non-negative
  // weights, so nothing reads it again. Kept out of the distance array
  // on purpose: the search's stalls are scattered *loads* of tentative
  // distances (stall scan, meet check, relaxation), so those pack eight
  // to a cache line by themselves, while this record is only stored to
  // on the reach/push path — stores retire through the store buffer
  // without stalling the search.
  struct NodeAux {
    uint32_t parent_arc;  // arc that reached it; kOriginalArc at roots
    uint32_t heap_pos;    // slot in SearchSide::heap while queued
  };

  // An entry of the frontier heap: the key plus the rank it belongs to.
  struct HeapEntry {
    Distance key;
    uint32_t rank;
  };

  // One direction of the bidirectional upward search, in rank space.
  // There is no generation stamp: unreached is encoded as
  // dist == kInfDistance, and each search starts by resetting exactly
  // the entries the previous one touched (`touched`), whose lines are
  // still warm. Only `dist` needs resetting — `aux` is always written at
  // first reach before anything reads it. The frontier heap is a 4-ary
  // indexed min-heap stored inline: entries live in the flat `heap`
  // vector and each queued vertex's position lives in its NodeAux, so
  // decrease-key never consults a separate generation-checked position
  // array.
  struct SearchSide {
    std::vector<HeapEntry> heap;
    std::vector<Distance> dist;
    std::vector<NodeAux> aux;
    // Ranks whose dist was written this search, in first-reach order;
    // Reset() restores exactly these entries to kInfDistance.
    std::vector<uint32_t> touched;
    // Per-settle scratch: arc indices buffered by the fused
    // stall-and-relax scan, committed only if the vertex is not stalled.
    std::vector<uint32_t> relax_buf;

    explicit SearchSide(uint32_t n) : dist(n, kInfDistance), aux(n) {}

    // Prepares the side for a new search. The touched entries' lines are
    // still cached from the search that wrote them, so this is far
    // cheaper than the O(n) clear it replaces conceptually.
    void Reset() {
      for (uint32_t r : touched) {
        dist[r] = kInfDistance;
      }
      touched.clear();
      heap.clear();
    }

    bool HeapEmpty() const { return heap.empty(); }
    Distance MinKey() const { return heap.front().key; }
    uint32_t MinRank() const { return heap.front().rank; }

    void HeapPush(uint32_t rank, Distance key) {
      heap.push_back(HeapEntry{key, rank});
      SiftUp(static_cast<uint32_t>(heap.size() - 1), HeapEntry{key, rank});
    }

    void HeapDecrease(uint32_t rank, Distance key) {
      SiftUp(aux[rank].heap_pos, HeapEntry{key, rank});
    }

    // Returns the popped entry: the key is the vertex's final distance
    // (kept in sync by decrease-key), so the caller never has to load
    // dist[rank] — one scattered read fewer per settle. The popped
    // vertex's heap_pos is left stale on purpose: with non-negative
    // weights a settled distance is final, so no relaxation ever
    // consults it again, and clearing it would cost a scattered store
    // per settle.
    HeapEntry HeapPopMin() {
      const HeapEntry top = heap.front();
      const HeapEntry last = heap.back();
      heap.pop_back();
      if (!heap.empty()) SiftDown(last);
      return top;
    }

   private:
    static constexpr uint32_t kArity = 4;

    void SiftUp(uint32_t pos, HeapEntry e) {
      while (pos > 0) {
        const uint32_t parent = (pos - 1) / kArity;
        if (heap[parent].key <= e.key) break;
        heap[pos] = heap[parent];
        aux[heap[pos].rank].heap_pos = pos;
        pos = parent;
      }
      heap[pos] = e;
      aux[e.rank].heap_pos = pos;
    }

    void SiftDown(HeapEntry e) {
      const uint32_t n = static_cast<uint32_t>(heap.size());
      uint32_t pos = 0;
      while (true) {
        const uint32_t first_child = pos * kArity + 1;
        if (first_child >= n) break;
        const uint32_t last_child =
            first_child + kArity < n ? first_child + kArity : n;
        uint32_t best = first_child;
        for (uint32_t c = first_child + 1; c < last_child; ++c) {
          if (heap[c].key < heap[best].key) best = c;
        }
        if (heap[best].key >= e.key) break;
        heap[pos] = heap[best];
        aux[heap[pos].rank].heap_pos = pos;
        pos = best;
      }
      heap[pos] = e;
      aux[e.rank].heap_pos = pos;
    }
  };

  struct Context : QueryContext {
    explicit Context(uint32_t n) : forward(n), backward(n) {}

    SearchSide forward;
    SearchSide backward;
  };

  std::span<const HotArc> Arcs(uint32_t r) const {
    return {arcs_.data() + up_offsets_[r], up_offsets_[r + 1] - up_offsets_[r]};
  }

  // Builds the rank-space arrays from a contraction run.
  void BuildFrom(ContractionResult result);

  // Index of the arc src -> target (both ranks, src < target), or
  // kOriginalArc if absent. Build-time only: queries never search.
  uint32_t FindArcIndex(uint32_t src, uint32_t target) const;

  // Source rank of an arc, read from the cold records: an original edge
  // stores it directly, a shortcut's lo half targets it. O(1), no search.
  uint32_t ArcSource(uint32_t arc) const {
    const ArcUnpack& u = unpack_[arc];
    return u.lo == kOriginalArc ? u.hi : arcs_[u.lo].target;
  }

  // Runs the bidirectional upward search between ranks s and t; returns
  // the best meeting rank (kInvalidVertex if unreachable) and its
  // distance in *out_dist.
  uint32_t Search(Context* ctx, uint32_t s, uint32_t t,
                  Distance* out_dist) const;

  // Appends the original-graph expansion of the arc to *out as external
  // ids, excluding the entry endpoint. `down` selects the traversal
  // direction: false walks source -> target (the forward tree), true
  // target -> source (the backward tree). Pure array walking over the
  // precomputed child arc indices; no edge lookups.
  void EmitArc(uint32_t arc, bool down, Path* out,
               QueryCounters* counters) const;

  // Deserialization constructor: arrays filled by the factory.
  struct DeserializeTag {};
  ChIndex(const Graph& g, DeserializeTag);

  const Graph& graph_;
  bool stall_on_demand_ = true;
  std::vector<uint32_t> rank_;   // external id -> rank
  std::vector<VertexId> order_;  // rank -> external id
  std::vector<uint32_t> up_offsets_;
  std::vector<HotArc> arcs_;
  std::vector<ArcUnpack> unpack_;
  size_t num_shortcuts_ = 0;
};

}  // namespace roadnet

#endif  // ROADNET_CH_CH_INDEX_H_
