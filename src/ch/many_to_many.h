#ifndef ROADNET_CH_MANY_TO_MANY_H_
#define ROADNET_CH_MANY_TO_MANY_H_

#include <memory>
#include <utility>
#include <vector>

#include "ch/ch_index.h"
#include "graph/types.h"

namespace roadnet {

// Many-to-many distances via CH search spaces and bucket joins (Knopp et
// al.'s algorithm). Every target's upward search space is scanned once
// into per-vertex buckets; each source's upward search space then joins
// against the buckets. This is how the corrected TNR preprocessing
// computes its access-node distance tables efficiently (Appendix B remedy:
// CH is built first to cut the cost of access-node computation).
//
// The engine owns one QueryContext and one search-space scratch vector,
// so the thousands of upward searches a TNR bucket build issues are
// allocation-free and never touch the index's default context.
class ManyToManyEngine {
 public:
  ManyToManyEngine(const ChIndex* ch, std::vector<VertexId> targets);

  size_t NumTargets() const { return targets_.size(); }

  // Fills (*row)[j] = dist(source, targets[j]); kInfDistance when
  // unreachable. The row is resized as needed.
  void ComputeRow(VertexId source, std::vector<Distance>* row);

 private:
  struct BucketEntry {
    uint32_t target_index;
    Distance dist;
  };

  const ChIndex* ch_;
  std::vector<VertexId> targets_;
  std::unique_ptr<QueryContext> ctx_;
  std::vector<std::pair<VertexId, Distance>> space_;
  std::vector<std::vector<BucketEntry>> buckets_;
};

// Convenience wrapper: full row-major matrix
// result[i * targets.size() + j] = dist(sources[i], targets[j]).
std::vector<Distance> ManyToManyDistances(
    const ChIndex* ch, const std::vector<VertexId>& sources,
    const std::vector<VertexId>& targets);

}  // namespace roadnet

#endif  // ROADNET_CH_MANY_TO_MANY_H_
