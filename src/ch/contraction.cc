#include "ch/contraction.h"

#include <algorithm>
#include <cassert>

#include "pq/indexed_heap.h"
#include "util/rng.h"

namespace roadnet {

namespace {

// Arc of the dynamic overlay graph maintained during contraction.
struct OverlayArc {
  VertexId to;
  Weight weight;
  VertexId middle;  // kInvalidVertex for original edges
};

// The overlay: the not-yet-contracted part of the road network plus the
// shortcuts added so far. Keeps at most one arc per vertex pair (minimum
// weight wins), which matches the semantics of dist() the shortcut weights
// encode.
class Overlay {
 public:
  explicit Overlay(const Graph& g) : adj_(g.NumVertices()) {
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      adj_[v].reserve(g.Degree(v));
      for (const Arc& a : g.Neighbors(v)) {
        adj_[v].push_back(OverlayArc{a.to, a.weight, kInvalidVertex});
      }
    }
  }

  const std::vector<OverlayArc>& Neighbors(VertexId v) const {
    return adj_[v];
  }

  // Inserts the arc pair (u, v) with the given weight/middle, or lowers an
  // existing arc's weight. Returns true if the overlay changed.
  bool AddOrImprove(VertexId u, VertexId v, Weight w, VertexId middle) {
    OverlayArc* existing = Find(u, v);
    if (existing != nullptr) {
      if (existing->weight <= w) return false;
      existing->weight = w;
      existing->middle = middle;
      OverlayArc* reverse = Find(v, u);
      reverse->weight = w;
      reverse->middle = middle;
      return true;
    }
    adj_[u].push_back(OverlayArc{v, w, middle});
    adj_[v].push_back(OverlayArc{u, w, middle});
    return true;
  }

  // Removes v and all its incident arcs.
  void RemoveVertex(VertexId v) {
    for (const OverlayArc& a : adj_[v]) {
      std::vector<OverlayArc>& list = adj_[a.to];
      list.erase(std::remove_if(list.begin(), list.end(),
                                [v](const OverlayArc& b) { return b.to == v; }),
                 list.end());
    }
    adj_[v].clear();
    adj_[v].shrink_to_fit();
  }

 private:
  OverlayArc* Find(VertexId u, VertexId v) {
    for (OverlayArc& a : adj_[u]) {
      if (a.to == v) return &a;
    }
    return nullptr;
  }

  std::vector<std::vector<OverlayArc>> adj_;
};

// Bounded local Dijkstra over the overlay that skips one vertex; used to
// find witness paths certifying that a shortcut is unnecessary. Truncation
// (settle limit) errs on the side of adding redundant shortcuts, never on
// incorrectness.
class WitnessSearch {
 public:
  explicit WitnessSearch(uint32_t n)
      : heap_(n), dist_(n, 0), reached_(n, 0) {}

  // Runs from `source` in overlay \ {skip}, never expanding vertices whose
  // distance exceeds `bound`, settling at most `settle_limit` vertices.
  void Run(const Overlay& overlay, VertexId source, VertexId skip,
           Distance bound, uint32_t settle_limit) {
    ++generation_;
    heap_.Clear();
    dist_[source] = 0;
    reached_[source] = generation_;
    heap_.Push(source, 0);
    uint32_t settled = 0;
    while (!heap_.Empty() && settled < settle_limit) {
      if (heap_.MinKey() > bound) break;
      VertexId u = heap_.PopMin();
      ++settled;
      const Distance du = dist_[u];
      for (const OverlayArc& a : overlay.Neighbors(u)) {
        if (a.to == skip) continue;
        const Distance cand = du + a.weight;
        if (cand > bound) continue;
        if (reached_[a.to] != generation_) {
          reached_[a.to] = generation_;
          dist_[a.to] = cand;
          heap_.Push(a.to, cand);
        } else if (heap_.Contains(a.to) && cand < dist_[a.to]) {
          dist_[a.to] = cand;
          heap_.DecreaseKey(a.to, cand);
        }
      }
    }
  }

  // Best distance found for v by the last Run (kInfDistance if unreached).
  Distance DistanceTo(VertexId v) const {
    return reached_[v] == generation_ ? dist_[v] : kInfDistance;
  }

 private:
  IndexedHeap<Distance> heap_;
  std::vector<Distance> dist_;
  std::vector<uint32_t> reached_;
  uint32_t generation_ = 0;
};

// A shortcut the contraction of one vertex would create.
struct PlannedShortcut {
  VertexId u;
  VertexId v;
  Weight weight;
};

class Contractor {
 public:
  Contractor(const Graph& g, const ChConfig& config)
      : graph_(g),
        config_(config),
        overlay_(g),
        witness_(g.NumVertices()),
        deleted_neighbours_(g.NumVertices(), 0),
        random_priority_(g.NumVertices(), 0),
        queue_(g.NumVertices()) {
    if (config_.heuristic == OrderingHeuristic::kRandom) {
      Rng rng(config_.seed);
      for (auto& p : random_priority_) {
        p = static_cast<int64_t>(rng.NextBelow(1u << 30));
      }
    }
  }

  ContractionResult Run() {
    const uint32_t n = graph_.NumVertices();
    ContractionResult result;
    result.rank.assign(n, 0);
    for (VertexId v = 0; v < n; ++v) {
      for (const Arc& a : graph_.Neighbors(v)) {
        if (v < a.to) {
          result.edges.push_back(TaggedEdge{v, a.to, a.weight, kInvalidVertex});
        }
      }
    }

    // Initial priorities.
    std::vector<PlannedShortcut> scratch;
    for (VertexId v = 0; v < n; ++v) {
      queue_.Push(v, Priority(v, &scratch));
    }

    uint32_t next_rank = 0;
    while (!queue_.Empty()) {
      VertexId v = queue_.PopMin();
      // Lazy re-evaluation: contraction of other vertices may have changed
      // v's priority; contract only if v is still (weakly) minimal.
      int64_t p = Priority(v, &scratch);
      if (!queue_.Empty() && p > queue_.MinKey()) {
        queue_.Push(v, p);
        continue;
      }
      // Contract v: `scratch` holds the shortcuts Priority() just planned.
      for (const PlannedShortcut& sc : scratch) {
        overlay_.AddOrImprove(sc.u, sc.v, sc.weight, v);
        result.edges.push_back(TaggedEdge{sc.u, sc.v, sc.weight, v});
        ++result.num_shortcuts;
      }
      // Bump the deleted-neighbour term of surviving neighbours.
      for (const OverlayArc& a : overlay_.Neighbors(v)) {
        ++deleted_neighbours_[a.to];
      }
      overlay_.RemoveVertex(v);
      result.rank[v] = next_rank++;
    }

    DeduplicateEdges(&result);
    return result;
  }

 private:
  // Computes v's current priority; fills *shortcuts with the shortcuts its
  // contraction would create right now.
  int64_t Priority(VertexId v, std::vector<PlannedShortcut>* shortcuts) {
    shortcuts->clear();
    const std::vector<OverlayArc>& neighbors = overlay_.Neighbors(v);

    // For each neighbour u, one witness search decides all pairs (u, w).
    for (size_t i = 0; i < neighbors.size(); ++i) {
      const OverlayArc& nu = neighbors[i];
      Distance bound = 0;
      for (size_t j = 0; j < neighbors.size(); ++j) {
        if (j == i) continue;
        bound = std::max(bound, static_cast<Distance>(nu.weight) +
                                    neighbors[j].weight);
      }
      if (neighbors.size() > 1) {
        witness_.Run(overlay_, nu.to, v, bound,
                     config_.witness_settle_limit);
      }
      for (size_t j = i + 1; j < neighbors.size(); ++j) {
        const OverlayArc& nw = neighbors[j];
        const Distance via =
            static_cast<Distance>(nu.weight) + nw.weight;
        if (witness_.DistanceTo(nw.to) > via) {
          shortcuts->push_back(PlannedShortcut{
              nu.to, nw.to, static_cast<Weight>(via)});
        }
      }
    }

    if (config_.heuristic == OrderingHeuristic::kRandom) {
      return random_priority_[v];
    }
    PriorityTerms terms;
    terms.edge_difference = static_cast<int32_t>(shortcuts->size()) -
                            static_cast<int32_t>(neighbors.size());
    terms.deleted_neighbours =
        static_cast<int32_t>(deleted_neighbours_[v]);
    terms.degree = static_cast<int32_t>(neighbors.size());
    return CombinePriority(config_.heuristic, terms);
  }

  // Collapses duplicate (u, v) records, keeping the minimum weight (the
  // only one a query can use, hence the only one unpacking needs).
  static void DeduplicateEdges(ContractionResult* result) {
    for (TaggedEdge& e : result->edges) {
      if (e.u > e.v) std::swap(e.u, e.v);
    }
    std::sort(result->edges.begin(), result->edges.end(),
              [](const TaggedEdge& a, const TaggedEdge& b) {
                if (a.u != b.u) return a.u < b.u;
                if (a.v != b.v) return a.v < b.v;
                return a.weight < b.weight;
              });
    result->edges.erase(
        std::unique(result->edges.begin(), result->edges.end(),
                    [](const TaggedEdge& a, const TaggedEdge& b) {
                      return a.u == b.u && a.v == b.v;
                    }),
        result->edges.end());
  }

  const Graph& graph_;
  const ChConfig config_;
  Overlay overlay_;
  WitnessSearch witness_;
  std::vector<uint32_t> deleted_neighbours_;
  std::vector<int64_t> random_priority_;
  IndexedHeap<int64_t> queue_;
};

}  // namespace

ContractionResult ContractGraph(const Graph& g, const ChConfig& config) {
  return Contractor(g, config).Run();
}

}  // namespace roadnet
