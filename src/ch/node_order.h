#ifndef ROADNET_CH_NODE_ORDER_H_
#define ROADNET_CH_NODE_ORDER_H_

#include <cstdint>

namespace roadnet {

// Heuristic used to derive the total order on vertices (Section 3.2: "an
// inferior ordering can lead to O(n^2) shortcuts ... existing work has
// suggested several heuristic approaches"). The default mirrors the
// classic Geisberger et al. priority: edge difference plus a term for
// already-contracted neighbours (keeping contraction spatially uniform).
// The alternatives exist for the ordering ablation bench.
enum class OrderingHeuristic {
  // 2*edge_difference + deleted_neighbours (default, best).
  kEdgeDifferenceDeleted,
  // edge difference only.
  kEdgeDifference,
  // static vertex degree (cheap, poor).
  kDegree,
  // uniform random order (the paper's "inferior ordering" worst case).
  kRandom,
};

// Tuning knobs of the CH preprocessing step.
struct ChConfig {
  OrderingHeuristic heuristic = OrderingHeuristic::kEdgeDifferenceDeleted;

  // Witness searches stop after settling this many vertices. Truncation is
  // safe: it can only add redundant (never incorrect) shortcuts.
  uint32_t witness_settle_limit = 500;

  // Enables the stall-on-demand query pruning (Section 3.2). A build-time
  // option rather than a mutable setter so a constructed index stays
  // immutable and thread-safe; benches that ablate it build two indexes.
  bool stall_on_demand = true;

  // Seed for kRandom ordering.
  uint64_t seed = 1;
};

// Terms from which ordering priorities are computed for one candidate
// contraction.
struct PriorityTerms {
  // shortcuts that contraction would add minus incident edges removed.
  int32_t edge_difference = 0;
  // neighbours already contracted.
  int32_t deleted_neighbours = 0;
  // current degree in the overlay.
  int32_t degree = 0;
};

// Combines the terms under the chosen heuristic (higher = contract later).
// kRandom is handled by the contractor itself (priorities are drawn once).
int64_t CombinePriority(OrderingHeuristic heuristic,
                        const PriorityTerms& terms);

}  // namespace roadnet

#endif  // ROADNET_CH_NODE_ORDER_H_
