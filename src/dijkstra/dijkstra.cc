#include "dijkstra/dijkstra.h"

#include <algorithm>

namespace roadnet {

Dijkstra::Dijkstra(const Graph& g)
    : graph_(g),
      heap_(g.NumVertices()),
      dist_(g.NumVertices(), 0),
      parent_(g.NumVertices(), kInvalidVertex),
      first_hop_(g.NumVertices(), kInvalidVertex),
      reached_(g.NumVertices(), 0),
      settled_(g.NumVertices(), 0) {}

void Dijkstra::Start(VertexId s) {
  ++generation_;
  heap_.Clear();
  counters_.Reset();
  source_ = s;
  dist_[s] = 0;
  parent_[s] = kInvalidVertex;
  first_hop_[s] = kInvalidVertex;
  reached_[s] = generation_;
  heap_.Push(s, 0);
  counters_.HeapPush();
}

VertexId Dijkstra::SettleNext(bool track_first_hop) {
  VertexId u = heap_.PopMin();
  counters_.HeapPop();
  settled_[u] = generation_;
  counters_.Settle();
  const Distance du = dist_[u];
  for (const Arc& a : graph_.Neighbors(u)) {
    counters_.RelaxEdge();
    const Distance cand = du + a.weight;
    if (reached_[a.to] != generation_) {
      reached_[a.to] = generation_;
      dist_[a.to] = cand;
      parent_[a.to] = u;
      if (track_first_hop) first_hop_[a.to] = (u == source_) ? a.to : first_hop_[u];
      heap_.Push(a.to, cand);
      counters_.HeapPush();
    } else if (cand < dist_[a.to] && settled_[a.to] != generation_) {
      dist_[a.to] = cand;
      parent_[a.to] = u;
      if (track_first_hop) first_hop_[a.to] = (u == source_) ? a.to : first_hop_[u];
      heap_.DecreaseKey(a.to, cand);
      counters_.HeapPush();
    }
  }
  return u;
}

Distance Dijkstra::Run(VertexId s, VertexId t) {
  Start(s);
  while (!heap_.Empty()) {
    if (SettleNext(/*track_first_hop=*/false) == t) return dist_[t];
  }
  return kInfDistance;
}

void Dijkstra::RunAll(VertexId s) {
  Start(s);
  while (!heap_.Empty()) SettleNext(/*track_first_hop=*/false);
}

void Dijkstra::RunAllWithFirstHop(VertexId s) {
  Start(s);
  while (!heap_.Empty()) SettleNext(/*track_first_hop=*/true);
}

void Dijkstra::RunUntilSettled(VertexId s,
                               const std::vector<VertexId>& targets,
                               size_t stop_after) {
  Start(s);
  if (target_mark_.size() < graph_.NumVertices()) {
    target_mark_.assign(graph_.NumVertices(), 0);
  }
  ++target_generation_;
  size_t distinct = 0;
  for (VertexId t : targets) {
    if (target_mark_[t] != target_generation_) {
      target_mark_[t] = target_generation_;
      ++distinct;
    }
  }
  size_t remaining = std::min(distinct, stop_after);
  while (!heap_.Empty() && remaining > 0) {
    VertexId u = SettleNext(/*track_first_hop=*/false);
    if (target_mark_[u] == target_generation_) {
      target_mark_[u] = target_generation_ - 1;  // count each target once
      --remaining;
    }
  }
}

Path Dijkstra::PathTo(VertexId v) const {
  if (!Reached(v)) return {};
  Path path;
  for (VertexId cur = v; cur != kInvalidVertex; cur = parent_[cur]) {
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace roadnet
