#include "dijkstra/bidirectional.h"

#include <algorithm>

namespace roadnet {

BidirectionalDijkstra::BidirectionalDijkstra(const Graph& g) : graph_(g) {}

std::unique_ptr<QueryContext> BidirectionalDijkstra::NewContext() const {
  return std::make_unique<Context>(graph_.NumVertices());
}

void BidirectionalDijkstra::SettleOne(Context* ctx, Side* side,
                                      const Side& other, VertexId* best_meet,
                                      Distance* best_dist) const {
  VertexId u = side->heap.PopMin();
  ctx->counters.HeapPop();
  side->settled[u] = ctx->generation;
  ctx->counters.Settle();
  const Distance du = side->dist[u];
  for (const Arc& a : graph_.Neighbors(u)) {
    ctx->counters.RelaxEdge();
    const Distance cand = du + a.weight;
    bool improved = false;
    if (!side->Reached(a.to, ctx->generation)) {
      side->reached[a.to] = ctx->generation;
      side->dist[a.to] = cand;
      side->parent[a.to] = u;
      side->heap.Push(a.to, cand);
      ctx->counters.HeapPush();
      improved = true;
    } else if (cand < side->dist[a.to] &&
               side->settled[a.to] != ctx->generation) {
      side->dist[a.to] = cand;
      side->parent[a.to] = u;
      side->heap.DecreaseKey(a.to, cand);
      ctx->counters.HeapPush();
      improved = true;
    }
    // Any vertex reached by both searches is a candidate meeting point;
    // checking on every improvement covers both the "meet at a vertex" and
    // the "cross an edge between the two settled sets" cases from the
    // paper's correctness argument.
    if (improved && other.Reached(a.to, ctx->generation)) {
      const Distance total = cand + other.dist[a.to];
      if (total < *best_dist) {
        *best_dist = total;
        *best_meet = a.to;
      }
    }
  }
}

VertexId BidirectionalDijkstra::Search(Context* ctx, VertexId s, VertexId t,
                                       Distance* out_dist) const {
  ++ctx->generation;
  ctx->counters.Reset();
  Side& forward = ctx->forward;
  Side& backward = ctx->backward;
  forward.heap.Clear();
  backward.heap.Clear();

  forward.dist[s] = 0;
  forward.parent[s] = kInvalidVertex;
  forward.reached[s] = ctx->generation;
  forward.heap.Push(s, 0);

  backward.dist[t] = 0;
  backward.parent[t] = kInvalidVertex;
  backward.reached[t] = ctx->generation;
  backward.heap.Push(t, 0);
  ctx->counters.HeapPush(2);

  Distance best_dist = kInfDistance;
  VertexId best_meet = kInvalidVertex;
  if (s == t) {
    *out_dist = 0;
    return s;
  }

  while (!forward.heap.Empty() && !backward.heap.Empty()) {
    // Termination: once the two frontier minima together cannot beat the
    // best meeting point, no unexplored vertex can improve the answer.
    if (best_dist != kInfDistance &&
        forward.heap.MinKey() + backward.heap.MinKey() >= best_dist) {
      break;
    }
    // Balance the searches by expanding the smaller frontier key.
    if (forward.heap.MinKey() <= backward.heap.MinKey()) {
      SettleOne(ctx, &forward, backward, &best_meet, &best_dist);
    } else {
      SettleOne(ctx, &backward, forward, &best_meet, &best_dist);
    }
  }
  *out_dist = best_dist;
  return best_meet;
}

Distance BidirectionalDijkstra::DistanceQuery(QueryContext* ctx, VertexId s,
                                              VertexId t) const {
  Distance d = kInfDistance;
  Search(static_cast<Context*>(ctx), s, t, &d);
  return d;
}

Path BidirectionalDijkstra::PathQuery(QueryContext* raw_ctx, VertexId s,
                                      VertexId t) const {
  Context* ctx = static_cast<Context*>(raw_ctx);
  Distance d = kInfDistance;
  VertexId meet = Search(ctx, s, t, &d);
  if (meet == kInvalidVertex) return {};

  // Forward half: meet back to s, reversed.
  Path path;
  for (VertexId cur = meet; cur != kInvalidVertex;
       cur = ctx->forward.parent[cur]) {
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  // Backward half: parents of the t-rooted tree lead from meet toward t.
  for (VertexId cur = ctx->backward.parent[meet]; cur != kInvalidVertex;
       cur = ctx->backward.parent[cur]) {
    path.push_back(cur);
  }
  return path;
}

}  // namespace roadnet
