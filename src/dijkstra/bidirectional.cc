#include "dijkstra/bidirectional.h"

#include <algorithm>

namespace roadnet {

BidirectionalDijkstra::BidirectionalDijkstra(const Graph& g)
    : graph_(g), forward_(g.NumVertices()), backward_(g.NumVertices()) {}

void BidirectionalDijkstra::SettleOne(Side* side, const Side& other,
                                      VertexId* best_meet,
                                      Distance* best_dist) {
  VertexId u = side->heap.PopMin();
  side->settled[u] = generation_;
  ++settled_count_;
  const Distance du = side->dist[u];
  for (const Arc& a : graph_.Neighbors(u)) {
    const Distance cand = du + a.weight;
    bool improved = false;
    if (!side->Reached(a.to, generation_)) {
      side->reached[a.to] = generation_;
      side->dist[a.to] = cand;
      side->parent[a.to] = u;
      side->heap.Push(a.to, cand);
      improved = true;
    } else if (cand < side->dist[a.to] &&
               side->settled[a.to] != generation_) {
      side->dist[a.to] = cand;
      side->parent[a.to] = u;
      side->heap.DecreaseKey(a.to, cand);
      improved = true;
    }
    // Any vertex reached by both searches is a candidate meeting point;
    // checking on every improvement covers both the "meet at a vertex" and
    // the "cross an edge between the two settled sets" cases from the
    // paper's correctness argument.
    if (improved && other.Reached(a.to, generation_)) {
      const Distance total = cand + other.dist[a.to];
      if (total < *best_dist) {
        *best_dist = total;
        *best_meet = a.to;
      }
    }
  }
}

VertexId BidirectionalDijkstra::Search(VertexId s, VertexId t,
                                       Distance* out_dist) {
  ++generation_;
  settled_count_ = 0;
  forward_.heap.Clear();
  backward_.heap.Clear();

  forward_.dist[s] = 0;
  forward_.parent[s] = kInvalidVertex;
  forward_.reached[s] = generation_;
  forward_.heap.Push(s, 0);

  backward_.dist[t] = 0;
  backward_.parent[t] = kInvalidVertex;
  backward_.reached[t] = generation_;
  backward_.heap.Push(t, 0);

  Distance best_dist = kInfDistance;
  VertexId best_meet = kInvalidVertex;
  if (s == t) {
    *out_dist = 0;
    return s;
  }

  while (!forward_.heap.Empty() && !backward_.heap.Empty()) {
    // Termination: once the two frontier minima together cannot beat the
    // best meeting point, no unexplored vertex can improve the answer.
    if (best_dist != kInfDistance &&
        forward_.heap.MinKey() + backward_.heap.MinKey() >= best_dist) {
      break;
    }
    // Balance the searches by expanding the smaller frontier key.
    if (forward_.heap.MinKey() <= backward_.heap.MinKey()) {
      SettleOne(&forward_, backward_, &best_meet, &best_dist);
    } else {
      SettleOne(&backward_, forward_, &best_meet, &best_dist);
    }
  }
  *out_dist = best_dist;
  return best_meet;
}

Distance BidirectionalDijkstra::DistanceQuery(VertexId s, VertexId t) {
  Distance d = kInfDistance;
  Search(s, t, &d);
  return d;
}

Path BidirectionalDijkstra::PathQuery(VertexId s, VertexId t) {
  Distance d = kInfDistance;
  VertexId meet = Search(s, t, &d);
  if (meet == kInvalidVertex) return {};

  // Forward half: meet back to s, reversed.
  Path path;
  for (VertexId cur = meet; cur != kInvalidVertex;
       cur = forward_.parent[cur]) {
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  // Backward half: parents of the t-rooted tree lead from meet toward t.
  for (VertexId cur = backward_.parent[meet]; cur != kInvalidVertex;
       cur = backward_.parent[cur]) {
    path.push_back(cur);
  }
  return path;
}

}  // namespace roadnet
