#ifndef ROADNET_DIJKSTRA_DIJKSTRA_H_
#define ROADNET_DIJKSTRA_DIJKSTRA_H_

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "obs/query_counters.h"
#include "pq/indexed_heap.h"
#include "routing/path.h"

namespace roadnet {

// Reusable unidirectional Dijkstra engine (Dijkstra 1959, the paper's
// classic solution). One instance owns scratch arrays sized by the graph,
// amortized across queries via generation counters, so each run allocates
// nothing. Besides the one-to-one query it exposes the restricted modes
// the preprocessing steps of CH, TNR, SILC, and PCPD need: full SSSP,
// run-until-targets-settled, and first-hop tracking.
class Dijkstra {
 public:
  explicit Dijkstra(const Graph& g);

  // One-to-one: distance from s to t (kInfDistance if unreachable),
  // stopping as soon as t is settled.
  Distance Run(VertexId s, VertexId t);

  // Full single-source search settling every reachable vertex.
  void RunAll(VertexId s);

  // Like RunAll, but additionally records the first hop (the neighbour of
  // s that begins the shortest path) of every settled vertex, which is the
  // per-source colouring SILC compresses (Section 3.4).
  void RunAllWithFirstHop(VertexId s);

  // Runs from s until `stop_after` distinct vertices of `targets` are
  // settled (default: all of them), or the graph is exhausted. Used by
  // TNR access-node computation and the kNN utilities.
  void RunUntilSettled(VertexId s, const std::vector<VertexId>& targets,
                       size_t stop_after = SIZE_MAX);

  // --- Results of the most recent run ---

  // Tentative or settled distance of v (kInfDistance if never reached).
  Distance DistanceTo(VertexId v) const {
    return Reached(v) ? dist_[v] : kInfDistance;
  }

  bool Settled(VertexId v) const {
    return Reached(v) && settled_[v] == generation_;
  }

  // Predecessor of v on the shortest-path tree (kInvalidVertex for the
  // source or unreached vertices).
  VertexId ParentOf(VertexId v) const {
    return Reached(v) ? parent_[v] : kInvalidVertex;
  }

  // First hop from the source toward v; requires RunAllWithFirstHop.
  // Returns v == source ? kInvalidVertex : the neighbour of the source.
  VertexId FirstHopOf(VertexId v) const {
    return Reached(v) ? first_hop_[v] : kInvalidVertex;
  }

  // Reconstructs the path source..v from the parent tree (empty if
  // unreached).
  Path PathTo(VertexId v) const;

  // Number of vertices settled by the most recent run (the paper's
  // intuition for why bidirectional search wins).
  size_t SettledCount() const { return counters_.vertices_settled; }

  // Full operation counts of the most recent run.
  const QueryCounters& Counters() const { return counters_; }

 private:
  bool Reached(VertexId v) const { return reached_[v] == generation_; }

  void Start(VertexId s);
  // Settles the minimum vertex and relaxes its arcs. Returns the vertex.
  VertexId SettleNext(bool track_first_hop);

  const Graph& graph_;
  IndexedHeap<Distance> heap_;
  std::vector<Distance> dist_;
  std::vector<VertexId> parent_;
  std::vector<VertexId> first_hop_;
  std::vector<uint32_t> reached_;
  std::vector<uint32_t> settled_;
  std::vector<uint32_t> target_mark_;
  uint32_t generation_ = 0;
  uint32_t target_generation_ = 0;
  QueryCounters counters_;
  VertexId source_ = kInvalidVertex;
};

}  // namespace roadnet

#endif  // ROADNET_DIJKSTRA_DIJKSTRA_H_
