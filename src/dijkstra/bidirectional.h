#ifndef ROADNET_DIJKSTRA_BIDIRECTIONAL_H_
#define ROADNET_DIJKSTRA_BIDIRECTIONAL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "pq/indexed_heap.h"
#include "routing/path.h"
#include "routing/path_index.h"

namespace roadnet {

// Bidirectional Dijkstra (Pohl 1971), the paper's baseline (Section 3.1).
// Two simultaneous Dijkstra instances grow shortest-path trees from s and
// from t; the searches stop once the sum of the two frontier minima proves
// no better meeting point exists, and the answer is the best
// dist(s, u) + dist(u, t) seen over all doubly-reached vertices u.
//
// Implements PathIndex with zero preprocessing and zero index space; all
// search state lives in the QueryContext, so one instance serves any
// number of threads.
class BidirectionalDijkstra : public PathIndex {
 public:
  explicit BidirectionalDijkstra(const Graph& g);

  std::string Name() const override { return "Dijkstra"; }
  std::unique_ptr<QueryContext> NewContext() const override;
  Distance DistanceQuery(QueryContext* ctx, VertexId s,
                         VertexId t) const override;
  Path PathQuery(QueryContext* ctx, VertexId s, VertexId t) const override;
  using PathIndex::DistanceQuery;
  using PathIndex::PathQuery;
  size_t IndexBytes() const override { return 0; }

  // Vertices settled by both searches in the most recent default-context
  // query; the cost measure behind the paper's efficiency discussion.
  size_t SettledCount() const {
    return ContextCounters().vertices_settled;
  }

 private:
  // One of the two search directions; 0 = forward from s, 1 = backward
  // from t (identical on an undirected graph, kept separate for clarity).
  struct Side {
    IndexedHeap<Distance> heap;
    std::vector<Distance> dist;
    std::vector<VertexId> parent;
    std::vector<uint32_t> reached;
    std::vector<uint32_t> settled;

    explicit Side(uint32_t n)
        : heap(n), dist(n, 0), parent(n, kInvalidVertex), reached(n, 0),
          settled(n, 0) {}

    bool Reached(VertexId v, uint32_t gen) const {
      return reached[v] == gen;
    }
  };

  struct Context : QueryContext {
    explicit Context(uint32_t n) : forward(n), backward(n) {}

    Side forward;
    Side backward;
    uint32_t generation = 0;
  };

  // Runs the full bidirectional search; returns the meeting vertex with
  // the minimal combined distance (kInvalidVertex if unreachable) and the
  // distance in *out_dist.
  VertexId Search(Context* ctx, VertexId s, VertexId t,
                  Distance* out_dist) const;

  // Settles the minimum of `side`, relaxing edges; updates the best
  // meeting vertex seen so far.
  void SettleOne(Context* ctx, Side* side, const Side& other,
                 VertexId* best_meet, Distance* best_dist) const;

  const Graph& graph_;
};

}  // namespace roadnet

#endif  // ROADNET_DIJKSTRA_BIDIRECTIONAL_H_
