#ifndef ROADNET_REACH_REACH_INDEX_H_
#define ROADNET_REACH_REACH_INDEX_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "pq/indexed_heap.h"
#include "routing/path_index.h"

namespace roadnet {

// RE / reach-based pruning (Goldberg, Kaplan, Werneck 2006) — the third
// technique of the paper's Appendix A. The reach of a vertex v is
//   reach(v) = max over shortest paths P(s, t) containing v of
//              min(dist(s, v), dist(v, t)),
// i.e. how deep inside long shortest paths v can sit. Appendix A: "given
// any two vertices s and t, if the reach of v is smaller than both
// dist(s, v) and dist(v, t), then v cannot be on the shortest path from s
// to t" — which plugs straight into bidirectional Dijkstra as a pruning
// rule.
//
// Preprocessing here computes EXACT reaches with one SSSP per source: for
// a fixed source s, every vertex's contribution is min(dist(s, v),
// height(v)), where height(v) is the longest tight-edge continuation
// below v in the shortest-path DAG (not just the tree, so tied shortest
// paths are covered and pruning never cuts an optimal route). O(n * m)
// overall — practical for the datasets the Appendix A bench uses, and
// exactly the semantics the inexact upper-bound schemes approximate.
class ReachIndex : public PathIndex {
 public:
  explicit ReachIndex(const Graph& g);

  std::string Name() const override { return "RE"; }
  Distance DistanceQuery(VertexId s, VertexId t) override;
  Path PathQuery(VertexId s, VertexId t) override;
  size_t IndexBytes() const override;

  Distance ReachOf(VertexId v) const { return reach_[v]; }

  size_t SettledCount() const { return settled_count_; }

 private:
  struct Side {
    IndexedHeap<Distance> heap;
    std::vector<Distance> dist;
    std::vector<VertexId> parent;
    std::vector<uint32_t> reached;
    std::vector<uint32_t> settled;

    explicit Side(uint32_t n)
        : heap(n), dist(n, 0), parent(n, kInvalidVertex), reached(n, 0),
          settled(n, 0) {}
  };

  VertexId Search(VertexId s, VertexId t, Distance* out_dist);
  void SettleOne(Side* side, const Side& other, VertexId* best_meet,
                 Distance* best_dist);

  const Graph& graph_;
  std::vector<Distance> reach_;

  Side forward_;
  Side backward_;
  uint32_t generation_ = 0;
  size_t settled_count_ = 0;
};

}  // namespace roadnet

#endif  // ROADNET_REACH_REACH_INDEX_H_
