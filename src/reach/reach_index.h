#ifndef ROADNET_REACH_REACH_INDEX_H_
#define ROADNET_REACH_REACH_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "pq/indexed_heap.h"
#include "routing/path_index.h"

namespace roadnet {

// RE / reach-based pruning (Goldberg, Kaplan, Werneck 2006) — the third
// technique of the paper's Appendix A. The reach of a vertex v is
//   reach(v) = max over shortest paths P(s, t) containing v of
//              min(dist(s, v), dist(v, t)),
// i.e. how deep inside long shortest paths v can sit. Appendix A: "given
// any two vertices s and t, if the reach of v is smaller than both
// dist(s, v) and dist(v, t), then v cannot be on the shortest path from s
// to t" — which plugs straight into bidirectional Dijkstra as a pruning
// rule.
//
// Preprocessing here computes EXACT reaches with one SSSP per source: for
// a fixed source s, every vertex's contribution is min(dist(s, v),
// height(v)), where height(v) is the longest tight-edge continuation
// below v in the shortest-path DAG (not just the tree, so tied shortest
// paths are covered and pruning never cuts an optimal route). O(n * m)
// overall — practical for the datasets the Appendix A bench uses, and
// exactly the semantics the inexact upper-bound schemes approximate.
class ReachIndex : public PathIndex {
 public:
  explicit ReachIndex(const Graph& g);

  std::string Name() const override { return "RE"; }
  std::unique_ptr<QueryContext> NewContext() const override;
  Distance DistanceQuery(QueryContext* ctx, VertexId s,
                         VertexId t) const override;
  Path PathQuery(QueryContext* ctx, VertexId s, VertexId t) const override;
  using PathIndex::DistanceQuery;
  using PathIndex::PathQuery;
  size_t IndexBytes() const override;

  Distance ReachOf(VertexId v) const { return reach_[v]; }

  size_t SettledCount() const { return ContextCounters().vertices_settled; }

 private:
  struct Side {
    IndexedHeap<Distance> heap;
    std::vector<Distance> dist;
    std::vector<VertexId> parent;
    std::vector<uint32_t> reached;
    std::vector<uint32_t> settled;

    explicit Side(uint32_t n)
        : heap(n), dist(n, 0), parent(n, kInvalidVertex), reached(n, 0),
          settled(n, 0) {}
  };

  struct Context : QueryContext {
    explicit Context(uint32_t n) : forward(n), backward(n) {}

    Side forward;
    Side backward;
    uint32_t generation = 0;
  };

  VertexId Search(Context* ctx, VertexId s, VertexId t,
                  Distance* out_dist) const;
  void SettleOne(Context* ctx, Side* side, const Side& other,
                 VertexId* best_meet, Distance* best_dist) const;

  const Graph& graph_;
  std::vector<Distance> reach_;
};

}  // namespace roadnet

#endif  // ROADNET_REACH_REACH_INDEX_H_
