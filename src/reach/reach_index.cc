#include "reach/reach_index.h"

#include <algorithm>

#include "dijkstra/dijkstra.h"
#include "util/bytes.h"

namespace roadnet {

ReachIndex::ReachIndex(const Graph& g)
    : graph_(g),
      reach_(g.NumVertices(), 0),
      forward_(g.NumVertices()),
      backward_(g.NumVertices()) {
  const uint32_t n = g.NumVertices();
  Dijkstra dijkstra(g);
  std::vector<std::pair<Distance, VertexId>> order;
  std::vector<Distance> height(n, 0);

  for (VertexId s = 0; s < n; ++s) {
    dijkstra.RunAll(s);
    // Process vertices by decreasing distance so every tight-edge
    // continuation below a vertex is finished before the vertex itself.
    order.clear();
    for (VertexId v = 0; v < n; ++v) {
      const Distance d = dijkstra.DistanceTo(v);
      if (d != kInfDistance) order.emplace_back(d, v);
    }
    std::sort(order.begin(), order.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (const auto& [dv, v] : order) {
      Distance h = 0;
      for (const Arc& a : g.Neighbors(v)) {
        // Tight edge v -> x of the shortest-path DAG (covers every tied
        // shortest path, unlike a single parent tree).
        const Distance dx = dijkstra.DistanceTo(a.to);
        if (dx != kInfDistance && dv + a.weight == dx) {
          h = std::max(h, a.weight + height[a.to]);
        }
      }
      height[v] = h;
      reach_[v] = std::max(reach_[v], std::min(dv, h));
    }
  }
}

void ReachIndex::SettleOne(Side* side, const Side& other,
                           VertexId* best_meet, Distance* best_dist) {
  VertexId u = side->heap.PopMin();
  side->settled[u] = generation_;
  ++settled_count_;
  const Distance du = side->dist[u];

  // Reach pruning: if u sits deeper into this side than its reach allows,
  // any shortest path through u must end within reach(u) of the other
  // endpoint — and the other search has then already reached u. If it has
  // not, u is provably off every shortest path and its arcs are skipped.
  if (reach_[u] < du && other.reached[u] != generation_ &&
      !other.heap.Empty() && reach_[u] < other.heap.MinKey()) {
    return;
  }

  for (const Arc& a : graph_.Neighbors(u)) {
    const Distance cand = du + a.weight;
    bool improved = false;
    if (side->reached[a.to] != generation_) {
      side->reached[a.to] = generation_;
      side->dist[a.to] = cand;
      side->parent[a.to] = u;
      side->heap.Push(a.to, cand);
      improved = true;
    } else if (cand < side->dist[a.to] &&
               side->settled[a.to] != generation_) {
      side->dist[a.to] = cand;
      side->parent[a.to] = u;
      side->heap.DecreaseKey(a.to, cand);
      improved = true;
    }
    if (improved && other.reached[a.to] == generation_) {
      const Distance total = cand + other.dist[a.to];
      if (total < *best_dist) {
        *best_dist = total;
        *best_meet = a.to;
      }
    }
  }
}

VertexId ReachIndex::Search(VertexId s, VertexId t, Distance* out_dist) {
  ++generation_;
  settled_count_ = 0;
  forward_.heap.Clear();
  backward_.heap.Clear();

  forward_.dist[s] = 0;
  forward_.parent[s] = kInvalidVertex;
  forward_.reached[s] = generation_;
  forward_.heap.Push(s, 0);
  backward_.dist[t] = 0;
  backward_.parent[t] = kInvalidVertex;
  backward_.reached[t] = generation_;
  backward_.heap.Push(t, 0);

  if (s == t) {
    *out_dist = 0;
    return s;
  }
  Distance best_dist = kInfDistance;
  VertexId best_meet = kInvalidVertex;
  while (!forward_.heap.Empty() && !backward_.heap.Empty()) {
    if (best_dist != kInfDistance &&
        forward_.heap.MinKey() + backward_.heap.MinKey() >= best_dist) {
      break;
    }
    if (forward_.heap.MinKey() <= backward_.heap.MinKey()) {
      SettleOne(&forward_, backward_, &best_meet, &best_dist);
    } else {
      SettleOne(&backward_, forward_, &best_meet, &best_dist);
    }
  }
  *out_dist = best_dist;
  return best_meet;
}

Distance ReachIndex::DistanceQuery(VertexId s, VertexId t) {
  Distance d = kInfDistance;
  Search(s, t, &d);
  return d;
}

Path ReachIndex::PathQuery(VertexId s, VertexId t) {
  Distance d = kInfDistance;
  VertexId meet = Search(s, t, &d);
  if (meet == kInvalidVertex) return {};
  Path path;
  for (VertexId cur = meet; cur != kInvalidVertex;
       cur = forward_.parent[cur]) {
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  for (VertexId cur = backward_.parent[meet]; cur != kInvalidVertex;
       cur = backward_.parent[cur]) {
    path.push_back(cur);
  }
  return path;
}

size_t ReachIndex::IndexBytes() const { return VectorBytes(reach_); }

}  // namespace roadnet
