#include "reach/reach_index.h"

#include <algorithm>

#include "dijkstra/dijkstra.h"
#include "util/bytes.h"

namespace roadnet {

ReachIndex::ReachIndex(const Graph& g)
    : graph_(g), reach_(g.NumVertices(), 0) {
  const uint32_t n = g.NumVertices();
  Dijkstra dijkstra(g);
  std::vector<std::pair<Distance, VertexId>> order;
  std::vector<Distance> height(n, 0);

  for (VertexId s = 0; s < n; ++s) {
    dijkstra.RunAll(s);
    // Process vertices by decreasing distance so every tight-edge
    // continuation below a vertex is finished before the vertex itself.
    order.clear();
    for (VertexId v = 0; v < n; ++v) {
      const Distance d = dijkstra.DistanceTo(v);
      if (d != kInfDistance) order.emplace_back(d, v);
    }
    std::sort(order.begin(), order.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (const auto& [dv, v] : order) {
      Distance h = 0;
      for (const Arc& a : g.Neighbors(v)) {
        // Tight edge v -> x of the shortest-path DAG (covers every tied
        // shortest path, unlike a single parent tree).
        const Distance dx = dijkstra.DistanceTo(a.to);
        if (dx != kInfDistance && dv + a.weight == dx) {
          h = std::max(h, a.weight + height[a.to]);
        }
      }
      height[v] = h;
      reach_[v] = std::max(reach_[v], std::min(dv, h));
    }
  }
}

std::unique_ptr<QueryContext> ReachIndex::NewContext() const {
  return std::make_unique<Context>(graph_.NumVertices());
}

void ReachIndex::SettleOne(Context* ctx, Side* side, const Side& other,
                           VertexId* best_meet, Distance* best_dist) const {
  VertexId u = side->heap.PopMin();
  ctx->counters.HeapPop();
  side->settled[u] = ctx->generation;
  ctx->counters.Settle();
  const Distance du = side->dist[u];

  // Reach pruning: if u sits deeper into this side than its reach allows,
  // any shortest path through u must end within reach(u) of the other
  // endpoint — and the other search has then already reached u. If it has
  // not, u is provably off every shortest path and its arcs are skipped.
  if (reach_[u] < du && other.reached[u] != ctx->generation &&
      !other.heap.Empty() && reach_[u] < other.heap.MinKey()) {
    return;
  }

  for (const Arc& a : graph_.Neighbors(u)) {
    ctx->counters.RelaxEdge();
    const Distance cand = du + a.weight;
    bool improved = false;
    if (side->reached[a.to] != ctx->generation) {
      side->reached[a.to] = ctx->generation;
      side->dist[a.to] = cand;
      side->parent[a.to] = u;
      side->heap.Push(a.to, cand);
      ctx->counters.HeapPush();
      improved = true;
    } else if (cand < side->dist[a.to] &&
               side->settled[a.to] != ctx->generation) {
      side->dist[a.to] = cand;
      side->parent[a.to] = u;
      side->heap.DecreaseKey(a.to, cand);
      ctx->counters.HeapPush();
      improved = true;
    }
    if (improved && other.reached[a.to] == ctx->generation) {
      const Distance total = cand + other.dist[a.to];
      if (total < *best_dist) {
        *best_dist = total;
        *best_meet = a.to;
      }
    }
  }
}

VertexId ReachIndex::Search(Context* ctx, VertexId s, VertexId t,
                            Distance* out_dist) const {
  ++ctx->generation;
  ctx->counters.Reset();
  Side& forward = ctx->forward;
  Side& backward = ctx->backward;
  forward.heap.Clear();
  backward.heap.Clear();

  forward.dist[s] = 0;
  forward.parent[s] = kInvalidVertex;
  forward.reached[s] = ctx->generation;
  forward.heap.Push(s, 0);
  backward.dist[t] = 0;
  backward.parent[t] = kInvalidVertex;
  backward.reached[t] = ctx->generation;
  backward.heap.Push(t, 0);
  ctx->counters.HeapPush(2);

  if (s == t) {
    *out_dist = 0;
    return s;
  }
  Distance best_dist = kInfDistance;
  VertexId best_meet = kInvalidVertex;
  while (!forward.heap.Empty() && !backward.heap.Empty()) {
    if (best_dist != kInfDistance &&
        forward.heap.MinKey() + backward.heap.MinKey() >= best_dist) {
      break;
    }
    if (forward.heap.MinKey() <= backward.heap.MinKey()) {
      SettleOne(ctx, &forward, backward, &best_meet, &best_dist);
    } else {
      SettleOne(ctx, &backward, forward, &best_meet, &best_dist);
    }
  }
  *out_dist = best_dist;
  return best_meet;
}

Distance ReachIndex::DistanceQuery(QueryContext* ctx, VertexId s,
                                   VertexId t) const {
  Distance d = kInfDistance;
  Search(static_cast<Context*>(ctx), s, t, &d);
  return d;
}

Path ReachIndex::PathQuery(QueryContext* raw_ctx, VertexId s,
                           VertexId t) const {
  Context* ctx = static_cast<Context*>(raw_ctx);
  Distance d = kInfDistance;
  VertexId meet = Search(ctx, s, t, &d);
  if (meet == kInvalidVertex) return {};
  Path path;
  for (VertexId cur = meet; cur != kInvalidVertex;
       cur = ctx->forward.parent[cur]) {
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  for (VertexId cur = ctx->backward.parent[meet]; cur != kInvalidVertex;
       cur = ctx->backward.parent[cur]) {
    path.push_back(cur);
  }
  return path;
}

size_t ReachIndex::IndexBytes() const { return VectorBytes(reach_); }

}  // namespace roadnet
