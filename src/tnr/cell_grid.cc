#include "tnr/cell_grid.h"

#include <algorithm>

#include "util/bytes.h"

namespace roadnet {

CellGrid::CellGrid(const Graph& g, uint32_t resolution)
    : resolution_(resolution),
      vertex_cells_(g.NumVertices()),
      cell_vertices_(static_cast<size_t>(resolution) * resolution) {
  const Rect& b = g.Bounds();
  // Cell side, rounded up so every coordinate maps into [0, resolution).
  const int64_t width = static_cast<int64_t>(b.max_x) - b.min_x + 1;
  const int64_t height = static_cast<int64_t>(b.max_y) - b.min_y + 1;
  const int64_t side_x =
      std::max<int64_t>(1, (width + resolution - 1) / resolution);
  const int64_t side_y =
      std::max<int64_t>(1, (height + resolution - 1) / resolution);

  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const Point& p = g.Coord(v);
    CellCoord c{
        static_cast<int32_t>((static_cast<int64_t>(p.x) - b.min_x) / side_x),
        static_cast<int32_t>((static_cast<int64_t>(p.y) - b.min_y) / side_y)};
    vertex_cells_[v] = c;
    cell_vertices_[CellIndex(c)].push_back(v);
  }
  for (uint32_t i = 0; i < NumCells(); ++i) {
    if (!cell_vertices_[i].empty()) non_empty_cells_.push_back(i);
  }
}

size_t CellGrid::MemoryBytes() const {
  return VectorBytes(vertex_cells_) + NestedVectorBytes(cell_vertices_) +
         VectorBytes(non_empty_cells_);
}

}  // namespace roadnet
