#ifndef ROADNET_TNR_ACCESS_NODES_H_
#define ROADNET_TNR_ACCESS_NODES_H_

#include <vector>

#include "ch/ch_index.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "tnr/cell_grid.h"

namespace roadnet {

// One access node of a vertex's cell, with the exact distance from the
// vertex (the paper's I2 information).
struct VertexAccess {
  VertexId node;
  Distance dist;
};

// Output of access-node computation for a whole grid.
struct AccessNodeSet {
  // vertex_access[v] = all access nodes of v's cell, with dist(v, node).
  std::vector<std::vector<VertexAccess>> vertex_access;
  // cell_access[cell_index] = the access-node vertex set of that cell.
  std::vector<std::vector<VertexId>> cell_access;
};

// Correct access-node computation (Section 3.3 "Remarks", i.e. the
// authors' fix for the Appendix-B defect): for every vertex v in a cell C,
// compute the shortest paths from v to the endpoints of every edge that
// crosses C's outer shell, and on each path select the first vertex past
// the inner shell as an access node. Edge-crossing tests use cell
// sidedness (one endpoint within Chebyshev radius r of C, the other
// beyond), which is exact even for edges spanning many cells.
//
// `ch` accelerates distance fill-ins (every vertex needs a distance to
// every access node of its cell, even ones discovered via other vertices).
AccessNodeSet ComputeAccessNodes(const Graph& g, const CellGrid& grid,
                                 ChIndex* ch);

// The flawed Bast et al. preprocessing the paper dissects in Appendix B.
// It derives candidate sets Sin (inner-shell edges) and Sup (outer-shell
// edges) by enumerating edges between same-or-adjacent cells only — the
// mechanical reading of a per-boundary-segment enumeration — and keeps a
// vertex of Sin as an access node only if it minimizes
// dist(vi, vj) + dist(vj, vk) for some vi in C, vk in Sup. Long edges that
// jump a shell ring are missed entirely, and Sin vertices that serve
// exits not on any C-to-Sup shortest path are dropped: both lose access
// nodes and yield incorrect query answers, which the defect bench
// demonstrates.
AccessNodeSet ComputeAccessNodesFlawed(const Graph& g, const CellGrid& grid,
                                       ChIndex* ch);

}  // namespace roadnet

#endif  // ROADNET_TNR_ACCESS_NODES_H_
