#include "tnr/access_nodes.h"

#include <algorithm>
#include <unordered_set>

#include "dijkstra/dijkstra.h"

namespace roadnet {

namespace {

// Inner shell radius: boundary of the 5x5 square (cells at Chebyshev
// distance 2); outer shell radius: boundary of the 9x9 square (distance 4).
constexpr int32_t kInnerRadius = 2;
constexpr int32_t kOuterRadius = 4;

// Sorts and de-duplicates a vertex list.
void SortUnique(std::vector<VertexId>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

// Collects vertices whose cell lies within Chebyshev radius `radius` of
// `center` (window-clipped at the grid border).
std::vector<VertexId> VerticesWithin(const CellGrid& grid,
                                     const CellCoord& center,
                                     int32_t radius) {
  std::vector<VertexId> out;
  const int32_t res = static_cast<int32_t>(grid.resolution());
  for (int32_t y = std::max(0, center.y - radius);
       y <= std::min(res - 1, center.y + radius); ++y) {
    for (int32_t x = std::max(0, center.x - radius);
         x <= std::min(res - 1, center.x + radius); ++x) {
      const auto& vs = grid.VerticesIn(grid.CellIndex(CellCoord{x, y}));
      out.insert(out.end(), vs.begin(), vs.end());
    }
  }
  return out;
}

// Endpoints of edges that cross the shell of radius `radius` around
// `center` under the exact sidedness test: one endpoint within the radius,
// the other beyond it.
std::vector<VertexId> CrossingEndpoints(const Graph& g, const CellGrid& grid,
                                        const CellCoord& center,
                                        int32_t radius) {
  std::vector<VertexId> out;
  for (VertexId v : VerticesWithin(grid, center, radius)) {
    for (const Arc& a : g.Neighbors(v)) {
      if (CellChebyshev(grid.CellOf(a.to), center) > radius) {
        out.push_back(v);
        out.push_back(a.to);
      }
    }
  }
  SortUnique(&out);
  return out;
}

// Flawed enumeration (Appendix B model): like CrossingEndpoints, but only
// edges between same-or-adjacent cells are ever inspected, so an edge that
// jumps the shell ring is invisible.
std::vector<VertexId> CrossingEndpointsAdjacentOnly(const Graph& g,
                                                    const CellGrid& grid,
                                                    const CellCoord& center,
                                                    int32_t radius) {
  std::vector<VertexId> out;
  for (VertexId v : VerticesWithin(grid, center, radius)) {
    const CellCoord cv = grid.CellOf(v);
    for (const Arc& a : g.Neighbors(v)) {
      const CellCoord cu = grid.CellOf(a.to);
      if (CellChebyshev(cv, cu) <= 1 &&
          CellChebyshev(cu, center) > radius) {
        out.push_back(v);
        out.push_back(a.to);
      }
    }
  }
  SortUnique(&out);
  return out;
}

// Ensures every vertex of the cell carries a distance to every access node
// of the cell (the paper's I2 is complete per cell), filling gaps with CH
// distance queries.
void CompleteCellDistances(const std::vector<VertexId>& cell_vertices,
                           const std::vector<VertexId>& cell_access,
                           ChIndex* ch, AccessNodeSet* result) {
  for (VertexId v : cell_vertices) {
    auto& list = result->vertex_access[v];
    std::sort(list.begin(), list.end(),
              [](const VertexAccess& a, const VertexAccess& b) {
                return a.node < b.node;
              });
    list.erase(std::unique(list.begin(), list.end(),
                           [](const VertexAccess& a, const VertexAccess& b) {
                             return a.node == b.node;
                           }),
               list.end());
    if (list.size() == cell_access.size()) continue;
    // Search only the pre-append prefix: the tail being built is unsorted.
    const size_t sorted_prefix = list.size();
    for (VertexId a : cell_access) {
      bool present = std::binary_search(
          list.begin(), list.begin() + sorted_prefix, VertexAccess{a, 0},
          [](const VertexAccess& x, const VertexAccess& y) {
            return x.node < y.node;
          });
      if (!present) {
        list.push_back(VertexAccess{a, ch->DistanceQuery(v, a)});
      }
    }
    std::sort(list.begin(), list.end(),
              [](const VertexAccess& a, const VertexAccess& b) {
                return a.node < b.node;
              });
  }
}

}  // namespace

AccessNodeSet ComputeAccessNodes(const Graph& g, const CellGrid& grid,
                                 ChIndex* ch) {
  AccessNodeSet result;
  result.vertex_access.resize(g.NumVertices());
  result.cell_access.resize(grid.NumCells());

  Dijkstra dijkstra(g);
  std::vector<VertexId> path_scratch;

  for (uint32_t cell : grid.NonEmptyCells()) {
    const std::vector<VertexId>& cell_vertices = grid.VerticesIn(cell);
    const CellCoord center = grid.CellOf(cell_vertices.front());

    const std::vector<VertexId> vout =
        CrossingEndpoints(g, grid, center, kOuterRadius);
    if (vout.empty()) continue;  // nothing lies beyond the outer shell

    std::vector<VertexId>& access = result.cell_access[cell];
    for (VertexId v : cell_vertices) {
      dijkstra.RunUntilSettled(v, vout);
      for (VertexId u : vout) {
        if (!dijkstra.Settled(u)) continue;
        // Walk the parent chain u -> v, then scan from the v side for the
        // first edge crossing the inner shell; its INSIDE endpoint is the
        // access node covering this exit. The inside choice matters for
        // Equation 1's exactness: when two query cells are only 5 apart,
        // one edge can cross both cells' inner shells at once, and inside
        // endpoints keep a_s before a_t along the path (outside endpoints
        // would cross over and inflate the sum by twice the edge weight).
        path_scratch.clear();
        for (VertexId cur = u; cur != kInvalidVertex;
             cur = dijkstra.ParentOf(cur)) {
          path_scratch.push_back(cur);
        }
        // path_scratch = u .. v; scan from the back (v side).
        for (size_t i = path_scratch.size(); i-- > 1;) {
          const VertexId inside = path_scratch[i];
          const VertexId outside = path_scratch[i - 1];
          if (CellChebyshev(grid.CellOf(inside), center) <= kInnerRadius &&
              CellChebyshev(grid.CellOf(outside), center) > kInnerRadius) {
            result.vertex_access[v].push_back(
                VertexAccess{inside, dijkstra.DistanceTo(inside)});
            access.push_back(inside);
            break;
          }
        }
      }
    }
    SortUnique(&access);
    CompleteCellDistances(cell_vertices, access, ch, &result);
  }
  return result;
}

AccessNodeSet ComputeAccessNodesFlawed(const Graph& g, const CellGrid& grid,
                                       ChIndex* ch) {
  AccessNodeSet result;
  result.vertex_access.resize(g.NumVertices());
  result.cell_access.resize(grid.NumCells());

  Dijkstra dijkstra(g);

  for (uint32_t cell : grid.NonEmptyCells()) {
    const std::vector<VertexId>& cell_vertices = grid.VerticesIn(cell);
    const CellCoord center = grid.CellOf(cell_vertices.front());

    const std::vector<VertexId> sin =
        CrossingEndpointsAdjacentOnly(g, grid, center, kInnerRadius);
    const std::vector<VertexId> sup =
        CrossingEndpointsAdjacentOnly(g, grid, center, kOuterRadius);
    if (sin.empty() || sup.empty()) continue;

    // dist[j][i] = dist(sin[j], cell_vertices[i]); dist_sup[j][k] likewise.
    std::vector<std::vector<Distance>> dist_in(sin.size());
    std::vector<std::vector<Distance>> dist_up(sin.size());
    std::vector<VertexId> targets = cell_vertices;
    targets.insert(targets.end(), sup.begin(), sup.end());
    for (size_t j = 0; j < sin.size(); ++j) {
      dijkstra.RunUntilSettled(sin[j], targets);
      dist_in[j].reserve(cell_vertices.size());
      for (VertexId vi : cell_vertices) {
        dist_in[j].push_back(dijkstra.DistanceTo(vi));
      }
      dist_up[j].reserve(sup.size());
      for (VertexId vk : sup) dist_up[j].push_back(dijkstra.DistanceTo(vk));
    }

    // Bast et al.'s claim: vj is an access node iff it minimizes
    // dist(vi, vj) + dist(vj, vk) for some pair (vi, vk).
    std::vector<VertexId>& access = result.cell_access[cell];
    for (size_t i = 0; i < cell_vertices.size(); ++i) {
      for (size_t k = 0; k < sup.size(); ++k) {
        size_t best = sin.size();
        Distance best_dist = kInfDistance;
        for (size_t j = 0; j < sin.size(); ++j) {
          if (dist_in[j][i] == kInfDistance || dist_up[j][k] == kInfDistance)
            continue;
          const Distance total = dist_in[j][i] + dist_up[j][k];
          if (total < best_dist) {
            best_dist = total;
            best = j;
          }
        }
        if (best < sin.size()) {
          result.vertex_access[cell_vertices[i]].push_back(
              VertexAccess{sin[best], dist_in[best][i]});
          access.push_back(sin[best]);
        }
      }
    }
    SortUnique(&access);
    CompleteCellDistances(cell_vertices, access, ch, &result);
  }
  return result;
}

}  // namespace roadnet
