#include "tnr/tnr_index.h"

#include <algorithm>
#include <unordered_map>

#include "ch/many_to_many.h"
#include "util/bytes.h"

namespace roadnet {

namespace {

// Locality filter radius: cells beyond each other's outer shells
// (Chebyshev distance >= 5) can be answered from the tables.
constexpr int32_t kTableRadius = 5;

// The fine (hybrid) level stores table entries for cell pairs with
// Chebyshev distance in [5, 8]: at 5..8 the coarse level may be
// inapplicable while the outer shells still overlap (Appendix E.1's
// "pre-compute dist(a1, a2) only when the outer shells of C1 and C2
// overlap").
constexpr int32_t kFineStoreMax = 8;

// Path queries walk on the table only when the outer shells of the two
// cells are disjoint (Section 3.3), i.e. Chebyshev distance >= 9.
constexpr int32_t kPathWalkRadius = 9;

}  // namespace

uint32_t DefaultGridResolution(uint32_t num_vertices) {
  if (num_vertices < 2000) return 8;
  if (num_vertices < 8000) return 16;
  if (num_vertices < 40000) return 32;
  return 64;
}

void TnrIndex::BuildLevelIndex(const Graph& g, AccessNodeSet&& raw,
                               Level* level) {
  // Global access-vertex list and id mapping.
  std::unordered_map<VertexId, uint32_t> index_of;
  for (const auto& cell : raw.cell_access) {
    for (VertexId a : cell) {
      if (index_of.emplace(a, level->access_vertices.size()).second) {
        level->access_vertices.push_back(a);
      }
    }
  }
  level->cell_access = std::move(raw.cell_access);

  // CSR over per-vertex I2 entries.
  const uint32_t n = g.NumVertices();
  level->vertex_offsets.assign(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    level->vertex_offsets[v + 1] =
        level->vertex_offsets[v] +
        static_cast<uint32_t>(raw.vertex_access[v].size());
  }
  level->i2.resize(level->vertex_offsets[n]);
  for (VertexId v = 0; v < n; ++v) {
    uint32_t pos = level->vertex_offsets[v];
    for (const VertexAccess& va : raw.vertex_access[v]) {
      level->i2[pos++] = I2Entry{index_of.at(va.node), va.dist};
    }
  }
}

TnrIndex::TnrIndex(const Graph& g, ChIndex* ch, const TnrConfig& config)
    : graph_(g), ch_(ch), config_(config), coarse_(g, config.grid_resolution) {
  // --- Coarse level: access nodes (I2) + full pairwise table (I1). ---
  AccessNodeSet raw = config.flawed_access_nodes
                          ? ComputeAccessNodesFlawed(g, coarse_.grid, ch)
                          : ComputeAccessNodes(g, coarse_.grid, ch);
  BuildLevelIndex(g, std::move(raw), &coarse_);
  {
    const std::vector<Distance> table = ManyToManyDistances(
        ch, coarse_.access_vertices, coarse_.access_vertices);
    coarse_table_.resize(table.size());
    for (size_t i = 0; i < table.size(); ++i) {
      coarse_table_[i] = table[i] == kInfDistance
                             ? kNoEntry
                             : static_cast<uint32_t>(table[i]);
    }
  }

  // --- Optional fine level with a sparse table (hybrid grid). ---
  if (config.hybrid) {
    fine_ = std::make_unique<Level>(g, config.grid_resolution * 2);
    AccessNodeSet fine_raw =
        config.flawed_access_nodes
            ? ComputeAccessNodesFlawed(g, fine_->grid, ch)
            : ComputeAccessNodes(g, fine_->grid, ch);
    BuildLevelIndex(g, std::move(fine_raw), fine_.get());

    // Access-vertex index pairs required by any fine-applicable query.
    std::unordered_map<VertexId, uint32_t> fine_index;
    for (uint32_t i = 0; i < fine_->access_vertices.size(); ++i) {
      fine_index.emplace(fine_->access_vertices[i], i);
    }
    std::vector<std::vector<uint32_t>> partners(
        fine_->access_vertices.size());
    const CellGrid& fg = fine_->grid;
    const int32_t res = static_cast<int32_t>(fg.resolution());
    for (uint32_t c1 : fg.NonEmptyCells()) {
      const CellCoord p1 = fg.CellOf(fg.VerticesIn(c1).front());
      for (int32_t dy = -kFineStoreMax; dy <= kFineStoreMax; ++dy) {
        for (int32_t dx = -kFineStoreMax; dx <= kFineStoreMax; ++dx) {
          if (std::max(std::abs(dx), std::abs(dy)) < kTableRadius) continue;
          const CellCoord p2{p1.x + dx, p1.y + dy};
          if (p2.x < 0 || p2.y < 0 || p2.x >= res || p2.y >= res) continue;
          const uint32_t c2 = fg.CellIndex(p2);
          if (c2 <= c1 || fine_->cell_access[c2].empty()) continue;
          for (VertexId a1 : fine_->cell_access[c1]) {
            for (VertexId a2 : fine_->cell_access[c2]) {
              uint32_t i1 = fine_index.at(a1);
              uint32_t i2 = fine_index.at(a2);
              if (i1 == i2) continue;
              partners[std::min(i1, i2)].push_back(std::max(i1, i2));
            }
          }
        }
      }
    }
    ManyToManyEngine engine(ch, fine_->access_vertices);
    std::vector<Distance> row;
    for (uint32_t i = 0; i < partners.size(); ++i) {
      auto& list = partners[i];
      if (list.empty()) continue;
      std::sort(list.begin(), list.end());
      list.erase(std::unique(list.begin(), list.end()), list.end());
      engine.ComputeRow(fine_->access_vertices[i], &row);
      for (uint32_t j : list) fine_table_.emplace(PairKey(i, j), row[j]);
    }
  }

  // --- Fallback wiring. ---
  if (config.fallback == TnrFallback::kCh) {
    fallback_ = ch_;
  } else {
    bidi_fallback_ = std::make_unique<BidirectionalDijkstra>(g);
    fallback_ = bidi_fallback_.get();
  }
}

std::unique_ptr<QueryContext> TnrIndex::NewContext() const {
  auto ctx = std::make_unique<Context>();
  ctx->fallback = fallback_->NewContext();
  return ctx;
}

TnrStats TnrIndex::stats() const {
  auto* ctx = static_cast<const Context*>(default_context());
  return ctx == nullptr ? TnrStats{} : ctx->stats;
}

void TnrIndex::ResetStats() {
  static_cast<Context*>(DefaultContext())->stats = TnrStats{};
}

bool TnrIndex::TableApplicable(VertexId s, VertexId t) const {
  return CellChebyshev(coarse_.grid.CellOf(s), coarse_.grid.CellOf(t)) >=
         kTableRadius;
}

Distance TnrIndex::CoarseDistance(VertexId s, VertexId t,
                                  QueryCounters* counters) const {
  const size_t num_access = coarse_.access_vertices.size();
  Distance best = kInfDistance;
  for (const I2Entry& es : coarse_.AccessOf(s)) {
    const uint32_t* table_row =
        coarse_table_.data() + static_cast<size_t>(es.access_index) * num_access;
    counters->TableLookup(coarse_.AccessOf(t).size());
    for (const I2Entry& et : coarse_.AccessOf(t)) {
      const uint32_t mid = table_row[et.access_index];
      if (mid == kNoEntry) continue;
      const Distance total = es.dist + mid + et.dist;
      if (total < best) best = total;
    }
  }
  return best;
}

Distance TnrIndex::FineDistance(VertexId s, VertexId t, bool* answered,
                                QueryCounters* counters) const {
  *answered = false;
  const int32_t cheb =
      CellChebyshev(fine_->grid.CellOf(s), fine_->grid.CellOf(t));
  if (cheb < kTableRadius || cheb > kFineStoreMax) return kInfDistance;

  Distance best = kInfDistance;
  bool found_pair = false;
  for (const I2Entry& es : fine_->AccessOf(s)) {
    for (const I2Entry& et : fine_->AccessOf(t)) {
      counters->TableLookup();
      auto it = fine_table_.find(PairKey(es.access_index, et.access_index));
      if (it == fine_table_.end()) continue;
      found_pair = true;
      if (it->second == kInfDistance) continue;
      const Distance total = es.dist + it->second + et.dist;
      if (total < best) best = total;
    }
  }
  *answered = found_pair;
  return best;
}

Distance TnrIndex::RoutedDistance(Context* ctx, VertexId s,
                                  VertexId t) const {
  if (TableApplicable(s, t)) {
    ++ctx->stats.coarse_table_answered;
    return CoarseDistance(s, t, &ctx->counters);
  }
  if (fine_ != nullptr) {
    bool answered = false;
    const Distance d = FineDistance(s, t, &answered, &ctx->counters);
    if (answered) {
      ++ctx->stats.fine_table_answered;
      return d;
    }
  }
  ++ctx->stats.fallback_answered;
  // The fallback query resets and fills its own context's counters; fold
  // them into this query's totals so TNR reports its full search work.
  const Distance d = fallback_->DistanceQuery(ctx->fallback.get(), s, t);
  ctx->counters += ctx->fallback->counters;
  return d;
}

Distance TnrIndex::DistanceQuery(QueryContext* ctx, VertexId s,
                                 VertexId t) const {
  ctx->counters.Reset();
  if (s == t) return 0;
  return RoutedDistance(static_cast<Context*>(ctx), s, t);
}

Path TnrIndex::PathQuery(QueryContext* raw_ctx, VertexId s,
                         VertexId t) const {
  Context* ctx = static_cast<Context*>(raw_ctx);
  ctx->counters.Reset();
  if (s == t) return {s};
  const int32_t cheb =
      CellChebyshev(coarse_.grid.CellOf(s), coarse_.grid.CellOf(t));
  if (cheb < kPathWalkRadius) {
    ++ctx->stats.fallback_answered;
    Path p = fallback_->PathQuery(ctx->fallback.get(), s, t);
    ctx->counters += ctx->fallback->counters;
    return p;
  }

  // Greedy walk (Section 3.3): repeatedly step to the neighbour v of the
  // current vertex that minimizes w(cur, v) + dist(v, t), each dist served
  // by the table. Stop once the table no longer applies and splice the
  // remaining stretch from the fallback.
  ++ctx->stats.coarse_table_answered;
  Path path{s};
  VertexId cur = s;
  const size_t step_limit = graph_.NumVertices();  // loop guard
  while (path.size() <= step_limit) {
    if (CellChebyshev(coarse_.grid.CellOf(cur), coarse_.grid.CellOf(t)) <
        kTableRadius + 1) {
      break;
    }
    VertexId best_v = kInvalidVertex;
    Distance best_total = kInfDistance;
    bool all_applicable = true;
    for (const Arc& a : graph_.Neighbors(cur)) {
      if (!TableApplicable(a.to, t)) {
        // A long edge can land inside the locality radius; hand the rest
        // of the route to the fallback rather than risk a detour.
        all_applicable = false;
        break;
      }
      const Distance d = CoarseDistance(a.to, t, &ctx->counters);
      if (d == kInfDistance) continue;
      const Distance total = a.weight + d;
      if (total < best_total) {
        best_total = total;
        best_v = a.to;
      }
    }
    if (!all_applicable || best_v == kInvalidVertex) break;
    path.push_back(best_v);
    cur = best_v;
  }

  Path tail = fallback_->PathQuery(ctx->fallback.get(), cur, t);
  ctx->counters += ctx->fallback->counters;
  if (tail.empty()) return {};
  path.insert(path.end(), tail.begin() + 1, tail.end());
  return path;
}

size_t TnrIndex::IndexBytes() const {
  size_t bytes = VectorBytes(coarse_table_) +
                 VectorBytes(coarse_.access_vertices) +
                 VectorBytes(coarse_.vertex_offsets) +
                 VectorBytes(coarse_.i2) + coarse_.grid.MemoryBytes() +
                 NestedVectorBytes(coarse_.cell_access);
  if (fine_ != nullptr) {
    bytes += VectorBytes(fine_->access_vertices) +
             VectorBytes(fine_->vertex_offsets) + VectorBytes(fine_->i2) +
             fine_->grid.MemoryBytes() +
             NestedVectorBytes(fine_->cell_access);
    // Hash-map footprint: entries plus bucket array.
    bytes += fine_table_.size() *
                 (sizeof(uint64_t) + sizeof(Distance) + sizeof(void*)) +
             fine_table_.bucket_count() * sizeof(void*);
  }
  if (bidi_fallback_ != nullptr) bytes += bidi_fallback_->IndexBytes();
  return bytes;
}

std::span<const VertexId> TnrIndex::CellAccessNodes(VertexId v) const {
  const uint32_t cell = coarse_.grid.CellIndex(coarse_.grid.CellOf(v));
  return coarse_.cell_access[cell];
}

}  // namespace roadnet
