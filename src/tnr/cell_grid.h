#ifndef ROADNET_TNR_CELL_GRID_H_
#define ROADNET_TNR_CELL_GRID_H_

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace roadnet {

// Integer coordinates of a grid cell.
struct CellCoord {
  int32_t x = 0;
  int32_t y = 0;

  friend bool operator==(const CellCoord& a, const CellCoord& b) {
    return a.x == b.x && a.y == b.y;
  }
};

// Chebyshev distance between cells. TNR's shell geometry is expressed in
// this metric: the inner shell of C is the boundary of the 5x5 cell square
// around C (cells at distance exactly 2), the outer shell is the boundary
// of the 9x9 square (distance exactly 4). "Beyond the outer shell" means
// distance >= 5 (Section 3.3).
inline int32_t CellChebyshev(const CellCoord& a, const CellCoord& b) {
  return std::max(std::abs(a.x - b.x), std::abs(a.y - b.y));
}

// Uniform resolution x resolution grid imposed on the graph's bounding box
// (Section 3.3: "TNR is an indexing method that imposes a grid on the road
// network"). Precomputes each vertex's cell and the vertex list per cell.
class CellGrid {
 public:
  CellGrid(const Graph& g, uint32_t resolution);

  uint32_t resolution() const { return resolution_; }
  uint32_t NumCells() const { return resolution_ * resolution_; }

  CellCoord CellOf(VertexId v) const { return vertex_cells_[v]; }

  uint32_t CellIndex(const CellCoord& c) const {
    return static_cast<uint32_t>(c.y) * resolution_ +
           static_cast<uint32_t>(c.x);
  }

  const std::vector<VertexId>& VerticesIn(uint32_t cell_index) const {
    return cell_vertices_[cell_index];
  }

  // Cells with at least one vertex.
  const std::vector<uint32_t>& NonEmptyCells() const {
    return non_empty_cells_;
  }

  size_t MemoryBytes() const;

 private:
  uint32_t resolution_;
  std::vector<CellCoord> vertex_cells_;
  std::vector<std::vector<VertexId>> cell_vertices_;
  std::vector<uint32_t> non_empty_cells_;
};

}  // namespace roadnet

#endif  // ROADNET_TNR_CELL_GRID_H_
