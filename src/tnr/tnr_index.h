#ifndef ROADNET_TNR_TNR_INDEX_H_
#define ROADNET_TNR_TNR_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "ch/ch_index.h"
#include "dijkstra/bidirectional.h"
#include "graph/graph.h"
#include "routing/path_index.h"
#include "tnr/access_nodes.h"
#include "tnr/cell_grid.h"

namespace roadnet {

// Which technique handles the queries TNR's locality filter rejects
// (Section 4.1 / Appendix E.1 evaluate both).
enum class TnrFallback {
  kCh,
  kBidirectionalDijkstra,
};

// Tuning knobs of Transit Node Routing.
// Grid resolution that keeps vertices-per-cell in the regime the paper's
// 128x128 grid produced on the DIMACS inputs (see DESIGN.md).
uint32_t DefaultGridResolution(uint32_t num_vertices);

struct TnrConfig {
  // Grid resolution (the paper's 128x128 / 256x256 sweep; defaults scale
  // to the synthetic dataset sizes, see DESIGN.md).
  uint32_t grid_resolution = 32;

  // Adds a second level with twice the resolution and a sparse access-node
  // distance table restricted to nearby cell pairs (the paper's "hybrid
  // grid", Appendix E.1).
  bool hybrid = false;

  TnrFallback fallback = TnrFallback::kCh;

  // Uses the flawed Bast et al. access-node computation instead of the
  // corrected one — intentionally incorrect, for the Appendix-B defect
  // demonstration.
  bool flawed_access_nodes = false;
};

// Query-routing counters, for the locality-filter ablation bench.
struct TnrStats {
  size_t coarse_table_answered = 0;
  size_t fine_table_answered = 0;
  size_t fallback_answered = 0;
};

// Transit Node Routing (Bast et al. 2006/2007; paper Section 3.3,
// Appendices B and E.1), grid-based, with the paper's corrected
// access-node computation.
//
// Preprocessing: impose a grid; per cell compute access nodes (vertices
// covering every shortest path from inside the cell to beyond its 9x9
// outer shell) with exact per-vertex distances (I2), plus the pairwise
// distance table over all access nodes (I1). Distance queries between
// cells that lie beyond each other's outer shells reduce to
//   min over (a_s, a_t) of  d(s,a_s) + table(a_s,a_t) + d(a_t,t)
// (Equation 1); everything closer falls back to CH or bidirectional
// Dijkstra. Shortest path queries walk greedily neighbour-by-neighbour
// using distance queries (O(k) table probes), splicing the fallback for
// the final stretch near t.
class TnrIndex : public PathIndex {
 public:
  // `ch` accelerates preprocessing and serves as the fallback when
  // config.fallback == kCh; it must outlive the index.
  TnrIndex(const Graph& g, ChIndex* ch, const TnrConfig& config);

  std::string Name() const override { return "TNR"; }
  std::unique_ptr<QueryContext> NewContext() const override;
  Distance DistanceQuery(QueryContext* ctx, VertexId s,
                         VertexId t) const override;
  Path PathQuery(QueryContext* ctx, VertexId s, VertexId t) const override;
  using PathIndex::DistanceQuery;
  using PathIndex::PathQuery;
  size_t IndexBytes() const override;

  // True if the coarse locality filter lets the table answer (s, t).
  bool TableApplicable(VertexId s, VertexId t) const;

  // Routing counters of the default context (the context-free overloads).
  TnrStats stats() const;
  // roadnet-lint: allow(R2 resets default-context stats between legacy single-threaded measurement phases; index structure untouched)
  void ResetStats();

  // Distinct access nodes of the coarse level (reporting).
  size_t NumAccessNodes() const { return coarse_.access_vertices.size(); }

  // Access-node vertex set of the cell containing v (testing).
  std::span<const VertexId> CellAccessNodes(VertexId v) const;

 private:
  // TNR itself needs no scratch — queries are table probes — but every
  // fallback-routed query needs the fallback technique's scratch, so the
  // context wraps one fallback context plus the routing counters.
  struct Context : QueryContext {
    TnrStats stats;
    std::unique_ptr<QueryContext> fallback;
  };

  // Per-vertex I2 entry: index into the level's access_vertices plus the
  // exact distance.
  struct I2Entry {
    uint32_t access_index;
    Distance dist;
  };

  // One grid level (the coarse level always exists; the fine level only
  // under config.hybrid).
  struct Level {
    explicit Level(const Graph& g, uint32_t resolution)
        : grid(g, resolution) {}

    CellGrid grid;
    std::vector<VertexId> access_vertices;       // global dedup
    std::vector<uint32_t> vertex_offsets;        // CSR over I2 entries
    std::vector<I2Entry> i2;
    std::vector<std::vector<VertexId>> cell_access;  // per cell, vertex ids

    std::span<const I2Entry> AccessOf(VertexId v) const {
      return {i2.data() + vertex_offsets[v],
              vertex_offsets[v + 1] - vertex_offsets[v]};
    }
  };

  // Populates level->access_vertices / vertex_offsets / i2 from raw
  // per-vertex access lists.
  static void BuildLevelIndex(const Graph& g, AccessNodeSet&& raw,
                              Level* level);

  // Equation 1 on the coarse level. Requires TableApplicable. Counts one
  // table_lookups per I1 cell probed into *counters.
  Distance CoarseDistance(VertexId s, VertexId t,
                          QueryCounters* counters) const;

  // Equation 1 on the fine level's sparse table. Sets *answered = false if
  // the filter or the sparse table cannot handle the pair.
  Distance FineDistance(VertexId s, VertexId t, bool* answered,
                        QueryCounters* counters) const;

  Distance RoutedDistance(Context* ctx, VertexId s, VertexId t) const;

  static uint64_t PairKey(uint32_t a, uint32_t b) {
    return (static_cast<uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
  }

  const Graph& graph_;
  ChIndex* ch_;
  TnrConfig config_;

  Level coarse_;
  // |A| x |A| row-major; 32-bit entries (kNoEntry for unreachable) halve
  // the footprint of TNR's dominant structure.
  static constexpr uint32_t kNoEntry = 0xffffffffu;
  std::vector<uint32_t> coarse_table_;

  std::unique_ptr<Level> fine_;
  std::unordered_map<uint64_t, Distance> fine_table_;

  std::unique_ptr<BidirectionalDijkstra> bidi_fallback_;
  PathIndex* fallback_ = nullptr;
};

}  // namespace roadnet

#endif  // ROADNET_TNR_TNR_INDEX_H_
