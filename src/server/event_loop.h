#ifndef ROADNET_SERVER_EVENT_LOOP_H_
#define ROADNET_SERVER_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/socket.h"
#include "server/wire.h"

namespace roadnet {

// Asynchronous server front-end: a small pool of epoll event loops, each
// owning a shard of the connections. Replaces the thread-per-connection
// handlers so one process holds tens of thousands of sockets with a
// handful of threads.
//
// Ownership rules (the contract everything below hangs off):
//   - A connection belongs to exactly one loop for its whole life. Only
//     that loop's thread reads it, writes it, or closes it.
//   - Complete request frames are handed to FrameHandler::OnFrame on the
//     loop thread. The handler replies either inline (Send from inside
//     OnFrame) or later from another thread by Post()ing a closure to
//     the owning loop — the closure runs on the loop thread and may then
//     Send. Post is the only cross-thread entry point; it wakes the
//     loop via an eventfd.
//   - A ConnRef {loop, slot, generation} names a connection across
//     threads. Slots are recycled; the generation check makes a ref to
//     a closed connection fail Send harmlessly instead of writing into
//     whoever inherited the slot.
//
// Backpressure policy: every connection has a write queue (encoded reply
// bytes not yet accepted by the kernel). Above
// EventLoopOptions::write_soft_cap the loop stops reading that
// connection — buffered requests stay buffered, EPOLLIN interest is
// dropped — and resumes below half the cap. The handler additionally
// sees the queue size in FrameMeta and sheds with OVERLOADED above its
// own hard cap, so a client that never reads replies cannot pin memory.

// Incremental reassembly of the [u32 body_length][body] frame stream
// from arbitrarily fragmented reads. This is the state machine behind
// edge-triggered reads; the byte-dribble fuzz test drives it directly.
class FrameAssembler {
 public:
  FrameAssembler() = default;
  explicit FrameAssembler(uint32_t max_body) : max_body_(max_body) {}

  // Appends raw bytes from the socket.
  void Feed(const char* data, size_t size) { buffer_.append(data, size); }

  enum class Result {
    kFrame,     // *body holds the next complete frame body
    kNeedMore,  // no complete frame buffered yet
    kError,     // length prefix exceeds max_body; the stream is garbage
  };

  // Extracts the next complete frame. Call in a loop after Feed until it
  // stops returning kFrame. kError is sticky: the connection should be
  // closed, not resynchronized.
  Result Next(std::string* body);

  // Bytes buffered but not yet returned as frames.
  size_t BufferedBytes() const { return buffer_.size() - head_; }

 private:
  uint32_t max_body_ = wire::kMaxFrameBytes;
  std::string buffer_;
  size_t head_ = 0;  // consumed prefix of buffer_
  bool error_ = false;
};

// Names one connection across threads; see the ownership rules above.
struct ConnRef {
  uint32_t loop = 0;
  uint32_t slot = 0;
  uint64_t generation = 0;
};

// Per-frame context handed to OnFrame. Timestamps are steady_clock
// nanoseconds since EventLoopOptions::epoch (the tracer's axis).
struct FrameMeta {
  bool first_frame = false;   // first frame of this connection
  uint64_t accept_ns = 0;     // when accept(2) returned this socket
  uint64_t read_start_ns = 0; // when the loop began waiting for this frame
  uint64_t frame_end_ns = 0;  // when the frame was completely buffered
  size_t write_queue_bytes = 0;  // this connection's unflushed reply bytes
};

// The loops' upcall interface, implemented by QueryServer.
class FrameHandler {
 public:
  virtual ~FrameHandler() = default;
  // One complete frame body, on the owning loop's thread. Return false
  // to close the connection (protocol garbage). Frames already buffered
  // behind a false return are discarded with the connection.
  virtual bool OnFrame(const ConnRef& conn, std::string&& body,
                       const FrameMeta& meta) = 0;
};

struct EventLoopOptions {
  size_t num_loops = 2;
  // Pool-wide cap on simultaneously open connections; accepts beyond it
  // are closed immediately and counted as rejected.
  size_t max_connections = 64;
  // Request frames above this are a protocol error (connection closed).
  uint32_t max_frame_bytes = wire::kMaxFrameBytes;
  // Stop reading a connection whose write queue exceeds this; resume at
  // half. 0 disables the pause (the handler's hard cap still applies).
  size_t write_soft_cap = 256u << 10;
  // Close connections idle (no bytes read or written) this long.
  // 0 disables reaping.
  uint64_t idle_timeout_ms = 0;
  // SO_SNDBUF for accepted sockets (0 = kernel default). Bounds kernel
  // memory per connection at high fan-in, and makes the write-queue
  // caps bite at a predictable depth instead of after the kernel's
  // auto-tuned buffer (which can absorb megabytes) fills.
  int sndbuf_bytes = 0;
  // Zero point for FrameMeta timestamps; share the tracer's epoch.
  std::chrono::steady_clock::time_point epoch{};
};

// The pool. Start spawns the loop threads and registers the listening
// socket in every loop's epoll set with EPOLLEXCLUSIVE, so the kernel
// shards accepts across loops without a dedicated accept thread.
class EventLoopPool {
 public:
  EventLoopPool(const EventLoopOptions& options, FrameHandler* handler);
  ~EventLoopPool();

  EventLoopPool(const EventLoopPool&) = delete;
  EventLoopPool& operator=(const EventLoopPool&) = delete;

  // Takes ownership of the listening socket and starts the loops.
  bool Start(ScopedFd listen_fd, std::string* error);

  // Deregisters and closes the listening socket in every loop; no new
  // connections are accepted once this returns. Established connections
  // keep running.
  void StopAccepting();

  // Blocks until every connection's write queue is empty or the timeout
  // elapses (a peer that stopped reading can pin its queue forever).
  // Returns true if fully flushed.
  bool FlushAndWait(std::chrono::milliseconds timeout);

  // Closes every connection and joins the loop threads. Closures still
  // queued via Post are run (on the caller) after the join, so cleanup
  // closures always execute. Idempotent.
  void Stop();

  // Runs `fn` on the given loop's thread; the only cross-thread way to
  // reach a connection. Closures posted to a stopped pool run inline.
  void Post(uint32_t loop, std::function<void()> fn);

  // Queues one frame ([u32 length] prefix added here) on the
  // connection's write queue and flushes what the kernel will take.
  // Must be called on the owning loop's thread (from OnFrame or a
  // posted closure). False if the connection is gone.
  bool Send(const ConnRef& conn, const std::string& body);

  size_t NumLoops() const { return loops_.size(); }

  struct PoolStats {
    uint64_t accepted = 0;          // lifetime
    uint64_t rejected = 0;          // lifetime, closed at the cap
    uint64_t idle_reaped = 0;       // lifetime
    uint64_t write_queue_bytes = 0; // gauge, summed over loops
    uint64_t open_connections = 0;  // gauge
    std::vector<uint64_t> loop_connections;  // gauge, per loop
  };
  PoolStats Stats() const;

 private:
  struct Conn;
  struct Loop;

  void LoopMain(Loop* loop);
  void HandleAccept(Loop* loop);
  void ProcessInput(Loop* loop, uint32_t slot);
  void FlushConn(Loop* loop, Conn* conn);
  void CloseConn(Loop* loop, uint32_t slot);
  void RunPosted(Loop* loop);
  void AdvanceWheel(Loop* loop, uint64_t now_ns);
  void ScheduleIdle(Loop* loop, uint32_t slot);
  uint64_t NowNs() const;

  EventLoopOptions options_;
  FrameHandler* handler_;
  ScopedFd listen_;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::atomic<size_t> total_conns_{0};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> accepting_{false};
};

}  // namespace roadnet

#endif  // ROADNET_SERVER_EVENT_LOOP_H_
