#include "server/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace roadnet {

namespace {

void SetError(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what + ": " + std::strerror(errno);
}

// The protocol is request-reply with small frames; Nagle would add 40ms
// stalls between a request and its reply on some stacks.
void DisableNagle(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

void ScopedFd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ScopedFd ListenTcp(uint16_t port, uint16_t* actual_port, std::string* error) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    SetError(error, "socket");
    return {};
  }
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    SetError(error, "bind");
    return {};
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) {
    SetError(error, "listen");
    return {};
  }
  if (actual_port != nullptr) {
    socklen_t len = sizeof(addr);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) !=
        0) {
      SetError(error, "getsockname");
      return {};
    }
    *actual_port = ntohs(addr.sin_port);
  }
  return fd;
}

ScopedFd ConnectTcp(const std::string& host, uint16_t port,
                    std::string* error) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    SetError(error, "socket");
    return {};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "invalid host address '" + host + "'";
    return {};
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    SetError(error, "connect to " + host + ":" + std::to_string(port));
    return {};
  }
  DisableNagle(fd.get());
  return fd;
}

bool WriteFull(int fd, const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE, not process death.
    const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

bool ReadFullOrEof(int fd, void* data, size_t size, bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, p + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) {
      if (clean_eof != nullptr && got == 0) *clean_eof = true;
      return false;
    }
    got += static_cast<size_t>(n);
  }
  return true;
}

bool ReadFull(int fd, void* data, size_t size) {
  return ReadFullOrEof(fd, data, size, nullptr);
}

bool WriteFrame(int fd, const std::string& body) {
  const uint32_t len = static_cast<uint32_t>(body.size());
  char header[4];
  std::memcpy(header, &len, sizeof(len));
  return WriteFull(fd, header, sizeof(header)) &&
         WriteFull(fd, body.data(), body.size());
}

bool ReadFrame(int fd, std::string* body, uint32_t max_body,
               bool* clean_eof) {
  uint32_t len = 0;
  if (!ReadFullOrEof(fd, &len, sizeof(len), clean_eof)) return false;
  if (len > max_body) return false;
  body->resize(len);
  return len == 0 || ReadFull(fd, body->data(), len);
}

}  // namespace roadnet
