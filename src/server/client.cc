#include "server/client.h"

namespace roadnet {

std::unique_ptr<BlockingClient> BlockingClient::Connect(
    const std::string& host, uint16_t port, std::string* error) {
  ScopedFd fd = ConnectTcp(host, port, error);
  if (!fd.valid()) return nullptr;
  return std::unique_ptr<BlockingClient>(new BlockingClient(std::move(fd)));
}

bool BlockingClient::RoundTrip(const std::string& request,
                               std::string* reply_body, std::string* error) {
  auto fail = [error](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (!fd_.valid()) return fail("connection already closed");
  if (!WriteFrame(fd_.get(), request)) return fail("write failed");
  bool clean_eof = false;
  if (!ReadFrame(fd_.get(), reply_body, wire::kMaxFrameBytes, &clean_eof)) {
    return fail(clean_eof ? "server closed the connection"
                          : "read failed");
  }
  return true;
}

bool BlockingClient::Query(const wire::QueryRequest& req,
                           wire::QueryResponse* resp, std::string* error) {
  std::string body;
  if (!RoundTrip(wire::EncodeQueryRequest(req), &body, error)) return false;
  auto decoded = wire::DecodeQueryResponse(body);
  if (!decoded.has_value()) {
    if (error != nullptr) *error = "malformed QUERY_REPLY frame";
    return false;
  }
  *resp = std::move(*decoded);
  return true;
}

bool BlockingClient::Knn(const wire::KnnRequest& req,
                         wire::KnnResponse* resp, std::string* error) {
  std::string body;
  if (!RoundTrip(wire::EncodeKnnRequest(req), &body, error)) return false;
  auto decoded = wire::DecodeKnnResponse(wire::kKnnReply, body);
  if (!decoded.has_value()) {
    if (error != nullptr) *error = "malformed KNN_REPLY frame";
    return false;
  }
  *resp = std::move(*decoded);
  return true;
}

bool BlockingClient::OneToMany(const wire::OneToManyRequest& req,
                               wire::KnnResponse* resp, std::string* error) {
  std::string body;
  if (!RoundTrip(wire::EncodeOneToManyRequest(req), &body, error)) {
    return false;
  }
  auto decoded = wire::DecodeKnnResponse(wire::kOneToManyReply, body);
  if (!decoded.has_value()) {
    if (error != nullptr) *error = "malformed ONE_TO_MANY_REPLY frame";
    return false;
  }
  *resp = std::move(*decoded);
  return true;
}

bool BlockingClient::GetStats(wire::StatsResponse* stats,
                              std::string* error) {
  std::string body;
  if (!RoundTrip(wire::EncodeStatsRequest(), &body, error)) return false;
  auto decoded = wire::DecodeStatsResponse(body);
  if (!decoded.has_value()) {
    if (error != nullptr) *error = "malformed STATS_REPLY frame";
    return false;
  }
  *stats = *decoded;
  return true;
}

bool BlockingClient::ConfigureTracing(const wire::TraceConfigRequest& req,
                                      wire::TraceConfigResponse* effective,
                                      std::string* error) {
  std::string body;
  if (!RoundTrip(wire::EncodeTraceConfigRequest(req), &body, error)) {
    return false;
  }
  auto decoded = wire::DecodeTraceConfigResponse(body);
  if (!decoded.has_value()) {
    if (error != nullptr) *error = "malformed TRACE_CONFIG_REPLY frame";
    return false;
  }
  if (effective != nullptr) *effective = *decoded;
  return true;
}

bool BlockingClient::SendShutdown(std::string* error) {
  std::string body;
  if (!RoundTrip(wire::EncodeShutdownRequest(), &body, error)) return false;
  if (wire::PeekType(body) != wire::kShutdownReply) {
    if (error != nullptr) *error = "malformed SHUTDOWN_REPLY frame";
    return false;
  }
  return true;
}

std::unique_ptr<PipelinedClient> PipelinedClient::Connect(
    const std::string& host, uint16_t port, std::string* error) {
  ScopedFd fd = ConnectTcp(host, port, error);
  if (!fd.valid()) return nullptr;
  return std::unique_ptr<PipelinedClient>(new PipelinedClient(std::move(fd)));
}

bool PipelinedClient::Send(const wire::QueryRequest& req,
                           std::string* error) {
  if (!fd_.valid()) {
    if (error != nullptr) *error = "connection already closed";
    return false;
  }
  if (!WriteFrame(fd_.get(), wire::EncodeQueryRequestV2(req))) {
    if (error != nullptr) *error = "write failed";
    return false;
  }
  return true;
}

bool PipelinedClient::Recv(wire::QueryResponse* resp, std::string* error) {
  auto fail = [error](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (!fd_.valid()) return fail("connection already closed");
  std::string body;
  bool clean_eof = false;
  if (!ReadFrame(fd_.get(), &body, wire::kMaxFrameBytes, &clean_eof)) {
    return fail(clean_eof ? "server closed the connection" : "read failed");
  }
  auto decoded = wire::DecodeQueryResponseV2(body);
  if (!decoded.has_value()) return fail("malformed QUERY_REPLY2 frame");
  *resp = std::move(*decoded);
  return true;
}

}  // namespace roadnet
