#include "server/event_loop.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace roadnet {

namespace {

// epoll_event.data.u64 tags for the two non-connection fds; everything
// else is a connection slot index.
constexpr uint64_t kListenTag = ~uint64_t{0};
constexpr uint64_t kWakeTag = ~uint64_t{0} - 1;

// Connections accepted per listen wakeup before yielding back to the
// event loop (level-triggered, so the remainder re-triggers — possibly
// on a sibling loop, which is the sharding).
constexpr int kAcceptBurst = 256;

constexpr size_t kWheelBuckets = 64;

constexpr uint32_t kConnEvents = EPOLLIN | EPOLLOUT | EPOLLET;

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

FrameAssembler::Result FrameAssembler::Next(std::string* body) {
  if (error_) return Result::kError;
  const size_t avail = buffer_.size() - head_;
  if (avail < sizeof(uint32_t)) {
    if (head_ > 0 && avail == 0) {
      buffer_.clear();
      head_ = 0;
    }
    return Result::kNeedMore;
  }
  uint32_t len = 0;
  std::memcpy(&len, buffer_.data() + head_, sizeof(len));
  if (len > max_body_) {
    error_ = true;
    return Result::kError;
  }
  if (avail < sizeof(uint32_t) + len) return Result::kNeedMore;
  body->assign(buffer_, head_ + sizeof(uint32_t), len);
  head_ += sizeof(uint32_t) + len;
  if (head_ == buffer_.size()) {
    buffer_.clear();
    head_ = 0;
  } else if (head_ > (64u << 10) && head_ > buffer_.size() / 2) {
    buffer_.erase(0, head_);
    head_ = 0;
  }
  return Result::kFrame;
}

// One connection's state machine. Owned (read, written, closed) only by
// its loop's thread; cross-thread access goes through Post + ConnRef.
struct EventLoopPool::Conn {
  ScopedFd fd;
  uint64_t gen = 1;      // bumped on close; ConnRef carries a snapshot
  bool in_use = false;
  bool dead = false;     // fatal I/O or protocol error; close pending
  bool paused = false;   // EPOLLIN dropped: write queue over the soft cap
  bool in_input = false; // ProcessInput active (reentrancy guard)
  bool want_out_edge = false;  // send() hit EAGAIN; wait for EPOLLOUT
  bool first_frame = true;
  uint64_t accept_ns = 0;
  uint64_t read_start_ns = 0;
  uint64_t last_activity_ns = 0;
  FrameAssembler assembler;
  std::string out;       // queued reply bytes (length prefixes included)
  size_t out_head = 0;   // flushed prefix of `out`
};

struct EventLoopPool::Loop {
  uint32_t index = 0;
  ScopedFd epoll_fd;
  ScopedFd wake_fd;
  std::thread thread;
  std::vector<Conn> conns;
  std::vector<uint32_t> free_slots;
  // Slots freed during the current event batch; reused only from the
  // next iteration on, so stale events in this batch cannot reach a
  // recycled slot.
  std::vector<uint32_t> freed_pending;
  Mutex post_mu;
  std::vector<std::function<void()>> posted ROADNET_GUARDED_BY(post_mu);
  // Idle-reaping deadline wheel: (slot, generation) entries bucketed by
  // expiry tick. Entries are lazy — closed connections leave stale
  // entries behind that the generation check discards on drain.
  std::array<std::vector<std::pair<uint32_t, uint64_t>>, kWheelBuckets> wheel;
  uint64_t tick_ns = 0;
  uint64_t wheel_tick = 0;
  // Gauges/counters read from other threads.
  std::atomic<uint64_t> open_conns{0};
  std::atomic<uint64_t> write_queue_bytes{0};
  std::atomic<uint64_t> idle_reaped{0};
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> rejected{0};
};

EventLoopPool::EventLoopPool(const EventLoopOptions& options,
                             FrameHandler* handler)
    : options_(options), handler_(handler) {
  if (options_.num_loops == 0) options_.num_loops = 1;
}

EventLoopPool::~EventLoopPool() { Stop(); }

uint64_t EventLoopPool::NowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - options_.epoch)
          .count());
}

bool EventLoopPool::Start(ScopedFd listen_fd, std::string* error) {
  listen_ = std::move(listen_fd);
  if (!SetNonBlocking(listen_.get())) {
    if (error) *error = "failed to make listen socket nonblocking";
    return false;
  }
  const uint64_t now = NowNs();
  for (size_t i = 0; i < options_.num_loops; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->index = static_cast<uint32_t>(i);
    loop->epoll_fd = ScopedFd(::epoll_create1(EPOLL_CLOEXEC));
    loop->wake_fd =
        ScopedFd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
    if (!loop->epoll_fd.valid() || !loop->wake_fd.valid()) {
      if (error) *error = "failed to create epoll/eventfd";
      return false;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    if (::epoll_ctl(loop->epoll_fd.get(), EPOLL_CTL_ADD,
                    loop->wake_fd.get(), &ev) != 0) {
      if (error) *error = "failed to register wakeup fd";
      return false;
    }
    ev.events = EPOLLIN | EPOLLEXCLUSIVE;
    ev.data.u64 = kListenTag;
    if (::epoll_ctl(loop->epoll_fd.get(), EPOLL_CTL_ADD, listen_.get(),
                    &ev) != 0) {
      // EPOLLEXCLUSIVE needs Linux >= 4.5; plain shared registration is
      // correct too (every loop may wake; all but one see EAGAIN).
      ev.events = EPOLLIN;
      if (::epoll_ctl(loop->epoll_fd.get(), EPOLL_CTL_ADD, listen_.get(),
                      &ev) != 0) {
        if (error) *error = "failed to register listen socket";
        return false;
      }
    }
    if (options_.idle_timeout_ms > 0) {
      const uint64_t timeout_ns = options_.idle_timeout_ms * 1'000'000ull;
      // The wheel spans >= 2x the timeout so a reinserted entry never
      // lands behind the cursor.
      loop->tick_ns = std::max<uint64_t>(1'000'000, timeout_ns / 32);
      loop->wheel_tick = now / loop->tick_ns;
    }
    loops_.push_back(std::move(loop));
  }
  started_.store(true, std::memory_order_release);
  accepting_.store(true, std::memory_order_release);
  for (auto& loop : loops_) {
    Loop* l = loop.get();
    l->thread = std::thread([this, l] { LoopMain(l); });
  }
  return true;
}

void EventLoopPool::Post(uint32_t loop, std::function<void()> fn) {
  if (!started_.load(std::memory_order_acquire) || loop >= loops_.size()) {
    fn();  // stopped pool: run inline so cleanup closures never leak
    return;
  }
  Loop* l = loops_[loop].get();
  bool wake = false;
  {
    MutexLock g(l->post_mu);
    l->posted.push_back(std::move(fn));
    wake = l->posted.size() == 1;
  }
  if (wake) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n =
        ::write(l->wake_fd.get(), &one, sizeof(one));
  }
}

void EventLoopPool::RunPosted(Loop* loop) {
  std::vector<std::function<void()>> batch;
  {
    MutexLock g(loop->post_mu);
    batch.swap(loop->posted);
  }
  for (auto& fn : batch) fn();
}

void EventLoopPool::StopAccepting() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (!accepting_.exchange(false)) return;
  // Deregister the listen fd from every loop before closing it; until
  // then a level-triggered pending backlog would spin the loops.
  struct Sync {
    Mutex mu;
    CondVar cv;
    size_t remaining ROADNET_GUARDED_BY(mu);
  };
  auto sync = std::make_shared<Sync>();
  {
    MutexLock g(sync->mu);
    sync->remaining = loops_.size();
  }
  for (auto& loop : loops_) {
    Loop* l = loop.get();
    Post(l->index, [this, l, sync] {
      ::epoll_ctl(l->epoll_fd.get(), EPOLL_CTL_DEL, listen_.get(), nullptr);
      MutexLock g(sync->mu);
      if (--sync->remaining == 0) sync->cv.NotifyAll();
    });
  }
  {
    MutexLock lk(sync->mu);
    while (sync->remaining != 0) sync->cv.Wait(lk);
  }
  listen_.Close();
}

bool EventLoopPool::FlushAndWait(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    uint64_t queued = 0;
    for (const auto& loop : loops_) {
      queued += loop->write_queue_bytes.load(std::memory_order_relaxed);
    }
    if (queued == 0) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

void EventLoopPool::Stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopping_.exchange(true)) {
    for (auto& loop : loops_) {
      if (loop->thread.joinable()) loop->thread.join();
    }
    return;
  }
  for (auto& loop : loops_) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n =
        ::write(loop->wake_fd.get(), &one, sizeof(one));
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  started_.store(false, std::memory_order_release);
  // Cleanup closures posted after the loops drained their final batch
  // still have to run (their Sends fail the generation check).
  for (auto& loop : loops_) RunPosted(loop.get());
  listen_.Close();
}

bool EventLoopPool::Send(const ConnRef& conn, const std::string& body) {
  Loop* l = loops_[conn.loop].get();
  if (conn.slot >= l->conns.size()) return false;
  Conn& c = l->conns[conn.slot];
  if (!c.in_use || c.gen != conn.generation || c.dead) return false;
  const uint32_t len = static_cast<uint32_t>(body.size());
  c.out.append(reinterpret_cast<const char*>(&len), sizeof(len));
  c.out.append(body);
  l->write_queue_bytes.fetch_add(sizeof(len) + body.size(),
                                 std::memory_order_relaxed);
  if (!c.want_out_edge) FlushConn(l, &c);
  if (c.dead && !c.in_input) CloseConn(l, conn.slot);
  return true;
}

void EventLoopPool::FlushConn(Loop* loop, Conn* c) {
  while (c->out_head < c->out.size()) {
    const ssize_t n = ::send(c->fd.get(), c->out.data() + c->out_head,
                             c->out.size() - c->out_head, MSG_NOSIGNAL);
    if (n > 0) {
      c->out_head += static_cast<size_t>(n);
      loop->write_queue_bytes.fetch_sub(static_cast<uint64_t>(n),
                                        std::memory_order_relaxed);
      c->last_activity_ns = NowNs();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      c->want_out_edge = true;
      break;
    }
    if (n < 0 && errno == EINTR) continue;
    c->dead = true;
    return;
  }
  if (c->out_head == c->out.size()) {
    c->out.clear();
    c->out_head = 0;
  } else if (c->out_head > (64u << 10) && c->out_head > c->out.size() / 2) {
    c->out.erase(0, c->out_head);
    c->out_head = 0;
  }
  // Resume reading once the backlog drained below half the soft cap.
  // Never from inside ProcessInput — that frame loop is still running.
  if (c->paused && !c->in_input &&
      c->out.size() - c->out_head <= options_.write_soft_cap / 2) {
    c->paused = false;
    epoll_event ev{};
    ev.events = kConnEvents;
    ev.data.u64 = static_cast<uint64_t>(c - loop->conns.data());
    ::epoll_ctl(loop->epoll_fd.get(), EPOLL_CTL_MOD, c->fd.get(), &ev);
    ProcessInput(loop, static_cast<uint32_t>(c - loop->conns.data()));
  }
}

void EventLoopPool::ProcessInput(Loop* loop, uint32_t slot) {
  Conn& c = loop->conns[slot];
  if (!c.in_use || c.dead || c.paused) return;
  c.in_input = true;
  char buf[16384];
  for (;;) {
    // Drain frames already buffered before reading more.
    const uint64_t now = NowNs();
    std::string body;
    FrameAssembler::Result res;
    while ((res = c.assembler.Next(&body)) == FrameAssembler::Result::kFrame) {
      FrameMeta meta;
      meta.first_frame = c.first_frame;
      meta.accept_ns = c.accept_ns;
      meta.read_start_ns = c.read_start_ns;
      meta.frame_end_ns = now;
      meta.write_queue_bytes = c.out.size() - c.out_head;
      c.first_frame = false;
      c.read_start_ns = now;
      const ConnRef ref{loop->index, slot, c.gen};
      if (!handler_->OnFrame(ref, std::move(body), meta)) c.dead = true;
      if (c.dead) break;
      if (options_.write_soft_cap > 0 &&
          c.out.size() - c.out_head > options_.write_soft_cap) {
        // Backpressure: drop read interest and stop decoding what is
        // already buffered until the write queue drains.
        c.paused = true;
        epoll_event ev{};
        ev.events = EPOLLOUT | EPOLLET;
        ev.data.u64 = slot;
        ::epoll_ctl(loop->epoll_fd.get(), EPOLL_CTL_MOD, c.fd.get(), &ev);
        break;
      }
    }
    if (c.dead || c.paused) break;
    if (res == FrameAssembler::Result::kError) {
      c.dead = true;
      break;
    }
    const ssize_t n = ::recv(c.fd.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      c.assembler.Feed(buf, static_cast<size_t>(n));
      c.last_activity_ns = NowNs();
      continue;
    }
    if (n == 0) {  // clean EOF
      c.dead = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    c.dead = true;
    break;
  }
  c.in_input = false;
  if (c.dead) CloseConn(loop, slot);
}

void EventLoopPool::CloseConn(Loop* loop, uint32_t slot) {
  Conn& c = loop->conns[slot];
  if (!c.in_use) return;
  loop->write_queue_bytes.fetch_sub(c.out.size() - c.out_head,
                                    std::memory_order_relaxed);
  c.fd.Close();  // the kernel drops the epoll registration with the fd
  c.in_use = false;
  c.gen++;  // stale ConnRefs and wheel entries now fail their check
  c.out.clear();
  c.out_head = 0;
  loop->freed_pending.push_back(slot);
  loop->open_conns.fetch_sub(1, std::memory_order_relaxed);
  total_conns_.fetch_sub(1, std::memory_order_relaxed);
}

void EventLoopPool::HandleAccept(Loop* loop) {
  if (!accepting_.load(std::memory_order_acquire)) return;
  for (int burst = 0; burst < kAcceptBurst; ++burst) {
    const int fd = ::accept4(listen_.get(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK &&
          errno != ECONNABORTED) {
        loop->rejected.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    if (total_conns_.fetch_add(1, std::memory_order_relaxed) >=
        options_.max_connections) {
      total_conns_.fetch_sub(1, std::memory_order_relaxed);
      ::close(fd);
      loop->rejected.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.sndbuf_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
                   sizeof(options_.sndbuf_bytes));
    }
    uint32_t slot;
    if (!loop->free_slots.empty()) {
      slot = loop->free_slots.back();
      loop->free_slots.pop_back();
    } else {
      slot = static_cast<uint32_t>(loop->conns.size());
      loop->conns.emplace_back();
    }
    Conn& c = loop->conns[slot];
    const uint64_t gen = c.gen;  // preserved across reuse
    c = Conn{};
    c.gen = gen;
    c.fd = ScopedFd(fd);
    c.in_use = true;
    c.assembler = FrameAssembler(options_.max_frame_bytes);
    c.accept_ns = NowNs();
    epoll_event ev{};
    ev.events = kConnEvents;
    ev.data.u64 = slot;
    if (::epoll_ctl(loop->epoll_fd.get(), EPOLL_CTL_ADD, c.fd.get(), &ev) !=
        0) {
      c.fd.Close();
      c.in_use = false;
      c.gen++;
      loop->free_slots.push_back(slot);
      total_conns_.fetch_sub(1, std::memory_order_relaxed);
      loop->rejected.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    c.read_start_ns = NowNs();
    c.last_activity_ns = c.read_start_ns;
    loop->accepted.fetch_add(1, std::memory_order_relaxed);
    loop->open_conns.fetch_add(1, std::memory_order_relaxed);
    ScheduleIdle(loop, slot);
    // The socket may already hold a request; edge-triggered ADD is not
    // guaranteed to report bytes that raced the registration.
    ProcessInput(loop, slot);
  }
}

void EventLoopPool::ScheduleIdle(Loop* loop, uint32_t slot) {
  if (loop->tick_ns == 0) return;
  const Conn& c = loop->conns[slot];
  const uint64_t deadline =
      c.last_activity_ns + options_.idle_timeout_ms * 1'000'000ull;
  loop->wheel[(deadline / loop->tick_ns) % kWheelBuckets].emplace_back(
      slot, c.gen);
}

void EventLoopPool::AdvanceWheel(Loop* loop, uint64_t now_ns) {
  if (loop->tick_ns == 0) return;
  const uint64_t now_tick = now_ns / loop->tick_ns;
  const uint64_t timeout_ns = options_.idle_timeout_ms * 1'000'000ull;
  while (loop->wheel_tick < now_tick) {
    ++loop->wheel_tick;
    auto& bucket = loop->wheel[loop->wheel_tick % kWheelBuckets];
    if (bucket.empty()) continue;
    auto entries = std::move(bucket);
    bucket.clear();
    for (const auto& [slot, gen] : entries) {
      if (slot >= loop->conns.size()) continue;
      Conn& c = loop->conns[slot];
      if (!c.in_use || c.gen != gen || c.dead) continue;
      if (c.last_activity_ns + timeout_ns <= now_ns) {
        loop->idle_reaped.fetch_add(1, std::memory_order_relaxed);
        CloseConn(loop, slot);
      } else {
        ScheduleIdle(loop, slot);
      }
    }
  }
}

void EventLoopPool::LoopMain(Loop* loop) {
  std::array<epoll_event, 256> events;
  while (!stopping_.load(std::memory_order_acquire)) {
    if (!loop->freed_pending.empty()) {
      loop->free_slots.insert(loop->free_slots.end(),
                              loop->freed_pending.begin(),
                              loop->freed_pending.end());
      loop->freed_pending.clear();
    }
    int timeout_ms = -1;
    if (loop->tick_ns > 0) {
      const uint64_t now = NowNs();
      const uint64_t next_tick_ns = (loop->wheel_tick + 1) * loop->tick_ns;
      timeout_ms =
          next_tick_ns > now
              ? static_cast<int>((next_tick_ns - now) / 1'000'000 + 1)
              : 0;
    }
    const int n = ::epoll_wait(loop->epoll_fd.get(), events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      const uint32_t ev = events[i].events;
      if (tag == kWakeTag) {
        uint64_t drain = 0;
        [[maybe_unused]] ssize_t r =
            ::read(loop->wake_fd.get(), &drain, sizeof(drain));
        RunPosted(loop);
        if (stopping_.load(std::memory_order_acquire)) break;
        continue;
      }
      if (tag == kListenTag) {
        HandleAccept(loop);
        continue;
      }
      const uint32_t slot = static_cast<uint32_t>(tag);
      if (slot >= loop->conns.size() || !loop->conns[slot].in_use) continue;
      Conn& c = loop->conns[slot];
      if (ev & EPOLLOUT) {
        c.want_out_edge = false;
        if (c.out_head < c.out.size()) FlushConn(loop, &c);
        if (c.dead) {
          CloseConn(loop, slot);
          continue;
        }
      }
      if (ev & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
        if (c.paused) {
          // Not reading this connection; a hangup still has to free it.
          if (ev & (EPOLLHUP | EPOLLERR)) CloseConn(loop, slot);
          continue;
        }
        ProcessInput(loop, slot);
      }
    }
    AdvanceWheel(loop, NowNs());
  }
  // Drain anything still posted, then drop every connection this loop
  // owns. Pendings in flight resolve later through Post, which runs
  // their closures inline once the pool is stopped.
  RunPosted(loop);
  for (uint32_t slot = 0; slot < loop->conns.size(); ++slot) {
    if (loop->conns[slot].in_use) {
      FlushConn(loop, &loop->conns[slot]);  // best effort, nonblocking
      CloseConn(loop, slot);
    }
  }
}

EventLoopPool::PoolStats EventLoopPool::Stats() const {
  PoolStats stats;
  for (const auto& loop : loops_) {
    const uint64_t open = loop->open_conns.load(std::memory_order_relaxed);
    stats.accepted += loop->accepted.load(std::memory_order_relaxed);
    stats.rejected += loop->rejected.load(std::memory_order_relaxed);
    stats.idle_reaped += loop->idle_reaped.load(std::memory_order_relaxed);
    stats.write_queue_bytes +=
        loop->write_queue_bytes.load(std::memory_order_relaxed);
    stats.open_connections += open;
    stats.loop_connections.push_back(open);
  }
  return stats;
}

}  // namespace roadnet
