#ifndef ROADNET_SERVER_CLIENT_H_
#define ROADNET_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "server/socket.h"
#include "server/wire.h"

namespace roadnet {

// Blocking request-reply client for the query service's wire protocol
// (server/wire.h). One connection, one request in flight — the building
// block of the closed-loop load generator and the tests. Not
// thread-safe; use one client per thread.
class BlockingClient {
 public:
  // Connects to host:port; nullptr + *error on failure.
  static std::unique_ptr<BlockingClient> Connect(const std::string& host,
                                                 uint16_t port,
                                                 std::string* error);

  // Sends a QUERY frame and reads its reply. False on transport or
  // protocol failure (*error set); server-side rejections (OVERLOADED,
  // DEADLINE_EXCEEDED, ...) are successful round-trips reported in
  // resp->status.
  bool Query(const wire::QueryRequest& req, wire::QueryResponse* resp,
             std::string* error);

  // Sends a KNN_QUERY frame and reads its reply. Same failure contract
  // as Query(); a short (or empty) entry list with kOk is a complete
  // answer.
  bool Knn(const wire::KnnRequest& req, wire::KnnResponse* resp,
           std::string* error);

  // Sends a ONE_TO_MANY_QUERY frame and reads its reply.
  bool OneToMany(const wire::OneToManyRequest& req, wire::KnnResponse* resp,
                 std::string* error);

  // Fetches the server's STATS snapshot.
  bool GetStats(wire::StatsResponse* stats, std::string* error);

  // Retunes the server's tracer (TRACE_CONFIG frame); *effective, if
  // non-null, receives the settings now in effect.
  bool ConfigureTracing(const wire::TraceConfigRequest& req,
                        wire::TraceConfigResponse* effective,
                        std::string* error);

  // Sends the admin SHUTDOWN frame and waits for the ack. The server
  // then drains: this and every other connection will be closed once
  // in-flight requests are answered.
  bool SendShutdown(std::string* error);

 private:
  explicit BlockingClient(ScopedFd fd) : fd_(std::move(fd)) {}

  // One request-reply round trip.
  bool RoundTrip(const std::string& request, std::string* reply_body,
                 std::string* error);

  ScopedFd fd_;
};

// Pipelined client for the QUERY2 frame pair: many requests may be
// outstanding on the one connection, each tagged with a caller-chosen
// request_id that the server echoes in the (possibly out-of-order)
// reply. Send and Recv are independent blocking calls — the caller
// decides the window. Not thread-safe; one client per thread.
class PipelinedClient {
 public:
  // Connects to host:port; nullptr + *error on failure.
  static std::unique_ptr<PipelinedClient> Connect(const std::string& host,
                                                  uint16_t port,
                                                  std::string* error);

  // Writes one QUERY2 frame (req.request_id is the correlation tag).
  // Does not wait for the reply.
  bool Send(const wire::QueryRequest& req, std::string* error);

  // Blocks for the next QUERY_REPLY2 frame, in whatever order the
  // server completed them. Match resp->request_id against your sends.
  bool Recv(wire::QueryResponse* resp, std::string* error);

 private:
  explicit PipelinedClient(ScopedFd fd) : fd_(std::move(fd)) {}

  ScopedFd fd_;
};

}  // namespace roadnet

#endif  // ROADNET_SERVER_CLIENT_H_
