#ifndef ROADNET_SERVER_WIRE_H_
#define ROADNET_SERVER_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/types.h"

namespace roadnet {
namespace wire {

// Compact length-prefixed binary wire protocol of the query service.
//
// Every frame is [u32 body_length][body]; the body starts with a u8
// message type followed by the type's fixed layout (all integers
// little-endian, matching io/binary.h). The protocol is strict
// request-reply: a client sends QUERY / STATS / SHUTDOWN frames and
// reads exactly one reply frame per request.
//
//   QUERY          u8 technique, u8 kind, u32 source, u32 target,
//                  u64 deadline_micros (0 = none, measured from receipt)
//   QUERY_REPLY    u8 status, u64 distance, u64 server_latency_ns,
//                  u32 path_len, u32 vertex * path_len
//   STATS          (empty)
//   STATS_REPLY    u8 version (= kStatsVersion), lifetime counters +
//                  live gauges + per-stage trace histogram table (see
//                  StatsResponse)
//   SHUTDOWN       (empty; admin request: ack, then drain the server)
//   SHUTDOWN_REPLY (empty)
//   TRACE_CONFIG   u8 set_mask (bit0 = sample_every, bit1 = slow_micros),
//                  u64 sample_every, u64 slow_micros (admin request:
//                  retune the tracer at runtime)
//   TRACE_CONFIG_REPLY  u64 sample_every, u64 slow_micros now in effect
//   KNN_QUERY      u8 method (0 = bucket-CH, 1 = IER), u32 category,
//                  u32 k, u32 source, u64 deadline_micros
//   KNN_REPLY      u8 status, u64 server_latency_ns, u32 count,
//                  (u32 vertex, u64 distance) * count — ascending by
//                  (distance, vertex); count < k is an OK short answer
//   ONE_TO_MANY_QUERY  u32 category, u32 source, u64 deadline_micros
//   ONE_TO_MANY_REPLY  same layout as KNN_REPLY; every reachable POI
//   QUERY2         u64 request_id, then the QUERY layout. The pipelined
//                  frame version: a client may have many QUERY2 frames
//                  outstanding on one connection; replies can complete
//                  out of order and are matched by request_id.
//   QUERY_REPLY2   u64 request_id (echoed), then the QUERY_REPLY layout
//
// Frame bodies are capped (kMaxFrameBytes) so a corrupt or hostile
// length prefix cannot trigger an unbounded allocation.

enum MessageType : uint8_t {
  kQuery = 1,
  kStats = 2,
  kShutdown = 3,
  kQueryReply = 4,
  kStatsReply = 5,
  kShutdownReply = 6,
  kTraceConfig = 7,
  kTraceConfigReply = 8,
  kKnnQuery = 9,
  kKnnReply = 10,
  kOneToManyQuery = 11,
  kOneToManyReply = 12,
  kQueryV2 = 13,
  kQueryReplyV2 = 14,
};

enum class QueryKind : uint8_t {
  kDistance = 0,
  kPath = 1,
};

enum class Status : uint8_t {
  kOk = 0,
  kUnreachable = 1,
  // Malformed request: vertex id out of range, bad kind, or a technique
  // id the server does not serve.
  kBadRequest = 2,
  // Load shed at admission: the bounded request queue was full.
  kOverloaded = 3,
  // Load shed at dispatch: the request waited in the queue past its
  // deadline and was dropped without running.
  kDeadlineExceeded = 4,
  // The server is draining; this request was not admitted.
  kShuttingDown = 5,
};

// Technique ids carried in QUERY frames. kAnyTechnique matches whatever
// index the server was started with; a specific id is validated against
// it so a client cannot silently read answers from the wrong index.
inline constexpr uint8_t kAnyTechnique = 0;
uint8_t TechniqueId(const std::string& name);    // 0 = unknown
std::string TechniqueName(uint8_t id);           // "?" = unknown

const char* StatusName(Status s);

struct QueryRequest {
  uint8_t technique = kAnyTechnique;
  QueryKind kind = QueryKind::kDistance;
  VertexId source = 0;
  VertexId target = 0;
  uint64_t deadline_micros = 0;
  // Client-chosen correlation id; carried only by QUERY2 frames and
  // echoed verbatim in the matching QUERY_REPLY2.
  uint64_t request_id = 0;
};

struct QueryResponse {
  Status status = Status::kOk;
  Distance distance = 0;
  // Receipt-to-completion time on the server (includes queueing).
  uint64_t server_latency_ns = 0;
  std::vector<VertexId> path;  // filled for kPath queries that succeed
  // Echo of QueryRequest::request_id; meaningful only in QUERY_REPLY2.
  uint64_t request_id = 0;
};

// kNN technique ids carried in KNN_QUERY frames. Unlike point-to-point
// techniques there is no "any": the client always names the algorithm
// it wants measured.
enum class KnnMethod : uint8_t {
  kBucketCh = 0,  // bucket-based CH join
  kIer = 1,       // incremental Euclidean restriction over the oracle
};

const char* KnnMethodName(KnnMethod m);

struct KnnRequest {
  KnnMethod method = KnnMethod::kBucketCh;
  uint32_t category = 0;
  uint32_t k = 0;
  VertexId source = 0;
  uint64_t deadline_micros = 0;
};

struct OneToManyRequest {
  uint32_t category = 0;
  VertexId source = 0;
  uint64_t deadline_micros = 0;
};

// Shared reply payload of KNN_REPLY and ONE_TO_MANY_REPLY (the frames
// differ only in type byte so a client can never mistake one family's
// answer for the other's). Entries are (vertex, network distance)
// sorted ascending by (distance, vertex id). A list shorter than k —
// small category, unreachable POIs, or an empty category — is a
// well-formed kOk answer, not an error.
struct KnnResponse {
  Status status = Status::kOk;
  uint64_t server_latency_ns = 0;
  std::vector<std::pair<VertexId, Distance>> entries;
};

// STATS_REPLY version byte. v2 added the live gauges, trace counters,
// and the per-stage histogram table; v3 added the event-loop core's
// gauges (per-loop connection counts, total write-queue bytes, idle
// connections reaped). Other versions are rejected by
// DecodeStatsResponse so a stale client fails loudly rather than
// misreading shifted fields.
inline constexpr uint8_t kStatsVersion = 3;

// One row of the per-stage latency table in a STATS v2 reply: the
// lifecycle stage id (obs/trace.h TraceStage) and its merged histogram
// summary in nanoseconds.
struct StageStatWire {
  uint8_t stage = 0;
  uint64_t count = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
};

// STATS_REPLY payload: the server's lifetime counters and latency
// percentiles (all u64, percentiles in nanoseconds), plus v2's live
// gauges — a point-in-time snapshot, not a lifetime count — and the
// tracer's per-stage breakdown.
struct StatsResponse {
  uint64_t served = 0;            // queries answered kOk / kUnreachable
  uint64_t shed_overloaded = 0;   // rejected with kOverloaded
  uint64_t shed_deadline = 0;     // rejected with kDeadlineExceeded
  uint64_t shed_draining = 0;     // rejected with kShuttingDown
  uint64_t bad_requests = 0;      // rejected with kBadRequest
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;  // closed at the connection cap
  uint64_t distance_count = 0;
  uint64_t distance_p50_ns = 0;
  uint64_t distance_p99_ns = 0;
  uint64_t path_count = 0;
  uint64_t path_p50_ns = 0;
  uint64_t path_p99_ns = 0;
  // --- v2 live gauges (instantaneous) ---
  uint64_t queue_depth = 0;        // requests waiting in the bounded queue
  uint64_t in_flight_batches = 0;  // engine batches currently executing
  uint64_t open_connections = 0;   // sockets with a live handler
  // --- v2 tracer counters (lifetime) ---
  uint64_t traces_finished = 0;
  uint64_t traces_captured = 0;
  uint64_t traces_dropped = 0;   // lost to a full trace ring
  uint64_t traces_slow = 0;      // exceeded the slow threshold
  // --- v3 event-loop core ---
  uint64_t write_queue_bytes = 0;  // gauge: queued reply bytes, all conns
  uint64_t idle_reaped = 0;        // lifetime: idle connections closed
  // Gauge: open connections owned by each event loop (sums to
  // open_connections).
  std::vector<uint64_t> loop_connections;
  // Per-stage latency table; empty until tracing has seen a request.
  std::vector<StageStatWire> stages;
};

// TRACE_CONFIG payload: runtime tracer retuning. Unset knobs (mask bit
// clear) keep their current value; the reply echoes what is in effect.
struct TraceConfigRequest {
  std::optional<uint64_t> sample_every;  // 0 disables head sampling
  std::optional<uint64_t> slow_micros;   // obs/trace.h kTraceSlowDisabled = off
};

struct TraceConfigResponse {
  uint64_t sample_every = 0;
  uint64_t slow_micros = 0;
};

// Upper bound on a frame body. Large enough for a path response over
// any graph this repo handles (16M vertices * 4 bytes), small enough to
// bound a malicious length prefix.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

// --- Body encoding (the returned string excludes the length prefix) ---

std::string EncodeQueryRequest(const QueryRequest& req);
std::string EncodeQueryResponse(const QueryResponse& resp);
// Pipelined frame version: same payloads prefixed with request_id.
std::string EncodeQueryRequestV2(const QueryRequest& req);
std::string EncodeQueryResponseV2(const QueryResponse& resp);
std::string EncodeStatsRequest();
std::string EncodeStatsResponse(const StatsResponse& stats);
std::string EncodeShutdownRequest();
std::string EncodeShutdownResponse();
std::string EncodeTraceConfigRequest(const TraceConfigRequest& req);
std::string EncodeTraceConfigResponse(const TraceConfigResponse& resp);
std::string EncodeKnnRequest(const KnnRequest& req);
std::string EncodeOneToManyRequest(const OneToManyRequest& req);
// `reply_type` selects kKnnReply or kOneToManyReply.
std::string EncodeKnnResponse(MessageType reply_type,
                              const KnnResponse& resp);

// --- Body decoding. nullopt on short/trailing bytes or a bad type. ---

// Peeks the message type of a body (nullopt when empty).
std::optional<MessageType> PeekType(const std::string& body);

std::optional<QueryRequest> DecodeQueryRequest(const std::string& body);
std::optional<QueryResponse> DecodeQueryResponse(const std::string& body);
std::optional<QueryRequest> DecodeQueryRequestV2(const std::string& body);
std::optional<QueryResponse> DecodeQueryResponseV2(const std::string& body);
std::optional<StatsResponse> DecodeStatsResponse(const std::string& body);
std::optional<TraceConfigRequest> DecodeTraceConfigRequest(
    const std::string& body);
std::optional<TraceConfigResponse> DecodeTraceConfigResponse(
    const std::string& body);
std::optional<KnnRequest> DecodeKnnRequest(const std::string& body);
std::optional<OneToManyRequest> DecodeOneToManyRequest(
    const std::string& body);
std::optional<KnnResponse> DecodeKnnResponse(MessageType reply_type,
                                             const std::string& body);

}  // namespace wire
}  // namespace roadnet

#endif  // ROADNET_SERVER_WIRE_H_
