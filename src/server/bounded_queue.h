#ifndef ROADNET_SERVER_BOUNDED_QUEUE_H_
#define ROADNET_SERVER_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

namespace roadnet {

// Bounded multi-producer queue behind the query server's admission
// control: connection handlers TryPush (a full queue is an immediate
// OVERLOADED response — explicit load shedding, not silent buffering)
// and the dispatcher drains batches. Closing the queue wakes the
// consumer once the backlog is empty, which is what makes drain-then-
// shutdown work: requests admitted before Close() are always dispatched.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  // Enqueues unless the queue is full or closed; never blocks.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_cv_.notify_one();
    return true;
  }

  // Blocks until at least one item is available, then moves up to
  // `max_items` into *out (cleared first). Returns false only when the
  // queue is closed and fully drained — the consumer's exit condition.
  bool PopBatch(std::vector<T>* out, size_t max_items) {
    out->clear();
    std::unique_lock<std::mutex> lock(mu_);
    ready_cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    const size_t take = std::min(max_items, items_.size());
    for (size_t i = 0; i < take; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return true;
  }

  // Rejects future pushes; the consumer keeps draining what is queued.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_cv_.notify_all();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t Capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace roadnet

#endif  // ROADNET_SERVER_BOUNDED_QUEUE_H_
