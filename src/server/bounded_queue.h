#ifndef ROADNET_SERVER_BOUNDED_QUEUE_H_
#define ROADNET_SERVER_BOUNDED_QUEUE_H_

#include <algorithm>
#include <cstddef>
#include <deque>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace roadnet {

// Bounded multi-producer queue behind the query server's admission
// control: connection handlers TryPush (a full queue is an immediate
// OVERLOADED response — explicit load shedding, not silent buffering)
// and the dispatcher drains batches. Closing the queue wakes the
// consumer once the backlog is empty, which is what makes drain-then-
// shutdown work: requests admitted before Close() are always dispatched.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  // Enqueues unless the queue is full or closed; never blocks.
  bool TryPush(T item) ROADNET_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_cv_.NotifyOne();
    return true;
  }

  // Blocks until at least one item is available, then moves up to
  // `max_items` into *out (cleared first). Returns false only when the
  // queue is closed and fully drained — the consumer's exit condition.
  bool PopBatch(std::vector<T>* out, size_t max_items) ROADNET_EXCLUDES(mu_) {
    out->clear();
    MutexLock lock(mu_);
    // Explicit wait loop (not the predicate overload): the loop body is
    // ordinary code under `lock`, which thread safety analysis checks
    // directly — a predicate lambda would need its own annotation.
    while (!closed_ && items_.empty()) ready_cv_.Wait(lock);
    if (items_.empty()) return false;  // closed and drained
    const size_t take = std::min(max_items, items_.size());
    for (size_t i = 0; i < take; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return true;
  }

  // Rejects future pushes; the consumer keeps draining what is queued.
  void Close() ROADNET_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    ready_cv_.NotifyAll();
  }

  size_t Size() const ROADNET_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }

  size_t Capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  CondVar ready_cv_;
  std::deque<T> items_ ROADNET_GUARDED_BY(mu_);
  bool closed_ ROADNET_GUARDED_BY(mu_) = false;
};

}  // namespace roadnet

#endif  // ROADNET_SERVER_BOUNDED_QUEUE_H_
