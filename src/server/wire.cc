#include "server/wire.h"

#include <cstring>

namespace roadnet {
namespace wire {

namespace {

// Append/read little-endian scalars on a std::string buffer. The wire
// format shares io/binary.h's little-endian-only contract.
template <typename T>
void Append(std::string* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

// Cursor-based reader; Take() fails (returns false) on short input.
struct Reader {
  const std::string& body;
  size_t pos = 0;
  bool ok = true;

  template <typename T>
  bool Take(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (!ok || pos + sizeof(T) > body.size()) {
      ok = false;
      return false;
    }
    std::memcpy(value, body.data() + pos, sizeof(T));
    pos += sizeof(T);
    return true;
  }

  // Whole body consumed, nothing trailing.
  bool Done() const { return ok && pos == body.size(); }
};

}  // namespace

// Keep in sync with server::MakeIndex (index_factory.cc): these are the
// techniques the serve command can host.
uint8_t TechniqueId(const std::string& name) {
  if (name == "any") return kAnyTechnique;
  if (name == "bidi") return 1;
  if (name == "ch") return 2;
  if (name == "alt") return 3;
  if (name == "hl") return 4;
  return 0;
}

std::string TechniqueName(uint8_t id) {
  switch (id) {
    case kAnyTechnique: return "any";
    case 1: return "bidi";
    case 2: return "ch";
    case 3: return "alt";
    case 4: return "hl";
    default: return "?";
  }
}

const char* StatusName(Status s) {
  switch (s) {
    case Status::kOk: return "OK";
    case Status::kUnreachable: return "UNREACHABLE";
    case Status::kBadRequest: return "BAD_REQUEST";
    case Status::kOverloaded: return "OVERLOADED";
    case Status::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case Status::kShuttingDown: return "SHUTTING_DOWN";
  }
  return "?";
}

std::string EncodeQueryRequest(const QueryRequest& req) {
  std::string body;
  body.reserve(1 + 1 + 1 + 4 + 4 + 8);
  Append<uint8_t>(&body, kQuery);
  Append<uint8_t>(&body, req.technique);
  Append<uint8_t>(&body, static_cast<uint8_t>(req.kind));
  Append<uint32_t>(&body, req.source);
  Append<uint32_t>(&body, req.target);
  Append<uint64_t>(&body, req.deadline_micros);
  return body;
}

std::optional<QueryRequest> DecodeQueryRequest(const std::string& body) {
  Reader r{body};
  uint8_t type = 0, kind = 0;
  QueryRequest req;
  r.Take(&type);
  r.Take(&req.technique);
  r.Take(&kind);
  r.Take(&req.source);
  r.Take(&req.target);
  r.Take(&req.deadline_micros);
  if (!r.Done() || type != kQuery || kind > 1) return std::nullopt;
  req.kind = static_cast<QueryKind>(kind);
  return req;
}

std::string EncodeQueryResponse(const QueryResponse& resp) {
  std::string body;
  body.reserve(1 + 1 + 8 + 8 + 4 + resp.path.size() * sizeof(VertexId));
  Append<uint8_t>(&body, kQueryReply);
  Append<uint8_t>(&body, static_cast<uint8_t>(resp.status));
  Append<uint64_t>(&body, resp.distance);
  Append<uint64_t>(&body, resp.server_latency_ns);
  Append<uint32_t>(&body, static_cast<uint32_t>(resp.path.size()));
  for (VertexId v : resp.path) Append<uint32_t>(&body, v);
  return body;
}

std::optional<QueryResponse> DecodeQueryResponse(const std::string& body) {
  Reader r{body};
  uint8_t type = 0, status = 0;
  QueryResponse resp;
  uint32_t path_len = 0;
  r.Take(&type);
  r.Take(&status);
  r.Take(&resp.distance);
  r.Take(&resp.server_latency_ns);
  r.Take(&path_len);
  if (!r.ok || type != kQueryReply ||
      status > static_cast<uint8_t>(Status::kShuttingDown)) {
    return std::nullopt;
  }
  // The remaining bytes must be exactly the declared path.
  if (body.size() - r.pos != size_t{path_len} * sizeof(uint32_t)) {
    return std::nullopt;
  }
  resp.status = static_cast<Status>(status);
  resp.path.resize(path_len);
  for (uint32_t i = 0; i < path_len; ++i) r.Take(&resp.path[i]);
  if (!r.Done()) return std::nullopt;
  return resp;
}

std::string EncodeQueryRequestV2(const QueryRequest& req) {
  std::string body;
  body.reserve(1 + 8 + 1 + 1 + 4 + 4 + 8);
  Append<uint8_t>(&body, kQueryV2);
  Append<uint64_t>(&body, req.request_id);
  Append<uint8_t>(&body, req.technique);
  Append<uint8_t>(&body, static_cast<uint8_t>(req.kind));
  Append<uint32_t>(&body, req.source);
  Append<uint32_t>(&body, req.target);
  Append<uint64_t>(&body, req.deadline_micros);
  return body;
}

std::optional<QueryRequest> DecodeQueryRequestV2(const std::string& body) {
  Reader r{body};
  uint8_t type = 0, kind = 0;
  QueryRequest req;
  r.Take(&type);
  r.Take(&req.request_id);
  r.Take(&req.technique);
  r.Take(&kind);
  r.Take(&req.source);
  r.Take(&req.target);
  r.Take(&req.deadline_micros);
  if (!r.Done() || type != kQueryV2 || kind > 1) return std::nullopt;
  req.kind = static_cast<QueryKind>(kind);
  return req;
}

std::string EncodeQueryResponseV2(const QueryResponse& resp) {
  std::string body;
  body.reserve(1 + 8 + 1 + 8 + 8 + 4 + resp.path.size() * sizeof(VertexId));
  Append<uint8_t>(&body, kQueryReplyV2);
  Append<uint64_t>(&body, resp.request_id);
  Append<uint8_t>(&body, static_cast<uint8_t>(resp.status));
  Append<uint64_t>(&body, resp.distance);
  Append<uint64_t>(&body, resp.server_latency_ns);
  Append<uint32_t>(&body, static_cast<uint32_t>(resp.path.size()));
  for (VertexId v : resp.path) Append<uint32_t>(&body, v);
  return body;
}

std::optional<QueryResponse> DecodeQueryResponseV2(const std::string& body) {
  Reader r{body};
  uint8_t type = 0, status = 0;
  QueryResponse resp;
  uint32_t path_len = 0;
  r.Take(&type);
  r.Take(&resp.request_id);
  r.Take(&status);
  r.Take(&resp.distance);
  r.Take(&resp.server_latency_ns);
  r.Take(&path_len);
  if (!r.ok || type != kQueryReplyV2 ||
      status > static_cast<uint8_t>(Status::kShuttingDown)) {
    return std::nullopt;
  }
  // The remaining bytes must be exactly the declared path.
  if (body.size() - r.pos != size_t{path_len} * sizeof(uint32_t)) {
    return std::nullopt;
  }
  resp.status = static_cast<Status>(status);
  resp.path.resize(path_len);
  for (uint32_t i = 0; i < path_len; ++i) r.Take(&resp.path[i]);
  if (!r.Done()) return std::nullopt;
  return resp;
}

std::string EncodeStatsRequest() { return std::string(1, char(kStats)); }

std::string EncodeStatsResponse(const StatsResponse& stats) {
  std::string body;
  Append<uint8_t>(&body, kStatsReply);
  Append<uint8_t>(&body, kStatsVersion);
  Append<uint64_t>(&body, stats.served);
  Append<uint64_t>(&body, stats.shed_overloaded);
  Append<uint64_t>(&body, stats.shed_deadline);
  Append<uint64_t>(&body, stats.shed_draining);
  Append<uint64_t>(&body, stats.bad_requests);
  Append<uint64_t>(&body, stats.connections_accepted);
  Append<uint64_t>(&body, stats.connections_rejected);
  Append<uint64_t>(&body, stats.distance_count);
  Append<uint64_t>(&body, stats.distance_p50_ns);
  Append<uint64_t>(&body, stats.distance_p99_ns);
  Append<uint64_t>(&body, stats.path_count);
  Append<uint64_t>(&body, stats.path_p50_ns);
  Append<uint64_t>(&body, stats.path_p99_ns);
  Append<uint64_t>(&body, stats.queue_depth);
  Append<uint64_t>(&body, stats.in_flight_batches);
  Append<uint64_t>(&body, stats.open_connections);
  Append<uint64_t>(&body, stats.traces_finished);
  Append<uint64_t>(&body, stats.traces_captured);
  Append<uint64_t>(&body, stats.traces_dropped);
  Append<uint64_t>(&body, stats.traces_slow);
  Append<uint64_t>(&body, stats.write_queue_bytes);
  Append<uint64_t>(&body, stats.idle_reaped);
  Append<uint8_t>(&body, static_cast<uint8_t>(stats.loop_connections.size()));
  for (uint64_t c : stats.loop_connections) Append<uint64_t>(&body, c);
  Append<uint8_t>(&body, static_cast<uint8_t>(stats.stages.size()));
  for (const StageStatWire& s : stats.stages) {
    Append<uint8_t>(&body, s.stage);
    Append<uint64_t>(&body, s.count);
    Append<uint64_t>(&body, s.p50_ns);
    Append<uint64_t>(&body, s.p99_ns);
  }
  return body;
}

std::optional<StatsResponse> DecodeStatsResponse(const std::string& body) {
  Reader r{body};
  uint8_t type = 0, version = 0;
  StatsResponse s;
  r.Take(&type);
  r.Take(&version);
  if (!r.ok || type != kStatsReply || version != kStatsVersion) {
    return std::nullopt;
  }
  r.Take(&s.served);
  r.Take(&s.shed_overloaded);
  r.Take(&s.shed_deadline);
  r.Take(&s.shed_draining);
  r.Take(&s.bad_requests);
  r.Take(&s.connections_accepted);
  r.Take(&s.connections_rejected);
  r.Take(&s.distance_count);
  r.Take(&s.distance_p50_ns);
  r.Take(&s.distance_p99_ns);
  r.Take(&s.path_count);
  r.Take(&s.path_p50_ns);
  r.Take(&s.path_p99_ns);
  r.Take(&s.queue_depth);
  r.Take(&s.in_flight_batches);
  r.Take(&s.open_connections);
  r.Take(&s.traces_finished);
  r.Take(&s.traces_captured);
  r.Take(&s.traces_dropped);
  r.Take(&s.traces_slow);
  r.Take(&s.write_queue_bytes);
  r.Take(&s.idle_reaped);
  uint8_t loop_count = 0;
  r.Take(&loop_count);
  for (uint8_t i = 0; i < loop_count && r.ok; ++i) {
    uint64_t c = 0;
    r.Take(&c);
    s.loop_connections.push_back(c);
  }
  uint8_t stage_count = 0;
  r.Take(&stage_count);
  for (uint8_t i = 0; i < stage_count && r.ok; ++i) {
    StageStatWire stat;
    r.Take(&stat.stage);
    r.Take(&stat.count);
    r.Take(&stat.p50_ns);
    r.Take(&stat.p99_ns);
    s.stages.push_back(stat);
  }
  if (!r.Done()) return std::nullopt;
  return s;
}

std::string EncodeShutdownRequest() {
  return std::string(1, char(kShutdown));
}

std::string EncodeShutdownResponse() {
  return std::string(1, char(kShutdownReply));
}

std::string EncodeTraceConfigRequest(const TraceConfigRequest& req) {
  std::string body;
  Append<uint8_t>(&body, kTraceConfig);
  uint8_t mask = 0;
  if (req.sample_every) mask |= 1;
  if (req.slow_micros) mask |= 2;
  Append<uint8_t>(&body, mask);
  Append<uint64_t>(&body, req.sample_every.value_or(0));
  Append<uint64_t>(&body, req.slow_micros.value_or(0));
  return body;
}

std::optional<TraceConfigRequest> DecodeTraceConfigRequest(
    const std::string& body) {
  Reader r{body};
  uint8_t type = 0, mask = 0;
  uint64_t sample = 0, slow = 0;
  r.Take(&type);
  r.Take(&mask);
  r.Take(&sample);
  r.Take(&slow);
  if (!r.Done() || type != kTraceConfig || mask > 3) return std::nullopt;
  TraceConfigRequest req;
  if (mask & 1) req.sample_every = sample;
  if (mask & 2) req.slow_micros = slow;
  return req;
}

std::string EncodeTraceConfigResponse(const TraceConfigResponse& resp) {
  std::string body;
  Append<uint8_t>(&body, kTraceConfigReply);
  Append<uint64_t>(&body, resp.sample_every);
  Append<uint64_t>(&body, resp.slow_micros);
  return body;
}

std::optional<TraceConfigResponse> DecodeTraceConfigResponse(
    const std::string& body) {
  Reader r{body};
  uint8_t type = 0;
  TraceConfigResponse resp;
  r.Take(&type);
  r.Take(&resp.sample_every);
  r.Take(&resp.slow_micros);
  if (!r.Done() || type != kTraceConfigReply) return std::nullopt;
  return resp;
}

const char* KnnMethodName(KnnMethod m) {
  switch (m) {
    case KnnMethod::kBucketCh: return "bucket-ch";
    case KnnMethod::kIer: return "ier";
  }
  return "?";
}

std::string EncodeKnnRequest(const KnnRequest& req) {
  std::string body;
  body.reserve(1 + 1 + 4 + 4 + 4 + 8);
  Append<uint8_t>(&body, kKnnQuery);
  Append<uint8_t>(&body, static_cast<uint8_t>(req.method));
  Append<uint32_t>(&body, req.category);
  Append<uint32_t>(&body, req.k);
  Append<uint32_t>(&body, req.source);
  Append<uint64_t>(&body, req.deadline_micros);
  return body;
}

std::optional<KnnRequest> DecodeKnnRequest(const std::string& body) {
  Reader r{body};
  uint8_t type = 0, method = 0;
  KnnRequest req;
  r.Take(&type);
  r.Take(&method);
  r.Take(&req.category);
  r.Take(&req.k);
  r.Take(&req.source);
  r.Take(&req.deadline_micros);
  if (!r.Done() || type != kKnnQuery ||
      method > static_cast<uint8_t>(KnnMethod::kIer)) {
    return std::nullopt;
  }
  req.method = static_cast<KnnMethod>(method);
  return req;
}

std::string EncodeOneToManyRequest(const OneToManyRequest& req) {
  std::string body;
  body.reserve(1 + 4 + 4 + 8);
  Append<uint8_t>(&body, kOneToManyQuery);
  Append<uint32_t>(&body, req.category);
  Append<uint32_t>(&body, req.source);
  Append<uint64_t>(&body, req.deadline_micros);
  return body;
}

std::optional<OneToManyRequest> DecodeOneToManyRequest(
    const std::string& body) {
  Reader r{body};
  uint8_t type = 0;
  OneToManyRequest req;
  r.Take(&type);
  r.Take(&req.category);
  r.Take(&req.source);
  r.Take(&req.deadline_micros);
  if (!r.Done() || type != kOneToManyQuery) return std::nullopt;
  return req;
}

std::string EncodeKnnResponse(MessageType reply_type,
                              const KnnResponse& resp) {
  std::string body;
  body.reserve(1 + 1 + 8 + 4 + resp.entries.size() * 12);
  Append<uint8_t>(&body, reply_type);
  Append<uint8_t>(&body, static_cast<uint8_t>(resp.status));
  Append<uint64_t>(&body, resp.server_latency_ns);
  Append<uint32_t>(&body, static_cast<uint32_t>(resp.entries.size()));
  for (const auto& [v, d] : resp.entries) {
    Append<uint32_t>(&body, v);
    Append<uint64_t>(&body, d);
  }
  return body;
}

std::optional<KnnResponse> DecodeKnnResponse(MessageType reply_type,
                                             const std::string& body) {
  Reader r{body};
  uint8_t type = 0, status = 0;
  KnnResponse resp;
  uint32_t count = 0;
  r.Take(&type);
  r.Take(&status);
  r.Take(&resp.server_latency_ns);
  r.Take(&count);
  if (!r.ok || type != reply_type ||
      status > static_cast<uint8_t>(Status::kShuttingDown)) {
    return std::nullopt;
  }
  // The remaining bytes must be exactly the declared entry list.
  if (body.size() - r.pos != size_t{count} * 12) return std::nullopt;
  resp.status = static_cast<Status>(status);
  resp.entries.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    r.Take(&resp.entries[i].first);
    r.Take(&resp.entries[i].second);
  }
  if (!r.Done()) return std::nullopt;
  return resp;
}

std::optional<MessageType> PeekType(const std::string& body) {
  if (body.empty()) return std::nullopt;
  const uint8_t t = static_cast<uint8_t>(body[0]);
  if (t < kQuery || t > kQueryReplyV2) return std::nullopt;
  return static_cast<MessageType>(t);
}

}  // namespace wire
}  // namespace roadnet
