#ifndef ROADNET_SERVER_SOCKET_H_
#define ROADNET_SERVER_SOCKET_H_

#include <cstdint>
#include <string>
#include <utility>

namespace roadnet {

// Thin RAII + framing layer over POSIX TCP sockets — just enough for the
// query service's blocking thread-per-connection model; no event loop.

// Owns a file descriptor; closes it on destruction.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { Close(); }

  ScopedFd(ScopedFd&& other) noexcept : fd_(other.Release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.Release();
    }
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() { return std::exchange(fd_, -1); }
  void Close();

 private:
  int fd_ = -1;
};

// Creates a listening TCP socket bound to `port` on all interfaces
// (port 0 picks an ephemeral port; *actual_port reports the choice).
// Invalid ScopedFd + *error on failure.
ScopedFd ListenTcp(uint16_t port, uint16_t* actual_port, std::string* error);

// Blocking connect to host:port. Invalid ScopedFd + *error on failure.
ScopedFd ConnectTcp(const std::string& host, uint16_t port,
                    std::string* error);

// Blocking exact-count read/write (retries on EINTR and partial
// transfers; writes suppress SIGPIPE). ReadFull returns false on EOF or
// error; ReadFullOrEof additionally distinguishes a clean EOF before the
// first byte (*clean_eof), which is how a peer hangs up between frames.
bool WriteFull(int fd, const void* data, size_t size);
bool ReadFull(int fd, void* data, size_t size);
bool ReadFullOrEof(int fd, void* data, size_t size, bool* clean_eof);

// Frame transport: [u32 length][body] with bodies capped at `max_body`.
// ReadFrame returns false on EOF, error, or an oversized length;
// *clean_eof (optional) reports a clean between-frames hangup.
bool WriteFrame(int fd, const std::string& body);
bool ReadFrame(int fd, std::string* body, uint32_t max_body,
               bool* clean_eof = nullptr);

}  // namespace roadnet

#endif  // ROADNET_SERVER_SOCKET_H_
