#ifndef ROADNET_SERVER_INDEX_FACTORY_H_
#define ROADNET_SERVER_INDEX_FACTORY_H_

#include <memory>
#include <string>

#include "graph/graph.h"
#include "routing/path_index.h"

namespace roadnet {
namespace server {

// Builds the index a `roadnet_cli serve` instance hosts. Supported
// technique names (and their wire ids — wire::TechniqueId):
//   "bidi"  bidirectional Dijkstra, no preprocessing
//   "ch"    contraction hierarchies; loads `ch_index_path` if non-empty
//           (a v3 rank-space file written by `roadnet_cli preprocess`;
//           older formats are rejected with a re-run hint), else
//           contracts the graph in-process
//   "alt"   ALT landmarks
//   "hl"    hub labels built from a CH (loaded from `ch_index_path`
//           if non-empty, else contracted in-process); the label index
//           adopts the hierarchy and path queries unpack through it
// Techniques with multi-minute preprocessing on serving-scale graphs
// (TNR, SILC, PCPD) are deliberately not offered here: build them
// offline first if they gain a serialized form.
//
// Returns nullptr + *error on an unknown name or a bad index file. The
// graph must outlive the returned index.
std::unique_ptr<PathIndex> MakeIndex(const std::string& technique,
                                     const Graph& graph,
                                     const std::string& ch_index_path,
                                     std::string* error);

}  // namespace server
}  // namespace roadnet

#endif  // ROADNET_SERVER_INDEX_FACTORY_H_
