#include "server/index_factory.h"

#include <fstream>

#include "alt/alt_index.h"
#include "ch/ch_index.h"
#include "dijkstra/bidirectional.h"

namespace roadnet {
namespace server {

std::unique_ptr<PathIndex> MakeIndex(const std::string& technique,
                                     const Graph& graph,
                                     const std::string& ch_index_path,
                                     std::string* error) {
  if (technique == "bidi") {
    return std::make_unique<BidirectionalDijkstra>(graph);
  }
  if (technique == "alt") {
    return std::make_unique<AltIndex>(graph);
  }
  if (technique == "ch") {
    if (ch_index_path.empty()) {
      return std::make_unique<ChIndex>(graph);
    }
    std::ifstream file(ch_index_path, std::ios::binary);
    if (!file) {
      if (error != nullptr) *error = "cannot open " + ch_index_path;
      return nullptr;
    }
    return ChIndex::Deserialize(graph, file, error);
  }
  if (error != nullptr) {
    *error = "unknown technique '" + technique +
             "' (expected bidi, ch, or alt)";
  }
  return nullptr;
}

}  // namespace server
}  // namespace roadnet
