#include "server/index_factory.h"

#include <fstream>

#include "alt/alt_index.h"
#include "ch/ch_index.h"
#include "dijkstra/bidirectional.h"
#include "hl/hl_index.h"

namespace roadnet {
namespace server {

std::unique_ptr<PathIndex> MakeIndex(const std::string& technique,
                                     const Graph& graph,
                                     const std::string& ch_index_path,
                                     std::string* error) {
  if (technique == "bidi") {
    return std::make_unique<BidirectionalDijkstra>(graph);
  }
  if (technique == "alt") {
    return std::make_unique<AltIndex>(graph);
  }
  if (technique == "ch") {
    if (ch_index_path.empty()) {
      return std::make_unique<ChIndex>(graph);
    }
    std::ifstream file(ch_index_path, std::ios::binary);
    if (!file) {
      if (error != nullptr) *error = "cannot open " + ch_index_path;
      return nullptr;
    }
    return ChIndex::Deserialize(graph, file, error);
  }
  if (technique == "hl") {
    // Hub labels are derived from a CH; the server builds (or loads)
    // the hierarchy first and the label index adopts it — path queries
    // keep using it for unpacking.
    std::unique_ptr<const ChIndex> ch;
    if (ch_index_path.empty()) {
      ch = std::make_unique<ChIndex>(graph);
    } else {
      std::ifstream file(ch_index_path, std::ios::binary);
      if (!file) {
        if (error != nullptr) *error = "cannot open " + ch_index_path;
        return nullptr;
      }
      ch = ChIndex::Deserialize(graph, file, error);
      if (ch == nullptr) return nullptr;
    }
    return HlIndex::BuildOwning(graph, std::move(ch));
  }
  if (error != nullptr) {
    *error = "unknown technique '" + technique +
             "' (expected bidi, ch, alt, or hl)";
  }
  return nullptr;
}

}  // namespace server
}  // namespace roadnet
