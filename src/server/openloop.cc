#include "server/openloop.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <deque>

#include "server/event_loop.h"
#include "server/socket.h"
#include "util/rng.h"

namespace roadnet {

namespace {

// One pre-generated request: its scheduled arrival (ns since run start)
// and endpoints. Latency is measured from sched_ns, never from the send.
struct ReqRecord {
  uint64_t sched_ns = 0;
  uint32_t source = 0;
  uint32_t target = 0;
};

struct ClientConn {
  ScopedFd fd;
  FrameAssembler assembler;
  std::deque<uint64_t> deferred;  // scheduled, waiting for a pipeline slot
  size_t outstanding = 0;
  std::string out;
  size_t out_head = 0;
  bool want_out = false;  // EPOLLOUT currently armed
  bool dead = false;
};

class OpenLoopDriver {
 public:
  explicit OpenLoopDriver(const OpenLoopOptions& options)
      : options_(options) {}
  ~OpenLoopDriver() {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
  }

  OpenLoopResult Run();

 private:
  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  bool Fail(const std::string& why) {
    if (result_.error.empty()) result_.error = why;
    return false;
  }

  bool ConnectAll();
  // One STATS round trip per connection before the clock starts: the
  // server's accept/registration work (a storm at 10k connections) must
  // not be billed to the first scheduled arrivals.
  bool PrimeAll();
  void BuildSchedule();
  // Moves deferred requests into the wire while pipeline slots are free.
  void Pump(size_t ci);
  void FlushOut(size_t ci);
  void SetWantOut(size_t ci, bool want);
  void OnReadable(size_t ci);
  void KillConn(size_t ci, const char* why);

  const OpenLoopOptions options_;
  std::chrono::steady_clock::time_point epoch_;
  int epoll_fd_ = -1;
  std::vector<ClientConn> conns_;
  std::vector<ReqRecord> reqs_;
  uint64_t next_idx_ = 0;   // next request not yet handed to a connection
  uint64_t lost_ = 0;       // scheduled but unanswerable (connection died)
  uint64_t primed_ = 0;     // priming STATS replies seen
  size_t alive_conns_ = 0;
  OpenLoopResult result_;
};

bool OpenLoopDriver::ConnectAll() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Fail("epoll_create1 failed");
  conns_.resize(options_.connections);
  for (size_t i = 0; i < options_.connections; ++i) {
    std::string err;
    ClientConn& c = conns_[i];
    c.fd = ConnectTcp(options_.host, options_.port, &err);
    if (!c.fd.valid()) {
      return Fail("connect " + std::to_string(i) + ": " + err);
    }
    const int flags = ::fcntl(c.fd.get(), F_GETFL, 0);
    ::fcntl(c.fd.get(), F_SETFL, flags | O_NONBLOCK);
    int one = 1;
    ::setsockopt(c.fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = i;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, c.fd.get(), &ev) != 0) {
      return Fail("epoll_ctl ADD failed");
    }
  }
  alive_conns_ = options_.connections;
  return true;
}

bool OpenLoopDriver::PrimeAll() {
  const std::string stats = wire::EncodeStatsRequest();
  const uint32_t len = static_cast<uint32_t>(stats.size());
  char prefix[4];
  std::memcpy(prefix, &len, 4);
  for (size_t i = 0; i < conns_.size(); ++i) {
    conns_[i].out.append(prefix, 4);
    conns_[i].out.append(stats);
    FlushOut(i);
  }
  epoll_event events[256];
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (primed_ < alive_conns_) {
    if (alive_conns_ == 0) return Fail("all connections died while priming");
    if (std::chrono::steady_clock::now() > deadline) {
      return Fail("priming stalled: server never answered STATS");
    }
    const int n = ::epoll_wait(epoll_fd_, events, 256, 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Fail("epoll_wait failed while priming");
    }
    for (int i = 0; i < n; ++i) {
      const size_t ci = static_cast<size_t>(events[i].data.u64);
      if (conns_[ci].dead) continue;
      if ((events[i].events & EPOLLOUT) != 0) FlushOut(ci);
      if (!conns_[ci].dead &&
          (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
        OnReadable(ci);
      }
    }
  }
  return true;
}

void OpenLoopDriver::BuildSchedule() {
  Rng rng(options_.seed);
  reqs_.resize(options_.total_requests);
  const double rate = options_.rate > 0 ? options_.rate : 1.0;
  double t_ns = 0.0;
  for (uint64_t i = 0; i < options_.total_requests; ++i) {
    double gap_s;
    if (options_.poisson) {
      // Exponential inter-arrival gaps; clamp the log argument away
      // from 0 so a NextDouble() of ~1.0 cannot produce an inf gap.
      double u = 1.0 - rng.NextDouble();
      if (u < 1e-12) u = 1e-12;
      gap_s = -std::log(u) / rate;
    } else {
      gap_s = 1.0 / rate;
    }
    t_ns += gap_s * 1e9;
    reqs_[i].sched_ns = static_cast<uint64_t>(t_ns);
    reqs_[i].source = rng.NextBelow(options_.num_vertices);
    reqs_[i].target = rng.NextBelow(options_.num_vertices);
  }
}

void OpenLoopDriver::SetWantOut(size_t ci, bool want) {
  ClientConn& c = conns_[ci];
  if (c.want_out == want || c.dead) return;
  epoll_event ev{};
  ev.events = want ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
  ev.data.u64 = ci;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd.get(), &ev);
  c.want_out = want;
}

void OpenLoopDriver::Pump(size_t ci) {
  ClientConn& c = conns_[ci];
  if (c.dead) return;
  while (c.outstanding < options_.pipeline && !c.deferred.empty()) {
    const uint64_t idx = c.deferred.front();
    c.deferred.pop_front();
    wire::QueryRequest req;
    req.request_id = idx;
    req.technique = options_.technique;
    req.kind = options_.kind;
    req.source = reqs_[idx].source;
    req.target = reqs_[idx].target;
    req.deadline_micros = options_.deadline_micros;
    const std::string body = wire::EncodeQueryRequestV2(req);
    const uint32_t len = static_cast<uint32_t>(body.size());
    char prefix[4];
    std::memcpy(prefix, &len, 4);
    c.out.append(prefix, 4);
    c.out.append(body);
    c.outstanding++;
    result_.sent++;
  }
  FlushOut(ci);
}

void OpenLoopDriver::FlushOut(size_t ci) {
  ClientConn& c = conns_[ci];
  if (c.dead) return;
  while (c.out_head < c.out.size()) {
    const ssize_t n =
        ::send(c.fd.get(), c.out.data() + c.out_head,
               c.out.size() - c.out_head, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_head += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      SetWantOut(ci, true);
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    KillConn(ci, "send failed");
    return;
  }
  c.out.clear();
  c.out_head = 0;
  SetWantOut(ci, false);
}

void OpenLoopDriver::OnReadable(size_t ci) {
  ClientConn& c = conns_[ci];
  char buf[16 * 1024];
  while (!c.dead) {
    const ssize_t n = ::recv(c.fd.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      c.assembler.Feed(buf, static_cast<size_t>(n));
      std::string body;
      for (;;) {
        const FrameAssembler::Result r = c.assembler.Next(&body);
        if (r == FrameAssembler::Result::kNeedMore) break;
        if (r == FrameAssembler::Result::kError) {
          KillConn(ci, "oversized reply frame");
          return;
        }
        if (wire::PeekType(body) == wire::MessageType::kStatsReply) {
          ++primed_;  // reply to the priming STATS round trip
          continue;
        }
        auto resp = wire::DecodeQueryResponseV2(body);
        if (!resp.has_value()) {
          KillConn(ci, "malformed QUERY_REPLY2 frame");
          return;
        }
        const uint64_t idx = resp->request_id;
        if (idx >= reqs_.size()) {
          KillConn(ci, "reply for unknown request_id");
          return;
        }
        const uint64_t now = NowNs();
        const uint64_t sched = reqs_[idx].sched_ns;
        result_.latency.Record(now > sched ? now - sched : 0);
        result_.status_counts[static_cast<uint8_t>(resp->status)]++;
        result_.received++;
        if (options_.verify_every > 0 && idx % options_.verify_every == 0) {
          result_.samples.push_back({reqs_[idx].source, reqs_[idx].target,
                                     resp->distance,
                                     static_cast<uint8_t>(resp->status)});
        }
        if (c.outstanding > 0) c.outstanding--;
      }
      Pump(ci);
      continue;
    }
    if (n == 0) {
      KillConn(ci, "server closed the connection");
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    KillConn(ci, "recv failed");
    return;
  }
}

void OpenLoopDriver::KillConn(size_t ci, const char* why) {
  ClientConn& c = conns_[ci];
  if (c.dead) return;
  c.dead = true;
  // Everything in flight or queued on this connection will never be
  // answered; count it as lost so the run can still terminate.
  lost_ += c.outstanding + c.deferred.size();
  c.outstanding = 0;
  c.deferred.clear();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c.fd.get(), nullptr);
  c.fd.Close();
  result_.connection_errors++;
  if (alive_conns_ > 0) alive_conns_--;
  if (result_.error.empty()) result_.error = why;
}

OpenLoopResult OpenLoopDriver::Run() {
  result_.offered_qps = options_.rate;
  if (options_.connections == 0 || options_.total_requests == 0 ||
      options_.num_vertices == 0 || options_.pipeline == 0) {
    Fail("invalid open-loop options");
    return std::move(result_);
  }
  if (!ConnectAll()) return std::move(result_);
  if (!PrimeAll()) return std::move(result_);
  BuildSchedule();
  epoch_ = std::chrono::steady_clock::now();

  epoll_event events[256];
  uint64_t last_progress_ns = 0;
  while (result_.received + lost_ < options_.total_requests) {
    if (alive_conns_ == 0) {
      Fail("all connections dead");
      break;
    }
    const uint64_t now = NowNs();
    // Admit every request whose scheduled arrival has passed. Round
    // robin across connections; a full pipeline just defers the send —
    // the schedule stamp is already fixed.
    while (next_idx_ < options_.total_requests &&
           reqs_[next_idx_].sched_ns <= now) {
      size_t ci = static_cast<size_t>(next_idx_ % conns_.size());
      for (size_t probe = 0; probe < conns_.size() && conns_[ci].dead;
           ++probe) {
        ci = (ci + 1) % conns_.size();
      }
      if (conns_[ci].dead) break;  // alive_conns_ check handles it above
      conns_[ci].deferred.push_back(next_idx_);
      ++next_idx_;
      Pump(ci);
    }

    int timeout_ms;
    if (next_idx_ < options_.total_requests) {
      const uint64_t gap = reqs_[next_idx_].sched_ns > now
                               ? reqs_[next_idx_].sched_ns - now
                               : 0;
      // Round up so we never wake before the arrival is actually due.
      timeout_ms = static_cast<int>((gap + 999999) / 1000000);
      if (timeout_ms > 100) timeout_ms = 100;
    } else {
      timeout_ms = 100;
    }
    const int n = ::epoll_wait(epoll_fd_, events, 256, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      Fail("epoll_wait failed");
      break;
    }
    for (int i = 0; i < n; ++i) {
      const size_t ci = static_cast<size_t>(events[i].data.u64);
      if (conns_[ci].dead) continue;
      if ((events[i].events & EPOLLOUT) != 0) FlushOut(ci);
      if (!conns_[ci].dead &&
          (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
        OnReadable(ci);
      }
    }
    if (n > 0) {
      last_progress_ns = NowNs();
    } else if (next_idx_ >= options_.total_requests &&
               NowNs() - last_progress_ns > 15ull * 1000 * 1000 * 1000) {
      Fail("stalled: no replies for 15s after the last send");
      break;
    }
  }

  // Abortive close (RST, no TIME_WAIT): every reply is already in, and a
  // connection-scale sweep would otherwise park tens of thousands of
  // ephemeral ports in TIME_WAIT between measurement points.
  for (ClientConn& c : conns_) {
    if (c.fd.valid()) {
      const linger lg{1, 0};
      ::setsockopt(c.fd.get(), SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
      c.fd.Close();
    }
  }

  result_.elapsed_ns = NowNs();
  if (result_.elapsed_ns > 0) {
    result_.achieved_qps =
        static_cast<double>(result_.received) * 1e9 /
        static_cast<double>(result_.elapsed_ns);
  }
  result_.ok = result_.received == options_.total_requests &&
               result_.error.empty();
  return std::move(result_);
}

}  // namespace

OpenLoopResult RunOpenLoop(const OpenLoopOptions& options) {
  OpenLoopDriver driver(options);
  return driver.Run();
}

}  // namespace roadnet
