#ifndef ROADNET_SERVER_OPENLOOP_H_
#define ROADNET_SERVER_OPENLOOP_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "server/wire.h"

namespace roadnet {

// Open-loop load driver for the pipelined QUERY2 protocol.
//
// Closed-loop clients (BlockingClient in a loop) measure a server that is
// never behind: each client waits for its reply before sending again, so
// offered load collapses exactly when the server degrades — hiding the
// latency cliff. An open-loop driver instead emits requests on a fixed
// arrival schedule regardless of completions, and measures latency from
// the *scheduled* arrival time, so queueing delay under overload is part
// of the number (the coordinated-omission fix).
//
// One thread drives every connection through epoll: requests are
// assigned round-robin, at most `pipeline` outstanding per connection
// (later arrivals on a full connection stay queued client-side but keep
// their original schedule stamp).
struct OpenLoopOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  size_t connections = 1;
  size_t pipeline = 16;        // max outstanding per connection
  double rate = 1000.0;        // offered load, requests/second, all conns
  bool poisson = true;         // exponential gaps; false = uniform spacing
  uint64_t total_requests = 1000;
  uint64_t seed = 1;
  uint32_t num_vertices = 0;   // source/target drawn below this
  uint8_t technique = 0;       // wire technique id (or kAnyTechnique)
  wire::QueryKind kind = wire::QueryKind::kDistance;
  uint64_t deadline_micros = 0;
  // Record every Nth request's (source, target, distance) so the caller
  // can oracle-check a sample after the run. 0 = no samples.
  uint64_t verify_every = 0;
};

struct OpenLoopResult {
  bool ok = false;             // every scheduled request got a reply
  std::string error;           // first fatal problem when !ok
  uint64_t sent = 0;
  uint64_t received = 0;
  uint64_t connection_errors = 0;
  std::array<uint64_t, 256> status_counts{};  // indexed by wire::Status
  Histogram latency;           // ns, scheduled arrival -> reply received
  double offered_qps = 0.0;
  double achieved_qps = 0.0;   // received / wall time
  uint64_t elapsed_ns = 0;

  struct VerifySample {
    uint32_t source = 0;
    uint32_t target = 0;
    uint64_t distance = 0;
    uint8_t status = 0;
  };
  std::vector<VerifySample> samples;
};

// Runs the schedule to completion (or failure) and returns the result.
// Blocking; call from a thread that is not serving the requests.
OpenLoopResult RunOpenLoop(const OpenLoopOptions& options);

}  // namespace roadnet

#endif  // ROADNET_SERVER_OPENLOOP_H_
