#include "server/server.h"

#include <cerrno>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

namespace roadnet {

namespace {

uint64_t ElapsedNanos(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

QueryServer::QueryServer(const PathIndex& index, uint8_t technique_id,
                         uint32_t num_vertices, const ServerOptions& options)
    : index_(index),
      technique_id_(technique_id),
      num_vertices_(num_vertices),
      options_(options),
      engine_(index, options.engine_threads),
      queue_(options.queue_capacity) {}

QueryServer::~QueryServer() { Shutdown(); }

bool QueryServer::Start(std::string* error) {
  listen_fd_ = ListenTcp(options_.port, &port_, error);
  if (!listen_fd_.valid()) return false;
  dispatch_thread_ = std::thread([this] { DispatchLoop(); });
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return true;
}

void QueryServer::RequestShutdown() {
  draining_.store(true);
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

bool QueryServer::WaitForShutdownRequest(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  return shutdown_cv_.wait_for(lock, timeout,
                               [&] { return shutdown_requested_; });
}

void QueryServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (shutdown_done_) return;
    shutdown_done_ = true;
  }
  draining_.store(true);

  // 1. Stop accepting: shutdown() unblocks accept(), then join.
  if (started_) {
    ::shutdown(listen_fd_.get(), SHUT_RDWR);
    accept_thread_.join();
  }

  // 2. Hang up the read side of every connection. Handlers finish the
  // request they are on (the dispatcher is still running and will
  // complete it), write the response, then see EOF and exit.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (Connection& c : conns_) {
      if (c.fd.valid()) ::shutdown(c.fd.get(), SHUT_RD);
    }
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (Connection& c : conns_) {
      if (c.thread.joinable()) c.thread.join();
    }
    conns_.clear();
  }

  // 3. With every producer gone, close the queue; the dispatcher drains
  // whatever is still admitted and exits.
  queue_.Close();
  if (started_) dispatch_thread_.join();
  listen_fd_.Close();
}

void QueryServer::AcceptLoop() {
  while (!draining_.load(std::memory_order_relaxed)) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    const int raw =
        ::accept(listen_fd_.get(), reinterpret_cast<sockaddr*>(&peer),
                 &peer_len);
    if (raw < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down (drain) or fatal
    }
    ScopedFd fd(raw);
    if (draining_.load(std::memory_order_relaxed)) break;

    std::lock_guard<std::mutex> lock(conns_mu_);
    // Reap handlers that already finished so long-lived servers do not
    // accumulate dead threads.
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (it->finished.load(std::memory_order_acquire)) {
        it->thread.join();
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
    // Connection cap: close immediately. The client sees EOF on its
    // first read — connection-level shedding, distinct from the
    // per-request OVERLOADED status.
    if (conns_.size() >= options_.max_connections) {
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      continue;  // ScopedFd closes raw
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    conns_.emplace_back();
    Connection& conn = conns_.back();  // std::list: address is stable
    conn.fd = std::move(fd);
    conn.thread = std::thread([this, &conn] { HandleConnection(&conn); });
  }
}

void QueryServer::Complete(Pending* p, wire::Status status) {
  // Notify while still holding the mutex: the Pending lives on the
  // handler's stack and is destroyed the moment the handler observes
  // done, so an after-unlock notify could touch a dead condvar.
  std::lock_guard<std::mutex> lock(p->mu);
  p->resp.status = status;
  p->resp.server_latency_ns = ElapsedNanos(p->received);
  p->done = true;
  p->cv.notify_one();
}

void QueryServer::HandleConnection(Connection* conn) {
  const int fd = conn->fd.get();
  std::string body;
  // Requests are tiny fixed-size frames; cap far below response sizes.
  constexpr uint32_t kMaxRequestBytes = 1024;
  while (ReadFrame(fd, &body, kMaxRequestBytes)) {
    const auto type = wire::PeekType(body);
    if (!type.has_value()) break;  // garbage: hang up

    if (*type == wire::kStats) {
      if (!WriteFrame(fd, wire::EncodeStatsResponse(Stats()))) break;
      continue;
    }
    if (*type == wire::kShutdown) {
      // Ack first so the admin client gets a reply, then flag the drain;
      // the owner thread (WaitForShutdownRequest) runs Shutdown().
      WriteFrame(fd, wire::EncodeShutdownResponse());
      RequestShutdown();
      continue;  // drain will SHUT_RD this socket
    }
    if (*type != wire::kQuery) break;

    const auto req = wire::DecodeQueryRequest(body);
    Pending pending;
    pending.received = std::chrono::steady_clock::now();
    if (!req.has_value() || req->source >= num_vertices_ ||
        req->target >= num_vertices_ ||
        (req->technique != wire::kAnyTechnique &&
         req->technique != technique_id_)) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      pending.resp.status = wire::Status::kBadRequest;
      pending.resp.server_latency_ns = ElapsedNanos(pending.received);
      if (!WriteFrame(fd, wire::EncodeQueryResponse(pending.resp))) break;
      continue;
    }
    pending.req = *req;

    wire::Status shed = wire::Status::kOk;
    if (draining_.load(std::memory_order_relaxed)) {
      shed = wire::Status::kShuttingDown;
      shed_draining_.fetch_add(1, std::memory_order_relaxed);
    } else if (!queue_.TryPush(&pending)) {
      shed = wire::Status::kOverloaded;
      shed_overloaded_.fetch_add(1, std::memory_order_relaxed);
    }
    if (shed != wire::Status::kOk) {
      pending.resp.status = shed;
      pending.resp.server_latency_ns = ElapsedNanos(pending.received);
      if (!WriteFrame(fd, wire::EncodeQueryResponse(pending.resp))) break;
      continue;
    }
    {
      std::unique_lock<std::mutex> lock(pending.mu);
      pending.cv.wait(lock, [&] { return pending.done; });
    }
    if (!WriteFrame(fd, wire::EncodeQueryResponse(pending.resp))) break;
  }
  conn->finished.store(true, std::memory_order_release);
}

void QueryServer::RunSubBatch(std::vector<Pending*>& reqs, bool paths) {
  if (reqs.empty()) return;
  std::vector<std::pair<VertexId, VertexId>> queries;
  queries.reserve(reqs.size());
  for (const Pending* p : reqs) {
    queries.emplace_back(p->req.source, p->req.target);
  }
  BatchOptions options;
  options.collect_paths = paths;
  // The engine's per-query histogram would only cover index time; the
  // server reports receipt-to-completion latency instead (recorded
  // below), so skip the double measurement.
  options.record_latencies = false;
  BatchResult result = engine_.Run(queries, options);

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    Histogram& latency = paths ? path_latency_ : distance_latency_;
    for (size_t i = 0; i < reqs.size(); ++i) {
      Pending* p = reqs[i];
      p->resp.distance = result.distances[i];
      if (paths) p->resp.path = std::move(result.paths[i]);
      latency.Record(ElapsedNanos(p->received));
    }
    counters_ += result.stats.counters;
  }
  served_.fetch_add(reqs.size(), std::memory_order_relaxed);
  for (size_t i = 0; i < reqs.size(); ++i) {
    Complete(reqs[i], result.distances[i] == kInfDistance
                          ? wire::Status::kUnreachable
                          : wire::Status::kOk);
  }
}

void QueryServer::DispatchLoop() {
  std::vector<Pending*> batch;
  std::vector<Pending*> distance_reqs;
  std::vector<Pending*> path_reqs;
  while (queue_.PopBatch(&batch, options_.max_dispatch_batch)) {
    distance_reqs.clear();
    path_reqs.clear();
    const auto now = std::chrono::steady_clock::now();
    for (Pending* p : batch) {
      // Deadline enforcement happens at dispatch: a request that already
      // waited past its budget is shed without occupying a worker.
      if (p->req.deadline_micros > 0) {
        const auto waited =
            std::chrono::duration_cast<std::chrono::microseconds>(
                now - p->received)
                .count();
        if (waited > static_cast<int64_t>(p->req.deadline_micros)) {
          shed_deadline_.fetch_add(1, std::memory_order_relaxed);
          Complete(p, wire::Status::kDeadlineExceeded);
          continue;
        }
      }
      (p->req.kind == wire::QueryKind::kPath ? path_reqs : distance_reqs)
          .push_back(p);
    }
    RunSubBatch(distance_reqs, /*paths=*/false);
    RunSubBatch(path_reqs, /*paths=*/true);
  }
}

wire::StatsResponse QueryServer::Stats() const {
  wire::StatsResponse s;
  s.served = served_.load(std::memory_order_relaxed);
  s.shed_overloaded = shed_overloaded_.load(std::memory_order_relaxed);
  s.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  s.shed_draining = shed_draining_.load(std::memory_order_relaxed);
  s.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_rejected =
      connections_rejected_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(stats_mu_);
  s.distance_count = distance_latency_.Count();
  s.distance_p50_ns = distance_latency_.ValueAtQuantile(0.50);
  s.distance_p99_ns = distance_latency_.ValueAtQuantile(0.99);
  s.path_count = path_latency_.Count();
  s.path_p50_ns = path_latency_.ValueAtQuantile(0.50);
  s.path_p99_ns = path_latency_.ValueAtQuantile(0.99);
  return s;
}

void QueryServer::ExportMetrics(MetricsRegistry* registry) const {
  const wire::StatsResponse s = Stats();
  const std::vector<std::pair<std::string, std::string>> labels = {
      {"command", "serve"}, {"method", index_.Name()}};
  registry->Add("served", static_cast<double>(s.served), labels);
  registry->Add("shed_overloaded", static_cast<double>(s.shed_overloaded),
                labels);
  registry->Add("shed_deadline", static_cast<double>(s.shed_deadline),
                labels);
  registry->Add("shed_draining", static_cast<double>(s.shed_draining),
                labels);
  registry->Add("bad_requests", static_cast<double>(s.bad_requests), labels);
  registry->Add("connections_accepted",
                static_cast<double>(s.connections_accepted), labels);
  registry->Add("connections_rejected",
                static_cast<double>(s.connections_rejected), labels);
  std::lock_guard<std::mutex> lock(stats_mu_);
  auto with_endpoint = [&labels](const char* endpoint) {
    auto l = labels;
    l.emplace_back("endpoint", endpoint);
    return l;
  };
  registry->AddHistogram("latency_micros", distance_latency_, 1e-3,
                         with_endpoint("distance"));
  registry->AddHistogram("latency_micros", path_latency_, 1e-3,
                         with_endpoint("path"));
  registry->AddCounters(counters_, labels);
}

}  // namespace roadnet
