#include "server/server.h"

#include <utility>

namespace roadnet {

namespace {

uint64_t ElapsedNanos(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

// Status names for the trace JSONL export, as a plain function pointer so
// the obs layer stays independent of server/wire.
const char* TraceStatusName(uint8_t status) {
  return wire::StatusName(static_cast<wire::Status>(status));
}

// Requests are tiny fixed-size frames; cap far below response sizes.
constexpr uint32_t kMaxRequestBytes = 1024;

TracerOptions MakeTracerOptions(const ServerOptions& options) {
  TracerOptions t;
  t.sample_every = options.trace_sample_every;
  t.slow_micros = options.trace_slow_us;
  // One shard per event loop: the loop thread is the only producer into
  // its shard's ring (requests start and finish on their owning loop).
  t.shards = options.num_loops == 0 ? 1 : options.num_loops;
  t.ring_capacity = options.trace_ring_capacity;
  t.id_seed = options.trace_seed;
  t.status_name = &TraceStatusName;
  return t;
}

}  // namespace

QueryServer::QueryServer(const PathIndex& index, uint8_t technique_id,
                         uint32_t num_vertices, const ServerOptions& options,
                         const KnnServing& knn)
    : index_(index),
      technique_id_(technique_id),
      num_vertices_(num_vertices),
      options_(options),
      knn_(knn),
      engine_(index, options.engine_threads),
      queue_(options.queue_capacity),
      tracer_(MakeTracerOptions(options)) {
  // One kNN context and scratch vector per engine worker: the task path
  // hands each worker its own slot.
  if (knn_.Enabled()) {
    knn_scratch_.resize(engine_.NumThreads());
    bucket_ctxs_.reserve(engine_.NumThreads());
    for (size_t i = 0; i < engine_.NumThreads(); ++i) {
      bucket_ctxs_.push_back(knn_.bucket->NewContext());
    }
    if (knn_.ier != nullptr) {
      ier_ctxs_.reserve(engine_.NumThreads());
      for (size_t i = 0; i < engine_.NumThreads(); ++i) {
        ier_ctxs_.push_back(knn_.ier->NewContext());
      }
    }
  }
}

QueryServer::~QueryServer() { Shutdown(); }

bool QueryServer::Start(std::string* error) {
  if (!options_.trace_out.empty() &&
      !tracer_.StartExporter(options_.trace_out, error)) {
    return false;
  }
  ScopedFd listen = ListenTcp(options_.port, &port_, error);
  if (!listen.valid()) {
    tracer_.StopExporter();  // same leak as the pool-start failure below
    return false;
  }

  EventLoopOptions lo;
  lo.num_loops = options_.num_loops == 0 ? 1 : options_.num_loops;
  lo.max_connections = options_.max_connections;
  lo.max_frame_bytes = kMaxRequestBytes;
  lo.write_soft_cap = options_.write_queue_soft_cap;
  lo.idle_timeout_ms = options_.idle_timeout_ms;
  lo.sndbuf_bytes = options_.sndbuf_bytes;
  lo.epoch = tracer_.Epoch();
  // The cast happens here (not inside make_unique) because FrameHandler
  // is a private base: only members may convert to it.
  pool_ = std::make_unique<EventLoopPool>(lo, static_cast<FrameHandler*>(this));
  loop_shards_.clear();
  for (size_t i = 0; i < lo.num_loops; ++i) {
    loop_shards_.push_back(tracer_.AcquireShard());
  }
  dispatch_thread_ = std::thread([this] { DispatchLoop(); });
  if (!pool_->Start(std::move(listen), error)) {
    queue_.Close();
    dispatch_thread_.join();
    for (int shard : loop_shards_) tracer_.ReleaseShard(shard);
    loop_shards_.clear();
    pool_.reset();
    // The exporter was started at the top of this function; a failed
    // Start must not leak its thread (and must close the JSONL file so
    // the caller can retry with the same path).
    tracer_.StopExporter();
    return false;
  }
  started_ = true;
  return true;
}

void QueryServer::RequestShutdown() {
  draining_.store(true);
  {
    MutexLock lock(shutdown_mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.NotifyAll();
}

bool QueryServer::WaitForShutdownRequest(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  MutexLock lock(shutdown_mu_);
  while (!shutdown_requested_ &&
         shutdown_cv_.WaitUntil(lock, deadline) != std::cv_status::timeout) {
  }
  return shutdown_requested_;
}

void QueryServer::Shutdown() {
  {
    MutexLock lock(shutdown_mu_);
    if (shutdown_done_) return;
    shutdown_done_ = true;
  }
  draining_.store(true);

  if (started_) {
    // 1. Stop accepting. Established connections keep running; their
    // loops reject new requests with SHUTTING_DOWN (draining_ is set).
    pool_->StopAccepting();

    // 2. Close the queue: the dispatcher drains everything already
    // admitted and exits. Every drained Pending is Complete()d, which
    // posts its reply to the owning loop.
    queue_.Close();
    dispatch_thread_.join();

    // 3. Wait for the completion closures: once in_flight_ hits zero,
    // every admitted request has its reply on a connection write queue.
    {
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      MutexLock lock(drain_mu_);
      while (in_flight_.load(std::memory_order_acquire) != 0 &&
             drain_cv_.WaitUntil(lock, deadline) != std::cv_status::timeout) {
      }
    }

    // 4. Flush replies to peers that are reading (bounded: a peer that
    // stopped reading cannot stall the drain forever), then stop.
    pool_->FlushAndWait(std::chrono::seconds(2));
    pool_->Stop();
    for (int shard : loop_shards_) tracer_.ReleaseShard(shard);
    loop_shards_.clear();
  }
  // Every producer is gone: the final drain flushes all captured traces
  // to the slow-query log before the file closes.
  tracer_.StopExporter();
}

std::string QueryServer::EncodeReply(Pending* p) {
  switch (p->family) {
    case Pending::Family::kKnn:
      p->knn_resp.status = p->resp.status;
      p->knn_resp.server_latency_ns = p->resp.server_latency_ns;
      return wire::EncodeKnnResponse(wire::kKnnReply, p->knn_resp);
    case Pending::Family::kOneToMany:
      p->knn_resp.status = p->resp.status;
      p->knn_resp.server_latency_ns = p->resp.server_latency_ns;
      return wire::EncodeKnnResponse(wire::kOneToManyReply, p->knn_resp);
    case Pending::Family::kPoint:
      break;
  }
  return p->pipelined ? wire::EncodeQueryResponseV2(p->resp)
                      : wire::EncodeQueryResponse(p->resp);
}

void QueryServer::ReplyNow(Pending* p, wire::Status status) {
  p->resp.status = status;
  p->resp.server_latency_ns = ElapsedNanos(p->received);
  p->trace.status = static_cast<uint8_t>(status);
  {
    TraceSpan reply_span(&p->trace, TraceStage::kReplyWrite);
    pool_->Send(p->conn, EncodeReply(p));
  }
  const int shard = loop_shards_[p->conn.loop];
  if (shard >= 0) tracer_.Finish(shard, &p->trace);
}

void QueryServer::Complete(Pending* p, wire::Status status) {
  p->resp.status = status;
  p->resp.server_latency_ns = ElapsedNanos(p->received);
  p->trace.status = static_cast<uint8_t>(status);
  // Encode on the dispatcher (cheap for the loops, and path replies can
  // be large); the owning loop only appends bytes and finishes the
  // trace. The Post hop orders these writes before the loop's reads.
  std::string frame = EncodeReply(p);
  pool_->Post(p->conn.loop, [this, p, frame = std::move(frame)] {
    RequestTrace& trace = p->trace;
    const uint64_t reply_start = trace.NowNs();
    pool_->Send(p->conn, frame);  // false if the connection died: drop
    trace.RecordStage(TraceStage::kReplyWrite, reply_start, trace.NowNs());
    const int shard = loop_shards_[p->conn.loop];
    if (shard >= 0) tracer_.Finish(shard, &trace);
    delete p;
    if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Lock-then-notify: taking drain_mu_ orders this notify after the
      // drain waiter is actually asleep (it held drain_mu_ from its
      // predicate check into the wait), so the wakeup cannot be lost.
      MutexLock lock(drain_mu_);
      drain_cv_.NotifyAll();
    }
  });
}

bool QueryServer::OnFrame(const ConnRef& conn, std::string&& body,
                          const FrameMeta& meta) {
  const auto type = wire::PeekType(body);
  if (!type.has_value()) return false;  // garbage: hang up

  // Admin frames are answered inline on the loop thread and not traced.
  if (*type == wire::kStats) {
    return pool_->Send(conn, wire::EncodeStatsResponse(StatsV2()));
  }
  if (*type == wire::kShutdown) {
    // Ack first so the admin client gets a reply, then flag the drain;
    // the owner thread (WaitForShutdownRequest) runs Shutdown().
    const bool ok = pool_->Send(conn, wire::EncodeShutdownResponse());
    RequestShutdown();
    return ok;
  }
  if (*type == wire::kTraceConfig) {
    const auto cfg = wire::DecodeTraceConfigRequest(body);
    if (!cfg.has_value()) return false;
    tracer_.Configure(cfg->sample_every, cfg->slow_micros);
    wire::TraceConfigResponse ack;
    ack.sample_every = tracer_.SampleEvery();
    ack.slow_micros = tracer_.SlowMicros();
    return pool_->Send(conn, wire::EncodeTraceConfigResponse(ack));
  }
  if (*type != wire::kQuery && *type != wire::kQueryV2 &&
      *type != wire::kKnnQuery && *type != wire::kOneToManyQuery) {
    return false;
  }

  auto owned = std::make_unique<Pending>();
  Pending* p = owned.get();
  p->conn = conn;
  RequestTrace& trace = p->trace;
  const int shard = loop_shards_[conn.loop];
  if (shard >= 0) tracer_.StartRequest(&trace);
  if (meta.first_frame) {
    // The first request's accept stage: accept(2) return to the loop
    // starting to wait for this connection's bytes.
    trace.RecordStage(TraceStage::kAccept, meta.accept_ns,
                      meta.read_start_ns);
  }
  // frame_read covers waiting for and incrementally reassembling the
  // frame (timestamps come from the loop's read path).
  trace.RecordStage(TraceStage::kFrameRead, meta.read_start_ns,
                    meta.frame_end_ns);
  p->received = std::chrono::steady_clock::now();

  // Decode + validate per family. A short answer (empty category,
  // k > |POIs|) is NOT a bad request — only malformed frames, ids out
  // of range, and techniques/methods the server does not host are.
  bool valid = false;
  if (*type == wire::kQuery || *type == wire::kQueryV2) {
    const auto req = *type == wire::kQueryV2
                         ? wire::DecodeQueryRequestV2(body)
                         : wire::DecodeQueryRequest(body);
    if (req.has_value()) {
      p->pipelined = *type == wire::kQueryV2;
      p->resp.request_id = req->request_id;
      trace.kind = static_cast<uint8_t>(req->kind);
      trace.source = req->source;
      trace.target = req->target;
      valid = req->source < num_vertices_ && req->target < num_vertices_ &&
              (req->technique == wire::kAnyTechnique ||
               req->technique == technique_id_);
      p->req = *req;
    }
  } else if (*type == wire::kKnnQuery) {
    // Family follows the frame type even when decode fails, so a
    // malformed KNN_QUERY still gets a KNN_REPLY bad-request frame.
    p->family = Pending::Family::kKnn;
    const auto req = wire::DecodeKnnRequest(body);
    if (req.has_value()) {
      trace.kind = 2;
      trace.source = req->source;
      trace.target = req->category;  // category stands in for target
      valid = knn_.Enabled() && req->source < num_vertices_ &&
              req->category < knn_.pois->NumCategories() &&
              (req->method != wire::KnnMethod::kIer || knn_.ier != nullptr);
      p->knn_req = *req;
      p->req.deadline_micros = req->deadline_micros;
    }
  } else {
    p->family = Pending::Family::kOneToMany;
    const auto req = wire::DecodeOneToManyRequest(body);
    if (req.has_value()) {
      trace.kind = 3;
      trace.source = req->source;
      trace.target = req->category;
      valid = knn_.Enabled() && req->source < num_vertices_ &&
              req->category < knn_.pois->NumCategories();
      p->otm_req = *req;
      p->req.deadline_micros = req->deadline_micros;
    }
  }
  if (!valid) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    ReplyNow(p, wire::Status::kBadRequest);
    return true;
  }

  // The enqueue span must close BEFORE TryPush: once the request is in
  // the queue the dispatcher may pop it immediately and derive the
  // queue_wait start from this stage's end stamp.
  TraceSpan enqueue_span(&trace, TraceStage::kEnqueue);
  wire::Status shed = wire::Status::kOk;
  if (draining_.load(std::memory_order_relaxed)) {
    enqueue_span.Close();
    shed = wire::Status::kShuttingDown;
    shed_draining_.fetch_add(1, std::memory_order_relaxed);
  } else if (options_.write_queue_hard_cap > 0 &&
             meta.write_queue_bytes > options_.write_queue_hard_cap) {
    // The peer is not draining its replies; shedding here keeps a
    // non-reading client from pinning engine output in memory.
    enqueue_span.Close();
    shed = wire::Status::kOverloaded;
    shed_overloaded_.fetch_add(1, std::memory_order_relaxed);
  } else {
    enqueue_span.Close();
    if (!queue_.TryPush(p)) {
      shed = wire::Status::kOverloaded;
      shed_overloaded_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (shed != wire::Status::kOk) {
    ReplyNow(p, shed);
    return true;
  }
  // Admitted: the dispatcher owns the Pending now (no touching *p past
  // the TryPush). The completion closure runs on this loop thread, so
  // it cannot race this increment.
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  owned.release();
  return true;
}

void QueryServer::RunSubBatch(std::vector<Pending*>& reqs, bool paths) {
  if (reqs.empty()) return;
  std::vector<std::pair<VertexId, VertexId>> queries;
  queries.reserve(reqs.size());
  for (const Pending* p : reqs) {
    queries.emplace_back(p->req.source, p->req.target);
  }
  BatchOptions options;
  options.collect_paths = paths;
  // The engine's per-query histogram would only cover index time; the
  // server reports receipt-to-completion latency instead (recorded
  // below), so skip the double measurement.
  options.record_latencies = false;
  const bool traced = tracer_.RuntimeEnabled();
  uint64_t assembly_end = 0;
  if (traced) {
    // Per-query execute windows come back from the engine workers on the
    // tracer's time axis; counters are snapshotted per query.
    options.record_per_query = true;
    options.trace_epoch = tracer_.Epoch();
    assembly_end = tracer_.NowNs();
  }
  in_flight_batches_.fetch_add(1, std::memory_order_relaxed);
  BatchResult result = engine_.Run(queries, options);
  in_flight_batches_.fetch_sub(1, std::memory_order_relaxed);
  if (traced && result.query_start_ns.size() == reqs.size()) {
    for (size_t i = 0; i < reqs.size(); ++i) {
      RequestTrace& trace = reqs[i]->trace;
      // batch_assembly: dispatcher pop (queue_wait end) to engine entry.
      trace.RecordStage(
          TraceStage::kBatchAssembly,
          trace.stages[static_cast<size_t>(TraceStage::kQueueWait)].end_ns,
          assembly_end);
      trace.RecordStage(TraceStage::kExecute, result.query_start_ns[i],
                        result.query_end_ns[i]);
      trace.counters = result.query_counters[i];
    }
  }

  {
    MutexLock lock(stats_mu_);
    Histogram& latency = paths ? path_latency_ : distance_latency_;
    for (size_t i = 0; i < reqs.size(); ++i) {
      Pending* p = reqs[i];
      p->resp.distance = result.distances[i];
      if (paths) p->resp.path = std::move(result.paths[i]);
      latency.Record(ElapsedNanos(p->received));
    }
    counters_ += result.stats.counters;
  }
  served_.fetch_add(reqs.size(), std::memory_order_relaxed);
  for (size_t i = 0; i < reqs.size(); ++i) {
    Complete(reqs[i], result.distances[i] == kInfDistance
                          ? wire::Status::kUnreachable
                          : wire::Status::kOk);
  }
}

void QueryServer::RunKnnSubBatch(std::vector<Pending*>& reqs) {
  if (reqs.empty()) return;
  BatchOptions options;
  options.record_latencies = false;  // server latency is recorded below
  const bool traced = tracer_.RuntimeEnabled();
  uint64_t assembly_end = 0;
  if (traced) {
    options.record_per_query = true;
    options.trace_epoch = tracer_.Epoch();
    assembly_end = tracer_.NowNs();
  }
  // The engine's task path: each request runs on one worker's own kNN
  // contexts and writes its own Pending, so workers never share state.
  QueryTask task = [this, &reqs](size_t worker, size_t i,
                                 QueryCounters* counters) {
    Pending* p = reqs[i];
    std::vector<KnnResult>& out = knn_scratch_[worker];
    if (p->family == Pending::Family::kOneToMany) {
      knn_.bucket->OneToManyQuery(&bucket_ctxs_[worker],
                                  p->otm_req.category, p->otm_req.source,
                                  &out);
      *counters = bucket_ctxs_[worker].counters;
    } else if (p->knn_req.method == wire::KnnMethod::kIer) {
      knn_.ier->KnnQuery(&ier_ctxs_[worker], p->knn_req.category,
                         p->knn_req.source, p->knn_req.k, &out);
      *counters = ier_ctxs_[worker].counters;
    } else {
      knn_.bucket->KnnQuery(&bucket_ctxs_[worker], p->knn_req.category,
                            p->knn_req.source, p->knn_req.k, &out);
      *counters = bucket_ctxs_[worker].counters;
    }
    p->knn_resp.entries.clear();
    p->knn_resp.entries.reserve(out.size());
    for (const KnnResult& r : out) {
      p->knn_resp.entries.emplace_back(r.poi, r.dist);
    }
  };
  in_flight_batches_.fetch_add(1, std::memory_order_relaxed);
  BatchResult result = engine_.RunTasks(reqs.size(), task, options);
  in_flight_batches_.fetch_sub(1, std::memory_order_relaxed);
  if (traced && result.query_start_ns.size() == reqs.size()) {
    for (size_t i = 0; i < reqs.size(); ++i) {
      RequestTrace& trace = reqs[i]->trace;
      trace.RecordStage(
          TraceStage::kBatchAssembly,
          trace.stages[static_cast<size_t>(TraceStage::kQueueWait)].end_ns,
          assembly_end);
      trace.RecordStage(TraceStage::kExecute, result.query_start_ns[i],
                        result.query_end_ns[i]);
      trace.counters = result.query_counters[i];
    }
  }

  {
    MutexLock lock(stats_mu_);
    for (const Pending* p : reqs) {
      Histogram& latency = p->family == Pending::Family::kOneToMany
                               ? one_to_many_latency_
                               : knn_latency_;
      latency.Record(ElapsedNanos(p->received));
    }
    counters_ += result.stats.counters;
  }
  served_.fetch_add(reqs.size(), std::memory_order_relaxed);
  // A short (even empty) list is a complete OK answer: unreachable or
  // absent POIs are simply not in it.
  for (Pending* p : reqs) Complete(p, wire::Status::kOk);
}

void QueryServer::DispatchLoop() {
  std::vector<Pending*> batch;
  std::vector<Pending*> distance_reqs;
  std::vector<Pending*> path_reqs;
  std::vector<Pending*> knn_reqs;
  while (queue_.PopBatch(&batch, options_.max_dispatch_batch)) {
    distance_reqs.clear();
    path_reqs.clear();
    knn_reqs.clear();
    const auto now = std::chrono::steady_clock::now();
    // One pop stamp for the whole batch: each request's queue_wait runs
    // from its own enqueue end to this pop.
    const uint64_t pop_ns = tracer_.ToNs(now);
    for (Pending* p : batch) {
      p->trace.RecordStage(
          TraceStage::kQueueWait,
          p->trace.stages[static_cast<size_t>(TraceStage::kEnqueue)].end_ns,
          pop_ns);
    }
    for (Pending* p : batch) {
      // Deadline enforcement happens at dispatch: a request that already
      // waited past its budget is shed without occupying a worker.
      if (p->req.deadline_micros > 0) {
        const auto waited =
            std::chrono::duration_cast<std::chrono::microseconds>(
                now - p->received)
                .count();
        if (waited > static_cast<int64_t>(p->req.deadline_micros)) {
          shed_deadline_.fetch_add(1, std::memory_order_relaxed);
          Complete(p, wire::Status::kDeadlineExceeded);
          continue;
        }
      }
      if (p->family != Pending::Family::kPoint) {
        knn_reqs.push_back(p);
      } else {
        (p->req.kind == wire::QueryKind::kPath ? path_reqs : distance_reqs)
            .push_back(p);
      }
    }
    RunSubBatch(distance_reqs, /*paths=*/false);
    RunSubBatch(path_reqs, /*paths=*/true);
    RunKnnSubBatch(knn_reqs);
  }
}

wire::StatsResponse QueryServer::Stats() const {
  wire::StatsResponse s;
  s.served = served_.load(std::memory_order_relaxed);
  s.shed_overloaded = shed_overloaded_.load(std::memory_order_relaxed);
  s.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  s.shed_draining = shed_draining_.load(std::memory_order_relaxed);
  s.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  if (pool_ != nullptr) {
    const EventLoopPool::PoolStats ps = pool_->Stats();
    s.connections_accepted = ps.accepted;
    s.connections_rejected = ps.rejected;
  }
  MutexLock lock(stats_mu_);
  s.distance_count = distance_latency_.Count();
  s.distance_p50_ns = distance_latency_.ValueAtQuantile(0.50);
  s.distance_p99_ns = distance_latency_.ValueAtQuantile(0.99);
  s.path_count = path_latency_.Count();
  s.path_p50_ns = path_latency_.ValueAtQuantile(0.50);
  s.path_p99_ns = path_latency_.ValueAtQuantile(0.99);
  return s;
}

wire::StatsResponse QueryServer::StatsV2() const {
  wire::StatsResponse s = Stats();
  // Live gauges: instantaneous, so a mid-run STATS shows where requests
  // are right now (waiting, executing, connected).
  s.queue_depth = queue_.Size();
  s.in_flight_batches = in_flight_batches_.load(std::memory_order_relaxed);
  if (pool_ != nullptr) {
    const EventLoopPool::PoolStats ps = pool_->Stats();
    s.open_connections = ps.open_connections;
    s.write_queue_bytes = ps.write_queue_bytes;
    s.idle_reaped = ps.idle_reaped;
    s.loop_connections = ps.loop_connections;
  }
  const Tracer::Snapshot snap = tracer_.GetSnapshot();
  s.traces_finished = snap.finished;
  s.traces_captured = snap.captured;
  s.traces_dropped = snap.dropped;
  s.traces_slow = snap.slow;
  s.stages.reserve(snap.stages.size());
  for (const Tracer::StageStat& stat : snap.stages) {
    wire::StageStatWire w;
    w.stage = static_cast<uint8_t>(stat.stage);
    w.count = stat.count;
    w.p50_ns = stat.p50_ns;
    w.p99_ns = stat.p99_ns;
    s.stages.push_back(w);
  }
  return s;
}

void QueryServer::ExportMetrics(MetricsRegistry* registry) const {
  const wire::StatsResponse s = StatsV2();
  const std::vector<std::pair<std::string, std::string>> labels = {
      {"command", "serve"}, {"method", index_.Name()}};
  registry->Add("served", static_cast<double>(s.served), labels);
  registry->Add("shed_overloaded", static_cast<double>(s.shed_overloaded),
                labels);
  registry->Add("shed_deadline", static_cast<double>(s.shed_deadline),
                labels);
  registry->Add("shed_draining", static_cast<double>(s.shed_draining),
                labels);
  registry->Add("bad_requests", static_cast<double>(s.bad_requests), labels);
  registry->Add("connections_accepted",
                static_cast<double>(s.connections_accepted), labels);
  registry->Add("connections_rejected",
                static_cast<double>(s.connections_rejected), labels);
  // Event-loop core gauges (STATS v3).
  registry->Add("write_queue_bytes", static_cast<double>(s.write_queue_bytes),
                labels);
  registry->Add("idle_connections_reaped",
                static_cast<double>(s.idle_reaped), labels);
  for (size_t i = 0; i < s.loop_connections.size(); ++i) {
    auto l = labels;
    l.emplace_back("loop", std::to_string(i));
    registry->Add("loop_open_connections",
                  static_cast<double>(s.loop_connections[i]), l);
  }
  MutexLock lock(stats_mu_);
  auto with_endpoint = [&labels](const char* endpoint) {
    auto l = labels;
    l.emplace_back("endpoint", endpoint);
    return l;
  };
  registry->AddHistogram("latency_micros", distance_latency_, 1e-3,
                         with_endpoint("distance"));
  registry->AddHistogram("latency_micros", path_latency_, 1e-3,
                         with_endpoint("path"));
  if (knn_.Enabled()) {
    registry->AddHistogram("latency_micros", knn_latency_, 1e-3,
                           with_endpoint("knn"));
    registry->AddHistogram("latency_micros", one_to_many_latency_, 1e-3,
                           with_endpoint("one_to_many"));
  }
  registry->AddCounters(counters_, labels);
  tracer_.ExportMetrics(registry, labels);
}

}  // namespace roadnet
