#ifndef ROADNET_SERVER_SERVER_H_
#define ROADNET_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/query_engine.h"
#include "knn/ier.h"
#include "knn/knn_index.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "poi/poi_set.h"
#include "routing/path_index.h"
#include "server/bounded_queue.h"
#include "server/event_loop.h"
#include "server/socket.h"
#include "server/wire.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace roadnet {

// Optional kNN / one-to-many serving backends. All-null = the server
// answers only point-to-point queries (KNN_QUERY gets BAD_REQUEST).
// `bucket` and `pois` enable the family; `ier` additionally enables
// method=ier. All referents must outlive the server.
struct KnnServing {
  const PoiSet* pois = nullptr;
  const KnnBucketIndex* bucket = nullptr;
  const IerKnnIndex* ier = nullptr;

  bool Enabled() const { return pois != nullptr && bucket != nullptr; }
};

struct ServerOptions {
  uint16_t port = 0;             // 0 = ephemeral (read back via Port())
  size_t max_connections = 64;   // accept cap; excess conns closed at once
  size_t queue_capacity = 256;   // admission queue; full => OVERLOADED
  size_t engine_threads = 4;     // QueryEngine worker pool size
  size_t max_dispatch_batch = 64;  // requests per engine batch
  // --- Event-loop front-end (src/server/event_loop.h) ---
  size_t num_loops = 2;          // epoll event loops sharing the accepts
  // Per-connection write-queue caps: above soft the loop stops reading
  // the connection; requests decoded while the queue is above hard are
  // shed with OVERLOADED.
  size_t write_queue_soft_cap = 256u << 10;
  size_t write_queue_hard_cap = 1u << 20;
  uint64_t idle_timeout_ms = 0;  // reap idle connections (0 = never)
  int sndbuf_bytes = 0;          // SO_SNDBUF per conn (0 = kernel default)
  // --- Request tracing (obs/trace.h; all runtime-retunable via the
  // TRACE_CONFIG frame). Both capture knobs off = tracing idle: every
  // request pays only the StartRequest early-out.
  uint64_t trace_sample_every = 0;  // head sampling, 1-in-N (0 = off)
  uint64_t trace_slow_us = kTraceSlowDisabled;  // tail capture threshold
  std::string trace_out;            // JSONL slow-query log ("" = no export)
  size_t trace_ring_capacity = 256;  // per-connection trace ring slots
  uint64_t trace_seed = 1;           // trace-id stream seed
};

// Long-running TCP front-end over one immutable PathIndex.
//
// Threading model (see DESIGN.md "Async server core"):
//   - a small pool of epoll event loops (EventLoopPool) owns every
//     connection: nonblocking accepts sharded across loops, incremental
//     frame reassembly from edge-triggered reads, pipelined requests
//     (QUERY2 carries a request_id echoed in its reply, so many may be
//     outstanding per connection and complete out of order);
//   - OnFrame (on the loop thread) validates, stamps a receipt time, and
//     TryPushes a heap-allocated Pending into the bounded queue — a full
//     queue, a draining server, or a write queue over the hard cap is
//     answered inline (OVERLOADED / SHUTTING_DOWN, explicit shedding);
//   - one dispatcher thread drains the queue in batches, sheds requests
//     whose deadline already passed (DEADLINE_EXCEEDED), and feeds the
//     rest to the QueryEngine worker pool; each completed reply is
//     posted back to the owning loop (wakeup fd), which writes it on
//     the connection's bounded write queue and finishes the trace.
//
// Shutdown (SIGINT via RequestShutdown(), or a client SHUTDOWN frame)
// drains: no new connections or requests are admitted (late requests get
// SHUTTING_DOWN), everything already admitted is answered and flushed,
// then threads join. Shutdown() is idempotent and safe after a failed
// Start().
class QueryServer : private FrameHandler {
 public:
  // The index (and the graph it was built on) must outlive the server.
  // `technique_id` is the wire id clients must send (or kAnyTechnique);
  // `num_vertices` bounds request validation.
  QueryServer(const PathIndex& index, uint8_t technique_id,
              uint32_t num_vertices, const ServerOptions& options,
              const KnnServing& knn = {});
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  // Binds and spawns the accept + dispatcher threads. False + *error on
  // failure (e.g. port in use).
  bool Start(std::string* error);

  // Port actually bound (resolves port 0). Valid after Start().
  uint16_t Port() const { return port_; }

  // Marks the server draining and wakes WaitForShutdownRequest(). Called
  // by the SHUTDOWN frame handler; safe from any thread, including the
  // SIGINT path in roadnet_cli.
  void RequestShutdown();

  // Blocks until RequestShutdown() (or a SHUTDOWN frame) fires, at most
  // `timeout`. Returns true once shutdown was requested. The caller —
  // not a connection thread — then runs Shutdown().
  bool WaitForShutdownRequest(std::chrono::milliseconds timeout);

  // Drain-then-stop: stop accepting, answer everything admitted, join
  // all threads. Idempotent; also called by the destructor.
  void Shutdown();

  // Snapshot of the serving counters and per-endpoint latency
  // percentiles. Thread-safe.
  wire::StatsResponse Stats() const;

  // Stats() plus the v2 live gauges (queue depth, in-flight batches,
  // open connections) and the tracer's per-stage breakdown — the STATS
  // frame's actual payload. Thread-safe; callable mid-run.
  wire::StatsResponse StatsV2() const;

  // The server's tracer, for runtime retuning (TRACE_CONFIG does this
  // remotely) and test introspection.
  Tracer& tracer() { return tracer_; }

  // Exports the snapshot plus full per-endpoint histograms into a
  // MetricsRegistry (labels: endpoint=distance|path).
  void ExportMetrics(MetricsRegistry* registry) const;

 private:
  // One admitted request between the loops and the dispatcher.
  // Heap-allocated by OnFrame; ownership flows loop -> bounded queue ->
  // dispatcher -> (Post) back to the owning loop, which writes the reply
  // and deletes it. No locking: each stage hands the pointer off before
  // the next one touches it, and the Post hop orders the dispatcher's
  // writes before the loop's reads.
  struct Pending {
    // Which request family this is; selects the active request struct
    // and the reply frame encoded for it.
    enum class Family : uint8_t { kPoint = 0, kKnn = 1, kOneToMany = 2 };
    Family family = Family::kPoint;
    // kPoint requests decode into `req`. kKnn / kOneToMany decode into
    // their own structs, but `req.deadline_micros` is mirrored so the
    // dispatcher's deadline shedding is family-agnostic.
    wire::QueryRequest req;
    wire::KnnRequest knn_req;
    wire::OneToManyRequest otm_req;
    std::chrono::steady_clock::time_point received;
    wire::QueryResponse resp;
    // Entry list of a kKnn / kOneToMany reply; status and latency are
    // copied out of `resp` when the reply frame is encoded.
    wire::KnnResponse knn_resp;
    // Lifecycle trace. The loop thread stamps accept/frame_read/enqueue,
    // the dispatcher and engine stamp queue_wait/batch_assembly/execute
    // while the loop is not touching the Pending, and the completion
    // closure stamps reply_write and Finishes on the loop's shard.
    RequestTrace trace;
    // The connection this request came in on; replies route back through
    // it (and fail harmlessly if the connection died meanwhile).
    ConnRef conn;
    // Arrived as a QUERY2 frame: reply with QUERY_REPLY2 (request_id is
    // mirrored in resp). Old QUERY frames get old QUERY_REPLY frames.
    bool pipelined = false;
  };

  // FrameHandler: one complete frame from an event loop, on that loop's
  // thread.
  bool OnFrame(const ConnRef& conn, std::string&& body,
               const FrameMeta& meta) override;

  void DispatchLoop();

  // Runs one homogeneous sub-batch (all-distance or all-path) through
  // the engine and fills the responses.
  void RunSubBatch(std::vector<Pending*>& reqs, bool paths);

  // Runs a mixed kNN / one-to-many sub-batch through the engine's task
  // path on the per-worker kNN contexts.
  void RunKnnSubBatch(std::vector<Pending*>& reqs);

  // Encodes the reply frame of whatever family/version `p` is (copies
  // status/latency into the kNN reply struct first, hence non-const).
  static std::string EncodeReply(Pending* p);

  // Inline rejection on the loop thread (bad request, shedding): fills
  // status/latency, writes the reply, finishes the trace.
  void ReplyNow(Pending* p, wire::Status status);

  // Dispatcher-side completion: fills status/latency, encodes the reply,
  // and posts it to the owning loop for the actual write + trace finish.
  void Complete(Pending* p, wire::Status status);

  const PathIndex& index_;
  const uint8_t technique_id_;
  const uint32_t num_vertices_;
  const ServerOptions options_;
  const KnnServing knn_;

  QueryEngine engine_;
  BoundedQueue<Pending*> queue_;
  Tracer tracer_;
  // Per-engine-worker kNN scratch, indexed by worker id (empty when the
  // matching backend is absent). Only the engine's task path touches
  // them, one worker per slot, so no locking.
  std::vector<KnnBucketIndex::Context> bucket_ctxs_;
  std::vector<IerKnnIndex::Context> ier_ctxs_;
  std::vector<std::vector<KnnResult>> knn_scratch_;

  uint16_t port_ = 0;
  std::unique_ptr<EventLoopPool> pool_;
  // Tracer shard of each event loop (the loop thread is its shard's only
  // producer); acquired in Start, released in Shutdown.
  std::vector<int> loop_shards_;
  std::thread dispatch_thread_;
  bool started_ = false;

  // Admitted requests not yet replied (Pending objects alive past
  // OnFrame). Shutdown waits for this to hit zero before stopping the
  // loops so every admitted request is answered. drain_mu_ guards no
  // field — the wait predicate is the atomic itself; the mutex only
  // serializes the sleep/notify handshake so the completion closure's
  // notify cannot slip between the waiter's predicate check and its
  // sleep.
  std::atomic<uint64_t> in_flight_{0};
  // roadnet-lint: allow(R10 drain_mu_ intentionally guards no field: the predicate is the atomic in_flight_ above; the mutex exists only to order the drain wait against the completion path's notify)
  Mutex drain_mu_;
  CondVar drain_cv_;

  // Lifecycle. draining_ gates admission (connections and requests);
  // shutdown_cv_ wakes WaitForShutdownRequest().
  std::atomic<bool> draining_{false};
  Mutex shutdown_mu_;
  CondVar shutdown_cv_;
  bool shutdown_requested_ ROADNET_GUARDED_BY(shutdown_mu_) = false;
  bool shutdown_done_ ROADNET_GUARDED_BY(shutdown_mu_) = false;

  // Serving counters (atomics: bumped from loop threads) and
  // per-endpoint latency histograms (dispatcher-written, mutex-guarded
  // for STATS snapshots).
  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> shed_overloaded_{0};
  std::atomic<uint64_t> shed_deadline_{0};
  std::atomic<uint64_t> shed_draining_{0};
  std::atomic<uint64_t> bad_requests_{0};
  // Live gauge for STATS v2 (instantaneous, not lifetime).
  std::atomic<uint64_t> in_flight_batches_{0};
  mutable Mutex stats_mu_;
  Histogram distance_latency_ ROADNET_GUARDED_BY(stats_mu_);
  Histogram path_latency_ ROADNET_GUARDED_BY(stats_mu_);
  Histogram knn_latency_ ROADNET_GUARDED_BY(stats_mu_);
  Histogram one_to_many_latency_ ROADNET_GUARDED_BY(stats_mu_);
  // Summed over every served batch.
  QueryCounters counters_ ROADNET_GUARDED_BY(stats_mu_);
};

}  // namespace roadnet

#endif  // ROADNET_SERVER_SERVER_H_
