#ifndef ROADNET_PCPD_REDUNDANCY_H_
#define ROADNET_PCPD_REDUNDANCY_H_

#include "dijkstra/dijkstra.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace roadnet {

// Appendix C: PCPD's O(n) space bound assumes every shortest path is
// delta-redundant — any core-disjoint path P' (sharing no interior vertex
// with the shortest path P) is at least delta times longer. Table 2 shows
// the observed minimum of length(P')/length(P) is ~1 on every dataset,
// which explains PCPD's space blow-up.
//
// Measures length(P')/length(P) for one query: P is the shortest path
// from s to t, P' the shortest path avoiding every interior vertex of P.
// Returns +infinity when no core-disjoint path exists, and 1.0 when the
// "shortest path" is a single edge matched by a parallel route of equal
// length... i.e. the ratio is always >= 1 for finite results.
class RedundancyMeter {
 public:
  explicit RedundancyMeter(const Graph& g);

  // Ratio for the pair (s, t); +infinity (HUGE_VAL) if either t is
  // unreachable or no core-disjoint path exists.
  double Ratio(VertexId s, VertexId t);

 private:
  const Graph& graph_;
  Dijkstra dijkstra_;
  // Interior vertices of the current P, generation-stamped.
  std::vector<uint32_t> forbidden_;
  uint32_t generation_ = 0;

  // Dijkstra restricted to non-forbidden vertices.
  IndexedHeap<Distance> heap_;
  std::vector<Distance> dist_;
  std::vector<uint32_t> reached_;
  uint32_t search_generation_ = 0;
};

}  // namespace roadnet

#endif  // ROADNET_PCPD_REDUNDANCY_H_
