#ifndef ROADNET_PCPD_APPROX_ORACLE_H_
#define ROADNET_PCPD_APPROX_ORACLE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace roadnet {

// Approximate distance oracle in the style of Sankaranarayanan & Samet's
// revised PCPD (the paper's Appendix A: "a revised version of PCPD that
// can handle approximate distance queries efficiently").
//
// Preprocessing recursively refines pairs of quadtree blocks (X, Y) —
// the same synchronized 16-way refinement PCPD uses — but the acceptance
// criterion is metric instead of path-coherence: a pair is kept once
//   max dist(x, y) <= (1 + epsilon) * min dist(x, y)
// over all x in X, y in Y, and it stores the midpoint of that range. A
// query descends to the unique covering pair (one hash probe per level,
// O(log n)) and returns the stored value, which is within a factor
// (1 +/- epsilon) of the true distance — the bound the tests enforce.
//
// Like PCPD itself, preprocessing needs all-pairs distances, so the
// oracle targets the same small-network regime (Section 4.3's cutoff).
class ApproxDistanceOracle {
 public:
  // epsilon > 0: maximum relative error of any answer.
  ApproxDistanceOracle(const Graph& g, double epsilon);

  // Approximate dist(s, t): exact 0 for s == t, kInfDistance when
  // unreachable, otherwise within (1 +/- epsilon) of the truth.
  Distance Query(VertexId s, VertexId t) const;

  double epsilon() const { return epsilon_; }
  size_t NumPairs() const { return pairs_.size(); }
  size_t IndexBytes() const;

 private:
  struct PairKey {
    uint64_t x;
    uint64_t y;
    friend bool operator==(const PairKey& a, const PairKey& b) {
      return a.x == b.x && a.y == b.y;
    }
  };
  struct PairKeyHash {
    size_t operator()(const PairKey& k) const {
      uint64_t h = k.x * 0x9e3779b97f4a7c15ULL ^
                   (k.y + 0x517cc1b727220a95ULL);
      h ^= h >> 32;
      return static_cast<size_t>(h * 0xff51afd7ed558ccdULL);
    }
  };

  static uint64_t BlockId(uint64_t base, uint32_t level) {
    return base | (static_cast<uint64_t>(level) << 58);
  }

  struct Range {
    uint32_t lo;
    uint32_t hi;
  };
  Range BlockRange(uint64_t base, uint32_t level) const;

  // Exact distance from the preprocessing matrix (build time only).
  Distance MatrixDistance(VertexId s, VertexId t) const;

  void Refine(uint64_t base_x, uint64_t base_y, uint32_t level);

  const Graph& graph_;
  double epsilon_;
  std::vector<uint64_t> code_of_;
  std::vector<VertexId> sorted_;
  std::vector<uint64_t> sorted_codes_;
  uint32_t root_level_ = 0;

  // Build-time all-pairs matrix (32-bit, 0xffffffff = unreachable);
  // freed after refinement.
  std::vector<uint32_t> matrix_;

  std::unordered_map<PairKey, Distance, PairKeyHash> pairs_;
};

}  // namespace roadnet

#endif  // ROADNET_PCPD_APPROX_ORACLE_H_
