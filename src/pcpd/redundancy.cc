#include "pcpd/redundancy.h"

#include <cmath>

#include "routing/path.h"

namespace roadnet {

RedundancyMeter::RedundancyMeter(const Graph& g)
    : graph_(g),
      dijkstra_(g),
      forbidden_(g.NumVertices(), 0),
      heap_(g.NumVertices()),
      dist_(g.NumVertices(), 0),
      reached_(g.NumVertices(), 0) {}

double RedundancyMeter::Ratio(VertexId s, VertexId t) {
  if (s == t) return HUGE_VAL;
  const Distance d = dijkstra_.Run(s, t);
  if (d == kInfDistance) return HUGE_VAL;
  const Path p = dijkstra_.PathTo(t);

  // Forbid the interior vertices of P (a core-disjoint path shares no
  // vertex with P except, necessarily, the endpoints).
  ++generation_;
  for (size_t i = 1; i + 1 < p.size(); ++i) forbidden_[p[i]] = generation_;

  // Dijkstra on G minus the forbidden vertices.
  ++search_generation_;
  heap_.Clear();
  dist_[s] = 0;
  reached_[s] = search_generation_;
  heap_.Push(s, 0);
  while (!heap_.Empty()) {
    const VertexId u = heap_.PopMin();
    if (u == t) {
      return static_cast<double>(dist_[t]) / static_cast<double>(d);
    }
    for (const Arc& a : graph_.Neighbors(u)) {
      if (forbidden_[a.to] == generation_) continue;
      const Distance cand = dist_[u] + a.weight;
      if (reached_[a.to] != search_generation_) {
        reached_[a.to] = search_generation_;
        dist_[a.to] = cand;
        heap_.Push(a.to, cand);
      } else if (heap_.Contains(a.to) && cand < dist_[a.to]) {
        dist_[a.to] = cand;
        heap_.DecreaseKey(a.to, cand);
      }
    }
  }
  return HUGE_VAL;
}

}  // namespace roadnet
