#include "pcpd/approx_oracle.h"

#include <algorithm>

#include "dijkstra/dijkstra.h"
#include "spatial/unique_morton.h"
#include "util/bytes.h"

namespace roadnet {

namespace {
constexpr uint32_t kUnreachable = 0xffffffffu;
}  // namespace

ApproxDistanceOracle::ApproxDistanceOracle(const Graph& g, double epsilon)
    : graph_(g), epsilon_(epsilon) {
  const uint32_t n = g.NumVertices();
  root_level_ = BuildUniqueMortonCodes(g, &code_of_, &sorted_, &sorted_codes_);

  // All-pairs matrix: one SSSP per source (the same cost profile as the
  // exact PCPD preprocessing it derives from).
  matrix_.assign(static_cast<size_t>(n) * n, kUnreachable);
  Dijkstra dijkstra(g);
  for (VertexId s = 0; s < n; ++s) {
    dijkstra.RunAll(s);
    uint32_t* row = matrix_.data() + static_cast<size_t>(s) * n;
    for (VertexId t = 0; t < n; ++t) {
      const Distance d = dijkstra.DistanceTo(t);
      if (d != kInfDistance) row[t] = static_cast<uint32_t>(d);
    }
  }

  Refine(0, 0, root_level_);

  matrix_.clear();
  matrix_.shrink_to_fit();
}

ApproxDistanceOracle::Range ApproxDistanceOracle::BlockRange(
    uint64_t base, uint32_t level) const {
  const uint64_t end = base + (uint64_t{1} << (2 * level));
  const auto lo =
      std::lower_bound(sorted_codes_.begin(), sorted_codes_.end(), base);
  const auto hi = std::lower_bound(lo, sorted_codes_.end(), end);
  return Range{static_cast<uint32_t>(lo - sorted_codes_.begin()),
               static_cast<uint32_t>(hi - sorted_codes_.begin())};
}

Distance ApproxDistanceOracle::MatrixDistance(VertexId s, VertexId t) const {
  const uint32_t raw = matrix_[static_cast<size_t>(s) * graph_.NumVertices() + t];
  return raw == kUnreachable ? kInfDistance : raw;
}

void ApproxDistanceOracle::Refine(uint64_t base_x, uint64_t base_y,
                                  uint32_t level) {
  const Range rx = BlockRange(base_x, level);
  const Range ry = BlockRange(base_y, level);
  if (rx.lo >= rx.hi || ry.lo >= ry.hi) return;
  if (base_x == base_y && rx.hi - rx.lo == 1) return;  // same single vertex

  // Metric acceptance test with early exit once the spread is too wide.
  Distance dmin = kInfDistance;
  Distance dmax = 0;
  bool any_unreachable = false;
  bool spread_ok = true;
  for (uint32_t i = rx.lo; i < rx.hi && spread_ok; ++i) {
    const VertexId x = sorted_[i];
    for (uint32_t j = ry.lo; j < ry.hi; ++j) {
      const VertexId y = sorted_[j];
      if (x == y) {
        // Blocks overlap only when identical; a same-vertex pair forces a
        // zero distance the spread test can never absorb.
        spread_ok = false;
        break;
      }
      const Distance d = MatrixDistance(x, y);
      if (d == kInfDistance) {
        any_unreachable = true;
        if (dmax > 0) {
          spread_ok = false;
          break;
        }
        continue;
      }
      dmin = std::min(dmin, d);
      dmax = std::max(dmax, d);
      if (any_unreachable || dmin == 0 ||
          static_cast<double>(dmax) >
              (1.0 + epsilon_) * static_cast<double>(dmin)) {
        spread_ok = false;
        break;
      }
    }
  }

  if (spread_ok) {
    Distance value;
    if (dmax == 0 && any_unreachable) {
      value = kInfDistance;  // every pair unreachable
    } else {
      value = (dmin + dmax) / 2;
    }
    pairs_.emplace(PairKey{BlockId(base_x, level), BlockId(base_y, level)},
                   value);
    return;
  }
  if (level == 0) return;  // same-vertex singleton; queries special-case it

  const uint64_t quarter = uint64_t{1} << (2 * (level - 1));
  for (int qx = 0; qx < 4; ++qx) {
    for (int qy = 0; qy < 4; ++qy) {
      Refine(base_x + quarter * qx, base_y + quarter * qy, level - 1);
    }
  }
}

Distance ApproxDistanceOracle::Query(VertexId s, VertexId t) const {
  if (s == t) return 0;
  const uint64_t cs = code_of_[s];
  const uint64_t ct = code_of_[t];
  for (uint32_t level = root_level_;; --level) {
    const uint64_t mask =
        (level >= 32) ? 0 : ~((uint64_t{1} << (2 * level)) - 1);
    const auto it = pairs_.find(
        PairKey{BlockId(cs & mask, level), BlockId(ct & mask, level)});
    if (it != pairs_.end()) return it->second;
    if (level == 0) break;
  }
  return kInfDistance;
}

size_t ApproxDistanceOracle::IndexBytes() const {
  return VectorBytes(code_of_) + VectorBytes(sorted_) +
         VectorBytes(sorted_codes_) +
         pairs_.size() * (sizeof(PairKey) + sizeof(Distance) + sizeof(void*)) +
         pairs_.bucket_count() * sizeof(void*);
}

}  // namespace roadnet
