#ifndef ROADNET_PCPD_PCPD_INDEX_H_
#define ROADNET_PCPD_PCPD_INDEX_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "routing/path_index.h"

namespace roadnet {

// Path-Coherent Pairs Decomposition (Sankaranarayanan et al. 2009; paper
// Section 3.5, Appendices C and D).
//
// Preprocessing recursively refines pairs of square regions, starting from
// (whole space, whole space): a pair (X, Y) becomes a path-coherent pair
// (X, Y, psi) if every shortest path from a vertex in X to a vertex in Y
// passes through the common object psi (a vertex or a directed edge);
// otherwise X and Y are each split into their four quadrants and the 16
// sub-pairs are refined recursively (Appendix D). The common-object test
// is the paper's nested loop over VX x VY that intersects the running
// shared set and stops early once it empties.
//
// A query finds the unique covering pair by synchronized quadtree descent
// (one hash probe per level, O(log n)), then decomposes the path through
// psi recursively — O(k) lookups for a k-vertex path. Distance queries
// walk the path and sum weights, exactly as the paper prescribes.
//
// Square regions are aligned Morton-code ranges over internally scaled
// coordinates (x16, with co-located vertices nudged apart inside the
// scaled cell so every vertex owns a unique code).
class PcpdIndex : public PathIndex {
 public:
  explicit PcpdIndex(const Graph& g);

  std::string Name() const override { return "PCPD"; }
  // PCPD queries are pure reads over the pair map — no per-query scratch
  // — so the context is stateless and queries are naturally concurrent.
  std::unique_ptr<QueryContext> NewContext() const override {
    return std::make_unique<QueryContext>();
  }
  Distance DistanceQuery(QueryContext* ctx, VertexId s,
                         VertexId t) const override;
  Path PathQuery(QueryContext* ctx, VertexId s, VertexId t) const override;
  using PathIndex::DistanceQuery;
  using PathIndex::PathQuery;
  size_t IndexBytes() const override;

  // Number of stored path-coherent pairs |Spcp| (Appendix C's growth
  // measurements).
  size_t NumPairs() const { return pcp_.size(); }

 private:
  // The common object of a path-coherent pair. A vertex is encoded as
  // a == b; a directed edge (tail, head) points from the X side toward
  // the Y side.
  struct Psi {
    VertexId a;
    VertexId b;
    bool IsEdge() const { return a != b; }
  };

  struct PairKey {
    uint64_t x;
    uint64_t y;
    friend bool operator==(const PairKey& p, const PairKey& q) {
      return p.x == q.x && p.y == q.y;
    }
  };
  struct PairKeyHash {
    size_t operator()(const PairKey& k) const {
      uint64_t h = k.x * 0x9e3779b97f4a7c15ULL ^ (k.y + 0x517cc1b727220a95ULL);
      h ^= h >> 32;
      return static_cast<size_t>(h * 0xff51afd7ed558ccdULL);
    }
  };

  // Block identifier: Morton base plus the level packed in the top bits.
  static uint64_t BlockId(uint64_t base, uint32_t level) {
    return base | (static_cast<uint64_t>(level) << 58);
  }

  // Morton-position range [lo, hi) of a block in the sorted order.
  struct Range {
    uint32_t lo;
    uint32_t hi;
    bool Empty() const { return lo >= hi; }
    uint32_t Size() const { return hi - lo; }
  };

  Range BlockRange(uint64_t base, uint32_t level) const;

  // Recursive refinement of one pair of same-level blocks.
  void Refine(uint64_t base_x, uint64_t base_y, uint32_t level);

  // Nested-loop coherence test; returns true and sets *psi when the pair
  // is path-coherent.
  bool FindCommonObject(const Range& rx, const Range& ry, uint64_t base_x,
                        uint64_t base_y, uint32_t level, Psi* psi) const;

  // Walks the canonical shortest path s -> t via the first-hop matrix.
  void WalkPath(VertexId s, VertexId t, std::vector<VertexId>* out) const;

  // Finds the covering PCP of (s, t) by synchronized descent, counting
  // one tree_lookups per level probed into *counters.
  const Psi& FindPair(VertexId s, VertexId t, QueryCounters* counters) const;

  // Appends the vertices after `s` up to and including `t` to *out.
  void AppendPath(VertexId s, VertexId t, Path* out,
                  QueryCounters* counters) const;

  bool CodeInBlock(uint64_t code, uint64_t base, uint32_t level) const {
    return base <= code && code - base < (uint64_t{1} << (2 * level));
  }

  const Graph& graph_;
  std::vector<uint64_t> code_of_;      // unique per vertex
  std::vector<VertexId> sorted_;       // vertex ids by code
  std::vector<uint64_t> sorted_codes_;
  uint32_t root_level_ = 0;

  // first_hop_[s * n + t] = adjacency index (within Neighbors(s)) of the
  // first hop of the canonical shortest path s -> t. Built during
  // preprocessing, retained for nothing else; freed after construction.
  std::vector<uint8_t> first_hop_;

  std::unordered_map<PairKey, Psi, PairKeyHash> pcp_;
};

}  // namespace roadnet

#endif  // ROADNET_PCPD_PCPD_INDEX_H_
