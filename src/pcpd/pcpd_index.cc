#include "pcpd/pcpd_index.h"

#include <algorithm>
#include <cassert>

#include "dijkstra/dijkstra.h"
#include "spatial/unique_morton.h"
#include "util/bytes.h"

namespace roadnet {

namespace {

constexpr uint8_t kNoHop = 0xff;

// Sorted-vector intersection in place: *a keeps only elements also in b.
template <typename T>
void IntersectSorted(std::vector<T>* a, const std::vector<T>& b) {
  auto out = a->begin();
  auto ia = a->cbegin();
  auto ib = b.cbegin();
  while (ia != a->cend() && ib != b.cend()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      *out++ = *ia++;
      ++ib;
    }
  }
  a->erase(out, a->end());
}

uint64_t DirectedEdgeKey(VertexId u, VertexId v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

}  // namespace

PcpdIndex::PcpdIndex(const Graph& g) : graph_(g) {
  const uint32_t n = g.NumVertices();

  // --- Unique Morton codes (scaled x16, co-located vertices nudged). ---
  root_level_ = BuildUniqueMortonCodes(g, &code_of_, &sorted_, &sorted_codes_);

  // --- Canonical all-pairs first hops (one Dijkstra per source). ---
  first_hop_.assign(static_cast<size_t>(n) * n, kNoHop);
  Dijkstra dijkstra(g);
  for (VertexId s = 0; s < n; ++s) {
    dijkstra.RunAllWithFirstHop(s);
    auto neighbors = g.Neighbors(s);
    uint8_t* row = first_hop_.data() + static_cast<size_t>(s) * n;
    for (VertexId t = 0; t < n; ++t) {
      if (t == s) continue;
      const VertexId hop = dijkstra.FirstHopOf(t);
      if (hop == kInvalidVertex) continue;
      const auto it = std::lower_bound(
          neighbors.begin(), neighbors.end(), hop,
          [](const Arc& a, VertexId target) { return a.to < target; });
      row[t] = static_cast<uint8_t>(it - neighbors.begin());
    }
  }

  // --- Recursive refinement from the root pair (Appendix D). ---
  Refine(0, 0, root_level_);

  // The first-hop matrix is preprocessing scratch only.
  first_hop_.clear();
  first_hop_.shrink_to_fit();
}

PcpdIndex::Range PcpdIndex::BlockRange(uint64_t base, uint32_t level) const {
  const uint64_t end = base + (uint64_t{1} << (2 * level));
  const auto lo = std::lower_bound(sorted_codes_.begin(),
                                   sorted_codes_.end(), base);
  const auto hi =
      std::lower_bound(lo, sorted_codes_.end(), end);
  return Range{static_cast<uint32_t>(lo - sorted_codes_.begin()),
               static_cast<uint32_t>(hi - sorted_codes_.begin())};
}

void PcpdIndex::WalkPath(VertexId s, VertexId t,
                         std::vector<VertexId>* out) const {
  out->clear();
  const uint32_t n = graph_.NumVertices();
  out->push_back(s);
  VertexId cur = s;
  while (cur != t) {
    const uint8_t hop = first_hop_[static_cast<size_t>(cur) * n + t];
    if (hop == kNoHop) {
      out->clear();
      return;  // unreachable
    }
    cur = graph_.Neighbors(cur)[hop].to;
    out->push_back(cur);
  }
}

bool PcpdIndex::FindCommonObject(const Range& rx, const Range& ry,
                                 uint64_t base_x, uint64_t base_y,
                                 uint32_t level, Psi* psi) const {
  std::vector<VertexId> shared_vertices;
  std::vector<uint64_t> shared_edges;
  std::vector<VertexId> path;
  std::vector<VertexId> path_vertices;
  std::vector<uint64_t> path_edges;
  // Retained from the most recent path so a positional (middle-of-path)
  // choice of psi is possible after the loops.
  std::vector<VertexId> last_path;
  bool first = true;

  for (uint32_t i = rx.lo; i < rx.hi; ++i) {
    const VertexId x = sorted_[i];
    for (uint32_t j = ry.lo; j < ry.hi; ++j) {
      const VertexId y = sorted_[j];
      if (x == y) continue;  // only when the two blocks are identical
      WalkPath(x, y, &path);
      if (path.empty()) return false;  // an unreachable pair: not coherent

      path_vertices = path;
      std::sort(path_vertices.begin(), path_vertices.end());
      path_edges.clear();
      for (size_t e = 0; e + 1 < path.size(); ++e) {
        path_edges.push_back(DirectedEdgeKey(path[e], path[e + 1]));
      }
      std::sort(path_edges.begin(), path_edges.end());

      if (first) {
        shared_vertices = path_vertices;
        shared_edges = path_edges;
        first = false;
      } else {
        IntersectSorted(&shared_vertices, path_vertices);
        IntersectSorted(&shared_edges, path_edges);
      }
      // The paper's early termination: once nothing is shared, the pair
      // cannot be path-coherent.
      if (shared_vertices.empty() && shared_edges.empty()) return false;
      last_path = path;
    }
  }
  if (first) return false;  // no vertex pair at all

  // Select psi. Vertices inside either block are unusable (the query
  // decomposition could fail to make progress); among the valid shared
  // objects prefer the one nearest the middle of a witness path, which
  // keeps the query recursion balanced.
  VertexId best_vertex = kInvalidVertex;
  uint64_t best_edge = ~uint64_t{0};
  size_t best_vertex_gap = last_path.size();
  size_t best_edge_gap = last_path.size();
  const size_t mid = last_path.size() / 2;
  for (size_t pos = 0; pos < last_path.size(); ++pos) {
    const VertexId v = last_path[pos];
    const size_t gap = pos > mid ? pos - mid : mid - pos;
    if (std::binary_search(shared_vertices.begin(), shared_vertices.end(),
                           v) &&
        !CodeInBlock(code_of_[v], base_x, level) &&
        !CodeInBlock(code_of_[v], base_y, level) &&
        gap < best_vertex_gap) {
      best_vertex = v;
      best_vertex_gap = gap;
    }
    if (pos + 1 < last_path.size()) {
      const uint64_t e = DirectedEdgeKey(v, last_path[pos + 1]);
      if (std::binary_search(shared_edges.begin(), shared_edges.end(), e) &&
          gap < best_edge_gap) {
        best_edge = e;
        best_edge_gap = gap;
      }
    }
  }
  if (best_vertex != kInvalidVertex) {
    *psi = Psi{best_vertex, best_vertex};
    return true;
  }
  if (best_edge != ~uint64_t{0}) {
    *psi = Psi{static_cast<VertexId>(best_edge >> 32),
               static_cast<VertexId>(best_edge & 0xffffffffu)};
    return true;
  }
  return false;
}

void PcpdIndex::Refine(uint64_t base_x, uint64_t base_y, uint32_t level) {
  const Range rx = BlockRange(base_x, level);
  const Range ry = BlockRange(base_y, level);
  if (rx.Empty() || ry.Empty()) return;
  if (base_x == base_y && rx.Size() == 1) return;  // single vertex vs itself

  Psi psi;
  if (FindCommonObject(rx, ry, base_x, base_y, level, &psi)) {
    pcp_.emplace(PairKey{BlockId(base_x, level), BlockId(base_y, level)},
                 psi);
    return;
  }
  if (level == 0) return;  // unreachable singleton pair

  const uint64_t quarter = uint64_t{1} << (2 * (level - 1));
  for (int qx = 0; qx < 4; ++qx) {
    for (int qy = 0; qy < 4; ++qy) {
      Refine(base_x + quarter * qx, base_y + quarter * qy, level - 1);
    }
  }
}

const PcpdIndex::Psi& PcpdIndex::FindPair(VertexId s, VertexId t,
                                          QueryCounters* counters) const {
  static constexpr Psi kMissing{kInvalidVertex, kInvalidVertex};
  const uint64_t cs = code_of_[s];
  const uint64_t ct = code_of_[t];
  for (uint32_t level = root_level_;; --level) {
    const uint64_t mask = (level >= 32) ? 0 : ~((uint64_t{1} << (2 * level)) - 1);
    const PairKey key{BlockId(cs & mask, level), BlockId(ct & mask, level)};
    counters->TreeLookup();
    const auto it = pcp_.find(key);
    if (it != pcp_.end()) return it->second;
    if (level == 0) break;
  }
  return kMissing;
}

void PcpdIndex::AppendPath(VertexId s, VertexId t, Path* out,
                           QueryCounters* counters) const {
  if (s == t) return;
  const Psi& psi = FindPair(s, t, counters);
  if (psi.a == kInvalidVertex) {
    out->clear();  // unreachable or uncovered: signal failure upward
    return;
  }
  if (!psi.IsEdge()) {
    AppendPath(s, psi.a, out, counters);
    if (out->empty()) return;
    AppendPath(psi.a, t, out, counters);
    return;
  }
  AppendPath(s, psi.a, out, counters);
  if (out->empty()) return;
  out->push_back(psi.b);
  AppendPath(psi.b, t, out, counters);
}

Path PcpdIndex::PathQuery(QueryContext* ctx, VertexId s, VertexId t) const {
  ctx->counters.Reset();
  Path path{s};
  if (s == t) return path;
  AppendPath(s, t, &path, &ctx->counters);
  return path;
}

Distance PcpdIndex::DistanceQuery(QueryContext* ctx, VertexId s,
                                  VertexId t) const {
  ctx->counters.Reset();
  if (s == t) return 0;
  // PCPD answers distance queries by materializing the path and summing
  // its edge weights (Section 3.5).
  Path path = PathQuery(ctx, s, t);
  if (path.empty()) return kInfDistance;
  Distance total = 0;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    total += *graph_.EdgeWeight(path[i], path[i + 1]);
  }
  return total;
}

size_t PcpdIndex::IndexBytes() const {
  return VectorBytes(code_of_) + VectorBytes(sorted_) +
         VectorBytes(sorted_codes_) +
         pcp_.size() * (sizeof(PairKey) + sizeof(Psi) + sizeof(void*)) +
         pcp_.bucket_count() * sizeof(void*);
}

}  // namespace roadnet
