#ifndef ROADNET_PQ_INDEXED_HEAP_H_
#define ROADNET_PQ_INDEXED_HEAP_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace roadnet {

// Indexed 4-ary min-heap keyed by (key, item-id) supporting decrease-key.
//
// This is the priority queue behind every Dijkstra variant in the
// repository. Items are dense integer ids in [0, capacity). A 4-ary layout
// is used instead of binary because Dijkstra on road networks is
// decrease-key heavy and the shallower tree wins on sift-up cost and cache
// behaviour.
//
// The position array is persistent across Clear() calls via a generation
// counter, so reusing one heap across many queries costs O(1) per query
// instead of O(capacity).
template <typename Key>
class IndexedHeap {
 public:
  explicit IndexedHeap(uint32_t capacity)
      : positions_(capacity, Slot{0, 0}) {}

  bool Empty() const { return heap_.empty(); }
  size_t Size() const { return heap_.size(); }

  // Removes all items in O(1) amortized.
  void Clear() {
    heap_.clear();
    ++generation_;
  }

  // True if the item is currently queued.
  bool Contains(uint32_t item) const {
    const Slot& s = positions_[item];
    return s.generation == generation_ && s.position != kPopped;
  }

  // Key of a queued item. Requires Contains(item).
  Key KeyOf(uint32_t item) const {
    return heap_[positions_[item].position].key;
  }

  // Inserts a new item. Requires !Contains(item).
  void Push(uint32_t item, Key key) {
    assert(!Contains(item));
    heap_.push_back(Entry{key, item});
    positions_[item] =
        Slot{generation_, static_cast<uint32_t>(heap_.size() - 1)};
    SiftUp(static_cast<uint32_t>(heap_.size() - 1));
  }

  // Lowers the key of a queued item. Requires Contains(item) and
  // key <= KeyOf(item).
  void DecreaseKey(uint32_t item, Key key) {
    uint32_t pos = positions_[item].position;
    assert(key <= heap_[pos].key);
    heap_[pos].key = key;
    SiftUp(pos);
  }

  // Inserts the item or lowers its key, whichever applies. Returns false if
  // the item was queued with an equal-or-smaller key already.
  bool PushOrDecrease(uint32_t item, Key key) {
    if (Contains(item)) {
      if (key >= KeyOf(item)) return false;
      DecreaseKey(item, key);
      return true;
    }
    Push(item, key);
    return true;
  }

  // Smallest key. Requires !Empty().
  Key MinKey() const { return heap_[0].key; }
  // Item with the smallest key. Requires !Empty().
  uint32_t MinItem() const { return heap_[0].item; }

  // Removes and returns the item with the smallest key. Requires !Empty().
  uint32_t PopMin() {
    uint32_t item = heap_[0].item;
    positions_[item].position = kPopped;
    if (heap_.size() > 1) {
      heap_[0] = heap_.back();
      heap_.pop_back();
      positions_[heap_[0].item].position = 0;
      SiftDown(0);
    } else {
      heap_.pop_back();
    }
    return item;
  }

 private:
  static constexpr uint32_t kPopped = std::numeric_limits<uint32_t>::max();
  static constexpr uint32_t kArity = 4;

  struct Entry {
    Key key;
    uint32_t item;
  };
  struct Slot {
    uint32_t generation;
    uint32_t position;
  };

  void SiftUp(uint32_t pos) {
    Entry e = heap_[pos];
    while (pos > 0) {
      uint32_t parent = (pos - 1) / kArity;
      if (heap_[parent].key <= e.key) break;
      heap_[pos] = heap_[parent];
      positions_[heap_[pos].item].position = pos;
      pos = parent;
    }
    heap_[pos] = e;
    positions_[e.item].position = pos;
  }

  void SiftDown(uint32_t pos) {
    Entry e = heap_[pos];
    const uint32_t n = static_cast<uint32_t>(heap_.size());
    while (true) {
      uint32_t first_child = pos * kArity + 1;
      if (first_child >= n) break;
      uint32_t last_child = std::min(first_child + kArity, n);
      uint32_t best = first_child;
      for (uint32_t c = first_child + 1; c < last_child; ++c) {
        if (heap_[c].key < heap_[best].key) best = c;
      }
      if (heap_[best].key >= e.key) break;
      heap_[pos] = heap_[best];
      positions_[heap_[pos].item].position = pos;
      pos = best;
    }
    heap_[pos] = e;
    positions_[e.item].position = pos;
  }

  std::vector<Entry> heap_;
  std::vector<Slot> positions_;
  uint32_t generation_ = 1;
};

}  // namespace roadnet

#endif  // ROADNET_PQ_INDEXED_HEAP_H_
