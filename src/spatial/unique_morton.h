#ifndef ROADNET_SPATIAL_UNIQUE_MORTON_H_
#define ROADNET_SPATIAL_UNIQUE_MORTON_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace roadnet {

// Assigns every vertex a UNIQUE Morton code: coordinates are normalized
// to the bounding box, scaled by 16, and runs of co-located vertices are
// nudged apart inside the scaled 16x16 sub-cell (so at most 256 vertices
// may share one exact coordinate). Quadtree-based structures (PCPD, the
// approximate distance oracle) need uniqueness so their recursive pair
// refinement always bottoms out at true singletons.
//
// Returns the quadtree root level (codes fit in 2 * root_level bits) and
// fills codes[v], plus the vertex ids sorted by code and the sorted code
// array (aligned).
uint32_t BuildUniqueMortonCodes(const Graph& g,
                                std::vector<uint64_t>* code_of,
                                std::vector<VertexId>* sorted,
                                std::vector<uint64_t>* sorted_codes);

}  // namespace roadnet

#endif  // ROADNET_SPATIAL_UNIQUE_MORTON_H_
