#ifndef ROADNET_SPATIAL_POINT_H_
#define ROADNET_SPATIAL_POINT_H_

#include <algorithm>
#include <cstdint>
#include <cstdlib>

namespace roadnet {

// Planar vertex coordinate. DIMACS .co files store integer micro-degrees;
// the synthetic generator produces integer grid coordinates. All spatial
// reasoning in the paper (grids, shells, L-infinity query buckets, quadtree
// squares) is integer-exact on these.
struct Point {
  int32_t x = 0;
  int32_t y = 0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

// Chebyshev (L-infinity) distance, the metric used to bucket the paper's
// query sets Q1..Q10 (Section 4.2).
inline int64_t LInfDistance(const Point& a, const Point& b) {
  int64_t dx = std::abs(static_cast<int64_t>(a.x) - b.x);
  int64_t dy = std::abs(static_cast<int64_t>(a.y) - b.y);
  return std::max(dx, dy);
}

// Squared Euclidean distance, used by the generator when assigning
// travel-time edge weights.
inline int64_t SquaredEuclidean(const Point& a, const Point& b) {
  int64_t dx = static_cast<int64_t>(a.x) - b.x;
  int64_t dy = static_cast<int64_t>(a.y) - b.y;
  return dx * dx + dy * dy;
}

}  // namespace roadnet

#endif  // ROADNET_SPATIAL_POINT_H_
