#ifndef ROADNET_SPATIAL_MORTON_H_
#define ROADNET_SPATIAL_MORTON_H_

#include <cstdint>

namespace roadnet {

// Z-order (Morton) encoding of 32-bit cell coordinates into a 64-bit code.
// SILC stores each first-hop colour region as a set of intervals on the
// Z-curve (Appendix D), and quadtree blocks map to aligned Z-intervals.

namespace internal_morton {

// Spreads the low 32 bits of v so that bit i moves to bit 2*i.
inline uint64_t SpreadBits(uint64_t v) {
  v &= 0xffffffffULL;
  v = (v | (v << 16)) & 0x0000ffff0000ffffULL;
  v = (v | (v << 8)) & 0x00ff00ff00ff00ffULL;
  v = (v | (v << 4)) & 0x0f0f0f0f0f0f0f0fULL;
  v = (v | (v << 2)) & 0x3333333333333333ULL;
  v = (v | (v << 1)) & 0x5555555555555555ULL;
  return v;
}

// Inverse of SpreadBits.
inline uint32_t CompactBits(uint64_t v) {
  v &= 0x5555555555555555ULL;
  v = (v | (v >> 1)) & 0x3333333333333333ULL;
  v = (v | (v >> 2)) & 0x0f0f0f0f0f0f0f0fULL;
  v = (v | (v >> 4)) & 0x00ff00ff00ff00ffULL;
  v = (v | (v >> 8)) & 0x0000ffff0000ffffULL;
  v = (v | (v >> 16)) & 0x00000000ffffffffULL;
  return static_cast<uint32_t>(v);
}

}  // namespace internal_morton

// Interleaves (x, y) into a Z-order code. x occupies even bits.
inline uint64_t MortonEncode(uint32_t x, uint32_t y) {
  return internal_morton::SpreadBits(x) |
         (internal_morton::SpreadBits(y) << 1);
}

// Recovers x from a Z-order code.
inline uint32_t MortonX(uint64_t code) {
  return internal_morton::CompactBits(code);
}

// Recovers y from a Z-order code.
inline uint32_t MortonY(uint64_t code) {
  return internal_morton::CompactBits(code >> 1);
}

}  // namespace roadnet

#endif  // ROADNET_SPATIAL_MORTON_H_
