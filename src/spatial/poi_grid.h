#ifndef ROADNET_SPATIAL_POI_GRID_H_
#define ROADNET_SPATIAL_POI_GRID_H_

#include <cstdint>
#include <queue>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "spatial/point.h"

namespace roadnet {

// Uniform grid over one POI list supporting incremental Euclidean
// nearest-neighbour retrieval — the candidate generator of the IER kNN
// baseline (Abeywickrama et al.: fetch Euclidean-nearest candidates one
// at a time, probe the network-distance oracle, stop once the Euclidean
// lower bound passes the kth network distance).
//
// Cells are square, sized so the grid holds roughly one POI per cell;
// duplicate coordinates and a degenerate bounding box (every POI at one
// point, or an empty list) collapse to a single cell and stay correct.
// The grid itself is immutable after construction; all retrieval state
// lives in a caller-owned Cursor, so one grid serves any number of
// threads (same contract as the index/QueryContext split).
class PoiGrid {
 public:
  // Per-query retrieval state. Reusing one cursor across queries keeps
  // retrieval allocation-free after the first few rings.
  class Cursor {
   public:
    Cursor() = default;

   private:
    friend class PoiGrid;
    struct Entry {
      int64_t sq;   // squared Euclidean distance to the query point
      VertexId v;   // POI vertex id (ties broken ascending)
      friend bool operator>(const Entry& a, const Entry& b) {
        return a.sq != b.sq ? a.sq > b.sq : a.v > b.v;
      }
    };
    Point query{};
    int64_t qcx = 0, qcy = 0;   // clamped query cell
    uint32_t next_ring = 0;     // first cell ring not yet loaded
    uint32_t max_ring = 0;      // last ring that intersects the grid
    bool grid_exhausted = true;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  };

  // Builds the grid over `pois` using g's vertex coordinates. The graph
  // must outlive the grid; the POI list is copied.
  PoiGrid(const Graph& g, std::span<const VertexId> pois);

  // Starts a nearest-neighbour stream from `query`.
  void Begin(Cursor* cursor, Point query) const;

  // Pops the next POI in ascending (squared Euclidean distance, vertex
  // id) order. Returns false when every POI has been emitted. The order
  // is total and deterministic, so IER candidate evaluation is
  // reproducible bit-for-bit.
  bool Next(Cursor* cursor, VertexId* poi, int64_t* sq_dist) const;

  size_t NumPois() const { return pois_.size(); }
  uint32_t CellsX() const { return nx_; }
  uint32_t CellsY() const { return ny_; }
  int64_t CellWidth() const { return cell_w_; }

 private:
  // Pushes every POI of one cell ring (Chebyshev cell-distance exactly
  // `ring` from the cursor's cell) into the cursor's heap.
  void LoadRing(Cursor* cursor, uint32_t ring) const;
  void LoadCell(Cursor* cursor, int64_t cx, int64_t cy) const;

  const Graph& graph_;
  std::vector<VertexId> pois_;     // cell-major, vertex-id-sorted per cell
  std::vector<uint32_t> offsets_;  // CSR over pois_, nx_*ny_+1 entries
  int64_t min_x_ = 0, min_y_ = 0;
  int64_t cell_w_ = 1;
  uint32_t nx_ = 1, ny_ = 1;
};

}  // namespace roadnet

#endif  // ROADNET_SPATIAL_POI_GRID_H_
