#include "spatial/unique_morton.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "spatial/morton.h"

namespace roadnet {

uint32_t BuildUniqueMortonCodes(const Graph& g,
                                std::vector<uint64_t>* code_of,
                                std::vector<VertexId>* sorted,
                                std::vector<uint64_t>* sorted_codes) {
  const uint32_t n = g.NumVertices();
  const Rect& b = g.Bounds();

  std::vector<std::pair<uint64_t, VertexId>> coded(n);
  for (VertexId v = 0; v < n; ++v) {
    const Point& p = g.Coord(v);
    const uint32_t x =
        static_cast<uint32_t>((static_cast<int64_t>(p.x) - b.min_x) * 16);
    const uint32_t y =
        static_cast<uint32_t>((static_cast<int64_t>(p.y) - b.min_y) * 16);
    coded[v] = {MortonEncode(x, y), v};
  }
  std::sort(coded.begin(), coded.end());

  code_of->resize(n);
  for (const auto& [code, v] : coded) (*code_of)[v] = code;
  // Nudge co-located runs apart: the k-th duplicate moves to sub-cell
  // (k%16, k/16) of the 16x16 scaled cell.
  for (size_t i = 0; i < coded.size();) {
    size_t j = i + 1;
    while (j < coded.size() && coded[j].first == coded[i].first) ++j;
    if (j - i > 1) {
      assert(j - i <= 256 && "too many co-located vertices");
      const uint32_t bx = MortonX(coded[i].first);
      const uint32_t by = MortonY(coded[i].first);
      for (size_t k = i; k < j; ++k) {
        const uint32_t d = static_cast<uint32_t>(k - i);
        (*code_of)[coded[k].second] = MortonEncode(bx + d % 16, by + d / 16);
      }
    }
    i = j;
  }

  uint64_t max_code = 0;
  for (uint64_t c : *code_of) max_code = std::max(max_code, c);
  uint32_t root_level = 0;
  while (root_level < 32 && (max_code >> (2 * root_level)) != 0) {
    ++root_level;
  }

  sorted->resize(n);
  for (VertexId v = 0; v < n; ++v) (*sorted)[v] = v;
  std::sort(sorted->begin(), sorted->end(), [&](VertexId a, VertexId b2) {
    return (*code_of)[a] < (*code_of)[b2];
  });
  sorted_codes->clear();
  sorted_codes->reserve(n);
  for (VertexId v : *sorted) sorted_codes->push_back((*code_of)[v]);
  return root_level;
}

}  // namespace roadnet
