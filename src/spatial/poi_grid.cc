#include "spatial/poi_grid.h"

#include <algorithm>
#include <cmath>

namespace roadnet {

PoiGrid::PoiGrid(const Graph& g, std::span<const VertexId> pois)
    : graph_(g) {
  // Bounding box of the POI coordinates (not the whole graph: a tight
  // box keeps cells small where the POIs actually are).
  int64_t max_x = 0, max_y = 0;
  if (!pois.empty()) {
    min_x_ = max_x = g.Coord(pois[0]).x;
    min_y_ = max_y = g.Coord(pois[0]).y;
    for (VertexId v : pois) {
      const Point p = g.Coord(v);
      min_x_ = std::min<int64_t>(min_x_, p.x);
      min_y_ = std::min<int64_t>(min_y_, p.y);
      max_x = std::max<int64_t>(max_x, p.x);
      max_y = std::max<int64_t>(max_y, p.y);
    }
  }
  // Square cells, roughly one POI per cell: side = ceil(sqrt(|P|)),
  // capped so a huge sparse set cannot allocate an absurd cell table. A
  // degenerate box (duplicate coordinates everywhere) collapses to one
  // cell, which the ring walk handles naturally.
  const uint32_t side = std::clamp<uint32_t>(
      static_cast<uint32_t>(
          std::ceil(std::sqrt(static_cast<double>(pois.size())))),
      1, 4096);
  const int64_t extent = std::max(max_x - min_x_, max_y - min_y_) + 1;
  cell_w_ = std::max<int64_t>(1, (extent + side - 1) / side);
  nx_ = static_cast<uint32_t>((max_x - min_x_) / cell_w_ + 1);
  ny_ = static_cast<uint32_t>((max_y - min_y_) / cell_w_ + 1);

  // Counting sort into cell-major order; within a cell POIs are sorted
  // by vertex id so heap tie-breaks (and therefore the whole stream) are
  // deterministic regardless of input order.
  const size_t num_cells = static_cast<size_t>(nx_) * ny_;
  std::vector<uint32_t> counts(num_cells, 0);
  auto cell_of = [&](VertexId v) {
    const Point p = graph_.Coord(v);
    const size_t cx = static_cast<size_t>((p.x - min_x_) / cell_w_);
    const size_t cy = static_cast<size_t>((p.y - min_y_) / cell_w_);
    return cy * nx_ + cx;
  };
  for (VertexId v : pois) ++counts[cell_of(v)];
  offsets_.assign(num_cells + 1, 0);
  for (size_t c = 0; c < num_cells; ++c) {
    offsets_[c + 1] = offsets_[c] + counts[c];
  }
  pois_.resize(pois.size());
  std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (VertexId v : pois) pois_[cursor[cell_of(v)]++] = v;
  for (size_t c = 0; c < num_cells; ++c) {
    std::sort(pois_.begin() + offsets_[c], pois_.begin() + offsets_[c + 1]);
  }
}

void PoiGrid::Begin(Cursor* cursor, Point query) const {
  cursor->query = query;
  cursor->qcx = std::clamp<int64_t>((query.x - min_x_) / cell_w_, 0, nx_ - 1);
  cursor->qcy = std::clamp<int64_t>((query.y - min_y_) / cell_w_, 0, ny_ - 1);
  cursor->next_ring = 0;
  // The furthest ring that still intersects the grid from the clamped
  // query cell; beyond it every cell has been visited.
  cursor->max_ring = static_cast<uint32_t>(std::max(
      std::max(cursor->qcx, int64_t{nx_ - 1} - cursor->qcx),
      std::max(cursor->qcy, int64_t{ny_ - 1} - cursor->qcy)));
  cursor->grid_exhausted = pois_.empty();
  while (!cursor->heap.empty()) cursor->heap.pop();
}

void PoiGrid::LoadCell(Cursor* cursor, int64_t cx, int64_t cy) const {
  if (cx < 0 || cy < 0 || cx >= nx_ || cy >= ny_) return;
  const size_t cell = static_cast<size_t>(cy) * nx_ + cx;
  for (uint32_t i = offsets_[cell]; i < offsets_[cell + 1]; ++i) {
    const VertexId v = pois_[i];
    cursor->heap.push(
        {SquaredEuclidean(graph_.Coord(v), cursor->query), v});
  }
}

void PoiGrid::LoadRing(Cursor* cursor, uint32_t ring) const {
  const int64_t r = ring, qx = cursor->qcx, qy = cursor->qcy;
  if (r == 0) {
    LoadCell(cursor, qx, qy);
    return;
  }
  for (int64_t cx = qx - r; cx <= qx + r; ++cx) {
    LoadCell(cursor, cx, qy - r);
    LoadCell(cursor, cx, qy + r);
  }
  for (int64_t cy = qy - r + 1; cy <= qy + r - 1; ++cy) {
    LoadCell(cursor, qx - r, cy);
    LoadCell(cursor, qx + r, cy);
  }
}

bool PoiGrid::Next(Cursor* cursor, VertexId* poi, int64_t* sq_dist) const {
  if (pois_.empty()) return false;
  for (;;) {
    // After loading every ring < next_ring, any still-unloaded POI lies
    // at Euclidean distance >= (next_ring - 1) * cell_w from the query
    // point, so a heap entry strictly below that bound is safe to emit.
    // (Strict: an unloaded POI at exactly the bound could tie and lose
    // the vertex-id tie-break.)
    bool safe = false;
    if (cursor->next_ring > cursor->max_ring) {
      safe = !cursor->heap.empty();  // whole grid loaded
    } else if (!cursor->heap.empty() && cursor->next_ring > 0) {
      const int64_t bound =
          static_cast<int64_t>(cursor->next_ring - 1) * cell_w_;
      safe = cursor->heap.top().sq < bound * bound;
    }
    if (safe) {
      *poi = cursor->heap.top().v;
      *sq_dist = cursor->heap.top().sq;
      cursor->heap.pop();
      return true;
    }
    if (cursor->next_ring > cursor->max_ring) return false;  // exhausted
    LoadRing(cursor, cursor->next_ring);
    ++cursor->next_ring;
  }
}

}  // namespace roadnet
