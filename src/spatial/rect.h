#ifndef ROADNET_SPATIAL_RECT_H_
#define ROADNET_SPATIAL_RECT_H_

#include <algorithm>
#include <cstdint>
#include <limits>

#include "spatial/point.h"

namespace roadnet {

// Closed axis-aligned integer rectangle [min_x, max_x] x [min_y, max_y].
// Used for grid cells, TNR shells, and the square regions of SILC/PCPD.
struct Rect {
  int32_t min_x = 0;
  int32_t min_y = 0;
  int32_t max_x = -1;
  int32_t max_y = -1;

  static Rect Empty() { return Rect{}; }

  bool IsEmpty() const { return min_x > max_x || min_y > max_y; }

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  bool Intersects(const Rect& o) const {
    return !IsEmpty() && !o.IsEmpty() && min_x <= o.max_x &&
           o.min_x <= max_x && min_y <= o.max_y && o.min_y <= max_y;
  }

  // Grows the rectangle to cover p.
  void Expand(const Point& p) {
    if (IsEmpty()) {
      min_x = max_x = p.x;
      min_y = max_y = p.y;
      return;
    }
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.min_x == b.min_x && a.min_y == b.min_y && a.max_x == b.max_x &&
           a.max_y == b.max_y;
  }
};

// Bounding box of a point sequence.
template <typename Iterator>
Rect BoundingBox(Iterator begin, Iterator end) {
  Rect r = Rect::Empty();
  for (Iterator it = begin; it != end; ++it) r.Expand(*it);
  return r;
}

// True if the segment (a, b) crosses or touches the boundary of rect while
// having at least one endpoint strictly related to each side: i.e. one
// endpoint inside (or on) the rectangle and the other outside it. This is
// the "edge intersects the shell" predicate TNR needs: shells are the
// boundaries of cell-aligned squares, and road edges are short relative to
// cells, so endpoint sidedness is the correct and exact test for the
// cell-granularity geometry used throughout (shell membership is computed
// on grid cells, not raw coordinates; see tnr/grid.h).
inline bool SegmentCrossesRect(const Rect& r, const Point& a,
                               const Point& b) {
  return r.Contains(a) != r.Contains(b);
}

}  // namespace roadnet

#endif  // ROADNET_SPATIAL_RECT_H_
