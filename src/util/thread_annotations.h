#ifndef ROADNET_UTIL_THREAD_ANNOTATIONS_H_
#define ROADNET_UTIL_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis attributes (DESIGN.md "Static analysis &
// sanitizer matrix"). Annotating a mutex-guarded field with
// ROADNET_GUARDED_BY(mu) and the functions that need the lock with
// ROADNET_REQUIRES(mu) turns the locking protocol into something the
// compiler *proves* on every Clang build (-Wthread-safety, promoted to
// an error by check.sh's tsa stage) instead of something TSan sometimes
// catches at runtime. On GCC — and on Clang versions without the
// attribute — every macro expands to nothing, so the annotations are
// free documentation there.
//
// Conventions (see DESIGN.md for the full discussion):
//   - ROADNET_GUARDED_BY(mu) on every field written under a lock.
//   - ROADNET_REQUIRES(mu) on private helpers called with the lock held;
//     public functions acquire the lock themselves and are unannotated.
//   - ROADNET_EXCLUDES(mu) on functions that acquire `mu` and would
//     deadlock if the caller already held it (non-reentrant std::mutex).
//   - Raw std::mutex defeats the analysis at std::unique_lock sites, so
//     the concurrency layer uses the annotated wrappers in util/mutex.h
//     (Mutex is a CAPABILITY, MutexLock a SCOPED_CAPABILITY). Lint rule
//     R10 enforces the wrapper types in src/server|engine|obs.

#if defined(__clang__) && !defined(SWIG)
#define ROADNET_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define ROADNET_THREAD_ANNOTATION_(x)  // no-op on non-Clang compilers
#endif

// Declares a class to be a lockable capability ("mutex" names it in
// diagnostics).
#define ROADNET_CAPABILITY(x) ROADNET_THREAD_ANNOTATION_(capability(x))

// Declares an RAII class whose constructor acquires a capability and
// whose destructor releases it.
#define ROADNET_SCOPED_CAPABILITY ROADNET_THREAD_ANNOTATION_(scoped_lockable)

// The data member is protected by the given capability: reads require the
// lock held shared, writes require it held exclusively.
#define ROADNET_GUARDED_BY(x) ROADNET_THREAD_ANNOTATION_(guarded_by(x))

// Like GUARDED_BY for pointer members: the pointed-to data (not the
// pointer itself) is protected.
#define ROADNET_PT_GUARDED_BY(x) ROADNET_THREAD_ANNOTATION_(pt_guarded_by(x))

// The annotated function must be called with the capability held (and
// does not release it).
#define ROADNET_REQUIRES(...) \
  ROADNET_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define ROADNET_REQUIRES_SHARED(...) \
  ROADNET_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// The annotated function acquires/releases the capability; callers must
// not already hold it (ACQUIRE) / must hold it (RELEASE).
#define ROADNET_ACQUIRE(...) \
  ROADNET_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ROADNET_ACQUIRE_SHARED(...) \
  ROADNET_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define ROADNET_RELEASE(...) \
  ROADNET_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define ROADNET_RELEASE_SHARED(...) \
  ROADNET_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

// Attempts the acquisition; the first argument is the return value that
// means "acquired".
#define ROADNET_TRY_ACQUIRE(...) \
  ROADNET_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// The annotated function must be called WITHOUT the capability held (it
// acquires it itself; std::mutex is non-reentrant, so a caller holding
// the lock would deadlock).
#define ROADNET_EXCLUDES(...) \
  ROADNET_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// The function returns a reference to the named capability (accessor).
#define ROADNET_RETURN_CAPABILITY(x) \
  ROADNET_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch: the function's locking is deliberately invisible to the
// analysis. Every use must carry a written justification and counts
// against the <= 5 reasoned-waiver budget audited in DESIGN.md.
#define ROADNET_NO_THREAD_SAFETY_ANALYSIS \
  ROADNET_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // ROADNET_UTIL_THREAD_ANNOTATIONS_H_
