#ifndef ROADNET_UTIL_MUTEX_H_
#define ROADNET_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace roadnet {

// Annotated wrappers over std::mutex / std::condition_variable.
//
// Clang Thread Safety Analysis cannot see through std::unique_lock or a
// bare std::mutex member, so every mutex in the concurrency layer
// (src/server, src/engine, src/obs — enforced by lint rule R10) is a
// roadnet::Mutex, locked through the RAII MutexLock, and waited on
// through roadnet::CondVar. The wrappers add no state and no branches
// over the std primitives; they exist purely to carry the capability
// annotations the analysis keys on.

class ROADNET_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ROADNET_ACQUIRE() { mu_.lock(); }
  void Unlock() ROADNET_RELEASE() { mu_.unlock(); }
  bool TryLock() ROADNET_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

// RAII lock over a Mutex — the only way the concurrency layer takes a
// lock. SCOPED_CAPABILITY makes the analysis treat the guarded state as
// accessible for exactly the object's lifetime (or until an explicit
// Unlock(), used around blocking work the lock must not cover).
class ROADNET_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ROADNET_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() ROADNET_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Mid-scope release/reacquire, for "unlock around the expensive part"
  // shapes (e.g. the trace exporter draining rings to a file). The
  // analysis tracks both: guarded accesses between Unlock() and Lock()
  // are diagnosed.
  void Unlock() ROADNET_RELEASE() { lock_.unlock(); }
  void Lock() ROADNET_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

// Condition variable waited on under a MutexLock. Wait atomically
// releases and reacquires the lock; since the net lock state is
// unchanged the analysis needs no annotation here (same contract as
// abseil's CondVar). Notify deliberately takes no lock argument —
// whether to signal inside or outside the critical section is the
// caller's choice (R4 polices the unsafe pointer-reached case).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Predicate>
  void Wait(MutexLock& lock, Predicate pred) {
    cv_.wait(lock.lock_, std::move(pred));
  }

  // Returns pred() at exit, i.e. false on timeout with the predicate
  // still unsatisfied.
  template <typename Rep, typename Period, typename Predicate>
  bool WaitFor(MutexLock& lock,
               const std::chrono::duration<Rep, Period>& timeout,
               Predicate pred) {
    return cv_.wait_for(lock.lock_, timeout, std::move(pred));
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(MutexLock& lock,
                         const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.lock_, timeout);
  }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace roadnet

#endif  // ROADNET_UTIL_MUTEX_H_
