#ifndef ROADNET_UTIL_FLAGS_H_
#define ROADNET_UTIL_FLAGS_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace roadnet {

// Strict --flag parser shared by the command-line tools.
//
// Each command declares its flags up front: `valued` flags consume the
// following token as their value, `boolean` flags take none and map to
// "1". Anything else — an unknown flag (so typos like --metrics-ouT fail
// loudly instead of being silently ignored), a valued flag at the end of
// the line, or a stray positional token — is an error described in
// *error, and the parse returns nullopt.
struct FlagSpec {
  std::vector<std::string> valued;
  std::vector<std::string> boolean;
};

using FlagMap = std::map<std::string, std::string>;

inline std::optional<FlagMap> ParseFlags(int argc, char* const* argv,
                                         int first, const FlagSpec& spec,
                                         std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  auto contains = [](const std::vector<std::string>& v,
                     const std::string& s) {
    for (const std::string& e : v) {
      if (e == s) return true;
    }
    return false;
  };
  FlagMap flags;
  for (int i = first; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      return fail("unexpected argument '" + token + "'");
    }
    const std::string name = token.substr(2);
    if (flags.count(name) > 0) {
      return fail("duplicate flag --" + name);
    }
    if (contains(spec.valued, name)) {
      if (i + 1 >= argc) {
        return fail("flag --" + name + " requires a value");
      }
      flags[name] = argv[++i];
    } else if (contains(spec.boolean, name)) {
      flags[name] = "1";
    } else {
      return fail("unknown flag --" + name);
    }
  }
  return flags;
}

}  // namespace roadnet

#endif  // ROADNET_UTIL_FLAGS_H_
