#ifndef ROADNET_UTIL_BYTES_H_
#define ROADNET_UTIL_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace roadnet {

// Helpers used by every index to account for its resident size, mirroring
// the paper's "space consumption (MB)" metric. We count the bytes actually
// held by containers (capacity-based for vectors) rather than process RSS,
// which makes the numbers deterministic and comparable across methods.

// Bytes held by the heap buffer of a vector of trivially sized elements.
template <typename T>
size_t VectorBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

// Bytes held by a vector of vectors (outer buffer plus every inner buffer).
template <typename T>
size_t NestedVectorBytes(const std::vector<std::vector<T>>& v) {
  size_t total = v.capacity() * sizeof(std::vector<T>);
  for (const auto& inner : v) total += inner.capacity() * sizeof(T);
  return total;
}

// Formats a byte count as mebibytes, the unit used in Figure 6(a).
inline double BytesToMiB(size_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace roadnet

#endif  // ROADNET_UTIL_BYTES_H_
