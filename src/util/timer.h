#ifndef ROADNET_UTIL_TIMER_H_
#define ROADNET_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace roadnet {

// Monotonic wall-clock stopwatch used for all preprocessing and query
// timings reported by the experiment framework.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  // Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  // Elapsed time since construction or the last Reset(), in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // Elapsed time in microseconds (the unit the paper reports query times in).
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

  // Elapsed time in integer nanoseconds (the unit the latency histograms
  // record, so sub-microsecond queries keep their resolution).
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace roadnet

#endif  // ROADNET_UTIL_TIMER_H_
