#ifndef ROADNET_KNN_IER_H_
#define ROADNET_KNN_IER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "obs/query_counters.h"
#include "poi/poi_set.h"
#include "routing/knn.h"
#include "routing/path_index.h"
#include "spatial/poi_grid.h"

namespace roadnet {

// IER (Incremental Euclidean Restriction) kNN: fetch POIs in ascending
// Euclidean order from a spatial grid, probe each with an exact
// network-distance oracle (any PathIndex — the CH core in practice), and
// stop once the Euclidean lower bound of the next candidate exceeds the
// kth-best network distance (Abeywickrama et al., PAPERS.md).
//
// Exactness does not assume edge weights equal Euclidean lengths.
// Instead the constructor derives the largest rho such that every edge
// satisfies weight >= rho * euclidean_length; then any path obeys
// d_net(s,t) >= rho * euclid(s,t) by the triangle inequality, making
// rho * euclid a certified lower bound even for travel-time weights
// (the generator scales lengths by road-class factors and truncates).
// Termination stays strict — the loop only stops when the bound
// *strictly* exceeds the kth distance, so vertex-id tie-breaks match
// the Dijkstra oracle exactly.
//
// Immutable after construction; per-thread Context per R2/R3.
class IerKnnIndex {
 public:
  class Context {
   public:
    Context() = default;
    Context(Context&&) = default;
    Context& operator=(Context&&) = default;

    // Counters of the most recent query: accumulated oracle-probe work
    // plus one table_lookup per candidate POI evaluated.
    QueryCounters counters;

   private:
    friend class IerKnnIndex;
    std::unique_ptr<QueryContext> oracle_ctx;
    PoiGrid::Cursor cursor;
    std::vector<KnnResult> results;  // bounded max-heap by (dist, id)
  };

  // The graph, oracle, and POI set must outlive the index; `oracle` must
  // be built over `g`, and `pois` placed on it.
  IerKnnIndex(const Graph& g, const PathIndex& oracle, const PoiSet& pois);

  Context NewContext() const;

  // The k POIs of `category` nearest to s by network distance, sorted
  // ascending by (distance, vertex id) — bit-identical to the bucket-CH
  // and brute-force Dijkstra answers. Fewer than k results when the
  // category is small or partly unreachable; k == 0 yields empty.
  void KnnQuery(Context* ctx, uint32_t category, VertexId s, size_t k,
                std::vector<KnnResult>* out) const;

  // Oracle probes issued by the most recent KnnQuery on `ctx` — the
  // bench's efficiency metric for candidate expansion.
  // (Stored in counters.table_lookups; this is a readable alias.)
  static uint64_t ProbesIssued(const Context& ctx) {
    return ctx.counters.table_lookups;
  }

  // The certified lower-bound scale (0 when the graph has no
  // positive-length edge; the bound degenerates to 0 and IER scans
  // candidates until exhaustion, which is slow but still exact).
  double LowerBoundScale() const { return rho_; }

  size_t IndexBytes() const;

 private:
  Distance EuclideanLowerBound(int64_t sq_dist) const;

  const Graph& graph_;
  const PathIndex& oracle_;
  const PoiSet& pois_;
  double rho_ = 0;
  std::vector<std::unique_ptr<PoiGrid>> grids_;  // one per category
};

}  // namespace roadnet

#endif  // ROADNET_KNN_IER_H_
