#ifndef ROADNET_KNN_KNN_INDEX_H_
#define ROADNET_KNN_KNN_INDEX_H_

#include <cstdint>
#include <vector>

#include "ch/ch_index.h"
#include "graph/types.h"
#include "obs/query_counters.h"
#include "poi/poi_set.h"
#include "routing/knn.h"

namespace roadnet {

// Bucket-based CH kNN (the many-to-many bucket construction of Knopp et
// al. turned into a one-to-many/kNN index; see DESIGN.md "kNN &
// one-to-many").
//
// Preprocessing runs one backward upward search from every POI of every
// category and records, for each settled vertex (in rank space), a
// bucket entry (poi, distance-to-poi). The graph is undirected, so one
// upward search space serves both directions. A query runs one forward
// upward search from the source and joins its settled (vertex, d_f)
// pairs against the vertex's bucket: d_f + bucket distance is an upper
// bound on the network distance to that POI, and the minimum over all
// common settled vertices is exact (the CH search-space property).
//
// kNN keeps a bounded k-max-heap with decrease-key over the candidate
// POIs; once it holds k results, forward vertices whose d_f already
// exceeds the kth-best distance are skipped without scanning their
// bucket. Ties break ascending on vertex id everywhere, so results are
// deterministic and comparable bit-for-bit against the Dijkstra oracle.
//
// Immutable after construction (lint R2); every query runs on a
// caller-owned Context (R3), so one index serves any number of threads.
class KnnBucketIndex {
 public:
  // Per-thread query scratch: the CH context of the forward search plus
  // the join state, sized once for the largest category.
  class Context {
   public:
    Context() = default;
    Context(Context&&) = default;
    Context& operator=(Context&&) = default;

    // Operation counts of the most recent query on this context
    // (settled = forward search space size, table_lookups = bucket
    // entries scanned). Reset on query entry, like every QueryContext.
    QueryCounters counters;

   private:
    friend class KnnBucketIndex;
    static constexpr uint32_t kNotInHeap = 0xFFFFFFFFu;

    std::unique_ptr<QueryContext> ch_ctx;
    std::vector<std::pair<VertexId, Distance>> space;
    // Join state per poi index of the queried category; reset via
    // `touched` so queries stay O(search space), not O(|POIs|).
    std::vector<Distance> best;
    std::vector<uint32_t> touched;
    // Bounded max-heap of the current k best (dist, poi index) pairs,
    // with heap_pos enabling decrease-key when a later bucket entry
    // improves a POI already in the heap.
    std::vector<std::pair<Distance, uint32_t>> heap;
    std::vector<uint32_t> heap_pos;
  };

  // Builds the per-category buckets; runs |POIs| upward searches. Both
  // references must outlive the index, and `pois` must have been placed
  // on the graph `ch` was built from (vertex counts are checked).
  KnnBucketIndex(const ChIndex& ch, const PoiSet& pois);

  Context NewContext() const;

  // The k POIs of `category` nearest to s by network distance, sorted
  // ascending by (distance, vertex id). Fewer than k results when the
  // category is smaller than k or partly unreachable — that is an OK
  // answer, not an error. k == 0 yields an empty result.
  void KnnQuery(Context* ctx, uint32_t category, VertexId s, size_t k,
                std::vector<KnnResult>* out) const;

  // Every reachable POI of `category` with its distance from s, sorted
  // ascending by (distance, vertex id): the batched-ETA primitive,
  // definitionally equal to KnnQuery with k = |category|.
  void OneToManyQuery(Context* ctx, uint32_t category, VertexId s,
                      std::vector<KnnResult>* out) const;

  const PoiSet& Pois() const { return pois_; }
  // Bytes of bucket structures beyond the CH index and the POI set.
  size_t IndexBytes() const;
  // Total bucket entries over all categories (the space/speed knob the
  // bench reports alongside query time).
  size_t NumBucketEntries() const;

 private:
  struct BucketEntry {
    uint32_t poi;   // index into the category's sorted vertex list
    Distance dist;  // exact upward distance from the POI
  };

  // Joins the forward search space of s against category c's buckets,
  // filling ctx->best/touched. With bound_k > 0 the bounded heap prunes
  // the scan; with bound_k == 0 the join is exhaustive (one-to-many).
  void Join(Context* ctx, uint32_t category, VertexId s,
            size_t bound_k) const;
  void TryImprove(Context* ctx, uint32_t poi, Distance dist,
                  size_t k) const;
  void HeapSiftUp(Context* ctx, size_t slot) const;
  void HeapSiftDown(Context* ctx, size_t slot) const;

  const ChIndex& ch_;
  const PoiSet& pois_;
  size_t max_category_size_ = 0;
  // Per category: CSR over contraction ranks into the entry array. High
  // ranks are the dense shared core every search converges into, so the
  // hot buckets sit in one contiguous stretch.
  std::vector<std::vector<uint32_t>> offsets_;
  std::vector<std::vector<BucketEntry>> entries_;
};

}  // namespace roadnet

#endif  // ROADNET_KNN_KNN_INDEX_H_
