#include "knn/knn_index.h"

#include <algorithm>
#include <cassert>

namespace roadnet {

namespace {

// Result ordering: ascending (distance, vertex id). Within one category
// poi indexes are assigned in ascending vertex order, so comparing
// (dist, poi index) is the same ordering.
inline bool HeapLess(const std::pair<Distance, uint32_t>& a,
                     const std::pair<Distance, uint32_t>& b) {
  return a.first != b.first ? a.first < b.first : a.second < b.second;
}

}  // namespace

KnnBucketIndex::KnnBucketIndex(const ChIndex& ch, const PoiSet& pois)
    : ch_(ch), pois_(pois) {
  const uint32_t n = pois_.NumVertices();
  const uint32_t num_categories = pois_.NumCategories();
  offsets_.resize(num_categories);
  entries_.resize(num_categories);
  std::unique_ptr<QueryContext> ctx = ch_.NewContext();
  std::vector<std::pair<VertexId, Distance>> space;
  // Backward upward search from every POI: the graph is undirected, so
  // the upward space from p holds exact d(p, v) for every settled v.
  // Entries are counting-sorted into a per-rank CSR so a query scans
  // each settled vertex's bucket as one contiguous range.
  std::vector<std::pair<uint32_t, BucketEntry>> raw;
  for (uint32_t c = 0; c < num_categories; ++c) {
    const std::span<const VertexId> list = pois_.Vertices(c);
    max_category_size_ = std::max(max_category_size_, list.size());
    raw.clear();
    for (uint32_t i = 0; i < list.size(); ++i) {
      ch_.UpwardSearchSpace(ctx.get(), list[i], &space);
      for (const auto& [v, d] : space) {
        assert(v < n);
        raw.push_back({ch_.RankOf(v), BucketEntry{i, d}});
      }
    }
    std::vector<uint32_t>& offsets = offsets_[c];
    offsets.assign(static_cast<size_t>(n) + 1, 0);
    for (const auto& [rank, entry] : raw) ++offsets[rank + 1];
    for (uint32_t r = 0; r < n; ++r) offsets[r + 1] += offsets[r];
    std::vector<BucketEntry>& entries = entries_[c];
    entries.resize(raw.size());
    std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const auto& [rank, entry] : raw) entries[cursor[rank]++] = entry;
  }
}

KnnBucketIndex::Context KnnBucketIndex::NewContext() const {
  Context ctx;
  ctx.ch_ctx = ch_.NewContext();
  ctx.best.assign(max_category_size_, kInfDistance);
  ctx.heap_pos.assign(max_category_size_, Context::kNotInHeap);
  // The exhaustive join appends every reached POI; sized to the worst
  // case up front so the bucket-scan loop never allocates (R11).
  ctx.touched.reserve(max_category_size_);
  return ctx;
}

void KnnBucketIndex::HeapSiftUp(Context* ctx, size_t slot) const {
  auto& heap = ctx->heap;
  while (slot > 0) {
    const size_t parent = (slot - 1) / 2;
    // Max-heap on (dist, poi): the root is the current kth-best.
    if (!HeapLess(heap[parent], heap[slot])) break;
    std::swap(heap[parent], heap[slot]);
    ctx->heap_pos[heap[parent].second] = static_cast<uint32_t>(parent);
    ctx->heap_pos[heap[slot].second] = static_cast<uint32_t>(slot);
    slot = parent;
  }
}

void KnnBucketIndex::HeapSiftDown(Context* ctx, size_t slot) const {
  auto& heap = ctx->heap;
  const size_t size = heap.size();
  for (;;) {
    size_t largest = slot;
    const size_t left = 2 * slot + 1, right = 2 * slot + 2;
    if (left < size && HeapLess(heap[largest], heap[left])) largest = left;
    if (right < size && HeapLess(heap[largest], heap[right])) {
      largest = right;
    }
    if (largest == slot) break;
    std::swap(heap[largest], heap[slot]);
    ctx->heap_pos[heap[largest].second] = static_cast<uint32_t>(largest);
    ctx->heap_pos[heap[slot].second] = static_cast<uint32_t>(slot);
    slot = largest;
  }
}

void KnnBucketIndex::TryImprove(Context* ctx, uint32_t poi, Distance dist,
                                size_t k) const {
  Distance& best = ctx->best[poi];
  if (best == kInfDistance) {
    ctx->touched.push_back(poi);
  } else if (dist >= best) {
    return;  // not an improvement
  }
  best = dist;
  const uint32_t pos = ctx->heap_pos[poi];
  if (pos != Context::kNotInHeap) {
    // Decrease-key: the entry shrank, so it can only violate the
    // max-heap property against its children.
    ctx->heap[pos].first = dist;
    HeapSiftDown(ctx, pos);
    return;
  }
  if (ctx->heap.size() < k) {
    ctx->heap.push_back({dist, poi});
    ctx->heap_pos[poi] = static_cast<uint32_t>(ctx->heap.size() - 1);
    HeapSiftUp(ctx, ctx->heap.size() - 1);
    return;
  }
  // Full heap: replace the kth-best if this candidate beats it. An
  // evicted POI keeps its best[] value, so a later bucket entry that
  // improves it below the bound re-enters through this same path.
  if (HeapLess({dist, poi}, ctx->heap[0])) {
    ctx->heap_pos[ctx->heap[0].second] = Context::kNotInHeap;
    ctx->heap[0] = {dist, poi};
    ctx->heap_pos[poi] = 0;
    HeapSiftDown(ctx, 0);
  }
}

void KnnBucketIndex::Join(Context* ctx, uint32_t category, VertexId s,
                          size_t bound_k) const {
  ctx->counters.Reset();
  ch_.UpwardSearchSpace(ctx->ch_ctx.get(), s, &ctx->space);
  ctx->counters.Settle(ctx->space.size());
  const std::vector<uint32_t>& offsets = offsets_[category];
  const std::vector<BucketEntry>& entries = entries_[category];
  for (const auto& [v, df] : ctx->space) {
    // Distance-bounded scan: once k results are held, a forward vertex
    // further than the kth-best cannot contribute (bucket distances are
    // non-negative), so its whole bucket is skipped.
    const bool full = bound_k > 0 && ctx->heap.size() == bound_k;
    if (full && df > ctx->heap[0].first) continue;
    const uint32_t rank = ch_.RankOf(v);
    for (uint32_t e = offsets[rank]; e < offsets[rank + 1]; ++e) {
      ctx->counters.TableLookup();
      const Distance total = df + entries[e].dist;
      if (bound_k > 0) {
        TryImprove(ctx, entries[e].poi, total, bound_k);
      } else {
        // Exhaustive one-to-many join: best[] only, no heap.
        Distance& best = ctx->best[entries[e].poi];
        if (best == kInfDistance) {
          ctx->touched.push_back(entries[e].poi);
          best = total;
        } else if (total < best) {
          best = total;
        }
      }
    }
  }
}

void KnnBucketIndex::KnnQuery(Context* ctx, uint32_t category, VertexId s,
                              size_t k, std::vector<KnnResult>* out) const {
  out->clear();
  if (k == 0) {
    ctx->counters.Reset();
    return;
  }
  Join(ctx, category, s, k);
  const std::span<const VertexId> list = pois_.Vertices(category);
  out->reserve(ctx->heap.size());
  for (const auto& [dist, poi] : ctx->heap) {
    out->push_back({list[poi], dist});
  }
  std::sort(out->begin(), out->end(),
            [](const KnnResult& a, const KnnResult& b) {
              return a.dist != b.dist ? a.dist < b.dist : a.poi < b.poi;
            });
  for (uint32_t poi : ctx->touched) {
    ctx->best[poi] = kInfDistance;
    ctx->heap_pos[poi] = Context::kNotInHeap;
  }
  ctx->touched.clear();
  ctx->heap.clear();
}

void KnnBucketIndex::OneToManyQuery(Context* ctx, uint32_t category,
                                    VertexId s,
                                    std::vector<KnnResult>* out) const {
  out->clear();
  Join(ctx, category, s, /*bound_k=*/0);
  const std::span<const VertexId> list = pois_.Vertices(category);
  out->reserve(ctx->touched.size());
  for (uint32_t poi : ctx->touched) {
    out->push_back({list[poi], ctx->best[poi]});
    ctx->best[poi] = kInfDistance;
  }
  ctx->touched.clear();
  std::sort(out->begin(), out->end(),
            [](const KnnResult& a, const KnnResult& b) {
              return a.dist != b.dist ? a.dist < b.dist : a.poi < b.poi;
            });
}

size_t KnnBucketIndex::IndexBytes() const {
  size_t bytes = 0;
  for (const auto& offsets : offsets_) {
    bytes += offsets.size() * sizeof(uint32_t);
  }
  for (const auto& entries : entries_) {
    bytes += entries.size() * sizeof(BucketEntry);
  }
  return bytes;
}

size_t KnnBucketIndex::NumBucketEntries() const {
  size_t total = 0;
  for (const auto& entries : entries_) total += entries.size();
  return total;
}

}  // namespace roadnet
