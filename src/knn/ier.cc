#include "knn/ier.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace roadnet {

namespace {

// Max-heap ordering on (dist, vertex id): the root is the worst of the
// current k results.
inline bool ResultLess(const KnnResult& a, const KnnResult& b) {
  return a.dist != b.dist ? a.dist < b.dist : a.poi < b.poi;
}

}  // namespace

IerKnnIndex::IerKnnIndex(const Graph& g, const PathIndex& oracle,
                         const PoiSet& pois)
    : graph_(g), oracle_(oracle), pois_(pois) {
  // Certified lower-bound scale: the minimum weight/length ratio over
  // all positive-length edges. Zero-length edges (duplicate coordinates)
  // satisfy weight >= rho * 0 for any rho and impose no constraint. The
  // tiny haircut absorbs floating-point rounding so the bound can never
  // exceed the true network distance.
  double rho = std::numeric_limits<double>::infinity();
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (const Arc& a : g.Neighbors(u)) {
      if (a.to < u) continue;  // each undirected edge once
      const int64_t sq = SquaredEuclidean(g.Coord(u), g.Coord(a.to));
      if (sq == 0) continue;
      rho = std::min(
          rho, static_cast<double>(a.weight) /
                   std::sqrt(static_cast<double>(sq)));
    }
  }
  rho_ = std::isfinite(rho) ? rho * (1.0 - 1e-9) : 0.0;
  grids_.reserve(pois_.NumCategories());
  for (uint32_t c = 0; c < pois_.NumCategories(); ++c) {
    grids_.push_back(std::make_unique<PoiGrid>(g, pois_.Vertices(c)));
  }
}

IerKnnIndex::Context IerKnnIndex::NewContext() const {
  Context ctx;
  ctx.oracle_ctx = oracle_.NewContext();
  return ctx;
}

Distance IerKnnIndex::EuclideanLowerBound(int64_t sq_dist) const {
  const double bound = rho_ * std::sqrt(static_cast<double>(sq_dist));
  if (bound >= static_cast<double>(kInfDistance)) return kInfDistance;
  return static_cast<Distance>(bound);  // floor keeps the bound valid
}

void IerKnnIndex::KnnQuery(Context* ctx, uint32_t category, VertexId s,
                           size_t k, std::vector<KnnResult>* out) const {
  out->clear();
  ctx->counters.Reset();
  if (k == 0) return;
  const PoiGrid& grid = *grids_[category];
  grid.Begin(&ctx->cursor, graph_.Coord(s));
  std::vector<KnnResult>& results = ctx->results;
  results.clear();
  results.reserve(k);  // bounded by k: the candidate loop never grows it
  auto heap_cmp = [](const KnnResult& a, const KnnResult& b) {
    return ResultLess(a, b);  // std heap: max-heap under this order
  };
  VertexId cand = kInvalidVertex;
  int64_t sq = 0;
  while (grid.Next(&ctx->cursor, &cand, &sq)) {
    if (results.size() == k) {
      // Candidates arrive in ascending Euclidean order, so once the
      // certified lower bound passes the kth-best network distance no
      // later candidate can enter the result. Strict comparison: a
      // candidate tying the kth distance could still win the vertex-id
      // tie-break and must be probed.
      const Distance lb = EuclideanLowerBound(sq);
      if (lb > results.front().dist) break;
    }
    const Distance d = oracle_.DistanceQuery(ctx->oracle_ctx.get(), s, cand);
    QueryCounters probe = ctx->oracle_ctx->counters;
    probe.TableLookup();  // one probe per candidate evaluated
    ctx->counters += probe;
    if (d == kInfDistance) continue;
    const KnnResult result{cand, d};
    if (results.size() < k) {
      results.push_back(result);
      std::push_heap(results.begin(), results.end(), heap_cmp);
    } else if (ResultLess(result, results.front())) {
      std::pop_heap(results.begin(), results.end(), heap_cmp);
      results.back() = result;
      std::push_heap(results.begin(), results.end(), heap_cmp);
    }
  }
  *out = results;
  std::sort(out->begin(), out->end(), ResultLess);
}

size_t IerKnnIndex::IndexBytes() const {
  size_t bytes = 0;
  for (const auto& grid : grids_) {
    bytes += grid->NumPois() * sizeof(VertexId) +
             (static_cast<size_t>(grid->CellsX()) * grid->CellsY() + 1) *
                 sizeof(uint32_t);
  }
  return bytes;
}

}  // namespace roadnet
