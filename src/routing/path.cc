#include "routing/path.h"

namespace roadnet {

Distance PathWeight(const Graph& g, const Path& path) {
  if (path.empty()) return kInfDistance;
  Distance total = 0;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    auto w = g.EdgeWeight(path[i], path[i + 1]);
    if (!w.has_value()) return kInfDistance;
    total += *w;
  }
  return total;
}

bool IsValidPath(const Graph& g, const Path& path) {
  if (path.empty()) return false;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    if (!g.HasEdge(path[i], path[i + 1])) return false;
  }
  return true;
}

}  // namespace roadnet
