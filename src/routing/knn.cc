#include "routing/knn.h"

#include <algorithm>

#include "dijkstra/dijkstra.h"

namespace roadnet {

namespace {

// Deterministic result ordering: by distance, then by vertex id.
void SortResults(std::vector<KnnResult>* results) {
  std::sort(results->begin(), results->end(),
            [](const KnnResult& a, const KnnResult& b) {
              if (a.dist != b.dist) return a.dist < b.dist;
              return a.poi < b.poi;
            });
}

}  // namespace

std::vector<KnnResult> KnnByDijkstra(const Graph& g,
                                     const std::vector<VertexId>& pois,
                                     VertexId query, size_t k) {
  std::vector<bool> is_poi(g.NumVertices(), false);
  for (VertexId p : pois) is_poi[p] = true;

  // Expanding search collecting POIs in settle order. Collecting a few
  // extra lets equal-distance ties resolve by vertex id, matching the
  // scan strategy exactly.
  std::vector<KnnResult> results;
  Dijkstra dijkstra(g);
  std::vector<VertexId> targets;
  for (VertexId p : pois) targets.push_back(p);

  // Run until k distinct POIs settle (or the component is exhausted).
  dijkstra.RunUntilSettled(query, targets, k);
  for (VertexId p : pois) {
    if (dijkstra.Settled(p)) {
      results.push_back(KnnResult{p, dijkstra.DistanceTo(p)});
    }
  }
  SortResults(&results);
  // Drop duplicates (a POI listed twice is one answer).
  results.erase(std::unique(results.begin(), results.end()), results.end());
  if (results.size() > k) results.resize(k);
  return results;
}

std::vector<KnnResult> KnnByIndexScan(PathIndex* index,
                                      const std::vector<VertexId>& pois,
                                      VertexId query, size_t k) {
  std::vector<KnnResult> results;
  results.reserve(pois.size());
  for (VertexId p : pois) {
    const Distance d = index->DistanceQuery(query, p);
    if (d != kInfDistance) results.push_back(KnnResult{p, d});
  }
  SortResults(&results);
  results.erase(std::unique(results.begin(), results.end()), results.end());
  if (results.size() > k) results.resize(k);
  return results;
}

}  // namespace roadnet
