#ifndef ROADNET_ROUTING_PATH_INDEX_H_
#define ROADNET_ROUTING_PATH_INDEX_H_

#include <cstddef>
#include <string>

#include "graph/types.h"
#include "routing/path.h"

namespace roadnet {

// Common interface of every technique the paper evaluates (Section 3):
// the bidirectional Dijkstra baseline, CH, TNR, SILC, and PCPD. Indexes
// are constructed over a Graph (preprocessing happens in the constructor
// or a factory) and then answer the paper's two query types.
//
// Implementations are not required to be thread-safe: like the paper's
// code, each index keeps per-query scratch state sized by the graph so
// queries run allocation-free.
class PathIndex {
 public:
  virtual ~PathIndex() = default;

  // Technique name as used in the paper's figures ("CH", "TNR", ...).
  virtual std::string Name() const = 0;

  // Distance query (Section 2): length of the shortest path from s to t,
  // or kInfDistance if t is unreachable.
  virtual Distance DistanceQuery(VertexId s, VertexId t) = 0;

  // Shortest path query (Section 2): the path as a vertex sequence
  // (empty if unreachable).
  virtual Path PathQuery(VertexId s, VertexId t) = 0;

  // Bytes of precomputed structures held beyond the input graph; the
  // paper's "space consumption" metric (Figure 6a).
  virtual size_t IndexBytes() const = 0;
};

}  // namespace roadnet

#endif  // ROADNET_ROUTING_PATH_INDEX_H_
