#ifndef ROADNET_ROUTING_PATH_INDEX_H_
#define ROADNET_ROUTING_PATH_INDEX_H_

#include <cstddef>
#include <memory>
#include <string>

#include "graph/types.h"
#include "obs/query_counters.h"
#include "routing/path.h"

namespace roadnet {

// Per-thread mutable query state of a PathIndex. Every technique keeps
// scratch sized by the graph (distance/parent/generation arrays, heaps)
// so queries run allocation-free; a QueryContext owns that scratch so the
// index itself can stay immutable after preprocessing and be shared by
// any number of threads.
//
// A context belongs to exactly one index (the one whose NewContext()
// created it) and may be used by at most one thread at a time. Contexts
// are cheap relative to the index: O(n) memory, no preprocessing.
class QueryContext {
 public:
  virtual ~QueryContext() = default;

  // Operation counts of the most recent query run on this context. Every
  // DistanceQuery/PathQuery resets these on entry and increments them on
  // its hot path, so reading them after a query gives that query's exact
  // search-space size (the paper's Section 4 explanation of the latency
  // ordering). Batch callers accumulate across queries with operator+=.
  QueryCounters counters;
};

// Common interface of every technique the paper evaluates (Section 3):
// the bidirectional Dijkstra baseline, CH, TNR, SILC, and PCPD. Indexes
// are constructed over a Graph (preprocessing happens in the constructor
// or a factory) and then answer the paper's two query types.
//
// Thread-safety contract: after construction the index is immutable, and
// the context-taking overloads are safe to call concurrently as long as
// each thread passes its own QueryContext. The context-free overloads
// route through one internal default context and therefore stay
// single-threaded, exactly like the paper's original code.
class PathIndex {
 public:
  virtual ~PathIndex() = default;

  // Technique name as used in the paper's figures ("CH", "TNR", ...).
  virtual std::string Name() const = 0;

  // Creates a fresh query context for this index. Thread-safe.
  virtual std::unique_ptr<QueryContext> NewContext() const = 0;

  // Distance query (Section 2): length of the shortest path from s to t,
  // or kInfDistance if t is unreachable. `ctx` must come from this
  // index's NewContext().
  virtual Distance DistanceQuery(QueryContext* ctx, VertexId s,
                                 VertexId t) const = 0;

  // Shortest path query (Section 2): the path as a vertex sequence
  // (empty if unreachable).
  virtual Path PathQuery(QueryContext* ctx, VertexId s, VertexId t) const = 0;

  // Single-threaded convenience overloads over the internal default
  // context (the pre-context API every test and bench started from).
  // roadnet-lint: allow(R2,R3 legacy single-threaded wrapper; mutates only the lazily-created default context, not index structure)
  Distance DistanceQuery(VertexId s, VertexId t) {
    return DistanceQuery(DefaultContext(), s, t);
  }
  // roadnet-lint: allow(R2,R3 legacy single-threaded wrapper; mutates only the lazily-created default context, not index structure)
  Path PathQuery(VertexId s, VertexId t) {
    return PathQuery(DefaultContext(), s, t);
  }

  // Bytes of precomputed structures held beyond the input graph; the
  // paper's "space consumption" metric (Figure 6a). Excludes contexts.
  virtual size_t IndexBytes() const = 0;

  // Counters of the most recent context-free DistanceQuery/PathQuery
  // (the single-threaded convenience API above). Zeros if no such query
  // ran yet. For the context-taking API read ctx->counters directly.
  QueryCounters ContextCounters() const {
    const QueryContext* ctx = default_context();
    return ctx == nullptr ? QueryCounters{} : ctx->counters;
  }

 protected:
  // The lazily-created context behind the context-free overloads.
  // Implementations use it for legacy per-query accessors (settled
  // counts, routing stats).
  QueryContext* DefaultContext() {
    if (default_context_ == nullptr) default_context_ = NewContext();
    return default_context_.get();
  }
  const QueryContext* default_context() const {
    return default_context_.get();
  }

 private:
  std::unique_ptr<QueryContext> default_context_;
};

}  // namespace roadnet

#endif  // ROADNET_ROUTING_PATH_INDEX_H_
