#ifndef ROADNET_ROUTING_KNN_H_
#define ROADNET_ROUTING_KNN_H_

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "routing/path_index.h"

namespace roadnet {

// k-nearest-neighbour queries over a fixed set of points of interest —
// the paper's Section 2 motivating scenario ("identify the restaurant
// closest to her working place") generalized to k results. Two
// strategies:
//
//  * KnnByDijkstra — one expanding Dijkstra from the query vertex that
//    stops after settling k POIs. Optimal when POIs are plentiful or
//    nearby; needs no index.
//  * KnnByIndexScan — one distance query per POI through any PathIndex
//    (the strategy the paper's example user applies); wins when the POI
//    list is short and the index answers distance queries in
//    microseconds (CH/TNR).
//
// Both return the same answers (ties broken by vertex id).

struct KnnResult {
  VertexId poi;
  Distance dist;

  friend bool operator==(const KnnResult& a, const KnnResult& b) {
    return a.poi == b.poi && a.dist == b.dist;
  }
};

// Expanding-search kNN. O(search ball) time, no preprocessing.
std::vector<KnnResult> KnnByDijkstra(const Graph& g,
                                     const std::vector<VertexId>& pois,
                                     VertexId query, size_t k);

// Index-scan kNN: |pois| distance queries through `index`.
std::vector<KnnResult> KnnByIndexScan(PathIndex* index,
                                      const std::vector<VertexId>& pois,
                                      VertexId query, size_t k);

}  // namespace roadnet

#endif  // ROADNET_ROUTING_KNN_H_
