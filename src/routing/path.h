#ifndef ROADNET_ROUTING_PATH_H_
#define ROADNET_ROUTING_PATH_H_

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace roadnet {

// A path is the vertex sequence s = v0, v1, ..., vk = t. In a simple graph
// this uniquely identifies the edge sequence the paper's shortest path
// queries ask for. An empty vector means "no path"; a single vertex is the
// trivial s == t path.
using Path = std::vector<VertexId>;

// Sum of edge weights along the path, or kInfDistance if some consecutive
// pair is not an edge of g.
Distance PathWeight(const Graph& g, const Path& path);

// True if every consecutive pair is an edge of g (and the path is
// non-empty). Used by the correctness harness to validate query answers.
bool IsValidPath(const Graph& g, const Path& path);

}  // namespace roadnet

#endif  // ROADNET_ROUTING_PATH_H_
