#include "poi/poi_set.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numeric>
#include <sstream>

#include "io/crc32.h"
#include "util/rng.h"

namespace roadnet {

namespace {

constexpr char kPoiMagic[8] = {'R', 'N', 'E', 'T', 'P', 'O', 'I', 'S'};
constexpr uint32_t kPoiVersion = 1;

// Corruption guards for the length-prefixed blocks.
constexpr uint32_t kMaxCategories = 1u << 16;
constexpr uint32_t kMaxNameBytes = 1u << 12;

}  // namespace

PoiSet PoiSet::Generate(const Graph& g, const PoiConfig& config) {
  PoiSet set;
  const uint32_t n = g.NumVertices();
  set.num_vertices_ = n;
  set.offsets_.push_back(0);
  Rng rng(config.seed);
  // Sampling scratch: a partial Fisher-Yates over the identity
  // permutation draws `count` distinct vertices uniformly; refilled per
  // category so every category is an independent draw from one seeded
  // stream.
  std::vector<VertexId> perm(n);
  for (const PoiCategorySpec& spec : config.categories) {
    set.names_.push_back(spec.name);
    size_t count = static_cast<size_t>(
        std::llround(spec.density * static_cast<double>(n)));
    count = std::min<size_t>(count, n);
    std::iota(perm.begin(), perm.end(), 0);
    for (size_t i = 0; i < count; ++i) {
      const size_t j = i + rng.NextBelow(n - i);
      std::swap(perm[i], perm[j]);
    }
    const size_t begin = set.vertices_.size();
    set.vertices_.insert(set.vertices_.end(), perm.begin(),
                         perm.begin() + count);
    std::sort(set.vertices_.begin() + begin, set.vertices_.end());
    set.offsets_.push_back(set.vertices_.size());
  }
  return set;
}

int32_t PoiSet::CategoryId(const std::string& name) const {
  for (size_t c = 0; c < names_.size(); ++c) {
    if (names_[c] == name) return static_cast<int32_t>(c);
  }
  return -1;
}

void PoiSet::Serialize(std::ostream& out) const {
  WriteMagic(out, kPoiMagic);
  WriteScalar<uint32_t>(out, kPoiVersion);
  std::ostringstream payload;
  WriteScalar<uint32_t>(payload, num_vertices_);
  WriteScalar<uint32_t>(payload, NumCategories());
  for (const std::string& name : names_) {
    WriteScalar<uint32_t>(payload, static_cast<uint32_t>(name.size()));
    payload.write(name.data(), static_cast<std::streamsize>(name.size()));
  }
  WriteVector(payload, offsets_);
  WriteVector(payload, vertices_);
  WriteChecksummedPayload(out, payload.view());
}

std::unique_ptr<PoiSet> PoiSet::Deserialize(std::istream& in,
                                            std::string* error) {
  auto fail = [error](const char* message) {
    if (error != nullptr) *error = message;
    return nullptr;
  };
  if (!CheckMagic(in, kPoiMagic)) return fail("poi: bad magic");
  uint32_t version = 0;
  if (!ReadScalar(in, &version) || version != kPoiVersion) {
    return fail("poi: unsupported version (regenerate with this build)");
  }
  std::string buffer;
  if (!ReadChecksummedPayload(in, &buffer, "poi", error)) return nullptr;
  std::istringstream body(buffer);
  std::unique_ptr<PoiSet> set(new PoiSet());
  uint32_t num_categories = 0;
  if (!ReadScalar(body, &set->num_vertices_) ||
      !ReadScalar(body, &num_categories) || num_categories > kMaxCategories) {
    return fail("poi: bad header");
  }
  set->names_.reserve(num_categories);
  for (uint32_t c = 0; c < num_categories; ++c) {
    uint32_t len = 0;
    if (!ReadScalar(body, &len) || len > kMaxNameBytes) {
      return fail("poi: bad category name");
    }
    std::string name(len, '\0');
    body.read(name.data(), static_cast<std::streamsize>(len));
    if (!body) return fail("poi: bad category name");
    set->names_.push_back(std::move(name));
  }
  if (!ReadVector(body, &set->offsets_) ||
      set->offsets_.size() != static_cast<size_t>(num_categories) + 1) {
    return fail("poi: bad offset block");
  }
  if (!ReadVector(body, &set->vertices_)) {
    return fail("poi: bad vertex block");
  }
  // Structural validation: the offsets must form a CSR over the vertex
  // array and every category list must be strictly ascending with ids in
  // range, so corrupt input cannot cause out-of-range bucket builds or
  // nondeterministic tie-breaks later.
  if (set->offsets_[0] != 0) return fail("poi: bad offset block");
  for (uint32_t c = 0; c < num_categories; ++c) {
    if (set->offsets_[c + 1] < set->offsets_[c] ||
        set->offsets_[c + 1] > set->vertices_.size()) {
      return fail("poi: offsets are not monotone");
    }
  }
  if (set->offsets_[num_categories] != set->vertices_.size()) {
    return fail("poi: offsets do not cover the vertex block");
  }
  for (uint32_t c = 0; c < num_categories; ++c) {
    const std::span<const VertexId> list = set->Vertices(c);
    for (size_t i = 0; i < list.size(); ++i) {
      if (list[i] >= set->num_vertices_) {
        return fail("poi: vertex id out of range");
      }
      if (i > 0 && list[i] <= list[i - 1]) {
        return fail("poi: category list not strictly ascending");
      }
    }
  }
  return set;
}

bool PoiSet::SerializeToFile(const std::string& path,
                             std::string* error) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    if (error != nullptr) *error = "poi: cannot open " + path;
    return false;
  }
  Serialize(out);
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "poi: write failed for " + path;
    return false;
  }
  return true;
}

std::unique_ptr<PoiSet> PoiSet::DeserializeFromFile(const std::string& path,
                                                    std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "poi: cannot open " + path;
    return nullptr;
  }
  return Deserialize(in, error);
}

size_t PoiSet::MemoryBytes() const {
  size_t bytes = offsets_.size() * sizeof(uint64_t) +
                 vertices_.size() * sizeof(VertexId);
  for (const std::string& name : names_) bytes += name.size();
  return bytes;
}

bool ParsePoiCategories(const std::string& spec,
                        std::vector<PoiCategorySpec>* out,
                        std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  out->clear();
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    const size_t colon = item.find(':');
    if (colon == std::string::npos || colon == 0) {
      return fail("bad category spec '" + item + "' (want name:density)");
    }
    PoiCategorySpec cat;
    cat.name = item.substr(0, colon);
    for (const PoiCategorySpec& existing : *out) {
      if (existing.name == cat.name) {
        return fail("duplicate category name '" + cat.name + "'");
      }
    }
    try {
      size_t used = 0;
      cat.density = std::stod(item.substr(colon + 1), &used);
      if (used != item.size() - colon - 1) throw std::invalid_argument("");
    } catch (const std::exception&) {
      return fail("bad density in category spec '" + item + "'");
    }
    if (!(cat.density >= 0.0 && cat.density <= 1.0)) {
      return fail("density out of [0,1] in category spec '" + item + "'");
    }
    out->push_back(std::move(cat));
  }
  if (out->empty()) return fail("empty category spec");
  return true;
}

}  // namespace roadnet
