#ifndef ROADNET_POI_POI_SET_H_
#define ROADNET_POI_POI_SET_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace roadnet {

// One POI category to place: a name ("restaurant", "fuel") and the
// fraction of graph vertices that carry such a POI. Density follows the
// paper's R-set convention of sweeping selectivity in powers of ten; a
// density of 0 is legal and yields an empty category (the serving path
// must answer it with an empty OK result, not an error).
struct PoiCategorySpec {
  std::string name;
  double density = 0.01;
};

struct PoiConfig {
  std::vector<PoiCategorySpec> categories;
  uint64_t seed = 1;
};

// Immutable set of points of interest over one graph: named categories,
// each a sorted list of distinct vertex ids. Placement is deterministic
// from PoiConfig::seed (util/rng.h SplitMix64), so a loadgen or bench on
// another host regenerates bit-identical POI sets — the same contract the
// graph generator and workload samplers follow.
//
// Storage is CSR: one flat vertex array plus per-category offsets, so a
// category's list is a contiguous span and the whole set serializes as
// two vectors.
class PoiSet {
 public:
  // Samples each category's vertices without replacement over g's vertex
  // ids. Category c gets round(density * NumVertices) POIs (clamped to
  // the vertex count); an all-vertices category is legal.
  static PoiSet Generate(const Graph& g, const PoiConfig& config);

  uint32_t NumCategories() const {
    return static_cast<uint32_t>(names_.size());
  }
  // Total POIs across all categories.
  size_t NumPois() const { return vertices_.size(); }
  // Vertex count of the graph this set was placed on; request validation
  // and index construction check it against their graph.
  uint32_t NumVertices() const { return num_vertices_; }

  const std::string& CategoryName(uint32_t c) const { return names_[c]; }
  // Index of the named category, or -1 if unknown.
  int32_t CategoryId(const std::string& name) const;

  // The category's POI vertices, sorted ascending (distinct ids). The
  // position of a vertex in this span is its stable "poi index" within
  // the category — the id bucket entries and result tie-breaks use.
  std::span<const VertexId> Vertices(uint32_t c) const {
    return {vertices_.data() + offsets_[c], offsets_[c + 1] - offsets_[c]};
  }

  // --- v1 container: magic "RNETPOIS", u32 version, CRC'd payload ---
  void Serialize(std::ostream& out) const;
  // Returns nullptr + *error on malformed input. Full structural
  // validation: CSR monotone and covering, vertex ids in range and
  // strictly ascending per category.
  static std::unique_ptr<PoiSet> Deserialize(std::istream& in,
                                             std::string* error);

  bool SerializeToFile(const std::string& path, std::string* error) const;
  static std::unique_ptr<PoiSet> DeserializeFromFile(const std::string& path,
                                                     std::string* error);

  size_t MemoryBytes() const;

 private:
  PoiSet() = default;

  uint32_t num_vertices_ = 0;
  std::vector<std::string> names_;
  std::vector<uint64_t> offsets_;  // size NumCategories()+1, offsets_[0]==0
  std::vector<VertexId> vertices_;
};

// Parses a "name:density,name:density" spec string (the roadnet_cli
// --poi-categories flag) into PoiConfig categories. Returns false +
// *error on malformed input, duplicate names, or a density outside
// [0, 1].
bool ParsePoiCategories(const std::string& spec,
                        std::vector<PoiCategorySpec>* out,
                        std::string* error);

}  // namespace roadnet

#endif  // ROADNET_POI_POI_SET_H_
