#include "silc/color_quadtree.h"

#include <algorithm>
#include <numeric>

#include "spatial/morton.h"
#include "util/bytes.h"

namespace roadnet {

MortonSpace::MortonSpace(const Graph& g) : code_of_(g.NumVertices()) {
  const Rect& b = g.Bounds();
  uint64_t max_code = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const Point& p = g.Coord(v);
    const uint32_t x = static_cast<uint32_t>(
        static_cast<int64_t>(p.x) - b.min_x);
    const uint32_t y = static_cast<uint32_t>(
        static_cast<int64_t>(p.y) - b.min_y);
    code_of_[v] = MortonEncode(x, y);
    max_code = std::max(max_code, code_of_[v]);
  }
  // Root level: number of quadtree levels needed to cover max_code.
  root_level_ = 0;
  while (root_level_ < 32 && (max_code >> (2 * root_level_)) != 0) {
    ++root_level_;
  }

  sorted_.resize(g.NumVertices());
  std::iota(sorted_.begin(), sorted_.end(), 0);
  std::sort(sorted_.begin(), sorted_.end(), [this](VertexId a, VertexId b) {
    return code_of_[a] < code_of_[b];
  });
  sorted_codes_.reserve(sorted_.size());
  for (VertexId v : sorted_) sorted_codes_.push_back(code_of_[v]);
}

size_t MortonSpace::MemoryBytes() const {
  return VectorBytes(code_of_) + VectorBytes(sorted_) +
         VectorBytes(sorted_codes_);
}

namespace {

// Recursive subdivision over the Morton-sorted position range [lo, hi).
// `base` is the first code of the current block, `level` its quadtree
// level (a block covers 4^level codes).
void Subdivide(const std::vector<uint64_t>& codes,
               const std::vector<uint32_t>& colors, size_t lo, size_t hi,
               uint64_t base, uint32_t level,
               std::vector<ColorInterval>* intervals,
               std::vector<uint32_t>* exceptions) {
  if (lo >= hi) return;

  // Single-colour block? Early-exit scan.
  const uint32_t first_color = colors[lo];
  bool uniform = true;
  for (size_t i = lo + 1; i < hi; ++i) {
    if (colors[i] != first_color) {
      uniform = false;
      break;
    }
  }
  if (uniform) {
    intervals->push_back(ColorInterval{base, first_color});
    return;
  }

  if (level == 0) {
    // Distinct vertices sharing one exact Morton code with different
    // colours: subdivision cannot separate them. Record as exceptions.
    for (size_t i = lo; i < hi; ++i) {
      exceptions->push_back(static_cast<uint32_t>(i));
    }
    return;
  }

  // Split into the four child quadrants.
  const uint64_t quarter = uint64_t{1} << (2 * (level - 1));
  size_t child_lo = lo;
  for (int q = 0; q < 4; ++q) {
    const uint64_t child_base = base + static_cast<uint64_t>(q) * quarter;
    const uint64_t child_end = child_base + quarter;
    const size_t child_hi = static_cast<size_t>(
        std::lower_bound(codes.begin() + child_lo, codes.begin() + hi,
                         child_end) -
        codes.begin());
    Subdivide(codes, colors, child_lo, child_hi, child_base, level - 1,
              intervals, exceptions);
    child_lo = child_hi;
  }
}

}  // namespace

void CompressColors(const MortonSpace& space,
                    const std::vector<uint32_t>& color_by_position,
                    std::vector<ColorInterval>* intervals,
                    std::vector<uint32_t>* exceptions) {
  intervals->clear();
  exceptions->clear();
  Subdivide(space.SortedCodes(), color_by_position, 0,
            space.SortedCodes().size(), 0, space.RootLevel(), intervals,
            exceptions);
}

uint32_t LookupColor(const ColorInterval* begin, const ColorInterval* end,
                     uint64_t code) {
  // Last interval whose start is <= code. Emitted blocks are disjoint,
  // sorted, and cover every vertex code, so this is the containing block.
  const ColorInterval* it = std::upper_bound(
      begin, end, code, [](uint64_t c, const ColorInterval& iv) {
        return c < iv.start;
      });
  if (it == begin) return kColorUnreachable;
  return (it - 1)->color;
}

}  // namespace roadnet
