#ifndef ROADNET_SILC_SILC_INDEX_H_
#define ROADNET_SILC_SILC_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "routing/path_index.h"
#include "silc/color_quadtree.h"

namespace roadnet {

// Spatially Induced Linkage Cognizance (Samet et al. 2008; paper
// Section 3.4, Appendix D).
//
// Preprocessing runs one full Dijkstra per source vertex v, labelling
// every other vertex with the neighbour of v that begins the shortest
// path (the "equivalence class" colouring), then compresses each
// colouring into quadtree blocks stored as Z-curve intervals. A shortest
// path query iteratively looks up the first hop toward t, O(log n) per
// hop; a distance query walks the same path and sums edge weights
// (Section 3.4: "SILC needs to first compute the shortest path and then
// return the sum of the lengths of the edges").
//
// The per-source colour maps make this an O(n * sqrt(n))-space,
// all-pairs-preprocessing technique — exactly the cost profile the paper
// measures against CH and TNR (Figures 6-11).
class SilcIndex : public PathIndex {
 public:
  explicit SilcIndex(const Graph& g);

  std::string Name() const override { return "SILC"; }
  // SILC queries are pure reads over the interval lists — no per-query
  // scratch — so the context is stateless and queries are naturally
  // concurrent.
  std::unique_ptr<QueryContext> NewContext() const override {
    return std::make_unique<QueryContext>();
  }
  Distance DistanceQuery(QueryContext* ctx, VertexId s,
                         VertexId t) const override;
  Path PathQuery(QueryContext* ctx, VertexId s, VertexId t) const override;
  using PathIndex::DistanceQuery;
  using PathIndex::PathQuery;
  size_t IndexBytes() const override;

  // First vertex after `from` on the shortest path from `from` to `to`
  // (kInvalidVertex if unreachable or from == to). O(log n).
  VertexId NextHop(VertexId from, VertexId to) const;

  // Total number of stored intervals (reporting: the O(n^1.5) growth).
  size_t NumIntervals() const { return intervals_.size(); }

 private:
  std::span<const ColorInterval> IntervalsOf(VertexId v) const {
    return {intervals_.data() + interval_offsets_[v],
            interval_offsets_[v + 1] - interval_offsets_[v]};
  }

  const Graph& graph_;
  MortonSpace space_;

  // Per-source interval lists (CSR).
  std::vector<size_t> interval_offsets_;
  std::vector<ColorInterval> intervals_;

  // Per-source exception lists (CSR) for vertices that share a Morton
  // code but not a colour; each entry maps a vertex to its colour.
  struct Exception {
    VertexId vertex;
    uint32_t color;
  };
  std::vector<size_t> exception_offsets_;
  std::vector<Exception> exceptions_;
};

}  // namespace roadnet

#endif  // ROADNET_SILC_SILC_INDEX_H_
