#include "silc/silc_index.h"

#include <algorithm>

#include "dijkstra/dijkstra.h"
#include "util/bytes.h"

namespace roadnet {

SilcIndex::SilcIndex(const Graph& g) : graph_(g), space_(g) {
  const uint32_t n = g.NumVertices();
  Dijkstra dijkstra(g);

  interval_offsets_.assign(n + 1, 0);
  exception_offsets_.assign(n + 1, 0);

  std::vector<uint32_t> color_of(n);           // per vertex id
  std::vector<uint32_t> color_by_position(n);  // per Morton position
  std::vector<ColorInterval> intervals;
  std::vector<uint32_t> exceptions;

  for (VertexId v = 0; v < n; ++v) {
    // Colour every vertex by the first hop of its shortest path from v
    // (the index of that neighbour in v's adjacency list).
    dijkstra.RunAllWithFirstHop(v);
    auto neighbors = g.Neighbors(v);
    for (VertexId u = 0; u < n; ++u) {
      if (u == v) {
        color_of[u] = kColorSource;
        continue;
      }
      const VertexId hop = dijkstra.FirstHopOf(u);
      if (hop == kInvalidVertex) {
        color_of[u] = kColorUnreachable;
        continue;
      }
      const auto it = std::lower_bound(
          neighbors.begin(), neighbors.end(), hop,
          [](const Arc& a, VertexId target) { return a.to < target; });
      color_of[u] = static_cast<uint32_t>(it - neighbors.begin());
    }
    const std::vector<VertexId>& order = space_.SortedVertices();
    for (uint32_t i = 0; i < n; ++i) {
      color_by_position[i] = color_of[order[i]];
    }

    CompressColors(space_, color_by_position, &intervals, &exceptions);
    interval_offsets_[v + 1] = interval_offsets_[v] + intervals.size();
    intervals_.insert(intervals_.end(), intervals.begin(), intervals.end());
    exception_offsets_[v + 1] = exception_offsets_[v] + exceptions.size();
    for (uint32_t pos : exceptions) {
      exceptions_.push_back(Exception{order[pos], color_by_position[pos]});
    }
  }
}

VertexId SilcIndex::NextHop(VertexId from, VertexId to) const {
  // Exceptions first (vertices indistinguishable by Morton code).
  for (size_t i = exception_offsets_[from]; i < exception_offsets_[from + 1];
       ++i) {
    if (exceptions_[i].vertex == to) {
      const uint32_t c = exceptions_[i].color;
      if (c >= kColorUnreachable) return kInvalidVertex;
      return graph_.Neighbors(from)[c].to;
    }
  }
  const auto ivs = IntervalsOf(from);
  const uint32_t color =
      LookupColor(ivs.data(), ivs.data() + ivs.size(), space_.CodeOf(to));
  if (color >= kColorUnreachable) return kInvalidVertex;
  return graph_.Neighbors(from)[color].to;
}

Path SilcIndex::PathQuery(QueryContext* ctx, VertexId s, VertexId t) const {
  ctx->counters.Reset();
  Path path{s};
  if (s == t) return path;
  VertexId cur = s;
  // Every hop strictly shrinks the remaining distance, so the walk ends
  // after at most n - 1 steps; the bound is a corruption guard.
  for (uint32_t step = 0; step < graph_.NumVertices(); ++step) {
    ctx->counters.TreeLookup();
    const VertexId next = NextHop(cur, t);
    if (next == kInvalidVertex) return {};
    path.push_back(next);
    if (next == t) return path;
    cur = next;
  }
  return {};
}

Distance SilcIndex::DistanceQuery(QueryContext* ctx, VertexId s,
                                  VertexId t) const {
  ctx->counters.Reset();
  if (s == t) return 0;
  Distance total = 0;
  VertexId cur = s;
  for (uint32_t step = 0; step < graph_.NumVertices(); ++step) {
    ctx->counters.TreeLookup();
    const VertexId next = NextHop(cur, t);
    if (next == kInvalidVertex) return kInfDistance;
    // The colour indexes cur's adjacency directly, so the hop's weight is
    // one array access (no edge search needed).
    total += *graph_.EdgeWeight(cur, next);
    if (next == t) return total;
    cur = next;
  }
  return kInfDistance;
}

size_t SilcIndex::IndexBytes() const {
  return space_.MemoryBytes() + VectorBytes(interval_offsets_) +
         VectorBytes(intervals_) + VectorBytes(exception_offsets_) +
         VectorBytes(exceptions_);
}

}  // namespace roadnet
