#ifndef ROADNET_SILC_COLOR_QUADTREE_H_
#define ROADNET_SILC_COLOR_QUADTREE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace roadnet {

// Sentinel colours used by SILC's per-source partitions.
inline constexpr uint32_t kColorSource = 0xffffffffu;      // the source itself
inline constexpr uint32_t kColorUnreachable = 0xfffffffeu;

// Shared Z-order view of the vertex set: each vertex's coordinates,
// normalized to the bounding box, interleaved into a Morton code, and the
// vertex ids sorted by that code. Quadtree blocks are exactly aligned
// Morton-code ranges of this order, which is what lets SILC store each
// equivalence class as a handful of Z-curve intervals (Appendix D: "each
// cell is transformed into an interval on a two-dimensional Z-curve").
class MortonSpace {
 public:
  explicit MortonSpace(const Graph& g);

  uint64_t CodeOf(VertexId v) const { return code_of_[v]; }

  // Vertex ids sorted by Morton code.
  const std::vector<VertexId>& SortedVertices() const { return sorted_; }
  // Morton codes aligned with SortedVertices().
  const std::vector<uint64_t>& SortedCodes() const { return sorted_codes_; }

  // Smallest L such that every code fits in 2L bits (quadtree root level).
  uint32_t RootLevel() const { return root_level_; }

  size_t MemoryBytes() const;

 private:
  std::vector<uint64_t> code_of_;
  std::vector<VertexId> sorted_;
  std::vector<uint64_t> sorted_codes_;
  uint32_t root_level_ = 0;
};

// One maximal single-colour quadtree block, identified by the first Morton
// code it covers. Blocks emitted for one source are disjoint and sorted,
// so the block containing a code is found with one binary search.
struct ColorInterval {
  uint64_t start;
  uint32_t color;
};

// Compresses a per-vertex colouring into Z-curve intervals by recursive
// quadtree subdivision (Appendix D: split any cell containing two
// different equivalence classes into four quadrants).
//
// color_by_position[i] is the colour of space.SortedVertices()[i].
// Vertices that share one exact Morton code but disagree in colour cannot
// be separated by subdivision; they are reported in *exceptions (indices
// into the sorted order) and excluded from interval lookups.
void CompressColors(const MortonSpace& space,
                    const std::vector<uint32_t>& color_by_position,
                    std::vector<ColorInterval>* intervals,
                    std::vector<uint32_t>* exceptions);

// Looks up the colour of `code` in a compressed interval list (the
// [begin, end) range of one source's intervals). Returns the colour of the
// containing block.
uint32_t LookupColor(const ColorInterval* begin, const ColorInterval* end,
                     uint64_t code);

}  // namespace roadnet

#endif  // ROADNET_SILC_COLOR_QUADTREE_H_
