#ifndef ROADNET_ARCFLAGS_ARC_FLAGS_H_
#define ROADNET_ARCFLAGS_ARC_FLAGS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "pq/indexed_heap.h"
#include "routing/path_index.h"
#include "tnr/cell_grid.h"

namespace roadnet {

// Tuning knobs of Arc Flags.
struct ArcFlagsConfig {
  // Partition the network into region_resolution^2 grid regions. Flag
  // storage is 2m * regions bits and preprocessing runs one backward SSSP
  // per region-boundary vertex, so the resolution stays small (the
  // classic studies use tens of regions).
  uint32_t region_resolution = 8;
};

// Arc Flags (Hilger et al. 2006) — the second grid-based technique of the
// paper's Appendix A ("a method similar to SILC in the sense that it also
// imposes a grid on the road network").
//
// Preprocessing partitions the vertices into grid regions and tags every
// directed arc (u, v) with one bit per region r: set iff the arc begins a
// shortest path from u to some vertex of r (equivalently, iff
// dist(v, b) + w(u, v) == dist(u, b) for some boundary vertex b of r, or
// both endpoints lie in r). A query runs Dijkstra that only relaxes arcs
// whose flag for the target's region is set — pruning everything that
// provably cannot lie on a shortest path into that region.
//
// Appendix A notes Arc Flags was previously shown inferior to CH in both
// space and query performance; bench_appa_alt extends to this technique.
class ArcFlagsIndex : public PathIndex {
 public:
  ArcFlagsIndex(const Graph& g, const ArcFlagsConfig& config);
  explicit ArcFlagsIndex(const Graph& g)
      : ArcFlagsIndex(g, ArcFlagsConfig{}) {}

  std::string Name() const override { return "ArcFlags"; }
  std::unique_ptr<QueryContext> NewContext() const override;
  Distance DistanceQuery(QueryContext* ctx, VertexId s,
                         VertexId t) const override;
  Path PathQuery(QueryContext* ctx, VertexId s, VertexId t) const override;
  using PathIndex::DistanceQuery;
  using PathIndex::PathQuery;
  size_t IndexBytes() const override;

  uint32_t NumRegions() const { return num_regions_; }
  uint32_t RegionOf(VertexId v) const { return region_of_[v]; }

  // True if the arc at adjacency position `arc_index` (global CSR
  // position) may lie on a shortest path into `region` (testing).
  bool ArcFlag(size_t arc_index, uint32_t region) const {
    return (flags_[arc_index * words_per_arc_ + region / 64] >>
            (region % 64)) &
           1;
  }

  size_t SettledCount() const { return ContextCounters().vertices_settled; }

 private:
  // Query scratch.
  struct Context : QueryContext {
    explicit Context(uint32_t n)
        : heap(n), dist(n, 0), parent(n, kInvalidVertex), reached(n, 0),
          settled(n, 0) {}

    IndexedHeap<Distance> heap;
    std::vector<Distance> dist;
    std::vector<VertexId> parent;
    std::vector<uint32_t> reached;
    std::vector<uint32_t> settled;
    uint32_t generation = 0;
  };

  void SetFlag(size_t arc_index, uint32_t region) {
    flags_[arc_index * words_per_arc_ + region / 64] |=
        uint64_t{1} << (region % 64);
  }

  // Runs the pruned Dijkstra toward t; returns the distance and leaves
  // the parent tree in the context for path extraction.
  Distance Search(Context* ctx, VertexId s, VertexId t) const;

  const Graph& graph_;
  uint32_t num_regions_ = 0;
  uint32_t words_per_arc_ = 0;
  std::vector<uint32_t> region_of_;      // per vertex
  std::vector<size_t> arc_offsets_;      // CSR offsets (copy of graph's)
  std::vector<uint64_t> flags_;          // 2m * words_per_arc_
};

}  // namespace roadnet

#endif  // ROADNET_ARCFLAGS_ARC_FLAGS_H_
