#include "arcflags/arc_flags.h"

#include <algorithm>

#include "dijkstra/dijkstra.h"
#include "util/bytes.h"

namespace roadnet {

ArcFlagsIndex::ArcFlagsIndex(const Graph& g, const ArcFlagsConfig& config)
    : graph_(g) {
  const uint32_t n = g.NumVertices();

  // Regions: grid cells of a coarse partition, renumbered densely over
  // the non-empty ones.
  CellGrid grid(g, config.region_resolution);
  std::vector<uint32_t> dense(grid.NumCells(), 0);
  num_regions_ = 0;
  for (uint32_t cell : grid.NonEmptyCells()) dense[cell] = num_regions_++;
  region_of_.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    region_of_[v] = dense[grid.CellIndex(grid.CellOf(v))];
  }

  words_per_arc_ = (num_regions_ + 63) / 64;
  flags_.assign(g.NumArcs() * words_per_arc_, 0);

  // Rule 1: every arc whose head lies in region r is flagged for r (the
  // within-region part of any shortest path).
  for (VertexId u = 0; u < n; ++u) {
    size_t idx = g.FirstArcIndex(u);
    for (const Arc& a : g.Neighbors(u)) {
      SetFlag(idx++, region_of_[a.to]);
    }
  }

  // Rule 2: arc (u, v) is flagged for r if it begins a shortest path from
  // u to some boundary vertex b of r, i.e. dist(u, b) == w + dist(v, b).
  // This is arithmetic over exact distances, so every tied shortest path
  // is covered — the pruning never cuts an optimal route.
  std::vector<VertexId> boundary;
  Dijkstra dijkstra(g);
  std::vector<std::vector<VertexId>> region_boundary(num_regions_);
  for (VertexId v = 0; v < n; ++v) {
    for (const Arc& a : g.Neighbors(v)) {
      if (region_of_[a.to] != region_of_[v]) {
        region_boundary[region_of_[v]].push_back(v);
        break;
      }
    }
  }
  for (uint32_t r = 0; r < num_regions_; ++r) {
    for (VertexId b : region_boundary[r]) {
      dijkstra.RunAll(b);
      for (VertexId u = 0; u < n; ++u) {
        const Distance du = dijkstra.DistanceTo(u);
        if (du == kInfDistance) continue;
        size_t idx = g.FirstArcIndex(u);
        for (const Arc& a : g.Neighbors(u)) {
          const Distance dv = dijkstra.DistanceTo(a.to);
          if (dv != kInfDistance && dv + a.weight == du) SetFlag(idx, r);
          ++idx;
        }
      }
    }
  }

  arc_offsets_.reserve(n);
  for (VertexId v = 0; v < n; ++v) arc_offsets_.push_back(g.FirstArcIndex(v));
}

std::unique_ptr<QueryContext> ArcFlagsIndex::NewContext() const {
  return std::make_unique<Context>(graph_.NumVertices());
}

Distance ArcFlagsIndex::Search(Context* ctx, VertexId s, VertexId t) const {
  const uint32_t target_region = region_of_[t];
  ++ctx->generation;
  ctx->heap.Clear();
  ctx->dist[s] = 0;
  ctx->parent[s] = kInvalidVertex;
  ctx->reached[s] = ctx->generation;
  ctx->heap.Push(s, 0);
  ctx->counters.HeapPush();
  while (!ctx->heap.Empty()) {
    const VertexId u = ctx->heap.PopMin();
    ctx->counters.HeapPop();
    ctx->settled[u] = ctx->generation;
    ctx->counters.Settle();
    if (u == t) return ctx->dist[t];
    const Distance du = ctx->dist[u];
    size_t idx = arc_offsets_[u];
    for (const Arc& a : graph_.Neighbors(u)) {
      const size_t arc_index = idx++;
      if (!ArcFlag(arc_index, target_region)) continue;  // pruned
      if (ctx->settled[a.to] == ctx->generation) continue;
      ctx->counters.RelaxEdge();
      const Distance cand = du + a.weight;
      if (ctx->reached[a.to] != ctx->generation) {
        ctx->reached[a.to] = ctx->generation;
        ctx->dist[a.to] = cand;
        ctx->parent[a.to] = u;
        ctx->heap.Push(a.to, cand);
        ctx->counters.HeapPush();
      } else if (cand < ctx->dist[a.to]) {
        ctx->dist[a.to] = cand;
        ctx->parent[a.to] = u;
        ctx->heap.DecreaseKey(a.to, cand);
        ctx->counters.HeapPush();
      }
    }
  }
  return kInfDistance;
}

Distance ArcFlagsIndex::DistanceQuery(QueryContext* ctx, VertexId s,
                                      VertexId t) const {
  ctx->counters.Reset();
  if (s == t) return 0;
  return Search(static_cast<Context*>(ctx), s, t);
}

Path ArcFlagsIndex::PathQuery(QueryContext* raw_ctx, VertexId s,
                              VertexId t) const {
  Context* ctx = static_cast<Context*>(raw_ctx);
  ctx->counters.Reset();
  if (s == t) return {s};
  if (Search(ctx, s, t) == kInfDistance) return {};
  Path path;
  for (VertexId cur = t; cur != kInvalidVertex; cur = ctx->parent[cur]) {
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

size_t ArcFlagsIndex::IndexBytes() const {
  return VectorBytes(region_of_) + VectorBytes(arc_offsets_) +
         VectorBytes(flags_);
}

}  // namespace roadnet
