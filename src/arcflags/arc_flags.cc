#include "arcflags/arc_flags.h"

#include <algorithm>

#include "dijkstra/dijkstra.h"
#include "util/bytes.h"

namespace roadnet {

ArcFlagsIndex::ArcFlagsIndex(const Graph& g, const ArcFlagsConfig& config)
    : graph_(g),
      heap_(g.NumVertices()),
      dist_(g.NumVertices(), 0),
      parent_(g.NumVertices(), kInvalidVertex),
      reached_(g.NumVertices(), 0),
      settled_(g.NumVertices(), 0) {
  const uint32_t n = g.NumVertices();

  // Regions: grid cells of a coarse partition, renumbered densely over
  // the non-empty ones.
  CellGrid grid(g, config.region_resolution);
  std::vector<uint32_t> dense(grid.NumCells(), 0);
  num_regions_ = 0;
  for (uint32_t cell : grid.NonEmptyCells()) dense[cell] = num_regions_++;
  region_of_.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    region_of_[v] = dense[grid.CellIndex(grid.CellOf(v))];
  }

  words_per_arc_ = (num_regions_ + 63) / 64;
  flags_.assign(g.NumArcs() * words_per_arc_, 0);

  // Rule 1: every arc whose head lies in region r is flagged for r (the
  // within-region part of any shortest path).
  for (VertexId u = 0; u < n; ++u) {
    size_t idx = g.FirstArcIndex(u);
    for (const Arc& a : g.Neighbors(u)) {
      SetFlag(idx++, region_of_[a.to]);
    }
  }

  // Rule 2: arc (u, v) is flagged for r if it begins a shortest path from
  // u to some boundary vertex b of r, i.e. dist(u, b) == w + dist(v, b).
  // This is arithmetic over exact distances, so every tied shortest path
  // is covered — the pruning never cuts an optimal route.
  std::vector<VertexId> boundary;
  Dijkstra dijkstra(g);
  std::vector<std::vector<VertexId>> region_boundary(num_regions_);
  for (VertexId v = 0; v < n; ++v) {
    for (const Arc& a : g.Neighbors(v)) {
      if (region_of_[a.to] != region_of_[v]) {
        region_boundary[region_of_[v]].push_back(v);
        break;
      }
    }
  }
  for (uint32_t r = 0; r < num_regions_; ++r) {
    for (VertexId b : region_boundary[r]) {
      dijkstra.RunAll(b);
      for (VertexId u = 0; u < n; ++u) {
        const Distance du = dijkstra.DistanceTo(u);
        if (du == kInfDistance) continue;
        size_t idx = g.FirstArcIndex(u);
        for (const Arc& a : g.Neighbors(u)) {
          const Distance dv = dijkstra.DistanceTo(a.to);
          if (dv != kInfDistance && dv + a.weight == du) SetFlag(idx, r);
          ++idx;
        }
      }
    }
  }

  arc_offsets_.reserve(n);
  for (VertexId v = 0; v < n; ++v) arc_offsets_.push_back(g.FirstArcIndex(v));
}

Distance ArcFlagsIndex::Search(VertexId s, VertexId t) {
  const uint32_t target_region = region_of_[t];
  ++generation_;
  heap_.Clear();
  settled_count_ = 0;
  dist_[s] = 0;
  parent_[s] = kInvalidVertex;
  reached_[s] = generation_;
  heap_.Push(s, 0);
  while (!heap_.Empty()) {
    const VertexId u = heap_.PopMin();
    settled_[u] = generation_;
    ++settled_count_;
    if (u == t) return dist_[t];
    const Distance du = dist_[u];
    size_t idx = arc_offsets_[u];
    for (const Arc& a : graph_.Neighbors(u)) {
      const size_t arc_index = idx++;
      if (!ArcFlag(arc_index, target_region)) continue;  // pruned
      if (settled_[a.to] == generation_) continue;
      const Distance cand = du + a.weight;
      if (reached_[a.to] != generation_) {
        reached_[a.to] = generation_;
        dist_[a.to] = cand;
        parent_[a.to] = u;
        heap_.Push(a.to, cand);
      } else if (cand < dist_[a.to]) {
        dist_[a.to] = cand;
        parent_[a.to] = u;
        heap_.DecreaseKey(a.to, cand);
      }
    }
  }
  return kInfDistance;
}

Distance ArcFlagsIndex::DistanceQuery(VertexId s, VertexId t) {
  if (s == t) return 0;
  return Search(s, t);
}

Path ArcFlagsIndex::PathQuery(VertexId s, VertexId t) {
  if (s == t) return {s};
  if (Search(s, t) == kInfDistance) return {};
  Path path;
  for (VertexId cur = t; cur != kInvalidVertex; cur = parent_[cur]) {
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

size_t ArcFlagsIndex::IndexBytes() const {
  return VectorBytes(region_of_) + VectorBytes(arc_offsets_) +
         VectorBytes(flags_);
}

}  // namespace roadnet
