#ifndef ROADNET_HL_HL_INDEX_H_
#define ROADNET_HL_HL_INDEX_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ch/ch_index.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "routing/path_index.h"

namespace roadnet {

struct HlConfig {
  // Worker threads for label construction; 0 picks
  // std::thread::hardware_concurrency(). Construction output is
  // byte-identical for every thread count.
  size_t num_threads = 0;
};

// Hub labeling over a finished contraction hierarchy (Abraham et al.
// 2011; Zhu et al.'s "Towards Bridging Theory and Practice" is the
// practice this follows — see PAPERS.md).
//
// The label of vertex v is its CH upward search space after
// distance-check pruning: vertex u with upward distance d survives only
// if d equals the true dist(v, u), verified with a CH query. Because the
// graph is undirected one label per vertex serves both query roles, and
// CH's correctness argument carries over directly: the apex (the
// highest-ranked vertex of a shortest s-t path) lies in both upward
// search spaces at its true distance, so it survives pruning in both
// labels and the merge below finds it.
//
// A distance query is a single merge-intersection of the two labels —
// no heap, no graph traversal, no scattered loads: hubs are stored as
// contraction ranks in strictly ascending order, in one flat array of
// 8-byte {hub rank, distance} entries addressed by a CSR offset table,
// so the merge streams two contiguous runs and takes
// min(d(s,h) + d(h,t)) over common hubs h.
//
// The index is immutable after construction and holds no query scratch
// at all; the per-thread HlContext exists to carry QueryCounters and the
// CH context that path queries delegate to (labels store distances, not
// parents — path expansion reuses the CH, which must outlive the index
// unless it is adopted via BuildOwning).
class HlIndex : public PathIndex {
 public:
  // One label entry. `hub` is the hub's contraction rank (rank space
  // makes entries sort-stable across identical builds and keeps the
  // high-rank hubs every label shares in a dense id range); `dist` is
  // the exact shortest-path distance to the hub. Road-network distances
  // fit u32 (Weight is u32 and paths are short); construction asserts.
  struct HubEntry {
    uint32_t hub;
    uint32_t dist;
  };

  // Builds labels from ch, which must be built over g and outlive the
  // index. Deterministic for any thread count.
  HlIndex(const Graph& g, const ChIndex& ch, const HlConfig& config);
  HlIndex(const Graph& g, const ChIndex& ch) : HlIndex(g, ch, HlConfig{}) {}

  // Builds labels over a hierarchy the index adopts — the serving path,
  // where nothing else needs the CH afterwards (path queries still use
  // it internally).
  static std::unique_ptr<HlIndex> BuildOwning(
      const Graph& g, std::unique_ptr<const ChIndex> ch,
      const HlConfig& config = HlConfig{});

  // Writes the labels (format v1: magic, version, CRC-checksummed
  // payload) so query servers can skip both contraction and label
  // construction.
  void Serialize(std::ostream& out) const;

  // Restores serialized labels over the same graph and hierarchy they
  // were built on (vertex count, label structure and self-hub ranks are
  // validated). Returns nullptr on malformed input.
  static std::unique_ptr<HlIndex> Deserialize(const Graph& g,
                                              const ChIndex& ch,
                                              std::istream& in,
                                              std::string* error);

  std::string Name() const override { return "HL"; }
  std::unique_ptr<QueryContext> NewContext() const override;
  Distance DistanceQuery(QueryContext* ctx, VertexId s,
                         VertexId t) const override;
  Path PathQuery(QueryContext* ctx, VertexId s, VertexId t) const override;
  using PathIndex::DistanceQuery;
  using PathIndex::PathQuery;
  size_t IndexBytes() const override;

  // Bytes of the label arrays alone (the space the technique adds on
  // top of the CH it was derived from); IndexBytes() additionally
  // counts an adopted hierarchy.
  size_t LabelBytes() const;

  size_t NumLabelEntries() const { return labels_.size(); }
  double AvgLabelEntries() const {
    return offsets_.size() <= 1
               ? 0.0
               : static_cast<double>(labels_.size()) /
                     static_cast<double>(offsets_.size() - 1);
  }
  size_t MaxLabelEntries() const;

  // The label of v: {hub rank, distance} entries, hub ranks strictly
  // ascending. Every label contains v itself (dist 0).
  std::span<const HubEntry> Label(VertexId v) const {
    return {labels_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  const ChIndex& Hierarchy() const { return *ch_; }

 private:
  struct Context : QueryContext {
    // Path queries delegate to the CH (labels cannot reconstruct
    // vertices); this is the per-thread CH scratch they run on.
    std::unique_ptr<QueryContext> ch_ctx;
  };

  // Deserialization constructor: arrays filled by the factory.
  struct DeserializeTag {};
  HlIndex(const Graph& g, const ChIndex& ch, DeserializeTag);

  // Runs label construction (see .cc): upward search spaces, batched
  // distance-check pruning on the engine worker pool, CSR flattening.
  void BuildLabels(const HlConfig& config);

  const Graph& graph_;
  const ChIndex* ch_;
  // Set only by BuildOwning: keeps an adopted hierarchy alive.
  std::unique_ptr<const ChIndex> owned_ch_;
  // CSR over labels_, indexed by external VertexId (queries arrive in
  // external ids; one array lookup beats a rank translation here
  // because the label run is the only thing the query touches).
  std::vector<uint64_t> offsets_;
  std::vector<HubEntry> labels_;
};

}  // namespace roadnet

#endif  // ROADNET_HL_HL_INDEX_H_
