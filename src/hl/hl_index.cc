#include "hl/hl_index.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <sstream>
#include <thread>
#include <utility>

#include "engine/query_engine.h"
#include "io/binary.h"
#include "io/crc32.h"
#include "util/bytes.h"

namespace roadnet {

namespace {

constexpr char kHlMagic[8] = {'R', 'N', 'E', 'T', 'H', 'L', 'I', 'X'};
constexpr uint32_t kHlVersion = 1;

// Vertices per construction round. Bounds the transient memory (search
// spaces plus one pruning batch) to the block instead of the whole
// graph, while keeping each engine batch large enough that the worker
// pool's chunked stealing has something to balance.
constexpr uint32_t kBuildBlock = 4096;

}  // namespace

HlIndex::HlIndex(const Graph& g, const ChIndex& ch, const HlConfig& config)
    : graph_(g), ch_(&ch) {
  BuildLabels(config);
}

HlIndex::HlIndex(const Graph& g, const ChIndex& ch, DeserializeTag)
    : graph_(g), ch_(&ch) {}

std::unique_ptr<HlIndex> HlIndex::BuildOwning(
    const Graph& g, std::unique_ptr<const ChIndex> ch,
    const HlConfig& config) {
  auto index = std::make_unique<HlIndex>(g, *ch, config);
  index->owned_ch_ = std::move(ch);
  return index;
}

void HlIndex::BuildLabels(const HlConfig& config) {
  const uint32_t n = graph_.NumVertices();
  offsets_.assign(static_cast<size_t>(n) + 1, 0);
  labels_.clear();
  if (n == 0) return;

  size_t num_threads = config.num_threads != 0
                           ? config.num_threads
                           : std::thread::hardware_concurrency();
  if (num_threads == 0) num_threads = 1;

  // The distance checks run as batches on the engine worker pool: each
  // candidate (v, hub) becomes one CH distance query, and the pool's
  // work stealing soaks up the wildly uneven per-vertex label sizes.
  QueryEngine engine(*ch_, num_threads);
  BatchOptions batch_options;
  batch_options.record_latencies = false;
  batch_options.record_counters = false;

  // Per-block scratch, reused across rounds.
  std::vector<std::vector<std::pair<VertexId, Distance>>> spaces(kBuildBlock);
  std::vector<std::pair<VertexId, VertexId>> checks;
  std::vector<HubEntry> label;

  for (uint32_t begin = 0; begin < n; begin += kBuildBlock) {
    const uint32_t end = std::min<uint32_t>(begin + kBuildBlock, n);

    // Upward search space of every vertex in the block, in parallel.
    // Results land in slots indexed by vertex, so the output does not
    // depend on scheduling and construction stays deterministic.
    {
      std::atomic<uint32_t> cursor{begin};
      auto worker = [&] {
        std::unique_ptr<QueryContext> ctx = ch_->NewContext();
        std::vector<std::pair<VertexId, Distance>> buf;
        for (;;) {
          const uint32_t v = cursor.fetch_add(1, std::memory_order_relaxed);
          if (v >= end) return;
          ch_->UpwardSearchSpace(ctx.get(), v, &buf);
          spaces[v - begin] = buf;
        }
      };
      std::vector<std::thread> threads;
      threads.reserve(num_threads);
      for (size_t i = 0; i + 1 < num_threads; ++i) {
        threads.emplace_back(worker);
      }
      worker();
      for (std::thread& t : threads) t.join();
    }

    // Distance-check pruning, batched. The self-hub (upward distance 0)
    // is exact by definition and skips the check.
    checks.clear();
    for (uint32_t v = begin; v < end; ++v) {
      for (const auto& [u, d] : spaces[v - begin]) {
        if (u != v) checks.emplace_back(v, u);
      }
    }
    BatchResult result;
    if (!checks.empty()) result = engine.Run(checks, batch_options);

    // Keep a hub only if its upward distance is the true distance, and
    // store survivors in strictly ascending rank order.
    size_t check_index = 0;
    for (uint32_t v = begin; v < end; ++v) {
      label.clear();
      for (const auto& [u, d] : spaces[v - begin]) {
        const bool exact =
            u == v || result.distances[check_index++] == d;
        if (!exact) continue;
        assert(d <= UINT32_MAX);
        label.push_back(HubEntry{ch_->RankOf(u), static_cast<uint32_t>(d)});
      }
      std::sort(label.begin(), label.end(),
                [](const HubEntry& a, const HubEntry& b) {
                  return a.hub < b.hub;
                });
      labels_.insert(labels_.end(), label.begin(), label.end());
      offsets_[v + 1] = labels_.size();
      spaces[v - begin].clear();
    }
  }
  // The index is immutable from here on; drop the growth slack so
  // IndexBytes() (capacity-based, util/bytes.h) reports what a restored
  // index would hold.
  labels_.shrink_to_fit();
}

std::unique_ptr<QueryContext> HlIndex::NewContext() const {
  auto ctx = std::make_unique<Context>();
  ctx->ch_ctx = ch_->NewContext();
  return ctx;
}

Distance HlIndex::DistanceQuery(QueryContext* ctx, VertexId s,
                                VertexId t) const {
  ctx->counters.Reset();
  const std::span<const HubEntry> a = Label(s);
  const std::span<const HubEntry> b = Label(t);
  Distance best = kInfDistance;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const uint32_t ha = a[i].hub;
    const uint32_t hb = b[j].hub;
    if (ha == hb) {
      const Distance d = Distance{a[i].dist} + Distance{b[j].dist};
      if (d < best) best = d;
      ++i;
      ++j;
    } else if (ha < hb) {
      ++i;
    } else {
      ++j;
    }
  }
  ctx->counters.TableLookup(i + j);
  return best;
}

Path HlIndex::PathQuery(QueryContext* ctx, VertexId s, VertexId t) const {
  // Labels hold distances, not parents: expansion reuses the CH, whose
  // unpacking already emits original-graph vertices. The counters are
  // the CH query's counters — that is the work this query did.
  Context* hl_ctx = static_cast<Context*>(ctx);
  Path path = ch_->PathQuery(hl_ctx->ch_ctx.get(), s, t);
  hl_ctx->counters = hl_ctx->ch_ctx->counters;
  return path;
}

size_t HlIndex::IndexBytes() const {
  size_t bytes = LabelBytes();
  if (owned_ch_ != nullptr) bytes += owned_ch_->IndexBytes();
  return bytes;
}

size_t HlIndex::LabelBytes() const {
  return VectorBytes(offsets_) + VectorBytes(labels_);
}

size_t HlIndex::MaxLabelEntries() const {
  size_t max_entries = 0;
  for (size_t v = 0; v + 1 < offsets_.size(); ++v) {
    max_entries = std::max<size_t>(max_entries, offsets_[v + 1] - offsets_[v]);
  }
  return max_entries;
}

void HlIndex::Serialize(std::ostream& out) const {
  WriteMagic(out, kHlMagic);
  WriteScalar<uint32_t>(out, kHlVersion);
  std::ostringstream payload;
  WriteScalar<uint32_t>(payload, graph_.NumVertices());
  WriteVector(payload, offsets_);
  WriteVector(payload, labels_);
  WriteChecksummedPayload(out, payload.view());
}

std::unique_ptr<HlIndex> HlIndex::Deserialize(const Graph& g,
                                              const ChIndex& ch,
                                              std::istream& in,
                                              std::string* error) {
  auto fail = [error](const char* message) {
    if (error != nullptr) *error = message;
    return nullptr;
  };
  if (!CheckMagic(in, kHlMagic)) return fail("hl: bad magic");
  uint32_t version = 0;
  if (!ReadScalar(in, &version) || version != kHlVersion) {
    return fail("hl: unsupported version (re-run preprocess with this build)");
  }
  std::string buffer;
  if (!ReadChecksummedPayload(in, &buffer, "hl", error)) return nullptr;
  std::istringstream body(buffer);
  uint32_t n = 0;
  if (!ReadScalar(body, &n) || n != g.NumVertices()) {
    return fail("hl: vertex count does not match the graph");
  }
  std::unique_ptr<HlIndex> index(new HlIndex(g, ch, DeserializeTag{}));
  if (!ReadVector(body, &index->offsets_) ||
      index->offsets_.size() != static_cast<size_t>(n) + 1) {
    return fail("hl: bad offset block");
  }
  if (!ReadVector(body, &index->labels_) ||
      (n == 0 && !index->labels_.empty())) {
    return fail("hl: bad label block");
  }
  // Structural validation so corrupted input cannot cause out-of-range
  // indexing or wrong merges at query time: offsets form a CSR over the
  // label array, every label is strictly rank-sorted with in-range
  // hubs, and every vertex's label contains the vertex itself at
  // distance 0 (the invariant the merge relies on for s == t).
  if (n > 0 && index->offsets_[0] != 0) return fail("hl: bad offset block");
  for (uint32_t v = 0; v < n; ++v) {
    if (index->offsets_[v + 1] < index->offsets_[v] ||
        index->offsets_[v + 1] > index->labels_.size()) {
      return fail("hl: offsets are not monotone");
    }
  }
  if (n > 0 && index->offsets_[n] != index->labels_.size()) {
    return fail("hl: offsets do not cover the label block");
  }
  for (uint32_t v = 0; v < n; ++v) {
    const std::span<const HubEntry> label = index->Label(v);
    bool has_self = false;
    uint32_t prev_hub = 0;
    for (size_t i = 0; i < label.size(); ++i) {
      if (label[i].hub >= n) return fail("hl: hub rank out of range");
      if (i > 0 && label[i].hub <= prev_hub) {
        return fail("hl: label hubs are not strictly ascending");
      }
      prev_hub = label[i].hub;
      if (label[i].hub == ch.RankOf(v)) {
        if (label[i].dist != 0) return fail("hl: self-hub distance not zero");
        has_self = true;
      }
    }
    if (!has_self) {
      return fail("hl: label is missing its self-hub (wrong hierarchy?)");
    }
  }
  return index;
}

}  // namespace roadnet
