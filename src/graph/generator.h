#ifndef ROADNET_GRAPH_GENERATOR_H_
#define ROADNET_GRAPH_GENERATOR_H_

#include <cstdint>

#include "graph/graph.h"

namespace roadnet {

// Configuration of the synthetic road-network generator.
//
// The paper evaluates on Ninth-DIMACS-Challenge USA road graphs, which are
// not redistributable inside this repository, so the generator produces
// networks with the same structural properties the five algorithms exploit:
//
//  * bounded degree (max 8: grid neighbours plus occasional diagonals),
//  * near-planarity and strong spatial coherence (edge weights are the
//    Euclidean length scaled by a local road-class factor, so geometric
//    closeness implies network closeness),
//  * a highway hierarchy (a sparse lattice of fast "highway" rows/columns
//    creates the important vertices CH and TNR rely on),
//  * irregularity (random edge deletions punch holes, like rivers/parks,
//    and the largest connected component is extracted, like real map
//    extracts).
//
// Networks are deterministic functions of (target_vertices, seed).
struct GeneratorConfig {
  // Approximate vertex count; the result is the largest connected component
  // of a ceil(sqrt)-square lattice, so the final count is slightly lower.
  uint32_t target_vertices = 1000;

  uint64_t seed = 1;

  // Probability of keeping each lattice edge.
  double edge_keep_probability = 0.90;

  // Probability of adding each diagonal edge.
  double diagonal_probability = 0.05;

  // Every highway_period-th row and column is a fast road.
  uint32_t highway_period = 16;

  // Travel-time multiplier of local (non-highway) roads relative to
  // highways. Highways use factor 1.
  double local_road_factor = 3.0;

  // Base (rural) grid pitch in coordinate units; vertices jitter within
  // +/- local_pitch/3.
  int32_t pitch = 1000;

  // Urban density contrast. Real road networks are strongly non-uniform:
  // city cores pack vertices orders of magnitude denser than countryside,
  // which is why the paper's L-infinity query buckets are populated all
  // the way down to one 1024th of the map span. The generator reproduces
  // this with alternating coordinate bands: every other band of
  // `city_band` lattice columns/rows is laid out with pitch
  // pitch / city_density_factor. Set city_density_factor = 1 for a
  // uniform lattice.
  uint32_t city_band = 8;
  uint32_t city_density_factor = 64;

  // Probability, per vertex, of adding one long "bridge/tunnel" edge that
  // skips long_edge_span lattice steps in a random axis direction. Long
  // edges are what exposes the Appendix-B TNR defect: they can jump a
  // shell ring without touching it.
  double long_edge_probability = 0.0;
  uint32_t long_edge_span = 6;
};

// Generates a connected synthetic road network. See GeneratorConfig.
Graph GenerateRoadNetwork(const GeneratorConfig& config);

}  // namespace roadnet

#endif  // ROADNET_GRAPH_GENERATOR_H_
