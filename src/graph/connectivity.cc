#include "graph/connectivity.h"

#include <algorithm>

namespace roadnet {

namespace {

// Iterative BFS labelling from `start` over unlabelled vertices.
void LabelFrom(const Graph& g, VertexId start, uint32_t label,
               std::vector<uint32_t>* labels,
               std::vector<VertexId>* queue) {
  queue->clear();
  queue->push_back(start);
  (*labels)[start] = label;
  for (size_t head = 0; head < queue->size(); ++head) {
    VertexId v = (*queue)[head];
    for (const Arc& a : g.Neighbors(v)) {
      if ((*labels)[a.to] == kInvalidVertex) {
        (*labels)[a.to] = label;
        queue->push_back(a.to);
      }
    }
  }
}

}  // namespace

std::vector<uint32_t> ConnectedComponents(const Graph& g,
                                          uint32_t* num_components) {
  const uint32_t n = g.NumVertices();
  std::vector<uint32_t> labels(n, kInvalidVertex);
  std::vector<VertexId> queue;
  uint32_t next = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (labels[v] == kInvalidVertex) LabelFrom(g, v, next++, &labels, &queue);
  }
  if (num_components != nullptr) *num_components = next;
  return labels;
}

bool IsConnected(const Graph& g) {
  if (g.NumVertices() == 0) return true;
  uint32_t count = 0;
  ConnectedComponents(g, &count);
  return count == 1;
}

Graph LargestComponent(const Graph& g, std::vector<VertexId>* old_to_new) {
  uint32_t count = 0;
  std::vector<uint32_t> labels = ConnectedComponents(g, &count);

  std::vector<uint32_t> sizes(count, 0);
  for (uint32_t label : labels) ++sizes[label];
  uint32_t best = static_cast<uint32_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());

  std::vector<VertexId> mapping(g.NumVertices(), kInvalidVertex);
  uint32_t next = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (labels[v] == best) mapping[v] = next++;
  }

  GraphBuilder builder(next);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (mapping[v] == kInvalidVertex) continue;
    builder.SetCoord(mapping[v], g.Coord(v));
    for (const Arc& a : g.Neighbors(v)) {
      if (v < a.to && mapping[a.to] != kInvalidVertex) {
        builder.AddEdge(mapping[v], mapping[a.to], a.weight);
      }
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(mapping);
  return std::move(builder).Build();
}

}  // namespace roadnet
