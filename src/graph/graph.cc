#include "graph/graph.h"

#include <algorithm>
#include <cassert>

#include "util/bytes.h"

namespace roadnet {

std::optional<Weight> Graph::EdgeWeight(VertexId u, VertexId v) const {
  auto arcs = Neighbors(u);
  // Arcs are sorted by target, so binary search keeps this O(log degree).
  auto it = std::lower_bound(
      arcs.begin(), arcs.end(), v,
      [](const Arc& a, VertexId target) { return a.to < target; });
  if (it != arcs.end() && it->to == v) return it->weight;
  return std::nullopt;
}

size_t Graph::MemoryBytes() const {
  return VectorBytes(offsets_) + VectorBytes(arcs_) + VectorBytes(coords_);
}

GraphBuilder::GraphBuilder(uint32_t num_vertices) : coords_(num_vertices) {}

void GraphBuilder::AddEdge(VertexId u, VertexId v, Weight w) {
  assert(u < coords_.size() && v < coords_.size());
  assert(w > 0);
  if (u == v) return;
  edges_.push_back(RawEdge{u, v, w});
}

Graph GraphBuilder::Build() && {
  const uint32_t n = NumVertices();

  // Normalize to (min(u,v), max(u,v)), sort, and collapse duplicates to the
  // minimum weight.
  for (RawEdge& e : edges_) {
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::sort(edges_.begin(), edges_.end(),
            [](const RawEdge& a, const RawEdge& b) {
              if (a.u != b.u) return a.u < b.u;
              if (a.v != b.v) return a.v < b.v;
              return a.w < b.w;
            });
  edges_.erase(std::unique(edges_.begin(), edges_.end(),
                           [](const RawEdge& a, const RawEdge& b) {
                             return a.u == b.u && a.v == b.v;
                           }),
               edges_.end());

  Graph g;
  g.coords_ = std::move(coords_);
  for (const Point& p : g.coords_) g.bounds_.Expand(p);

  std::vector<uint32_t> degree(n, 0);
  for (const RawEdge& e : edges_) {
    ++degree[e.u];
    ++degree[e.v];
  }
  g.offsets_.assign(n + 1, 0);
  for (uint32_t v = 0; v < n; ++v) g.offsets_[v + 1] = g.offsets_[v] + degree[v];
  g.arcs_.resize(g.offsets_[n]);

  std::vector<size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const RawEdge& e : edges_) {
    g.arcs_[cursor[e.u]++] = Arc{e.v, e.w};
    g.arcs_[cursor[e.v]++] = Arc{e.u, e.w};
  }
  // Edges were sorted by (u, v), so each block with source u is already
  // sorted for the arcs emitted from the u side, but arcs emitted from the
  // v side interleave; sort each block to restore the invariant.
  for (uint32_t v = 0; v < n; ++v) {
    std::sort(g.arcs_.begin() + g.offsets_[v],
              g.arcs_.begin() + g.offsets_[v + 1],
              [](const Arc& a, const Arc& b) { return a.to < b.to; });
  }
  return g;
}

}  // namespace roadnet
