#ifndef ROADNET_GRAPH_DIMACS_H_
#define ROADNET_GRAPH_DIMACS_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "graph/graph.h"

namespace roadnet {

// Reader/writer for the Ninth DIMACS Implementation Challenge formats used
// by the paper's datasets (Section 4.2):
//
//   .gr  —  "p sp <n> <m>" header followed by arc lines "a <u> <v> <w>"
//           (1-based vertex ids). Arcs are interpreted as undirected edges
//           and de-duplicated, matching the paper's undirected model.
//   .co  —  "p aux sp co <n>" header followed by "v <id> <x> <y>".
//
// Readers return nullopt on malformed input and record a human-readable
// message in *error if provided.

// Parses a .gr stream into a builder-compatible edge list plus vertex count.
std::optional<Graph> ReadDimacs(std::istream& gr_stream,
                                std::istream& co_stream,
                                std::string* error);

// Convenience overload reading from files on disk.
std::optional<Graph> ReadDimacsFiles(const std::string& gr_path,
                                     const std::string& co_path,
                                     std::string* error);

// Writes g in DIMACS format (each undirected edge emitted as two arcs,
// matching the challenge files).
void WriteDimacs(const Graph& g, std::ostream& gr_stream,
                 std::ostream& co_stream);

}  // namespace roadnet

#endif  // ROADNET_GRAPH_DIMACS_H_
