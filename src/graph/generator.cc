#include "graph/generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/connectivity.h"
#include "spatial/point.h"
#include "util/rng.h"

namespace roadnet {

namespace {

// Travel time of an edge: Euclidean length times the road-class factor.
// Highways (both endpoints on the same highway row or column) get factor 1;
// everything else gets local_road_factor with +/-20% noise. Always >= 1.
Weight TravelTime(const Point& a, const Point& b, bool highway,
                  double local_factor, Rng* rng) {
  double len = std::sqrt(static_cast<double>(SquaredEuclidean(a, b)));
  double factor =
      highway ? 1.0 : local_factor * (0.8 + 0.4 * rng->NextDouble());
  double t = len * factor;
  return t < 1.0 ? 1 : static_cast<Weight>(t);
}

}  // namespace

Graph GenerateRoadNetwork(const GeneratorConfig& config) {
  const uint32_t side = static_cast<uint32_t>(
      std::ceil(std::sqrt(static_cast<double>(config.target_vertices))));
  const uint32_t rows = side;
  const uint32_t cols = side;
  const uint32_t n = rows * cols;
  Rng rng(config.seed);

  // Lattice coordinates with urban/rural density bands: the cumulative
  // position arrays advance by the fine pitch inside "city" bands and by
  // the full pitch elsewhere, so city blocks appear wherever a dense
  // column band crosses a dense row band.
  const int32_t fine_pitch = std::max<int32_t>(
      1, config.pitch / static_cast<int32_t>(
                            std::max(1u, config.city_density_factor)));
  auto is_city_band = [&](uint32_t index) {
    return config.city_band > 0 && (index / config.city_band) % 2 == 0;
  };
  std::vector<int64_t> col_pos(cols), row_pos(rows);
  std::vector<int32_t> col_step(cols), row_step(rows);
  int64_t x = 0;
  for (uint32_t c = 0; c < cols; ++c) {
    col_pos[c] = x;
    col_step[c] = is_city_band(c) ? fine_pitch : config.pitch;
    x += col_step[c];
  }
  int64_t y = 0;
  for (uint32_t r = 0; r < rows; ++r) {
    row_pos[r] = y;
    row_step[r] = is_city_band(r) ? fine_pitch : config.pitch;
    y += row_step[r];
  }

  std::vector<Point> coords(n);
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < cols; ++c) {
      // Jitter scales with the local lattice step so dense blocks stay
      // locally ordered.
      const int32_t jx = std::max(1, col_step[c] / 3);
      const int32_t jy = std::max(1, row_step[r] / 3);
      coords[r * cols + c] =
          Point{static_cast<int32_t>(col_pos[c] + rng.NextInRange(-jx, jx)),
                static_cast<int32_t>(row_pos[r] + rng.NextInRange(-jy, jy))};
    }
  }

  auto is_highway_row = [&](uint32_t r) {
    return config.highway_period > 0 && r % config.highway_period == 0;
  };
  auto is_highway_col = [&](uint32_t c) {
    return config.highway_period > 0 && c % config.highway_period == 0;
  };

  GraphBuilder builder(n);
  for (uint32_t v = 0; v < n; ++v) builder.SetCoord(v, coords[v]);

  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < cols; ++c) {
      const VertexId v = r * cols + c;
      // Horizontal edge to (r, c+1). Highway edges are never deleted, so
      // the fast lattice stays intact (mirrors interstates surviving in
      // every extract).
      if (c + 1 < cols) {
        bool highway = is_highway_row(r);
        if (highway || rng.NextBool(config.edge_keep_probability)) {
          builder.AddEdge(v, v + 1,
                          TravelTime(coords[v], coords[v + 1], highway,
                                     config.local_road_factor, &rng));
        }
      }
      // Vertical edge to (r+1, c).
      if (r + 1 < rows) {
        bool highway = is_highway_col(c);
        if (highway || rng.NextBool(config.edge_keep_probability)) {
          builder.AddEdge(v, v + cols,
                          TravelTime(coords[v], coords[v + cols], highway,
                                     config.local_road_factor, &rng));
        }
      }
      // Occasional diagonal to (r+1, c+1), always a local road.
      if (r + 1 < rows && c + 1 < cols &&
          rng.NextBool(config.diagonal_probability)) {
        builder.AddEdge(v, v + cols + 1,
                        TravelTime(coords[v], coords[v + cols + 1], false,
                                   config.local_road_factor, &rng));
      }
      // Rare long edge (bridge/tunnel) skipping several lattice steps.
      if (config.long_edge_probability > 0 &&
          rng.NextBool(config.long_edge_probability)) {
        const uint32_t span = config.long_edge_span;
        VertexId other = kInvalidVertex;
        if (rng.NextBool(0.5)) {
          if (c + span < cols) other = v + span;
        } else {
          if (r + span < rows) other = v + span * cols;
        }
        if (other != kInvalidVertex) {
          // Bridges/expressway segments run at highway speed, so they are
          // genuinely attractive to shortest paths (and an access-node
          // computation that misses them really does corrupt answers).
          builder.AddEdge(v, other,
                          TravelTime(coords[v], coords[other], true,
                                     config.local_road_factor, &rng));
        }
      }
    }
  }

  Graph raw = std::move(builder).Build();
  return LargestComponent(raw, nullptr);
}

}  // namespace roadnet
