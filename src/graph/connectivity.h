#ifndef ROADNET_GRAPH_CONNECTIVITY_H_
#define ROADNET_GRAPH_CONNECTIVITY_H_

#include <vector>

#include "graph/graph.h"

namespace roadnet {

// True if every vertex is reachable from vertex 0 (or the graph is empty).
bool IsConnected(const Graph& g);

// Labels each vertex with its connected-component id (components numbered
// in order of discovery from vertex 0 upward) and returns the labels.
std::vector<uint32_t> ConnectedComponents(const Graph& g,
                                          uint32_t* num_components);

// Returns the subgraph induced by the largest connected component, with
// vertices renumbered densely. `old_to_new`, if non-null, receives the
// mapping (kInvalidVertex for dropped vertices). Mirrors how road-network
// datasets are prepared from raw map extracts.
Graph LargestComponent(const Graph& g, std::vector<VertexId>* old_to_new);

}  // namespace roadnet

#endif  // ROADNET_GRAPH_CONNECTIVITY_H_
