#ifndef ROADNET_GRAPH_GRAPH_H_
#define ROADNET_GRAPH_GRAPH_H_

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "graph/types.h"
#include "spatial/point.h"
#include "spatial/rect.h"

namespace roadnet {

// Half-edge of the adjacency structure: the far endpoint and the weight.
struct Arc {
  VertexId to;
  Weight weight;

  friend bool operator==(const Arc& a, const Arc& b) {
    return a.to == b.to && a.weight == b.weight;
  }
};

// Immutable undirected weighted road network with per-vertex planar
// coordinates, stored in compressed-sparse-row form (each undirected edge
// appears as two arcs). This is the common substrate every algorithm in
// the paper is built on (Section 2: degree-bounded connected graph, edge
// weights = travel times).
class Graph {
 public:
  Graph() = default;

  // Move-only: graphs can be large and accidental copies are never wanted.
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  uint32_t NumVertices() const {
    return static_cast<uint32_t>(coords_.size());
  }

  // Number of undirected edges.
  size_t NumEdges() const { return arcs_.size() / 2; }

  // Number of directed arcs (2 * NumEdges()).
  size_t NumArcs() const { return arcs_.size(); }

  // Global CSR position of v's first arc; v's arcs occupy
  // [FirstArcIndex(v), FirstArcIndex(v) + Degree(v)). Lets per-arc
  // annotations (e.g. Arc Flags) live in parallel arrays.
  size_t FirstArcIndex(VertexId v) const { return offsets_[v]; }

  // Outgoing arcs of v, sorted by target id.
  std::span<const Arc> Neighbors(VertexId v) const {
    return {arcs_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  uint32_t Degree(VertexId v) const {
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  // Weight of the undirected edge (u, v), or nullopt if absent.
  std::optional<Weight> EdgeWeight(VertexId u, VertexId v) const;

  bool HasEdge(VertexId u, VertexId v) const {
    return EdgeWeight(u, v).has_value();
  }

  const Point& Coord(VertexId v) const { return coords_[v]; }
  const std::vector<Point>& Coords() const { return coords_; }

  // Bounding box of all vertex coordinates.
  const Rect& Bounds() const { return bounds_; }

  // Heap bytes held by the graph itself (not counted as index overhead;
  // every method needs the graph resident).
  size_t MemoryBytes() const;

 private:
  friend class GraphBuilder;

  std::vector<size_t> offsets_;  // size n+1
  std::vector<Arc> arcs_;        // size 2m, grouped by source
  std::vector<Point> coords_;    // size n
  Rect bounds_ = Rect::Empty();
};

// Accumulates edges and coordinates, then produces a CSR Graph.
// Parallel edges collapse to the minimum weight; self-loops are dropped
// (neither ever participates in a shortest path).
class GraphBuilder {
 public:
  explicit GraphBuilder(uint32_t num_vertices);

  uint32_t NumVertices() const {
    return static_cast<uint32_t>(coords_.size());
  }

  // Records the undirected edge (u, v) with the given positive weight.
  void AddEdge(VertexId u, VertexId v, Weight w);

  void SetCoord(VertexId v, Point p) { coords_[v] = p; }

  // Builds the immutable graph. The builder is consumed.
  Graph Build() &&;

 private:
  struct RawEdge {
    VertexId u;
    VertexId v;
    Weight w;
  };

  std::vector<RawEdge> edges_;
  std::vector<Point> coords_;
};

}  // namespace roadnet

#endif  // ROADNET_GRAPH_GRAPH_H_
