#ifndef ROADNET_GRAPH_TYPES_H_
#define ROADNET_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace roadnet {

// Dense vertex identifier in [0, n).
using VertexId = uint32_t;

// Non-negative edge weight. The DIMACS travel-time graphs and our synthetic
// generator both fit comfortably in 32 bits per edge.
using Weight = uint32_t;

// Sum of weights along a path. 64-bit so that no realistic path overflows.
using Distance = uint64_t;

// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

// Sentinel for "unreachable".
inline constexpr Distance kInfDistance =
    std::numeric_limits<Distance>::max();

}  // namespace roadnet

#endif  // ROADNET_GRAPH_TYPES_H_
