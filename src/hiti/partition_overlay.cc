#include "hiti/partition_overlay.h"

#include <algorithm>

#include "util/bytes.h"

namespace roadnet {

PartitionOverlayIndex::PartitionOverlayIndex(
    const Graph& g, const PartitionOverlayConfig& config)
    : graph_(g),
      heap_(g.NumVertices()),
      dist_(g.NumVertices(), 0),
      parent_(g.NumVertices(), kInvalidVertex),
      via_clique_(g.NumVertices(), 0),
      reached_(g.NumVertices(), 0),
      settled_(g.NumVertices(), 0),
      rheap_(g.NumVertices()),
      rdist_(g.NumVertices(), 0),
      rparent_(g.NumVertices(), kInvalidVertex),
      rreached_(g.NumVertices(), 0) {
  const uint32_t n = g.NumVertices();

  // Regions: dense ids over the non-empty cells of a coarse grid.
  CellGrid grid(g, config.region_resolution);
  std::vector<uint32_t> dense(grid.NumCells(), 0);
  num_regions_ = 0;
  for (uint32_t cell : grid.NonEmptyCells()) dense[cell] = num_regions_++;
  region_of_.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    region_of_[v] = dense[grid.CellIndex(grid.CellOf(v))];
  }

  // Boundary vertices: adjacent to another region.
  is_boundary_.assign(n, false);
  std::vector<std::vector<VertexId>> region_boundary(num_regions_);
  for (VertexId v = 0; v < n; ++v) {
    for (const Arc& a : g.Neighbors(v)) {
      if (region_of_[a.to] != region_of_[v]) {
        is_boundary_[v] = true;
        region_boundary[region_of_[v]].push_back(v);
        break;
      }
    }
  }

  // Boundary cliques: within-region shortest distances between boundary
  // vertices (HEPV/HiTi's precomputed component distances).
  std::vector<std::vector<CliqueArc>> clique(n);
  for (uint32_t r = 0; r < num_regions_; ++r) {
    for (VertexId b : region_boundary[r]) {
      RestrictedSearch(b, kInvalidVertex, r, nullptr, nullptr);
      for (VertexId other : region_boundary[r]) {
        if (other == b || rreached_[other] != rgeneration_) continue;
        clique[b].push_back(
            CliqueArc{other, static_cast<Weight>(rdist_[other])});
      }
    }
  }
  clique_offsets_.assign(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    clique_offsets_[v + 1] =
        clique_offsets_[v] + static_cast<uint32_t>(clique[v].size());
  }
  clique_arcs_.resize(clique_offsets_[n]);
  for (VertexId v = 0; v < n; ++v) {
    std::copy(clique[v].begin(), clique[v].end(),
              clique_arcs_.begin() + clique_offsets_[v]);
  }
}

Distance PartitionOverlayIndex::RestrictedSearch(
    VertexId source, VertexId target, uint32_t region,
    std::vector<Distance>* dist, std::vector<VertexId>* parent) {
  ++rgeneration_;
  rheap_.Clear();
  rdist_[source] = 0;
  rparent_[source] = kInvalidVertex;
  rreached_[source] = rgeneration_;
  rheap_.Push(source, 0);
  while (!rheap_.Empty()) {
    const VertexId u = rheap_.PopMin();
    if (u == target) break;
    const Distance du = rdist_[u];
    for (const Arc& a : graph_.Neighbors(u)) {
      if (region_of_[a.to] != region) continue;  // stay inside the region
      const Distance cand = du + a.weight;
      if (rreached_[a.to] != rgeneration_) {
        rreached_[a.to] = rgeneration_;
        rdist_[a.to] = cand;
        rparent_[a.to] = u;
        rheap_.Push(a.to, cand);
      } else if (rheap_.Contains(a.to) && cand < rdist_[a.to]) {
        rdist_[a.to] = cand;
        rparent_[a.to] = u;
        rheap_.DecreaseKey(a.to, cand);
      }
    }
  }
  if (dist != nullptr) *dist = rdist_;
  if (parent != nullptr) *parent = rparent_;
  if (target == kInvalidVertex) return kInfDistance;
  return rreached_[target] == rgeneration_ ? rdist_[target] : kInfDistance;
}

Distance PartitionOverlayIndex::Search(VertexId s, VertexId t) {
  const uint32_t rs = region_of_[s];
  const uint32_t rt = region_of_[t];
  ++generation_;
  heap_.Clear();
  settled_count_ = 0;
  dist_[s] = 0;
  parent_[s] = kInvalidVertex;
  via_clique_[s] = 0;
  reached_[s] = generation_;
  heap_.Push(s, 0);

  auto relax = [&](VertexId from, VertexId to, Weight w, bool clique) {
    const Distance cand = dist_[from] + w;
    if (reached_[to] != generation_) {
      reached_[to] = generation_;
      dist_[to] = cand;
      parent_[to] = from;
      via_clique_[to] = clique ? 1 : 0;
      heap_.Push(to, cand);
    } else if (settled_[to] != generation_ && cand < dist_[to]) {
      dist_[to] = cand;
      parent_[to] = from;
      via_clique_[to] = clique ? 1 : 0;
      heap_.DecreaseKey(to, cand);
    }
  };

  while (!heap_.Empty()) {
    const VertexId u = heap_.PopMin();
    settled_[u] = generation_;
    ++settled_count_;
    if (u == t) return dist_[t];
    const uint32_t ru = region_of_[u];
    if (ru == rs || ru == rt) {
      // Inside the source/target region: ordinary expansion.
      for (const Arc& a : graph_.Neighbors(u)) {
        relax(u, a.to, a.weight, /*clique=*/false);
      }
      // A boundary vertex of the source/target region may also shortcut
      // through its clique (harmless: clique weights are true distances).
      for (const CliqueArc& c : CliqueArcs(u)) {
        relax(u, c.to, c.weight, /*clique=*/true);
      }
    } else {
      // Foreign region: u is necessarily a boundary vertex. Traverse the
      // region through its clique and leave through crossing arcs.
      for (const CliqueArc& c : CliqueArcs(u)) {
        relax(u, c.to, c.weight, /*clique=*/true);
      }
      for (const Arc& a : graph_.Neighbors(u)) {
        if (region_of_[a.to] != ru) {
          relax(u, a.to, a.weight, /*clique=*/false);
        }
      }
    }
  }
  return kInfDistance;
}

Distance PartitionOverlayIndex::DistanceQuery(VertexId s, VertexId t) {
  if (s == t) return 0;
  return Search(s, t);
}

Path PartitionOverlayIndex::PathQuery(VertexId s, VertexId t) {
  if (s == t) return {s};
  if (Search(s, t) == kInfDistance) return {};

  // Overlay path (may contain clique hops), t back to s.
  std::vector<std::pair<VertexId, bool>> overlay;  // (vertex, via clique)
  for (VertexId cur = t; cur != kInvalidVertex; cur = parent_[cur]) {
    overlay.emplace_back(cur, via_clique_[cur] != 0);
    if (cur == s) break;
  }
  std::reverse(overlay.begin(), overlay.end());

  Path path{s};
  for (size_t i = 1; i < overlay.size(); ++i) {
    const VertexId from = overlay[i - 1].first;
    const auto [to, clique] = overlay[i];
    if (!clique) {
      path.push_back(to);
      continue;
    }
    // Unpack the clique hop with a restricted search inside the region.
    RestrictedSearch(from, to, region_of_[to], nullptr, nullptr);
    Path segment;
    for (VertexId cur = to; cur != kInvalidVertex; cur = rparent_[cur]) {
      segment.push_back(cur);
      if (cur == from) break;
    }
    std::reverse(segment.begin(), segment.end());
    path.insert(path.end(), segment.begin() + 1, segment.end());
  }
  return path;
}

size_t PartitionOverlayIndex::IndexBytes() const {
  return VectorBytes(region_of_) + is_boundary_.capacity() / 8 +
         VectorBytes(clique_offsets_) + VectorBytes(clique_arcs_);
}

}  // namespace roadnet
