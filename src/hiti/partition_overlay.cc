#include "hiti/partition_overlay.h"

#include <algorithm>

#include "util/bytes.h"

namespace roadnet {

PartitionOverlayIndex::PartitionOverlayIndex(
    const Graph& g, const PartitionOverlayConfig& config)
    : graph_(g) {
  const uint32_t n = g.NumVertices();

  // Regions: dense ids over the non-empty cells of a coarse grid.
  CellGrid grid(g, config.region_resolution);
  std::vector<uint32_t> dense(grid.NumCells(), 0);
  num_regions_ = 0;
  for (uint32_t cell : grid.NonEmptyCells()) dense[cell] = num_regions_++;
  region_of_.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    region_of_[v] = dense[grid.CellIndex(grid.CellOf(v))];
  }

  // Boundary vertices: adjacent to another region.
  is_boundary_.assign(n, false);
  std::vector<std::vector<VertexId>> region_boundary(num_regions_);
  for (VertexId v = 0; v < n; ++v) {
    for (const Arc& a : g.Neighbors(v)) {
      if (region_of_[a.to] != region_of_[v]) {
        is_boundary_[v] = true;
        region_boundary[region_of_[v]].push_back(v);
        break;
      }
    }
  }

  // Boundary cliques: within-region shortest distances between boundary
  // vertices (HEPV/HiTi's precomputed component distances). Uses a local
  // context so preprocessing shares the query machinery.
  Context scratch(n);
  std::vector<std::vector<CliqueArc>> clique(n);
  for (uint32_t r = 0; r < num_regions_; ++r) {
    for (VertexId b : region_boundary[r]) {
      RestrictedSearch(&scratch, b, kInvalidVertex, r);
      for (VertexId other : region_boundary[r]) {
        if (other == b || scratch.rreached[other] != scratch.rgeneration) {
          continue;
        }
        clique[b].push_back(
            CliqueArc{other, static_cast<Weight>(scratch.rdist[other])});
      }
    }
  }
  clique_offsets_.assign(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    clique_offsets_[v + 1] =
        clique_offsets_[v] + static_cast<uint32_t>(clique[v].size());
  }
  clique_arcs_.resize(clique_offsets_[n]);
  for (VertexId v = 0; v < n; ++v) {
    std::copy(clique[v].begin(), clique[v].end(),
              clique_arcs_.begin() + clique_offsets_[v]);
  }
}

std::unique_ptr<QueryContext> PartitionOverlayIndex::NewContext() const {
  return std::make_unique<Context>(graph_.NumVertices());
}

Distance PartitionOverlayIndex::RestrictedSearch(Context* ctx,
                                                 VertexId source,
                                                 VertexId target,
                                                 uint32_t region) const {
  ++ctx->rgeneration;
  ctx->rheap.Clear();
  ctx->rdist[source] = 0;
  ctx->rparent[source] = kInvalidVertex;
  ctx->rreached[source] = ctx->rgeneration;
  ctx->rheap.Push(source, 0);
  ctx->counters.HeapPush();
  while (!ctx->rheap.Empty()) {
    const VertexId u = ctx->rheap.PopMin();
    ctx->counters.HeapPop();
    if (u == target) break;
    const Distance du = ctx->rdist[u];
    for (const Arc& a : graph_.Neighbors(u)) {
      if (region_of_[a.to] != region) continue;  // stay inside the region
      ctx->counters.RelaxEdge();
      const Distance cand = du + a.weight;
      if (ctx->rreached[a.to] != ctx->rgeneration) {
        ctx->rreached[a.to] = ctx->rgeneration;
        ctx->rdist[a.to] = cand;
        ctx->rparent[a.to] = u;
        ctx->rheap.Push(a.to, cand);
        ctx->counters.HeapPush();
      } else if (ctx->rheap.Contains(a.to) && cand < ctx->rdist[a.to]) {
        ctx->rdist[a.to] = cand;
        ctx->rparent[a.to] = u;
        ctx->rheap.DecreaseKey(a.to, cand);
        ctx->counters.HeapPush();
      }
    }
  }
  if (target == kInvalidVertex) return kInfDistance;
  return ctx->rreached[target] == ctx->rgeneration ? ctx->rdist[target]
                                                   : kInfDistance;
}

Distance PartitionOverlayIndex::Search(Context* ctx, VertexId s,
                                       VertexId t) const {
  const uint32_t rs = region_of_[s];
  const uint32_t rt = region_of_[t];
  ++ctx->generation;
  ctx->heap.Clear();
  ctx->dist[s] = 0;
  ctx->parent[s] = kInvalidVertex;
  ctx->via_clique[s] = 0;
  ctx->reached[s] = ctx->generation;
  ctx->heap.Push(s, 0);
  ctx->counters.HeapPush();

  auto relax = [&](VertexId from, VertexId to, Weight w, bool clique) {
    ctx->counters.RelaxEdge();
    const Distance cand = ctx->dist[from] + w;
    if (ctx->reached[to] != ctx->generation) {
      ctx->reached[to] = ctx->generation;
      ctx->dist[to] = cand;
      ctx->parent[to] = from;
      ctx->via_clique[to] = clique ? 1 : 0;
      ctx->heap.Push(to, cand);
      ctx->counters.HeapPush();
    } else if (ctx->settled[to] != ctx->generation && cand < ctx->dist[to]) {
      ctx->dist[to] = cand;
      ctx->parent[to] = from;
      ctx->via_clique[to] = clique ? 1 : 0;
      ctx->heap.DecreaseKey(to, cand);
      ctx->counters.HeapPush();
    }
  };

  while (!ctx->heap.Empty()) {
    const VertexId u = ctx->heap.PopMin();
    ctx->counters.HeapPop();
    ctx->settled[u] = ctx->generation;
    ctx->counters.Settle();
    if (u == t) return ctx->dist[t];
    const uint32_t ru = region_of_[u];
    if (ru == rs || ru == rt) {
      // Inside the source/target region: ordinary expansion.
      for (const Arc& a : graph_.Neighbors(u)) {
        relax(u, a.to, a.weight, /*clique=*/false);
      }
      // A boundary vertex of the source/target region may also shortcut
      // through its clique (harmless: clique weights are true distances).
      for (const CliqueArc& c : CliqueArcs(u)) {
        relax(u, c.to, c.weight, /*clique=*/true);
      }
    } else {
      // Foreign region: u is necessarily a boundary vertex. Traverse the
      // region through its clique and leave through crossing arcs.
      for (const CliqueArc& c : CliqueArcs(u)) {
        relax(u, c.to, c.weight, /*clique=*/true);
      }
      for (const Arc& a : graph_.Neighbors(u)) {
        if (region_of_[a.to] != ru) {
          relax(u, a.to, a.weight, /*clique=*/false);
        }
      }
    }
  }
  return kInfDistance;
}

Distance PartitionOverlayIndex::DistanceQuery(QueryContext* ctx, VertexId s,
                                              VertexId t) const {
  ctx->counters.Reset();
  if (s == t) return 0;
  return Search(static_cast<Context*>(ctx), s, t);
}

Path PartitionOverlayIndex::PathQuery(QueryContext* raw_ctx, VertexId s,
                                      VertexId t) const {
  Context* ctx = static_cast<Context*>(raw_ctx);
  ctx->counters.Reset();
  if (s == t) return {s};
  if (Search(ctx, s, t) == kInfDistance) return {};

  // Overlay path (may contain clique hops), t back to s.
  std::vector<std::pair<VertexId, bool>> overlay;  // (vertex, via clique)
  for (VertexId cur = t; cur != kInvalidVertex; cur = ctx->parent[cur]) {
    overlay.emplace_back(cur, ctx->via_clique[cur] != 0);
    if (cur == s) break;
  }
  std::reverse(overlay.begin(), overlay.end());

  Path path{s};
  for (size_t i = 1; i < overlay.size(); ++i) {
    const VertexId from = overlay[i - 1].first;
    const auto [to, clique] = overlay[i];
    if (!clique) {
      path.push_back(to);
      continue;
    }
    // Unpack the clique hop with a restricted search inside the region.
    ctx->counters.ShortcutUnpacked();
    RestrictedSearch(ctx, from, to, region_of_[to]);
    Path segment;
    for (VertexId cur = to; cur != kInvalidVertex; cur = ctx->rparent[cur]) {
      segment.push_back(cur);
      if (cur == from) break;
    }
    std::reverse(segment.begin(), segment.end());
    path.insert(path.end(), segment.begin() + 1, segment.end());
  }
  return path;
}

size_t PartitionOverlayIndex::IndexBytes() const {
  return VectorBytes(region_of_) + is_boundary_.capacity() / 8 +
         VectorBytes(clique_offsets_) + VectorBytes(clique_arcs_);
}

}  // namespace roadnet
