#ifndef ROADNET_HITI_PARTITION_OVERLAY_H_
#define ROADNET_HITI_PARTITION_OVERLAY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "pq/indexed_heap.h"
#include "routing/path_index.h"
#include "tnr/cell_grid.h"

namespace roadnet {

// Tuning knobs of the partition overlay.
struct PartitionOverlayConfig {
  // Grid partition resolution (regions = non-empty cells). Small values
  // give big regions with few boundary vertices; the classic papers use
  // tens of components.
  uint32_t region_resolution = 8;
};

// HiTi/HEPV-style partition overlay (Jung & Pramanik 2002, Jing et al.
// 1998 — the paper's Appendix A): partition the network into
// vertex-disjoint regions, precompute the pairwise distances between each
// region's boundary vertices, and answer queries with a Dijkstra that
// traverses foreign regions through those boundary cliques instead of
// their interiors.
//
// The original HiTi assumes Euclidean edge weights, which is exactly why
// the paper excludes it from the main comparison ("HiTi cannot handle the
// datasets used in our experiments, since ... the weight of each edge
// represents the time required to traverse the edge"). This
// implementation generalizes the idea to arbitrary positive weights —
// boundary-to-boundary distances are computed inside each region with a
// restricted Dijkstra rather than assumed from geometry — so it can be
// benchmarked alongside the other Appendix A techniques.
//
// Query: vertices inside the source or target region relax their original
// arcs; every other reachable vertex is a boundary vertex and relaxes its
// region's clique arcs plus the original arcs that cross regions. Path
// queries unpack clique arcs with an on-demand restricted Dijkstra inside
// the region.
class PartitionOverlayIndex : public PathIndex {
 public:
  PartitionOverlayIndex(const Graph& g,
                        const PartitionOverlayConfig& config);
  explicit PartitionOverlayIndex(const Graph& g)
      : PartitionOverlayIndex(g, PartitionOverlayConfig{}) {}

  std::string Name() const override { return "HiTi"; }
  std::unique_ptr<QueryContext> NewContext() const override;
  Distance DistanceQuery(QueryContext* ctx, VertexId s,
                         VertexId t) const override;
  Path PathQuery(QueryContext* ctx, VertexId s, VertexId t) const override;
  using PathIndex::DistanceQuery;
  using PathIndex::PathQuery;
  size_t IndexBytes() const override;

  uint32_t NumRegions() const { return num_regions_; }
  uint32_t RegionOf(VertexId v) const { return region_of_[v]; }
  bool IsBoundary(VertexId v) const { return is_boundary_[v]; }

  size_t SettledCount() const { return ContextCounters().vertices_settled; }

 private:
  // Clique arc: within-region shortest distance between two boundary
  // vertices of the same region.
  struct CliqueArc {
    VertexId to;
    Weight weight;
  };

  struct Context : QueryContext {
    explicit Context(uint32_t n)
        : heap(n), dist(n, 0), parent(n, kInvalidVertex), via_clique(n, 0),
          reached(n, 0), settled(n, 0), rheap(n), rdist(n, 0),
          rparent(n, kInvalidVertex), rreached(n, 0) {}

    // Overlay query scratch.
    IndexedHeap<Distance> heap;
    std::vector<Distance> dist;
    std::vector<VertexId> parent;
    std::vector<uint8_t> via_clique;
    std::vector<uint32_t> reached;
    std::vector<uint32_t> settled;
    uint32_t generation = 0;

    // Restricted-search scratch (separate generation; also used for
    // clique-arc unpacking during path queries).
    IndexedHeap<Distance> rheap;
    std::vector<Distance> rdist;
    std::vector<VertexId> rparent;
    std::vector<uint32_t> rreached;
    uint32_t rgeneration = 0;
  };

  std::span<const CliqueArc> CliqueArcs(VertexId v) const {
    return {clique_arcs_.data() + clique_offsets_[v],
            clique_offsets_[v + 1] - clique_offsets_[v]};
  }

  // Dijkstra restricted to one region, using the context's r-scratch;
  // returns the distance to `target` (kInfDistance if not reachable
  // inside the region).
  Distance RestrictedSearch(Context* ctx, VertexId source, VertexId target,
                            uint32_t region) const;

  // The overlay query search. Parent entries tag arcs that were clique
  // arcs so paths can be unpacked.
  Distance Search(Context* ctx, VertexId s, VertexId t) const;

  const Graph& graph_;
  uint32_t num_regions_ = 0;
  std::vector<uint32_t> region_of_;
  std::vector<bool> is_boundary_;
  std::vector<uint32_t> clique_offsets_;  // per vertex (CSR)
  std::vector<CliqueArc> clique_arcs_;
};

}  // namespace roadnet

#endif  // ROADNET_HITI_PARTITION_OVERLAY_H_
