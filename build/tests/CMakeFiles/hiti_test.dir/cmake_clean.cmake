file(REMOVE_RECURSE
  "CMakeFiles/hiti_test.dir/hiti_test.cc.o"
  "CMakeFiles/hiti_test.dir/hiti_test.cc.o.d"
  "hiti_test"
  "hiti_test.pdb"
  "hiti_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hiti_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
