# Empty compiler generated dependencies file for hiti_test.
# This may be replaced when dependencies are built.
