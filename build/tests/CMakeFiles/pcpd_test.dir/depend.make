# Empty dependencies file for pcpd_test.
# This may be replaced when dependencies are built.
