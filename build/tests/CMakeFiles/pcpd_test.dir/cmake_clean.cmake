file(REMOVE_RECURSE
  "CMakeFiles/pcpd_test.dir/pcpd_test.cc.o"
  "CMakeFiles/pcpd_test.dir/pcpd_test.cc.o.d"
  "pcpd_test"
  "pcpd_test.pdb"
  "pcpd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcpd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
