# Empty dependencies file for silc_test.
# This may be replaced when dependencies are built.
