file(REMOVE_RECURSE
  "CMakeFiles/silc_test.dir/silc_test.cc.o"
  "CMakeFiles/silc_test.dir/silc_test.cc.o.d"
  "silc_test"
  "silc_test.pdb"
  "silc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
