# Empty compiler generated dependencies file for approx_oracle_test.
# This may be replaced when dependencies are built.
