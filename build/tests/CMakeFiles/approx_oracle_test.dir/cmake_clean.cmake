file(REMOVE_RECURSE
  "CMakeFiles/approx_oracle_test.dir/approx_oracle_test.cc.o"
  "CMakeFiles/approx_oracle_test.dir/approx_oracle_test.cc.o.d"
  "approx_oracle_test"
  "approx_oracle_test.pdb"
  "approx_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approx_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
