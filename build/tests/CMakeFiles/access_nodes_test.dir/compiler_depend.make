# Empty compiler generated dependencies file for access_nodes_test.
# This may be replaced when dependencies are built.
