file(REMOVE_RECURSE
  "CMakeFiles/access_nodes_test.dir/access_nodes_test.cc.o"
  "CMakeFiles/access_nodes_test.dir/access_nodes_test.cc.o.d"
  "access_nodes_test"
  "access_nodes_test.pdb"
  "access_nodes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_nodes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
