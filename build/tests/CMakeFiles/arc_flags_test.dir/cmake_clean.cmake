file(REMOVE_RECURSE
  "CMakeFiles/arc_flags_test.dir/arc_flags_test.cc.o"
  "CMakeFiles/arc_flags_test.dir/arc_flags_test.cc.o.d"
  "arc_flags_test"
  "arc_flags_test.pdb"
  "arc_flags_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arc_flags_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
