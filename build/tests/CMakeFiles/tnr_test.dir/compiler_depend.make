# Empty compiler generated dependencies file for tnr_test.
# This may be replaced when dependencies are built.
