file(REMOVE_RECURSE
  "CMakeFiles/tnr_test.dir/tnr_test.cc.o"
  "CMakeFiles/tnr_test.dir/tnr_test.cc.o.d"
  "tnr_test"
  "tnr_test.pdb"
  "tnr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
