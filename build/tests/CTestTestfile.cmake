# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ch_test[1]_include.cmake")
include("/root/repo/build/tests/tnr_test[1]_include.cmake")
include("/root/repo/build/tests/silc_test[1]_include.cmake")
include("/root/repo/build/tests/pcpd_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/dijkstra_test[1]_include.cmake")
include("/root/repo/build/tests/heap_test[1]_include.cmake")
include("/root/repo/build/tests/spatial_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/alt_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/access_nodes_test[1]_include.cmake")
include("/root/repo/build/tests/knn_test[1]_include.cmake")
include("/root/repo/build/tests/arc_flags_test[1]_include.cmake")
include("/root/repo/build/tests/reach_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/approx_oracle_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/internals_test[1]_include.cmake")
include("/root/repo/build/tests/hiti_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
