# Empty dependencies file for roadnet_graph.
# This may be replaced when dependencies are built.
