file(REMOVE_RECURSE
  "libroadnet_graph.a"
)
