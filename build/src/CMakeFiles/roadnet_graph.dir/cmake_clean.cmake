file(REMOVE_RECURSE
  "CMakeFiles/roadnet_graph.dir/graph/connectivity.cc.o"
  "CMakeFiles/roadnet_graph.dir/graph/connectivity.cc.o.d"
  "CMakeFiles/roadnet_graph.dir/graph/dimacs.cc.o"
  "CMakeFiles/roadnet_graph.dir/graph/dimacs.cc.o.d"
  "CMakeFiles/roadnet_graph.dir/graph/generator.cc.o"
  "CMakeFiles/roadnet_graph.dir/graph/generator.cc.o.d"
  "CMakeFiles/roadnet_graph.dir/graph/graph.cc.o"
  "CMakeFiles/roadnet_graph.dir/graph/graph.cc.o.d"
  "CMakeFiles/roadnet_graph.dir/io/serialize.cc.o"
  "CMakeFiles/roadnet_graph.dir/io/serialize.cc.o.d"
  "CMakeFiles/roadnet_graph.dir/spatial/unique_morton.cc.o"
  "CMakeFiles/roadnet_graph.dir/spatial/unique_morton.cc.o.d"
  "libroadnet_graph.a"
  "libroadnet_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roadnet_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
