
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/connectivity.cc" "src/CMakeFiles/roadnet_graph.dir/graph/connectivity.cc.o" "gcc" "src/CMakeFiles/roadnet_graph.dir/graph/connectivity.cc.o.d"
  "/root/repo/src/graph/dimacs.cc" "src/CMakeFiles/roadnet_graph.dir/graph/dimacs.cc.o" "gcc" "src/CMakeFiles/roadnet_graph.dir/graph/dimacs.cc.o.d"
  "/root/repo/src/graph/generator.cc" "src/CMakeFiles/roadnet_graph.dir/graph/generator.cc.o" "gcc" "src/CMakeFiles/roadnet_graph.dir/graph/generator.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/roadnet_graph.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/roadnet_graph.dir/graph/graph.cc.o.d"
  "/root/repo/src/io/serialize.cc" "src/CMakeFiles/roadnet_graph.dir/io/serialize.cc.o" "gcc" "src/CMakeFiles/roadnet_graph.dir/io/serialize.cc.o.d"
  "/root/repo/src/spatial/unique_morton.cc" "src/CMakeFiles/roadnet_graph.dir/spatial/unique_morton.cc.o" "gcc" "src/CMakeFiles/roadnet_graph.dir/spatial/unique_morton.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
