file(REMOVE_RECURSE
  "libroadnet_tnr.a"
)
