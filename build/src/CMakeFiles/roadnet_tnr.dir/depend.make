# Empty dependencies file for roadnet_tnr.
# This may be replaced when dependencies are built.
