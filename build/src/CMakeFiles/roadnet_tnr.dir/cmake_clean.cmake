file(REMOVE_RECURSE
  "CMakeFiles/roadnet_tnr.dir/tnr/access_nodes.cc.o"
  "CMakeFiles/roadnet_tnr.dir/tnr/access_nodes.cc.o.d"
  "CMakeFiles/roadnet_tnr.dir/tnr/cell_grid.cc.o"
  "CMakeFiles/roadnet_tnr.dir/tnr/cell_grid.cc.o.d"
  "CMakeFiles/roadnet_tnr.dir/tnr/tnr_index.cc.o"
  "CMakeFiles/roadnet_tnr.dir/tnr/tnr_index.cc.o.d"
  "libroadnet_tnr.a"
  "libroadnet_tnr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roadnet_tnr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
