# Empty compiler generated dependencies file for roadnet_dijkstra.
# This may be replaced when dependencies are built.
