file(REMOVE_RECURSE
  "CMakeFiles/roadnet_dijkstra.dir/dijkstra/bidirectional.cc.o"
  "CMakeFiles/roadnet_dijkstra.dir/dijkstra/bidirectional.cc.o.d"
  "CMakeFiles/roadnet_dijkstra.dir/dijkstra/dijkstra.cc.o"
  "CMakeFiles/roadnet_dijkstra.dir/dijkstra/dijkstra.cc.o.d"
  "CMakeFiles/roadnet_dijkstra.dir/routing/knn.cc.o"
  "CMakeFiles/roadnet_dijkstra.dir/routing/knn.cc.o.d"
  "libroadnet_dijkstra.a"
  "libroadnet_dijkstra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roadnet_dijkstra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
