file(REMOVE_RECURSE
  "libroadnet_dijkstra.a"
)
