file(REMOVE_RECURSE
  "libroadnet_silc.a"
)
