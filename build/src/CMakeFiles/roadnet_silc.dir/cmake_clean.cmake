file(REMOVE_RECURSE
  "CMakeFiles/roadnet_silc.dir/silc/color_quadtree.cc.o"
  "CMakeFiles/roadnet_silc.dir/silc/color_quadtree.cc.o.d"
  "CMakeFiles/roadnet_silc.dir/silc/silc_index.cc.o"
  "CMakeFiles/roadnet_silc.dir/silc/silc_index.cc.o.d"
  "libroadnet_silc.a"
  "libroadnet_silc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roadnet_silc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
