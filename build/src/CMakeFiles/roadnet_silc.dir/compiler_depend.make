# Empty compiler generated dependencies file for roadnet_silc.
# This may be replaced when dependencies are built.
