
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/silc/color_quadtree.cc" "src/CMakeFiles/roadnet_silc.dir/silc/color_quadtree.cc.o" "gcc" "src/CMakeFiles/roadnet_silc.dir/silc/color_quadtree.cc.o.d"
  "/root/repo/src/silc/silc_index.cc" "src/CMakeFiles/roadnet_silc.dir/silc/silc_index.cc.o" "gcc" "src/CMakeFiles/roadnet_silc.dir/silc/silc_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/roadnet_dijkstra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/roadnet_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/roadnet_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
