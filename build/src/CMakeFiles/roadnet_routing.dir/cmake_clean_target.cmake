file(REMOVE_RECURSE
  "libroadnet_routing.a"
)
