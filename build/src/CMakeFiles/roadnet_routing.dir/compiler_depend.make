# Empty compiler generated dependencies file for roadnet_routing.
# This may be replaced when dependencies are built.
