file(REMOVE_RECURSE
  "CMakeFiles/roadnet_routing.dir/routing/path.cc.o"
  "CMakeFiles/roadnet_routing.dir/routing/path.cc.o.d"
  "libroadnet_routing.a"
  "libroadnet_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roadnet_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
