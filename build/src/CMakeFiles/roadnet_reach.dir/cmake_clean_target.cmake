file(REMOVE_RECURSE
  "libroadnet_reach.a"
)
