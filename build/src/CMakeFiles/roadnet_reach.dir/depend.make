# Empty dependencies file for roadnet_reach.
# This may be replaced when dependencies are built.
