file(REMOVE_RECURSE
  "CMakeFiles/roadnet_reach.dir/reach/reach_index.cc.o"
  "CMakeFiles/roadnet_reach.dir/reach/reach_index.cc.o.d"
  "libroadnet_reach.a"
  "libroadnet_reach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roadnet_reach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
