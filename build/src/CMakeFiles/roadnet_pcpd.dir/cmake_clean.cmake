file(REMOVE_RECURSE
  "CMakeFiles/roadnet_pcpd.dir/pcpd/approx_oracle.cc.o"
  "CMakeFiles/roadnet_pcpd.dir/pcpd/approx_oracle.cc.o.d"
  "CMakeFiles/roadnet_pcpd.dir/pcpd/pcpd_index.cc.o"
  "CMakeFiles/roadnet_pcpd.dir/pcpd/pcpd_index.cc.o.d"
  "CMakeFiles/roadnet_pcpd.dir/pcpd/redundancy.cc.o"
  "CMakeFiles/roadnet_pcpd.dir/pcpd/redundancy.cc.o.d"
  "libroadnet_pcpd.a"
  "libroadnet_pcpd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roadnet_pcpd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
