file(REMOVE_RECURSE
  "libroadnet_pcpd.a"
)
