# Empty dependencies file for roadnet_pcpd.
# This may be replaced when dependencies are built.
