file(REMOVE_RECURSE
  "libroadnet_core.a"
)
