# Empty compiler generated dependencies file for roadnet_core.
# This may be replaced when dependencies are built.
