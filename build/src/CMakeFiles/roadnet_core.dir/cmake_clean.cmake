file(REMOVE_RECURSE
  "CMakeFiles/roadnet_core.dir/core/experiment.cc.o"
  "CMakeFiles/roadnet_core.dir/core/experiment.cc.o.d"
  "CMakeFiles/roadnet_core.dir/core/guidelines.cc.o"
  "CMakeFiles/roadnet_core.dir/core/guidelines.cc.o.d"
  "CMakeFiles/roadnet_core.dir/core/report.cc.o"
  "CMakeFiles/roadnet_core.dir/core/report.cc.o.d"
  "libroadnet_core.a"
  "libroadnet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roadnet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
