file(REMOVE_RECURSE
  "libroadnet_ch.a"
)
