
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ch/ch_index.cc" "src/CMakeFiles/roadnet_ch.dir/ch/ch_index.cc.o" "gcc" "src/CMakeFiles/roadnet_ch.dir/ch/ch_index.cc.o.d"
  "/root/repo/src/ch/contraction.cc" "src/CMakeFiles/roadnet_ch.dir/ch/contraction.cc.o" "gcc" "src/CMakeFiles/roadnet_ch.dir/ch/contraction.cc.o.d"
  "/root/repo/src/ch/many_to_many.cc" "src/CMakeFiles/roadnet_ch.dir/ch/many_to_many.cc.o" "gcc" "src/CMakeFiles/roadnet_ch.dir/ch/many_to_many.cc.o.d"
  "/root/repo/src/ch/node_order.cc" "src/CMakeFiles/roadnet_ch.dir/ch/node_order.cc.o" "gcc" "src/CMakeFiles/roadnet_ch.dir/ch/node_order.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/roadnet_dijkstra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/roadnet_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/roadnet_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
