file(REMOVE_RECURSE
  "CMakeFiles/roadnet_ch.dir/ch/ch_index.cc.o"
  "CMakeFiles/roadnet_ch.dir/ch/ch_index.cc.o.d"
  "CMakeFiles/roadnet_ch.dir/ch/contraction.cc.o"
  "CMakeFiles/roadnet_ch.dir/ch/contraction.cc.o.d"
  "CMakeFiles/roadnet_ch.dir/ch/many_to_many.cc.o"
  "CMakeFiles/roadnet_ch.dir/ch/many_to_many.cc.o.d"
  "CMakeFiles/roadnet_ch.dir/ch/node_order.cc.o"
  "CMakeFiles/roadnet_ch.dir/ch/node_order.cc.o.d"
  "libroadnet_ch.a"
  "libroadnet_ch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roadnet_ch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
