# Empty compiler generated dependencies file for roadnet_ch.
# This may be replaced when dependencies are built.
