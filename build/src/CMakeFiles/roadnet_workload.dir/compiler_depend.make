# Empty compiler generated dependencies file for roadnet_workload.
# This may be replaced when dependencies are built.
