file(REMOVE_RECURSE
  "libroadnet_workload.a"
)
