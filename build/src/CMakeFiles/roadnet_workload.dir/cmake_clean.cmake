file(REMOVE_RECURSE
  "CMakeFiles/roadnet_workload.dir/workload/datasets.cc.o"
  "CMakeFiles/roadnet_workload.dir/workload/datasets.cc.o.d"
  "CMakeFiles/roadnet_workload.dir/workload/query_gen.cc.o"
  "CMakeFiles/roadnet_workload.dir/workload/query_gen.cc.o.d"
  "libroadnet_workload.a"
  "libroadnet_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roadnet_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
