
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/datasets.cc" "src/CMakeFiles/roadnet_workload.dir/workload/datasets.cc.o" "gcc" "src/CMakeFiles/roadnet_workload.dir/workload/datasets.cc.o.d"
  "/root/repo/src/workload/query_gen.cc" "src/CMakeFiles/roadnet_workload.dir/workload/query_gen.cc.o" "gcc" "src/CMakeFiles/roadnet_workload.dir/workload/query_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/roadnet_dijkstra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/roadnet_tnr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/roadnet_ch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/roadnet_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/roadnet_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
