file(REMOVE_RECURSE
  "CMakeFiles/roadnet_alt.dir/alt/alt_index.cc.o"
  "CMakeFiles/roadnet_alt.dir/alt/alt_index.cc.o.d"
  "libroadnet_alt.a"
  "libroadnet_alt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roadnet_alt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
