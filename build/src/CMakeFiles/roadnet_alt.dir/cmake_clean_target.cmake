file(REMOVE_RECURSE
  "libroadnet_alt.a"
)
