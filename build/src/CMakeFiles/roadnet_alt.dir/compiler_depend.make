# Empty compiler generated dependencies file for roadnet_alt.
# This may be replaced when dependencies are built.
