file(REMOVE_RECURSE
  "libroadnet_arcflags.a"
)
