# Empty dependencies file for roadnet_arcflags.
# This may be replaced when dependencies are built.
