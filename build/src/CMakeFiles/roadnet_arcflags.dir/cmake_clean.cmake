file(REMOVE_RECURSE
  "CMakeFiles/roadnet_arcflags.dir/arcflags/arc_flags.cc.o"
  "CMakeFiles/roadnet_arcflags.dir/arcflags/arc_flags.cc.o.d"
  "libroadnet_arcflags.a"
  "libroadnet_arcflags.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roadnet_arcflags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
