# Empty compiler generated dependencies file for roadnet_hiti.
# This may be replaced when dependencies are built.
