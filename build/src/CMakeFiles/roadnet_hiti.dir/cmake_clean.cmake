file(REMOVE_RECURSE
  "CMakeFiles/roadnet_hiti.dir/hiti/partition_overlay.cc.o"
  "CMakeFiles/roadnet_hiti.dir/hiti/partition_overlay.cc.o.d"
  "libroadnet_hiti.a"
  "libroadnet_hiti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roadnet_hiti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
