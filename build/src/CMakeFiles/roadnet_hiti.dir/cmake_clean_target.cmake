file(REMOVE_RECURSE
  "libroadnet_hiti.a"
)
