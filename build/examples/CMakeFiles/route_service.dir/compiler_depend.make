# Empty compiler generated dependencies file for route_service.
# This may be replaced when dependencies are built.
