file(REMOVE_RECURSE
  "CMakeFiles/route_service.dir/route_service.cpp.o"
  "CMakeFiles/route_service.dir/route_service.cpp.o.d"
  "route_service"
  "route_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
