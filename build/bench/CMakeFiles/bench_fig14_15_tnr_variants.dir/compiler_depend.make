# Empty compiler generated dependencies file for bench_fig14_15_tnr_variants.
# This may be replaced when dependencies are built.
