file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_15_tnr_variants.dir/bench_fig14_15_tnr_variants.cc.o"
  "CMakeFiles/bench_fig14_15_tnr_variants.dir/bench_fig14_15_tnr_variants.cc.o.d"
  "bench_fig14_15_tnr_variants"
  "bench_fig14_15_tnr_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_15_tnr_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
