# Empty compiler generated dependencies file for bench_appb_tnr_defect.
# This may be replaced when dependencies are built.
