file(REMOVE_RECURSE
  "CMakeFiles/bench_appb_tnr_defect.dir/bench_appb_tnr_defect.cc.o"
  "CMakeFiles/bench_appb_tnr_defect.dir/bench_appb_tnr_defect.cc.o.d"
  "bench_appb_tnr_defect"
  "bench_appb_tnr_defect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appb_tnr_defect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
