# Empty dependencies file for bench_fig8_10_vs_n.
# This may be replaced when dependencies are built.
