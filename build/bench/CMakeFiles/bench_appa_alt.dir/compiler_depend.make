# Empty compiler generated dependencies file for bench_appa_alt.
# This may be replaced when dependencies are built.
