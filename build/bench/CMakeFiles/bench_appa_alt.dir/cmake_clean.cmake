file(REMOVE_RECURSE
  "CMakeFiles/bench_appa_alt.dir/bench_appa_alt.cc.o"
  "CMakeFiles/bench_appa_alt.dir/bench_appa_alt.cc.o.d"
  "bench_appa_alt"
  "bench_appa_alt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appa_alt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
