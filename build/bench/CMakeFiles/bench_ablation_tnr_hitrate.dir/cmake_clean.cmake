file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tnr_hitrate.dir/bench_ablation_tnr_hitrate.cc.o"
  "CMakeFiles/bench_ablation_tnr_hitrate.dir/bench_ablation_tnr_hitrate.cc.o.d"
  "bench_ablation_tnr_hitrate"
  "bench_ablation_tnr_hitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tnr_hitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
