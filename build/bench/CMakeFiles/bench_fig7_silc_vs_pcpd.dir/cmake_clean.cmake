file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_silc_vs_pcpd.dir/bench_fig7_silc_vs_pcpd.cc.o"
  "CMakeFiles/bench_fig7_silc_vs_pcpd.dir/bench_fig7_silc_vs_pcpd.cc.o.d"
  "bench_fig7_silc_vs_pcpd"
  "bench_fig7_silc_vs_pcpd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_silc_vs_pcpd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
