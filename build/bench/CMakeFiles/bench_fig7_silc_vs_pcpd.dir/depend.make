# Empty dependencies file for bench_fig7_silc_vs_pcpd.
# This may be replaced when dependencies are built.
