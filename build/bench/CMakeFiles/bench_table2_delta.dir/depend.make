# Empty dependencies file for bench_table2_delta.
# This may be replaced when dependencies are built.
