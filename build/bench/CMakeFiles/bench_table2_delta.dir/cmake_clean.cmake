file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_delta.dir/bench_table2_delta.cc.o"
  "CMakeFiles/bench_table2_delta.dir/bench_table2_delta.cc.o.d"
  "bench_table2_delta"
  "bench_table2_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
