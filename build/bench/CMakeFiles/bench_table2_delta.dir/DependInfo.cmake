
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_delta.cc" "bench/CMakeFiles/bench_table2_delta.dir/bench_table2_delta.cc.o" "gcc" "bench/CMakeFiles/bench_table2_delta.dir/bench_table2_delta.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/roadnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/roadnet_alt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/roadnet_arcflags.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/roadnet_hiti.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/roadnet_reach.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/roadnet_silc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/roadnet_pcpd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/roadnet_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/roadnet_tnr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/roadnet_ch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/roadnet_dijkstra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/roadnet_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/roadnet_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
