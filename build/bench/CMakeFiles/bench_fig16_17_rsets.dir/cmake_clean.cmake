file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_17_rsets.dir/bench_fig16_17_rsets.cc.o"
  "CMakeFiles/bench_fig16_17_rsets.dir/bench_fig16_17_rsets.cc.o.d"
  "bench_fig16_17_rsets"
  "bench_fig16_17_rsets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_17_rsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
