file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_tnr_grids.dir/bench_fig13_tnr_grids.cc.o"
  "CMakeFiles/bench_fig13_tnr_grids.dir/bench_fig13_tnr_grids.cc.o.d"
  "bench_fig13_tnr_grids"
  "bench_fig13_tnr_grids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_tnr_grids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
