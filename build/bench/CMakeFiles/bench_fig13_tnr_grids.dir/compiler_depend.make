# Empty compiler generated dependencies file for bench_fig13_tnr_grids.
# This may be replaced when dependencies are built.
