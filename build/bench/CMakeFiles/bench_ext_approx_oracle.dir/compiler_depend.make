# Empty compiler generated dependencies file for bench_ext_approx_oracle.
# This may be replaced when dependencies are built.
