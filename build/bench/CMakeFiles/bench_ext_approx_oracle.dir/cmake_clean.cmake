file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_approx_oracle.dir/bench_ext_approx_oracle.cc.o"
  "CMakeFiles/bench_ext_approx_oracle.dir/bench_ext_approx_oracle.cc.o.d"
  "bench_ext_approx_oracle"
  "bench_ext_approx_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_approx_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
