# Empty compiler generated dependencies file for bench_ablation_ch.
# This may be replaced when dependencies are built.
