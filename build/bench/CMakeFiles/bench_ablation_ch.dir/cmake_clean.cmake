file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ch.dir/bench_ablation_ch.cc.o"
  "CMakeFiles/bench_ablation_ch.dir/bench_ablation_ch.cc.o.d"
  "bench_ablation_ch"
  "bench_ablation_ch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
