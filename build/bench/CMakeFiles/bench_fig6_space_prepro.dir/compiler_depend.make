# Empty compiler generated dependencies file for bench_fig6_space_prepro.
# This may be replaced when dependencies are built.
