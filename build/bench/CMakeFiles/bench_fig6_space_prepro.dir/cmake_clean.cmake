file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_space_prepro.dir/bench_fig6_space_prepro.cc.o"
  "CMakeFiles/bench_fig6_space_prepro.dir/bench_fig6_space_prepro.cc.o.d"
  "bench_fig6_space_prepro"
  "bench_fig6_space_prepro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_space_prepro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
