# Empty dependencies file for bench_fig9_11_vs_set.
# This may be replaced when dependencies are built.
