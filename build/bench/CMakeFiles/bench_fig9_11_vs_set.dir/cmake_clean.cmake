file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_11_vs_set.dir/bench_fig9_11_vs_set.cc.o"
  "CMakeFiles/bench_fig9_11_vs_set.dir/bench_fig9_11_vs_set.cc.o.d"
  "bench_fig9_11_vs_set"
  "bench_fig9_11_vs_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_11_vs_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
