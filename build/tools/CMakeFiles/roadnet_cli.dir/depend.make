# Empty dependencies file for roadnet_cli.
# This may be replaced when dependencies are built.
