file(REMOVE_RECURSE
  "CMakeFiles/roadnet_cli.dir/roadnet_cli.cc.o"
  "CMakeFiles/roadnet_cli.dir/roadnet_cli.cc.o.d"
  "roadnet_cli"
  "roadnet_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roadnet_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
