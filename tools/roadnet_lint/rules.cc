#include <algorithm>
#include <cctype>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "roadnet_lint/lint.h"

// The rule catalog. Every rule is grounded in a bug or near-miss this
// codebase actually hit; DESIGN.md "Static analysis & sanitizer matrix"
// tells each story. Rules scan the comment/string-stripped view
// (SourceFile::code) so matches are always live code.

namespace roadnet::lint {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Whole-word occurrence check at `pos`.
bool IsWordAt(const std::string& line, size_t pos, size_t len) {
  if (pos > 0 && IsIdentChar(line[pos - 1])) return false;
  if (pos + len < line.size() && IsIdentChar(line[pos + len])) return false;
  return true;
}

// Calls fn(line_index, column) for every whole-word occurrence.
template <typename Fn>
void ForEachWord(const std::vector<std::string>& code, const std::string& word,
                 Fn fn) {
  for (size_t li = 0; li < code.size(); ++li) {
    const std::string& line = code[li];
    size_t pos = 0;
    while ((pos = line.find(word, pos)) != std::string::npos) {
      if (IsWordAt(line, pos, word.size())) fn(li, pos);
      pos += word.size();
    }
  }
}

bool PathStartsWith(const SourceFile& f, const char* prefix) {
  return f.path.rfind(prefix, 0) == 0;
}

Finding MakeFinding(int line, std::string message) {
  Finding f;
  f.line = line;
  f.message = std::move(message);
  return f;
}

// Joined view of the stripped code with offset -> line mapping, for the
// rules whose constructs span lines (class bodies, parameter lists).
struct Text {
  std::string s;
  std::vector<size_t> line_start;

  explicit Text(const std::vector<std::string>& code) {
    for (const std::string& line : code) {
      line_start.push_back(s.size());
      s += line;
      s += '\n';
    }
  }

  int LineOf(size_t off) const {
    auto it = std::upper_bound(line_start.begin(), line_start.end(), off);
    return static_cast<int>(it - line_start.begin());
  }
};

size_t SkipSpaces(const std::string& s, size_t pos) {
  while (pos < s.size() &&
         std::isspace(static_cast<unsigned char>(s[pos]))) {
    ++pos;
  }
  return pos;
}

// Offset just past the brace/paren that matches s[open] (which must be
// an opener); npos if unbalanced.
size_t SkipBalanced(const std::string& s, size_t open, char o, char c) {
  int depth = 0;
  for (size_t i = open; i < s.size(); ++i) {
    if (s[i] == o) ++depth;
    if (s[i] == c && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

bool ContainsWord(const std::string& s, const std::string& word) {
  size_t pos = 0;
  while ((pos = s.find(word, pos)) != std::string::npos) {
    if (IsWordAt(s, pos, word.size())) return true;
    pos += word.size();
  }
  return false;
}

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// ---------------------------------------------------------------------------
// R1: no FindEdge / edge searches in query-path code.
//
// Grounding: the pre-PR-4 CH unpacker resolved every shortcut with a
// binary-searched FindEdge per hop; the rank-space layout deleted it by
// precomputing child arc indices. Any FindEdge that reappears under
// src/ch, src/dijkstra, or src/engine is the hot path regressing.
class NoFindEdgeRule : public Rule {
 public:
  std::string Id() const override { return "R1"; }
  std::string Name() const override { return "no-find-edge"; }
  std::string Description() const override {
    return "query-path code (src/ch, src/dijkstra, src/engine) must not "
           "call or declare FindEdge-style per-hop edge searches";
  }
  bool AppliesTo(const SourceFile& f) const override {
    return PathStartsWith(f, "src/ch/") || PathStartsWith(f, "src/dijkstra/") ||
           PathStartsWith(f, "src/engine/");
  }
  void Scan(const SourceFile& f, std::vector<Finding>* out) const override {
    ForEachWord(f.code, "FindEdge", [&](size_t li, size_t) {
      out->push_back(MakeFinding(
          static_cast<int>(li) + 1,
          "FindEdge on the query path: shortcuts must resolve through "
          "precomputed arc indices (see ChIndex::ArcSource), not per-hop "
          "edge searches"));
    });
  }
};

// ---------------------------------------------------------------------------
// R2: *Index classes expose no public non-const methods.
//
// Grounding: the thread-safety contract (one immutable index, N
// QueryContexts) only holds if nothing can mutate the index after its
// constructor returns. PR 4 deleted ChIndex::set_stall_on_demand for
// exactly this reason. Constructors, destructors, operator=, statics,
// and `= default/delete` are exempt; legacy single-threaded wrappers
// carry reasoned waivers.
class IndexImmutableRule : public Rule {
 public:
  std::string Id() const override { return "R2"; }
  std::string Name() const override { return "index-immutable"; }
  std::string Description() const override {
    return "classes named *Index expose no public non-const methods; "
           "indexes are immutable after construction";
  }
  bool AppliesTo(const SourceFile& f) const override {
    return PathStartsWith(f, "src/");
  }
  void Scan(const SourceFile& f, std::vector<Finding>* out) const override {
    Text text(f.code);
    const std::string& s = text.s;
    for (size_t pos = 0; pos < s.size();) {
      size_t cls = std::string::npos;
      bool is_struct = false;
      size_t c1 = s.find("class", pos);
      size_t c2 = s.find("struct", pos);
      if (c1 == std::string::npos && c2 == std::string::npos) break;
      if (c2 < c1) {
        cls = c2;
        is_struct = true;
      } else {
        cls = c1;
      }
      size_t after = cls + (is_struct ? 6 : 5);
      if (!IsWordAt(s, cls, after - cls)) {
        pos = after;
        continue;
      }
      size_t name_begin = SkipSpaces(s, after);
      size_t name_end = name_begin;
      while (name_end < s.size() && IsIdentChar(s[name_end])) ++name_end;
      const std::string name = s.substr(name_begin, name_end - name_begin);
      pos = name_end;
      if (name.size() < 6 || name.compare(name.size() - 5, 5, "Index") != 0) {
        continue;
      }
      // Definition or forward declaration? Find '{' before ';'.
      size_t brace = s.find('{', name_end);
      size_t semi = s.find(';', name_end);
      if (brace == std::string::npos ||
          (semi != std::string::npos && semi < brace)) {
        continue;
      }
      ScanClassBody(text, name, is_struct, brace, out);
      pos = brace + 1;
    }
  }

 private:
  void ScanClassBody(const Text& text, const std::string& class_name,
                     bool is_struct, size_t open_brace,
                     std::vector<Finding>* out) const {
    const std::string& s = text.s;
    bool is_public = is_struct;
    std::string stmt;
    size_t stmt_begin = std::string::npos;
    int paren_depth = 0;
    size_t i = open_brace + 1;
    auto flush = [&](bool before_block) {
      if (is_public) {
        CheckStatement(text, class_name, Trim(stmt), stmt_begin, before_block,
                       out);
      }
      stmt.clear();
      stmt_begin = std::string::npos;
    };
    while (i < s.size()) {
      char c = s[i];
      if (c == '(') ++paren_depth;
      if (c == ')') --paren_depth;
      if (paren_depth > 0) {
        // Inside a parameter list or init-list call; braces here
        // (ChConfig{} arguments, brace-init default args) are part of
        // the statement, not blocks.
        if (stmt_begin == std::string::npos &&
            !std::isspace(static_cast<unsigned char>(c))) {
          stmt_begin = i;
        }
        stmt += c;
        ++i;
        continue;
      }
      if (c == '}') {
        return;  // end of class body (nested blocks are skipped below)
      }
      if (c == '{' && paren_depth == 0) {
        flush(/*before_block=*/true);
        size_t end = SkipBalanced(s, i, '{', '}');
        if (end == std::string::npos) return;
        i = end;
        continue;
      }
      if (c == ';' && paren_depth == 0) {
        flush(/*before_block=*/false);
        ++i;
        continue;
      }
      if (c == ':' && paren_depth == 0) {
        if (i + 1 < s.size() && s[i + 1] == ':') {
          stmt += "::";
          i += 2;
          continue;
        }
        const std::string t = Trim(stmt);
        if (t == "public" || t == "protected" || t == "private") {
          is_public = t == "public";
          stmt.clear();
          stmt_begin = std::string::npos;
          ++i;
          continue;
        }
      }
      if (stmt_begin == std::string::npos &&
          !std::isspace(static_cast<unsigned char>(c))) {
        stmt_begin = i;
      }
      stmt += c;
      ++i;
    }
  }

  void CheckStatement(const Text& text, const std::string& class_name,
                      const std::string& stmt, size_t stmt_begin,
                      bool has_body, std::vector<Finding>* out) const {
    (void)has_body;
    if (stmt.empty() || stmt_begin == std::string::npos) return;
    for (const char* skip : {"using ", "friend ", "typedef ", "template",
                             "static_assert", "struct ", "class ", "enum "}) {
      if (stmt.rfind(skip, 0) == 0) return;
    }
    if (ContainsWord(stmt, "operator")) return;
    if (ContainsWord(stmt, "static")) return;
    size_t open = stmt.find('(');
    if (open == std::string::npos) return;  // data member
    // Method name: identifier immediately before '('.
    size_t name_end = open;
    while (name_end > 0 &&
           std::isspace(static_cast<unsigned char>(stmt[name_end - 1]))) {
      --name_end;
    }
    size_t name_begin = name_end;
    while (name_begin > 0 && IsIdentChar(stmt[name_begin - 1])) --name_begin;
    const std::string name = stmt.substr(name_begin, name_end - name_begin);
    if (name.empty()) return;
    if (name == class_name) return;  // constructor
    if (name_begin > 0 && stmt[name_begin - 1] == '~') return;  // destructor
    size_t close = SkipBalanced(stmt, open, '(', ')');
    if (close == std::string::npos) return;
    const std::string trailer = stmt.substr(close);
    if (ContainsWord(trailer, "const")) return;
    if (trailer.find("= delete") != std::string::npos ||
        trailer.find("= default") != std::string::npos ||
        trailer.find("=delete") != std::string::npos ||
        trailer.find("=default") != std::string::npos) {
      return;
    }
    out->push_back(MakeFinding(
        text.LineOf(stmt_begin),
        "public non-const method " + class_name + "::" + name +
            " on an *Index class; indexes are immutable after "
            "construction (move mutation into the constructor, a "
            "QueryContext, or a build-time config)"));
  }
};

// ---------------------------------------------------------------------------
// R3: query entry points take a QueryContext.
//
// Grounding: PR 1 split every index into immutable structure +
// per-thread QueryContext; a DistanceQuery/PathQuery declaration
// without a context parameter reintroduces hidden shared scratch and
// breaks the one-index-many-threads contract. The single-threaded
// convenience wrappers in routing/path_index.h carry reasoned waivers.
class ContextQueryApiRule : public Rule {
 public:
  std::string Id() const override { return "R3"; }
  std::string Name() const override { return "context-query-api"; }
  std::string Description() const override {
    return "DistanceQuery/PathQuery declarations in src/ must take a "
           "QueryContext (per-thread scratch; index stays immutable)";
  }
  bool AppliesTo(const SourceFile& f) const override {
    return PathStartsWith(f, "src/");
  }
  void Scan(const SourceFile& f, std::vector<Finding>* out) const override {
    Text text(f.code);
    for (const char* entry : {"DistanceQuery", "PathQuery"}) {
      ScanEntry(text, entry, out);
    }
  }

 private:
  void ScanEntry(const Text& text, const std::string& word,
                 std::vector<Finding>* out) const {
    const std::string& s = text.s;
    size_t pos = 0;
    while ((pos = s.find(word, pos)) != std::string::npos) {
      const size_t here = pos;
      pos += word.size();
      if (!IsWordAt(s, here, word.size())) continue;
      // Declaration heuristics: preceded by a type name or :: (an
      // out-of-line definition), not by . or -> (a call site) and not
      // in a using-declaration.
      size_t back = here;
      while (back > 0 &&
             std::isspace(static_cast<unsigned char>(s[back - 1]))) {
        --back;
      }
      if (back == 0) continue;
      const char prev = s[back - 1];
      if (prev == '.' || prev == '(' || prev == ',' || prev == '=' ||
          prev == '&') {
        continue;  // call site or function-pointer use
      }
      if (prev == '>' && back >= 2 && s[back - 2] == '-') continue;  // ->
      if (IsIdentChar(prev)) {
        // `return DistanceQuery(...)` is a call, not a declaration.
        size_t wb = back;
        while (wb > 0 && IsIdentChar(s[wb - 1])) --wb;
        if (s.compare(wb, back - wb, "return") == 0) continue;
      }
      if (prev == ':') {
        // Qualified name: skip `using PathIndex::DistanceQuery;`.
        size_t line_begin = s.rfind('\n', here);
        line_begin = line_begin == std::string::npos ? 0 : line_begin + 1;
        if (Trim(s.substr(line_begin, here - line_begin)).rfind("using", 0) ==
            0) {
          continue;
        }
      } else if (!IsIdentChar(prev)) {
        continue;  // not `Type Name(` — some expression context
      }
      size_t open = SkipSpaces(s, here + word.size());
      if (open >= s.size() || s[open] != '(') continue;
      size_t close = SkipBalanced(s, open, '(', ')');
      if (close == std::string::npos) continue;
      const std::string params = s.substr(open, close - open);
      if (params.find("QueryContext") != std::string::npos) continue;
      out->push_back(MakeFinding(
          text.LineOf(here),
          word + " declared without a QueryContext parameter; query "
                 "entry points thread per-thread scratch explicitly so "
                 "the index can be shared across threads"));
    }
  }
};

// ---------------------------------------------------------------------------
// R4: no notify on a pointer-reached condvar outside a lock scope.
//
// Grounding: PR 3's TSan-caught race — QueryServer::Complete notified
// the handler's stack-owned Pending condvar after unlocking; the waiter
// could observe `done`, return, and destroy the condvar before the
// notify touched it. When the condvar is reached through a pointer
// (`p->cv.notify_one()`), the notify must happen while a
// lock_guard/unique_lock/scoped_lock is still in scope.
class NotifyUnderLockRule : public Rule {
 public:
  std::string Id() const override { return "R4"; }
  std::string Name() const override { return "notify-under-lock"; }
  std::string Description() const override {
    return "notify_one/notify_all on a condvar reached through a pointer "
           "must run inside a live lock scope (waiter-owned condvars die "
           "at unlock)";
  }
  void Scan(const SourceFile& f, std::vector<Finding>* out) const override {
    Text text(f.code);
    const std::string& s = text.s;
    int depth = 0;
    std::vector<int> lock_depths;
    size_t i = 0;
    while (i < s.size()) {
      char c = s[i];
      if (c == '{') {
        ++depth;
        ++i;
        continue;
      }
      if (c == '}') {
        --depth;
        while (!lock_depths.empty() && lock_depths.back() > depth) {
          lock_depths.pop_back();
        }
        ++i;
        continue;
      }
      if (IsIdentChar(c) && (i == 0 || !IsIdentChar(s[i - 1]))) {
        size_t end = i;
        while (end < s.size() && IsIdentChar(s[end])) ++end;
        const std::string word = s.substr(i, end - i);
        if (word == "lock_guard" || word == "unique_lock" ||
            word == "scoped_lock") {
          lock_depths.push_back(depth);
        } else if (word == "notify_one" || word == "notify_all") {
          size_t paren = SkipSpaces(s, end);
          if (paren < s.size() && s[paren] == '(') {
            // Receiver: the expression chars right before the word.
            size_t r = i;
            while (r > 0 && (IsIdentChar(s[r - 1]) || s[r - 1] == '.' ||
                             s[r - 1] == '>' || s[r - 1] == '-' ||
                             s[r - 1] == ']' || s[r - 1] == '[' ||
                             s[r - 1] == ':')) {
              --r;
            }
            const std::string receiver = s.substr(r, i - r);
            if (receiver.find("->") != std::string::npos &&
                lock_depths.empty()) {
              out->push_back(MakeFinding(
                  text.LineOf(i),
                  "notify on pointer-reached condvar '" +
                      receiver.substr(0, receiver.size() - 1) +
                      "' outside any lock scope; if the waiter owns the "
                      "condvar (stack/struct), it can be destroyed "
                      "between unlock and notify — notify while the "
                      "lock is held"));
            }
          }
        }
        i = end;
        continue;
      }
      ++i;
    }
  }
};

// ---------------------------------------------------------------------------
// R5: deterministic generator/workload code stays deterministic.
//
// Grounding: every experiment is reproduced bit-for-bit from an
// explicit seed (util/rng.h SplitMix64); one rand() or wall-clock read
// in graph generation or query sampling silently breaks every paired
// comparison the benches rely on.
class DeterministicRandomRule : public Rule {
 public:
  std::string Id() const override { return "R5"; }
  std::string Name() const override { return "deterministic-random"; }
  std::string Description() const override {
    return "generator/workload code (src/graph, src/workload) must use "
           "seeded roadnet::Rng — no rand(), unseeded mt19937, "
           "random_device, or wall-clock reads";
  }
  bool AppliesTo(const SourceFile& f) const override {
    return PathStartsWith(f, "src/workload/") ||
           PathStartsWith(f, "src/graph/");
  }
  void Scan(const SourceFile& f, std::vector<Finding>* out) const override {
    for (const char* banned : {"rand", "srand", "random_device",
                               "gettimeofday", "system_clock"}) {
      ForEachWord(f.code, banned, [&](size_t li, size_t) {
        out->push_back(MakeFinding(
            static_cast<int>(li) + 1,
            std::string(banned) +
                " in deterministic generator/workload code; take an "
                "explicit seed and use roadnet::Rng so experiments "
                "reproduce bit-for-bit"));
      });
    }
    // time(nullptr) / time(NULL) / time(0): wall-clock seeding.
    ForEachWord(f.code, "time", [&](size_t li, size_t col) {
      const std::string& line = f.code[li];
      size_t p = SkipSpaces(line, col + 4);
      if (p >= line.size() || line[p] != '(') return;
      size_t a = SkipSpaces(line, p + 1);
      for (const char* arg : {"nullptr", "NULL", "0"}) {
        const size_t len = std::string(arg).size();
        if (line.compare(a, len, arg) == 0) {
          out->push_back(MakeFinding(
              static_cast<int>(li) + 1,
              "wall-clock seed time(" + std::string(arg) +
                  ") in deterministic code; take an explicit seed"));
          return;
        }
      }
    });
    // Unseeded std::mt19937: `mt19937 gen;` (no ctor argument).
    for (const char* engine : {"mt19937", "mt19937_64"}) {
      ForEachWord(f.code, engine, [&](size_t li, size_t col) {
        const std::string& line = f.code[li];
        size_t p = SkipSpaces(line, col + std::string(engine).size());
        // Variable declaration: identifier after the type name.
        size_t name_end = p;
        while (name_end < line.size() && IsIdentChar(line[name_end])) {
          ++name_end;
        }
        if (name_end == p) return;  // qualified use / temporary — skip
        size_t q = SkipSpaces(line, name_end);
        if (q < line.size() && (line[q] == '(' || line[q] == '{')) {
          return;  // seeded construction
        }
        out->push_back(MakeFinding(
            static_cast<int>(li) + 1,
            std::string(engine) +
                " default-constructed (fixed implementation-defined "
                "seed, and not the repo's Rng); seed explicitly or use "
                "roadnet::Rng"));
      });
    }
  }
};

// ---------------------------------------------------------------------------
// R6: counter increments go through the guarded API.
//
// Grounding: ROADNET_DISABLE_COUNTERS must compile every increment away
// (DESIGN.md's <=5% overhead contract is verified against that build).
// A raw `counters.vertices_settled += 1` bypasses the `if constexpr`
// guard in the Settle()/RelaxEdge()/... helpers and survives the
// no-counters build, silently re-adding hot-path work.
class CounterGuardRule : public Rule {
 public:
  std::string Id() const override { return "R6"; }
  std::string Name() const override { return "counter-guarded-increment"; }
  std::string Description() const override {
    return "QueryCounters fields are written only through the "
           "ROADNET_DISABLE_COUNTERS-guarded helpers (Settle(), "
           "RelaxEdge(), ...), never by direct field writes";
  }
  bool AppliesTo(const SourceFile& f) const override {
    if (f.path == "src/obs/query_counters.h") return false;  // the API itself
    return PathStartsWith(f, "src/") || PathStartsWith(f, "bench/");
  }
  void Scan(const SourceFile& f, std::vector<Finding>* out) const override {
    static const char* kFields[] = {
        "vertices_settled", "edges_relaxed",      "heap_pushes",
        "heap_pops",        "shortcuts_unpacked", "edge_searches",
        "table_lookups",    "tree_lookups"};
    for (const char* field : kFields) {
      ForEachWord(f.code, field, [&](size_t li, size_t col) {
        const std::string& line = f.code[li];
        if (col == 0) return;
        const char prev = line[col - 1];
        const bool member_access =
            prev == '.' || (prev == '>' && col >= 2 && line[col - 2] == '-');
        if (!member_access) return;
        size_t p = SkipSpaces(line, col + std::string(field).size());
        if (p >= line.size()) return;
        bool write = false;
        if (line.compare(p, 2, "+=") == 0 || line.compare(p, 2, "-=") == 0 ||
            line.compare(p, 2, "++") == 0 || line.compare(p, 2, "--") == 0) {
          write = true;
        } else if (line[p] == '=' &&
                   (p + 1 >= line.size() || line[p + 1] != '=')) {
          write = true;
        }
        if (!write) return;
        out->push_back(MakeFinding(
            static_cast<int>(li) + 1,
            std::string("direct write to QueryCounters::") + field +
                "; use the guarded increment API (counters.Settle(), "
                ".RelaxEdge(), ...) so ROADNET_DISABLE_COUNTERS "
                "compiles it away"));
      });
    }
  }
};

// ---------------------------------------------------------------------------
// R7: include hygiene.
//
// Grounding: <bits/...> headers are libstdc++ internals (non-portable,
// and they drag in the world, bloating every TU); `using namespace std`
// in a header leaks into every includer and has already caused one
// ambiguous-overload build break downstream of <algorithm>.
class IncludeHygieneRule : public Rule {
 public:
  std::string Id() const override { return "R7"; }
  std::string Name() const override { return "include-hygiene"; }
  std::string Description() const override {
    return "no <bits/...> includes anywhere; no `using namespace std` "
           "in headers";
  }
  void Scan(const SourceFile& f, std::vector<Finding>* out) const override {
    for (size_t li = 0; li < f.code.size(); ++li) {
      const std::string& line = f.code[li];
      const std::string trimmed = Trim(line);
      if (trimmed.rfind("#", 0) == 0 &&
          trimmed.find("<bits/") != std::string::npos) {
        out->push_back(MakeFinding(
            static_cast<int>(li) + 1,
            "#include <bits/...> is a libstdc++ internal header; "
            "include the standard headers you use"));
      }
      if (f.is_header && line.find("using namespace std") != std::string::npos) {
        out->push_back(MakeFinding(
            static_cast<int>(li) + 1,
            "`using namespace std` in a header leaks into every "
            "includer; qualify names instead"));
      }
    }
  }
};

// ---------------------------------------------------------------------------
// R8: steady_clock-only timing on serving/engine/observability paths.
//
// Grounding: the tracing subsystem (src/obs/trace.h) stamps every stage
// of a request with nanoseconds relative to one steady_clock epoch, and
// stage windows recorded on four different threads only line up because
// that clock is monotonic. One system_clock / gettimeofday read mixed
// in (NTP steps it backwards, suspend jumps it forwards) produces
// negative or overlapping stage durations that validate_metrics.py
// rejects — and silently corrupts every latency histogram.
class SteadyClockTimingRule : public Rule {
 public:
  std::string Id() const override { return "R8"; }
  std::string Name() const override { return "steady-clock-timing"; }
  std::string Description() const override {
    return "timing code in src/obs, src/server, src/engine reads "
           "steady_clock only — no system_clock, gettimeofday, or "
           "high_resolution_clock (non-monotonic or unspecified)";
  }
  bool AppliesTo(const SourceFile& f) const override {
    return PathStartsWith(f, "src/obs/") || PathStartsWith(f, "src/server/") ||
           PathStartsWith(f, "src/engine/");
  }
  void Scan(const SourceFile& f, std::vector<Finding>* out) const override {
    for (const char* banned :
         {"system_clock", "gettimeofday", "high_resolution_clock"}) {
      ForEachWord(f.code, banned, [&](size_t li, size_t) {
        out->push_back(MakeFinding(
            static_cast<int>(li) + 1,
            std::string(banned) +
                " in serving/observability timing code; trace spans and "
                "latency histograms require a monotonic clock — use "
                "std::chrono::steady_clock (see obs/trace.h)"));
      });
    }
  }
};

// ---------------------------------------------------------------------------
// R9: POI placement and kNN code stays deterministic too.
//
// Grounding: a POI set is regenerated bit-identically from
// PoiConfig::seed on other hosts (that is what makes the kNN
// differential harness and the loadgen's Dijkstra-oracle verification
// meaningful), and IER's strict termination tie-breaks assume a total
// reproducible candidate order. Same banned constructs as R5 — the
// Scan is inherited — applied to the POI/kNN subtree.
class PoiKnnSeededRandomRule : public DeterministicRandomRule {
 public:
  std::string Id() const override { return "R9"; }
  std::string Name() const override { return "poi-knn-seeded-random"; }
  std::string Description() const override {
    return "POI placement and kNN code (src/poi, src/knn) must use "
           "seeded roadnet::Rng — no rand(), unseeded mt19937, "
           "random_device, or wall-clock reads (R5's contract extended)";
  }
  bool AppliesTo(const SourceFile& f) const override {
    return PathStartsWith(f, "src/poi/") || PathStartsWith(f, "src/knn/");
  }
};

std::string Lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool ContainsAny(const std::string& haystack,
                 std::initializer_list<const char*> needles) {
  for (const char* n : needles) {
    if (haystack.find(n) != std::string::npos) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// R10: the concurrency layer carries compiler-checked lock annotations.
//
// Grounding: the Clang Thread Safety Analysis gate (check.sh tsa) only
// sees locks it knows about. A raw std::mutex member is invisible to
// it — the roadnet::Mutex/CondVar wrappers (util/mutex.h) carry the
// CAPABILITY attributes — and a ROADNET_GUARDED_BY naming a typo'd or
// foreign mutex silently guards nothing. This rule runs on every host
// (the tsa stage needs clang), so GCC-only machines still keep the
// annotation surface intact. Three checks per class in the concurrency
// directories: no raw standard-library lock types, every GUARDED_BY
// argument resolves to a Mutex member of the same class, and every
// Mutex member guards at least one field (a lock that protects nothing
// either wants an annotation or a waiver explaining what it orders).
class AnnotatedLockRule : public Rule {
 public:
  std::string Id() const override { return "R10"; }
  std::string Name() const override { return "annotated-lock-discipline"; }
  std::string Description() const override {
    return "concurrency-layer classes (src/server, src/engine, src/obs) "
           "use roadnet::Mutex/CondVar (never raw std::mutex), every "
           "ROADNET_GUARDED_BY names a Mutex member of the same class, "
           "and every Mutex member guards at least one field";
  }
  bool AppliesTo(const SourceFile& f) const override {
    return PathStartsWith(f, "src/server/") ||
           PathStartsWith(f, "src/engine/") || PathStartsWith(f, "src/obs/");
  }
  void Scan(const SourceFile& f, std::vector<Finding>* out) const override {
    Text text(f.code);
    const std::string& s = text.s;
    for (size_t pos = 0; pos < s.size();) {
      size_t cls = std::string::npos;
      bool is_struct = false;
      size_t c1 = s.find("class", pos);
      size_t c2 = s.find("struct", pos);
      if (c1 == std::string::npos && c2 == std::string::npos) break;
      if (c2 < c1) {
        cls = c2;
        is_struct = true;
      } else {
        cls = c1;
      }
      size_t after = cls + (is_struct ? 6 : 5);
      if (!IsWordAt(s, cls, after - cls)) {
        pos = after;
        continue;
      }
      size_t name_begin = SkipSpaces(s, after);
      size_t name_end = name_begin;
      while (name_end < s.size() && IsIdentChar(s[name_end])) ++name_end;
      const std::string name = s.substr(name_begin, name_end - name_begin);
      pos = name_end;
      if (name.empty()) continue;
      size_t brace = s.find('{', name_end);
      size_t semi = s.find(';', name_end);
      if (brace == std::string::npos ||
          (semi != std::string::npos && semi < brace)) {
        continue;  // forward declaration
      }
      ScanClassBody(text, name, brace, out);
      // Resume inside the body so nested structs get their own pass.
      pos = brace + 1;
    }
  }

 private:
  // One member-declaration statement of the class under scan.
  struct Member {
    std::string stmt;
    size_t begin = 0;  // offset into Text::s
  };

  void ScanClassBody(const Text& text, const std::string& class_name,
                     size_t open_brace, std::vector<Finding>* out) const {
    const std::string& s = text.s;
    std::vector<Member> members;
    std::string stmt;
    size_t stmt_begin = std::string::npos;
    int paren_depth = 0;
    size_t i = open_brace + 1;
    auto flush = [&]() {
      const std::string t = Trim(stmt);
      if (!t.empty() && stmt_begin != std::string::npos) {
        members.push_back({t, stmt_begin});
      }
      stmt.clear();
      stmt_begin = std::string::npos;
    };
    while (i < s.size()) {
      char c = s[i];
      if (c == '(') ++paren_depth;
      if (c == ')') --paren_depth;
      if (paren_depth > 0) {
        if (stmt_begin == std::string::npos &&
            !std::isspace(static_cast<unsigned char>(c))) {
          stmt_begin = i;
        }
        stmt += c;
        ++i;
        continue;
      }
      if (c == '}') break;  // end of class body
      if (c == '{') {
        // Method body or nested type: drop it. Nested structs are
        // scanned independently by the outer class/struct walk.
        flush();
        size_t end = SkipBalanced(s, i, '{', '}');
        if (end == std::string::npos) return;
        i = end;
        continue;
      }
      if (c == ';') {
        flush();
        ++i;
        continue;
      }
      if (c == ':' && (i + 1 >= s.size() || s[i + 1] != ':')) {
        const std::string t = Trim(stmt);
        if (t == "public" || t == "protected" || t == "private") {
          stmt.clear();
          stmt_begin = std::string::npos;
          ++i;
          continue;
        }
      }
      if (c == ':' && i + 1 < s.size() && s[i + 1] == ':') {
        stmt += "::";
        i += 2;
        continue;
      }
      if (stmt_begin == std::string::npos &&
          !std::isspace(static_cast<unsigned char>(c))) {
        stmt_begin = i;
      }
      stmt += c;
      ++i;
    }
    CheckMembers(text, class_name, members, out);
  }

  void CheckMembers(const Text& text, const std::string& class_name,
                    const std::vector<Member>& members,
                    std::vector<Finding>* out) const {
    // Pass 1: the class's Mutex members, and raw standard lock types.
    std::vector<std::pair<std::string, size_t>> mutexes;  // name, offset
    for (const Member& m : members) {
      for (const char* skip : {"using ", "friend ", "typedef ", "template",
                               "static_assert", "struct ", "class ", "enum "}) {
        if (m.stmt.rfind(skip, 0) == 0) goto next_member;
      }
      for (const char* raw :
           {"std::mutex", "std::shared_mutex", "std::recursive_mutex",
            "std::timed_mutex", "std::condition_variable"}) {
        if (m.stmt.find(raw) != std::string::npos) {
          out->push_back(MakeFinding(
              text.LineOf(m.begin),
              std::string(raw) + " in " + class_name +
                  "; the concurrency layer uses roadnet::Mutex/CondVar "
                  "(util/mutex.h) so Clang Thread Safety Analysis sees "
                  "the capability"));
        }
      }
      {
        std::string decl = m.stmt;
        if (decl.rfind("mutable ", 0) == 0) decl = Trim(decl.substr(8));
        if (decl.rfind("Mutex", 0) == 0 && IsWordAt(decl, 0, 5)) {
          size_t nb = SkipSpaces(decl, 5);
          size_t ne = nb;
          while (ne < decl.size() && IsIdentChar(decl[ne])) ++ne;
          // A plain member only: `Mutex& Lock()` etc. never reaches here
          // because '(' later in the stmt still yields a name; require
          // the declarator to end the statement (no parameter list).
          if (ne > nb && decl.find('(') == std::string::npos) {
            mutexes.emplace_back(decl.substr(nb, ne - nb), m.begin);
          }
        }
      }
    next_member:;
    }
    // Pass 2: every GUARDED_BY argument resolves; every mutex guards.
    std::set<std::string> guarding;
    for (const Member& m : members) {
      for (const char* macro :
           {"ROADNET_GUARDED_BY", "ROADNET_PT_GUARDED_BY"}) {
        size_t at = m.stmt.find(macro);
        if (at == std::string::npos) continue;
        size_t open = m.stmt.find('(', at);
        if (open == std::string::npos) continue;
        size_t close = SkipBalanced(m.stmt, open, '(', ')');
        if (close == std::string::npos) continue;
        const std::string arg =
            Trim(m.stmt.substr(open + 1, close - open - 2));
        bool resolved = false;
        for (const auto& [mu, off] : mutexes) {
          if (mu == arg) resolved = true;
        }
        if (resolved) {
          guarding.insert(arg);
        } else {
          out->push_back(MakeFinding(
              text.LineOf(m.begin),
              std::string(macro) + "(" + arg + ") in " + class_name +
                  " does not name a Mutex member of this class; the "
                  "annotation guards nothing and the tsa gate cannot "
                  "check it"));
        }
      }
    }
    for (const auto& [mu, off] : mutexes) {
      if (guarding.count(mu)) continue;
      out->push_back(MakeFinding(
          text.LineOf(off),
          "Mutex member " + class_name + "::" + mu +
              " guards no field; add ROADNET_GUARDED_BY(" + mu +
              ") to the data it protects, or waive with the reason the "
              "lock exists (e.g. it only orders a sleep/notify handshake)"));
    }
  }
};

// ---------------------------------------------------------------------------
// R11: settle loops do not allocate.
//
// Grounding: the query-path contract since PR 1 is "contexts allocate,
// queries reuse" — every per-query vector lives in a reusable
// QueryContext so the settle loop's dependency chain never stalls on
// malloc (and never takes the allocator lock under the multi-threaded
// engine). One push_back on an unreserved vector inside the CH settle
// loop is invisible in unit tests (first query grows it, the rest ride
// the capacity) but shows up as p99 jitter under the server. A settle
// loop is recognized lexically: a while/for whose condition watches a
// heap/queue/frontier, or whose body pops and settles one.
class NoAllocInSettleLoopRule : public Rule {
 public:
  std::string Id() const override { return "R11"; }
  std::string Name() const override { return "no-alloc-in-settle-loop"; }
  std::string Description() const override {
    return "query hot paths (src/ch, src/dijkstra, src/hl, src/knn) do "
           "not allocate inside settle loops: no new/make_unique/"
           "make_shared/std::function, and no push_back on a vector "
           "this file never reserves";
  }
  bool AppliesTo(const SourceFile& f) const override {
    if (!(PathStartsWith(f, "src/ch/") || PathStartsWith(f, "src/dijkstra/") ||
          PathStartsWith(f, "src/hl/") || PathStartsWith(f, "src/knn/"))) {
      return false;
    }
    // Build-time code (contraction, ordering) allocates freely; the
    // rule polices the query path only.
    return f.path.find("contraction") == std::string::npos &&
           f.path.find("node_order") == std::string::npos;
  }
  void Scan(const SourceFile& f, std::vector<Finding>* out) const override {
    Text text(f.code);
    const std::string& s = text.s;
    std::set<std::pair<int, std::string>> seen;  // nested loops rescan
    for (const char* kw : {"while", "for"}) {
      const size_t kwlen = std::string(kw).size();
      size_t pos = 0;
      while ((pos = s.find(kw, pos)) != std::string::npos) {
        const size_t here = pos;
        pos += kwlen;
        if (!IsWordAt(s, here, kwlen)) continue;
        size_t open = SkipSpaces(s, here + kwlen);
        if (open >= s.size() || s[open] != '(') continue;
        size_t close = SkipBalanced(s, open, '(', ')');
        if (close == std::string::npos) continue;
        size_t body_begin = SkipSpaces(s, close);
        size_t body_end;
        if (body_begin < s.size() && s[body_begin] == '{') {
          body_end = SkipBalanced(s, body_begin, '{', '}');
          if (body_end == std::string::npos) continue;
        } else {
          body_end = s.find(';', body_begin);
          if (body_end == std::string::npos) continue;
        }
        const std::string cond = Lower(s.substr(open, close - open));
        const std::string body =
            Lower(s.substr(body_begin, body_end - body_begin));
        const bool settles =
            ContainsAny(cond, {"empty(", "heap", "queue", "minkey",
                               ".next("}) ||
            ContainsAny(body, {"popmin(", "pop_heap", ".settle(",
                               "heappush(", "heap["});
        if (!settles) continue;
        ScanBody(text, body_begin, body_end, &seen, out);
      }
    }
  }

 private:
  void ScanBody(const Text& text, size_t begin, size_t end,
                std::set<std::pair<int, std::string>>* seen,
                std::vector<Finding>* out) const {
    const std::string& s = text.s;
    auto emit = [&](size_t off, const std::string& msg) {
      const int line = text.LineOf(off);
      if (seen->insert({line, msg}).second) {
        out->push_back(MakeFinding(line, msg));
      }
    };
    for (const char* alloc : {"new", "make_unique", "make_shared"}) {
      const size_t len = std::string(alloc).size();
      size_t pos = begin;
      while ((pos = s.find(alloc, pos)) != std::string::npos && pos < end) {
        const size_t here = pos;
        pos += len;
        if (!IsWordAt(s, here, len)) continue;
        emit(here, std::string(alloc) +
                       " inside a settle loop; allocate in the "
                       "QueryContext (NewContext/Reset) so the hot loop "
                       "never touches the allocator");
      }
    }
    {
      size_t pos = begin;
      while ((pos = s.find("std::function", pos)) != std::string::npos &&
             pos < end) {
        emit(pos,
             "std::function constructed inside a settle loop; capturing "
             "callables heap-allocate — hoist it out of the loop or use "
             "a template parameter");
        pos += 13;
      }
    }
    for (const char* push : {"push_back", "emplace_back"}) {
      const size_t len = std::string(push).size();
      size_t pos = begin;
      while ((pos = s.find(push, pos)) != std::string::npos && pos < end) {
        const size_t here = pos;
        pos += len;
        if (!IsWordAt(s, here, len)) continue;
        // Receiver: the identifier right before `.push_back` or
        // `->push_back`.
        size_t r = here;
        if (r >= 1 && s[r - 1] == '.') {
          r -= 1;
        } else if (r >= 2 && s[r - 2] == '-' && s[r - 1] == '>') {
          r -= 2;
        } else {
          continue;  // unqualified call — not a container member
        }
        size_t sym_end = r;
        while (r > 0 && IsIdentChar(s[r - 1])) --r;
        const std::string sym = s.substr(r, sym_end - r);
        if (sym.empty()) continue;
        if (s.find(sym + ".reserve(") != std::string::npos ||
            s.find(sym + "->reserve(") != std::string::npos) {
          continue;  // capacity is managed somewhere in this file
        }
        emit(here, std::string(push) + " on '" + sym +
                       "' inside a settle loop with no " + sym +
                       ".reserve( anywhere in this file; growth "
                       "reallocates mid-search — reserve in the "
                       "context/setup code");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// R12: wire decoding never reads without a remaining-bytes check.
//
// Grounding: the server feeds DecodeXxx whatever bytes arrive on the
// socket; every field read must be preceded by an explicit check that
// the bytes exist (the Reader::Take cursor centralizes this — its one
// memcpy sits right behind `pos + sizeof(T) > body.size()`). A raw
// memcpy/subscript/.data()-arithmetic read added outside that pattern
// is an out-of-bounds read on a truncated frame — exactly the class
// the fuzz_wire_decode harness hunts, caught here without a fuzzer.
class WireBoundsCheckRule : public Rule {
 public:
  std::string Id() const override { return "R12"; }
  std::string Name() const override { return "wire-bounds-check"; }
  std::string Description() const override {
    return "raw byte reads in src/server/wire.* (memcpy, buffer "
           "subscripts, .data() arithmetic) must follow a "
           "remaining-bytes check in the same function";
  }
  bool AppliesTo(const SourceFile& f) const override {
    return PathStartsWith(f, "src/server/wire");
  }
  void Scan(const SourceFile& f, std::vector<Finding>* out) const override {
    Text text(f.code);
    const std::string& s = text.s;
    auto check = [&](size_t off, const char* what) {
      // Enclosing-function window: back to the last line that closes a
      // top-level block (column-0 '}'), i.e. the end of the previous
      // function.
      size_t start = 0;
      for (size_t ls : text.line_start) {
        if (ls >= off) break;
        if (ls < s.size() && s[ls] == '}') start = ls;
      }
      const std::string window = s.substr(start, off - start);
      if (ContainsAny(window,
                      {".size()", ".empty(", "pos +", "remaining", "kMax"})) {
        return;
      }
      out->push_back(MakeFinding(
          text.LineOf(off),
          std::string(what) +
              " with no preceding remaining-bytes check in this "
              "function; a truncated frame reads out of bounds — check "
              "against .size()/.empty() first (or go through "
              "Reader::Take)"));
    };
    ForEachWord(f.code, "memcpy", [&](size_t li, size_t col) {
      check(text.line_start[li] + col, "memcpy");
    });
    size_t pos = 0;
    while ((pos = s.find(".data()", pos)) != std::string::npos) {
      size_t after = SkipSpaces(s, pos + 7);
      if (after < s.size() && (s[after] == '+' || s[after] == '-')) {
        check(pos, "pointer arithmetic on .data()");
      }
      pos += 7;
    }
    ForEachWord(f.code, "body", [&](size_t li, size_t col) {
      const std::string& line = f.code[li];
      size_t after = col + 4;
      if (after < line.size() && line[after] == '[') {
        check(text.line_start[li] + col, "buffer subscript");
      }
    });
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> BuildAllRules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<NoFindEdgeRule>());
  rules.push_back(std::make_unique<IndexImmutableRule>());
  rules.push_back(std::make_unique<ContextQueryApiRule>());
  rules.push_back(std::make_unique<NotifyUnderLockRule>());
  rules.push_back(std::make_unique<DeterministicRandomRule>());
  rules.push_back(std::make_unique<CounterGuardRule>());
  rules.push_back(std::make_unique<IncludeHygieneRule>());
  rules.push_back(std::make_unique<SteadyClockTimingRule>());
  rules.push_back(std::make_unique<PoiKnnSeededRandomRule>());
  rules.push_back(std::make_unique<AnnotatedLockRule>());
  rules.push_back(std::make_unique<NoAllocInSettleLoopRule>());
  rules.push_back(std::make_unique<WireBoundsCheckRule>());
  return rules;
}

}  // namespace roadnet::lint
