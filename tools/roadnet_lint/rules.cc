#include <algorithm>
#include <cctype>
#include <memory>
#include <string>
#include <vector>

#include "roadnet_lint/lint.h"

// The rule catalog. Every rule is grounded in a bug or near-miss this
// codebase actually hit; DESIGN.md "Static analysis & sanitizer matrix"
// tells each story. Rules scan the comment/string-stripped view
// (SourceFile::code) so matches are always live code.

namespace roadnet::lint {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Whole-word occurrence check at `pos`.
bool IsWordAt(const std::string& line, size_t pos, size_t len) {
  if (pos > 0 && IsIdentChar(line[pos - 1])) return false;
  if (pos + len < line.size() && IsIdentChar(line[pos + len])) return false;
  return true;
}

// Calls fn(line_index, column) for every whole-word occurrence.
template <typename Fn>
void ForEachWord(const std::vector<std::string>& code, const std::string& word,
                 Fn fn) {
  for (size_t li = 0; li < code.size(); ++li) {
    const std::string& line = code[li];
    size_t pos = 0;
    while ((pos = line.find(word, pos)) != std::string::npos) {
      if (IsWordAt(line, pos, word.size())) fn(li, pos);
      pos += word.size();
    }
  }
}

bool PathStartsWith(const SourceFile& f, const char* prefix) {
  return f.path.rfind(prefix, 0) == 0;
}

Finding MakeFinding(int line, std::string message) {
  Finding f;
  f.line = line;
  f.message = std::move(message);
  return f;
}

// Joined view of the stripped code with offset -> line mapping, for the
// rules whose constructs span lines (class bodies, parameter lists).
struct Text {
  std::string s;
  std::vector<size_t> line_start;

  explicit Text(const std::vector<std::string>& code) {
    for (const std::string& line : code) {
      line_start.push_back(s.size());
      s += line;
      s += '\n';
    }
  }

  int LineOf(size_t off) const {
    auto it = std::upper_bound(line_start.begin(), line_start.end(), off);
    return static_cast<int>(it - line_start.begin());
  }
};

size_t SkipSpaces(const std::string& s, size_t pos) {
  while (pos < s.size() &&
         std::isspace(static_cast<unsigned char>(s[pos]))) {
    ++pos;
  }
  return pos;
}

// Offset just past the brace/paren that matches s[open] (which must be
// an opener); npos if unbalanced.
size_t SkipBalanced(const std::string& s, size_t open, char o, char c) {
  int depth = 0;
  for (size_t i = open; i < s.size(); ++i) {
    if (s[i] == o) ++depth;
    if (s[i] == c && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

bool ContainsWord(const std::string& s, const std::string& word) {
  size_t pos = 0;
  while ((pos = s.find(word, pos)) != std::string::npos) {
    if (IsWordAt(s, pos, word.size())) return true;
    pos += word.size();
  }
  return false;
}

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// ---------------------------------------------------------------------------
// R1: no FindEdge / edge searches in query-path code.
//
// Grounding: the pre-PR-4 CH unpacker resolved every shortcut with a
// binary-searched FindEdge per hop; the rank-space layout deleted it by
// precomputing child arc indices. Any FindEdge that reappears under
// src/ch, src/dijkstra, or src/engine is the hot path regressing.
class NoFindEdgeRule : public Rule {
 public:
  std::string Id() const override { return "R1"; }
  std::string Name() const override { return "no-find-edge"; }
  std::string Description() const override {
    return "query-path code (src/ch, src/dijkstra, src/engine) must not "
           "call or declare FindEdge-style per-hop edge searches";
  }
  bool AppliesTo(const SourceFile& f) const override {
    return PathStartsWith(f, "src/ch/") || PathStartsWith(f, "src/dijkstra/") ||
           PathStartsWith(f, "src/engine/");
  }
  void Scan(const SourceFile& f, std::vector<Finding>* out) const override {
    ForEachWord(f.code, "FindEdge", [&](size_t li, size_t) {
      out->push_back(MakeFinding(
          static_cast<int>(li) + 1,
          "FindEdge on the query path: shortcuts must resolve through "
          "precomputed arc indices (see ChIndex::ArcSource), not per-hop "
          "edge searches"));
    });
  }
};

// ---------------------------------------------------------------------------
// R2: *Index classes expose no public non-const methods.
//
// Grounding: the thread-safety contract (one immutable index, N
// QueryContexts) only holds if nothing can mutate the index after its
// constructor returns. PR 4 deleted ChIndex::set_stall_on_demand for
// exactly this reason. Constructors, destructors, operator=, statics,
// and `= default/delete` are exempt; legacy single-threaded wrappers
// carry reasoned waivers.
class IndexImmutableRule : public Rule {
 public:
  std::string Id() const override { return "R2"; }
  std::string Name() const override { return "index-immutable"; }
  std::string Description() const override {
    return "classes named *Index expose no public non-const methods; "
           "indexes are immutable after construction";
  }
  bool AppliesTo(const SourceFile& f) const override {
    return PathStartsWith(f, "src/");
  }
  void Scan(const SourceFile& f, std::vector<Finding>* out) const override {
    Text text(f.code);
    const std::string& s = text.s;
    for (size_t pos = 0; pos < s.size();) {
      size_t cls = std::string::npos;
      bool is_struct = false;
      size_t c1 = s.find("class", pos);
      size_t c2 = s.find("struct", pos);
      if (c1 == std::string::npos && c2 == std::string::npos) break;
      if (c2 < c1) {
        cls = c2;
        is_struct = true;
      } else {
        cls = c1;
      }
      size_t after = cls + (is_struct ? 6 : 5);
      if (!IsWordAt(s, cls, after - cls)) {
        pos = after;
        continue;
      }
      size_t name_begin = SkipSpaces(s, after);
      size_t name_end = name_begin;
      while (name_end < s.size() && IsIdentChar(s[name_end])) ++name_end;
      const std::string name = s.substr(name_begin, name_end - name_begin);
      pos = name_end;
      if (name.size() < 6 || name.compare(name.size() - 5, 5, "Index") != 0) {
        continue;
      }
      // Definition or forward declaration? Find '{' before ';'.
      size_t brace = s.find('{', name_end);
      size_t semi = s.find(';', name_end);
      if (brace == std::string::npos ||
          (semi != std::string::npos && semi < brace)) {
        continue;
      }
      ScanClassBody(text, name, is_struct, brace, out);
      pos = brace + 1;
    }
  }

 private:
  void ScanClassBody(const Text& text, const std::string& class_name,
                     bool is_struct, size_t open_brace,
                     std::vector<Finding>* out) const {
    const std::string& s = text.s;
    bool is_public = is_struct;
    std::string stmt;
    size_t stmt_begin = std::string::npos;
    int paren_depth = 0;
    size_t i = open_brace + 1;
    auto flush = [&](bool before_block) {
      if (is_public) {
        CheckStatement(text, class_name, Trim(stmt), stmt_begin, before_block,
                       out);
      }
      stmt.clear();
      stmt_begin = std::string::npos;
    };
    while (i < s.size()) {
      char c = s[i];
      if (c == '(') ++paren_depth;
      if (c == ')') --paren_depth;
      if (paren_depth > 0) {
        // Inside a parameter list or init-list call; braces here
        // (ChConfig{} arguments, brace-init default args) are part of
        // the statement, not blocks.
        if (stmt_begin == std::string::npos &&
            !std::isspace(static_cast<unsigned char>(c))) {
          stmt_begin = i;
        }
        stmt += c;
        ++i;
        continue;
      }
      if (c == '}') {
        return;  // end of class body (nested blocks are skipped below)
      }
      if (c == '{' && paren_depth == 0) {
        flush(/*before_block=*/true);
        size_t end = SkipBalanced(s, i, '{', '}');
        if (end == std::string::npos) return;
        i = end;
        continue;
      }
      if (c == ';' && paren_depth == 0) {
        flush(/*before_block=*/false);
        ++i;
        continue;
      }
      if (c == ':' && paren_depth == 0) {
        if (i + 1 < s.size() && s[i + 1] == ':') {
          stmt += "::";
          i += 2;
          continue;
        }
        const std::string t = Trim(stmt);
        if (t == "public" || t == "protected" || t == "private") {
          is_public = t == "public";
          stmt.clear();
          stmt_begin = std::string::npos;
          ++i;
          continue;
        }
      }
      if (stmt_begin == std::string::npos &&
          !std::isspace(static_cast<unsigned char>(c))) {
        stmt_begin = i;
      }
      stmt += c;
      ++i;
    }
  }

  void CheckStatement(const Text& text, const std::string& class_name,
                      const std::string& stmt, size_t stmt_begin,
                      bool has_body, std::vector<Finding>* out) const {
    (void)has_body;
    if (stmt.empty() || stmt_begin == std::string::npos) return;
    for (const char* skip : {"using ", "friend ", "typedef ", "template",
                             "static_assert", "struct ", "class ", "enum "}) {
      if (stmt.rfind(skip, 0) == 0) return;
    }
    if (ContainsWord(stmt, "operator")) return;
    if (ContainsWord(stmt, "static")) return;
    size_t open = stmt.find('(');
    if (open == std::string::npos) return;  // data member
    // Method name: identifier immediately before '('.
    size_t name_end = open;
    while (name_end > 0 &&
           std::isspace(static_cast<unsigned char>(stmt[name_end - 1]))) {
      --name_end;
    }
    size_t name_begin = name_end;
    while (name_begin > 0 && IsIdentChar(stmt[name_begin - 1])) --name_begin;
    const std::string name = stmt.substr(name_begin, name_end - name_begin);
    if (name.empty()) return;
    if (name == class_name) return;  // constructor
    if (name_begin > 0 && stmt[name_begin - 1] == '~') return;  // destructor
    size_t close = SkipBalanced(stmt, open, '(', ')');
    if (close == std::string::npos) return;
    const std::string trailer = stmt.substr(close);
    if (ContainsWord(trailer, "const")) return;
    if (trailer.find("= delete") != std::string::npos ||
        trailer.find("= default") != std::string::npos ||
        trailer.find("=delete") != std::string::npos ||
        trailer.find("=default") != std::string::npos) {
      return;
    }
    out->push_back(MakeFinding(
        text.LineOf(stmt_begin),
        "public non-const method " + class_name + "::" + name +
            " on an *Index class; indexes are immutable after "
            "construction (move mutation into the constructor, a "
            "QueryContext, or a build-time config)"));
  }
};

// ---------------------------------------------------------------------------
// R3: query entry points take a QueryContext.
//
// Grounding: PR 1 split every index into immutable structure +
// per-thread QueryContext; a DistanceQuery/PathQuery declaration
// without a context parameter reintroduces hidden shared scratch and
// breaks the one-index-many-threads contract. The single-threaded
// convenience wrappers in routing/path_index.h carry reasoned waivers.
class ContextQueryApiRule : public Rule {
 public:
  std::string Id() const override { return "R3"; }
  std::string Name() const override { return "context-query-api"; }
  std::string Description() const override {
    return "DistanceQuery/PathQuery declarations in src/ must take a "
           "QueryContext (per-thread scratch; index stays immutable)";
  }
  bool AppliesTo(const SourceFile& f) const override {
    return PathStartsWith(f, "src/");
  }
  void Scan(const SourceFile& f, std::vector<Finding>* out) const override {
    Text text(f.code);
    for (const char* entry : {"DistanceQuery", "PathQuery"}) {
      ScanEntry(text, entry, out);
    }
  }

 private:
  void ScanEntry(const Text& text, const std::string& word,
                 std::vector<Finding>* out) const {
    const std::string& s = text.s;
    size_t pos = 0;
    while ((pos = s.find(word, pos)) != std::string::npos) {
      const size_t here = pos;
      pos += word.size();
      if (!IsWordAt(s, here, word.size())) continue;
      // Declaration heuristics: preceded by a type name or :: (an
      // out-of-line definition), not by . or -> (a call site) and not
      // in a using-declaration.
      size_t back = here;
      while (back > 0 &&
             std::isspace(static_cast<unsigned char>(s[back - 1]))) {
        --back;
      }
      if (back == 0) continue;
      const char prev = s[back - 1];
      if (prev == '.' || prev == '(' || prev == ',' || prev == '=' ||
          prev == '&') {
        continue;  // call site or function-pointer use
      }
      if (prev == '>' && back >= 2 && s[back - 2] == '-') continue;  // ->
      if (IsIdentChar(prev)) {
        // `return DistanceQuery(...)` is a call, not a declaration.
        size_t wb = back;
        while (wb > 0 && IsIdentChar(s[wb - 1])) --wb;
        if (s.compare(wb, back - wb, "return") == 0) continue;
      }
      if (prev == ':') {
        // Qualified name: skip `using PathIndex::DistanceQuery;`.
        size_t line_begin = s.rfind('\n', here);
        line_begin = line_begin == std::string::npos ? 0 : line_begin + 1;
        if (Trim(s.substr(line_begin, here - line_begin)).rfind("using", 0) ==
            0) {
          continue;
        }
      } else if (!IsIdentChar(prev)) {
        continue;  // not `Type Name(` — some expression context
      }
      size_t open = SkipSpaces(s, here + word.size());
      if (open >= s.size() || s[open] != '(') continue;
      size_t close = SkipBalanced(s, open, '(', ')');
      if (close == std::string::npos) continue;
      const std::string params = s.substr(open, close - open);
      if (params.find("QueryContext") != std::string::npos) continue;
      out->push_back(MakeFinding(
          text.LineOf(here),
          word + " declared without a QueryContext parameter; query "
                 "entry points thread per-thread scratch explicitly so "
                 "the index can be shared across threads"));
    }
  }
};

// ---------------------------------------------------------------------------
// R4: no notify on a pointer-reached condvar outside a lock scope.
//
// Grounding: PR 3's TSan-caught race — QueryServer::Complete notified
// the handler's stack-owned Pending condvar after unlocking; the waiter
// could observe `done`, return, and destroy the condvar before the
// notify touched it. When the condvar is reached through a pointer
// (`p->cv.notify_one()`), the notify must happen while a
// lock_guard/unique_lock/scoped_lock is still in scope.
class NotifyUnderLockRule : public Rule {
 public:
  std::string Id() const override { return "R4"; }
  std::string Name() const override { return "notify-under-lock"; }
  std::string Description() const override {
    return "notify_one/notify_all on a condvar reached through a pointer "
           "must run inside a live lock scope (waiter-owned condvars die "
           "at unlock)";
  }
  void Scan(const SourceFile& f, std::vector<Finding>* out) const override {
    Text text(f.code);
    const std::string& s = text.s;
    int depth = 0;
    std::vector<int> lock_depths;
    size_t i = 0;
    while (i < s.size()) {
      char c = s[i];
      if (c == '{') {
        ++depth;
        ++i;
        continue;
      }
      if (c == '}') {
        --depth;
        while (!lock_depths.empty() && lock_depths.back() > depth) {
          lock_depths.pop_back();
        }
        ++i;
        continue;
      }
      if (IsIdentChar(c) && (i == 0 || !IsIdentChar(s[i - 1]))) {
        size_t end = i;
        while (end < s.size() && IsIdentChar(s[end])) ++end;
        const std::string word = s.substr(i, end - i);
        if (word == "lock_guard" || word == "unique_lock" ||
            word == "scoped_lock") {
          lock_depths.push_back(depth);
        } else if (word == "notify_one" || word == "notify_all") {
          size_t paren = SkipSpaces(s, end);
          if (paren < s.size() && s[paren] == '(') {
            // Receiver: the expression chars right before the word.
            size_t r = i;
            while (r > 0 && (IsIdentChar(s[r - 1]) || s[r - 1] == '.' ||
                             s[r - 1] == '>' || s[r - 1] == '-' ||
                             s[r - 1] == ']' || s[r - 1] == '[' ||
                             s[r - 1] == ':')) {
              --r;
            }
            const std::string receiver = s.substr(r, i - r);
            if (receiver.find("->") != std::string::npos &&
                lock_depths.empty()) {
              out->push_back(MakeFinding(
                  text.LineOf(i),
                  "notify on pointer-reached condvar '" +
                      receiver.substr(0, receiver.size() - 1) +
                      "' outside any lock scope; if the waiter owns the "
                      "condvar (stack/struct), it can be destroyed "
                      "between unlock and notify — notify while the "
                      "lock is held"));
            }
          }
        }
        i = end;
        continue;
      }
      ++i;
    }
  }
};

// ---------------------------------------------------------------------------
// R5: deterministic generator/workload code stays deterministic.
//
// Grounding: every experiment is reproduced bit-for-bit from an
// explicit seed (util/rng.h SplitMix64); one rand() or wall-clock read
// in graph generation or query sampling silently breaks every paired
// comparison the benches rely on.
class DeterministicRandomRule : public Rule {
 public:
  std::string Id() const override { return "R5"; }
  std::string Name() const override { return "deterministic-random"; }
  std::string Description() const override {
    return "generator/workload code (src/graph, src/workload) must use "
           "seeded roadnet::Rng — no rand(), unseeded mt19937, "
           "random_device, or wall-clock reads";
  }
  bool AppliesTo(const SourceFile& f) const override {
    return PathStartsWith(f, "src/workload/") ||
           PathStartsWith(f, "src/graph/");
  }
  void Scan(const SourceFile& f, std::vector<Finding>* out) const override {
    for (const char* banned : {"rand", "srand", "random_device",
                               "gettimeofday", "system_clock"}) {
      ForEachWord(f.code, banned, [&](size_t li, size_t) {
        out->push_back(MakeFinding(
            static_cast<int>(li) + 1,
            std::string(banned) +
                " in deterministic generator/workload code; take an "
                "explicit seed and use roadnet::Rng so experiments "
                "reproduce bit-for-bit"));
      });
    }
    // time(nullptr) / time(NULL) / time(0): wall-clock seeding.
    ForEachWord(f.code, "time", [&](size_t li, size_t col) {
      const std::string& line = f.code[li];
      size_t p = SkipSpaces(line, col + 4);
      if (p >= line.size() || line[p] != '(') return;
      size_t a = SkipSpaces(line, p + 1);
      for (const char* arg : {"nullptr", "NULL", "0"}) {
        const size_t len = std::string(arg).size();
        if (line.compare(a, len, arg) == 0) {
          out->push_back(MakeFinding(
              static_cast<int>(li) + 1,
              "wall-clock seed time(" + std::string(arg) +
                  ") in deterministic code; take an explicit seed"));
          return;
        }
      }
    });
    // Unseeded std::mt19937: `mt19937 gen;` (no ctor argument).
    for (const char* engine : {"mt19937", "mt19937_64"}) {
      ForEachWord(f.code, engine, [&](size_t li, size_t col) {
        const std::string& line = f.code[li];
        size_t p = SkipSpaces(line, col + std::string(engine).size());
        // Variable declaration: identifier after the type name.
        size_t name_end = p;
        while (name_end < line.size() && IsIdentChar(line[name_end])) {
          ++name_end;
        }
        if (name_end == p) return;  // qualified use / temporary — skip
        size_t q = SkipSpaces(line, name_end);
        if (q < line.size() && (line[q] == '(' || line[q] == '{')) {
          return;  // seeded construction
        }
        out->push_back(MakeFinding(
            static_cast<int>(li) + 1,
            std::string(engine) +
                " default-constructed (fixed implementation-defined "
                "seed, and not the repo's Rng); seed explicitly or use "
                "roadnet::Rng"));
      });
    }
  }
};

// ---------------------------------------------------------------------------
// R6: counter increments go through the guarded API.
//
// Grounding: ROADNET_DISABLE_COUNTERS must compile every increment away
// (DESIGN.md's <=5% overhead contract is verified against that build).
// A raw `counters.vertices_settled += 1` bypasses the `if constexpr`
// guard in the Settle()/RelaxEdge()/... helpers and survives the
// no-counters build, silently re-adding hot-path work.
class CounterGuardRule : public Rule {
 public:
  std::string Id() const override { return "R6"; }
  std::string Name() const override { return "counter-guarded-increment"; }
  std::string Description() const override {
    return "QueryCounters fields are written only through the "
           "ROADNET_DISABLE_COUNTERS-guarded helpers (Settle(), "
           "RelaxEdge(), ...), never by direct field writes";
  }
  bool AppliesTo(const SourceFile& f) const override {
    if (f.path == "src/obs/query_counters.h") return false;  // the API itself
    return PathStartsWith(f, "src/") || PathStartsWith(f, "bench/");
  }
  void Scan(const SourceFile& f, std::vector<Finding>* out) const override {
    static const char* kFields[] = {
        "vertices_settled", "edges_relaxed",      "heap_pushes",
        "heap_pops",        "shortcuts_unpacked", "edge_searches",
        "table_lookups",    "tree_lookups"};
    for (const char* field : kFields) {
      ForEachWord(f.code, field, [&](size_t li, size_t col) {
        const std::string& line = f.code[li];
        if (col == 0) return;
        const char prev = line[col - 1];
        const bool member_access =
            prev == '.' || (prev == '>' && col >= 2 && line[col - 2] == '-');
        if (!member_access) return;
        size_t p = SkipSpaces(line, col + std::string(field).size());
        if (p >= line.size()) return;
        bool write = false;
        if (line.compare(p, 2, "+=") == 0 || line.compare(p, 2, "-=") == 0 ||
            line.compare(p, 2, "++") == 0 || line.compare(p, 2, "--") == 0) {
          write = true;
        } else if (line[p] == '=' &&
                   (p + 1 >= line.size() || line[p + 1] != '=')) {
          write = true;
        }
        if (!write) return;
        out->push_back(MakeFinding(
            static_cast<int>(li) + 1,
            std::string("direct write to QueryCounters::") + field +
                "; use the guarded increment API (counters.Settle(), "
                ".RelaxEdge(), ...) so ROADNET_DISABLE_COUNTERS "
                "compiles it away"));
      });
    }
  }
};

// ---------------------------------------------------------------------------
// R7: include hygiene.
//
// Grounding: <bits/...> headers are libstdc++ internals (non-portable,
// and they drag in the world, bloating every TU); `using namespace std`
// in a header leaks into every includer and has already caused one
// ambiguous-overload build break downstream of <algorithm>.
class IncludeHygieneRule : public Rule {
 public:
  std::string Id() const override { return "R7"; }
  std::string Name() const override { return "include-hygiene"; }
  std::string Description() const override {
    return "no <bits/...> includes anywhere; no `using namespace std` "
           "in headers";
  }
  void Scan(const SourceFile& f, std::vector<Finding>* out) const override {
    for (size_t li = 0; li < f.code.size(); ++li) {
      const std::string& line = f.code[li];
      const std::string trimmed = Trim(line);
      if (trimmed.rfind("#", 0) == 0 &&
          trimmed.find("<bits/") != std::string::npos) {
        out->push_back(MakeFinding(
            static_cast<int>(li) + 1,
            "#include <bits/...> is a libstdc++ internal header; "
            "include the standard headers you use"));
      }
      if (f.is_header && line.find("using namespace std") != std::string::npos) {
        out->push_back(MakeFinding(
            static_cast<int>(li) + 1,
            "`using namespace std` in a header leaks into every "
            "includer; qualify names instead"));
      }
    }
  }
};

// ---------------------------------------------------------------------------
// R8: steady_clock-only timing on serving/engine/observability paths.
//
// Grounding: the tracing subsystem (src/obs/trace.h) stamps every stage
// of a request with nanoseconds relative to one steady_clock epoch, and
// stage windows recorded on four different threads only line up because
// that clock is monotonic. One system_clock / gettimeofday read mixed
// in (NTP steps it backwards, suspend jumps it forwards) produces
// negative or overlapping stage durations that validate_metrics.py
// rejects — and silently corrupts every latency histogram.
class SteadyClockTimingRule : public Rule {
 public:
  std::string Id() const override { return "R8"; }
  std::string Name() const override { return "steady-clock-timing"; }
  std::string Description() const override {
    return "timing code in src/obs, src/server, src/engine reads "
           "steady_clock only — no system_clock, gettimeofday, or "
           "high_resolution_clock (non-monotonic or unspecified)";
  }
  bool AppliesTo(const SourceFile& f) const override {
    return PathStartsWith(f, "src/obs/") || PathStartsWith(f, "src/server/") ||
           PathStartsWith(f, "src/engine/");
  }
  void Scan(const SourceFile& f, std::vector<Finding>* out) const override {
    for (const char* banned :
         {"system_clock", "gettimeofday", "high_resolution_clock"}) {
      ForEachWord(f.code, banned, [&](size_t li, size_t) {
        out->push_back(MakeFinding(
            static_cast<int>(li) + 1,
            std::string(banned) +
                " in serving/observability timing code; trace spans and "
                "latency histograms require a monotonic clock — use "
                "std::chrono::steady_clock (see obs/trace.h)"));
      });
    }
  }
};

// ---------------------------------------------------------------------------
// R9: POI placement and kNN code stays deterministic too.
//
// Grounding: a POI set is regenerated bit-identically from
// PoiConfig::seed on other hosts (that is what makes the kNN
// differential harness and the loadgen's Dijkstra-oracle verification
// meaningful), and IER's strict termination tie-breaks assume a total
// reproducible candidate order. Same banned constructs as R5 — the
// Scan is inherited — applied to the POI/kNN subtree.
class PoiKnnSeededRandomRule : public DeterministicRandomRule {
 public:
  std::string Id() const override { return "R9"; }
  std::string Name() const override { return "poi-knn-seeded-random"; }
  std::string Description() const override {
    return "POI placement and kNN code (src/poi, src/knn) must use "
           "seeded roadnet::Rng — no rand(), unseeded mt19937, "
           "random_device, or wall-clock reads (R5's contract extended)";
  }
  bool AppliesTo(const SourceFile& f) const override {
    return PathStartsWith(f, "src/poi/") || PathStartsWith(f, "src/knn/");
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> BuildAllRules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<NoFindEdgeRule>());
  rules.push_back(std::make_unique<IndexImmutableRule>());
  rules.push_back(std::make_unique<ContextQueryApiRule>());
  rules.push_back(std::make_unique<NotifyUnderLockRule>());
  rules.push_back(std::make_unique<DeterministicRandomRule>());
  rules.push_back(std::make_unique<CounterGuardRule>());
  rules.push_back(std::make_unique<IncludeHygieneRule>());
  rules.push_back(std::make_unique<SteadyClockTimingRule>());
  rules.push_back(std::make_unique<PoiKnnSeededRandomRule>());
  return rules;
}

}  // namespace roadnet::lint
