#include "roadnet_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

namespace roadnet::lint {

namespace {

namespace fs = std::filesystem;

// Splits a file's text into lines (trailing newline optional).
std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else if (c != '\r') {
      cur += c;
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

// Blanks comments, string literals, and char literals to spaces across
// the whole file, preserving line lengths so columns stay meaningful.
// Handles //, /* */, escape sequences, and R"tag( ... )tag" raw strings.
// *comment_view gets the inverse projection for comments only: comment
// text (with its delimiters) verbatim, everything else blanked — the
// waiver parser reads it so a waiver must live in a real comment, not a
// string literal.
std::vector<std::string> StripCommentsAndStrings(
    const std::vector<std::string>& raw,
    std::vector<std::string>* comment_view) {
  std::vector<std::string> code = raw;
  comment_view->assign(raw.size(), "");
  for (size_t li = 0; li < raw.size(); ++li) {
    (*comment_view)[li].assign(raw[li].size(), ' ');
  }
  auto mark_comment = [&](size_t li, size_t j) {
    (*comment_view)[li][j] = raw[li][j];
  };
  enum class State { kCode, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // ")tag" that terminates the raw string

  for (size_t li = 0; li < code.size(); ++li) {
    std::string& line = code[li];
    size_t i = 0;
    while (i < line.size()) {
      char c = line[i];
      switch (state) {
        case State::kCode:
          if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
            for (size_t j = i; j < line.size(); ++j) {
              mark_comment(li, j);
              line[j] = ' ';
            }
            i = line.size();
          } else if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
            mark_comment(li, i);
            mark_comment(li, i + 1);
            line[i] = line[i + 1] = ' ';
            i += 2;
            state = State::kBlockComment;
          } else if (c == 'R' && i + 1 < line.size() && line[i + 1] == '"' &&
                     (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                     line[i - 1])) &&
                                 line[i - 1] != '_'))) {
            // R"tag( — find the opening paren to learn the delimiter.
            size_t paren = line.find('(', i + 2);
            if (paren == std::string::npos) {
              i = line.size();
              break;
            }
            raw_delim = ")" + line.substr(i + 2, paren - (i + 2)) + "\"";
            for (size_t j = i; j <= paren; ++j) line[j] = ' ';
            i = paren + 1;
            state = State::kRawString;
          } else if (c == '"') {
            line[i++] = ' ';
            state = State::kString;
          } else if (c == '\'') {
            // Distinguish a char literal from a digit separator (1'000).
            if (i > 0 && std::isdigit(static_cast<unsigned char>(line[i - 1]))) {
              ++i;
            } else {
              line[i++] = ' ';
              state = State::kChar;
            }
          } else {
            ++i;
          }
          break;
        case State::kBlockComment:
          if (c == '*' && i + 1 < line.size() && line[i + 1] == '/') {
            mark_comment(li, i);
            mark_comment(li, i + 1);
            line[i] = line[i + 1] = ' ';
            i += 2;
            state = State::kCode;
          } else {
            mark_comment(li, i);
            line[i++] = ' ';
          }
          break;
        case State::kString:
        case State::kChar: {
          const char quote = state == State::kString ? '"' : '\'';
          if (c == '\\' && i + 1 < line.size()) {
            line[i] = line[i + 1] = ' ';
            i += 2;
          } else if (c == quote) {
            line[i++] = ' ';
            state = State::kCode;
          } else {
            line[i++] = ' ';
          }
          break;
        }
        case State::kRawString: {
          size_t end = line.find(raw_delim, i);
          if (end == std::string::npos) {
            for (size_t j = i; j < line.size(); ++j) line[j] = ' ';
            i = line.size();
          } else {
            for (size_t j = i; j < end + raw_delim.size(); ++j) line[j] = ' ';
            i = end + raw_delim.size();
            state = State::kCode;
          }
          break;
        }
      }
    }
    // Unterminated // comment state never spans lines; string state at
    // EOL is a line continuation or a syntax error — reset to code so
    // one bad line cannot blank the rest of the file.
    if (state == State::kString || state == State::kChar) state = State::kCode;
  }
  return code;
}

constexpr char kWaiverTag[] = "roadnet-lint: allow(";

// Parses every waiver comment in the file. The waiver must sit in a
// real comment (the comment view blanks code and string literals, so a
// tag inside a string never registers). A tag preceded by a second //
// on the same line is documentation quoting the syntax, not a waiver.
std::vector<Waiver> ParseWaivers(const std::vector<std::string>& comments) {
  std::vector<Waiver> waivers;
  for (size_t li = 0; li < comments.size(); ++li) {
    size_t pos = comments[li].find(kWaiverTag);
    if (pos == std::string::npos) continue;
    size_t first_slashes = comments[li].find("//");
    if (first_slashes != std::string::npos &&
        comments[li].find("//", first_slashes + 2) < pos) {
      continue;  // nested // before the tag: a quoted example
    }
    size_t start = pos + sizeof(kWaiverTag) - 1;
    size_t close = comments[li].find(')', start);
    if (close == std::string::npos) continue;
    const std::string body = comments[li].substr(start, close - start);
    // body = "R2,R3 reason words" — ids up to the first space.
    size_t space = body.find(' ');
    const std::string ids_text =
        space == std::string::npos ? body : body.substr(0, space);
    std::string reason =
        space == std::string::npos ? "" : body.substr(space + 1);
    // Trim the reason.
    while (!reason.empty() && reason.front() == ' ') reason.erase(0, 1);
    while (!reason.empty() && reason.back() == ' ') reason.pop_back();
    Waiver w;
    w.line = static_cast<int>(li) + 1;
    w.reason = reason;
    std::string id;
    std::stringstream ids(ids_text);
    while (std::getline(ids, id, ',')) {
      if (!id.empty()) w.rule_ids.push_back(id);
    }
    waivers.push_back(std::move(w));
  }
  return waivers;
}

bool HasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

bool InFixtureTree(const fs::path& p) {
  for (const auto& part : p) {
    if (part == "lint_fixtures") return true;
  }
  return false;
}

// JSON string escaping for the JSONL writer (mirrors obs/metrics.cc).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

int LintResult::UnwaivedCount() const {
  int n = 0;
  for (const Finding& f : findings) {
    if (!f.waived) ++n;
  }
  return n;
}

bool LoadSourceFile(const std::string& root, const std::string& rel_path,
                    SourceFile* out, std::string* error) {
  const fs::path full = fs::path(root) / rel_path;
  std::ifstream in(full, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + full.string();
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  out->path = rel_path;
  out->raw = SplitLines(buf.str());
  std::vector<std::string> comment_view;
  out->code = StripCommentsAndStrings(out->raw, &comment_view);
  out->waivers = ParseWaivers(comment_view);
  const std::string ext = fs::path(rel_path).extension().string();
  out->is_header = ext == ".h" || ext == ".hpp";
  return true;
}

std::vector<std::string> ListSourceFiles(
    const std::string& root, const std::vector<std::string>& dirs) {
  std::vector<std::string> files;
  for (const std::string& dir : dirs) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    if (fs::is_regular_file(base)) {
      if (!InFixtureTree(dir)) files.push_back(dir);
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      if (!HasSourceExtension(entry.path())) continue;
      const fs::path rel = fs::relative(entry.path(), root);
      if (InFixtureTree(rel)) continue;
      files.push_back(rel.generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

LintResult RunLint(std::vector<SourceFile>& files,
                   const std::vector<std::unique_ptr<Rule>>& rules,
                   const std::vector<std::string>& only_rules) {
  LintResult result;
  result.files_scanned = static_cast<int>(files.size());

  auto rule_selected = [&only_rules](const std::string& id) {
    if (only_rules.empty()) return true;
    return std::find(only_rules.begin(), only_rules.end(), id) !=
           only_rules.end();
  };

  for (SourceFile& file : files) {
    std::vector<Finding> file_findings;
    for (const auto& rule : rules) {
      if (!rule_selected(rule->Id())) continue;
      if (!rule->AppliesTo(file)) continue;
      size_t before = file_findings.size();
      rule->Scan(file, &file_findings);
      for (size_t i = before; i < file_findings.size(); ++i) {
        file_findings[i].rule_id = rule->Id();
        file_findings[i].rule_name = rule->Name();
        file_findings[i].file = file.path;
      }
    }

    // Waiver resolution: a waiver covers findings of its rules on its
    // own line and the next line. Reasonless or unknown-rule waivers
    // are W1 findings and never suppress anything.
    for (Waiver& w : file.waivers) {
      if (w.reason.empty()) {
        Finding f;
        f.rule_id = "W1";
        f.rule_name = "waiver-needs-reason";
        f.file = file.path;
        f.line = w.line;
        f.message =
            "waiver has no reason string; write "
            "`roadnet-lint: allow(<rule> <why>)`";
        file_findings.push_back(std::move(f));
        continue;
      }
      for (Finding& f : file_findings) {
        if (f.waived || f.rule_id == "W1") continue;
        if (f.line != w.line && f.line != w.line + 1) continue;
        if (std::find(w.rule_ids.begin(), w.rule_ids.end(), f.rule_id) ==
            w.rule_ids.end()) {
          continue;
        }
        f.waived = true;
        f.waiver_reason = w.reason;
        w.used = true;
      }
    }
    for (const Waiver& w : file.waivers) {
      if (w.reason.empty()) continue;  // already a W1 finding
      if (w.used) {
        ++result.waivers_used;
      } else {
        ++result.waivers_unused;
      }
    }

    std::sort(file_findings.begin(), file_findings.end(),
              [](const Finding& a, const Finding& b) {
                return std::tie(a.line, a.rule_id) <
                       std::tie(b.line, b.rule_id);
              });
    for (Finding& f : file_findings) {
      result.findings.push_back(std::move(f));
    }
  }
  return result;
}

void WriteText(std::ostream& out, const LintResult& result) {
  for (const Finding& f : result.findings) {
    out << f.file << ":" << f.line << ": [" << f.rule_id << " "
        << f.rule_name << "] " << f.message;
    if (f.waived) out << " (waived: " << f.waiver_reason << ")";
    out << "\n";
  }
  out << "roadnet_lint: " << result.files_scanned << " files, "
      << result.UnwaivedCount() << " findings, "
      << (result.findings.size() -
          static_cast<size_t>(result.UnwaivedCount()))
      << " waived, " << result.waivers_unused << " unused waivers\n";
}

void WriteJsonl(std::ostream& out, const LintResult& result) {
  for (const Finding& f : result.findings) {
    out << "{\"rule\":\"" << JsonEscape(f.rule_id) << "\",\"name\":\""
        << JsonEscape(f.rule_name) << "\",\"file\":\"" << JsonEscape(f.file)
        << "\",\"line\":" << f.line << ",\"message\":\""
        << JsonEscape(f.message) << "\",\"waived\":"
        << (f.waived ? "true" : "false");
    if (f.waived) {
      out << ",\"waiver_reason\":\"" << JsonEscape(f.waiver_reason) << "\"";
    }
    out << "}\n";
  }
  out << "{\"rule\":\"summary\",\"files_scanned\":" << result.files_scanned
      << ",\"findings\":" << result.UnwaivedCount()
      << ",\"waived\":" << (result.findings.size() -
                            static_cast<size_t>(result.UnwaivedCount()))
      << ",\"waivers_unused\":" << result.waivers_unused << "}\n";
}

}  // namespace roadnet::lint
