// roadnet_lint CLI — scans the tree, prints findings, exits nonzero on
// any finding not covered by a reasoned waiver.
//
//   roadnet_lint [--root DIR] [--json FILE] [--rules R1,R4] [--list-rules]
//                [paths...]
//
// Paths are files or directories relative to --root (default: the
// current directory); with none given the default scan set is
// src tools bench tests examples. Paths under a lint_fixtures/
// directory are skipped unless named explicitly (the fixture tree is
// deliberately rule-breaking test data for tests/lint_test).
//
// Exit codes: 0 clean, 1 unwaived findings, 2 usage or I/O error.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "roadnet_lint/lint.h"

namespace {

int Usage(const std::string& error) {
  std::cerr << "roadnet_lint: " << error << "\n"
            << "usage: roadnet_lint [--root DIR] [--json FILE] "
               "[--rules R1,R4] [--list-rules] [paths...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string json_path;
  std::vector<std::string> only_rules;
  std::vector<std::string> paths;
  bool list_rules = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) return nullptr;
      (void)flag;
      return argv[++i];
    };
    if (arg == "--root") {
      const char* v = value("--root");
      if (v == nullptr) return Usage("--root requires a value");
      root = v;
    } else if (arg == "--json") {
      const char* v = value("--json");
      if (v == nullptr) return Usage("--json requires a value");
      json_path = v;
    } else if (arg == "--rules") {
      const char* v = value("--rules");
      if (v == nullptr) return Usage("--rules requires a value");
      std::stringstream ss(v);
      std::string id;
      while (std::getline(ss, id, ',')) {
        if (!id.empty()) only_rules.push_back(id);
      }
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg.rfind("--", 0) == 0) {
      return Usage("unknown flag " + arg);
    } else {
      paths.push_back(arg);
    }
  }

  auto rules = roadnet::lint::BuildAllRules();
  if (list_rules) {
    for (const auto& rule : rules) {
      std::cout << rule->Id() << " " << rule->Name() << ": "
                << rule->Description() << "\n";
    }
    std::cout << "W1 waiver-needs-reason: every `roadnet-lint: allow(...)` "
                 "must carry a reason string\n";
    return 0;
  }

  if (paths.empty()) {
    paths = {"src", "tools", "bench", "tests", "examples"};
  }
  const std::vector<std::string> rel_files =
      roadnet::lint::ListSourceFiles(root, paths);
  if (rel_files.empty()) {
    return Usage("no source files found under '" + root + "'");
  }

  std::vector<roadnet::lint::SourceFile> files;
  files.reserve(rel_files.size());
  for (const std::string& rel : rel_files) {
    roadnet::lint::SourceFile f;
    std::string error;
    if (!roadnet::lint::LoadSourceFile(root, rel, &f, &error)) {
      std::cerr << "roadnet_lint: " << error << "\n";
      return 2;
    }
    files.push_back(std::move(f));
  }

  const roadnet::lint::LintResult result =
      roadnet::lint::RunLint(files, rules, only_rules);
  roadnet::lint::WriteText(std::cout, result);
  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::cerr << "roadnet_lint: cannot write " << json_path << "\n";
      return 2;
    }
    roadnet::lint::WriteJsonl(json, result);
  }
  return result.UnwaivedCount() > 0 ? 1 : 0;
}
