#ifndef ROADNET_TOOLS_ROADNET_LINT_LINT_H_
#define ROADNET_TOOLS_ROADNET_LINT_LINT_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

// roadnet_lint — project-specific static analysis.
//
// The repo's correctness rests on invariants that a general-purpose
// compiler cannot see: indexes immutable after preprocessing, query
// entry points threading a QueryContext, no edge searches on the query
// path, condvar notifies ordered against their waiter's lifetime. Each
// invariant exists because a concrete bug hit it (DESIGN.md "Static
// analysis & sanitizer matrix" maps rule -> bug); this tool turns the
// prose into a build gate.
//
// Architecture: a Rule is a class with an id ("R1"), a kebab-case name,
// and a per-file scan over a comment/string-stripped view of the source.
// The driver loads files, parses inline waivers, runs every rule, and
// reports findings as text or JSONL. Exit is nonzero if any finding is
// not covered by a reasoned waiver.
//
// Waiver syntax (inside any comment):
//
//   // roadnet-lint: allow(R2 legacy single-threaded wrapper)
//   // roadnet-lint: allow(R2,R3 one waiver may name several rules)
//
// A waiver covers findings of the named rules on its own line and on the
// following line (so a comment line above the offending statement
// works). The reason string is mandatory: a bare allow(R2) is itself a
// finding (rule W1), so every suppression carries a written
// justification reviewers can audit.

namespace roadnet::lint {

// One diagnostic. `waived` findings are reported but do not fail the
// run; the waiver's reason is carried for the report.
struct Finding {
  std::string rule_id;    // "R1".."R12", or "W1" for waiver misuse
  std::string rule_name;  // kebab-case, e.g. "no-find-edge"
  std::string file;       // path as scanned (relative to the lint root)
  int line = 0;           // 1-based
  std::string message;
  bool waived = false;
  std::string waiver_reason;
};

// A parsed allow(...) waiver comment (syntax above).
struct Waiver {
  std::vector<std::string> rule_ids;
  std::string reason;
  int line = 0;  // 1-based line the comment sits on
  bool used = false;
};

// A loaded source file. `code` mirrors `raw` line-for-line with
// comments, string literals, and char literals blanked to spaces, so
// rules never match inside text that the compiler does not execute.
struct SourceFile {
  std::string path;  // relative to the lint root (used by AppliesTo)
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::vector<Waiver> waivers;
  bool is_header = false;
};

// Base class of every check. Rules are stateless; Scan appends findings
// (without waiver resolution — the driver applies waivers afterwards).
class Rule {
 public:
  virtual ~Rule() = default;
  virtual std::string Id() const = 0;
  virtual std::string Name() const = 0;
  // One-line description for --list-rules and the rule catalog.
  virtual std::string Description() const = 0;
  virtual bool AppliesTo(const SourceFile&) const { return true; }
  virtual void Scan(const SourceFile& f, std::vector<Finding>* out) const = 0;
};

// The repo rules, R1..R12 (see rules.cc for the catalog).
std::vector<std::unique_ptr<Rule>> BuildAllRules();

struct LintResult {
  std::vector<Finding> findings;  // waived and unwaived, file order
  int files_scanned = 0;
  int waivers_used = 0;
  int waivers_unused = 0;

  int UnwaivedCount() const;
};

// Loads `root`/`rel_path`, strips comments/strings into `code`, and
// parses waivers. Returns false (with *error set) on I/O failure.
bool LoadSourceFile(const std::string& root, const std::string& rel_path,
                    SourceFile* out, std::string* error);

// Lists the .h/.cc/.cpp files under `root` (relative paths, sorted).
// Paths containing a component named "lint_fixtures" are skipped: the
// fixture tree is deliberately rule-breaking test data.
std::vector<std::string> ListSourceFiles(const std::string& root,
                                         const std::vector<std::string>& dirs);

// Runs `rules` over `files`, resolves waivers, and returns all findings.
// If `only_rules` is non-empty, rules whose Id() is not listed are
// skipped (W1 waiver checks always run).
LintResult RunLint(std::vector<SourceFile>& files,
                   const std::vector<std::unique_ptr<Rule>>& rules,
                   const std::vector<std::string>& only_rules);

// Human-readable report: one `file:line: [id name] message` per finding
// plus a summary line.
void WriteText(std::ostream& out, const LintResult& result);

// Machine-readable JSONL: one record per finding plus a trailing
// summary record (schema validated by scripts/validate_metrics.py).
void WriteJsonl(std::ostream& out, const LintResult& result);

}  // namespace roadnet::lint

#endif  // ROADNET_TOOLS_ROADNET_LINT_LINT_H_
