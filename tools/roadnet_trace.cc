// Offline report over a trace JSONL file written by the query server
// (--trace-out, src/obs/trace.h).
//
//   roadnet_trace --in traces.jsonl [--csv stages.csv] [--top N]
//
// Reads every captured trace, reconstructs per-stage duration
// histograms, and prints the stage table a latency investigation
// starts from: count, p50, p99, and max per lifecycle stage plus the
// end-to-end total. --csv writes the same table machine-readably;
// --top N additionally lists the N slowest requests with their full
// stage decomposition, which is where a tail excursion is localised
// to queueing vs execution vs the socket.
//
// The parser is deliberately a string scanner for the exporter's own
// single-line schema, not a general JSON reader — the two live in one
// repo and validate_metrics.py cross-checks the schema end to end.
//
// Exit status: 0 on success, 1 if the file is unreadable or holds no
// trace records, 2 on usage errors.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "obs/trace.h"
#include "util/flags.h"

namespace {

using namespace roadnet;

int Usage() {
  std::fprintf(stderr,
               "usage: roadnet_trace --in traces.jsonl"
               " [--csv stages.csv] [--top N]\n");
  return 2;
}

// One parsed JSONL record: the fields the report needs, not the full
// schema (counters are validated by validate_metrics.py instead).
struct TraceRecord {
  std::string trace_id;
  std::string status;
  std::string sampled;
  uint64_t total_ns = 0;
  // duration_ns[stage] is 0 when the stage is absent (shed paths skip
  // batch_assembly/execute; only the first request on a connection has
  // an accept stage).
  uint64_t duration_ns[kNumTraceStages] = {};
  bool present[kNumTraceStages] = {};
};

// Scans for `"key":` after `from` and parses the unsigned integer that
// follows. Returns false if the key is absent.
bool FindU64(const std::string& line, const std::string& key, size_t from,
             uint64_t* out, size_t* value_end = nullptr) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = line.find(needle, from);
  if (at == std::string::npos) return false;
  size_t i = at + needle.size();
  if (i >= line.size() || line[i] < '0' || line[i] > '9') return false;
  uint64_t v = 0;
  while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
    v = v * 10 + static_cast<uint64_t>(line[i] - '0');
    ++i;
  }
  *out = v;
  if (value_end != nullptr) *value_end = i;
  return true;
}

// Scans for `"key":"` after `from` and copies the (escape-free) string
// value. The exporter never emits escapes in these fields.
bool FindString(const std::string& line, const std::string& key, size_t from,
                std::string* out) {
  const std::string needle = "\"" + key + "\":\"";
  const size_t at = line.find(needle, from);
  if (at == std::string::npos) return false;
  const size_t begin = at + needle.size();
  const size_t end = line.find('"', begin);
  if (end == std::string::npos) return false;
  *out = line.substr(begin, end - begin);
  return true;
}

std::optional<TraceStage> StageByName(const std::string& name) {
  for (size_t i = 0; i < kNumTraceStages; ++i) {
    const auto stage = static_cast<TraceStage>(i);
    if (name == TraceStageName(stage)) return stage;
  }
  return std::nullopt;
}

bool ParseLine(const std::string& line, TraceRecord* rec) {
  if (!FindString(line, "trace_id", 0, &rec->trace_id)) return false;
  if (!FindU64(line, "total_ns", 0, &rec->total_ns)) return false;
  FindString(line, "status", 0, &rec->status);
  FindString(line, "sampled", 0, &rec->sampled);
  // Stage objects repeat, so walk the line instead of re-searching
  // from the front.
  size_t cursor = line.find("\"stages\":");
  while (cursor != std::string::npos) {
    std::string name;
    const std::string needle = "\"stage\":\"";
    const size_t at = line.find(needle, cursor);
    if (at == std::string::npos) break;
    const size_t begin = at + needle.size();
    const size_t end = line.find('"', begin);
    if (end == std::string::npos) return false;
    name = line.substr(begin, end - begin);
    uint64_t start_ns = 0;
    uint64_t end_ns = 0;
    size_t after = end;
    if (!FindU64(line, "start_ns", after, &start_ns, &after)) return false;
    if (!FindU64(line, "end_ns", after, &end_ns, &after)) return false;
    const auto stage = StageByName(name);
    if (stage.has_value() && end_ns >= start_ns) {
      const auto idx = static_cast<size_t>(*stage);
      rec->duration_ns[idx] = end_ns - start_ns;
      rec->present[idx] = true;
    }
    cursor = after;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const FlagSpec spec{{"in", "csv", "top"}, {}};
  std::string parse_error;
  const auto flags = ParseFlags(argc, argv, 1, spec, &parse_error);
  if (!flags.has_value()) {
    std::fprintf(stderr, "roadnet_trace: %s\n", parse_error.c_str());
    return Usage();
  }
  if (flags->count("in") == 0) return Usage();
  const std::string path = flags->at("in");
  const uint64_t top_n =
      flags->count("top") > 0 ? std::stoull(flags->at("top")) : 0;

  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    std::fprintf(stderr, "roadnet_trace: cannot open %s\n", path.c_str());
    return 1;
  }
  std::vector<TraceRecord> records;
  uint64_t malformed = 0;
  std::string line;
  for (int c = std::fgetc(f); ; c = std::fgetc(f)) {
    if (c != EOF && c != '\n') {
      line.push_back(static_cast<char>(c));
      continue;
    }
    if (!line.empty()) {
      TraceRecord rec;
      if (ParseLine(line, &rec)) {
        records.push_back(std::move(rec));
      } else {
        ++malformed;
      }
      line.clear();
    }
    if (c == EOF) break;
  }
  std::fclose(f);

  if (records.empty()) {
    std::fprintf(stderr, "roadnet_trace: no trace records in %s (%llu"
                 " malformed lines)\n",
                 path.c_str(), static_cast<unsigned long long>(malformed));
    return 1;
  }

  Histogram stage_hist[kNumTraceStages];
  Histogram total_hist;
  for (const TraceRecord& rec : records) {
    total_hist.Record(rec.total_ns);
    for (size_t i = 0; i < kNumTraceStages; ++i) {
      if (rec.present[i]) stage_hist[i].Record(rec.duration_ns[i]);
    }
  }

  std::printf("traces:  %zu captured in %s", records.size(), path.c_str());
  if (malformed > 0) {
    std::printf(" (%llu malformed lines skipped)",
                static_cast<unsigned long long>(malformed));
  }
  std::printf("\n\n");
  std::printf("%-15s %10s %12s %12s %12s\n", "stage", "count", "p50_us",
              "p99_us", "max_us");
  for (size_t i = 0; i < kNumTraceStages; ++i) {
    const Histogram& h = stage_hist[i];
    if (h.Count() == 0) continue;
    std::printf("%-15s %10llu %12.1f %12.1f %12.1f\n",
                TraceStageName(static_cast<TraceStage>(i)),
                static_cast<unsigned long long>(h.Count()),
                h.ValueAtQuantile(0.50) * 1e-3,
                h.ValueAtQuantile(0.99) * 1e-3, h.Max() * 1e-3);
  }
  std::printf("%-15s %10llu %12.1f %12.1f %12.1f\n", "total",
              static_cast<unsigned long long>(total_hist.Count()),
              total_hist.ValueAtQuantile(0.50) * 1e-3,
              total_hist.ValueAtQuantile(0.99) * 1e-3,
              total_hist.Max() * 1e-3);

  if (flags->count("csv") > 0) {
    const std::string csv_path = flags->at("csv");
    std::FILE* csv = std::fopen(csv_path.c_str(), "w");
    if (csv == nullptr) {
      std::fprintf(stderr, "roadnet_trace: cannot write %s\n",
                   csv_path.c_str());
      return 1;
    }
    std::fprintf(csv, "stage,count,p50_us,p99_us,max_us\n");
    for (size_t i = 0; i < kNumTraceStages; ++i) {
      const Histogram& h = stage_hist[i];
      if (h.Count() == 0) continue;
      std::fprintf(csv, "%s,%llu,%.3f,%.3f,%.3f\n",
                   TraceStageName(static_cast<TraceStage>(i)),
                   static_cast<unsigned long long>(h.Count()),
                   h.ValueAtQuantile(0.50) * 1e-3,
                   h.ValueAtQuantile(0.99) * 1e-3, h.Max() * 1e-3);
    }
    std::fprintf(csv, "total,%llu,%.3f,%.3f,%.3f\n",
                 static_cast<unsigned long long>(total_hist.Count()),
                 total_hist.ValueAtQuantile(0.50) * 1e-3,
                 total_hist.ValueAtQuantile(0.99) * 1e-3,
                 total_hist.Max() * 1e-3);
    std::fclose(csv);
    std::printf("\ncsv written to %s\n", csv_path.c_str());
  }

  if (top_n > 0) {
    std::vector<const TraceRecord*> slowest;
    slowest.reserve(records.size());
    for (const TraceRecord& rec : records) slowest.push_back(&rec);
    std::sort(slowest.begin(), slowest.end(),
              [](const TraceRecord* a, const TraceRecord* b) {
                return a->total_ns > b->total_ns;
              });
    if (slowest.size() > top_n) slowest.resize(top_n);
    std::printf("\nslowest %zu:\n", slowest.size());
    for (const TraceRecord* rec : slowest) {
      std::printf("  %s total %.1f us status %s [%s]", rec->trace_id.c_str(),
                  rec->total_ns * 1e-3, rec->status.c_str(),
                  rec->sampled.c_str());
      for (size_t i = 0; i < kNumTraceStages; ++i) {
        if (!rec->present[i]) continue;
        std::printf(" %s=%.1f", TraceStageName(static_cast<TraceStage>(i)),
                    rec->duration_ns[i] * 1e-3);
      }
      std::printf("\n");
    }
  }
  return 0;
}
