// Closed-loop load generator for the roadnet query service.
//
//   roadnet_loadgen --port P --graph graph.bin
//                   [--host 127.0.0.1] [--connections N] [--queries N]
//                   [--workload random|Q1..Q10|knn] [--seed S] [--paths]
//                   [--poi pois.bin (required for knn)]
//                   [--deadline-us D] [--verify-every K]
//                   [--technique any|bidi|ch|alt|hl] [--stats] [--shutdown]
//                   [--trace-sample N] [--slow-us T]
//                   [--rate R] [--arrival poisson|uniform] [--pipeline N]
//
// Opens N concurrent connections and drives them closed-loop (each
// connection keeps exactly one request in flight), replaying either
// random pairs or one of the paper's Q1..Q10 L-infinity workloads
// (Section 4.2). Every K-th response is verified against a local
// Dijkstra oracle — distances must match exactly, and path responses
// must be real paths of the right weight. Reports achieved qps and
// client-observed p50/p99, which include the server's queueing — the
// end-to-end numbers a capacity plan is written against.
//
// --rate switches to OPEN-LOOP mode: requests are emitted on a fixed
// arrival schedule (R requests/second total, Poisson or uniform gaps)
// over pipelined QUERY2 connections, at most --pipeline outstanding per
// connection, and latency is measured from the scheduled arrival — so
// queueing delay under overload shows up instead of being coordinated
// away by waiting clients. Open loop drives point queries on the random
// workload only.
//
// --workload knn drives the kNN / one-to-many endpoints instead: it
// cycles R-set-style buckets — every POI category (the density sweep)
// x k in {1, 4, 10, 50} x method in {bucket-ch, ier} plus one
// one-to-many bucket per category — from random sources, and verifies
// every K-th reply (result set AND distances, vertex-id tie-breaks
// included) against the expanding-Dijkstra kNN oracle.
//
// --trace-sample / --slow-us retune the server's request tracer over
// the wire (TRACE_CONFIG frame) before the workload starts, and the
// post-run --stats report then includes the server's per-stage latency
// breakdown (accept -> reply_write) and live gauges — the decomposition
// the client-side percentiles cannot see.
//
// Exit status: 0 on success, 1 on any oracle mismatch or transport
// error, 2 on usage errors.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "dijkstra/dijkstra.h"
#include "graph/graph.h"
#include "io/serialize.h"
#include "obs/histogram.h"
#include "obs/trace.h"
#include "poi/poi_set.h"
#include "routing/knn.h"
#include "routing/path.h"
#include "server/client.h"
#include "server/openloop.h"
#include "server/wire.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/query_gen.h"

namespace {

using namespace roadnet;

int Usage() {
  std::fprintf(
      stderr,
      "usage: roadnet_loadgen --port P --graph graph.bin\n"
      "  [--host 127.0.0.1] [--connections N] [--queries N]\n"
      "  [--workload random|Q1..Q10|knn] [--seed S] [--paths]\n"
      "  [--poi pois.bin (required for --workload knn)]\n"
      "  [--deadline-us D] [--verify-every K (0=off)]\n"
      "  [--technique any|bidi|ch|alt|hl] [--stats] [--shutdown]\n"
      "  [--trace-sample N (head-sample 1-in-N)] [--slow-us T (0=all)]\n"
      "  [--rate R (req/s => open loop)] [--arrival poisson|uniform]\n"
      "  [--pipeline N (max outstanding per connection, default 16)]\n");
  return 2;
}

// One connection thread's tallies, merged after the join.
struct WorkerResult {
  Histogram latency;  // client-observed, nanoseconds
  uint64_t ok = 0;
  uint64_t unreachable = 0;
  uint64_t overloaded = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t draining = 0;
  uint64_t bad_request = 0;
  uint64_t transport_errors = 0;
  uint64_t verified = 0;
  uint64_t mismatches = 0;
  std::string first_problem;

  void CountStatus(wire::Status s) {
    switch (s) {
      case wire::Status::kOk: ++ok; break;
      case wire::Status::kUnreachable: ++unreachable; break;
      case wire::Status::kOverloaded: ++overloaded; break;
      case wire::Status::kDeadlineExceeded: ++deadline_exceeded; break;
      case wire::Status::kShuttingDown: ++draining; break;
      case wire::Status::kBadRequest: ++bad_request; break;
    }
  }
};

// One request of the knn workload: a (bucket, source) pair. otm marks
// the one-to-many buckets (k and method unused there).
struct KnnWork {
  bool otm = false;
  wire::KnnMethod method = wire::KnnMethod::kBucketCh;
  uint32_t category = 0;
  uint32_t k = 0;
  VertexId source = 0;
};

uint64_t FlagOr(const FlagMap& flags, const std::string& name,
                uint64_t fallback) {
  auto it = flags.find(name);
  return it == flags.end() ? fallback : std::stoull(it->second);
}

std::string FlagOr(const FlagMap& flags, const std::string& name,
                   const std::string& fallback) {
  auto it = flags.find(name);
  return it == flags.end() ? fallback : it->second;
}

}  // namespace

int main(int argc, char** argv) {
  const FlagSpec spec{{"host", "port", "graph", "connections", "queries",
                       "workload", "seed", "poi", "deadline-us",
                       "verify-every", "technique", "trace-sample",
                       "slow-us", "rate", "arrival", "pipeline"},
                      {"paths", "stats", "shutdown"}};
  std::string parse_error;
  const auto flags = ParseFlags(argc, argv, 1, spec, &parse_error);
  if (!flags.has_value()) {
    std::fprintf(stderr, "roadnet_loadgen: %s\n", parse_error.c_str());
    return Usage();
  }
  if (flags->count("port") == 0 || flags->count("graph") == 0) {
    return Usage();
  }
  const std::string host = FlagOr(*flags, "host", "127.0.0.1");
  const uint16_t port =
      static_cast<uint16_t>(std::stoul(flags->at("port")));
  const size_t connections = FlagOr(*flags, "connections", 4);
  const size_t total_queries = FlagOr(*flags, "queries", 1000);
  const std::string workload = FlagOr(*flags, "workload", "random");
  const uint64_t seed = FlagOr(*flags, "seed", 1);
  const uint64_t deadline_us = FlagOr(*flags, "deadline-us", 0);
  const uint64_t verify_every = FlagOr(*flags, "verify-every", 10);
  const std::string technique = FlagOr(*flags, "technique", "any");
  const bool use_paths = flags->count("paths") > 0;
  if (connections == 0 || total_queries == 0) return Usage();
  if (technique != "any" && wire::TechniqueId(technique) == 0) {
    std::fprintf(stderr, "unknown --technique %s\n", technique.c_str());
    return Usage();
  }
  const bool open_loop = flags->count("rate") > 0;
  const std::string arrival = FlagOr(*flags, "arrival", "poisson");
  const size_t pipeline = FlagOr(*flags, "pipeline", 16);
  if (open_loop) {
    if (workload != "random") {
      std::fprintf(stderr,
                   "--rate (open loop) drives point queries on the random"
                   " workload only\n");
      return Usage();
    }
    if (arrival != "poisson" && arrival != "uniform") {
      std::fprintf(stderr, "unknown --arrival %s\n", arrival.c_str());
      return Usage();
    }
    if (pipeline == 0 || std::stod(flags->at("rate")) <= 0) return Usage();
  }

  std::string error;
  auto g = ReadGraphFile(flags->at("graph"), &error);
  if (!g.has_value()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  // The replayed query stream: random pairs, one of the paper's
  // L-infinity buckets, or the knn bucket sweep. A short bucket is
  // cycled to fill the run.
  const bool knn_mode = workload == "knn";
  std::vector<std::pair<VertexId, VertexId>> queries;
  std::vector<KnnWork> knn_work;
  std::unique_ptr<PoiSet> pois;
  // Per-category vertex lists for the verification oracle.
  std::vector<std::vector<VertexId>> category_vertices;
  if (knn_mode) {
    auto it = flags->find("poi");
    if (it == flags->end()) {
      std::fprintf(stderr, "--workload knn requires --poi\n");
      return Usage();
    }
    pois = PoiSet::DeserializeFromFile(it->second, &error);
    if (pois == nullptr) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    if (pois->NumVertices() != g->NumVertices()) {
      std::fprintf(stderr, "--poi was placed on a different graph\n");
      return 1;
    }
    category_vertices.reserve(pois->NumCategories());
    for (uint32_t c = 0; c < pois->NumCategories(); ++c) {
      const auto span = pois->Vertices(c);
      category_vertices.emplace_back(span.begin(), span.end());
    }
    // R-set-style sweep: every category (density) x k x method, plus a
    // one-to-many bucket per category.
    std::vector<KnnWork> buckets;
    const uint32_t ks[] = {1, 4, 10, 50};
    for (uint32_t c = 0; c < pois->NumCategories(); ++c) {
      for (uint32_t k : ks) {
        for (auto m : {wire::KnnMethod::kBucketCh, wire::KnnMethod::kIer}) {
          buckets.push_back({false, m, c, k, 0});
        }
      }
      buckets.push_back({true, wire::KnnMethod::kBucketCh, c, 0, 0});
    }
    Rng rng(seed);
    knn_work.reserve(total_queries);
    for (size_t i = 0; i < total_queries; ++i) {
      KnnWork w = buckets[i % buckets.size()];
      w.source = static_cast<VertexId>(rng.NextBelow(g->NumVertices()));
      knn_work.push_back(w);
    }
  } else if (workload == "random") {
    // Open loop generates its own (seeded) stream inside RunOpenLoop.
    if (!open_loop) {
      Rng rng(seed);
      queries.reserve(total_queries);
      for (size_t i = 0; i < total_queries; ++i) {
        queries.emplace_back(
            static_cast<VertexId>(rng.NextBelow(g->NumVertices())),
            static_cast<VertexId>(rng.NextBelow(g->NumVertices())));
      }
    }
  } else {
    const auto sets = GenerateLInfQuerySets(*g, total_queries, seed);
    const QuerySet* found = nullptr;
    for (const QuerySet& s : sets) {
      if (s.name == workload) found = &s;
    }
    if (found == nullptr || found->pairs.empty()) {
      std::fprintf(stderr,
                   "workload %s is unknown or empty on this graph"
                   " (expected random or Q1..Q10)\n",
                   workload.c_str());
      return 1;
    }
    queries.reserve(total_queries);
    for (size_t i = 0; i < total_queries; ++i) {
      queries.push_back(found->pairs[i % found->pairs.size()]);
    }
  }

  // Retune the server's tracer before any load arrives, so the whole
  // run is recorded under the requested sampling policy.
  if (flags->count("trace-sample") > 0 || flags->count("slow-us") > 0) {
    auto admin = BlockingClient::Connect(host, port, &error);
    if (admin == nullptr) {
      std::fprintf(stderr, "trace config connect: %s\n", error.c_str());
      return 1;
    }
    wire::TraceConfigRequest cfg;
    if (flags->count("trace-sample") > 0) {
      cfg.sample_every = FlagOr(*flags, "trace-sample", 0);
    }
    if (flags->count("slow-us") > 0) {
      cfg.slow_micros = FlagOr(*flags, "slow-us", kTraceSlowDisabled);
    }
    wire::TraceConfigResponse effective;
    if (!admin->ConfigureTracing(cfg, &effective, &error)) {
      std::fprintf(stderr, "trace config: %s\n", error.c_str());
      return 1;
    }
    std::string sampling =
        effective.sample_every == 0
            ? "head sampling off"
            : "sample 1-in-" + std::to_string(effective.sample_every);
    std::string slow =
        effective.slow_micros == kTraceSlowDisabled
            ? "slow capture off"
            : "slow threshold " + std::to_string(effective.slow_micros) +
                  " us";
    std::printf("tracing:     %s, %s\n", sampling.c_str(), slow.c_str());
  }

  if (open_loop) {
    OpenLoopOptions olo;
    olo.host = host;
    olo.port = port;
    olo.connections = connections;
    olo.pipeline = pipeline;
    olo.rate = std::stod(flags->at("rate"));
    olo.poisson = arrival == "poisson";
    olo.total_requests = total_queries;
    olo.seed = seed;
    olo.num_vertices = g->NumVertices();
    olo.technique = wire::TechniqueId(technique);
    olo.kind = use_paths ? wire::QueryKind::kPath
                         : wire::QueryKind::kDistance;
    olo.deadline_micros = deadline_us;
    olo.verify_every = verify_every;
    const OpenLoopResult res = RunOpenLoop(olo);

    // Oracle-check the recorded samples after the run: verification off
    // the driver thread keeps the arrival schedule honest.
    uint64_t verified = 0, mismatches = 0;
    std::string first_problem = res.error;
    if (verify_every > 0) {
      Dijkstra oracle(*g);
      for (const OpenLoopResult::VerifySample& sample : res.samples) {
        const auto status = static_cast<wire::Status>(sample.status);
        if (status != wire::Status::kOk &&
            status != wire::Status::kUnreachable) {
          continue;  // shed before execution: nothing to check
        }
        ++verified;
        const Distance truth = oracle.Run(sample.source, sample.target);
        const Distance got = status == wire::Status::kOk ? sample.distance
                                                         : kInfDistance;
        if (got != truth) {
          ++mismatches;
          if (first_problem.empty()) {
            first_problem =
                "oracle mismatch for " + std::to_string(sample.source) +
                " -> " + std::to_string(sample.target) + ": server " +
                std::to_string(got) + ", oracle " + std::to_string(truth);
          }
        }
      }
    }

    auto count = [&res](wire::Status s) {
      return res.status_counts[static_cast<uint8_t>(s)];
    };
    std::printf("open loop:   %.0f req/s offered (%s), %llu requests over"
                " %zu connections, pipeline %zu, kind %s\n",
                res.offered_qps, arrival.c_str(),
                static_cast<unsigned long long>(res.sent), connections,
                pipeline, use_paths ? "path" : "distance");
    std::printf("completed:   %llu (%llu ok, %llu unreachable)\n",
                static_cast<unsigned long long>(res.received),
                static_cast<unsigned long long>(count(wire::Status::kOk)),
                static_cast<unsigned long long>(
                    count(wire::Status::kUnreachable)));
    std::printf("shed:        %llu overloaded, %llu deadline, %llu draining,"
                " %llu bad, %llu connection errors\n",
                static_cast<unsigned long long>(
                    count(wire::Status::kOverloaded)),
                static_cast<unsigned long long>(
                    count(wire::Status::kDeadlineExceeded)),
                static_cast<unsigned long long>(
                    count(wire::Status::kShuttingDown)),
                static_cast<unsigned long long>(
                    count(wire::Status::kBadRequest)),
                static_cast<unsigned long long>(res.connection_errors));
    std::printf("verified:    %llu against the Dijkstra oracle,"
                " %llu mismatches\n",
                static_cast<unsigned long long>(verified),
                static_cast<unsigned long long>(mismatches));
    std::printf("throughput:  %.0f achieved req/s (wall %.3f s)\n",
                res.achieved_qps, res.elapsed_ns * 1e-9);
    std::printf("latency:     from scheduled arrival p50 %.1f us,"
                " p99 %.1f us, max %.1f us\n",
                res.latency.ValueAtQuantile(0.50) * 1e-3,
                res.latency.ValueAtQuantile(0.99) * 1e-3,
                res.latency.Max() * 1e-3);
    if (!first_problem.empty()) {
      std::fprintf(stderr, "problem:     %s\n", first_problem.c_str());
    }

    if (flags->count("stats") > 0 || flags->count("shutdown") > 0) {
      auto admin = BlockingClient::Connect(host, port, &error);
      if (admin == nullptr) {
        std::fprintf(stderr, "admin connect: %s\n", error.c_str());
        return 1;
      }
      if (flags->count("stats") > 0) {
        wire::StatsResponse s;
        if (!admin->GetStats(&s, &error)) {
          std::fprintf(stderr, "stats: %s\n", error.c_str());
          return 1;
        }
        std::printf("server:      served %llu, shed %llu/%llu/%llu,"
                    " reaped %llu idle, write queues %llu bytes\n",
                    static_cast<unsigned long long>(s.served),
                    static_cast<unsigned long long>(s.shed_overloaded),
                    static_cast<unsigned long long>(s.shed_deadline),
                    static_cast<unsigned long long>(s.shed_draining),
                    static_cast<unsigned long long>(s.idle_reaped),
                    static_cast<unsigned long long>(s.write_queue_bytes));
      }
      if (flags->count("shutdown") > 0) {
        if (!admin->SendShutdown(&error)) {
          std::fprintf(stderr, "shutdown: %s\n", error.c_str());
          return 1;
        }
        std::printf("shutdown:    acknowledged, server draining\n");
      }
    }
    return (!res.ok || mismatches > 0) ? 1 : 0;
  }

  std::vector<WorkerResult> results(connections);
  std::vector<std::thread> threads;
  threads.reserve(connections);
  Timer wall;
  for (size_t tid = 0; tid < connections; ++tid) {
    threads.emplace_back([&, tid] {
      WorkerResult& r = results[tid];
      std::string err;
      auto client = BlockingClient::Connect(host, port, &err);
      if (client == nullptr) {
        ++r.transport_errors;
        r.first_problem = "connect: " + err;
        return;
      }
      if (knn_mode) {
        for (size_t i = tid; i < knn_work.size(); i += connections) {
          const KnnWork& w = knn_work[i];
          wire::KnnResponse resp;
          Timer timer;
          bool sent;
          if (w.otm) {
            wire::OneToManyRequest req;
            req.category = w.category;
            req.source = w.source;
            req.deadline_micros = deadline_us;
            sent = client->OneToMany(req, &resp, &err);
          } else {
            wire::KnnRequest req;
            req.method = w.method;
            req.category = w.category;
            req.k = w.k;
            req.source = w.source;
            req.deadline_micros = deadline_us;
            sent = client->Knn(req, &resp, &err);
          }
          if (!sent) {
            ++r.transport_errors;
            if (r.first_problem.empty()) r.first_problem = "knn: " + err;
            return;
          }
          r.latency.Record(timer.ElapsedNanos());
          r.CountStatus(resp.status);
          if (resp.status == wire::Status::kOk && verify_every > 0 &&
              i % verify_every == 0) {
            ++r.verified;
            // Exact result-set check: same POIs, same distances, same
            // (distance, vertex id) order as the expanding-Dijkstra
            // oracle. One-to-many must equal kNN with k = |category|.
            const auto& cat = category_vertices[w.category];
            const size_t want_k = w.otm ? cat.size() : w.k;
            const auto truth = KnnByDijkstra(*g, cat, w.source, want_k);
            bool bad = truth.size() != resp.entries.size();
            for (size_t j = 0; !bad && j < truth.size(); ++j) {
              bad = truth[j].poi != resp.entries[j].first ||
                    truth[j].dist != resp.entries[j].second;
            }
            if (bad) {
              ++r.mismatches;
              if (r.first_problem.empty()) {
                r.first_problem =
                    "knn oracle mismatch: category " +
                    std::to_string(w.category) + ", k " +
                    std::to_string(want_k) + ", source " +
                    std::to_string(w.source) + " (" +
                    std::to_string(resp.entries.size()) + " entries, oracle " +
                    std::to_string(truth.size()) + ")";
              }
            }
          }
        }
        return;
      }

      // Each thread owns its oracle: Dijkstra scratch is per-instance.
      std::unique_ptr<Dijkstra> oracle;
      if (verify_every > 0) oracle = std::make_unique<Dijkstra>(*g);

      for (size_t i = tid; i < queries.size(); i += connections) {
        wire::QueryRequest req;
        req.technique = wire::TechniqueId(technique);
        req.kind = use_paths ? wire::QueryKind::kPath
                             : wire::QueryKind::kDistance;
        req.source = queries[i].first;
        req.target = queries[i].second;
        req.deadline_micros = deadline_us;
        wire::QueryResponse resp;
        Timer timer;
        if (!client->Query(req, &resp, &err)) {
          ++r.transport_errors;
          if (r.first_problem.empty()) r.first_problem = "query: " + err;
          return;  // connection is gone (e.g. server drained)
        }
        r.latency.Record(timer.ElapsedNanos());
        r.CountStatus(resp.status);

        const bool answered = resp.status == wire::Status::kOk ||
                              resp.status == wire::Status::kUnreachable;
        if (oracle != nullptr && answered && i % verify_every == 0) {
          ++r.verified;
          const Distance truth = oracle->Run(req.source, req.target);
          const Distance got = resp.status == wire::Status::kOk
                                   ? resp.distance
                                   : kInfDistance;
          bool bad = got != truth;
          if (!bad && use_paths && resp.status == wire::Status::kOk) {
            const Path& p = resp.path;
            bad = p.empty() || p.front() != req.source ||
                  p.back() != req.target || !IsValidPath(*g, p) ||
                  PathWeight(*g, p) != truth;
          }
          if (bad) {
            ++r.mismatches;
            if (r.first_problem.empty()) {
              r.first_problem =
                  "oracle mismatch for " + std::to_string(req.source) +
                  " -> " + std::to_string(req.target) + ": server " +
                  std::to_string(got) + ", oracle " + std::to_string(truth);
            }
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_seconds = wall.ElapsedSeconds();

  WorkerResult total;
  for (const WorkerResult& r : results) {
    total.latency.Merge(r.latency);
    total.ok += r.ok;
    total.unreachable += r.unreachable;
    total.overloaded += r.overloaded;
    total.deadline_exceeded += r.deadline_exceeded;
    total.draining += r.draining;
    total.bad_request += r.bad_request;
    total.transport_errors += r.transport_errors;
    total.verified += r.verified;
    total.mismatches += r.mismatches;
    if (total.first_problem.empty()) total.first_problem = r.first_problem;
  }
  const uint64_t completed = total.latency.Count();

  std::printf("workload:    %s, %zu queries over %zu connections, kind %s\n",
              workload.c_str(),
              knn_mode ? knn_work.size() : queries.size(), connections,
              knn_mode ? "knn+one_to_many"
                       : (use_paths ? "path" : "distance"));
  std::printf("completed:   %llu (%llu ok, %llu unreachable)\n",
              static_cast<unsigned long long>(completed),
              static_cast<unsigned long long>(total.ok),
              static_cast<unsigned long long>(total.unreachable));
  std::printf("shed:        %llu overloaded, %llu deadline, %llu draining,"
              " %llu bad, %llu transport errors\n",
              static_cast<unsigned long long>(total.overloaded),
              static_cast<unsigned long long>(total.deadline_exceeded),
              static_cast<unsigned long long>(total.draining),
              static_cast<unsigned long long>(total.bad_request),
              static_cast<unsigned long long>(total.transport_errors));
  std::printf("verified:    %llu against the Dijkstra oracle,"
              " %llu mismatches\n",
              static_cast<unsigned long long>(total.verified),
              static_cast<unsigned long long>(total.mismatches));
  std::printf("throughput:  %.0f queries/s (wall %.3f s)\n",
              wall_seconds > 0 ? completed / wall_seconds : 0.0,
              wall_seconds);
  std::printf("latency:     client p50 %.1f us, p99 %.1f us, max %.1f us\n",
              total.latency.ValueAtQuantile(0.50) * 1e-3,
              total.latency.ValueAtQuantile(0.99) * 1e-3,
              total.latency.Max() * 1e-3);
  if (!total.first_problem.empty()) {
    std::fprintf(stderr, "problem:     %s\n", total.first_problem.c_str());
  }

  if (flags->count("stats") > 0 || flags->count("shutdown") > 0) {
    auto admin = BlockingClient::Connect(host, port, &error);
    if (admin == nullptr) {
      std::fprintf(stderr, "admin connect: %s\n", error.c_str());
      return 1;
    }
    if (flags->count("stats") > 0) {
      wire::StatsResponse s;
      if (!admin->GetStats(&s, &error)) {
        std::fprintf(stderr, "stats: %s\n", error.c_str());
        return 1;
      }
      std::printf("server:      served %llu, shed %llu/%llu/%llu, bad %llu,"
                  " conns %llu accepted %llu rejected\n",
                  static_cast<unsigned long long>(s.served),
                  static_cast<unsigned long long>(s.shed_overloaded),
                  static_cast<unsigned long long>(s.shed_deadline),
                  static_cast<unsigned long long>(s.shed_draining),
                  static_cast<unsigned long long>(s.bad_requests),
                  static_cast<unsigned long long>(s.connections_accepted),
                  static_cast<unsigned long long>(s.connections_rejected));
      std::printf("server lat:  distance p50 %.1f us p99 %.1f us,"
                  " path p50 %.1f us p99 %.1f us\n",
                  s.distance_p50_ns * 1e-3, s.distance_p99_ns * 1e-3,
                  s.path_p50_ns * 1e-3, s.path_p99_ns * 1e-3);
      std::printf("server live: queue depth %llu, in-flight batches %llu,"
                  " open connections %llu\n",
                  static_cast<unsigned long long>(s.queue_depth),
                  static_cast<unsigned long long>(s.in_flight_batches),
                  static_cast<unsigned long long>(s.open_connections));
      if (s.traces_finished > 0) {
        std::printf("traces:      %llu finished, %llu captured"
                    " (%llu slow), %llu dropped\n",
                    static_cast<unsigned long long>(s.traces_finished),
                    static_cast<unsigned long long>(s.traces_captured),
                    static_cast<unsigned long long>(s.traces_slow),
                    static_cast<unsigned long long>(s.traces_dropped));
      }
      if (!s.stages.empty()) {
        std::printf("stage breakdown (server-side, all finished requests):\n");
        std::printf("  %-15s %10s %12s %12s\n", "stage", "count", "p50_us",
                    "p99_us");
        for (const wire::StageStatWire& st : s.stages) {
          std::printf("  %-15s %10llu %12.1f %12.1f\n",
                      TraceStageName(static_cast<TraceStage>(st.stage)),
                      static_cast<unsigned long long>(st.count),
                      st.p50_ns * 1e-3, st.p99_ns * 1e-3);
        }
      }
    }
    if (flags->count("shutdown") > 0) {
      if (!admin->SendShutdown(&error)) {
        std::fprintf(stderr, "shutdown: %s\n", error.c_str());
        return 1;
      }
      std::printf("shutdown:    acknowledged, server draining\n");
    }
  }

  return (total.mismatches > 0 || total.transport_errors > 0) ? 1 : 0;
}
