// Command-line front end for the library: generate or convert networks,
// run CH preprocessing once, persist the index, and serve queries — the
// deployment workflow behind the paper's "online map services" setting.
//
//   roadnet_cli generate   --vertices N [--seed S] --out graph.bin
//   roadnet_cli convert    --gr FILE --co FILE --out graph.bin
//   roadnet_cli export     --graph graph.bin --gr FILE --co FILE
//   roadnet_cli preprocess --graph graph.bin --out index.ch
//   roadnet_cli stats      --graph graph.bin [--index index.ch]
//   roadnet_cli query      --graph graph.bin --index index.ch
//                          --from S --to T [--path] [--metrics-out FILE]
//   roadnet_cli batch-query --graph graph.bin --index index.ch
//                          (--queries FILE | --random N [--seed S])
//                          [--threads T] [--paths] [--metrics-out FILE]
//   roadnet_cli poi        --graph graph.bin --out pois.bin [--seed S]
//                          [--categories "name:density,..."]
//   roadnet_cli serve      --graph graph.bin [--index index.ch]
//                          [--poi pois.bin]
//                          [--technique bidi|ch|alt|hl] [--port P]
//                          [--port-file FILE] [--threads T]
//                          [--queue-cap N] [--max-conns N]
//                          [--metrics-out FILE] [--trace-out FILE]
//                          [--trace-sample N] [--slow-us T] [--trace-seed S]
//
// Unknown flags are errors (util/flags.h), so typos fail loudly instead
// of being silently ignored.
//
// --metrics-out snapshots the run's metrics (latency percentiles,
// operation counters) to FILE: JSONL by default, CSV if FILE ends in
// ".csv". scripts/validate_metrics.py schema-checks the JSONL form.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ch/ch_index.h"
#include "engine/query_engine.h"
#include "graph/connectivity.h"
#include "graph/dimacs.h"
#include "graph/generator.h"
#include "io/serialize.h"
#include "knn/ier.h"
#include "knn/knn_index.h"
#include "obs/metrics.h"
#include "poi/poi_set.h"
#include "server/index_factory.h"
#include "server/server.h"
#include "server/wire.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace roadnet;

int Usage() {
  std::fprintf(
      stderr,
      "usage: roadnet_cli"
      " <generate|convert|export|preprocess|poi|stats|query|batch-query|"
      "serve> [flags]\n"
      "  generate   --vertices N [--seed S] --out graph.bin\n"
      "  convert    --gr FILE --co FILE --out graph.bin\n"
      "  export     --graph graph.bin --gr FILE --co FILE\n"
      "  preprocess --graph graph.bin --out index.ch\n"
      "  poi        --graph graph.bin --out pois.bin [--seed S]\n"
      "             [--categories \"name:density,...\"]\n"
      "    Places seeded POI categories on the graph (density = fraction\n"
      "    of vertices) and writes the checksummed POI container.\n"
      "  stats      --graph graph.bin [--index index.ch]\n"
      "  query      --graph graph.bin --index index.ch --from S --to T"
      " [--path] [--metrics-out FILE]\n"
      "  batch-query --graph graph.bin --index index.ch"
      " (--queries FILE | --random N [--seed S])\n"
      "             [--threads T] [--paths] [--metrics-out FILE]\n"
      "    FILE holds one \"source target\" pair per line.\n"
      "  serve      --graph graph.bin [--index index.ch] [--poi pois.bin]"
      " [--technique bidi|ch|alt|hl]\n"
      "    --poi enables the kNN / one-to-many endpoints (bucket-CH and\n"
      "    IER backends built at startup from the POI container).\n"
      "             [--port P] [--port-file FILE] [--threads T]\n"
      "             [--queue-cap N] [--max-conns N] [--loops L]\n"
      "             [--idle-timeout-ms T] [--write-soft-cap B]\n"
      "             [--write-hard-cap B] [--metrics-out FILE]\n"
      "             [--trace-out FILE] [--trace-sample N] [--slow-us T]\n"
      "             [--trace-seed S]\n"
      "    Runs the TCP query service until SIGINT or a SHUTDOWN frame,\n"
      "    then drains in-flight requests and exits.\n"
      "    --metrics-out writes JSONL metrics (CSV if FILE ends in .csv).\n"
      "    --trace-out writes captured request traces as JSONL; capture\n"
      "    every Nth request (--trace-sample) plus everything slower than\n"
      "    T microseconds (--slow-us; 0 captures all). roadnet_trace\n"
      "    renders the per-stage breakdown.\n");
  return 2;
}

std::optional<Graph> LoadGraph(
    const std::map<std::string, std::string>& flags) {
  auto it = flags.find("graph");
  if (it == flags.end()) {
    std::fprintf(stderr, "missing --graph\n");
    return std::nullopt;
  }
  std::string error;
  auto g = ReadGraphFile(it->second, &error);
  if (!g.has_value()) std::fprintf(stderr, "%s\n", error.c_str());
  return g;
}

int Generate(const std::map<std::string, std::string>& flags) {
  GeneratorConfig config;
  if (auto it = flags.find("vertices"); it != flags.end()) {
    config.target_vertices = std::stoul(it->second);
  }
  if (auto it = flags.find("seed"); it != flags.end()) {
    config.seed = std::stoull(it->second);
  }
  auto out = flags.find("out");
  if (out == flags.end()) return Usage();
  Graph g = GenerateRoadNetwork(config);
  std::string error;
  if (!WriteGraphFile(g, out->second, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %s: %u vertices, %zu edges\n", out->second.c_str(),
              g.NumVertices(), g.NumEdges());
  return 0;
}

int Convert(const std::map<std::string, std::string>& flags) {
  auto gr = flags.find("gr");
  auto co = flags.find("co");
  auto out = flags.find("out");
  if (gr == flags.end() || co == flags.end() || out == flags.end()) {
    return Usage();
  }
  std::string error;
  auto g = ReadDimacsFiles(gr->second, co->second, &error);
  if (!g.has_value()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  if (!WriteGraphFile(*g, out->second, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("converted: %u vertices, %zu edges\n", g->NumVertices(),
              g->NumEdges());
  return 0;
}

int Export(const std::map<std::string, std::string>& flags) {
  auto gr = flags.find("gr");
  auto co = flags.find("co");
  if (gr == flags.end() || co == flags.end()) return Usage();
  auto g = LoadGraph(flags);
  if (!g.has_value()) return 1;
  std::ofstream gr_out(gr->second), co_out(co->second);
  if (!gr_out || !co_out) {
    std::fprintf(stderr, "cannot open output files\n");
    return 1;
  }
  WriteDimacs(*g, gr_out, co_out);
  std::printf("exported %u vertices to %s / %s\n", g->NumVertices(),
              gr->second.c_str(), co->second.c_str());
  return 0;
}

int Preprocess(const std::map<std::string, std::string>& flags) {
  auto out = flags.find("out");
  if (out == flags.end()) return Usage();
  auto g = LoadGraph(flags);
  if (!g.has_value()) return 1;
  Timer timer;
  ChIndex ch(*g);
  std::printf("CH preprocessing: %.2f s, %zu shortcuts (v3 rank-space "
              "layout)\n",
              timer.ElapsedSeconds(), ch.NumShortcuts());
  std::ofstream file(out->second, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", out->second.c_str());
    return 1;
  }
  ch.Serialize(file);
  std::printf("wrote %s (%.1f MiB)\n", out->second.c_str(),
              ch.IndexBytes() / (1024.0 * 1024.0));
  return 0;
}

int Poi(const std::map<std::string, std::string>& flags) {
  auto out = flags.find("out");
  if (out == flags.end()) return Usage();
  auto g = LoadGraph(flags);
  if (!g.has_value()) return 1;
  PoiConfig config;
  // Default sweep mirrors the paper's R-set selectivities: one dense and
  // one sparse category per power of ten.
  std::string spec = "restaurant:0.01,fuel:0.001,hotel:0.0001";
  if (auto it = flags.find("categories"); it != flags.end()) {
    spec = it->second;
  }
  std::string error;
  if (!ParsePoiCategories(spec, &config.categories, &error)) {
    std::fprintf(stderr, "--categories: %s\n", error.c_str());
    return 1;
  }
  if (auto it = flags.find("seed"); it != flags.end()) {
    config.seed = std::stoull(it->second);
  }
  const PoiSet pois = PoiSet::Generate(*g, config);
  if (!pois.SerializeToFile(out->second, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %s: %zu POIs in %u categories\n", out->second.c_str(),
              pois.NumPois(), pois.NumCategories());
  for (uint32_t c = 0; c < pois.NumCategories(); ++c) {
    std::printf("  %-12s %zu\n", pois.CategoryName(c).c_str(),
                pois.Vertices(c).size());
  }
  return 0;
}

int Stats(const std::map<std::string, std::string>& flags) {
  auto g = LoadGraph(flags);
  if (!g.has_value()) return 1;
  std::printf("vertices:  %u\n", g->NumVertices());
  std::printf("edges:     %zu\n", g->NumEdges());
  std::printf("connected: %s\n", IsConnected(*g) ? "yes" : "no");
  const Rect& b = g->Bounds();
  std::printf("bounds:    [%d, %d] x [%d, %d]\n", b.min_x, b.max_x, b.min_y,
              b.max_y);
  if (auto it = flags.find("index"); it != flags.end()) {
    std::ifstream file(it->second, std::ios::binary);
    std::string error;
    auto ch = ChIndex::Deserialize(*g, file, &error);
    if (ch == nullptr) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("CH index:  %zu shortcuts, %.1f MiB\n", ch->NumShortcuts(),
                ch->IndexBytes() / (1024.0 * 1024.0));
  }
  return 0;
}

int Query(const std::map<std::string, std::string>& flags) {
  auto index_flag = flags.find("index");
  auto from = flags.find("from");
  auto to = flags.find("to");
  if (index_flag == flags.end() || from == flags.end() || to == flags.end()) {
    return Usage();
  }
  auto g = LoadGraph(flags);
  if (!g.has_value()) return 1;
  std::ifstream file(index_flag->second, std::ios::binary);
  std::string error;
  auto ch = ChIndex::Deserialize(*g, file, &error);
  if (ch == nullptr) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  const VertexId s = static_cast<VertexId>(std::stoul(from->second));
  const VertexId t = static_cast<VertexId>(std::stoul(to->second));
  if (s >= g->NumVertices() || t >= g->NumVertices()) {
    std::fprintf(stderr, "vertex ids must be < %u\n", g->NumVertices());
    return 1;
  }
  Timer timer;
  const Distance d = ch->DistanceQuery(s, t);
  const double micros = timer.ElapsedMicros();
  QueryCounters counters = ch->ContextCounters();
  std::printf("distance %u -> %u: ", s, t);
  if (d == kInfDistance) {
    std::printf("unreachable");
  } else {
    std::printf("%llu", static_cast<unsigned long long>(d));
  }
  std::printf("  (%.1f us)\n", micros);
  if (flags.count("path") && d != kInfDistance) {
    const Path path = ch->PathQuery(s, t);
    counters += ch->ContextCounters();
    std::printf("path (%zu vertices):", path.size());
    for (VertexId v : path) std::printf(" %u", v);
    std::printf("\n");
  }
  if (auto it = flags.find("metrics-out"); it != flags.end()) {
    MetricsRegistry metrics;
    const std::vector<std::pair<std::string, std::string>> labels = {
        {"command", "query"}, {"method", "CH"}};
    metrics.Add("distance",
                d == kInfDistance ? std::numeric_limits<double>::infinity()
                                  : static_cast<double>(d),
                labels);
    metrics.Add("latency_micros", micros, labels);
    metrics.AddCounters(counters, labels);
    if (!metrics.WriteFile(it->second)) {
      std::fprintf(stderr, "cannot write %s\n", it->second.c_str());
      return 1;
    }
    std::printf("metrics:  wrote %zu points to %s\n", metrics.points().size(),
                it->second.c_str());
  }
  return 0;
}

int BatchQuery(const std::map<std::string, std::string>& flags) {
  auto index_flag = flags.find("index");
  if (index_flag == flags.end()) return Usage();
  auto g = LoadGraph(flags);
  if (!g.has_value()) return 1;
  std::ifstream file(index_flag->second, std::ios::binary);
  std::string error;
  auto ch = ChIndex::Deserialize(*g, file, &error);
  if (ch == nullptr) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  // Queries: either a file of "source target" lines or N random pairs.
  std::vector<std::pair<VertexId, VertexId>> queries;
  if (auto it = flags.find("queries"); it != flags.end()) {
    std::ifstream in(it->second);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", it->second.c_str());
      return 1;
    }
    unsigned long s = 0, t = 0;
    while (in >> s >> t) {
      if (s >= g->NumVertices() || t >= g->NumVertices()) {
        std::fprintf(stderr, "vertex ids must be < %u\n", g->NumVertices());
        return 1;
      }
      queries.emplace_back(static_cast<VertexId>(s),
                           static_cast<VertexId>(t));
    }
    if (!in.eof()) {
      std::fprintf(stderr, "%s: malformed pair after %zu queries\n",
                   it->second.c_str(), queries.size());
      return 1;
    }
  } else if (auto rnd = flags.find("random"); rnd != flags.end()) {
    uint64_t seed = 1;
    if (auto sit = flags.find("seed"); sit != flags.end()) {
      seed = std::stoull(sit->second);
    }
    Rng rng(seed);
    const size_t count = std::stoul(rnd->second);
    queries.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      queries.emplace_back(
          static_cast<VertexId>(rng.NextBelow(g->NumVertices())),
          static_cast<VertexId>(rng.NextBelow(g->NumVertices())));
    }
  } else {
    return Usage();
  }
  if (queries.empty()) {
    std::fprintf(stderr, "no queries\n");
    return 1;
  }

  size_t threads = 1;
  if (auto it = flags.find("threads"); it != flags.end()) {
    threads = std::stoul(it->second);
  }
  BatchOptions options;
  options.collect_paths = flags.count("paths") > 0;

  QueryEngine engine(*ch, threads);
  const BatchResult result = engine.Run(queries, options);

  size_t reachable = 0;
  for (Distance d : result.distances) reachable += (d != kInfDistance);
  const BatchStats& stats = result.stats;
  std::printf("queries:     %zu (%zu reachable)\n", stats.num_queries,
              reachable);
  std::printf("threads:     %zu (chunk %zu, %zu stolen)\n",
              stats.num_threads, stats.chunk_size, stats.stolen_chunks);
  std::printf("wall:        %.3f s\n", stats.wall_seconds);
  std::printf("throughput:  %.0f queries/s\n", stats.queries_per_second);
  std::printf(
      "latency:     p50 %.1f us, p90 %.1f us, p99 %.1f us, p999 %.1f us,"
      " max %.1f us\n",
      stats.p50_micros, stats.p90_micros, stats.p99_micros,
      stats.p999_micros, stats.max_micros);
  if (options.collect_paths) {
    size_t hops = 0;
    for (const Path& p : result.paths) {
      hops += p.empty() ? 0 : p.size() - 1;
    }
    std::printf("paths:       %zu edges total across %zu paths\n", hops,
                result.paths.size());
  }
  if (auto it = flags.find("metrics-out"); it != flags.end()) {
    MetricsRegistry metrics;
    const std::vector<std::pair<std::string, std::string>> labels = {
        {"command", "batch-query"}, {"method", "CH"}};
    metrics.Add("num_queries", static_cast<double>(stats.num_queries), labels);
    metrics.Add("num_threads", static_cast<double>(stats.num_threads), labels);
    metrics.Add("reachable", static_cast<double>(reachable), labels);
    metrics.Add("wall_seconds", stats.wall_seconds, labels);
    metrics.Add("queries_per_second", stats.queries_per_second, labels);
    metrics.AddHistogram("latency_micros", result.latency, 1e-3, labels);
    metrics.AddCounters(stats.counters, labels);
    if (!metrics.WriteFile(it->second)) {
      std::fprintf(stderr, "cannot write %s\n", it->second.c_str());
      return 1;
    }
    std::printf("metrics:     wrote %zu points to %s\n",
                metrics.points().size(), it->second.c_str());
  }
  return 0;
}

// SIGINT flips this; the serve loop polls it and drains. A signal
// handler may only touch sig_atomic_t.
volatile std::sig_atomic_t g_interrupted = 0;

void HandleSigint(int) { g_interrupted = 1; }

uint64_t FlagOr(const FlagMap& flags, const std::string& name,
                uint64_t fallback) {
  auto it = flags.find(name);
  return it == flags.end() ? fallback : std::stoull(it->second);
}

int Serve(const FlagMap& flags) {
  auto g = LoadGraph(flags);
  if (!g.has_value()) return 1;
  std::string technique = "ch";
  if (auto it = flags.find("technique"); it != flags.end()) {
    technique = it->second;
  }
  std::string index_path;
  if (auto it = flags.find("index"); it != flags.end()) {
    index_path = it->second;
  }
  std::string error;
  Timer build_timer;
  auto index = server::MakeIndex(technique, *g, index_path, &error);
  if (index == nullptr) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("index:     %s ready in %.2f s (%.1f MiB)\n",
              index->Name().c_str(), build_timer.ElapsedSeconds(),
              index->IndexBytes() / (1024.0 * 1024.0));

  // --poi enables the kNN family: the bucket backend (and IER's oracle)
  // run on their own CH built here, so any point-to-point technique can
  // be served alongside.
  std::unique_ptr<PoiSet> pois;
  std::unique_ptr<ChIndex> knn_ch;
  std::unique_ptr<KnnBucketIndex> bucket;
  std::unique_ptr<IerKnnIndex> ier;
  KnnServing knn;
  if (auto it = flags.find("poi"); it != flags.end()) {
    pois = PoiSet::DeserializeFromFile(it->second, &error);
    if (pois == nullptr) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    if (pois->NumVertices() != g->NumVertices()) {
      std::fprintf(stderr,
                   "%s was placed on a %u-vertex graph, not this one (%u)\n",
                   it->second.c_str(), pois->NumVertices(), g->NumVertices());
      return 1;
    }
    Timer knn_timer;
    knn_ch = std::make_unique<ChIndex>(*g);
    bucket = std::make_unique<KnnBucketIndex>(*knn_ch, *pois);
    ier = std::make_unique<IerKnnIndex>(*g, *knn_ch, *pois);
    knn.pois = pois.get();
    knn.bucket = bucket.get();
    knn.ier = ier.get();
    std::printf("knn:       %zu POIs, %zu bucket entries ready in %.2f s"
                " (%.1f MiB)\n",
                pois->NumPois(), bucket->NumBucketEntries(),
                knn_timer.ElapsedSeconds(),
                (bucket->IndexBytes() + ier->IndexBytes()) /
                    (1024.0 * 1024.0));
  }

  ServerOptions options;
  options.port = static_cast<uint16_t>(FlagOr(flags, "port", 0));
  options.engine_threads = FlagOr(flags, "threads", 4);
  options.queue_capacity = FlagOr(flags, "queue-cap", 256);
  options.max_connections = FlagOr(flags, "max-conns", 64);
  // Event-loop front end: --loops shards connections across that many
  // epoll threads; --idle-timeout-ms reaps silent connections; the write
  // caps bound per-connection reply queues (soft = pause reads, hard =
  // shed with OVERLOADED).
  options.num_loops = FlagOr(flags, "loops", options.num_loops);
  options.max_dispatch_batch =
      FlagOr(flags, "batch-cap", options.max_dispatch_batch);
  options.idle_timeout_ms =
      FlagOr(flags, "idle-timeout-ms", options.idle_timeout_ms);
  options.write_queue_soft_cap =
      FlagOr(flags, "write-soft-cap", options.write_queue_soft_cap);
  options.write_queue_hard_cap =
      FlagOr(flags, "write-hard-cap", options.write_queue_hard_cap);
  // Tracing: --trace-sample N captures every Nth request, --slow-us T
  // additionally captures anything slower than T microseconds (0 =
  // everything), --trace-out appends captured traces as JSONL.
  options.trace_sample_every = FlagOr(flags, "trace-sample", 0);
  options.trace_slow_us = FlagOr(flags, "slow-us", kTraceSlowDisabled);
  options.trace_seed = FlagOr(flags, "trace-seed", 1);
  if (auto it = flags.find("trace-out"); it != flags.end()) {
    options.trace_out = it->second;
  }
  QueryServer server(*index, wire::TechniqueId(technique), g->NumVertices(),
                     options, knn);
  if (!server.Start(&error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("serving:   port %u, %zu loops, %zu workers, queue %zu,"
              " max %zu conns\n",
              server.Port(), options.num_loops, options.engine_threads,
              options.queue_capacity, options.max_connections);
  std::fflush(stdout);
  if (auto it = flags.find("port-file"); it != flags.end()) {
    // Written after the bind succeeds: scripts poll this file to learn
    // an ephemeral port.
    std::ofstream port_file(it->second);
    port_file << server.Port() << "\n";
    if (!port_file) {
      std::fprintf(stderr, "cannot write %s\n", it->second.c_str());
      return 1;
    }
  }

  std::signal(SIGINT, HandleSigint);
  std::signal(SIGTERM, HandleSigint);
  while (!server.WaitForShutdownRequest(std::chrono::milliseconds(100))) {
    if (g_interrupted) break;
  }
  std::printf("draining:  answering in-flight requests...\n");
  server.Shutdown();

  const wire::StatsResponse stats = server.Stats();
  std::printf("served:    %llu queries (%llu distance, %llu path)\n",
              static_cast<unsigned long long>(stats.served),
              static_cast<unsigned long long>(stats.distance_count),
              static_cast<unsigned long long>(stats.path_count));
  std::printf("shed:      %llu overloaded, %llu deadline, %llu draining,"
              " %llu bad\n",
              static_cast<unsigned long long>(stats.shed_overloaded),
              static_cast<unsigned long long>(stats.shed_deadline),
              static_cast<unsigned long long>(stats.shed_draining),
              static_cast<unsigned long long>(stats.bad_requests));
  std::printf("latency:   distance p50 %.1f us p99 %.1f us,"
              " path p50 %.1f us p99 %.1f us\n",
              stats.distance_p50_ns * 1e-3, stats.distance_p99_ns * 1e-3,
              stats.path_p50_ns * 1e-3, stats.path_p99_ns * 1e-3);
  const wire::StatsResponse v2 = server.StatsV2();
  if (v2.idle_reaped > 0) {
    std::printf("reaped:    %llu idle connections\n",
                static_cast<unsigned long long>(v2.idle_reaped));
  }
  if (v2.traces_finished > 0) {
    std::printf("traces:    %llu finished, %llu captured, %llu slow,"
                " %llu dropped\n",
                static_cast<unsigned long long>(v2.traces_finished),
                static_cast<unsigned long long>(v2.traces_captured),
                static_cast<unsigned long long>(v2.traces_slow),
                static_cast<unsigned long long>(v2.traces_dropped));
    for (const wire::StageStatWire& s : v2.stages) {
      std::printf("  %-15s %8llu  p50 %9.1f us  p99 %9.1f us\n",
                  TraceStageName(static_cast<TraceStage>(s.stage)),
                  static_cast<unsigned long long>(s.count), s.p50_ns * 1e-3,
                  s.p99_ns * 1e-3);
    }
  }
  if (auto it = flags.find("metrics-out"); it != flags.end()) {
    MetricsRegistry metrics;
    server.ExportMetrics(&metrics);
    if (!metrics.WriteFile(it->second)) {
      std::fprintf(stderr, "cannot write %s\n", it->second.c_str());
      return 1;
    }
    std::printf("metrics:   wrote %zu points to %s\n",
                metrics.points().size(), it->second.c_str());
  }
  return 0;
}

// Per-command flag specs: the strict parser rejects anything not listed
// here, so a typo like --metrics-ouT is an error, not a silent no-op.
const std::map<std::string, FlagSpec>& CommandSpecs() {
  static const std::map<std::string, FlagSpec> specs = {
      {"generate", {{"vertices", "seed", "out"}, {}}},
      {"convert", {{"gr", "co", "out"}, {}}},
      {"export", {{"gr", "co", "graph"}, {}}},
      {"preprocess", {{"graph", "out"}, {}}},
      {"poi", {{"graph", "out", "seed", "categories"}, {}}},
      {"stats", {{"graph", "index"}, {}}},
      {"query", {{"graph", "index", "from", "to", "metrics-out"}, {"path"}}},
      {"batch-query",
       {{"graph", "index", "queries", "random", "seed", "threads",
         "metrics-out"},
        {"paths"}}},
      {"serve",
       {{"graph", "index", "poi", "technique", "port", "port-file", "threads",
         "queue-cap", "max-conns", "batch-cap", "loops", "idle-timeout-ms",
         "write-soft-cap", "write-hard-cap", "metrics-out", "trace-out",
         "trace-sample", "slow-us", "trace-seed"},
        {}}},
  };
  return specs;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const auto spec = CommandSpecs().find(command);
  if (spec == CommandSpecs().end()) return Usage();
  std::string parse_error;
  const auto flags = ParseFlags(argc, argv, 2, spec->second, &parse_error);
  if (!flags.has_value()) {
    std::fprintf(stderr, "%s: %s\n", command.c_str(), parse_error.c_str());
    return Usage();
  }
  if (command == "generate") return Generate(*flags);
  if (command == "convert") return Convert(*flags);
  if (command == "export") return Export(*flags);
  if (command == "preprocess") return Preprocess(*flags);
  if (command == "poi") return Poi(*flags);
  if (command == "stats") return Stats(*flags);
  if (command == "query") return Query(*flags);
  if (command == "batch-query") return BatchQuery(*flags);
  if (command == "serve") return Serve(*flags);
  return Usage();
}
