#!/usr/bin/env bash
# Full verification: regular build + complete test suite, then a
# ThreadSanitizer build exercising the concurrent engine tests.
#
#   scripts/check.sh [ctest-filter]
#
# An optional argument narrows the regular ctest run (passed to ctest -R);
# the TSan stage always runs the Engine* tests.
set -euo pipefail
cd "$(dirname "$0")/.."

FILTER="${1:-}"

echo "==> Release build + full test suite (build/)"
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j"$(nproc)"
if [[ -n "$FILTER" ]]; then
  (cd build && ctest --output-on-failure -j"$(nproc)" -R "$FILTER")
else
  (cd build && ctest --output-on-failure -j"$(nproc)")
fi

echo "==> Metrics schema + search-space smoke (build/)"
SMOKE="$(mktemp -d)"
trap 'rm -rf "$SMOKE"' EXIT
build/tools/roadnet_cli generate --vertices 1500 --seed 5 \
  --out "$SMOKE/g.bin" >/dev/null
build/tools/roadnet_cli preprocess --graph "$SMOKE/g.bin" \
  --out "$SMOKE/g.ch" >/dev/null
build/tools/roadnet_cli batch-query --graph "$SMOKE/g.bin" \
  --index "$SMOKE/g.ch" --random 500 --seed 7 --threads 2 \
  --metrics-out "$SMOKE/metrics.jsonl" >/dev/null
python3 scripts/validate_metrics.py "$SMOKE/metrics.jsonl"
# The bench exits nonzero if the settled-vertex ranking (Dijkstra >= bidi
# >= CH, TNR in-table == 0) is violated, so this doubles as a counter
# regression check.
ROADNET_BENCH_FAST=1 build/bench/bench_searchspace \
  --out "$SMOKE/searchspace.csv" >/dev/null

echo "==> CH layout bench: rank-permuted SoA vs legacy AoS (quick gate)"
# Exits nonzero if the two layouts disagree on any distance or if the
# rank-permuted SoA core is slower than the pre-split AoS baseline
# compiled into the bench; the JSONL output must stay schema-valid.
build/bench/bench_ch_layout --quick --out "$SMOKE/BENCH_ch_layout.json" \
  >/dev/null
python3 scripts/validate_metrics.py "$SMOKE/BENCH_ch_layout.json"

echo "==> Server smoke: serve + loadgen over loopback (build/)"
# Ephemeral port; the server writes the bound port to a file the load
# generator reads. The loadgen verifies EVERY answered distance against a
# local Dijkstra oracle and sends the SHUTDOWN frame when done; the server
# must drain and exit 0.
build/tools/roadnet_cli serve --graph "$SMOKE/g.bin" --index "$SMOKE/g.ch" \
  --technique ch --port 0 --port-file "$SMOKE/port" \
  --metrics-out "$SMOKE/server_metrics.jsonl" >/dev/null &
SERVER_PID=$!
for _ in $(seq 1 100); do
  [[ -s "$SMOKE/port" ]] && break
  sleep 0.1
done
[[ -s "$SMOKE/port" ]] || { echo "server never wrote port file"; exit 1; }
build/tools/roadnet_loadgen --port "$(cat "$SMOKE/port")" \
  --graph "$SMOKE/g.bin" --connections 4 --queries 1000 \
  --verify-every 1 --workload Q5 --shutdown >/dev/null
wait "$SERVER_PID"
python3 scripts/validate_metrics.py "$SMOKE/server_metrics.jsonl"

echo "==> ThreadSanitizer build + engine/server tests (build-tsan/)"
cmake -B build-tsan -S . -DROADNET_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$(nproc)" --target \
  engine_equivalence_test engine_stress_test engine_edge_test \
  ch_layout_test server_test bench_server
(cd build-tsan && \
  ctest --output-on-failure -R 'Engine(Equivalence|Stress|Edge)|ChLayout|QueryServer|Wire|BoundedQueue')
# The serving bench under TSan covers the accept/handler/dispatcher/client
# thread web end to end.
ROADNET_BENCH_FAST=1 build-tsan/bench/bench_server >/dev/null

echo "==> OK"
