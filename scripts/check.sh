#!/usr/bin/env bash
# Full verification: regular build + complete test suite, then a
# ThreadSanitizer build exercising the concurrent engine tests.
#
#   scripts/check.sh [ctest-filter]
#
# An optional argument narrows the regular ctest run (passed to ctest -R);
# the TSan stage always runs the Engine* tests.
set -euo pipefail
cd "$(dirname "$0")/.."

FILTER="${1:-}"

echo "==> Release build + full test suite (build/)"
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j"$(nproc)"
if [[ -n "$FILTER" ]]; then
  (cd build && ctest --output-on-failure -j"$(nproc)" -R "$FILTER")
else
  (cd build && ctest --output-on-failure -j"$(nproc)")
fi

echo "==> ThreadSanitizer build + engine tests (build-tsan/)"
cmake -B build-tsan -S . -DROADNET_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$(nproc)" --target \
  engine_equivalence_test engine_stress_test
(cd build-tsan && ctest --output-on-failure -R 'Engine(Equivalence|Stress)')

echo "==> OK"
