#!/usr/bin/env bash
# Full verification: release build + test suite, metrics/serving smokes,
# the request-tracing smoke + overhead gate, the roadnet_lint +
# clang-tidy static-analysis gate, the Clang Thread Safety Analysis gate
# (with a scripted delete-one-annotation negative test), the wire/frame
# fuzz smoke, an ASan+UBSan build running the complete suite, and a
# ThreadSanitizer build exercising the concurrent engine/server tests.
#
#   scripts/check.sh                 # everything
#   scripts/check.sh <stage>         # one stage: build smoke trace knn async lint tsa fuzz asan-ubsan tsan
#   scripts/check.sh <ctest-filter>  # everything, regular ctest narrowed to -R filter
#
# Each sanitizer gets its own build directory (build-asan-ubsan/,
# build-tsan/) so object files never mix; UBSan runs with recovery
# disabled, so any finding aborts the failing test.
set -euo pipefail
cd "$(dirname "$0")/.."

SERVER_PID=""
SMOKE=""
TSA_MUTATED=""
cleanup() {
  # Kill the smoke server if loadgen died before the SHUTDOWN frame —
  # otherwise `roadnet_cli serve` is orphaned holding the port.
  if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  # Restore any source the tsa negative test mutated, even on ^C.
  if [[ -n "$TSA_MUTATED" ]] && [[ -f "$TSA_MUTATED.tsa-orig" ]]; then
    mv "$TSA_MUTATED.tsa-orig" "$TSA_MUTATED"
  fi
  # No `[[ ]] &&` tail here: a false test as the trap's last command
  # would become the script's exit status and fail passing stages that
  # never created a smoke dir.
  if [[ -n "$SMOKE" ]]; then rm -rf "$SMOKE"; fi
}
trap cleanup EXIT

stage_build() {
  local filter="${1:-}"
  echo "==> Release build + full test suite (build/)"
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DROADNET_WERROR=ON >/dev/null
  cmake --build build -j"$(nproc)"
  if [[ -n "$filter" ]]; then
    (cd build && ctest --output-on-failure -j"$(nproc)" -R "$filter")
  else
    (cd build && ctest --output-on-failure -j"$(nproc)")
  fi
}

stage_smoke() {
  echo "==> Metrics schema + search-space smoke (build/)"
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build build -j"$(nproc)" --target \
    roadnet_cli roadnet_loadgen bench_searchspace bench_ch_layout bench_hl
  SMOKE="$(mktemp -d)"
  build/tools/roadnet_cli generate --vertices 1500 --seed 5 \
    --out "$SMOKE/g.bin" >/dev/null
  build/tools/roadnet_cli preprocess --graph "$SMOKE/g.bin" \
    --out "$SMOKE/g.ch" >/dev/null
  build/tools/roadnet_cli batch-query --graph "$SMOKE/g.bin" \
    --index "$SMOKE/g.ch" --random 500 --seed 7 --threads 2 \
    --metrics-out "$SMOKE/metrics.jsonl" >/dev/null
  python3 scripts/validate_metrics.py "$SMOKE/metrics.jsonl"
  # The bench exits nonzero if the settled-vertex ranking (Dijkstra >= bidi
  # >= CH, TNR in-table == 0) is violated, so this doubles as a counter
  # regression check.
  ROADNET_BENCH_FAST=1 build/bench/bench_searchspace \
    --out "$SMOKE/searchspace.csv" >/dev/null

  echo "==> CH layout bench: rank-permuted SoA vs legacy AoS (quick gate)"
  # Exits nonzero if the two layouts disagree on any distance or if the
  # rank-permuted SoA core is slower than the pre-split AoS baseline
  # compiled into the bench; the JSONL output must stay schema-valid.
  build/bench/bench_ch_layout --quick --out "$SMOKE/BENCH_ch_layout.json" \
    >/dev/null
  python3 scripts/validate_metrics.py "$SMOKE/BENCH_ch_layout.json"

  echo "==> HL bench: label merge vs CH search (quick gate)"
  # Exits nonzero if HL disagrees with CH on any distance or if the label
  # merge is not faster than the rank-SoA CH core on the Q6..Q10 workload
  # of the largest quick dataset.
  build/bench/bench_hl --quick --out "$SMOKE/BENCH_hl.json" >/dev/null
  python3 scripts/validate_metrics.py "$SMOKE/BENCH_hl.json"

  echo "==> Server smoke: serve + loadgen over loopback (build/)"
  # Ephemeral port; the server writes the bound port to a file the load
  # generator reads. The loadgen verifies EVERY answered distance against a
  # local Dijkstra oracle and sends the SHUTDOWN frame when done; the server
  # must drain and exit 0.
  build/tools/roadnet_cli serve --graph "$SMOKE/g.bin" --index "$SMOKE/g.ch" \
    --technique ch --port 0 --port-file "$SMOKE/port" \
    --metrics-out "$SMOKE/server_metrics.jsonl" >/dev/null &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    [[ -s "$SMOKE/port" ]] && break
    sleep 0.1
  done
  [[ -s "$SMOKE/port" ]] || { echo "server never wrote port file"; exit 1; }
  build/tools/roadnet_loadgen --port "$(cat "$SMOKE/port")" \
    --graph "$SMOKE/g.bin" --connections 4 --queries 1000 \
    --verify-every 1 --workload Q5 --shutdown >/dev/null
  wait "$SERVER_PID"
  SERVER_PID=""
  python3 scripts/validate_metrics.py "$SMOKE/server_metrics.jsonl"

  echo "==> Server smoke: HL over the wire, Dijkstra-verified (build/)"
  # Same drill hosting hub labels: the server loads the CH file, builds
  # labels from it, and every answered distance is checked against the
  # loadgen's local Dijkstra oracle.
  rm -f "$SMOKE/port"
  build/tools/roadnet_cli serve --graph "$SMOKE/g.bin" --index "$SMOKE/g.ch" \
    --technique hl --port 0 --port-file "$SMOKE/port" >/dev/null &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    [[ -s "$SMOKE/port" ]] && break
    sleep 0.1
  done
  [[ -s "$SMOKE/port" ]] || { echo "server never wrote port file"; exit 1; }
  build/tools/roadnet_loadgen --port "$(cat "$SMOKE/port")" \
    --graph "$SMOKE/g.bin" --connections 4 --queries 1000 \
    --technique hl --verify-every 1 --workload Q5 --shutdown >/dev/null
  wait "$SERVER_PID"
  SERVER_PID=""
  rm -rf "$SMOKE"
  SMOKE=""
}

stage_trace() {
  echo "==> Tracing smoke: serve --trace-out + loadgen, JSONL + report"
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build build -j"$(nproc)" --target \
    roadnet_cli roadnet_loadgen roadnet_trace bench_trace_overhead
  SMOKE="$(mktemp -d)"
  build/tools/roadnet_cli generate --vertices 1500 --seed 5 \
    --out "$SMOKE/g.bin" >/dev/null
  build/tools/roadnet_cli preprocess --graph "$SMOKE/g.bin" \
    --out "$SMOKE/g.ch" >/dev/null

  # Slow threshold 0 = every request crosses it, so the slow-query log
  # must come back non-empty even with head sampling at 1-in-10; the
  # loadgen retunes sampling to 1-in-5 over the wire and prints the
  # server's per-stage breakdown from STATS v2.
  build/tools/roadnet_cli serve --graph "$SMOKE/g.bin" --index "$SMOKE/g.ch" \
    --technique ch --port 0 --port-file "$SMOKE/port" \
    --trace-out "$SMOKE/traces.jsonl" --trace-sample 10 --slow-us 0 \
    >/dev/null &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    [[ -s "$SMOKE/port" ]] && break
    sleep 0.1
  done
  [[ -s "$SMOKE/port" ]] || { echo "server never wrote port file"; exit 1; }
  local loadgen_out
  loadgen_out="$(build/tools/roadnet_loadgen --port "$(cat "$SMOKE/port")" \
    --graph "$SMOKE/g.bin" --connections 4 --queries 500 \
    --verify-every 10 --workload Q5 --trace-sample 5 --slow-us 0 \
    --stats --shutdown)"
  wait "$SERVER_PID"
  SERVER_PID=""
  grep -q "stage breakdown" <<<"$loadgen_out" || {
    echo "loadgen did not print the server stage breakdown"; exit 1; }

  # The slow-query log: non-empty, schema-valid (stage ordering and
  # non-negative durations checked per record), and renderable.
  [[ -s "$SMOKE/traces.jsonl" ]] || {
    echo "trace output is empty at slow threshold 0"; exit 1; }
  python3 scripts/validate_metrics.py "$SMOKE/traces.jsonl"
  local report
  report="$(build/tools/roadnet_trace --in "$SMOKE/traces.jsonl" \
    --csv "$SMOKE/stages.csv" --top 3)"
  grep -q "execute" <<<"$report" || {
    echo "roadnet_trace report is missing the execute stage"; exit 1; }
  grep -q "^total," "$SMOKE/stages.csv" || {
    echo "roadnet_trace CSV is missing the total row"; exit 1; }

  echo "==> Tracing overhead gate: <= 2% on the untraced hot path"
  # Exits nonzero if the instrumented-but-idle request path costs more
  # than 2% over the plain query loop, or if instrumentation changes
  # any distance.
  ROADNET_BENCH_FAST=1 build/bench/bench_trace_overhead --quick \
    --out "$SMOKE/BENCH_trace_overhead.json" >/dev/null
  python3 scripts/validate_metrics.py "$SMOKE/BENCH_trace_overhead.json"
  rm -rf "$SMOKE"
  SMOKE=""
}

stage_knn() {
  echo "==> kNN smoke: POI build + serve + oracle-verified loadgen + gate"
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build build -j"$(nproc)" --target \
    roadnet_cli roadnet_loadgen bench_knn
  SMOKE="$(mktemp -d)"
  build/tools/roadnet_cli generate --vertices 3000 --seed 5 \
    --out "$SMOKE/g.bin" >/dev/null
  build/tools/roadnet_cli preprocess --graph "$SMOKE/g.bin" \
    --out "$SMOKE/g.ch" >/dev/null
  # Deterministic POI placement: the default category sweep spans three
  # densities (power-of-ten selectivities), including a near-empty one.
  build/tools/roadnet_cli poi --graph "$SMOKE/g.bin" --seed 11 \
    --out "$SMOKE/pois.bin" >/dev/null

  # Serve with the kNN endpoints enabled; the loadgen sweeps both
  # methods (bucket-CH and IER), k in {1,4,10,50}, and one-to-many, and
  # verifies EVERY answered result list against its local Dijkstra
  # oracle before sending the SHUTDOWN frame.
  build/tools/roadnet_cli serve --graph "$SMOKE/g.bin" --index "$SMOKE/g.ch" \
    --technique ch --poi "$SMOKE/pois.bin" --port 0 \
    --port-file "$SMOKE/port" \
    --metrics-out "$SMOKE/server_metrics.jsonl" >/dev/null &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    [[ -s "$SMOKE/port" ]] && break
    sleep 0.1
  done
  [[ -s "$SMOKE/port" ]] || { echo "server never wrote port file"; exit 1; }
  build/tools/roadnet_loadgen --port "$(cat "$SMOKE/port")" \
    --graph "$SMOKE/g.bin" --poi "$SMOKE/pois.bin" --workload knn \
    --connections 4 --queries 600 --verify-every 1 --shutdown >/dev/null
  wait "$SERVER_PID"
  SERVER_PID=""
  python3 scripts/validate_metrics.py "$SMOKE/server_metrics.jsonl"

  echo "==> kNN bench: bucket-CH vs IER vs brute-force (quick gate)"
  # Exits nonzero if the three strategies disagree on any result list,
  # if one-to-many != k=|category| kNN, or if bucket-CH is not faster
  # than brute-force Dijkstra on the aggregate sweep.
  build/bench/bench_knn --quick --out "$SMOKE/BENCH_knn.json" >/dev/null
  python3 scripts/validate_metrics.py "$SMOKE/BENCH_knn.json"
  rm -rf "$SMOKE"
  SMOKE=""
}

stage_async() {
  echo "==> Async server core: open-loop pipelined smoke (build/)"
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build build -j"$(nproc)" --target \
    roadnet_cli roadnet_loadgen bench_server_scale
  SMOKE="$(mktemp -d)"
  build/tools/roadnet_cli generate --vertices 1500 --seed 5 \
    --out "$SMOKE/g.bin" >/dev/null
  build/tools/roadnet_cli preprocess --graph "$SMOKE/g.bin" \
    --out "$SMOKE/g.ch" >/dev/null
  # Two event loops, idle reaping armed, open-loop Poisson arrivals over
  # pipelined QUERY2 connections; EVERY reply is verified against the
  # loadgen's local Dijkstra oracle, then the SHUTDOWN frame must drain
  # the server cleanly (exit 0) with schema-valid metrics.
  build/tools/roadnet_cli serve --graph "$SMOKE/g.bin" --index "$SMOKE/g.ch" \
    --technique ch --port 0 --port-file "$SMOKE/port" \
    --loops 2 --idle-timeout-ms 5000 \
    --metrics-out "$SMOKE/server_metrics.jsonl" >/dev/null &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    [[ -s "$SMOKE/port" ]] && break
    sleep 0.1
  done
  [[ -s "$SMOKE/port" ]] || { echo "server never wrote port file"; exit 1; }
  build/tools/roadnet_loadgen --port "$(cat "$SMOKE/port")" \
    --graph "$SMOKE/g.bin" --connections 16 --queries 3000 \
    --rate 5000 --pipeline 8 --verify-every 1 --stats --shutdown >/dev/null
  wait "$SERVER_PID"
  SERVER_PID=""
  python3 scripts/validate_metrics.py "$SMOKE/server_metrics.jsonl"

  echo "==> Connection-scale bench: open-loop latency gate (quick)"
  # Exits nonzero if any curve point loses a request or disagrees with
  # the oracle, or if p99 at 50% of the measured saturation rate blows
  # past the latency gate (see bench_server_scale.cc).
  build/bench/bench_server_scale --quick \
    --out "$SMOKE/BENCH_server_scale.json" >/dev/null
  python3 scripts/validate_metrics.py "$SMOKE/BENCH_server_scale.json"
  rm -rf "$SMOKE"
  SMOKE=""
}

stage_lint() {
  echo "==> roadnet_lint: project-specific static analysis (hard gate)"
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build build -j"$(nproc)" --target roadnet_lint
  local lint_out
  lint_out="$(mktemp -d)"
  # Exits nonzero on any finding not covered by a reasoned waiver; the
  # JSONL findings file must stay schema-valid (validate_metrics.py
  # understands the lint schema).
  build/tools/roadnet_lint --json "$lint_out/lint.jsonl"
  python3 scripts/validate_metrics.py "$lint_out/lint.jsonl"
  rm -rf "$lint_out"

  if command -v clang-tidy >/dev/null 2>&1; then
    echo "==> clang-tidy (bugprone/concurrency/performance, .clang-tidy)"
    # compile_commands.json is exported by CMake; WarningsAsErrors in
    # .clang-tidy makes every reported check a hard failure.
    mapfile -t tidy_sources < <(find src -name '*.cc' | sort)
    clang-tidy -p build --quiet "${tidy_sources[@]}"
  else
    echo "==> clang-tidy not installed; skipping (lint gate still ran)"
  fi
}

# One tsa build of the library stack under clang with every
# thread-safety diagnostic promoted to an error.
tsa_build() {
  cmake -B build-tsa-clang -S . -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_COMPILER=clang++ \
    -DCMAKE_CXX_FLAGS="-Wthread-safety -Werror=thread-safety-analysis -Werror=thread-safety-precise -Werror=thread-safety-reference" \
    >/dev/null
  cmake --build build-tsa-clang -j"$(nproc)" --target roadnet
}

# A deliberate unlocked write to a guarded field must FAIL to compile —
# proof the flags and the ROADNET_ macros are armed (on a compiler
# where they expand away, this canary would compile and we must not
# claim the TSA gate ran).
tsa_canary() {
  local dir
  dir="$(mktemp -d)"
  cat > "$dir/canary.cc" <<'EOF'
#include "util/mutex.h"
struct Canary {
  roadnet::Mutex mu;
  int x ROADNET_GUARDED_BY(mu) = 0;
  void Poke() { x = 1; }  // unlocked write: must be a TSA error
};
EOF
  if clang++ -std=c++20 -Isrc -Wthread-safety \
      -Werror=thread-safety-analysis -fsyntax-only "$dir/canary.cc" \
      2>/dev/null; then
    rm -rf "$dir"
    echo "FAIL: the TSA canary (unlocked guarded write) compiled clean"
    exit 1
  fi
  rm -rf "$dir"
  echo "    canary rejected (unlocked guarded write is a build error)"
}

# Deletes the GUARDED_BY annotations naming one mutex in $1 and asserts
# the gate now FAILS. TSA alone cannot see a deletion (its checks are
# opt-in per declaration), so the catch is lint rule R10: the mutex is
# left guarding no field, which is a finding — on every compiler,
# clang or not. This is what makes the annotations load-bearing.
tsa_negative_test() {
  local victim="$1" mutex="$2"
  echo "==> TSA negative test: strip GUARDED_BY($mutex) from $victim"
  TSA_MUTATED="$victim"
  cp "$victim" "$victim.tsa-orig"
  sed -i "s/ ROADNET_GUARDED_BY(${mutex})//g" "$victim"
  if build/tools/roadnet_lint --root . --rules R10 src >/dev/null 2>&1; then
    echo "FAIL: R10 passed with GUARDED_BY($mutex) deleted from $victim"
    mv "$victim.tsa-orig" "$victim"
    TSA_MUTATED=""
    exit 1
  fi
  mv "$victim.tsa-orig" "$victim"
  TSA_MUTATED=""
  echo "    gate failed as required"
}

stage_tsa() {
  echo "==> Lock-discipline gate: Clang TSA build + R10 negative tests"
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build build -j"$(nproc)" --target roadnet_lint
  if command -v clang++ >/dev/null 2>&1; then
    tsa_build
    echo "    clean under -Werror=thread-safety-*"
    tsa_canary
  else
    echo "SKIP: clang++ not installed — the compile half of the TSA gate"
    echo "      needs Clang (GCC expands the ROADNET_* annotations away)."
    echo "      The annotation-deletion negative tests below still run."
  fi
  # The gate must be falsifiable everywhere: deleting the GUARDED_BY
  # annotations tied to a QueryServer or EventLoop mutex has to fail
  # the stage (via R10) even on hosts without clang.
  tsa_negative_test src/server/server.h shutdown_mu_
  tsa_negative_test src/server/event_loop.cc post_mu
}

stage_fuzz() {
  echo "==> Fuzz harnesses: wire decode + frame assembler (ROADNET_FUZZ=ON)"
  if command -v clang++ >/dev/null 2>&1; then
    # Real libFuzzer: 30-second smoke per harness, seeded from the
    # checked-in corpus, ASan underneath. Any crash/trap fails the stage.
    cmake -B build-fuzz -S . -DCMAKE_BUILD_TYPE=Release -DROADNET_FUZZ=ON \
      -DCMAKE_CXX_COMPILER=clang++ >/dev/null
    cmake --build build-fuzz -j"$(nproc)" --target \
      fuzz_wire_decode fuzz_frame_assembler
    build-fuzz/tests/fuzz/fuzz_wire_decode -max_total_time=30 \
      -print_final_stats=1 tests/fuzz/corpus/wire
    build-fuzz/tests/fuzz/fuzz_frame_assembler -max_total_time=30 \
      -print_final_stats=1 tests/fuzz/corpus/frame
  else
    echo "SKIP: clang++ not installed — no libFuzzer; falling back to the"
    echo "      deterministic corpus replay + mutation sweep (the property"
    echo "      checks still run; coverage-guided exploration does not)."
    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DROADNET_FUZZ=ON \
      >/dev/null
    cmake --build build -j"$(nproc)" --target \
      fuzz_wire_decode fuzz_frame_assembler
    build/tests/fuzz/fuzz_wire_decode --mutate 256 tests/fuzz/corpus/wire
    build/tests/fuzz/fuzz_frame_assembler --mutate 256 tests/fuzz/corpus/frame
  fi
}

stage_asan_ubsan() {
  echo "==> ASan+UBSan build + full test suite (build-asan-ubsan/)"
  # -fno-sanitize-recover: the first UB report aborts the test, so the
  # suite cannot pass with latent UB. Leak detection comes with ASan.
  # The full suite includes differential_test: 10k+ randomized queries
  # where Dijkstra, bidi, CH, HL and ALT must agree exactly, all under
  # the sanitizers.
  cmake -B build-asan-ubsan -S . -DROADNET_SANITIZE=address,undefined \
    >/dev/null
  cmake --build build-asan-ubsan -j"$(nproc)"
  (cd build-asan-ubsan && ctest --output-on-failure -j"$(nproc)")
}

stage_tsan() {
  echo "==> ThreadSanitizer build + engine/server tests (build-tsan/)"
  cmake -B build-tsan -S . -DROADNET_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j"$(nproc)" --target \
    engine_equivalence_test engine_stress_test engine_edge_test \
    ch_layout_test server_test event_loop_test wire_fuzz_test hl_test \
    trace_test bench_server
  (cd build-tsan && \
    ctest --output-on-failure -R 'Engine(Equivalence|Stress|Edge)|ChLayout|QueryServer|EventLoopPool|Wire|BoundedQueue|HubLabel|Trace')
  # The serving bench under TSan covers the accept/handler/dispatcher/client
  # thread web end to end.
  ROADNET_BENCH_FAST=1 build-tsan/bench/bench_server >/dev/null
}

ARG="${1:-}"
case "$ARG" in
  build)      stage_build ;;
  smoke)      stage_smoke ;;
  trace)      stage_trace ;;
  knn)        stage_knn ;;
  async)      stage_async ;;
  lint)       stage_lint ;;
  tsa)        stage_tsa ;;
  fuzz)       stage_fuzz ;;
  asan-ubsan) stage_asan_ubsan ;;
  tsan)       stage_tsan ;;
  ""|all)
    stage_build
    stage_smoke
    stage_trace
    stage_knn
    stage_async
    stage_lint
    stage_tsa
    stage_fuzz
    stage_asan_ubsan
    stage_tsan
    ;;
  *)
    # Back-compat: a non-stage argument narrows the regular ctest run.
    stage_build "$ARG"
    stage_smoke
    stage_trace
    stage_knn
    stage_async
    stage_lint
    stage_tsa
    stage_fuzz
    stage_asan_ubsan
    stage_tsan
    ;;
esac

echo "==> OK"
