#!/usr/bin/env bash
# Full verification: regular build + complete test suite, then a
# ThreadSanitizer build exercising the concurrent engine tests.
#
#   scripts/check.sh [ctest-filter]
#
# An optional argument narrows the regular ctest run (passed to ctest -R);
# the TSan stage always runs the Engine* tests.
set -euo pipefail
cd "$(dirname "$0")/.."

FILTER="${1:-}"

echo "==> Release build + full test suite (build/)"
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j"$(nproc)"
if [[ -n "$FILTER" ]]; then
  (cd build && ctest --output-on-failure -j"$(nproc)" -R "$FILTER")
else
  (cd build && ctest --output-on-failure -j"$(nproc)")
fi

echo "==> Metrics schema + search-space smoke (build/)"
SMOKE="$(mktemp -d)"
trap 'rm -rf "$SMOKE"' EXIT
build/tools/roadnet_cli generate --vertices 1500 --seed 5 \
  --out "$SMOKE/g.bin" >/dev/null
build/tools/roadnet_cli preprocess --graph "$SMOKE/g.bin" \
  --out "$SMOKE/g.ch" >/dev/null
build/tools/roadnet_cli batch-query --graph "$SMOKE/g.bin" \
  --index "$SMOKE/g.ch" --random 500 --seed 7 --threads 2 \
  --metrics-out "$SMOKE/metrics.jsonl" >/dev/null
python3 scripts/validate_metrics.py "$SMOKE/metrics.jsonl"
# The bench exits nonzero if the settled-vertex ranking (Dijkstra >= bidi
# >= CH, TNR in-table == 0) is violated, so this doubles as a counter
# regression check.
ROADNET_BENCH_FAST=1 build/bench/bench_searchspace \
  --out "$SMOKE/searchspace.csv" >/dev/null

echo "==> ThreadSanitizer build + engine tests (build-tsan/)"
cmake -B build-tsan -S . -DROADNET_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$(nproc)" --target \
  engine_equivalence_test engine_stress_test
(cd build-tsan && ctest --output-on-failure -R 'Engine(Equivalence|Stress)')

echo "==> OK"
