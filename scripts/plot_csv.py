#!/usr/bin/env python3
"""ASCII log-log plots from the bench CSV output.

The figure benches emit machine-readable series when
ROADNET_BENCH_CSV_DIR is set (e.g. fig6.csv, fig8_10.csv). This script
renders them as terminal charts so the paper's log-log figures can be
eyeballed without a plotting stack.

  python3 scripts/plot_csv.py out/fig6.csv --y index_bytes
  python3 scripts/plot_csv.py out/fig8_10.csv --y distance_us --set Q10
"""

import argparse
import csv
import math
import sys

WIDTH = 70
HEIGHT = 20
MARKS = "ox+*#@%&"


def log_scale(value, lo, hi, steps):
    if value <= 0:
        return 0
    span = math.log10(hi) - math.log10(lo)
    if span <= 0:
        return 0
    frac = (math.log10(value) - math.log10(lo)) / span
    return max(0, min(steps - 1, int(round(frac * (steps - 1)))))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csv_path")
    parser.add_argument("--y", default="index_bytes",
                        help="column to plot on the y axis")
    parser.add_argument("--set", dest="query_set", default=None,
                        help="filter by query_set column (fig8_10 etc.)")
    args = parser.parse_args()

    series = {}  # method -> [(n, y)]
    with open(args.csv_path, newline="") as f:
        for row in csv.DictReader(f):
            if args.query_set and row.get("query_set") != args.query_set:
                continue
            try:
                n = float(row["n"])
                y = float(row[args.y])
            except (KeyError, ValueError):
                continue
            if n <= 0 or y <= 0:
                continue
            series.setdefault(row["method"], []).append((n, y))

    if not series:
        sys.exit("no plottable rows (check --y / --set)")

    xs = [n for pts in series.values() for n, _ in pts]
    ys = [y for pts in series.values() for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)

    grid = [[" "] * WIDTH for _ in range(HEIGHT)]
    legend = []
    for i, (method, pts) in enumerate(sorted(series.items())):
        mark = MARKS[i % len(MARKS)]
        legend.append(f"{mark} = {method}")
        for n, y in pts:
            col = log_scale(n, x_lo, x_hi, WIDTH)
            row = HEIGHT - 1 - log_scale(y, y_lo, y_hi, HEIGHT)
            grid[row][col] = mark

    title = args.y + (f" ({args.query_set})" if args.query_set else "")
    print(f"{title}  [log-log]   y: {y_lo:g} .. {y_hi:g}")
    for line in grid:
        print("|" + "".join(line))
    print("+" + "-" * WIDTH)
    print(f" n: {x_lo:g} .. {x_hi:g}        " + "   ".join(legend))


if __name__ == "__main__":
    main()
