#!/usr/bin/env python3
"""Schema check for --metrics-out and roadnet_lint JSONL files (stdlib only).

Usage: validate_metrics.py FILE [FILE...]

Metrics files: each line must be a JSON object of the form

    {"name": <non-empty string>,
     "value": <number or null>,          # null = non-finite measurement
     "labels": {<string>: <string>}}     # optional

with no other keys.

Lint files (roadnet_lint --json) are detected by the "rule" key on the
first record. Finding records are

    {"rule": "R1".."R12"|"W1", "name": <str>, "file": <str>,
     "line": <positive int>, "message": <non-empty str>,
     "waived": <bool>, "waiver_reason": <str, only when waived>}

and the file ends with exactly one summary record

    {"rule": "summary", "files_scanned": <int>, "findings": <int>,
     "waived": <int>, "waivers_unused": <int>}

Trace files (the server's --trace-out slow-query log, obs/trace.h) are
detected by the "trace_id" key on the first record. Each line is

    {"trace_id": <16 hex chars>, "seq": <int>,
     "kind": "distance"|"path"|"knn"|"one_to_many",
     "source": <int>, "target": <int>, "status": <non-empty str>,
     "sampled": "head"|"slow"|"head+slow", "total_ns": <int>,
     "counters": {<str>: <int>},
     "stages": [{"stage": <known name>, "start_ns": <int>,
                 "end_ns": <int>}, ...]}

Stage windows must be internally consistent: end_ns >= start_ns per
stage, stages listed in pipeline order, and non-overlapping — each
stage starts no earlier than the previous one ended.

Exits 1 (listing every violation) if any file fails, which lets
scripts/check.sh gate on all three outputs staying machine-readable.
"""

import json
import sys

ALLOWED_KEYS = {"name", "value", "labels"}
LINT_FINDING_KEYS = {"rule", "name", "file", "line", "message", "waived",
                     "waiver_reason"}
LINT_SUMMARY_KEYS = {"rule", "files_scanned", "findings", "waived",
                     "waivers_unused"}
TRACE_KEYS = {"trace_id", "seq", "kind", "source", "target", "status",
              "sampled", "total_ns", "counters", "stages"}
TRACE_STAGE_KEYS = {"stage", "start_ns", "end_ns"}
# Pipeline order; stage windows must be monotone along this sequence.
TRACE_STAGES = ["accept", "frame_read", "enqueue", "queue_wait",
                "batch_assembly", "execute", "reply_write"]


def check_line(obj):
    """Returns a list of violations for one parsed JSONL record."""
    problems = []
    if not isinstance(obj, dict):
        return ["record is not a JSON object"]
    unknown = set(obj) - ALLOWED_KEYS
    if unknown:
        problems.append("unknown keys: %s" % ", ".join(sorted(unknown)))
    name = obj.get("name")
    if not isinstance(name, str) or not name:
        problems.append("'name' must be a non-empty string")
    if "value" not in obj:
        problems.append("missing 'value'")
    else:
        value = obj["value"]
        # bool is an int subclass; a true/false metric value is a bug.
        if not (value is None or
                (isinstance(value, (int, float)) and
                 not isinstance(value, bool))):
            problems.append("'value' must be a number or null")
    if "labels" in obj:
        labels = obj["labels"]
        if not isinstance(labels, dict):
            problems.append("'labels' must be an object")
        elif not all(isinstance(k, str) and isinstance(v, str)
                     for k, v in labels.items()):
            problems.append("'labels' entries must map strings to strings")
    return problems


def _is_int(value):
    return isinstance(value, int) and not isinstance(value, bool)


def check_lint_line(obj, is_last):
    """Returns a list of violations for one roadnet_lint JSONL record."""
    problems = []
    if not isinstance(obj, dict):
        return ["record is not a JSON object"]
    if obj.get("rule") == "summary":
        if not is_last:
            problems.append("summary record must be the last line")
        unknown = set(obj) - LINT_SUMMARY_KEYS
        if unknown:
            problems.append("unknown keys: %s" % ", ".join(sorted(unknown)))
        for key in sorted(LINT_SUMMARY_KEYS - {"rule"}):
            if not _is_int(obj.get(key)) or obj.get(key) < 0:
                problems.append("'%s' must be a non-negative integer" % key)
        return problems
    unknown = set(obj) - LINT_FINDING_KEYS
    if unknown:
        problems.append("unknown keys: %s" % ", ".join(sorted(unknown)))
    for key in ("rule", "name", "file", "message"):
        if not isinstance(obj.get(key), str) or not obj.get(key):
            problems.append("'%s' must be a non-empty string" % key)
    if not _is_int(obj.get("line")) or obj.get("line", 0) < 1:
        problems.append("'line' must be a positive integer")
    if not isinstance(obj.get("waived"), bool):
        problems.append("'waived' must be a boolean")
    if obj.get("waived") is True:
        if not isinstance(obj.get("waiver_reason"), str) or \
                not obj.get("waiver_reason"):
            problems.append("waived finding must carry 'waiver_reason'")
    elif "waiver_reason" in obj:
        problems.append("'waiver_reason' only allowed on waived findings")
    return problems


def check_trace_line(obj):
    """Returns a list of violations for one trace JSONL record."""
    problems = []
    if not isinstance(obj, dict):
        return ["record is not a JSON object"]
    unknown = set(obj) - TRACE_KEYS
    if unknown:
        problems.append("unknown keys: %s" % ", ".join(sorted(unknown)))
    trace_id = obj.get("trace_id")
    if not (isinstance(trace_id, str) and len(trace_id) == 16 and
            all(c in "0123456789abcdef" for c in trace_id)):
        problems.append("'trace_id' must be 16 lowercase hex characters")
    for key in ("seq", "source", "target", "total_ns"):
        if not _is_int(obj.get(key)) or obj.get(key) < 0:
            problems.append("'%s' must be a non-negative integer" % key)
    if obj.get("kind") not in ("distance", "path", "knn", "one_to_many"):
        problems.append(
            "'kind' must be distance, path, knn, or one_to_many")
    if not isinstance(obj.get("status"), str) or not obj.get("status"):
        problems.append("'status' must be a non-empty string")
    if obj.get("sampled") not in ("head", "slow", "head+slow"):
        problems.append("'sampled' must be head, slow, or head+slow")
    counters = obj.get("counters")
    if not isinstance(counters, dict):
        problems.append("'counters' must be an object")
    elif not all(isinstance(k, str) and _is_int(v) and v >= 0
                 for k, v in counters.items()):
        problems.append("'counters' must map strings to non-negative ints")
    stages = obj.get("stages")
    if not isinstance(stages, list) or not stages:
        problems.append("'stages' must be a non-empty array")
        return problems
    prev_index = -1
    prev_end = 0
    for pos, stage in enumerate(stages):
        if not isinstance(stage, dict):
            problems.append("stages[%d] is not an object" % pos)
            continue
        unknown = set(stage) - TRACE_STAGE_KEYS
        if unknown:
            problems.append("stages[%d] unknown keys: %s"
                            % (pos, ", ".join(sorted(unknown))))
        name = stage.get("stage")
        if name not in TRACE_STAGES:
            problems.append("stages[%d] unknown stage %r" % (pos, name))
            continue
        start = stage.get("start_ns")
        end = stage.get("end_ns")
        if not _is_int(start) or start < 0 or not _is_int(end) or end < 0:
            problems.append(
                "stages[%d] (%s) start_ns/end_ns must be non-negative ints"
                % (pos, name))
            continue
        if end < start:
            problems.append("stages[%d] (%s) ends before it starts"
                            % (pos, name))
        index = TRACE_STAGES.index(name)
        if index <= prev_index:
            problems.append("stages[%d] (%s) out of pipeline order"
                            % (pos, name))
        elif start < prev_end:
            # Stages on one request never overlap: each begins after the
            # previous one ended (gaps are fine, they are queueing).
            problems.append("stages[%d] (%s) overlaps the previous stage"
                            % (pos, name))
        prev_index = index
        prev_end = max(prev_end, end)
    return problems


def validate_file(path):
    """Prints violations for one file; returns the number found."""
    violations = 0
    records = 0
    is_lint = False
    is_trace = False
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print("%s: %s" % (path, e), file=sys.stderr)
        return 1
    for num, line in enumerate(lines, start=1):
        if not line.strip():
            print("%s:%d: blank line" % (path, num), file=sys.stderr)
            violations += 1
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            print("%s:%d: invalid JSON: %s" % (path, num, e), file=sys.stderr)
            violations += 1
            continue
        if records == 0:
            # roadnet_lint findings and server trace files are detected
            # by their first record; the schemas never mix in one file.
            is_lint = isinstance(obj, dict) and "rule" in obj
            is_trace = isinstance(obj, dict) and "trace_id" in obj
        records += 1
        if is_lint:
            problems = check_lint_line(obj, is_last=num == len(lines))
        elif is_trace:
            problems = check_trace_line(obj)
        else:
            problems = check_line(obj)
        for problem in problems:
            print("%s:%d: %s" % (path, num, problem), file=sys.stderr)
            violations += 1
    if records == 0:
        print("%s: no metric records" % path, file=sys.stderr)
        violations += 1
    if is_lint and records > 0 and violations == 0:
        last = json.loads(lines[-1])
        if last.get("rule") != "summary":
            print("%s: lint file must end with a summary record" % path,
                  file=sys.stderr)
            violations += 1
    if violations == 0:
        kind = "lint" if is_lint else ("trace" if is_trace else "metric")
        print("%s: %d %s records OK" % (path, records, kind))
    return violations


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    total = sum(validate_file(path) for path in argv[1:])
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
