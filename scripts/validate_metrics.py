#!/usr/bin/env python3
"""Schema check for --metrics-out and roadnet_lint JSONL files (stdlib only).

Usage: validate_metrics.py FILE [FILE...]

Metrics files: each line must be a JSON object of the form

    {"name": <non-empty string>,
     "value": <number or null>,          # null = non-finite measurement
     "labels": {<string>: <string>}}     # optional

with no other keys.

Lint files (roadnet_lint --json) are detected by the "rule" key on the
first record. Finding records are

    {"rule": "R1".."R7"|"W1", "name": <str>, "file": <str>,
     "line": <positive int>, "message": <non-empty str>,
     "waived": <bool>, "waiver_reason": <str, only when waived>}

and the file ends with exactly one summary record

    {"rule": "summary", "files_scanned": <int>, "findings": <int>,
     "waived": <int>, "waivers_unused": <int>}

Exits 1 (listing every violation) if any file fails, which lets
scripts/check.sh gate on both outputs staying machine-readable.
"""

import json
import sys

ALLOWED_KEYS = {"name", "value", "labels"}
LINT_FINDING_KEYS = {"rule", "name", "file", "line", "message", "waived",
                     "waiver_reason"}
LINT_SUMMARY_KEYS = {"rule", "files_scanned", "findings", "waived",
                     "waivers_unused"}


def check_line(obj):
    """Returns a list of violations for one parsed JSONL record."""
    problems = []
    if not isinstance(obj, dict):
        return ["record is not a JSON object"]
    unknown = set(obj) - ALLOWED_KEYS
    if unknown:
        problems.append("unknown keys: %s" % ", ".join(sorted(unknown)))
    name = obj.get("name")
    if not isinstance(name, str) or not name:
        problems.append("'name' must be a non-empty string")
    if "value" not in obj:
        problems.append("missing 'value'")
    else:
        value = obj["value"]
        # bool is an int subclass; a true/false metric value is a bug.
        if not (value is None or
                (isinstance(value, (int, float)) and
                 not isinstance(value, bool))):
            problems.append("'value' must be a number or null")
    if "labels" in obj:
        labels = obj["labels"]
        if not isinstance(labels, dict):
            problems.append("'labels' must be an object")
        elif not all(isinstance(k, str) and isinstance(v, str)
                     for k, v in labels.items()):
            problems.append("'labels' entries must map strings to strings")
    return problems


def _is_int(value):
    return isinstance(value, int) and not isinstance(value, bool)


def check_lint_line(obj, is_last):
    """Returns a list of violations for one roadnet_lint JSONL record."""
    problems = []
    if not isinstance(obj, dict):
        return ["record is not a JSON object"]
    if obj.get("rule") == "summary":
        if not is_last:
            problems.append("summary record must be the last line")
        unknown = set(obj) - LINT_SUMMARY_KEYS
        if unknown:
            problems.append("unknown keys: %s" % ", ".join(sorted(unknown)))
        for key in sorted(LINT_SUMMARY_KEYS - {"rule"}):
            if not _is_int(obj.get(key)) or obj.get(key) < 0:
                problems.append("'%s' must be a non-negative integer" % key)
        return problems
    unknown = set(obj) - LINT_FINDING_KEYS
    if unknown:
        problems.append("unknown keys: %s" % ", ".join(sorted(unknown)))
    for key in ("rule", "name", "file", "message"):
        if not isinstance(obj.get(key), str) or not obj.get(key):
            problems.append("'%s' must be a non-empty string" % key)
    if not _is_int(obj.get("line")) or obj.get("line", 0) < 1:
        problems.append("'line' must be a positive integer")
    if not isinstance(obj.get("waived"), bool):
        problems.append("'waived' must be a boolean")
    if obj.get("waived") is True:
        if not isinstance(obj.get("waiver_reason"), str) or \
                not obj.get("waiver_reason"):
            problems.append("waived finding must carry 'waiver_reason'")
    elif "waiver_reason" in obj:
        problems.append("'waiver_reason' only allowed on waived findings")
    return problems


def validate_file(path):
    """Prints violations for one file; returns the number found."""
    violations = 0
    records = 0
    is_lint = False
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print("%s: %s" % (path, e), file=sys.stderr)
        return 1
    for num, line in enumerate(lines, start=1):
        if not line.strip():
            print("%s:%d: blank line" % (path, num), file=sys.stderr)
            violations += 1
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            print("%s:%d: invalid JSON: %s" % (path, num, e), file=sys.stderr)
            violations += 1
            continue
        if records == 0:
            # roadnet_lint findings files are detected by their first
            # record; the two schemas never mix in one file.
            is_lint = isinstance(obj, dict) and "rule" in obj
        records += 1
        if is_lint:
            problems = check_lint_line(obj, is_last=num == len(lines))
        else:
            problems = check_line(obj)
        for problem in problems:
            print("%s:%d: %s" % (path, num, problem), file=sys.stderr)
            violations += 1
    if records == 0:
        print("%s: no metric records" % path, file=sys.stderr)
        violations += 1
    if is_lint and records > 0 and violations == 0:
        last = json.loads(lines[-1])
        if last.get("rule") != "summary":
            print("%s: lint file must end with a summary record" % path,
                  file=sys.stderr)
            violations += 1
    if violations == 0:
        kind = "lint" if is_lint else "metric"
        print("%s: %d %s records OK" % (path, records, kind))
    return violations


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    total = sum(validate_file(path) for path in argv[1:])
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
