#!/usr/bin/env python3
"""Schema check for --metrics-out JSONL files (stdlib only).

Usage: validate_metrics.py FILE [FILE...]

Each line must be a JSON object of the form

    {"name": <non-empty string>,
     "value": <number or null>,          # null = non-finite measurement
     "labels": {<string>: <string>}}     # optional

with no other keys. Exits 1 (listing every violation) if any file fails,
which lets scripts/check.sh gate on the CLI's metrics output staying
machine-readable.
"""

import json
import sys

ALLOWED_KEYS = {"name", "value", "labels"}


def check_line(obj):
    """Returns a list of violations for one parsed JSONL record."""
    problems = []
    if not isinstance(obj, dict):
        return ["record is not a JSON object"]
    unknown = set(obj) - ALLOWED_KEYS
    if unknown:
        problems.append("unknown keys: %s" % ", ".join(sorted(unknown)))
    name = obj.get("name")
    if not isinstance(name, str) or not name:
        problems.append("'name' must be a non-empty string")
    if "value" not in obj:
        problems.append("missing 'value'")
    else:
        value = obj["value"]
        # bool is an int subclass; a true/false metric value is a bug.
        if not (value is None or
                (isinstance(value, (int, float)) and
                 not isinstance(value, bool))):
            problems.append("'value' must be a number or null")
    if "labels" in obj:
        labels = obj["labels"]
        if not isinstance(labels, dict):
            problems.append("'labels' must be an object")
        elif not all(isinstance(k, str) and isinstance(v, str)
                     for k, v in labels.items()):
            problems.append("'labels' entries must map strings to strings")
    return problems


def validate_file(path):
    """Prints violations for one file; returns the number found."""
    violations = 0
    records = 0
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print("%s: %s" % (path, e), file=sys.stderr)
        return 1
    for num, line in enumerate(lines, start=1):
        if not line.strip():
            print("%s:%d: blank line" % (path, num), file=sys.stderr)
            violations += 1
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            print("%s:%d: invalid JSON: %s" % (path, num, e), file=sys.stderr)
            violations += 1
            continue
        records += 1
        for problem in check_line(obj):
            print("%s:%d: %s" % (path, num, problem), file=sys.stderr)
            violations += 1
    if records == 0:
        print("%s: no metric records" % path, file=sys.stderr)
        violations += 1
    if violations == 0:
        print("%s: %d records OK" % (path, records))
    return violations


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    total = sum(validate_file(path) for path in argv[1:])
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
