// Layout ablation (ours): the rank-permuted, SoA-split CH search core vs.
// the original-order AoS layout it replaced. Both query cores run over
// the SAME contraction (identical ranks, identical augmented edge set),
// so every latency difference is a memory-layout effect — exactly the
// class of gap "Transit Node Routing Reconsidered" attributes to cache
// behaviour rather than algorithmics.
//
//   bench_ch_layout [--quick] [--out BENCH_ch_layout.json]
//
// Measures distance and path queries across Q1..Q10 per dataset, prints a
// paper-style table, and writes machine-readable JSONL (validated by
// scripts/validate_metrics.py). Exits nonzero if any distance disagrees
// between the layouts or if the new layout is slower than the legacy
// baseline on the aggregate Q6..Q10 distance workload of the largest
// dataset — the regression gate scripts/check.sh runs.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "ch/ch_index.h"
#include "ch/contraction.h"
#include "core/experiment.h"
#include "obs/metrics.h"
#include "pq/indexed_heap.h"
#include "routing/path_index.h"
#include "workload/query_gen.h"

namespace roadnet {
namespace {

// The pre-split baseline, preserved verbatim as a PathIndex: vertices in
// original (generator/spatial) order, one 12-byte AoS record per upward
// arc with the middle tag inline, parent-vertex trees, and binary-search
// FindEdge per unpacked hop (counted as counters.edge_searches). Only the
// contraction handoff differs from the historical ChIndex: it adopts a
// ContractionResult so both layouts share one hierarchy.
class LegacyChIndex : public PathIndex {
 public:
  LegacyChIndex(const Graph& g, const ContractionResult& result)
      : graph_(g), rank_(result.rank) {
    const uint32_t n = g.NumVertices();
    std::vector<uint32_t> degree(n, 0);
    for (const TaggedEdge& e : result.edges) {
      VertexId lo = rank_[e.u] < rank_[e.v] ? e.u : e.v;
      ++degree[lo];
    }
    up_offsets_.assign(n + 1, 0);
    for (uint32_t v = 0; v < n; ++v) {
      up_offsets_[v + 1] = up_offsets_[v] + degree[v];
    }
    up_arcs_.resize(up_offsets_[n]);
    std::vector<size_t> cursor(up_offsets_.begin(), up_offsets_.end() - 1);
    for (const TaggedEdge& e : result.edges) {
      VertexId lo = e.u, hi = e.v;
      if (rank_[lo] > rank_[hi]) std::swap(lo, hi);
      up_arcs_[cursor[lo]++] = UpArc{hi, e.weight, e.middle};
    }
    for (uint32_t v = 0; v < n; ++v) {
      std::sort(up_arcs_.begin() + up_offsets_[v],
                up_arcs_.begin() + up_offsets_[v + 1],
                [](const UpArc& a, const UpArc& b) { return a.to < b.to; });
    }
  }

  std::string Name() const override { return "CH-legacy"; }
  std::unique_ptr<QueryContext> NewContext() const override {
    return std::make_unique<Context>(graph_.NumVertices());
  }
  size_t IndexBytes() const override {
    return rank_.size() * sizeof(uint32_t) +
           up_offsets_.size() * sizeof(size_t) +
           up_arcs_.size() * sizeof(UpArc);
  }

  Distance DistanceQuery(QueryContext* ctx, VertexId s,
                         VertexId t) const override {
    Distance d = kInfDistance;
    Search(static_cast<Context*>(ctx), s, t, &d);
    return d;
  }

  Path PathQuery(QueryContext* raw_ctx, VertexId s, VertexId t) const override {
    Context* ctx = static_cast<Context*>(raw_ctx);
    Distance d = kInfDistance;
    VertexId meet = Search(ctx, s, t, &d);
    if (meet == kInvalidVertex) return {};
    if (s == t) return {s};
    std::vector<VertexId> up_path;
    for (VertexId cur = meet; cur != kInvalidVertex;
         cur = ctx->forward.parent[cur]) {
      up_path.push_back(cur);
    }
    std::reverse(up_path.begin(), up_path.end());
    for (VertexId cur = ctx->backward.parent[meet]; cur != kInvalidVertex;
         cur = ctx->backward.parent[cur]) {
      up_path.push_back(cur);
    }
    Path path;
    path.push_back(up_path.front());
    for (size_t i = 0; i + 1 < up_path.size(); ++i) {
      UnpackEdge(up_path[i], up_path[i + 1], &path, &ctx->counters);
    }
    return path;
  }

 private:
  struct UpArc {
    VertexId to;
    Weight weight;
    VertexId middle;
  };

  struct SearchSide {
    IndexedHeap<Distance> heap;
    std::vector<Distance> dist;
    std::vector<VertexId> parent;
    std::vector<uint32_t> reached;

    explicit SearchSide(uint32_t n)
        : heap(n), dist(n, 0), parent(n, kInvalidVertex), reached(n, 0) {}
  };

  struct Context : QueryContext {
    explicit Context(uint32_t n) : forward(n), backward(n) {}
    SearchSide forward;
    SearchSide backward;
    uint32_t generation = 0;
  };

  std::span<const UpArc> UpArcs(VertexId v) const {
    return {up_arcs_.data() + up_offsets_[v],
            up_offsets_[v + 1] - up_offsets_[v]};
  }

  bool IsStalled(const SearchSide& side, uint32_t generation, VertexId v,
                 Distance dv) const {
    for (const UpArc& a : UpArcs(v)) {
      if (side.reached[a.to] == generation &&
          side.dist[a.to] + a.weight < dv) {
        return true;
      }
    }
    return false;
  }

  VertexId Search(Context* ctx, VertexId s, VertexId t,
                  Distance* out_dist) const {
    ++ctx->generation;
    ctx->counters.Reset();
    SearchSide& forward = ctx->forward;
    SearchSide& backward = ctx->backward;
    forward.heap.Clear();
    backward.heap.Clear();
    forward.dist[s] = 0;
    forward.parent[s] = kInvalidVertex;
    forward.reached[s] = ctx->generation;
    forward.heap.Push(s, 0);
    backward.dist[t] = 0;
    backward.parent[t] = kInvalidVertex;
    backward.reached[t] = ctx->generation;
    backward.heap.Push(t, 0);
    ctx->counters.HeapPush(2);

    Distance best = (s == t) ? 0 : kInfDistance;
    VertexId meet = (s == t) ? s : kInvalidVertex;

    SearchSide* sides[2] = {&forward, &backward};
    while (true) {
      SearchSide* side = nullptr;
      for (SearchSide* cand : sides) {
        if (cand->heap.Empty() || cand->heap.MinKey() >= best) continue;
        if (side == nullptr || cand->heap.MinKey() < side->heap.MinKey()) {
          side = cand;
        }
      }
      if (side == nullptr) break;
      SearchSide* other = (side == &forward) ? &backward : &forward;

      VertexId u = side->heap.PopMin();
      ctx->counters.HeapPop();
      ctx->counters.Settle();
      const Distance du = side->dist[u];
      if (IsStalled(*side, ctx->generation, u, du)) continue;

      for (const UpArc& a : UpArcs(u)) {
        ctx->counters.RelaxEdge();
        const Distance cand = du + a.weight;
        bool improved = false;
        if (side->reached[a.to] != ctx->generation) {
          side->reached[a.to] = ctx->generation;
          side->dist[a.to] = cand;
          side->parent[a.to] = u;
          side->heap.Push(a.to, cand);
          ctx->counters.HeapPush();
          improved = true;
        } else if (cand < side->dist[a.to]) {
          side->dist[a.to] = cand;
          side->parent[a.to] = u;
          if (side->heap.Contains(a.to)) {
            side->heap.DecreaseKey(a.to, cand);
          } else {
            side->heap.Push(a.to, cand);
          }
          ctx->counters.HeapPush();
          improved = true;
        }
        if (improved && other->reached[a.to] == ctx->generation) {
          const Distance total = cand + other->dist[a.to];
          if (total < best) {
            best = total;
            meet = a.to;
          }
        }
      }
    }
    *out_dist = best;
    return meet;
  }

  const UpArc* FindEdge(VertexId a, VertexId b,
                        QueryCounters* counters) const {
    counters->EdgeSearch();
    VertexId lo = a, hi = b;
    if (rank_[lo] > rank_[hi]) std::swap(lo, hi);
    auto arcs = UpArcs(lo);
    auto it = std::lower_bound(
        arcs.begin(), arcs.end(), hi,
        [](const UpArc& arc, VertexId target) { return arc.to < target; });
    return (it != arcs.end() && it->to == hi) ? &*it : nullptr;
  }

  void UnpackEdge(VertexId a, VertexId b, Path* out,
                  QueryCounters* counters) const {
    const UpArc* e = FindEdge(a, b, counters);
    if (e == nullptr || e->middle == kInvalidVertex) {
      out->push_back(b);
      return;
    }
    counters->ShortcutUnpacked();
    UnpackEdge(a, e->middle, out, counters);
    UnpackEdge(e->middle, b, out, counters);
  }

  const Graph& graph_;
  std::vector<uint32_t> rank_;
  std::vector<size_t> up_offsets_;
  std::vector<UpArc> up_arcs_;
};

// Paired best-of-three measurement. A single pass over a quick-mode set
// lasts ~2ms, inside timer/scheduler noise, so each sample repeats the
// set until it covers at least kMinSampleMicros of wall clock; samples
// for the two layouts are interleaved so slow machine phases (frequency
// scaling, noisy neighbours) hit both sides rather than biasing one.
constexpr double kMinSampleMicros = 20000.0;

struct LayoutTimes {
  double legacy;
  double ranked;
};

LayoutTimes MeasureBoth(PathIndex* legacy, PathIndex* ranked,
                        const QuerySet& set,
                        double (*pass)(PathIndex*, const QuerySet&)) {
  // Warmup passes: first touch and page faults stay out of the samples.
  const double warm_legacy = pass(legacy, set);
  const double warm_ranked = pass(ranked, set);
  const double pass_micros =
      std::max(warm_legacy, warm_ranked) * static_cast<double>(set.pairs.size());
  const int reps =
      std::max(1, static_cast<int>(kMinSampleMicros / (pass_micros + 1) + 1));
  LayoutTimes best{warm_legacy, warm_ranked};
  for (int sample = 0; sample < 3; ++sample) {
    double total_legacy = 0, total_ranked = 0;
    for (int r = 0; r < reps; ++r) total_legacy += pass(legacy, set);
    for (int r = 0; r < reps; ++r) total_ranked += pass(ranked, set);
    best.legacy = std::min(best.legacy, total_legacy / reps);
    best.ranked = std::min(best.ranked, total_ranked / reps);
  }
  return best;
}

}  // namespace
}  // namespace roadnet

int main(int argc, char** argv) {
  using namespace roadnet;

  bool quick = bench::FastMode();
  std::string out_path = "BENCH_ch_layout.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_ch_layout [--quick] [--out FILE.json]\n");
      return 2;
    }
  }

  // Layout effects are cache effects, so the gated (largest) dataset must
  // not fit comfortably in cache: both modes go up to W-US' (62600
  // vertices, ~5s contraction), whose per-side search state plus arc
  // array exceed typical L2. Quick mode skips the smaller warmup sizes.
  std::vector<DatasetSpec> specs;
  for (const auto& spec : PaperDatasets()) {
    if ((!quick && (spec.name == "CO'" || spec.name == "CA'")) ||
        spec.name == "FL'" || spec.name == "W-US'" || spec.name == "C-US'" ||
        spec.name == "US'") {
      specs.push_back(spec);
    }
  }

  MetricsRegistry metrics;
  std::printf("CH layout ablation: rank-permuted SoA vs. original-order "
              "AoS (one contraction, two query cores)\n");

  bool gate_failed = false;
  for (size_t di = 0; di < specs.size(); ++di) {
    const DatasetSpec& spec = specs[di];
    const bool largest = di + 1 == specs.size();
    Graph g = BuildDataset(spec);
    ContractionResult contraction = ContractGraph(g, ChConfig{});
    LegacyChIndex legacy(g, contraction);
    ChIndex ranked(g, std::move(contraction), ChConfig{});

    const auto sets =
        GenerateLInfQuerySets(g, quick ? 250 : 500, 4100 + spec.seed);

    std::printf("\n(%s)  n=%u, %zu shortcuts\n", spec.name.c_str(),
                g.NumVertices(), ranked.NumShortcuts());
    std::printf("%-5s %8s  %11s %11s %8s  %11s %11s %8s\n", "set", "queries",
                "dist aos", "dist soa", "speedup", "path aos", "path soa",
                "speedup");
    bench::PrintRule(88);

    double hi_legacy_dist = 0, hi_ranked_dist = 0;  // Q6..Q10 aggregate
    for (const QuerySet& set : sets) {
      if (set.pairs.empty()) continue;
      if (Experiment::CountDistanceMismatches(&legacy, &ranked, set) != 0) {
        std::fprintf(stderr, "FAIL: layouts disagree on %s/%s distances\n",
                     spec.name.c_str(), set.name.c_str());
        return 1;
      }
      const LayoutTimes dist = MeasureBoth(
          &legacy, &ranked, set, &Experiment::MeasureDistanceQueries);
      const LayoutTimes path =
          MeasureBoth(&legacy, &ranked, set, &Experiment::MeasurePathQueries);
      const double legacy_dist = dist.legacy;
      const double ranked_dist = dist.ranked;
      const double legacy_path = path.legacy;
      const double ranked_path = path.ranked;
      const bool high_set = set.name >= "Q6" || set.name == "Q10";
      if (high_set) {
        hi_legacy_dist += legacy_dist * set.pairs.size();
        hi_ranked_dist += ranked_dist * set.pairs.size();
      }
      std::printf("%-5s %8zu  %11.2f %11.2f %7.2fx  %11.2f %11.2f %7.2fx\n",
                  set.name.c_str(), set.pairs.size(), legacy_dist,
                  ranked_dist, legacy_dist / ranked_dist, legacy_path,
                  ranked_path, legacy_path / ranked_path);
      std::vector<std::pair<std::string, std::string>> labels = {
          {"dataset", spec.name}, {"set", set.name}};
      auto with_layout = [&labels](const char* layout) {
        auto l = labels;
        l.emplace_back("layout", layout);
        return l;
      };
      metrics.Add("ch_dist_us", legacy_dist, with_layout("legacy_aos"));
      metrics.Add("ch_dist_us", ranked_dist, with_layout("rank_soa"));
      metrics.Add("ch_path_us", legacy_path, with_layout("legacy_aos"));
      metrics.Add("ch_path_us", ranked_path, with_layout("rank_soa"));
      metrics.Add("ch_dist_speedup", legacy_dist / ranked_dist, labels);
      metrics.Add("ch_path_speedup", legacy_path / ranked_path, labels);
    }

    if (hi_ranked_dist > 0) {
      const double speedup = hi_legacy_dist / hi_ranked_dist;
      std::printf("%s Q6..Q10 distance speedup: %.2fx\n", spec.name.c_str(),
                  speedup);
      metrics.Add("ch_dist_speedup_q6_q10", speedup, {{"dataset", spec.name}});
      // The regression gate: on the largest dataset the rank-permuted SoA
      // layout must not lose to the baseline it replaced.
      if (largest && speedup < 1.0) gate_failed = true;
    }
    metrics.Add("ch_index_bytes", static_cast<double>(legacy.IndexBytes()),
                {{"dataset", spec.name}, {"layout", "legacy_aos"}});
    metrics.Add("ch_index_bytes", static_cast<double>(ranked.IndexBytes()),
                {{"dataset", spec.name}, {"layout", "rank_soa"}});
  }

  if (!metrics.WriteFile(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  if (gate_failed) {
    std::fprintf(stderr,
                 "FAIL: rank-permuted SoA layout slower than the legacy "
                 "baseline on Q6..Q10 distance queries\n");
    return 1;
  }
  return 0;
}
