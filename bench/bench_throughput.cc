// Batch query throughput: queries/sec vs worker count for the five main
// techniques, through the concurrent QueryEngine. The paper measures
// per-query latency on one core; a production service provisions by
// aggregate throughput, so this bench reports how each technique scales
// when one immutable index is shared by a pool of workers, each with its
// own QueryContext.
//
// Expected shape: near-linear scaling for every technique (queries are
// read-only and independent), with the heavier per-query techniques
// (bidirectional Dijkstra) scaling at least as well as the light ones
// because their work units dwarf the batch bookkeeping.

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "ch/ch_index.h"
#include "dijkstra/bidirectional.h"
#include "engine/query_engine.h"
#include "hl/hl_index.h"
#include "pcpd/pcpd_index.h"
#include "silc/silc_index.h"
#include "tnr/tnr_index.h"

int main() {
  using namespace roadnet;

  const std::vector<size_t> thread_counts = {1, 2, 4, 8};

  // One mid-size dataset: big enough that a batch runs long against the
  // pool hand-off cost, small enough that the all-pairs techniques build.
  std::vector<DatasetSpec> panels;
  for (const auto& spec : PaperDatasets()) {
    if (spec.name == (bench::FastMode() ? "DE'" : "CO'")) {
      panels.push_back(spec);
    }
  }

  // Scaling beyond this many workers is memory-bus / scheduler dependent;
  // below it, qps should grow near-linearly with the worker count.
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("Batch throughput: aggregate queries/sec vs worker count\n");
  std::printf("hardware threads: %u%s\n", hw,
              hw < 4 ? "  (speedup@4 cannot exceed the core count)" : "");
  for (const auto& spec : panels) {
    Graph g = BuildDataset(spec);

    BidirectionalDijkstra bidi(g);
    ChIndex ch(g);
    TnrConfig config;
    config.grid_resolution = bench::PaperGridResolution();
    TnrIndex tnr(g, &ch, config);
    HlIndex hl(g, ch);
    std::unique_ptr<SilcIndex> silc;
    std::unique_ptr<PcpdIndex> pcpd;
    if (g.NumVertices() <= bench::MaxVerticesForAllPairs()) {
      silc = std::make_unique<SilcIndex>(g);
      pcpd = std::make_unique<PcpdIndex>(g);
    }
    std::vector<PathIndex*> indexes = {&bidi, &ch, &hl, &tnr};
    if (silc != nullptr) indexes.push_back(silc.get());
    if (pcpd != nullptr) indexes.push_back(pcpd.get());

    // One pooled batch over all populated Q1..Q10 sets, so the mix spans
    // the full spectrum of query difficulty and work stealing has real
    // imbalance to fix.
    const auto sets =
        GenerateLInfQuerySets(g, bench::QueriesPerSet(), 4200 + spec.seed);
    std::vector<std::pair<VertexId, VertexId>> queries;
    for (const auto& set : sets) {
      queries.insert(queries.end(), set.pairs.begin(), set.pairs.end());
    }
    // Slow methods get a smaller batch; qps is batch-size independent.
    // Stride-sampled so the subsample keeps the Q1..Q10 difficulty mix.
    std::vector<std::pair<VertexId, VertexId>> small;
    const size_t small_target =
        std::min(queries.size(), 4 * bench::SlowMethodQueryCap());
    const size_t stride = std::max<size_t>(1, queries.size() / small_target);
    for (size_t i = 0; i < queries.size(); i += stride) {
      small.push_back(queries[i]);
    }

    std::printf("\n(%s)  n=%u, batch=%zu queries (Q1..Q10 pooled)\n",
                spec.name.c_str(), g.NumVertices(), queries.size());
    std::printf("%-10s |", "Method");
    for (size_t tc : thread_counts) std::printf(" %9zu thr", tc);
    std::printf(" | %9s %9s\n", "speedup@4", "p99 us@4");
    bench::PrintRule(76);

    for (PathIndex* index : indexes) {
      const bool slow = index == &bidi;
      const auto& batch = slow ? small : queries;
      BatchOptions options;
      options.record_latencies = true;

      std::printf("%-10s |", index->Name().c_str());
      double qps1 = 0, qps4 = 0, p99_at_4 = 0;
      for (size_t tc : thread_counts) {
        QueryEngine engine(*index, tc);
        engine.Run(batch, options);  // warm-up: touch caches, page in
        // Repeat the batch until the measured window is long enough to
        // drown scheduler jitter; qps is aggregated over all repeats.
        double seconds = 0;
        size_t done = 0;
        double p99 = 0;
        while (seconds < 0.25) {
          const BatchResult result = engine.Run(batch, options);
          seconds += result.stats.wall_seconds;
          done += result.stats.num_queries;
          p99 = result.stats.p99_micros;
        }
        const double qps = seconds > 0 ? done / seconds : 0;
        if (tc == 1) qps1 = qps;
        if (tc == 4) {
          qps4 = qps;
          p99_at_4 = p99;
        }
        std::printf(" %13.0f", qps);
      }
      std::printf(" | %8.2fx %9.1f\n", qps1 > 0 ? qps4 / qps1 : 0,
                  p99_at_4);
    }
  }
  std::printf(
      "\nspeedup@4 = aggregate qps at 4 workers / qps at 1 worker.\n");
  return 0;
}
