// Hub labels vs. the CH they were built from: the paper's
// space-for-time endgame. Both indexes answer from the SAME contraction
// (HL labels are the CH's pruned upward search spaces), so the latency
// gap is purely merge-intersection vs. bidirectional upward search, and
// the space gap is purely the flattened label arrays.
//
//   bench_hl [--quick] [--out BENCH_hl.json]
//
// Measures distance and path queries across Q1..Q10 per dataset, prints
// a paper-style table plus a label-size-vs-CH-space summary, and writes
// machine-readable JSONL (validated by scripts/validate_metrics.py).
// Exits nonzero if any distance disagrees between HL and CH or if HL is
// not faster than CH on the aggregate Q6..Q10 distance workload of the
// largest dataset — the regression gate scripts/check.sh runs.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "ch/ch_index.h"
#include "core/experiment.h"
#include "hl/hl_index.h"
#include "obs/metrics.h"
#include "routing/path_index.h"
#include "util/bytes.h"
#include "workload/query_gen.h"

namespace roadnet {
namespace {

// Paired best-of-three measurement, interleaved so slow machine phases
// (frequency scaling, noisy neighbours) hit both indexes rather than
// biasing one; each sample repeats the set until it covers at least
// kMinSampleMicros of wall clock. Same discipline as bench_ch_layout.
constexpr double kMinSampleMicros = 20000.0;

struct PairedTimes {
  double ch;
  double hl;
};

PairedTimes MeasureBoth(PathIndex* ch, PathIndex* hl, const QuerySet& set,
                        double (*pass)(PathIndex*, const QuerySet&)) {
  const double warm_ch = pass(ch, set);
  const double warm_hl = pass(hl, set);
  const double pass_micros =
      std::max(warm_ch, warm_hl) * static_cast<double>(set.pairs.size());
  const int reps =
      std::max(1, static_cast<int>(kMinSampleMicros / (pass_micros + 1) + 1));
  PairedTimes best{warm_ch, warm_hl};
  for (int sample = 0; sample < 3; ++sample) {
    double total_ch = 0, total_hl = 0;
    for (int r = 0; r < reps; ++r) total_ch += pass(ch, set);
    for (int r = 0; r < reps; ++r) total_hl += pass(hl, set);
    best.ch = std::min(best.ch, total_ch / reps);
    best.hl = std::min(best.hl, total_hl / reps);
  }
  return best;
}

}  // namespace
}  // namespace roadnet

int main(int argc, char** argv) {
  using namespace roadnet;

  bool quick = bench::FastMode();
  std::string out_path = "BENCH_hl.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_hl [--quick] [--out FILE.json]\n");
      return 2;
    }
  }

  // The gated (largest) dataset is W-US' in both modes: big enough that
  // the CH baseline sits at its published 1.1-1.6 µs (BENCH_ch_layout)
  // and the label arrays dwarf L2, small enough that label construction
  // stays in CI budget. Full mode adds the smaller paper datasets for
  // the space-growth curve and the larger ones for scale.
  std::vector<DatasetSpec> specs;
  for (const auto& spec : PaperDatasets()) {
    if ((!quick && (spec.name == "CO'" || spec.name == "CA'")) ||
        spec.name == "FL'" || spec.name == "W-US'" ||
        (!quick && (spec.name == "C-US'" || spec.name == "US'"))) {
      specs.push_back(spec);
    }
  }

  MetricsRegistry metrics;
  std::printf("Hub labels vs. CH (one contraction: labels are its pruned "
              "upward search spaces)\n");

  bool gate_failed = false;
  for (size_t di = 0; di < specs.size(); ++di) {
    const DatasetSpec& spec = specs[di];
    const bool largest = di + 1 == specs.size();
    Graph g = BuildDataset(spec);
    ChIndex ch(g);

    const auto build_start = std::chrono::steady_clock::now();
    HlIndex hl(g, ch);
    const double build_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      build_start)
            .count();

    const auto sets =
        GenerateLInfQuerySets(g, quick ? 250 : 500, 4300 + spec.seed);

    std::printf("\n(%s)  n=%u, label build %.1fs, avg %.1f hubs/label "
                "(max %zu)\n",
                spec.name.c_str(), g.NumVertices(), build_seconds,
                hl.AvgLabelEntries(), hl.MaxLabelEntries());
    std::printf("%-5s %8s  %11s %11s %8s  %11s %11s %8s\n", "set", "queries",
                "dist ch", "dist hl", "speedup", "path ch", "path hl",
                "speedup");
    bench::PrintRule(88);

    double hi_ch_dist = 0, hi_hl_dist = 0;  // Q6..Q10 aggregate
    for (const QuerySet& set : sets) {
      if (set.pairs.empty()) continue;
      if (Experiment::CountDistanceMismatches(&ch, &hl, set) != 0) {
        std::fprintf(stderr, "FAIL: HL disagrees with CH on %s/%s distances\n",
                     spec.name.c_str(), set.name.c_str());
        return 1;
      }
      const PairedTimes dist =
          MeasureBoth(&ch, &hl, set, &Experiment::MeasureDistanceQueries);
      const PairedTimes path =
          MeasureBoth(&ch, &hl, set, &Experiment::MeasurePathQueries);
      const bool high_set = set.name >= "Q6" || set.name == "Q10";
      if (high_set) {
        hi_ch_dist += dist.ch * set.pairs.size();
        hi_hl_dist += dist.hl * set.pairs.size();
      }
      std::printf("%-5s %8zu  %11.2f %11.2f %7.2fx  %11.2f %11.2f %7.2fx\n",
                  set.name.c_str(), set.pairs.size(), dist.ch, dist.hl,
                  dist.ch / dist.hl, path.ch, path.hl, path.ch / path.hl);
      const std::vector<std::pair<std::string, std::string>> labels = {
          {"dataset", spec.name}, {"set", set.name}};
      metrics.Add("hl_dist_us", dist.hl, labels);
      metrics.Add("hl_ch_dist_us", dist.ch, labels);
      metrics.Add("hl_path_us", path.hl, labels);
      metrics.Add("hl_ch_path_us", path.ch, labels);
      metrics.Add("hl_dist_speedup", dist.ch / dist.hl, labels);
    }

    if (hi_hl_dist > 0) {
      const double speedup = hi_ch_dist / hi_hl_dist;
      std::printf("%s Q6..Q10 distance speedup over CH: %.2fx\n",
                  spec.name.c_str(), speedup);
      metrics.Add("hl_dist_speedup_q6_q10", speedup, {{"dataset", spec.name}});
      // The regression gate: on the largest dataset a label merge must
      // beat the rank-SoA CH search it was derived from.
      if (largest && speedup <= 1.0) gate_failed = true;
    }

    // The space side of the trade: label arrays vs. the CH structures.
    const double label_bytes = static_cast<double>(hl.LabelBytes());
    const double ch_bytes = static_cast<double>(ch.IndexBytes());
    std::printf("space: labels %.2f MiB vs CH %.2f MiB (%.2fx)\n",
                BytesToMiB(hl.LabelBytes()), BytesToMiB(ch.IndexBytes()),
                label_bytes / ch_bytes);
    metrics.Add("hl_label_bytes", label_bytes, {{"dataset", spec.name}});
    metrics.Add("hl_ch_index_bytes", ch_bytes, {{"dataset", spec.name}});
    metrics.Add("hl_space_ratio", label_bytes / ch_bytes,
                {{"dataset", spec.name}});
    metrics.Add("hl_avg_label_entries", hl.AvgLabelEntries(),
                {{"dataset", spec.name}});
    metrics.Add("hl_max_label_entries",
                static_cast<double>(hl.MaxLabelEntries()),
                {{"dataset", spec.name}});
    metrics.Add("hl_build_seconds", build_seconds, {{"dataset", spec.name}});
  }

  if (!metrics.WriteFile(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  if (gate_failed) {
    std::fprintf(stderr,
                 "FAIL: HL distance queries not faster than CH on the "
                 "Q6..Q10 workload of the largest dataset\n");
    return 1;
  }
  return 0;
}
