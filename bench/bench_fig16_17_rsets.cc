// Figures 16 and 17 (Appendix E.2): query time vs n on the alternative
// query sets R1, R4, R7, R10, which bucket pairs by network distance
// instead of L-infinity distance. Figure 16 reports distance queries,
// Figure 17 shortest path queries.
//
// Expected shape: qualitatively identical to Figures 8 and 10 — the
// relative ordering of the techniques is insensitive to whether workloads
// are binned geometrically or by network distance.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "ch/ch_index.h"
#include "core/experiment.h"
#include "dijkstra/bidirectional.h"
#include "silc/silc_index.h"
#include "tnr/tnr_index.h"

int main() {
  using namespace roadnet;
  const int kSetIndices[4] = {0, 3, 6, 9};  // R1, R4, R7, R10
  const char* kMethods[4] = {"Dijkstra", "CH", "TNR", "SILC"};

  struct Row {
    std::string dataset;
    uint32_t n = 0;
    double dist_us[4][4];
    double path_us[4][4];
  };
  std::vector<Row> rows;

  for (const auto& spec : bench::BenchDatasets()) {
    Graph g = BuildDataset(spec);
    Row row;
    row.dataset = spec.name;
    row.n = g.NumVertices();
    for (auto& a : row.dist_us) {
      for (auto& v : a) v = -1;
    }
    for (auto& a : row.path_us) {
      for (auto& v : a) v = -1;
    }

    BidirectionalDijkstra bidi(g);
    ChIndex ch(g);
    std::unique_ptr<TnrIndex> tnr;
    if (g.NumVertices() <= bench::MaxVerticesForTnr()) {
      TnrConfig config;
      config.grid_resolution = bench::PaperGridResolution();
      tnr = std::make_unique<TnrIndex>(g, &ch, config);
    }
    std::unique_ptr<SilcIndex> silc;
    if (g.NumVertices() <= bench::MaxVerticesForAllPairs()) {
      silc = std::make_unique<SilcIndex>(g);
    }

    const auto sets = GenerateNetworkDistanceQuerySets(
        g, bench::QueriesPerSet(), 1600 + spec.seed);
    for (int si = 0; si < 4; ++si) {
      const QuerySet& set = sets[kSetIndices[si]];
      if (set.pairs.empty()) continue;
      const QuerySet slow = bench::Subset(set, bench::SlowMethodQueryCap());
      row.dist_us[si][0] = Experiment::MeasureDistanceQueries(&bidi, slow);
      row.path_us[si][0] = Experiment::MeasurePathQueries(&bidi, slow);
      row.dist_us[si][1] = Experiment::MeasureDistanceQueries(&ch, set);
      row.path_us[si][1] = Experiment::MeasurePathQueries(&ch, set);
      if (tnr) {
        row.dist_us[si][2] =
            Experiment::MeasureDistanceQueries(tnr.get(), set);
        row.path_us[si][2] = Experiment::MeasurePathQueries(tnr.get(), set);
      }
      if (silc) {
        row.dist_us[si][3] =
            Experiment::MeasureDistanceQueries(silc.get(), set);
        row.path_us[si][3] = Experiment::MeasurePathQueries(silc.get(), set);
      }
    }
    rows.push_back(row);
    std::fprintf(stderr, "measured %s\n", spec.name.c_str());
  }

  auto print_figure = [&](const char* title, bool distance) {
    std::printf("\n%s\n", title);
    for (int si = 0; si < 4; ++si) {
      std::printf("\n(R%d)  running time (microsec) vs n\n",
                  kSetIndices[si] + 1);
      std::printf("%-8s %10s", "Dataset", "n");
      for (const char* m : kMethods) std::printf(" %10s", m);
      std::printf("\n");
      bench::PrintRule(64);
      for (const auto& row : rows) {
        std::printf("%-8s %10u", row.dataset.c_str(), row.n);
        for (int m = 0; m < 4; ++m) {
          bench::PrintMicrosCell(distance ? row.dist_us[si][m]
                                          : row.path_us[si][m]);
        }
        std::printf("\n");
      }
    }
  };
  std::printf("Figures 16 and 17: R query sets (network-distance buckets)\n");
  print_figure("Figure 16: DISTANCE queries", true);
  print_figure("Figure 17: SHORTEST PATH queries", false);
  return 0;
}
