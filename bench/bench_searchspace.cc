// Search-space comparison across every technique: average vertices
// settled, edges relaxed, heap traffic, and table/tree lookups per query
// for each query set Q1..Q10, as one machine-readable CSV table.
//
// This is the operation-count companion to the latency figures: the
// paper's Section 4 explains each technique's speed by how much of the
// graph its query touches, and these counters make that argument directly
// measurable. Expected ranking on average settled vertices:
//
//   Dijkstra >= Bidirectional >= CH,  and TNR's in-table queries settle
//   nothing at all (pure table lookups).
//
// The process exits nonzero if that ranking is violated, so a smoke run
// doubles as a regression check on the instrumentation.
//
// Usage: bench_searchspace [--out FILE]   (CSV always goes to stdout;
// --out duplicates it to FILE). ROADNET_BENCH_FAST=1 shrinks the dataset
// and query counts.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "alt/alt_index.h"
#include "arcflags/arc_flags.h"
#include "bench/bench_util.h"
#include "ch/ch_index.h"
#include "dijkstra/bidirectional.h"
#include "dijkstra/dijkstra.h"
#include "hiti/partition_overlay.h"
#include "pcpd/pcpd_index.h"
#include "reach/reach_index.h"
#include "silc/silc_index.h"
#include "tnr/tnr_index.h"

namespace {

using namespace roadnet;

// One CSV row: per-query averages of every counter over one (method, set).
void AppendRow(std::string* csv, const std::string& dataset,
               const std::string& method, const std::string& set,
               size_t queries, const QueryCounters& totals) {
  const double n = static_cast<double>(queries);
  char line[512];
  std::snprintf(line, sizeof(line),
                "%s,%s,%s,%zu,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f\n",
                dataset.c_str(), method.c_str(), set.c_str(), queries,
                totals.vertices_settled / n, totals.edges_relaxed / n,
                totals.heap_pushes / n, totals.heap_pops / n,
                totals.shortcuts_unpacked / n, totals.table_lookups / n,
                totals.tree_lookups / n);
  csv->append(line);
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];
  }

  // Largest dataset every technique can preprocess (SILC/PCPD/RE need
  // all-pairs work), so all ten methods appear in one table.
  DatasetSpec spec = PaperDatasets().front();
  for (const auto& candidate : PaperDatasets()) {
    if (candidate.target_vertices <= bench::MaxVerticesForAllPairs() &&
        candidate.target_vertices >= spec.target_vertices) {
      spec = candidate;
    }
  }
  Graph g = BuildDataset(spec);
  const size_t per_set = bench::FastMode() ? 20 : 100;
  const auto sets = GenerateLInfQuerySets(g, per_set, 4200 + spec.seed);

  std::fprintf(stderr, "search space: dataset %s, n=%u, %zu queries/set\n",
               spec.name.c_str(), g.NumVertices(), per_set);

  Dijkstra dijkstra(g);
  BidirectionalDijkstra bidi(g);
  AltIndex alt(g);
  ArcFlagsIndex arcflags(g);
  ReachIndex reach(g);
  PartitionOverlayIndex hiti(g);
  ChIndex ch(g);
  TnrConfig tnr_config;
  tnr_config.grid_resolution = bench::PaperGridResolution();
  TnrIndex tnr(g, &ch, tnr_config);
  SilcIndex silc(g);
  PcpdIndex pcpd(g);

  const std::vector<std::pair<std::string, PathIndex*>> methods = {
      {"Bidirectional", &bidi}, {"ALT", &alt},   {"ArcFlags", &arcflags},
      {"RE", &reach},           {"HiTi", &hiti}, {"CH", &ch},
      {"TNR", &tnr},            {"SILC", &silc}, {"PCPD", &pcpd}};

  std::string csv =
      "dataset,method,set,queries,avg_vertices_settled,avg_edges_relaxed,"
      "avg_heap_pushes,avg_heap_pops,avg_shortcuts_unpacked,"
      "avg_table_lookups,avg_tree_lookups\n";

  // Whole-bench totals driving the ranking check.
  QueryCounters dijkstra_total, bidi_total, ch_total;
  size_t total_queries = 0;
  size_t tnr_in_table = 0;           // queries TNR answered without a search
  uint64_t tnr_in_table_settled = 0; // their settled total (expected 0)

  for (const auto& set : sets) {
    if (set.pairs.empty()) continue;
    total_queries += set.pairs.size();

    // Unidirectional Dijkstra is not a PathIndex; drive it directly.
    QueryCounters dij;
    for (const auto& [s, t] : set.pairs) {
      dijkstra.Run(s, t);
      dij += dijkstra.Counters();
    }
    AppendRow(&csv, spec.name, "Dijkstra", set.name, set.pairs.size(), dij);
    dijkstra_total += dij;

    for (const auto& [method, index] : methods) {
      const std::unique_ptr<QueryContext> ctx = index->NewContext();
      QueryCounters totals;
      for (const auto& [s, t] : set.pairs) {
        index->DistanceQuery(ctx.get(), s, t);
        totals += ctx->counters;
        if (index == &tnr && tnr.TableApplicable(s, t)) {
          ++tnr_in_table;
          tnr_in_table_settled += ctx->counters.vertices_settled;
        }
      }
      AppendRow(&csv, spec.name, method, set.name, set.pairs.size(), totals);
      if (index == &bidi) bidi_total += totals;
      if (index == &ch) ch_total += totals;
    }
  }

  std::fputs(csv.c_str(), stdout);

  if (out_path != nullptr) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path);
      return 1;
    }
    std::fputs(csv.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", out_path);
  }

  // Ranking check (Section 4's search-space argument).
  const double n = static_cast<double>(total_queries);
  const double dij_avg = dijkstra_total.vertices_settled / n;
  const double bidi_avg = bidi_total.vertices_settled / n;
  const double ch_avg = ch_total.vertices_settled / n;
  std::fprintf(stderr,
               "avg settled: Dijkstra %.1f, Bidirectional %.1f, CH %.1f; "
               "TNR in-table %zu/%zu queries settling %llu vertices\n",
               dij_avg, bidi_avg, ch_avg, tnr_in_table, total_queries,
               static_cast<unsigned long long>(tnr_in_table_settled));
  if (dij_avg < bidi_avg || bidi_avg < ch_avg || tnr_in_table_settled != 0) {
    std::fprintf(stderr, "FAIL: settled-vertex ranking violated\n");
    return 1;
  }
  std::fprintf(stderr, "ranking check: PASS\n");
  return 0;
}
