// Table 1: dataset characteristics. Prints the synthetic analogues of the
// paper's ten DIMACS road networks (name, vertices, edges) plus generation
// time, so every other bench's inputs are auditable.

#include <cstdio>

#include "bench/bench_util.h"
#include "graph/connectivity.h"
#include "util/timer.h"

int main() {
  using namespace roadnet;
  std::printf("Table 1 (analogue): dataset characteristics\n");
  std::printf("%-8s %-28s %12s %12s %10s %10s\n", "Name", "Paper dataset",
              "Vertices", "Edges", "Gen (s)", "Connected");
  bench::PrintRule(86);
  for (const auto& spec : bench::BenchDatasets()) {
    Timer timer;
    Graph g = BuildDataset(spec);
    const double secs = timer.ElapsedSeconds();
    std::printf("%-8s %-28s %12u %12zu %10.2f %10s\n", spec.name.c_str(),
                spec.paper_name.c_str(), g.NumVertices(), g.NumEdges(), secs,
                IsConnected(g) ? "yes" : "NO");
  }
  std::printf(
      "\nPaper reference (Table 1): DE 48,812 .. US 23,947,347 vertices;\n"
      "the analogues keep the 1:489 size ladder at ~1:100 scale.\n");
  return 0;
}
