// Figure 6: space consumption (a) and preprocessing time (b) of CH, TNR,
// SILC, and PCPD as functions of the number of vertices n.
//
// Expected shape (paper Section 4.3): CH smallest and ~linear in n; TNR
// noticeably above CH with the gap narrowing as n grows (I1 ~constant, I2
// ~linear); SILC and PCPD orders of magnitude above both and only feasible
// on the four smallest datasets; preprocessing ordering CH < TNR <<
// SILC < PCPD.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "ch/ch_index.h"
#include <fstream>

#include "core/experiment.h"
#include "core/report.h"
#include "pcpd/pcpd_index.h"
#include "silc/silc_index.h"
#include "tnr/tnr_index.h"
#include "util/bytes.h"

int main() {
  using namespace roadnet;

  struct Row {
    std::string dataset;
    uint32_t n;
    double mb[4] = {-1, -1, -1, -1};    // CH, TNR, SILC, PCPD
    double secs[4] = {-1, -1, -1, -1};
  };
  std::vector<Row> rows;

  for (const auto& spec : bench::BenchDatasets()) {
    Graph g = BuildDataset(spec);
    Row row;
    row.dataset = spec.name;
    row.n = g.NumVertices();

    // CH: always applicable.
    BuildResult ch_build = Experiment::MeasureBuild(
        "CH", [&] { return std::make_unique<ChIndex>(g); });
    auto* ch = static_cast<ChIndex*>(ch_build.index.get());
    row.mb[0] = BytesToMiB(ch_build.index_bytes);
    row.secs[0] = ch_build.preprocess_seconds;

    // TNR (128x128-analogue grid, CH fallback), up to the wall-clock cap.
    if (g.NumVertices() <= bench::MaxVerticesForTnr()) {
      BuildResult tnr_build = Experiment::MeasureBuild("TNR", [&] {
        TnrConfig config;
        config.grid_resolution = bench::PaperGridResolution();
        return std::make_unique<TnrIndex>(g, ch, config);
      });
      // The paper's TNR figures include everything the deployment needs;
      // with the CH fallback that is TNR's tables plus the CH index.
      row.mb[1] = BytesToMiB(tnr_build.index_bytes + ch_build.index_bytes);
      row.secs[1] = tnr_build.preprocess_seconds + ch_build.preprocess_seconds;
    }

    // SILC and PCPD: the four smallest datasets only (all-pairs cost),
    // mirroring the paper's 24 GB cutoff.
    if (g.NumVertices() <= bench::MaxVerticesForAllPairs()) {
      BuildResult silc_build = Experiment::MeasureBuild(
          "SILC", [&] { return std::make_unique<SilcIndex>(g); });
      row.mb[2] = BytesToMiB(silc_build.index_bytes);
      row.secs[2] = silc_build.preprocess_seconds;

      BuildResult pcpd_build = Experiment::MeasureBuild(
          "PCPD", [&] { return std::make_unique<PcpdIndex>(g); });
      row.mb[3] = BytesToMiB(pcpd_build.index_bytes);
      row.secs[3] = pcpd_build.preprocess_seconds;
    }
    rows.push_back(row);
    std::fprintf(stderr, "built %s\n", spec.name.c_str());
  }

  auto print_table = [&](const char* title, bool space) {
    std::printf("\n%s\n", title);
    std::printf("%-8s %10s %12s %12s %12s %12s\n", "Dataset", "n", "CH",
                "TNR", "SILC", "PCPD");
    bench::PrintRule(72);
    for (const Row& row : rows) {
      std::printf("%-8s %10u", row.dataset.c_str(), row.n);
      for (int m = 0; m < 4; ++m) {
        const double v = space ? row.mb[m] : row.secs[m];
        if (v < 0) {
          std::printf(" %12s", "n/a");
        } else {
          std::printf(" %12.3f", v);
        }
      }
      std::printf("\n");
    }
  };
  std::printf("Figure 6: space overhead and preprocessing time vs n\n");
  print_table("Figure 6(a): space consumption (MiB)", true);
  print_table("Figure 6(b): preprocessing time (seconds)", false);
  std::printf(
      "\nn/a = method not applicable at that scale (SILC/PCPD: all-pairs "
      "cost,\nas in the paper; TNR: bench wall-clock cap, see "
      "EXPERIMENTS.md).\n");

  // Optional machine-readable output for plotting.
  if (const char* dir = std::getenv("ROADNET_BENCH_CSV_DIR")) {
    const char* names[4] = {"CH", "TNR", "SILC", "PCPD"};
    std::vector<BuildRow> csv;
    for (const Row& row : rows) {
      for (int m = 0; m < 4; ++m) {
        if (row.secs[m] < 0) continue;
        csv.push_back(BuildRow{row.dataset, row.n, names[m], row.secs[m],
                               static_cast<size_t>(row.mb[m] * 1024 * 1024)});
      }
    }
    std::ofstream out(std::string(dir) + "/fig6.csv");
    WriteBuildCsv(csv, out);
    std::printf("wrote %s/fig6.csv\n", dir);
  }
  return 0;
}
