// Ablation (ours): CH design choices the paper's Section 3.2 discusses
// qualitatively — the vertex-ordering heuristic ("an inferior ordering can
// lead to O(n^2) shortcuts") and the stall-on-demand query optimization.
// Reports shortcuts added, preprocessing time, and distance/path query
// latency per configuration.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "ch/ch_index.h"
#include "core/experiment.h"
#include "util/bytes.h"

int main() {
  using namespace roadnet;

  struct Variant {
    const char* name;
    OrderingHeuristic heuristic;
  };
  const Variant kVariants[] = {
      {"edge-diff+deleted", OrderingHeuristic::kEdgeDifferenceDeleted},
      {"edge-diff", OrderingHeuristic::kEdgeDifference},
      {"degree", OrderingHeuristic::kDegree},
      {"random", OrderingHeuristic::kRandom},
  };

  std::printf("CH ablation: ordering heuristics and stall-on-demand\n");
  for (const auto& spec : bench::BenchDatasets()) {
    // Random ordering degrades sharply with size; keep panels modest.
    if (spec.name != "CO'" && spec.name != "FL'") continue;
    Graph g = BuildDataset(spec);
    const auto sets =
        GenerateLInfQuerySets(g, bench::QueriesPerSet(), 1800 + spec.seed);
    // A mixed workload: one near set, one far set.
    QuerySet mixed;
    mixed.name = "Q4+Q9";
    for (int idx : {3, 8}) {
      mixed.pairs.insert(mixed.pairs.end(), sets[idx].pairs.begin(),
                         sets[idx].pairs.end());
    }

    std::printf("\n(%s)  n=%u, %zu queries\n", spec.name.c_str(),
                g.NumVertices(), mixed.pairs.size());
    std::printf("%-20s %10s %10s %10s %12s %12s %12s\n", "Ordering",
                "shortcuts", "prep (s)", "MiB", "dist stall",
                "dist nostall", "path (us)");
    bench::PrintRule(92);
    for (const Variant& variant : kVariants) {
      ChConfig config;
      config.heuristic = variant.heuristic;
      BuildResult build = Experiment::MeasureBuild(
          "CH", [&] { return std::make_unique<ChIndex>(g, config); });
      auto* ch = static_cast<ChIndex*>(build.index.get());
      const double dist_stall =
          Experiment::MeasureDistanceQueries(ch, mixed);
      const double path_us = Experiment::MeasurePathQueries(ch, mixed);
      // Stall-on-demand is a build-time option (the index is immutable),
      // so the ablation builds a second index; the contraction is
      // deterministic, only the query flag differs.
      ChConfig nostall_config = config;
      nostall_config.stall_on_demand = false;
      ChIndex ch_nostall(g, nostall_config);
      const double dist_nostall =
          Experiment::MeasureDistanceQueries(&ch_nostall, mixed);
      std::printf("%-20s %10zu %10.2f %10.2f %12.2f %12.2f %12.2f\n",
                  variant.name, ch->NumShortcuts(), build.preprocess_seconds,
                  BytesToMiB(build.index_bytes), dist_stall, dist_nostall,
                  path_us);
    }
  }
  std::printf(
      "\nExpected: edge-difference orderings add the fewest shortcuts and "
      "answer\nqueries fastest; random ordering demonstrates the paper's "
      "inferior-ordering\nwarning; stalling should not hurt and usually "
      "helps on larger inputs.\n");
  return 0;
}
