// Figures 14 and 15 (Appendix E.1): TNR query efficiency under the four
// implementation variants — {coarse grid, hybrid grid} x {bidirectional
// Dijkstra fallback, CH fallback} — for distance queries (Fig. 14) and
// shortest path queries (Fig. 15) over Q1..Q10.
//
// Expected shape: the CH fallback beats the Dijkstra fallback wherever the
// locality filter rejects (near sets); the hybrid grid only helps around
// Q5/Q6 (pairs its fine level can answer but the coarse level cannot); all
// variants converge on far sets, which the coarse table answers anyway.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "ch/ch_index.h"
#include "core/experiment.h"
#include "tnr/tnr_index.h"

int main() {
  using namespace roadnet;

  const char* kVariantNames[4] = {"DxD(Dij)", "Hyb(Dij)", "DxD(CH)",
                                  "Hyb(CH)"};

  std::printf("Figures 14-15: TNR variants, query time (microsec)\n");
  for (const auto& spec : bench::BenchDatasets()) {
    Graph g = BuildDataset(spec);
    // Panel datasets: small, medium, large within TNR's bench budget.
    if (spec.name != "DE'" && spec.name != "CO'" && spec.name != "FL'" &&
        spec.name != "CA'") {
      continue;
    }
    if (bench::FastMode() && g.NumVertices() > 5000) continue;

    ChIndex ch(g);
    const uint32_t res = bench::PaperGridResolution();
    std::unique_ptr<TnrIndex> variants[4];
    const TnrConfig configs[4] = {
        {.grid_resolution = res, .fallback = TnrFallback::kBidirectionalDijkstra},
        {.grid_resolution = res, .hybrid = true,
         .fallback = TnrFallback::kBidirectionalDijkstra},
        {.grid_resolution = res, .fallback = TnrFallback::kCh},
        {.grid_resolution = res, .hybrid = true,
         .fallback = TnrFallback::kCh},
    };
    for (int i = 0; i < 4; ++i) {
      variants[i] = std::make_unique<TnrIndex>(g, &ch, configs[i]);
    }

    const auto sets =
        GenerateLInfQuerySets(g, bench::QueriesPerSet(), 1400 + spec.seed);
    for (int figure = 0; figure < 2; ++figure) {
      std::printf("\n(%s)  n=%u, D=%u — %s queries\n", spec.name.c_str(),
                  g.NumVertices(), res,
                  figure == 0 ? "DISTANCE (Fig. 14)" : "PATH (Fig. 15)");
      std::printf("%-6s %8s", "Set", "queries");
      for (const char* v : kVariantNames) std::printf(" %10s", v);
      std::printf("\n");
      bench::PrintRule(60);
      for (const auto& set : sets) {
        if (set.pairs.empty()) continue;
        std::printf("%-6s %8zu", set.name.c_str(), set.pairs.size());
        for (int i = 0; i < 4; ++i) {
          const double us =
              figure == 0
                  ? Experiment::MeasureDistanceQueries(variants[i].get(), set)
                  : Experiment::MeasurePathQueries(variants[i].get(), set);
          bench::PrintMicrosCell(us);
        }
        std::printf("\n");
      }
    }
  }
  return 0;
}
