// Table 2 (Appendix C): upper bound on the delta-redundancy of each road
// network — the minimum observed ratio length(P')/length(P), where P is a
// shortest path between a query pair and P' the shortest core-disjoint
// path (no shared interior vertex).
//
// Expected shape: the minimum ratio is 1 or barely above 1 on every
// dataset, i.e. real(istic) road networks are essentially non-redundant,
// which voids PCPD's O(n) space assumption and explains Figure 6's PCPD
// blow-up.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "pcpd/redundancy.h"
#include "workload/query_gen.h"

int main() {
  using namespace roadnet;

  std::printf(
      "Table 2: min length(P')/length(P) over the query sets (upper bound "
      "on delta)\n");
  std::printf("%-8s %10s %14s %12s %12s\n", "Dataset", "n", "min ratio",
              "pairs", "no-P' pairs");
  bench::PrintRule(62);
  const size_t per_set = bench::FastMode() ? 5 : 20;
  for (const auto& spec : bench::BenchDatasets()) {
    Graph g = BuildDataset(spec);
    RedundancyMeter meter(g);
    const auto sets = GenerateLInfQuerySets(g, per_set, 1000 + spec.seed);
    double min_ratio = HUGE_VAL;
    size_t pairs = 0, disconnected = 0;
    for (const auto& set : sets) {
      for (auto [s, t] : set.pairs) {
        const double r = meter.Ratio(s, t);
        ++pairs;
        if (std::isinf(r)) {
          ++disconnected;  // no core-disjoint path at all
        } else if (r < min_ratio) {
          min_ratio = r;
        }
      }
    }
    std::printf("%-8s %10u %14.5f %12zu %12zu\n", spec.name.c_str(),
                g.NumVertices(), min_ratio, pairs, disconnected);
  }
  std::printf(
      "\nPaper reference (Table 2): minima between 1 and 1.00379 on all ten "
      "datasets.\n");
  return 0;
}
