#ifndef ROADNET_BENCH_BENCH_UTIL_H_
#define ROADNET_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "workload/datasets.h"
#include "workload/query_gen.h"

namespace roadnet {
namespace bench {

// Set ROADNET_BENCH_FAST=1 to shrink datasets and query counts for smoke
// runs; the default configuration regenerates the full figures.
inline bool FastMode() {
  const char* v = std::getenv("ROADNET_BENCH_FAST");
  return v != nullptr && v[0] == '1';
}

// Queries measured per set (the paper uses 10000; scaled for wall clock).
inline size_t QueriesPerSet() { return FastMode() ? 60 : 400; }

// Subsample cap for the slowest method (bidirectional Dijkstra on large
// inputs); its per-query cost is milliseconds, so a smaller sample still
// gives a stable average.
inline size_t SlowMethodQueryCap() { return FastMode() ? 10 : 50; }

// Upper bounds on dataset size per technique, reflecting each method's
// preprocessing feasibility at bench wall-clock budget (SILC/PCPD bounds
// mirror the paper's 24 GB memory cutoff at our scale; the TNR bound is a
// wall-clock analogue, see EXPERIMENTS.md).
inline uint32_t MaxVerticesForAllPairs() { return FastMode() ? 2500 : 5000; }
inline uint32_t MaxVerticesForTnr() { return FastMode() ? 5000 : 40000; }

// Fixed TNR grid resolution for every figure bench: the analogue of the
// paper's fixed 128x128 grid. Our datasets are ~1:100 the paper's vertex
// counts (~1:10 linear), and at 32x32 the vertices-per-cell regime and the
// locality-filter engagement point (between Q6 and Q7 against the fixed
// 1024-analogue query grid) match the paper's setup. The granularity
// sweep itself (Figure 13) varies around this value.
inline uint32_t PaperGridResolution() { return 32; }

// Datasets to sweep (all ten, or the four smallest in fast mode).
inline std::vector<DatasetSpec> BenchDatasets() {
  const auto& all = PaperDatasets();
  if (FastMode()) return {all.begin(), all.begin() + 4};
  return all;
}

// First `cap` pairs of a set (for slow methods).
inline QuerySet Subset(const QuerySet& set, size_t cap) {
  QuerySet out;
  out.name = set.name;
  const size_t k = std::min(cap, set.pairs.size());
  out.pairs.assign(set.pairs.begin(), set.pairs.begin() + k);
  return out;
}

// ---- Table printing helpers (paper-style rows) ----

inline void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

// Prints a latency cell: "n/a" when the method was not applicable
// (negative marker), otherwise microseconds.
inline void PrintMicrosCell(double micros) {
  if (micros < 0) {
    std::printf(" %10s", "n/a");
  } else {
    std::printf(" %10.2f", micros);
  }
}

}  // namespace bench
}  // namespace roadnet

#endif  // ROADNET_BENCH_BENCH_UTIL_H_
