// Appendix B: the defect of Bast et al.'s TNR access-node computation.
//
// Builds TNR twice over networks containing long "bridge" edges (the
// geometry of the paper's Figure 12(b) counter-example): once with the
// corrected per-vertex access-node computation, once with the flawed
// enumeration that misses shell-jumping edges. Reports, per dataset, how
// many table-answerable queries each variant gets wrong against Dijkstra
// ground truth and the worst relative error. The corrected variant must
// be exact; the flawed one is not.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "ch/ch_index.h"
#include "dijkstra/dijkstra.h"
#include "graph/generator.h"
#include "tnr/tnr_index.h"
#include "util/rng.h"

int main() {
  using namespace roadnet;

  std::printf("Appendix B: flawed vs corrected TNR access-node computation\n");
  std::printf("%-10s %8s %8s | %14s %14s | %12s\n", "Network", "n",
              "queries", "correct wrong", "flawed wrong", "max rel err");
  bench::PrintRule(78);

  const uint32_t sizes[] = {2000, 5000, 10000};
  for (uint32_t target : sizes) {
    if (bench::FastMode() && target > 2000) continue;
    GeneratorConfig gc;
    gc.target_vertices = target;
    gc.seed = 4242 + target;
    gc.long_edge_probability = 0.03;  // bridges/tunnels that jump cells
    // Span ~3 grid cells so a bridge can hop clean over a shell ring.
    const uint32_t side =
        static_cast<uint32_t>(std::ceil(std::sqrt(double(target))));
    const uint32_t res = bench::PaperGridResolution();
    gc.long_edge_span = std::max(6u, 3 * side / res + 2);
    Graph g = GenerateRoadNetwork(gc);
    ChIndex ch(g);

    TnrConfig correct_config;
    correct_config.grid_resolution = bench::PaperGridResolution();
    TnrIndex correct(g, &ch, correct_config);
    TnrConfig flawed_config = correct_config;
    flawed_config.flawed_access_nodes = true;
    TnrIndex flawed(g, &ch, flawed_config);

    Dijkstra truth(g);
    Rng rng(7);
    size_t queries = 0, correct_wrong = 0, flawed_wrong = 0;
    double max_rel_err = 0;
    const size_t kWanted = bench::FastMode() ? 100 : 400;
    size_t attempts = 0;
    while (queries < kWanted && attempts < kWanted * 50) {
      ++attempts;
      const VertexId s = static_cast<VertexId>(rng.NextBelow(g.NumVertices()));
      const VertexId t = static_cast<VertexId>(rng.NextBelow(g.NumVertices()));
      // Only table-answered queries exercise the access nodes.
      if (s == t || !correct.TableApplicable(s, t)) continue;
      ++queries;
      const Distance d = truth.Run(s, t);
      if (correct.DistanceQuery(s, t) != d) ++correct_wrong;
      const Distance f = flawed.DistanceQuery(s, t);
      if (f != d) {
        ++flawed_wrong;
        if (f != kInfDistance && d > 0) {
          max_rel_err = std::max(
              max_rel_err, static_cast<double>(f) / static_cast<double>(d) - 1.0);
        }
      }
    }
    std::printf("bridges-%u %8u %8zu | %14zu %14zu | %11.2f%%\n", target,
                g.NumVertices(), queries, correct_wrong, flawed_wrong,
                100.0 * max_rel_err);
  }
  std::printf(
      "\nThe corrected computation (Section 3.3 Remarks) must report 0 "
      "wrong answers;\nthe flawed one returns over-estimates whenever the "
      "only exit of a region is a\nshell-jumping edge (Figure 12(b)).\n");
  return 0;
}
