// Figure 7: SILC vs PCPD on shortest path queries, query sets Q1..Q10,
// on the four smallest datasets (the only ones either can index).
//
// Expected shape (paper Section 4.4): SILC consistently outperforms PCPD
// on every set and dataset — both walk the path with one lookup per hop,
// but SILC's lookup (binary search over Z-intervals) is cheaper than
// PCPD's (synchronized quadtree descent per decomposition step).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/experiment.h"
#include "pcpd/pcpd_index.h"
#include "silc/silc_index.h"

int main() {
  using namespace roadnet;

  std::printf("Figure 7: SILC vs PCPD, shortest path queries (microsec)\n");
  for (const auto& spec : SmallDatasets()) {
    Graph g = BuildDataset(spec);
    SilcIndex silc(g);
    PcpdIndex pcpd(g);
    const auto sets =
        GenerateLInfQuerySets(g, bench::QueriesPerSet(), 7000 + spec.seed);

    std::printf("\n(%s)  n=%u\n", spec.name.c_str(), g.NumVertices());
    std::printf("%-6s %8s %10s %10s %10s\n", "Set", "queries", "SILC",
                "PCPD", "PCPD/SILC");
    bench::PrintRule(48);
    size_t silc_wins = 0, populated = 0;
    for (const auto& set : sets) {
      if (set.pairs.empty()) {
        std::printf("%-6s %8d %10s %10s\n", set.name.c_str(), 0, "n/a",
                    "n/a");
        continue;
      }
      // Guard the measurement with agreement between the two methods.
      const size_t mismatches =
          Experiment::CountDistanceMismatches(&silc, &pcpd, set);
      const double silc_us = Experiment::MeasurePathQueries(&silc, set);
      const double pcpd_us = Experiment::MeasurePathQueries(&pcpd, set);
      std::printf("%-6s %8zu %10.2f %10.2f %9.2fx", set.name.c_str(),
                  set.pairs.size(), silc_us, pcpd_us, pcpd_us / silc_us);
      if (mismatches > 0) std::printf("  [%zu MISMATCHES]", mismatches);
      std::printf("\n");
      ++populated;
      if (silc_us <= pcpd_us) ++silc_wins;
    }
    std::printf("SILC faster on %zu/%zu populated sets\n", silc_wins,
                populated);
  }
  return 0;
}
