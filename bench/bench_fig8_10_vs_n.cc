// Figures 8 and 10: query time vs n for Dijkstra (bidirectional baseline),
// CH, TNR, and SILC, on the representative query sets Q1, Q4, Q7, Q10.
// Figure 8 reports distance queries, Figure 10 shortest path queries; one
// binary regenerates both since they share every built index.
//
// Expected shape (paper Sections 4.5-4.6): Dijkstra orders of magnitude
// slower everywhere and growing with n; on distance queries TNR matches CH
// for near sets (fallback) and wins by ~an order of magnitude on Q7/Q10;
// SILC is competitive on near sets but degrades with distance; on shortest
// path queries SILC is best where it fits, CH pays an unpacking overhead
// relative to its distance queries, and TNR is never better than CH.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "ch/ch_index.h"
#include <cstdlib>
#include <fstream>

#include "core/experiment.h"
#include "core/report.h"
#include "dijkstra/bidirectional.h"
#include "silc/silc_index.h"
#include "tnr/tnr_index.h"

int main() {
  using namespace roadnet;
  const int kSetIndices[4] = {0, 3, 6, 9};  // Q1, Q4, Q7, Q10
  const char* kMethods[4] = {"Dijkstra", "CH", "TNR", "SILC"};

  struct Row {
    std::string dataset;
    uint32_t n = 0;
    // [set][method] microseconds, -1 = n/a.
    double dist_us[4][4];
    double path_us[4][4];
    size_t mismatches = 0;
  };
  std::vector<Row> rows;

  for (const auto& spec : bench::BenchDatasets()) {
    Graph g = BuildDataset(spec);
    Row row;
    row.dataset = spec.name;
    row.n = g.NumVertices();
    for (auto& a : row.dist_us) {
      for (auto& v : a) v = -1;
    }
    for (auto& a : row.path_us) {
      for (auto& v : a) v = -1;
    }

    BidirectionalDijkstra bidi(g);
    ChIndex ch(g);
    std::unique_ptr<TnrIndex> tnr;
    if (g.NumVertices() <= bench::MaxVerticesForTnr()) {
      TnrConfig config;
      config.grid_resolution = bench::PaperGridResolution();
      tnr = std::make_unique<TnrIndex>(g, &ch, config);
    }
    std::unique_ptr<SilcIndex> silc;
    if (g.NumVertices() <= bench::MaxVerticesForAllPairs()) {
      silc = std::make_unique<SilcIndex>(g);
    }

    const auto sets =
        GenerateLInfQuerySets(g, bench::QueriesPerSet(), 8000 + spec.seed);
    for (int si = 0; si < 4; ++si) {
      const QuerySet& set = sets[kSetIndices[si]];
      if (set.pairs.empty()) continue;
      const QuerySet slow = bench::Subset(set, bench::SlowMethodQueryCap());

      // Correctness guard: every method must agree with CH on this set.
      row.mismatches += Experiment::CountDistanceMismatches(&ch, &bidi, slow);
      if (tnr) row.mismatches += Experiment::CountDistanceMismatches(&ch, tnr.get(), set);
      if (silc) row.mismatches += Experiment::CountDistanceMismatches(&ch, silc.get(), set);

      row.dist_us[si][0] = Experiment::MeasureDistanceQueries(&bidi, slow);
      row.path_us[si][0] = Experiment::MeasurePathQueries(&bidi, slow);
      row.dist_us[si][1] = Experiment::MeasureDistanceQueries(&ch, set);
      row.path_us[si][1] = Experiment::MeasurePathQueries(&ch, set);
      if (tnr) {
        row.dist_us[si][2] = Experiment::MeasureDistanceQueries(tnr.get(), set);
        row.path_us[si][2] = Experiment::MeasurePathQueries(tnr.get(), set);
      }
      if (silc) {
        row.dist_us[si][3] = Experiment::MeasureDistanceQueries(silc.get(), set);
        row.path_us[si][3] = Experiment::MeasurePathQueries(silc.get(), set);
      }
    }
    rows.push_back(row);
    std::fprintf(stderr, "measured %s\n", spec.name.c_str());
  }

  auto print_figure = [&](const char* title, bool distance) {
    std::printf("\n%s\n", title);
    for (int si = 0; si < 4; ++si) {
      std::printf("\n(Q%d)  running time (microsec) vs n\n",
                  kSetIndices[si] + 1);
      std::printf("%-8s %10s", "Dataset", "n");
      for (const char* m : kMethods) std::printf(" %10s", m);
      std::printf("\n");
      bench::PrintRule(64);
      for (const auto& row : rows) {
        std::printf("%-8s %10u", row.dataset.c_str(), row.n);
        for (int m = 0; m < 4; ++m) {
          bench::PrintMicrosCell(distance ? row.dist_us[si][m]
                                          : row.path_us[si][m]);
        }
        std::printf("\n");
      }
    }
  };

  std::printf("Figures 8 and 10: query efficiency vs n\n");
  print_figure("Figure 8: DISTANCE queries", true);
  print_figure("Figure 10: SHORTEST PATH queries", false);

  if (const char* dir = std::getenv("ROADNET_BENCH_CSV_DIR")) {
    std::vector<QueryRow> csv;
    for (const auto& row : rows) {
      for (int si = 0; si < 4; ++si) {
        for (int m = 0; m < 4; ++m) {
          if (row.dist_us[si][m] < 0) continue;
          csv.push_back(QueryRow{
              row.dataset, row.n, kMethods[m],
              "Q" + std::to_string(kSetIndices[si] + 1), 0,
              row.dist_us[si][m], row.path_us[si][m]});
        }
      }
    }
    std::ofstream out(std::string(dir) + "/fig8_10.csv");
    WriteQueryCsv(csv, out);
    std::printf("wrote %s/fig8_10.csv\n", dir);
  }

  size_t total_mismatches = 0;
  for (const auto& row : rows) total_mismatches += row.mismatches;
  std::printf("\nCorrectness guard: %zu distance mismatches across all "
              "methods/sets (must be 0)\n",
              total_mismatches);
  return total_mismatches == 0 ? 0 : 1;
}
