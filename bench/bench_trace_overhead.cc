// Tracing overhead gate (ours): the cost a served query pays for the
// tracing instrumentation when tracing is idle must stay within noise.
//
//   bench_trace_overhead [--quick] [--out BENCH_trace_overhead.json]
//
// Runs the CH distance core over the Q6..Q10 workloads twice per
// sample: a plain loop, and a loop wrapped the way the server wraps a
// request — Tracer::StartRequest, a TraceSpan around the query, and
// Tracer::Finish — against a tracer whose runtime capture is OFF (no
// head sampling, no slow threshold). That is the configuration every
// production request pays when nobody is looking, so the gate holds
// its cost to <= 2% of the plain loop (exit 1 past the bound; this is
// a scripts/check.sh hard gate). The fully-ON cost (sample every
// request, capture everything) is measured and reported too, ungated:
// it is the price of turning the knob, not of shipping the feature.
//
// Both loops must produce identical distance checksums — the
// instrumentation cannot be allowed to change answers.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "ch/ch_index.h"
#include "ch/contraction.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"
#include "workload/query_gen.h"

namespace roadnet {
namespace {

// Aggregate Q6..Q10 pairs: the long-range sets where per-query cost is
// highest and a fixed instrumentation cost is proportionally smallest —
// matching the traffic mix the 2% budget is written against.
std::vector<std::pair<VertexId, VertexId>> LongRangePairs(
    const std::vector<QuerySet>& sets) {
  std::vector<std::pair<VertexId, VertexId>> pairs;
  for (const QuerySet& set : sets) {
    if (set.name >= "Q6" || set.name == "Q10") {
      pairs.insert(pairs.end(), set.pairs.begin(), set.pairs.end());
    }
  }
  return pairs;
}

// One plain pass; returns wall micros, accumulates the distance sum.
double PlainPass(const ChIndex& index, QueryContext* ctx,
                 const std::vector<std::pair<VertexId, VertexId>>& pairs,
                 uint64_t* checksum) {
  uint64_t sum = 0;
  Timer timer;
  for (const auto& [s, t] : pairs) {
    sum += index.DistanceQuery(ctx, s, t);
  }
  const double micros = timer.ElapsedMicros();
  *checksum = sum;
  return micros;
}

// One instrumented pass: per query the server's tracing choreography
// (StartRequest -> span around execution -> Finish) against `tracer`.
double TracedPass(const ChIndex& index, QueryContext* ctx,
                  const std::vector<std::pair<VertexId, VertexId>>& pairs,
                  Tracer* tracer, int shard, uint64_t* checksum) {
  uint64_t sum = 0;
  Timer timer;
  for (const auto& [s, t] : pairs) {
    RequestTrace trace;
    tracer->StartRequest(&trace);
    {
      TraceSpan span(&trace, TraceStage::kExecute);
      sum += index.DistanceQuery(ctx, s, t);
    }
    tracer->Finish(shard, &trace);
  }
  const double micros = timer.ElapsedMicros();
  *checksum = sum;
  return micros;
}

}  // namespace
}  // namespace roadnet

int main(int argc, char** argv) {
  using namespace roadnet;

  bool quick = bench::FastMode();
  std::string out_path = "BENCH_trace_overhead.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(
          stderr, "usage: bench_trace_overhead [--quick] [--out FILE.json]\n");
      return 2;
    }
  }

  // One dataset suffices: the gate is a ratio on one workload, not a
  // sweep. Quick mode takes FL' (sub-second contraction); the full run
  // takes W-US', the same dataset the layout-ablation gate uses.
  const char* wanted = quick ? "FL'" : "W-US'";
  const DatasetSpec* spec = nullptr;
  for (const auto& s : PaperDatasets()) {
    if (s.name == wanted) spec = &s;
  }
  if (spec == nullptr) {
    std::fprintf(stderr, "dataset %s missing from PaperDatasets()\n", wanted);
    return 1;
  }

  Graph g = BuildDataset(*spec);
  ChIndex index(g, ContractGraph(g, ChConfig{}), ChConfig{});
  const auto sets = GenerateLInfQuerySets(g, quick ? 250 : 500, 7700);
  const auto pairs = LongRangePairs(sets);
  if (pairs.empty()) {
    std::fprintf(stderr, "no Q6..Q10 pairs on %s\n", spec->name.c_str());
    return 1;
  }

  TracerOptions topt;
  topt.sample_every = 0;                    // runtime OFF: the gated config
  topt.slow_micros = kTraceSlowDisabled;
  topt.shards = 1;
  Tracer idle_tracer(topt);
  const int idle_shard = idle_tracer.AcquireShard();

  auto ctx = index.NewContext();

  // Paired interleaved best-of-N, same discipline as bench_ch_layout:
  // each sample repeats the pair set until it covers enough wall clock
  // to rise above timer noise, and plain/traced samples alternate so
  // machine phases hit both sides.
  constexpr double kMinSampleMicros = 20000.0;
  uint64_t plain_sum = 0, traced_sum = 0;
  const double warm_plain = PlainPass(index, ctx.get(), pairs, &plain_sum);
  const double warm_traced = TracedPass(index, ctx.get(), pairs, &idle_tracer,
                                        idle_shard, &traced_sum);
  if (plain_sum != traced_sum) {
    std::fprintf(stderr, "FAIL: traced loop changed distances\n");
    return 1;
  }
  const int reps = std::max(
      1, static_cast<int>(kMinSampleMicros /
                              (std::max(warm_plain, warm_traced) + 1) +
                          1));
  double best_plain = warm_plain, best_traced = warm_traced;
  for (int sample = 0; sample < 5; ++sample) {
    double total_plain = 0, total_traced = 0;
    for (int r = 0; r < reps; ++r) {
      total_plain += PlainPass(index, ctx.get(), pairs, &plain_sum);
      total_traced += TracedPass(index, ctx.get(), pairs, &idle_tracer,
                                 idle_shard, &traced_sum);
    }
    best_plain = std::min(best_plain, total_plain / reps);
    best_traced = std::min(best_traced, total_traced / reps);
  }
  idle_tracer.ReleaseShard(idle_shard);

  // Ungated reference point: everything captured (head sample every
  // request AND a zero slow threshold), ring drops tolerated since no
  // exporter drains it.
  TracerOptions on_opt = topt;
  on_opt.sample_every = 1;
  on_opt.slow_micros = 0;
  Tracer on_tracer(on_opt);
  const int on_shard = on_tracer.AcquireShard();
  double best_on = TracedPass(index, ctx.get(), pairs, &on_tracer, on_shard,
                              &traced_sum);
  for (int sample = 0; sample < 3; ++sample) {
    double total_on = 0;
    for (int r = 0; r < reps; ++r) {
      total_on += TracedPass(index, ctx.get(), pairs, &on_tracer, on_shard,
                             &traced_sum);
    }
    best_on = std::min(best_on, total_on / reps);
  }
  on_tracer.ReleaseShard(on_shard);

  const double n = static_cast<double>(pairs.size());
  const double plain_us = best_plain / n;
  const double idle_us = best_traced / n;
  const double on_us = best_on / n;
  const double ratio = idle_us / plain_us;

  std::printf("trace overhead (%s, %zu Q6..Q10 distance queries, "
              "tracing %s)\n",
              spec->name.c_str(), pairs.size(),
              kTracingCompiledIn ? "compiled in" : "compiled OUT");
  std::printf("  plain:          %8.3f us/query\n", plain_us);
  std::printf("  traced (idle):  %8.3f us/query  (ratio %.4f, budget 1.02)\n",
              idle_us, ratio);
  std::printf("  traced (full):  %8.3f us/query  (ungated reference)\n",
              on_us);

  MetricsRegistry metrics;
  const std::vector<std::pair<std::string, std::string>> labels = {
      {"dataset", spec->name}};
  metrics.Add("trace_overhead_plain_us", plain_us, labels);
  metrics.Add("trace_overhead_idle_us", idle_us, labels);
  metrics.Add("trace_overhead_idle_ratio", ratio, labels);
  metrics.Add("trace_overhead_on_us", on_us, labels);
  if (!metrics.WriteFile(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (ratio > 1.02) {
    std::fprintf(stderr,
                 "FAIL: idle tracing costs %.2f%% (> 2%% budget) on the "
                 "untraced hot path\n",
                 (ratio - 1.0) * 100.0);
    return 1;
  }
  return 0;
}
