// Figures 9 and 11: query time as the query set varies (Q1..Q10) for CH,
// TNR, and SILC, on four datasets spanning the size ladder. Figure 9
// reports distance queries, Figure 11 shortest path queries.
//
// The paper uses DE, CO, E-US, US; at bench wall-clock budget TNR tops out
// at E-US' scale, so the two large panels use CA' and E-US' (the largest
// TNR-feasible analogues) — the shape statements are unchanged.
//
// Expected shape (Sections 4.5-4.6): SILC's time grows steadily with the
// set index (O(k log n) walk); CH stays nearly flat; on distance queries
// TNR tracks CH through Q5 (fallback), dips at Q6, and beats CH by ~10x on
// Q7..Q10; on path queries TNR is never faster than CH and the gap widens
// toward Q10 (O(k) table probes per path).

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "ch/ch_index.h"
#include "core/experiment.h"
#include "silc/silc_index.h"
#include "tnr/tnr_index.h"

int main() {
  using namespace roadnet;

  std::vector<DatasetSpec> panels;
  for (const auto& spec : PaperDatasets()) {
    if (spec.name == "DE'" || spec.name == "CO'" || spec.name == "CA'" ||
        spec.name == "E-US'") {
      panels.push_back(spec);
    }
  }
  if (bench::FastMode()) panels.resize(2);

  std::printf("Figures 9 and 11: query efficiency vs query set\n");
  for (const auto& spec : panels) {
    Graph g = BuildDataset(spec);
    ChIndex ch(g);
    TnrConfig config;
    config.grid_resolution = bench::PaperGridResolution();
    TnrIndex tnr(g, &ch, config);
    std::unique_ptr<SilcIndex> silc;
    if (g.NumVertices() <= bench::MaxVerticesForAllPairs()) {
      silc = std::make_unique<SilcIndex>(g);
    }
    const auto sets =
        GenerateLInfQuerySets(g, bench::QueriesPerSet(), 9000 + spec.seed);

    std::printf("\n(%s)  n=%u, grid %ux%u, %zu access nodes\n",
                spec.name.c_str(), g.NumVertices(), config.grid_resolution,
                config.grid_resolution, tnr.NumAccessNodes());
    std::printf("%-6s %8s | %10s %10s %10s | %10s %10s %10s\n", "Set",
                "queries", "CH dist", "TNR dist", "SILC dist", "CH path",
                "TNR path", "SILC path");
    bench::PrintRule(90);
    size_t mismatches = 0;
    for (const auto& set : sets) {
      if (set.pairs.empty()) {
        std::printf("%-6s %8d | (unpopulated at this scale)\n",
                    set.name.c_str(), 0);
        continue;
      }
      mismatches += Experiment::CountDistanceMismatches(&ch, &tnr, set);
      if (silc) {
        mismatches +=
            Experiment::CountDistanceMismatches(&ch, silc.get(), set);
      }
      std::printf("%-6s %8zu |", set.name.c_str(), set.pairs.size());
      bench::PrintMicrosCell(Experiment::MeasureDistanceQueries(&ch, set));
      bench::PrintMicrosCell(Experiment::MeasureDistanceQueries(&tnr, set));
      bench::PrintMicrosCell(
          silc ? Experiment::MeasureDistanceQueries(silc.get(), set) : -1);
      std::printf(" |");
      bench::PrintMicrosCell(Experiment::MeasurePathQueries(&ch, set));
      bench::PrintMicrosCell(Experiment::MeasurePathQueries(&tnr, set));
      bench::PrintMicrosCell(
          silc ? Experiment::MeasurePathQueries(silc.get(), set) : -1);
      std::printf("\n");
    }
    std::printf("distance mismatches vs CH: %zu (must be 0)\n", mismatches);
  }
  return 0;
}
