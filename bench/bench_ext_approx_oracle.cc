// Extension bench: the approximate distance oracle (the Appendix A
// "revised PCPD for approximate distance queries" variation) against the
// exact PCPD and SILC, sweeping epsilon.
//
// Expected shape: pair count and space fall steeply as epsilon grows;
// queries run in a single O(log n) descent (no path walk), so the oracle
// answers far queries faster than the exact spatial-coherence methods
// while staying within its error bound — the trade the revision exists
// to make.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "core/experiment.h"
#include "dijkstra/dijkstra.h"
#include "pcpd/approx_oracle.h"
#include "pcpd/pcpd_index.h"
#include "silc/silc_index.h"
#include "util/bytes.h"
#include "util/timer.h"

int main() {
  using namespace roadnet;

  std::printf("Extension: approximate distance oracle (epsilon sweep)\n");
  for (const auto& spec : SmallDatasets()) {
    if (bench::FastMode() && spec.target_vertices > 2000) continue;
    Graph g = BuildDataset(spec);
    const auto sets =
        GenerateLInfQuerySets(g, bench::QueriesPerSet(), 3100 + spec.seed);
    QuerySet mixed;
    mixed.name = "Q4+Q9";
    for (int idx : {3, 8}) {
      mixed.pairs.insert(mixed.pairs.end(), sets[idx].pairs.begin(),
                         sets[idx].pairs.end());
    }

    SilcIndex silc(g);
    PcpdIndex pcpd(g);
    std::printf("\n(%s)  n=%u, %zu mixed queries\n", spec.name.c_str(),
                g.NumVertices(), mixed.pairs.size());
    std::printf("%-14s %10s %10s %10s %12s %12s\n", "Method", "pairs",
                "MiB", "prep (s)", "query (us)", "max err");
    bench::PrintRule(74);
    std::printf("%-14s %10s %10.2f %10s %12.2f %12s\n", "SILC (exact)",
                "-", BytesToMiB(silc.IndexBytes()), "-",
                Experiment::MeasureDistanceQueries(&silc, mixed), "0");
    std::printf("%-14s %10zu %10.2f %10s %12.2f %12s\n", "PCPD (exact)",
                pcpd.NumPairs(), BytesToMiB(pcpd.IndexBytes()), "-",
                Experiment::MeasureDistanceQueries(&pcpd, mixed), "0");

    Dijkstra truth(g);
    for (double epsilon : {0.01, 0.05, 0.20}) {
      Timer timer;
      ApproxDistanceOracle oracle(g, epsilon);
      const double prep = timer.ElapsedSeconds();
      // Observed max relative error (must stay below epsilon).
      double max_err = 0;
      for (auto [s, t] : mixed.pairs) {
        const Distance d = truth.Run(s, t);
        const Distance a = oracle.Query(s, t);
        if (d == kInfDistance || d == 0) continue;
        max_err = std::max(
            max_err, std::abs(static_cast<double>(a) -
                              static_cast<double>(d)) /
                         static_cast<double>(d));
      }
      timer.Reset();
      uint64_t sink = 0;
      for (auto [s, t] : mixed.pairs) sink += oracle.Query(s, t);
      const double query_us =
          timer.ElapsedMicros() / std::max<size_t>(1, mixed.pairs.size());
      (void)sink;
      char label[32];
      std::snprintf(label, sizeof(label), "eps=%.2f", epsilon);
      std::printf("%-14s %10zu %10.2f %10.2f %12.2f %11.2f%%\n", label,
                  oracle.NumPairs(), BytesToMiB(oracle.IndexBytes()), prep,
                  query_us, 100 * max_err);
    }
  }
  return 0;
}
