// kNN over POI sets: bucket-CH vs IER vs the index-free Dijkstra
// expansion, sweeping k and POI density (the paper's R-set selectivity
// convention, powers of ten). All three strategies must return
// bit-identical result lists — ties break ascending on vertex id — so
// every measured number is guarded by an exact three-way comparison,
// and one-to-many must equal kNN with k = |category|.
//
//   bench_knn [--quick] [--out BENCH_knn.json]
//
// Prints a paper-style table per dataset plus bucket-space and IER
// lower-bound summaries, and writes machine-readable JSONL (validated
// by scripts/validate_metrics.py). Exits nonzero on any result
// mismatch, or if bucket-CH is not faster than brute-force Dijkstra on
// the aggregate kNN workload of the largest dataset — the regression
// gate scripts/check.sh runs (IER is reported for comparison, not
// gated: on sparse categories its certified Euclidean bound degrades
// toward a linear scan and that is expected, not a regression).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "ch/ch_index.h"
#include "knn/ier.h"
#include "knn/knn_index.h"
#include "obs/metrics.h"
#include "poi/poi_set.h"
#include "routing/knn.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "workload/datasets.h"

namespace roadnet {
namespace {

constexpr uint32_t kSweepK[] = {1, 4, 10, 50};

double Now() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Average microseconds per query, best of three passes (the same
// discipline as bench_hl; callers interleave methods so slow machine
// phases hit all of them).
template <typename Pass>
double MeasureAvg(size_t queries, const Pass& pass) {
  double best = -1;
  for (int sample = 0; sample < 3; ++sample) {
    const double start = Now();
    pass();
    const double avg = (Now() - start) / static_cast<double>(queries);
    if (best < 0 || avg < best) best = avg;
  }
  return best;
}

}  // namespace
}  // namespace roadnet

int main(int argc, char** argv) {
  using namespace roadnet;

  bool quick = bench::FastMode();
  std::string out_path = "BENCH_knn.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_knn [--quick] [--out FILE.json]\n");
      return 2;
    }
  }

  // Quick mode gates on FL' — large enough that the sparse-category
  // Dijkstra expansions dominate the brute-force column the way they do
  // at paper scale, small enough for CI. Full mode adds W-US' as the
  // gated dataset.
  std::vector<DatasetSpec> specs;
  for (const auto& spec : PaperDatasets()) {
    if (spec.name == "FL'" || (!quick && spec.name == "W-US'")) {
      specs.push_back(spec);
    }
  }

  // The density sweep: one category per power of ten. On FL' (10700
  // vertices) this is ~107 / ~11 / ~1 POIs, so the k sweep crosses both
  // the k < |category| and k > |category| regimes.
  const char* kCategorySpec = "restaurant:0.01,fuel:0.001,hotel:0.0001";

  MetricsRegistry metrics;
  std::printf("kNN: bucket-CH vs IER vs brute-force Dijkstra "
              "(k in {1,4,10,50} x POI density)\n");

  const size_t sources_per_cell = quick ? 30 : 120;
  bool gate_failed = false;
  for (size_t di = 0; di < specs.size(); ++di) {
    const DatasetSpec& spec = specs[di];
    const bool largest = di + 1 == specs.size();
    Graph g = BuildDataset(spec);
    ChIndex ch(g);

    PoiConfig poi_config;
    std::string parse_error;
    if (!ParsePoiCategories(kCategorySpec, &poi_config.categories,
                            &parse_error)) {
      std::fprintf(stderr, "bad category spec: %s\n", parse_error.c_str());
      return 1;
    }
    poi_config.seed = 9000 + spec.seed;
    const PoiSet pois = PoiSet::Generate(g, poi_config);

    const double bucket_start = Now();
    KnnBucketIndex bucket(ch, pois);
    const double bucket_build_seconds = (Now() - bucket_start) * 1e-6;
    IerKnnIndex ier(g, ch, pois);

    std::printf("\n(%s)  n=%u, %zu POIs, bucket build %.2fs, "
                "%zu bucket entries (%.2f MiB), IER rho=%.3f\n",
                spec.name.c_str(), g.NumVertices(), pois.NumPois(),
                bucket_build_seconds, bucket.NumBucketEntries(),
                BytesToMiB(bucket.IndexBytes()), ier.LowerBoundScale());
    std::printf("%-12s %4s %6s  %10s %10s %10s  %8s %8s\n", "category", "k",
                "|cat|", "bucket us", "ier us", "brute us", "settled",
                "probes");
    bench::PrintRule(78);

    KnnBucketIndex::Context bucket_ctx = bucket.NewContext();
    IerKnnIndex::Context ier_ctx = ier.NewContext();
    std::vector<KnnResult> bucket_out, ier_out, otm_out;

    double total_bucket = 0, total_ier = 0, total_brute = 0;
    for (uint32_t c = 0; c < pois.NumCategories(); ++c) {
      const auto span = pois.Vertices(c);
      const std::vector<VertexId> cat_vec(span.begin(), span.end());

      // Deterministic query sources, fresh per category so adding a
      // category never reshuffles another's workload.
      Rng rng(7700 + spec.seed * 17 + c);
      std::vector<VertexId> sources(sources_per_cell);
      for (VertexId& s : sources) {
        s = static_cast<VertexId>(rng.NextBelow(g.NumVertices()));
      }

      for (uint32_t k : kSweepK) {
        // Correctness pass (doubles as warm-up): all three strategies
        // must agree exactly, and the counters are collected here.
        uint64_t sum_settled = 0, sum_lookups = 0, sum_probes = 0;
        for (VertexId s : sources) {
          bucket.KnnQuery(&bucket_ctx, c, s, k, &bucket_out);
          ier.KnnQuery(&ier_ctx, c, s, k, &ier_out);
          const std::vector<KnnResult> brute =
              KnnByDijkstra(g, cat_vec, s, k);
          if (bucket_out != brute || ier_out != brute) {
            std::fprintf(stderr,
                         "FAIL: %s/%s k=%u source=%u: strategies disagree "
                         "(bucket %zu, ier %zu, brute %zu results)\n",
                         spec.name.c_str(), pois.CategoryName(c).c_str(), k,
                         s, bucket_out.size(), ier_out.size(), brute.size());
            return 1;
          }
          sum_settled += bucket_ctx.counters.vertices_settled;
          sum_lookups += bucket_ctx.counters.table_lookups;
          sum_probes += IerKnnIndex::ProbesIssued(ier_ctx);
        }

        const double bucket_us = MeasureAvg(sources.size(), [&] {
          for (VertexId s : sources) {
            bucket.KnnQuery(&bucket_ctx, c, s, k, &bucket_out);
          }
        });
        const double ier_us = MeasureAvg(sources.size(), [&] {
          for (VertexId s : sources) {
            ier.KnnQuery(&ier_ctx, c, s, k, &ier_out);
          }
        });
        const double brute_us = MeasureAvg(sources.size(), [&] {
          for (VertexId s : sources) KnnByDijkstra(g, cat_vec, s, k);
        });
        total_bucket += bucket_us * sources.size();
        total_ier += ier_us * sources.size();
        total_brute += brute_us * sources.size();

        const double n = static_cast<double>(sources.size());
        std::printf("%-12s %4u %6zu  %10.2f %10.2f %10.2f  %8.1f %8.1f\n",
                    pois.CategoryName(c).c_str(), k, cat_vec.size(),
                    bucket_us, ier_us, brute_us, sum_settled / n,
                    sum_probes / n);
        const std::vector<std::pair<std::string, std::string>> labels = {
            {"dataset", spec.name},
            {"category", pois.CategoryName(c)},
            {"k", std::to_string(k)}};
        metrics.Add("knn_bucket_us", bucket_us, labels);
        metrics.Add("knn_ier_us", ier_us, labels);
        metrics.Add("knn_brute_us", brute_us, labels);
        metrics.Add("knn_bucket_speedup_vs_brute", brute_us / bucket_us,
                    labels);
        metrics.Add("knn_bucket_settled_avg", sum_settled / n, labels);
        metrics.Add("knn_bucket_lookups_avg", sum_lookups / n, labels);
        metrics.Add("knn_ier_probes_avg", sum_probes / n, labels);
      }

      // One-to-many: definitionally k = |category|, checked as such.
      for (VertexId s : sources) {
        bucket.OneToManyQuery(&bucket_ctx, c, s, &otm_out);
        bucket.KnnQuery(&bucket_ctx, c, s, cat_vec.size(), &bucket_out);
        if (otm_out != bucket_out) {
          std::fprintf(stderr,
                       "FAIL: %s/%s source=%u: one-to-many != "
                       "k=|category| kNN\n",
                       spec.name.c_str(), pois.CategoryName(c).c_str(), s);
          return 1;
        }
      }
      const double otm_us = MeasureAvg(sources.size(), [&] {
        for (VertexId s : sources) {
          bucket.OneToManyQuery(&bucket_ctx, c, s, &otm_out);
        }
      });
      std::printf("%-12s %4s %6zu  %10.2f %10s %10s  (one-to-many)\n",
                  pois.CategoryName(c).c_str(), "all", cat_vec.size(),
                  otm_us, "-", "-");
      metrics.Add("knn_one_to_many_us", otm_us,
                  {{"dataset", spec.name},
                   {"category", pois.CategoryName(c)}});
    }

    const double speedup = total_bucket > 0 ? total_brute / total_bucket : 0;
    std::printf("%s aggregate: bucket %.2fx vs brute-force, IER %.2fx "
                "(bucket %.0f us, ier %.0f us, brute %.0f us)\n",
                spec.name.c_str(), speedup,
                total_ier > 0 ? total_brute / total_ier : 0, total_bucket,
                total_ier, total_brute);
    metrics.Add("knn_bucket_total_speedup", speedup,
                {{"dataset", spec.name}});
    metrics.Add("knn_ier_total_speedup",
                total_ier > 0 ? total_brute / total_ier : 0,
                {{"dataset", spec.name}});
    metrics.Add("knn_bucket_entries",
                static_cast<double>(bucket.NumBucketEntries()),
                {{"dataset", spec.name}});
    metrics.Add("knn_bucket_index_bytes",
                static_cast<double>(bucket.IndexBytes()),
                {{"dataset", spec.name}});
    metrics.Add("knn_ier_index_bytes",
                static_cast<double>(ier.IndexBytes()),
                {{"dataset", spec.name}});
    metrics.Add("knn_ier_rho", ier.LowerBoundScale(),
                {{"dataset", spec.name}});
    metrics.Add("knn_bucket_build_seconds", bucket_build_seconds,
                {{"dataset", spec.name}});
    // The regression gate: the bucket join must beat the index-free
    // expansion on the aggregate sweep of the largest dataset.
    if (largest && total_bucket >= total_brute) gate_failed = true;
  }

  if (!metrics.WriteFile(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  if (gate_failed) {
    std::fprintf(stderr,
                 "FAIL: bucket-CH kNN not faster than brute-force Dijkstra "
                 "on the aggregate sweep of the largest dataset\n");
    return 1;
  }
  return 0;
}
