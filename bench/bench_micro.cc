// Google-benchmark microbenchmarks for the primitives behind every
// technique: heap operations, point-to-point searches, index lookups.
// These complement the figure benches (which measure workload-level
// latencies the way the paper reports them) with stable per-operation
// numbers.

#include <memory>
#include <vector>

#include "benchmark/benchmark.h"
#include "ch/ch_index.h"
#include "dijkstra/bidirectional.h"
#include "dijkstra/dijkstra.h"
#include "graph/generator.h"
#include "pq/indexed_heap.h"
#include "silc/silc_index.h"
#include "tnr/tnr_index.h"
#include "util/rng.h"

namespace roadnet {
namespace {

// Shared fixtures, built once.
const Graph& BenchGraph() {
  static const Graph* const kGraph = [] {
    GeneratorConfig config;
    config.target_vertices = 4400;
    config.seed = 104;
    return new Graph(GenerateRoadNetwork(config));
  }();
  return *kGraph;
}

ChIndex& BenchCh() {
  static ChIndex* const kCh = new ChIndex(BenchGraph());
  return *kCh;
}

TnrIndex& BenchTnr() {
  static TnrIndex* const kTnr = [] {
    TnrConfig config;
    config.grid_resolution = DefaultGridResolution(BenchGraph().NumVertices());
    return new TnrIndex(BenchGraph(), &BenchCh(), config);
  }();
  return *kTnr;
}

SilcIndex& BenchSilc() {
  static SilcIndex* const kSilc = new SilcIndex(BenchGraph());
  return *kSilc;
}

std::pair<VertexId, VertexId> RandomPair(Rng* rng) {
  const uint32_t n = BenchGraph().NumVertices();
  return {static_cast<VertexId>(rng->NextBelow(n)),
          static_cast<VertexId>(rng->NextBelow(n))};
}

void BM_HeapPushPop(benchmark::State& state) {
  const uint32_t kItems = 1024;
  IndexedHeap<uint64_t> heap(kItems);
  Rng rng(1);
  for (auto _ : state) {
    heap.Clear();
    for (uint32_t i = 0; i < kItems; ++i) heap.Push(i, rng.Next() >> 32);
    uint64_t sink = 0;
    while (!heap.Empty()) sink += heap.PopMin();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * kItems * 2);
}
BENCHMARK(BM_HeapPushPop);

void BM_DijkstraSssp(benchmark::State& state) {
  Dijkstra dijkstra(BenchGraph());
  Rng rng(2);
  for (auto _ : state) {
    dijkstra.RunAll(
        static_cast<VertexId>(rng.NextBelow(BenchGraph().NumVertices())));
    benchmark::DoNotOptimize(dijkstra.SettledCount());
  }
}
BENCHMARK(BM_DijkstraSssp);

void BM_BidirectionalDistance(benchmark::State& state) {
  BidirectionalDijkstra bidi(BenchGraph());
  Rng rng(3);
  for (auto _ : state) {
    auto [s, t] = RandomPair(&rng);
    benchmark::DoNotOptimize(bidi.DistanceQuery(s, t));
  }
}
BENCHMARK(BM_BidirectionalDistance);

void BM_ChDistance(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    auto [s, t] = RandomPair(&rng);
    benchmark::DoNotOptimize(BenchCh().DistanceQuery(s, t));
  }
}
BENCHMARK(BM_ChDistance);

void BM_ChPath(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    auto [s, t] = RandomPair(&rng);
    benchmark::DoNotOptimize(BenchCh().PathQuery(s, t).size());
  }
}
BENCHMARK(BM_ChPath);

void BM_TnrDistance(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state) {
    auto [s, t] = RandomPair(&rng);
    benchmark::DoNotOptimize(BenchTnr().DistanceQuery(s, t));
  }
}
BENCHMARK(BM_TnrDistance);

void BM_SilcNextHop(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    auto [s, t] = RandomPair(&rng);
    benchmark::DoNotOptimize(BenchSilc().NextHop(s, t));
  }
}
BENCHMARK(BM_SilcNextHop);

void BM_SilcPath(benchmark::State& state) {
  Rng rng(8);
  for (auto _ : state) {
    auto [s, t] = RandomPair(&rng);
    benchmark::DoNotOptimize(BenchSilc().PathQuery(s, t).size());
  }
}
BENCHMARK(BM_SilcPath);

}  // namespace
}  // namespace roadnet

BENCHMARK_MAIN();
