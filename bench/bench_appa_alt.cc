// Appendix A (extension): the pre-CH techniques — ALT, Arc Flags, and
// RE (reach-based pruning) — against CH and the bidirectional Dijkstra
// baseline.
//
// The paper excludes these techniques from its main comparison because
// prior work [26] showed them "inferior to CH in terms of both space
// overhead and query performance". This bench reproduces that dominance
// on the synthetic datasets: ALT's landmark table and Arc Flags' per-arc
// region bitmaps both exceed CH's augmented graph, their preprocessing is
// slower, and their queries lose to CH on far sets — though both beat the
// plain baseline comfortably.

#include <cstdio>
#include <memory>

#include "alt/alt_index.h"
#include "arcflags/arc_flags.h"
#include "bench/bench_util.h"
#include "ch/ch_index.h"
#include "core/experiment.h"
#include "dijkstra/bidirectional.h"
#include "hiti/partition_overlay.h"
#include "reach/reach_index.h"
#include "util/bytes.h"

int main() {
  using namespace roadnet;

  std::printf(
      "Appendix A: ALT / ArcFlags / RE / HiTi vs CH vs bidi Dijkstra\n");
  std::printf("%-8s %8s %-9s %10s %10s %12s %12s\n", "Dataset", "n",
              "method", "prep (s)", "MiB", "dist Q4", "dist Q9");
  bench::PrintRule(76);
  for (const auto& spec : bench::BenchDatasets()) {
    if (spec.target_vertices > 40000) continue;  // wall-clock cap
    Graph g = BuildDataset(spec);
    const auto sets =
        GenerateLInfQuerySets(g, bench::QueriesPerSet(), 2600 + spec.seed);
    const QuerySet& near = sets[3];  // Q4
    const QuerySet& far = sets[8];   // Q9

    std::vector<BuildResult> builds;
    builds.push_back(Experiment::MeasureBuild(
        "Dijkstra",
        [&] { return std::make_unique<BidirectionalDijkstra>(g); }));
    builds.push_back(Experiment::MeasureBuild(
        "ALT", [&] { return std::make_unique<AltIndex>(g); }));
    if (g.NumVertices() <= 22000) {  // boundary-SSSP cost cap
      builds.push_back(Experiment::MeasureBuild(
          "ArcFlags", [&] { return std::make_unique<ArcFlagsIndex>(g); }));
    }
    if (g.NumVertices() <= 5000) {  // exact reaches need all-pairs work
      builds.push_back(Experiment::MeasureBuild(
          "RE", [&] { return std::make_unique<ReachIndex>(g); }));
    }
    builds.push_back(Experiment::MeasureBuild(
        "HiTi", [&] { return std::make_unique<PartitionOverlayIndex>(g); }));
    builds.push_back(Experiment::MeasureBuild(
        "CH", [&] { return std::make_unique<ChIndex>(g); }));
    size_t mismatches = 0;
    for (const auto& set : {near, far}) {
      for (size_t i = 1; i + 1 < builds.size(); ++i) {
        mismatches += Experiment::CountDistanceMismatches(
            builds[i].index.get(), builds.back().index.get(),
            bench::Subset(set, bench::SlowMethodQueryCap()));
      }
    }
    for (const BuildResult& b : builds) {
      const bool slow = b.method == "Dijkstra";
      const QuerySet near_q =
          slow ? bench::Subset(near, bench::SlowMethodQueryCap()) : near;
      const QuerySet far_q =
          slow ? bench::Subset(far, bench::SlowMethodQueryCap()) : far;
      std::printf("%-8s %8u %-9s %10.2f %10.2f %12.2f %12.2f\n",
                  spec.name.c_str(), g.NumVertices(), b.method.c_str(),
                  b.preprocess_seconds, BytesToMiB(b.index_bytes),
                  Experiment::MeasureDistanceQueries(b.index.get(), near_q),
                  Experiment::MeasureDistanceQueries(b.index.get(), far_q));
    }
    if (mismatches > 0) {
      std::printf("  WARNING: %zu ALT/CH mismatches\n", mismatches);
    }
  }
  std::printf(
      "\nExpected: CH dominates ALT and Arc Flags on index size AND query "
      "time on\nevery dataset, reproducing the paper's rationale for "
      "leaving the pre-CH\ntechniques out of the main evaluation; both "
      "still beat the plain baseline.\n");
  return 0;
}
