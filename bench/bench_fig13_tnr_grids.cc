// Figure 13 (Appendix E.1): TNR space and preprocessing under different
// grid configurations — coarse (the production default), fine (2x
// resolution with a full table), and hybrid (coarse full table + fine
// sparse table).
//
// Expected shape: space coarse < hybrid < fine (the fine full table
// dominates); preprocessing coarse < fine < hybrid (hybrid processes the
// access nodes of both levels).

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "ch/ch_index.h"
#include "core/experiment.h"
#include "tnr/tnr_index.h"
#include "util/bytes.h"

int main() {
  using namespace roadnet;

  std::printf(
      "Figure 13: TNR space (MiB) and preprocessing (s) per grid "
      "configuration\n");
  std::printf("%-8s %8s | %10s %10s %10s | %10s %10s %10s\n", "Dataset", "n",
              "DxD MiB", "2Dx2D MiB", "hyb MiB", "DxD s", "2Dx2D s",
              "hyb s");
  bench::PrintRule(92);

  for (const auto& spec : bench::BenchDatasets()) {
    Graph g = BuildDataset(spec);
    if (g.NumVertices() > bench::MaxVerticesForTnr() / 3) continue;
    ChIndex ch(g);
    const uint32_t res = bench::PaperGridResolution();

    double mib[3] = {0, 0, 0}, secs[3] = {0, 0, 0};
    const TnrConfig configs[3] = {
        {.grid_resolution = res},
        {.grid_resolution = res * 2},
        {.grid_resolution = res, .hybrid = true},
    };
    for (int i = 0; i < 3; ++i) {
      BuildResult b = Experiment::MeasureBuild("TNR", [&] {
        return std::make_unique<TnrIndex>(g, &ch, configs[i]);
      });
      mib[i] = BytesToMiB(b.index_bytes);
      secs[i] = b.preprocess_seconds;
    }
    std::printf("%-8s %8u |", spec.name.c_str(), g.NumVertices());
    for (double v : mib) std::printf(" %10.2f", v);
    std::printf(" |");
    for (double v : secs) std::printf(" %10.2f", v);
    std::printf("   (D=%u)\n", res);
  }
  std::printf(
      "\nPaper shape: 128x128 < hybrid < 256x256 in space; the hybrid grid "
      "costs the\nmost preprocessing (it processes both levels' access "
      "nodes).\n");
  return 0;
}
