// Connection-scale serving benchmark: latency vs offered load on the
// epoll event-loop front end, measured open loop.
//
//   bench_server_scale [--quick] [--out BENCH_server_scale.json]
//
// Three phases against an in-process QueryServer over loopback:
//
//   A. Baseline: closed-loop single connection, one request in flight —
//      the p99 of a server that is never behind.
//   B. Saturation probe: an overdriven open-loop burst (offered load far
//      beyond capacity, deep pipelines); the OK-reply goodput is the
//      machine's saturation throughput.
//   C. Scale curve: CONNS open-loop connections (10000 full, 1000 quick)
//      at {12.5, 25, 50, 75}% of the measured saturation, Poisson
//      arrivals, latency measured from the scheduled arrival
//      (coordinated-omission safe). Sampled replies are verified against
//      a local Dijkstra oracle.
//
// Acceptance gate (exit 1 on failure):
//   - every curve point completes: all scheduled requests answered, no
//     connection errors, no oracle mismatches;
//   - p99 at the 50%-of-saturation point stays under
//     max(10 x baseline p99, kGateFloorNs). The relative term is the
//     real bound on multi-core hosts; the absolute floor keeps the gate
//     meaningful when the driver and the server multiplex one hardware
//     thread (the closed-loop baseline then sees no contention while
//     every open-loop point pays scheduler timeslicing, so the ratio
//     alone would gate on the CPU count, not on the server). A front-end
//     regression at 10k connections shows up 10-100x above the floor.
//
// Writes the curve as JSONL metric points ({"name","value","labels"})
// for scripts/validate_metrics.py.

#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "ch/ch_index.h"
#include "dijkstra/dijkstra.h"
#include "graph/generator.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/openloop.h"
#include "server/server.h"
#include "server/wire.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace roadnet;

// Absolute component of the p99 gate; see the header comment.
constexpr uint64_t kGateFloorNs = 15ull * 1000 * 1000;  // 15 ms

int g_failures = 0;

void Check(bool ok, const std::string& what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what.c_str());
    ++g_failures;
  }
}

// Raises RLIMIT_NOFILE toward `want` fds (driver + in-process server
// sides both count). Returns the limit actually in force.
uint64_t RaiseFdLimit(uint64_t want) {
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return 1024;
  if (rl.rlim_cur >= want) return rl.rlim_cur;
  rlimit bumped = rl;
  bumped.rlim_cur = want;
  if (bumped.rlim_max < want) bumped.rlim_max = want;  // needs privilege
  if (::setrlimit(RLIMIT_NOFILE, &bumped) == 0) return want;
  // Retry within the existing hard limit.
  bumped = rl;
  bumped.rlim_cur = rl.rlim_max < want ? rl.rlim_max : want;
  if (::setrlimit(RLIMIT_NOFILE, &bumped) == 0) return bumped.rlim_cur;
  return rl.rlim_cur;
}

// Closed-loop single-connection baseline: client p99 with exactly one
// request ever in flight.
Histogram ClosedLoopBaseline(const Graph& g, uint16_t port, size_t count,
                             uint64_t seed) {
  Histogram latency;
  std::string error;
  auto client = BlockingClient::Connect("127.0.0.1", port, &error);
  if (client == nullptr) {
    Check(false, "baseline connect: " + error);
    return latency;
  }
  Rng rng(seed);
  for (size_t i = 0; i < count; ++i) {
    wire::QueryRequest req;
    req.source = static_cast<VertexId>(rng.NextBelow(g.NumVertices()));
    req.target = static_cast<VertexId>(rng.NextBelow(g.NumVertices()));
    wire::QueryResponse resp;
    Timer timer;
    if (!client->Query(req, &resp, &error)) {
      Check(false, "baseline query: " + error);
      return latency;
    }
    latency.Record(timer.ElapsedNanos());
  }
  return latency;
}

// Oracle-checks the samples an open-loop run recorded. Returns the
// mismatch count.
uint64_t VerifySamples(const Graph& g, const OpenLoopResult& res) {
  uint64_t mismatches = 0;
  Dijkstra oracle(g);
  for (const OpenLoopResult::VerifySample& s : res.samples) {
    const auto status = static_cast<wire::Status>(s.status);
    if (status != wire::Status::kOk && status != wire::Status::kUnreachable) {
      continue;
    }
    const Distance truth = oracle.Run(s.source, s.target);
    const Distance got =
        status == wire::Status::kOk ? s.distance : kInfDistance;
    if (got != truth) ++mismatches;
  }
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = bench::FastMode();
  std::string out_path = "BENCH_server_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_server_scale [--quick] [--out FILE.json]\n");
      return 2;
    }
  }

  size_t conns = quick ? 1000 : 10000;
  const uint64_t fd_limit = RaiseFdLimit(2 * conns + 1024);
  if (fd_limit < 2 * conns + 256) {
    const size_t scaled = (fd_limit - 256) / 2;
    std::printf("fd limit %llu: scaling %zu connections down to %zu\n",
                static_cast<unsigned long long>(fd_limit), conns, scaled);
    conns = scaled;
  }

  GeneratorConfig config;
  config.target_vertices = quick ? 1500 : 2500;
  config.seed = 42;
  const Graph g = GenerateRoadNetwork(config);
  const ChIndex ch(g);
  std::printf("graph: %u vertices, %zu edges; CH ready; %zu connections\n",
              g.NumVertices(), g.NumEdges(), conns);

  ServerOptions options;
  options.num_loops = 2;
  options.engine_threads = 2;
  options.queue_capacity = 8192;
  options.max_connections = conns + 64;
  QueryServer server(ch, wire::TechniqueId("ch"), g.NumVertices(), options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "FAIL: server start: %s\n", error.c_str());
    return 1;
  }

  MetricsRegistry metrics;

  // --- A. Closed-loop single-connection baseline ---
  const Histogram baseline = ClosedLoopBaseline(
      g, server.Port(), /*count=*/quick ? 10000 : 30000, /*seed=*/7);
  const double baseline_p99_ns = baseline.ValueAtQuantile(0.99);
  std::printf("baseline: closed loop, 1 connection: p50 %.1f us,"
              " p99 %.1f us\n",
              baseline.ValueAtQuantile(0.50) * 1e-3, baseline_p99_ns * 1e-3);
  Check(baseline.Count() > 0, "baseline measured");
  metrics.Add("server_scale_baseline_p99_us", baseline_p99_ns * 1e-3);

  // --- B. Saturation probe: overdriven open loop, OK goodput ---
  OpenLoopOptions probe;
  probe.port = server.Port();
  probe.connections = 64;
  probe.pipeline = 256;
  probe.rate = 2e6;  // far beyond any single-host capacity
  probe.total_requests = quick ? 20000 : 40000;
  probe.seed = 11;
  probe.num_vertices = g.NumVertices();
  probe.technique = wire::TechniqueId("ch");
  const OpenLoopResult sat = RunOpenLoop(probe);
  const uint64_t sat_ok =
      sat.status_counts[static_cast<uint8_t>(wire::Status::kOk)] +
      sat.status_counts[static_cast<uint8_t>(wire::Status::kUnreachable)];
  const double saturation_qps =
      sat.elapsed_ns > 0
          ? static_cast<double>(sat_ok) * 1e9 / sat.elapsed_ns
          : 0.0;
  std::printf("peak goodput: %.0f OK replies/s (%llu of %llu answered OK,"
              " rest shed)\n",
              saturation_qps, static_cast<unsigned long long>(sat_ok),
              static_cast<unsigned long long>(sat.received));
  Check(sat.received == probe.total_requests && sat.error.empty(),
        "saturation probe completed: " + sat.error);
  Check(saturation_qps > 0, "saturation throughput positive");
  metrics.Add("server_scale_peak_goodput_qps", saturation_qps);

  // The overdriven probe amortizes every wakeup over deep batches and so
  // overstates what finite arrivals sustain. Descend from the peak to
  // the highest rate the server actually keeps up with: achieved within
  // 5% of offered, nothing shed, and a flat median (a growing queue
  // drags p50 to milliseconds long before the run fails outright).
  double sustainable = 0.0;
  uint64_t probe_seed = 31;
  for (double r = saturation_qps; r > saturation_qps / 20; r *= 0.8) {
    OpenLoopOptions s;
    s.port = server.Port();
    s.connections = 64;
    s.pipeline = 128;
    s.rate = r;
    s.total_requests = quick ? 6000 : 12000;
    s.seed = probe_seed++;
    s.num_vertices = g.NumVertices();
    s.technique = wire::TechniqueId("ch");
    const OpenLoopResult res = RunOpenLoop(s);
    const bool keeps_up =
        res.ok && res.achieved_qps >= 0.95 * r &&
        res.status_counts[static_cast<uint8_t>(wire::Status::kOverloaded)] ==
            0 &&
        res.latency.ValueAtQuantile(0.50) <= 2e6;
    std::printf("  probe %6.0f/s: achieved %6.0f/s p50 %8.1f us -> %s\n", r,
                res.achieved_qps, res.latency.ValueAtQuantile(0.50) * 1e-3,
                keeps_up ? "sustained" : "behind");
    if (keeps_up) {
      sustainable = r;
      break;
    }
  }
  Check(sustainable > 0, "found a sustainable rate");
  std::printf("saturation: %.0f req/s sustained\n", sustainable);
  metrics.Add("server_scale_saturation_qps", sustainable);

  // --- C. Scale curve: CONNS connections at fractions of saturation ---
  const double gate_ns =
      std::max(10.0 * baseline_p99_ns, static_cast<double>(kGateFloorNs));
  const auto run_point = [&](double frac, uint64_t seed) {
    OpenLoopOptions olo;
    olo.port = server.Port();
    olo.connections = conns;
    olo.pipeline = 128;
    olo.rate = sustainable * frac;
    olo.total_requests = quick ? 20000 : 60000;
    olo.seed = seed;
    olo.num_vertices = g.NumVertices();
    olo.technique = wire::TechniqueId("ch");
    olo.verify_every = 500;
    return RunOpenLoop(olo);
  };

  const double fractions[] = {0.125, 0.25, 0.50, 0.75};
  double p99_at_half_ns = -1.0;
  for (const double frac : fractions) {
    const uint64_t seed = 100 + static_cast<uint64_t>(frac * 1000);
    OpenLoopResult res = run_point(frac, seed);
    if (frac == 0.50 && res.ok &&
        res.latency.ValueAtQuantile(0.99) > gate_ns) {
      // This VM shows occasional multi-hundred-ms steal bursts that can
      // land anywhere in a run; a regression fails twice, a burst once.
      std::printf("  50%% point over the gate (p99 %.1f us), retrying\n",
                  res.latency.ValueAtQuantile(0.99) * 1e-3);
      OpenLoopResult retry = run_point(frac, seed + 1);
      if (retry.ok && retry.latency.ValueAtQuantile(0.99) <
                          res.latency.ValueAtQuantile(0.99)) {
        res = std::move(retry);
      }
    }
    const uint64_t mismatches = VerifySamples(g, res);
    const double p50_ns = res.latency.ValueAtQuantile(0.50);
    const double p99_ns = res.latency.ValueAtQuantile(0.99);
    std::printf("curve %4.1f%%: offered %.0f/s achieved %.0f/s,"
                " p50 %.1f us p99 %.1f us, %zu verified %llu mismatches\n",
                frac * 100, res.offered_qps, res.achieved_qps, p50_ns * 1e-3,
                p99_ns * 1e-3, res.samples.size(),
                static_cast<unsigned long long>(mismatches));
    const std::string tag = std::to_string(frac * 100);
    Check(res.ok, "curve point " + tag + "% completed: " + res.error);
    Check(res.connection_errors == 0,
          "curve point " + tag + "% had no connection errors");
    Check(mismatches == 0, "curve point " + tag + "% matches the oracle");
    std::vector<std::pair<std::string, std::string>> labels = {
        {"pct_of_saturation", tag},
        {"connections", std::to_string(conns)}};
    metrics.Add("server_scale_offered_qps", res.offered_qps, labels);
    metrics.Add("server_scale_achieved_qps", res.achieved_qps, labels);
    metrics.Add("server_scale_p50_us", p50_ns * 1e-3, labels);
    metrics.Add("server_scale_p99_us", p99_ns * 1e-3, labels);
    if (frac == 0.50) p99_at_half_ns = p99_ns;
  }

  // --- Gate ---
  std::printf("gate: p99 at 50%% saturation %.1f us vs"
              " max(10 x %.1f us, %.1f us) = %.1f us\n",
              p99_at_half_ns * 1e-3, baseline_p99_ns * 1e-3,
              kGateFloorNs * 1e-3, gate_ns * 1e-3);
  Check(p99_at_half_ns >= 0, "50% curve point measured");
  Check(p99_at_half_ns <= gate_ns,
        "p99 at 50% saturation within the latency gate");
  metrics.Add("server_scale_gate_p99_us", p99_at_half_ns * 1e-3);
  metrics.Add("server_scale_gate_limit_us", gate_ns * 1e-3);

  server.Shutdown();

  if (!metrics.WriteFile(out_path)) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("metrics: wrote %zu points to %s\n", metrics.points().size(),
              out_path.c_str());

  if (g_failures > 0) {
    std::fprintf(stderr, "%d serving-scale check(s) failed\n", g_failures);
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
