// Ablation (ours): TNR locality-filter routing per query set — how many
// queries in each Qi the coarse table, the hybrid fine table, and the
// fallback answer. This quantifies the mechanism behind Figures 9/14: TNR
// == CH on Q1..Q5 (all fallback), mixed at Q5/Q6, all-table from Q7 up.

#include <cstdio>

#include "bench/bench_util.h"
#include "ch/ch_index.h"
#include "tnr/tnr_index.h"
#include "workload/query_gen.h"

int main() {
  using namespace roadnet;

  std::printf("TNR locality-filter hit rates per query set\n");
  for (const auto& spec : bench::BenchDatasets()) {
    if (spec.name != "CO'" && spec.name != "CA'") continue;
    if (bench::FastMode() && spec.name == "CA'") continue;
    Graph g = BuildDataset(spec);
    ChIndex ch(g);
    TnrConfig config;
    config.grid_resolution = bench::PaperGridResolution();
    config.hybrid = true;
    TnrIndex tnr(g, &ch, config);
    const auto sets =
        GenerateLInfQuerySets(g, bench::QueriesPerSet(), 2200 + spec.seed);

    std::printf("\n(%s)  n=%u, D=%u hybrid\n", spec.name.c_str(),
                g.NumVertices(), config.grid_resolution);
    std::printf("%-6s %8s %12s %12s %12s\n", "Set", "queries",
                "coarse table", "fine table", "fallback");
    bench::PrintRule(56);
    for (const auto& set : sets) {
      if (set.pairs.empty()) continue;
      tnr.ResetStats();
      for (auto [s, t] : set.pairs) tnr.DistanceQuery(s, t);
      const TnrStats& st = tnr.stats();
      std::printf("%-6s %8zu %12zu %12zu %12zu\n", set.name.c_str(),
                  set.pairs.size(), st.coarse_table_answered,
                  st.fine_table_answered, st.fallback_answered);
    }
  }
  std::printf(
      "\nExpected: near sets 100%% fallback, far sets 100%% coarse table, "
      "with the\nfine (hybrid) table picking up a band in between.\n");
  return 0;
}
