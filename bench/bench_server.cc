// End-to-end serving benchmark and acceptance check for the network
// query service (src/server/). Runs an in-process QueryServer over
// loopback TCP and drives it with closed-loop client threads, proving
// the four serving properties the subsystem promises:
//
//   1. Correctness under concurrency: >= 4 connections, every sampled
//      distance matches a local Dijkstra oracle exactly.
//   2. Overload shedding: a deliberately undersized request queue
//      produces explicit OVERLOADED responses, not silent queueing.
//   3. Deadline enforcement: requests with a tiny deadline budget are
//      shed with DEADLINE_EXCEEDED at dispatch.
//   4. Graceful drain: a SHUTDOWN frame mid-traffic answers every
//      in-flight request before the server stops.
//
// Exits nonzero if any property fails — scripts/check.sh runs this (and
// the TSan build runs it too, covering the server's thread model).
// ROADNET_BENCH_FAST=1 shrinks the traffic volumes.

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "ch/ch_index.h"
#include "dijkstra/dijkstra.h"
#include "graph/generator.h"
#include "obs/histogram.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace roadnet;

int g_failures = 0;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++g_failures;
  }
}

struct DriveResult {
  uint64_t ok = 0;
  uint64_t unreachable = 0;
  uint64_t overloaded = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t draining = 0;
  uint64_t transport_errors = 0;
  uint64_t verified = 0;
  uint64_t mismatches = 0;
  Histogram latency;
};

// Drives `per_conn` closed-loop queries on each of `connections`
// threads. verify_every > 0 checks distances against a per-thread
// Dijkstra oracle.
DriveResult Drive(const Graph& g, uint16_t port, size_t connections,
                  size_t per_conn, uint64_t deadline_us,
                  size_t verify_every, uint64_t seed) {
  std::vector<DriveResult> results(connections);
  std::vector<std::thread> threads;
  for (size_t tid = 0; tid < connections; ++tid) {
    threads.emplace_back([&, tid] {
      DriveResult& r = results[tid];
      std::string error;
      auto client = BlockingClient::Connect("127.0.0.1", port, &error);
      if (client == nullptr) {
        ++r.transport_errors;
        return;
      }
      std::unique_ptr<Dijkstra> oracle;
      if (verify_every > 0) oracle = std::make_unique<Dijkstra>(g);
      Rng rng(seed + tid);
      for (size_t i = 0; i < per_conn; ++i) {
        wire::QueryRequest req;
        req.source = static_cast<VertexId>(rng.NextBelow(g.NumVertices()));
        req.target = static_cast<VertexId>(rng.NextBelow(g.NumVertices()));
        req.deadline_micros = deadline_us;
        wire::QueryResponse resp;
        Timer timer;
        if (!client->Query(req, &resp, &error)) {
          ++r.transport_errors;
          return;
        }
        r.latency.Record(timer.ElapsedNanos());
        switch (resp.status) {
          case wire::Status::kOk: ++r.ok; break;
          case wire::Status::kUnreachable: ++r.unreachable; break;
          case wire::Status::kOverloaded: ++r.overloaded; break;
          case wire::Status::kDeadlineExceeded: ++r.deadline_exceeded; break;
          case wire::Status::kShuttingDown: ++r.draining; break;
          case wire::Status::kBadRequest: break;
        }
        const bool answered = resp.status == wire::Status::kOk ||
                              resp.status == wire::Status::kUnreachable;
        if (oracle != nullptr && answered && i % verify_every == 0) {
          ++r.verified;
          const Distance truth = oracle->Run(req.source, req.target);
          const Distance got = resp.status == wire::Status::kOk
                                   ? resp.distance
                                   : kInfDistance;
          if (got != truth) ++r.mismatches;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  DriveResult total;
  for (DriveResult& r : results) {
    total.ok += r.ok;
    total.unreachable += r.unreachable;
    total.overloaded += r.overloaded;
    total.deadline_exceeded += r.deadline_exceeded;
    total.draining += r.draining;
    total.transport_errors += r.transport_errors;
    total.verified += r.verified;
    total.mismatches += r.mismatches;
    total.latency.Merge(r.latency);
  }
  return total;
}

}  // namespace

int main() {
  const bool fast = bench::FastMode();
  const size_t per_conn = fast ? 100 : 500;

  GeneratorConfig config;
  config.target_vertices = fast ? 1200 : 2500;
  config.seed = 42;
  const Graph g = GenerateRoadNetwork(config);
  const ChIndex ch(g);
  std::printf("graph: %u vertices, %zu edges; CH ready\n", g.NumVertices(),
              g.NumEdges());

  // --- 1. Correctness under concurrency (>= 4 connections) ---
  {
    ServerOptions options;
    options.engine_threads = 4;
    QueryServer server(ch, wire::TechniqueId("ch"), g.NumVertices(),
                       options);
    std::string error;
    Check(server.Start(&error), "server start (correctness phase)");
    Timer wall;
    const DriveResult r =
        Drive(g, server.Port(), /*connections=*/6, per_conn,
              /*deadline_us=*/0, /*verify_every=*/1, /*seed=*/7);
    const double seconds = wall.ElapsedSeconds();
    const uint64_t completed = r.ok + r.unreachable;
    std::printf(
        "serving: %llu queries over 6 conns, %.0f qps,"
        " client p50 %.1f us p99 %.1f us\n",
        static_cast<unsigned long long>(completed),
        seconds > 0 ? completed / seconds : 0.0,
        r.latency.ValueAtQuantile(0.50) * 1e-3,
        r.latency.ValueAtQuantile(0.99) * 1e-3);
    std::printf("verified: %llu sampled distances, %llu mismatches\n",
                static_cast<unsigned long long>(r.verified),
                static_cast<unsigned long long>(r.mismatches));
    Check(completed == 6 * per_conn, "every query answered");
    Check(r.verified > 0, "oracle sample nonempty");
    Check(r.mismatches == 0, "all sampled distances match the oracle");
    Check(r.transport_errors == 0, "no transport errors");
    server.Shutdown();
  }

  // --- 2. Overload shedding on an undersized queue ---
  {
    ServerOptions options;
    options.queue_capacity = 1;  // deliberately undersized
    options.engine_threads = 1;
    options.max_dispatch_batch = 1;
    QueryServer server(ch, wire::TechniqueId("ch"), g.NumVertices(),
                       options);
    std::string error;
    Check(server.Start(&error), "server start (overload phase)");
    const DriveResult r =
        Drive(g, server.Port(), /*connections=*/8, per_conn,
              /*deadline_us=*/0, /*verify_every=*/0, /*seed=*/11);
    std::printf("overload: queue cap 1, 8 conns -> %llu OVERLOADED of %llu\n",
                static_cast<unsigned long long>(r.overloaded),
                static_cast<unsigned long long>(8 * per_conn));
    Check(r.overloaded > 0,
          "undersized queue sheds with explicit OVERLOADED");
    Check(r.ok > 0, "some queries still served under overload");
    server.Shutdown();
  }

  // --- 3. Deadline enforcement ---
  {
    ServerOptions options;
    options.engine_threads = 1;
    QueryServer server(ch, wire::TechniqueId("ch"), g.NumVertices(),
                       options);
    std::string error;
    Check(server.Start(&error), "server start (deadline phase)");
    // A 1 us budget is below any realistic queue wait, so dispatch-time
    // deadline checks shed nearly everything.
    const DriveResult r =
        Drive(g, server.Port(), /*connections=*/8, per_conn,
              /*deadline_us=*/1, /*verify_every=*/0, /*seed=*/13);
    std::printf("deadline: 1 us budget -> %llu DEADLINE_EXCEEDED of %llu\n",
                static_cast<unsigned long long>(r.deadline_exceeded),
                static_cast<unsigned long long>(8 * per_conn));
    Check(r.deadline_exceeded > 0,
          "expired deadline sheds with DEADLINE_EXCEEDED");
    server.Shutdown();
  }

  // --- 4. Graceful drain answers in-flight requests ---
  {
    ServerOptions options;
    options.engine_threads = 2;
    QueryServer server(ch, wire::TechniqueId("ch"), g.NumVertices(),
                       options);
    std::string error;
    Check(server.Start(&error), "server start (drain phase)");
    const uint16_t port = server.Port();
    std::atomic<uint64_t> answered{0};
    std::atomic<uint64_t> dropped{0};
    std::vector<std::thread> drivers;
    for (size_t tid = 0; tid < 4; ++tid) {
      drivers.emplace_back([&, tid] {
        std::string err;
        auto client = BlockingClient::Connect("127.0.0.1", port, &err);
        if (client == nullptr) return;
        Rng rng(100 + tid);
        for (size_t i = 0; i < per_conn; ++i) {
          wire::QueryRequest req;
          req.source = static_cast<VertexId>(rng.NextBelow(g.NumVertices()));
          req.target = static_cast<VertexId>(rng.NextBelow(g.NumVertices()));
          wire::QueryResponse resp;
          if (!client->Query(req, &resp, &err)) {
            // A hangup between requests after the drain began is a clean
            // end of this connection, not a dropped request.
            if (err != "server closed the connection") {
              dropped.fetch_add(1);
            }
            return;
          }
          answered.fetch_add(1);
        }
      });
    }
    // Let traffic build, then pull the plug from an admin connection.
    std::this_thread::sleep_for(std::chrono::milliseconds(fast ? 20 : 50));
    auto admin = BlockingClient::Connect("127.0.0.1", port, &error);
    Check(admin != nullptr, "admin connect");
    if (admin != nullptr) {
      Check(admin->SendShutdown(&error), "SHUTDOWN frame acknowledged");
    }
    for (std::thread& t : drivers) t.join();
    server.Shutdown();
    std::printf("drain: %llu answered before/through shutdown,"
                " %llu dropped mid-request\n",
                static_cast<unsigned long long>(answered.load()),
                static_cast<unsigned long long>(dropped.load()));
    Check(answered.load() > 0, "requests answered through shutdown");
    Check(dropped.load() == 0, "no request dropped without a response");
  }

  if (g_failures > 0) {
    std::fprintf(stderr, "bench_server: %d failures\n", g_failures);
    return 1;
  }
  std::printf("bench_server: all serving properties hold\n");
  return 0;
}
