#include "arcflags/arc_flags.h"

#include "dijkstra/dijkstra.h"
#include "tests/test_util.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

class ArcFlagsCorrectnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ArcFlagsCorrectnessTest, MatchesDijkstraAcrossSeeds) {
  Graph g = TestNetwork(600, GetParam());
  ArcFlagsConfig config;
  config.region_resolution = 6;
  ArcFlagsIndex af(g, config);
  ExpectIndexCorrect(g, &af, 150, GetParam() + 700);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArcFlagsCorrectnessTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(ArcFlags, PruningActuallyPrunes) {
  // On far queries the flagged search must settle fewer vertices than the
  // unpruned unidirectional Dijkstra.
  Graph g = TestNetwork(2500, 9);
  ArcFlagsIndex af(g);
  Dijkstra dij(g);
  size_t af_total = 0, dij_total = 0;
  for (auto [s, t] : RandomPairs(g, 30, 3)) {
    af.DistanceQuery(s, t);
    af_total += af.SettledCount();
    dij.Run(s, t);
    dij_total += dij.SettledCount();
  }
  EXPECT_LT(af_total * 2, dij_total);
}

TEST(ArcFlags, IntraRegionArcsAlwaysFlagged) {
  Graph g = TestNetwork(500, 11);
  ArcFlagsConfig config;
  config.region_resolution = 4;
  ArcFlagsIndex af(g, config);
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    size_t idx = g.FirstArcIndex(u);
    for (const Arc& a : g.Neighbors(u)) {
      EXPECT_TRUE(af.ArcFlag(idx, af.RegionOf(a.to)))
          << "arc head region must always be flagged";
      ++idx;
    }
  }
}

TEST(ArcFlags, ShortestPathTreeArcsFlaggedForEveryTargetRegion) {
  // Completeness property behind exactness: for random (s, t), every arc
  // of the Dijkstra-found shortest path carries the flag of t's region.
  Graph g = TestNetwork(700, 21);
  ArcFlagsConfig config;
  config.region_resolution = 6;
  ArcFlagsIndex af(g, config);
  Dijkstra dij(g);
  for (auto [s, t] : RandomPairs(g, 60, 7)) {
    if (dij.Run(s, t) == kInfDistance) continue;
    Path p = dij.PathTo(t);
    for (size_t i = 0; i + 1 < p.size(); ++i) {
      // Locate the arc position of (p[i], p[i+1]).
      size_t idx = g.FirstArcIndex(p[i]);
      auto arcs = g.Neighbors(p[i]);
      for (size_t k = 0; k < arcs.size(); ++k) {
        if (arcs[k].to == p[i + 1]) {
          EXPECT_TRUE(af.ArcFlag(idx + k, af.RegionOf(t)))
              << "arc (" << p[i] << "," << p[i + 1] << ") toward region of "
              << t;
          break;
        }
      }
    }
  }
}

TEST(ArcFlags, SingleRegionDegeneratesToDijkstra) {
  Graph g = TestNetwork(300, 5);
  ArcFlagsConfig config;
  config.region_resolution = 1;
  ArcFlagsIndex af(g, config);
  EXPECT_EQ(af.NumRegions(), 1u);
  ExpectIndexCorrect(g, &af, 60, 17);
}

}  // namespace
}  // namespace roadnet
