#include "tnr/access_nodes.h"

#include <algorithm>

#include "ch/ch_index.h"
#include "dijkstra/dijkstra.h"
#include "tests/test_util.h"
#include "tnr/cell_grid.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

// The covering property (Section 3.3): for any vertex v in a cell C and
// any target t beyond C's outer shell, SOME access node of C lies on a
// shortest v-t path with its recorded distance exact, i.e.
// min over a of [recorded d(v,a) + dist(a,t)] == dist(v,t).
TEST(AccessNodes, CoverAllFarShortestPaths) {
  Graph g = TestNetwork(900, 55);
  CellGrid grid(g, 12);
  ChIndex ch(g);
  AccessNodeSet set = ComputeAccessNodes(g, grid, &ch);
  Dijkstra dij(g);

  Rng rng(5);
  size_t checked = 0;
  while (checked < 60) {
    const VertexId v = static_cast<VertexId>(rng.NextBelow(g.NumVertices()));
    const VertexId t = static_cast<VertexId>(rng.NextBelow(g.NumVertices()));
    if (CellChebyshev(grid.CellOf(v), grid.CellOf(t)) < 5) continue;
    ++checked;
    const Distance truth = dij.Run(v, t);
    Distance via_access = kInfDistance;
    for (const VertexAccess& va : set.vertex_access[v]) {
      const Distance rest = dij.Run(va.node, t);
      if (rest == kInfDistance) continue;
      via_access = std::min(via_access, va.dist + rest);
    }
    EXPECT_EQ(via_access, truth) << "v=" << v << " t=" << t;
  }
}

TEST(AccessNodes, RecordedDistancesAreExact) {
  Graph g = TestNetwork(600, 19);
  CellGrid grid(g, 10);
  ChIndex ch(g);
  AccessNodeSet set = ComputeAccessNodes(g, grid, &ch);
  Dijkstra dij(g);
  Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    const VertexId v = static_cast<VertexId>(rng.NextBelow(g.NumVertices()));
    for (const VertexAccess& va : set.vertex_access[v]) {
      EXPECT_EQ(va.dist, dij.Run(v, va.node))
          << "v=" << v << " access=" << va.node;
    }
  }
}

TEST(AccessNodes, EveryCellVertexCarriesTheFullCellSet) {
  // I2 completeness: each vertex has one entry per access node of its
  // cell (the paper's "distance from each vertex v to each access node of
  // the cell that contains v").
  Graph g = TestNetwork(600, 23);
  CellGrid grid(g, 10);
  ChIndex ch(g);
  AccessNodeSet set = ComputeAccessNodes(g, grid, &ch);
  for (uint32_t cell : grid.NonEmptyCells()) {
    const auto& access = set.cell_access[cell];
    for (VertexId v : grid.VerticesIn(cell)) {
      EXPECT_EQ(set.vertex_access[v].size(), access.size()) << "v=" << v;
    }
  }
}

TEST(AccessNodes, AccessCountPerCellIsSmall) {
  // The paper observes ~10 access nodes per cell regardless of dataset;
  // our synthetic analogues should stay in the same order of magnitude.
  Graph g = TestNetwork(2500, 29);
  CellGrid grid(g, 16);
  ChIndex ch(g);
  AccessNodeSet set = ComputeAccessNodes(g, grid, &ch);
  size_t cells = 0, total = 0, biggest = 0;
  for (uint32_t cell : grid.NonEmptyCells()) {
    const size_t k = set.cell_access[cell].size();
    ++cells;
    total += k;
    biggest = std::max(biggest, k);
  }
  const double avg = static_cast<double>(total) / cells;
  EXPECT_LT(avg, 40.0);
  EXPECT_LT(biggest, 120u);
}

TEST(AccessNodes, FlawedVariantMissesJumpingEdgeCoverage) {
  // On a network with fast shell-jumping bridges, the flawed enumeration
  // must produce a strictly poorer covering: some far pair's Equation-1
  // estimate exceeds the true distance.
  GeneratorConfig gc;
  gc.target_vertices = 1600;
  gc.seed = 4242 + 2000;
  gc.long_edge_probability = 0.05;
  gc.long_edge_span = 14;
  Graph g = GenerateRoadNetwork(gc);
  CellGrid grid(g, 16);
  ChIndex ch(g);
  AccessNodeSet correct = ComputeAccessNodes(g, grid, &ch);
  AccessNodeSet flawed = ComputeAccessNodesFlawed(g, grid, &ch);
  Dijkstra dij(g);

  Rng rng(7);
  size_t checked = 0, flawed_wrong = 0;
  while (checked < 150) {
    const VertexId v = static_cast<VertexId>(rng.NextBelow(g.NumVertices()));
    const VertexId t = static_cast<VertexId>(rng.NextBelow(g.NumVertices()));
    if (CellChebyshev(grid.CellOf(v), grid.CellOf(t)) < 5) continue;
    ++checked;
    const Distance truth = dij.Run(v, t);
    auto via = [&](const AccessNodeSet& s) {
      Distance best = kInfDistance;
      for (const VertexAccess& va : s.vertex_access[v]) {
        const Distance rest = dij.Run(va.node, t);
        if (rest != kInfDistance) best = std::min(best, va.dist + rest);
      }
      return best;
    };
    EXPECT_EQ(via(correct), truth) << "correct variant must cover v=" << v;
    if (via(flawed) != truth) ++flawed_wrong;
  }
  EXPECT_GT(flawed_wrong, 0u)
      << "the flawed variant should miss at least one covering";
}

}  // namespace
}  // namespace roadnet
