#include "reach/reach_index.h"

#include "dijkstra/bidirectional.h"
#include "dijkstra/dijkstra.h"
#include "tests/test_util.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

class ReachCorrectnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReachCorrectnessTest, MatchesDijkstraAcrossSeeds) {
  Graph g = TestNetwork(600, GetParam());
  ReachIndex re(g);
  ExpectIndexCorrect(g, &re, 150, GetParam() + 450);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReachCorrectnessTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(ReachIndex, ReachValuesAreSound) {
  // Sampled soundness: for every shortest path P(s, t) and interior v,
  // min(d(s, v), d(v, t)) <= reach(v).
  Graph g = TestNetwork(400, 9);
  ReachIndex re(g);
  Dijkstra dij(g);
  for (auto [s, t] : RandomPairs(g, 60, 3)) {
    if (dij.Run(s, t) == kInfDistance) continue;
    const Path p = dij.PathTo(t);
    Distance along = 0;
    const Distance total = PathWeight(g, p);
    for (size_t i = 1; i + 1 < p.size(); ++i) {
      along += *g.EdgeWeight(p[i - 1], p[i]);
      EXPECT_LE(std::min(along, total - along), re.ReachOf(p[i]))
          << "interior vertex " << p[i];
    }
  }
}

TEST(ReachIndex, HighwayVerticesHaveHighReach) {
  // Important (highway) vertices sit mid-way on long shortest paths, so
  // the reach distribution must be heavily skewed: the top percentile far
  // above the median.
  Graph g = TestNetwork(1600, 13);
  ReachIndex re(g);
  std::vector<Distance> reaches;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    reaches.push_back(re.ReachOf(v));
  }
  std::sort(reaches.begin(), reaches.end());
  const Distance median = reaches[reaches.size() / 2];
  const Distance p99 = reaches[reaches.size() * 99 / 100];
  EXPECT_GT(p99, median * 4);
}

TEST(ReachIndex, PruningReducesSettledVertices) {
  Graph g = TestNetwork(2500, 17);
  ReachIndex re(g);
  BidirectionalDijkstra bidi(g);
  size_t re_total = 0, bidi_total = 0;
  for (auto [s, t] : RandomPairs(g, 30, 7)) {
    re.DistanceQuery(s, t);
    re_total += re.SettledCount();
    bidi.DistanceQuery(s, t);
    bidi_total += bidi.SettledCount();
  }
  EXPECT_LT(re_total, bidi_total);
}

TEST(ReachIndex, UnreachablePair) {
  GraphBuilder b(4);
  b.AddEdge(0, 1, 1);
  b.AddEdge(2, 3, 1);
  Graph g = std::move(b).Build();
  ReachIndex re(g);
  EXPECT_EQ(re.DistanceQuery(0, 3), kInfDistance);
  EXPECT_TRUE(re.PathQuery(0, 3).empty());
}

TEST(ReachIndex, ChainGraphReaches) {
  // On a path graph 0-1-2-3-4 with unit weights, reach of the middle
  // vertex is 2, its neighbours 1, the endpoints 0.
  GraphBuilder b(5);
  for (uint32_t i = 0; i < 5; ++i) b.SetCoord(i, Point{int32_t(i) * 100, 0});
  for (uint32_t i = 0; i + 1 < 5; ++i) b.AddEdge(i, i + 1, 1);
  Graph g = std::move(b).Build();
  ReachIndex re(g);
  EXPECT_EQ(re.ReachOf(0), 0u);
  EXPECT_EQ(re.ReachOf(1), 1u);
  EXPECT_EQ(re.ReachOf(2), 2u);
  EXPECT_EQ(re.ReachOf(3), 1u);
  EXPECT_EQ(re.ReachOf(4), 0u);
}

}  // namespace
}  // namespace roadnet
