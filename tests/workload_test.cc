#include "workload/query_gen.h"

#include "dijkstra/dijkstra.h"
#include "tests/test_util.h"
#include "workload/datasets.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

TEST(Datasets, TenSpecsInAscendingSize) {
  const auto& specs = PaperDatasets();
  ASSERT_EQ(specs.size(), 10u);
  EXPECT_EQ(specs.front().name, "DE'");
  EXPECT_EQ(specs.back().name, "US'");
  for (size_t i = 0; i + 1 < specs.size(); ++i) {
    EXPECT_LT(specs[i].target_vertices, specs[i + 1].target_vertices);
  }
  ASSERT_EQ(SmallDatasets().size(), 4u);
  EXPECT_EQ(SmallDatasets().back().name, "CO'");
}

TEST(Datasets, BuildIsDeterministic) {
  const auto& spec = PaperDatasets()[0];
  Graph a = BuildDataset(spec);
  Graph b = BuildDataset(spec);
  EXPECT_EQ(a.NumVertices(), b.NumVertices());
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
}

TEST(QueryGen, LInfBucketsRespectBounds) {
  Graph g = TestNetwork(2500, 5);
  const auto sets = GenerateLInfQuerySets(g, 50, 7);
  ASSERT_EQ(sets.size(), 10u);
  const Rect& b = g.Bounds();
  const int64_t span = std::max<int64_t>(
      std::max(static_cast<int64_t>(b.max_x) - b.min_x,
               static_cast<int64_t>(b.max_y) - b.min_y),
      1024);
  const int64_t l = (span + 1023) / 1024;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(sets[i].name, "Q" + std::to_string(i + 1));
    const int64_t lo = l << i;
    const int64_t hi = l << (i + 1);
    for (auto [s, t] : sets[i].pairs) {
      const int64_t d = LInfDistance(g.Coord(s), g.Coord(t));
      EXPECT_GE(d, lo) << sets[i].name;
      EXPECT_LT(d, hi) << sets[i].name;
      EXPECT_NE(s, t);
    }
  }
}

TEST(QueryGen, LInfNearAndFarBucketsFill) {
  Graph g = TestNetwork(2500, 9);
  const auto sets = GenerateLInfQuerySets(g, 40, 3);
  // Q1 (closest) and the largest populatable bucket must both fill: the
  // generator combines rejection and targeted ring sampling.
  EXPECT_EQ(sets[0].pairs.size(), 40u);
  size_t filled = 0;
  for (const auto& s : sets) {
    if (s.pairs.size() == 40u) ++filled;
  }
  EXPECT_GE(filled, 6u);
}

TEST(QueryGen, LInfDeterministicPerSeed) {
  Graph g = TestNetwork(800, 3);
  const auto a = GenerateLInfQuerySets(g, 20, 11);
  const auto b = GenerateLInfQuerySets(g, 20, 11);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a[i].pairs, b[i].pairs);
  }
}

TEST(QueryGen, NetworkDistanceBucketsRespectBounds) {
  Graph g = TestNetwork(1200, 13);
  const auto sets = GenerateNetworkDistanceQuerySets(g, 30, 17);
  ASSERT_EQ(sets.size(), 10u);
  Dijkstra dij(g);
  // Recompute ld exactly as the generator does (corner eccentricity).
  VertexId corner = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (static_cast<int64_t>(g.Coord(v).x) + g.Coord(v).y <
        static_cast<int64_t>(g.Coord(corner).x) + g.Coord(corner).y) {
      corner = v;
    }
  }
  dij.RunAll(corner);
  Distance ld = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (dij.DistanceTo(v) != kInfDistance) {
      ld = std::max(ld, dij.DistanceTo(v));
    }
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(sets[i].name, "R" + std::to_string(i + 1));
    const Distance lo = ld >> (10 - i);
    const Distance hi = ld >> (9 - i);
    for (auto [s, t] : sets[i].pairs) {
      const Distance d = dij.Run(s, t);
      EXPECT_GE(d, lo) << sets[i].name;
      EXPECT_LT(d, hi) << sets[i].name;
    }
  }
}

TEST(QueryGen, NetworkDistanceSetsMostlyFill) {
  Graph g = TestNetwork(1200, 19);
  const auto sets = GenerateNetworkDistanceQuerySets(g, 30, 23);
  size_t filled = 0;
  for (const auto& s : sets) {
    if (s.pairs.size() == 30u) ++filled;
  }
  EXPECT_GE(filled, 6u);
}

}  // namespace
}  // namespace roadnet
