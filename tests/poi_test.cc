// POI set invariants: deterministic seeded placement, CSR structure,
// the v1 serialization container, the category spec parser, and the
// kNN edge cases the serving path leans on (empty category and
// k > |POIs| are complete OK answers, not errors).

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "ch/ch_index.h"
#include "knn/ier.h"
#include "knn/knn_index.h"
#include "poi/poi_set.h"
#include "routing/knn.h"
#include "tests/test_util.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

PoiConfig ThreeCategoryConfig(uint64_t seed) {
  PoiConfig config;
  config.categories = {{"dense", 0.05}, {"sparse", 0.005}, {"empty", 0.0}};
  config.seed = seed;
  return config;
}

TEST(PoiSet, PlacementIsDeterministicPerSeed) {
  Graph g = TestNetwork(400, 11);
  const PoiSet a = PoiSet::Generate(g, ThreeCategoryConfig(42));
  const PoiSet b = PoiSet::Generate(g, ThreeCategoryConfig(42));
  ASSERT_EQ(a.NumCategories(), b.NumCategories());
  for (uint32_t c = 0; c < a.NumCategories(); ++c) {
    const auto va = a.Vertices(c);
    const auto vb = b.Vertices(c);
    ASSERT_EQ(va.size(), vb.size());
    for (size_t i = 0; i < va.size(); ++i) EXPECT_EQ(va[i], vb[i]);
  }
  // Another seed moves at least one POI of the dense category.
  const PoiSet other = PoiSet::Generate(g, ThreeCategoryConfig(43));
  const auto va = a.Vertices(0);
  const auto vo = other.Vertices(0);
  ASSERT_EQ(va.size(), vo.size());
  bool differs = false;
  for (size_t i = 0; i < va.size(); ++i) differs |= va[i] != vo[i];
  EXPECT_TRUE(differs);
}

TEST(PoiSet, CategoriesAreSortedDistinctAndSized) {
  Graph g = TestNetwork(500, 12);
  const PoiSet pois = PoiSet::Generate(g, ThreeCategoryConfig(7));
  EXPECT_EQ(pois.NumVertices(), g.NumVertices());
  for (uint32_t c = 0; c < pois.NumCategories(); ++c) {
    const auto list = pois.Vertices(c);
    const auto want = static_cast<size_t>(
        std::llround(ThreeCategoryConfig(7).categories[c].density *
                     static_cast<double>(g.NumVertices())));
    EXPECT_EQ(list.size(), want) << pois.CategoryName(c);
    for (size_t i = 0; i < list.size(); ++i) {
      EXPECT_LT(list[i], g.NumVertices());
      if (i > 0) {
        EXPECT_LT(list[i - 1], list[i]) << "not strictly ascending";
      }
    }
  }
  EXPECT_EQ(pois.Vertices(2).size(), 0u);
  EXPECT_EQ(pois.CategoryId("dense"), 0);
  EXPECT_EQ(pois.CategoryId("empty"), 2);
  EXPECT_EQ(pois.CategoryId("nosuch"), -1);
}

TEST(PoiSet, DensityOneCoversEveryVertex) {
  Graph g = TestNetwork(120, 13);
  PoiConfig config;
  config.categories = {{"all", 1.0}};
  config.seed = 5;
  const PoiSet pois = PoiSet::Generate(g, config);
  const auto list = pois.Vertices(0);
  ASSERT_EQ(list.size(), g.NumVertices());
  for (size_t i = 0; i < list.size(); ++i) {
    EXPECT_EQ(list[i], static_cast<VertexId>(i));
  }
}

TEST(PoiSet, RoundTripPreservesEverything) {
  Graph g = TestNetwork(300, 14);
  const PoiSet original = PoiSet::Generate(g, ThreeCategoryConfig(9));
  std::stringstream buffer;
  original.Serialize(buffer);
  std::string error;
  auto restored = PoiSet::Deserialize(buffer, &error);
  ASSERT_NE(restored, nullptr) << error;
  EXPECT_EQ(restored->NumVertices(), original.NumVertices());
  ASSERT_EQ(restored->NumCategories(), original.NumCategories());
  EXPECT_EQ(restored->NumPois(), original.NumPois());
  for (uint32_t c = 0; c < original.NumCategories(); ++c) {
    EXPECT_EQ(restored->CategoryName(c), original.CategoryName(c));
    const auto a = original.Vertices(c);
    const auto b = restored->Vertices(c);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(PoiSet, RejectsEverySingleByteFlip) {
  Graph g = TestNetwork(150, 15);
  const PoiSet pois = PoiSet::Generate(g, ThreeCategoryConfig(3));
  std::stringstream buffer;
  pois.Serialize(buffer);
  const std::string full = buffer.str();
  // POI files are small; flip every byte — magic, version, length,
  // payload, and CRC trailer must all be load-bearing.
  for (size_t i = 0; i < full.size(); ++i) {
    std::string corrupt = full;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0xFF);
    std::stringstream in(corrupt);
    std::string error;
    EXPECT_EQ(PoiSet::Deserialize(in, &error), nullptr)
        << "flip at byte " << i;
    EXPECT_FALSE(error.empty()) << "flip at byte " << i;
  }
}

TEST(PoiSet, RejectsTruncation) {
  Graph g = TestNetwork(150, 16);
  const PoiSet pois = PoiSet::Generate(g, ThreeCategoryConfig(3));
  std::stringstream buffer;
  pois.Serialize(buffer);
  const std::string full = buffer.str();
  for (size_t len : {size_t{0}, size_t{4}, size_t{11}, full.size() / 2,
                     full.size() - 1}) {
    std::stringstream in(full.substr(0, len));
    std::string error;
    EXPECT_EQ(PoiSet::Deserialize(in, &error), nullptr)
        << "truncated to " << len << " bytes";
  }
}

TEST(PoiSet, DeserializeFromMissingFileFails) {
  std::string error;
  EXPECT_EQ(PoiSet::DeserializeFromFile("/nonexistent/pois.bin", &error),
            nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(ParsePoiCategories, AcceptsWellFormedSpecs) {
  std::vector<PoiCategorySpec> cats;
  std::string error;
  ASSERT_TRUE(
      ParsePoiCategories("restaurant:0.01,fuel:0.001,all:1", &cats, &error))
      << error;
  ASSERT_EQ(cats.size(), 3u);
  EXPECT_EQ(cats[0].name, "restaurant");
  EXPECT_DOUBLE_EQ(cats[0].density, 0.01);
  EXPECT_EQ(cats[2].name, "all");
  EXPECT_DOUBLE_EQ(cats[2].density, 1.0);
  ASSERT_TRUE(ParsePoiCategories("hotel:0", &cats, &error)) << error;
  EXPECT_DOUBLE_EQ(cats[0].density, 0.0);
}

TEST(ParsePoiCategories, RejectsMalformedSpecs) {
  std::vector<PoiCategorySpec> cats;
  std::string error;
  for (const char* bad :
       {"", "restaurant", ":0.5", "a:0.1,a:0.2", "a:1.5", "a:-0.1",
        "a:zero", "a:0.1extra"}) {
    EXPECT_FALSE(ParsePoiCategories(bad, &cats, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

// The serving-path edge cases: an empty category and k > |POIs| are
// complete OK answers; k == 0 is empty; both strategies and the oracle
// agree on all of them.
TEST(KnnEdgeCases, EmptyCategoryAndOversizedKAreOkAnswers) {
  Graph g = TestNetwork(300, 17);
  PoiConfig config;
  config.categories = {{"few", 0.01}, {"none", 0.0}};
  config.seed = 21;
  const PoiSet pois = PoiSet::Generate(g, config);
  const auto few = pois.Vertices(0);
  ASSERT_GT(few.size(), 0u);
  const std::vector<VertexId> few_vec(few.begin(), few.end());

  ChIndex ch(g);
  KnnBucketIndex bucket(ch, pois);
  IerKnnIndex ier(g, ch, pois);
  auto bucket_ctx = bucket.NewContext();
  auto ier_ctx = ier.NewContext();
  std::vector<KnnResult> out;

  for (VertexId s : {VertexId{0}, VertexId{17}, VertexId{299}}) {
    // Empty category: empty result from every strategy.
    bucket.KnnQuery(&bucket_ctx, 1, s, 5, &out);
    EXPECT_TRUE(out.empty());
    ier.KnnQuery(&ier_ctx, 1, s, 5, &out);
    EXPECT_TRUE(out.empty());
    bucket.OneToManyQuery(&bucket_ctx, 1, s, &out);
    EXPECT_TRUE(out.empty());

    // k > |POIs|: every reachable POI, equal to the oracle and to
    // one-to-many.
    const auto truth =
        KnnByDijkstra(g, few_vec, s, few_vec.size() + 100);
    bucket.KnnQuery(&bucket_ctx, 0, s, few_vec.size() + 100, &out);
    EXPECT_EQ(out, truth);
    ier.KnnQuery(&ier_ctx, 0, s, few_vec.size() + 100, &out);
    EXPECT_EQ(out, truth);
    bucket.OneToManyQuery(&bucket_ctx, 0, s, &out);
    EXPECT_EQ(out, truth);

    // k == 0 yields empty.
    bucket.KnnQuery(&bucket_ctx, 0, s, 0, &out);
    EXPECT_TRUE(out.empty());
    ier.KnnQuery(&ier_ctx, 0, s, 0, &out);
    EXPECT_TRUE(out.empty());
  }
}

}  // namespace
}  // namespace roadnet
