#include "routing/knn.h"

#include <algorithm>

#include "ch/ch_index.h"
#include "dijkstra/dijkstra.h"
#include "tests/test_util.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

std::vector<VertexId> RandomPois(const Graph& g, size_t count,
                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<VertexId> pois;
  for (size_t i = 0; i < count; ++i) {
    pois.push_back(static_cast<VertexId>(rng.NextBelow(g.NumVertices())));
  }
  return pois;
}

std::vector<Distance> DistancesOf(const std::vector<KnnResult>& r) {
  std::vector<Distance> d;
  for (const KnnResult& x : r) d.push_back(x.dist);
  return d;
}

TEST(Knn, StrategiesAgreeOnDistances) {
  Graph g = TestNetwork(900, 3);
  ChIndex ch(g);
  const auto pois = RandomPois(g, 30, 5);
  Rng rng(7);
  for (int i = 0; i < 25; ++i) {
    const VertexId q = static_cast<VertexId>(rng.NextBelow(g.NumVertices()));
    for (size_t k : {size_t{1}, size_t{5}, size_t{30}}) {
      const auto a = KnnByDijkstra(g, pois, q, k);
      const auto b = KnnByIndexScan(&ch, pois, q, k);
      EXPECT_EQ(DistancesOf(a), DistancesOf(b))
          << "q=" << q << " k=" << k;
    }
  }
}

TEST(Knn, MatchesBruteForce) {
  Graph g = TestNetwork(500, 11);
  ChIndex ch(g);
  const auto pois = RandomPois(g, 20, 9);
  Dijkstra dij(g);
  const VertexId q = 42;
  dij.RunAll(q);
  std::vector<Distance> all;
  for (VertexId p : pois) all.push_back(dij.DistanceTo(p));
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());

  const auto top3 = KnnByIndexScan(&ch, pois, q, 3);
  ASSERT_GE(top3.size(), 1u);
  // Results are sorted ascending and within the true distance multiset.
  for (size_t i = 0; i + 1 < top3.size(); ++i) {
    EXPECT_LE(top3[i].dist, top3[i + 1].dist);
  }
  EXPECT_EQ(top3[0].dist, all[0]);
}

TEST(Knn, KLargerThanPoiCount) {
  Graph g = TestNetwork(300, 13);
  ChIndex ch(g);
  const auto pois = RandomPois(g, 4, 3);
  const auto results = KnnByIndexScan(&ch, pois, 0, 100);
  EXPECT_LE(results.size(), 4u);
  EXPECT_GE(results.size(), 1u);
}

TEST(Knn, DuplicatePoisCollapse) {
  Graph g = TestNetwork(300, 17);
  ChIndex ch(g);
  std::vector<VertexId> pois = {7, 7, 7, 9};
  const auto results = KnnByIndexScan(&ch, pois, 0, 4);
  EXPECT_LE(results.size(), 2u);
  const auto results2 = KnnByDijkstra(g, pois, 0, 4);
  EXPECT_EQ(DistancesOf(results), DistancesOf(results2));
}

TEST(Knn, QueryVertexIsPoi) {
  Graph g = TestNetwork(300, 19);
  ChIndex ch(g);
  std::vector<VertexId> pois = {5, 100, 200};
  const auto results = KnnByIndexScan(&ch, pois, 5, 1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].poi, 5u);
  EXPECT_EQ(results[0].dist, 0u);
}

TEST(Knn, DijkstraVariantStopsEarly) {
  Graph g = TestNetwork(2500, 23);
  const auto pois = RandomPois(g, 50, 31);
  // Settling only 1 nearest POI should explore far less than settling all.
  Dijkstra probe(g);
  probe.RunUntilSettled(0, pois, 1);
  const size_t near_ball = probe.SettledCount();
  probe.RunUntilSettled(0, pois);
  EXPECT_LT(near_ball, probe.SettledCount());
}

}  // namespace
}  // namespace roadnet
