// QueryEngine's reentrancy guard: Run() entered from a second thread
// while a batch is in flight must abort with a diagnostic instead of
// silently handing the same worker contexts to two batches.
//
// Death tests live in their own binary so the TSan stage (which runs the
// Engine* suites) never executes a fork-and-abort under the sanitizer.

#include <atomic>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "engine/query_engine.h"
#include "routing/path_index.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

// A PathIndex whose queries block until released, so the test can hold a
// batch open deterministically while a second Run() comes in.
class BlockingIndex : public PathIndex {
 public:
  std::string Name() const override { return "Blocking"; }
  std::unique_ptr<QueryContext> NewContext() const override {
    return std::make_unique<QueryContext>();
  }
  Distance DistanceQuery(QueryContext*, VertexId, VertexId) const override {
    entered.store(true);
    while (!released.load()) std::this_thread::yield();
    return 0;
  }
  Path PathQuery(QueryContext* ctx, VertexId s, VertexId t) const override {
    DistanceQuery(ctx, s, t);
    return {s, t};
  }
  size_t IndexBytes() const override { return 0; }

  mutable std::atomic<bool> entered{false};
  mutable std::atomic<bool> released{false};
};

// The death statement: holds one batch open, then re-enters Run() from a
// second thread, which must trip the assert before touching worker state.
void EnterRunTwice() {
  BlockingIndex index;
  QueryEngine engine(index, 1);
  const std::vector<std::pair<VertexId, VertexId>> queries = {{0, 1}};
  std::thread first([&] { engine.Run(queries); });
  while (!index.entered.load()) std::this_thread::yield();
  engine.Run(queries);
  index.released.store(true);
  first.join();
}

TEST(EngineGuardDeathTest, ConcurrentRunAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(EnterRunTwice(), "entered concurrently");
}

TEST(EngineGuard, SequentialRunsAreFine) {
  // The guard must not misfire on the supported pattern: many batches,
  // one after another, from the same engine.
  BlockingIndex index;
  index.released.store(true);  // never block
  QueryEngine engine(index, 2);
  const std::vector<std::pair<VertexId, VertexId>> queries = {{0, 1}, {2, 3}};
  for (int i = 0; i < 3; ++i) {
    BatchResult result = engine.Run(queries);
    EXPECT_EQ(result.distances.size(), queries.size());
  }
}

}  // namespace
}  // namespace roadnet
