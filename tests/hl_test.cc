#include "hl/hl_index.h"

#include <atomic>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "ch/ch_index.h"
#include "dijkstra/dijkstra.h"
#include "tests/test_util.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

TEST(HubLabel, MatchesPaperFigure1) {
  Graph g = PaperFigure1Graph();
  ChIndex ch(g);
  HlIndex hl(g, ch);
  // The paper's CH walkthrough: dist(v3, v7) = 6.
  EXPECT_EQ(hl.DistanceQuery(2, 6), 6u);
  ExpectIndexCorrect(g, &hl, 64, 3);
}

// Canonical label form: hubs strictly rank-sorted, the vertex itself
// present at distance 0, and — the distance-check pruning invariant —
// every stored distance is the true shortest-path distance (a prunable
// hub is exactly one stored above its true distance; none may survive).
TEST(HubLabel, LabelsAreCanonicalAndExact) {
  Graph g = TestNetwork(400, 41);
  ChIndex ch(g);
  HlIndex hl(g, ch);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const auto label = hl.Label(v);
    ASSERT_FALSE(label.empty()) << "v=" << v;
    bool has_self = false;
    for (size_t i = 0; i < label.size(); ++i) {
      ASSERT_LT(label[i].hub, g.NumVertices()) << "v=" << v;
      if (i > 0) {
        EXPECT_LT(label[i - 1].hub, label[i].hub)
            << "label of v=" << v << " not strictly rank-sorted at " << i;
      }
      if (label[i].hub == ch.RankOf(v)) {
        has_self = true;
        EXPECT_EQ(label[i].dist, 0u) << "self-hub of v=" << v;
      }
    }
    EXPECT_TRUE(has_self) << "label of v=" << v << " misses its self-hub";
  }
  // Spot-check stored distances against Dijkstra ground truth.
  Dijkstra reference(g);
  Rng rng(43);
  for (int i = 0; i < 25; ++i) {
    const VertexId v =
        static_cast<VertexId>(rng.NextBelow(g.NumVertices()));
    for (const auto& entry : hl.Label(v)) {
      const VertexId hub = ch.VertexAtRank(entry.hub);
      EXPECT_EQ(reference.Run(v, hub), Distance{entry.dist})
          << "v=" << v << " hub=" << hub;
    }
  }
}

TEST(HubLabel, AgreesWithDijkstraOnRandomNetwork) {
  Graph g = TestNetwork(600, 47);
  ChIndex ch(g);
  HlIndex hl(g, ch);
  ExpectIndexCorrect(g, &hl, 120, 49);
}

TEST(HubLabel, UnreachableAcrossComponentsIsInfinity) {
  // Two disjoint triangles: labels of different components share no
  // hub, so the merge finds an empty intersection.
  GraphBuilder b(6);
  for (VertexId v = 0; v < 6; ++v) {
    b.SetCoord(v, Point{static_cast<int32_t>(v), v < 3 ? 0 : 100});
  }
  b.AddEdge(0, 1, 1);
  b.AddEdge(1, 2, 1);
  b.AddEdge(2, 0, 1);
  b.AddEdge(3, 4, 1);
  b.AddEdge(4, 5, 1);
  b.AddEdge(5, 3, 1);
  Graph g = std::move(b).Build();
  ChIndex ch(g);
  HlIndex hl(g, ch);
  for (VertexId s = 0; s < 3; ++s) {
    for (VertexId t = 3; t < 6; ++t) {
      EXPECT_EQ(hl.DistanceQuery(s, t), kInfDistance);
      EXPECT_EQ(hl.DistanceQuery(t, s), kInfDistance);
      EXPECT_TRUE(hl.PathQuery(s, t).empty());
    }
  }
  EXPECT_EQ(hl.DistanceQuery(0, 2), 1u);
  EXPECT_EQ(hl.DistanceQuery(3, 5), 1u);
  EXPECT_EQ(hl.DistanceQuery(4, 4), 0u);
}

TEST(HubLabel, SingleVertexGraph) {
  GraphBuilder b(1);
  b.SetCoord(0, Point{0, 0});
  Graph g = std::move(b).Build();
  ChIndex ch(g);
  HlIndex hl(g, ch);
  EXPECT_EQ(hl.DistanceQuery(0, 0), 0u);
  ASSERT_EQ(hl.Label(0).size(), 1u);
  EXPECT_EQ(hl.Label(0)[0].dist, 0u);
}

// A distance query is a pure label merge: it probes table entries and
// never settles a vertex or touches a heap.
TEST(HubLabel, QueryCountsLabelScansOnly) {
  Graph g = TestNetwork(300, 71);
  ChIndex ch(g);
  HlIndex hl(g, ch);
  auto ctx = hl.NewContext();
  const auto pairs = RandomPairs(g, 10, 73);
  for (auto [s, t] : pairs) {
    hl.DistanceQuery(ctx.get(), s, t);
    EXPECT_GT(ctx->counters.table_lookups, 0u);
    EXPECT_EQ(ctx->counters.vertices_settled, 0u);
    EXPECT_EQ(ctx->counters.heap_pushes, 0u);
    EXPECT_EQ(ctx->counters.edges_relaxed, 0u);
  }
}

// Identical labels for every construction thread count, pinned at the
// byte level through serialization.
TEST(HubLabel, ConstructionIsDeterministicAcrossThreadCounts) {
  Graph g = TestNetwork(350, 53);
  ChIndex ch(g);
  HlConfig one;
  one.num_threads = 1;
  HlConfig five;
  five.num_threads = 5;
  HlIndex a(g, ch, one);
  HlIndex b(g, ch, five);
  std::stringstream sa;
  std::stringstream sb;
  a.Serialize(sa);
  b.Serialize(sb);
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(HubLabelSerialization, RoundTripPreservesAnswersAndBytes) {
  Graph g = TestNetwork(500, 59);
  ChIndex ch(g);
  HlIndex original(g, ch);
  std::stringstream buffer;
  original.Serialize(buffer);
  std::string error;
  auto restored = HlIndex::Deserialize(g, ch, buffer, &error);
  ASSERT_NE(restored, nullptr) << error;
  EXPECT_EQ(restored->NumLabelEntries(), original.NumLabelEntries());
  EXPECT_EQ(restored->LabelBytes(), original.LabelBytes());
  for (auto [s, t] : RandomPairs(g, 200, 61)) {
    EXPECT_EQ(restored->DistanceQuery(s, t), original.DistanceQuery(s, t));
  }
  // Byte-identical re-serialization pins the arrays, not just behavior.
  std::stringstream again;
  restored->Serialize(again);
  std::stringstream first;
  original.Serialize(first);
  EXPECT_EQ(again.str(), first.str());
  ExpectIndexCorrect(g, restored.get(), 60, 63);
}

TEST(HubLabelSerialization, RejectsByteFlips) {
  Graph g = TestNetwork(150, 65);
  ChIndex ch(g);
  HlIndex hl(g, ch);
  std::stringstream buffer;
  hl.Serialize(buffer);
  const std::string full = buffer.str();
  // Stride through the file; every sampled flip plus the first and last
  // 64 bytes (header, length, CRC trailer) must be rejected.
  std::vector<size_t> positions;
  for (size_t i = 0; i < full.size(); i += 7) positions.push_back(i);
  for (size_t i = 0; i < 64 && i < full.size(); ++i) {
    positions.push_back(i);
    positions.push_back(full.size() - 1 - i);
  }
  for (size_t i : positions) {
    std::string corrupt = full;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0xFF);
    std::stringstream in(corrupt);
    std::string error;
    EXPECT_EQ(HlIndex::Deserialize(g, ch, in, &error), nullptr)
        << "flip at byte " << i;
    EXPECT_FALSE(error.empty()) << "flip at byte " << i;
  }
}

TEST(HubLabelSerialization, RejectsWrongGraph) {
  Graph g1 = TestNetwork(500, 1);
  Graph g2 = TestNetwork(900, 2);
  ChIndex ch1(g1);
  ChIndex ch2(g2);
  HlIndex hl(g1, ch1);
  std::stringstream buffer;
  hl.Serialize(buffer);
  std::string error;
  EXPECT_EQ(HlIndex::Deserialize(g2, ch2, buffer, &error), nullptr);
  EXPECT_FALSE(error.empty());
}

// One immutable index, eight threads, one context each: every thread
// must read the same answers a single-threaded pass produced. Run under
// TSan by scripts/check.sh.
TEST(HubLabelThreads, EightThreadsShareOneIndex) {
  Graph g = TestNetwork(500, 67);
  ChIndex ch(g);
  HlIndex hl(g, ch);
  const auto pairs = RandomPairs(g, 800, 69);
  std::vector<Distance> want(pairs.size());
  {
    auto ctx = hl.NewContext();
    for (size_t i = 0; i < pairs.size(); ++i) {
      want[i] = hl.DistanceQuery(ctx.get(), pairs[i].first, pairs[i].second);
    }
  }
  constexpr size_t kThreads = 8;
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto ctx = hl.NewContext();
      for (size_t i = t; i < pairs.size(); i += kThreads) {
        const Distance got =
            hl.DistanceQuery(ctx.get(), pairs[i].first, pairs[i].second);
        if (got != want[i]) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace
}  // namespace roadnet
