// Fuzz harness for FrameAssembler (src/server/event_loop.h): the
// [u32 length][body] reassembly state machine must produce the same
// frame sequence no matter how the byte stream is fragmented, must keep
// its error state sticky, and must never buffer more than it was fed.
// The first input byte selects the fragmentation pattern; the rest is
// the stream.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "server/event_loop.h"
#include "tests/fuzz/fuzz_main.h"

namespace roadnet {
namespace {

#define FUZZ_CHECK(cond) \
  do {                   \
    if (!(cond)) __builtin_trap(); \
  } while (0)

// Small cap so the fuzzer reaches the oversized-length error path with
// five-byte inputs instead of 64 MiB ones.
constexpr uint32_t kMaxBody = 1u << 16;

struct Run {
  std::vector<std::string> frames;
  bool error = false;
};

// Feeds `stream` in chunks whose sizes cycle through a pattern derived
// from `selector`, draining completed frames after every chunk.
Run Drive(const std::string& stream, uint8_t selector) {
  FrameAssembler assembler(kMaxBody);
  Run run;
  size_t fed = 0;
  size_t pos = 0;
  while (pos < stream.size() && !run.error) {
    // Chunk sizes 1..17, rotated by the selector so one input exercises
    // many split points across mutants.
    const size_t want = 1 + (selector + pos) % 17;
    const size_t chunk = std::min(want, stream.size() - pos);
    assembler.Feed(stream.data() + pos, chunk);
    pos += chunk;
    fed += chunk;
    for (;;) {
      std::string body;
      const FrameAssembler::Result r = assembler.Next(&body);
      if (r == FrameAssembler::Result::kFrame) {
        FUZZ_CHECK(body.size() <= kMaxBody);
        run.frames.push_back(std::move(body));
        continue;
      }
      if (r == FrameAssembler::Result::kError) {
        run.error = true;
        // Sticky: once the stream is garbage it stays garbage.
        std::string again;
        FUZZ_CHECK(assembler.Next(&again) ==
                   FrameAssembler::Result::kError);
      }
      break;
    }
    FUZZ_CHECK(assembler.BufferedBytes() <= fed);
  }
  return run;
}

void WriteFile(const std::string& dir, const std::string& name,
               const std::string& bytes) {
  std::ofstream out(dir + "/" + name, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string Frame(const std::string& body) {
  std::string out;
  const uint32_t len = static_cast<uint32_t>(body.size());
  out.append(reinterpret_cast<const char*>(&len), sizeof(len));
  out += body;
  return out;
}

}  // namespace

namespace fuzz {

void WriteSeedCorpus(const std::string& dir) {
  // Selector byte 3, then: two complete frames back to back.
  WriteFile(dir, "two_frames.bin",
            std::string(1, 3) + Frame("hello") + Frame("world"));
  // A frame split across the end of the input (incomplete tail).
  const std::string tail = Frame("truncated-tail-frame");
  WriteFile(dir, "truncated.bin",
            std::string(1, 9) + Frame("ok") +
                tail.substr(0, tail.size() - 3));
  // Zero-length body frames are legal.
  WriteFile(dir, "empty_frames.bin",
            std::string(1, 1) + Frame("") + Frame("") + Frame("x"));
  // Length prefix beyond the cap: the error path.
  std::string huge;
  const uint32_t lie = kMaxBody + 1;
  huge.append(reinterpret_cast<const char*>(&lie), sizeof(lie));
  WriteFile(dir, "oversized_len.bin", std::string(1, 0) + huge + "abc");
}

}  // namespace fuzz
}  // namespace roadnet

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace roadnet;
  if (size == 0) return 0;
  const uint8_t selector = data[0];
  const std::string stream(reinterpret_cast<const char*>(data + 1),
                           size - 1);
  // Differential drive: whatever the fragmentation, the frame sequence
  // and terminal state must match the byte-at-a-time reference.
  const Run chunked = Drive(stream, selector);
  const Run reference = Drive(stream, /*selector=*/255);  // 1..17 rotation
  FrameAssembler byte_wise(kMaxBody);
  Run bytes;
  for (size_t i = 0; i < stream.size() && !bytes.error; ++i) {
    byte_wise.Feed(stream.data() + i, 1);
    for (;;) {
      std::string body;
      const FrameAssembler::Result r = byte_wise.Next(&body);
      if (r == FrameAssembler::Result::kFrame) {
        bytes.frames.push_back(std::move(body));
        continue;
      }
      if (r == FrameAssembler::Result::kError) bytes.error = true;
      break;
    }
  }
  FUZZ_CHECK(chunked.frames == bytes.frames);
  FUZZ_CHECK(chunked.error == bytes.error);
  FUZZ_CHECK(reference.frames == bytes.frames);
  FUZZ_CHECK(reference.error == bytes.error);
  return 0;
}
